/**
 * @file
 * Reyes rendering example: renders the procedural patch scene with
 * the full Split -> Dice -> Shade pipeline under the autotuned
 * VersaPipe configuration and writes the framebuffer to a PPM image.
 *
 * Build & run:  ./build/examples/reyes_render [out.ppm]
 */

#include <iostream>

#include "apps/common/image.hh"
#include "apps/reyes/reyes_app.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

int
main(int argc, char** argv)
{
    std::string out_path = argc > 1 ? argv[1] : "reyes.ppm";

    reyes::ReyesApp app;
    Engine engine(DeviceConfig::gtx1080());

    std::cout << "autotuning Reyes on simulated GTX 1080...\n";
    TunerResult tuned = autotune(engine, app);
    std::cout << "best configuration: "
              << tuned.best.describe(app.pipeline()) << "\n";

    RunResult r = engine.run(app, tuned.best);
    std::cout << "rendered " << app.dicedPatches()
              << " micropolygon grids from "
              << app.params().patches << " patches in " << r.ms
              << " simulated ms (verified: "
              << (r.completed ? "yes" : "NO") << ")\n";

    // Unpack the intensity framebuffer into an image.
    RgbImage img(app.params().width, app.params().height);
    for (int y = 0; y < app.params().height; ++y) {
        for (int x = 0; x < app.params().width; ++x) {
            std::uint32_t cell = app.framebuffer()
                [static_cast<std::size_t>(y) * app.params().width
                 + x];
            auto shade = static_cast<std::uint8_t>(cell & 0xFF);
            img.at(x, y, 0) = shade;
            img.at(x, y, 1) = shade;
            img.at(x, y, 2) = static_cast<std::uint8_t>(
                cell ? 40 + shade / 2 : 0);
        }
    }
    if (!img.writePpm(out_path)) {
        std::cerr << "failed to write " << out_path << "\n";
        return 1;
    }
    std::cout << "wrote " << out_path << "\n";
    return 0;
}

/**
 * @file
 * Quickstart: the 3-stage recursive pipeline of the paper's Figure 9,
 * written against the public VersaPipe API.
 *
 * Each data item is doubled by Stage1 until it reaches a threshold,
 * then flows through Stage2 (+1) into Stage3, which collects results.
 * The example runs the pipeline under the kernel-by-kernel baseline,
 * a Megakernel, and an autotuned hybrid, and prints the timings.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "core/versapipe.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

namespace {

constexpr int kThreshold = 1000;

struct Stage2;
struct Stage3;

/** Doubles values; recursive until the threshold (paper Fig. 9). */
struct Stage1 : Stage<int>
{
    Stage1()
    {
        name = "stage1";
        threadNum = 1; // each task has one thread
        resources.regsPerThread = 48;
        resources.codeBytes = 6144;
    }

    TaskCost
    cost(const int&) const override
    {
        TaskCost c;
        c.computeInsts = 220;
        c.memInsts = 30;
        return c;
    }

    void execute(ExecContext& ctx, int& val) override;
};

/** Adds one. */
struct Stage2 : Stage<int>
{
    Stage2()
    {
        name = "stage2";
        threadNum = 1;
        resources.regsPerThread = 64;
        resources.codeBytes = 8192;
    }

    TaskCost
    cost(const int&) const override
    {
        TaskCost c;
        c.computeInsts = 400;
        c.memInsts = 80;
        return c;
    }

    void execute(ExecContext& ctx, int& val) override;
};

/** Collects results. */
struct Stage3 : Stage<int>
{
    Stage3()
    {
        name = "stage3";
        threadNum = 1;
        resources.regsPerThread = 32;
        resources.codeBytes = 4096;
    }

    TaskCost
    cost(const int&) const override
    {
        TaskCost c;
        c.computeInsts = 120;
        c.memInsts = 40;
        return c;
    }

    void
    execute(ExecContext&, int& val) override
    {
        results.push_back(val);
    }

    void reset() override { results.clear(); }

    std::vector<int> results;
};

void
Stage1::execute(ExecContext& ctx, int& val)
{
    val *= 2;
    if (val >= kThreshold)
        ctx.enqueue<Stage2>(val);
    else
        ctx.enqueue<Stage1>(val); // recursion, as in Fig. 9
}

void
Stage2::execute(ExecContext& ctx, int& val)
{
    val += 1;
    ctx.enqueue<Stage3>(val);
}

/** The application: pipeline + input + verification. */
class QuickstartApp : public AppDriver
{
  public:
    QuickstartApp()
    {
        pipe_.addStage<Stage1>();
        pipe_.addStage<Stage2>();
        pipe_.addStage<Stage3>();
        pipe_.link<Stage1, Stage1>();
        pipe_.link<Stage1, Stage2>();
        pipe_.link<Stage2, Stage3>();
    }

    std::string name() const override { return "quickstart"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override {}

    void
    seedFlow(Seeder& seeder, int) override
    {
        // The paper's insertIntoQueue(initItems, ...).
        std::vector<int> init;
        for (int i = 1; i <= 512; ++i)
            init.push_back(i);
        seeder.insert<Stage1>(std::move(init));
    }

    bool
    verify() override
    {
        auto& sink = pipe_.stageAs<Stage3>();
        if (sink.results.size() != 512u)
            return false;
        std::vector<int> got = sink.results;
        std::sort(got.begin(), got.end());
        std::vector<int> want;
        for (int i = 1; i <= 512; ++i) {
            int v = i;
            while (v < kThreshold)
                v *= 2;
            want.push_back(v + 1);
        }
        std::sort(want.begin(), want.end());
        return got == want;
    }

  private:
    Pipeline pipe_;
};

} // namespace

int
main()
{
    QuickstartApp app;
    Engine engine(DeviceConfig::k20c());

    std::cout << "Figure 9 quickstart pipeline (recursive, 512 "
              << "seeds) on simulated K20c\n\n";

    auto report = [&](const char* label, const RunResult& r) {
        std::cout << label << ": " << r.ms << " ms (verified: "
                  << (r.completed ? "yes" : "NO") << ", config: "
                  << r.configName << ")\n";
    };

    report("KBK baseline", engine.run(app, makeKbkConfig()));
    report("Megakernel  ",
           engine.run(app, makeMegakernelConfig(app.pipeline())));

    // Let the auto-tuner pick the best hybrid configuration.
    TunerResult tuned = autotune(engine, app);
    report("VersaPipe   ", engine.run(app, tuned.best));
    std::cout << "\ntuner evaluated " << tuned.evaluated
              << " configurations (" << tuned.timedOut
              << " pruned by timeout-execute)\n";
    return 0;
}

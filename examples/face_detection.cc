/**
 * @file
 * Face-detection example: runs the 5-stage LBP pipeline on synthetic
 * images with planted faces, compares the baseline and autotuned
 * configurations, and reports detections per pyramid level.
 *
 * Build & run:  ./build/examples/face_detection
 */

#include <iostream>
#include <map>

#include "apps/facedetect/facedetect_app.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

int
main()
{
    facedetect::FdParams params;
    params.images = 3;
    params.width = 640;
    params.height = 360;
    params.minDim = 90;
    facedetect::FaceDetectApp app(params);
    Engine engine(DeviceConfig::k20c());

    std::cout << "LBP face detection: " << params.images
              << " images of " << params.width << "x"
              << params.height << ", " << app.plantedFaces()
              << " faces planted\n\n";

    RunResult kbk = engine.run(app, makeKbkConfig());
    std::cout << "KBK baseline: " << kbk.ms << " ms (verified: "
              << (kbk.completed ? "yes" : "NO") << ")\n";

    TunerOptions opts;
    opts.search.maxConfigs = 80;
    opts.search.smCandidates = 3;
    TunerResult tuned = autotune(engine, app, opts);
    RunResult vp = engine.run(app, tuned.best);
    std::cout << "VersaPipe:    " << vp.ms << " ms (verified: "
              << (vp.completed ? "yes" : "NO") << ", "
              << tuned.best.describe(app.pipeline()) << ")\n";
    std::cout << "speedup: " << kbk.ms / vp.ms << "x\n\n";

    std::map<int, int> per_level;
    for (const auto& [image, level, x, y] : app.detections())
        per_level[level] += 1;
    std::cout << "detections: " << app.detections().size() << "\n";
    for (const auto& [level, count] : per_level) {
        std::cout << "  pyramid level " << level << ": " << count
                  << " windows\n";
    }
    std::cout << "(windows overlapping one face are each reported; "
              << "no non-max suppression)\n";
    return 0;
}

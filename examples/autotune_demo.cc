/**
 * @file
 * Auto-tuner walkthrough: profiles the Image Pyramid, prints the
 * per-stage profile, enumerates part of the configuration space, and
 * shows the best configurations the timeout-execute search found.
 *
 * Build & run:  ./build/examples/autotune_demo
 */

#include <algorithm>
#include <iostream>

#include "apps/pyramid/pyramid_app.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

int
main()
{
    pyramid::PyramidApp app(pyramid::PyrParams::small());
    Engine engine(DeviceConfig::k20c());

    std::cout << "== profiling component ==\n";
    ProfileResult profile = profileApp(engine, app);
    for (const StageProfile& s : profile.stages) {
        std::cout << "  " << s.name << ": maxBlocks/SM="
                  << s.maxBlocksPerSm << " items=" << s.items
                  << " work=" << s.totalWork << " warp-insts\n";
    }

    std::cout << "\n== search space ==\n";
    auto configs = enumerateConfigs(app.pipeline(),
                                    engine.deviceConfig(), profile);
    std::cout << "  " << configs.size()
              << " candidate configurations (grouping x model x SM "
              << "mapping x block mapping, pruned)\n";

    std::cout << "\n== offline tuner (timeout-execute) ==\n";
    TunerResult tuned = autotune(engine, app);
    std::cout << "  evaluated " << tuned.evaluated << ", pruned "
              << tuned.timedOut << " by timeout\n";

    std::sort(tuned.finished.begin(), tuned.finished.end(),
              [](const auto& a, const auto& b) {
                  return a.second < b.second;
              });
    std::cout << "  top configurations:\n";
    for (std::size_t i = 0; i < tuned.finished.size() && i < 5;
         ++i) {
        std::cout << "    "
                  << engine.deviceConfig().cyclesToMs(
                         tuned.finished[i].second)
                  << " ms  " << tuned.finished[i].first << "\n";
    }

    RunResult best = engine.run(app, tuned.best);
    std::cout << "\nbest rerun: " << best.ms << " ms (verified: "
              << (best.completed ? "yes" : "NO") << ")\n";
    return 0;
}

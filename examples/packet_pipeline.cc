/**
 * @file
 * Network packet-processing example (one of the paper's motivating
 * domains, sec 1): a 4-stage pipeline — Parse -> Classify ->
 * Transform -> Emit — over a synthetic packet trace with mixed
 * packet sizes and flow types, built from scratch on the public API.
 *
 * Demonstrates a user-defined pipeline (not one of the six
 * evaluation apps) and the composite-item granularity advice of
 * section 6: packets are batched 32 per data item.
 *
 * Build & run:  ./build/examples/packet_pipeline
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/rng.hh"
#include "core/versapipe.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

namespace {

/** A batch of 32 packets (sec 6: composite items cut queue costs). */
struct PacketBatch
{
    std::int32_t first;
    std::int32_t count;
};

struct Packet
{
    std::uint32_t header;
    std::uint16_t length;
    std::uint8_t proto;
    std::uint8_t flags;
    std::uint32_t payloadSum; // stands in for payload contents
};

class PacketApp;

struct ClassifyStage;
struct TransformStage;
struct EmitStage;

/** Header parse + checksum validation. */
struct ParseStage : Stage<PacketBatch>
{
    explicit ParseStage(PacketApp& app) : app_(app)
    {
        name = "parse";
        threadNum = 32;
        resources.regsPerThread = 40;
        resources.codeBytes = 6144;
    }

    TaskCost
    cost(const PacketBatch& b) const override
    {
        TaskCost c;
        c.computeInsts = 60.0 * b.count / 32;
        c.memInsts = 20.0 * b.count / 32;
        c.l1HitRate = 0.6;
        return c;
    }

    void execute(ExecContext& ctx, PacketBatch& b) override;

    PacketApp& app_;
};

/** Flow classification (table lookups, memory heavy). */
struct ClassifyStage : Stage<PacketBatch>
{
    explicit ClassifyStage(PacketApp& app) : app_(app)
    {
        name = "classify";
        threadNum = 32;
        resources.regsPerThread = 72;
        resources.codeBytes = 12288;
    }

    TaskCost
    cost(const PacketBatch& b) const override
    {
        TaskCost c;
        c.computeInsts = 90.0 * b.count / 32;
        c.memInsts = 70.0 * b.count / 32;
        c.l1HitRate = 0.35; // table walks miss
        return c;
    }

    void execute(ExecContext& ctx, PacketBatch& b) override;

    PacketApp& app_;
};

/** Payload transform (encryption-like compute). */
struct TransformStage : Stage<PacketBatch>
{
    explicit TransformStage(PacketApp& app) : app_(app)
    {
        name = "transform";
        threadNum = 32;
        resources.regsPerThread = 96;
        resources.codeBytes = 10240;
    }

    TaskCost
    cost(const PacketBatch& b) const override
    {
        TaskCost c;
        c.computeInsts = 350.0 * b.count / 32;
        c.memInsts = 40.0 * b.count / 32;
        c.l1HitRate = 0.7;
        return c;
    }

    void execute(ExecContext& ctx, PacketBatch& b) override;

    PacketApp& app_;
};

/** Egress accounting. */
struct EmitStage : Stage<PacketBatch>
{
    explicit EmitStage(PacketApp& app) : app_(app)
    {
        name = "emit";
        threadNum = 32;
        resources.regsPerThread = 36;
        resources.codeBytes = 4096;
    }

    TaskCost
    cost(const PacketBatch& b) const override
    {
        TaskCost c;
        c.computeInsts = 30.0 * b.count / 32;
        c.memInsts = 15.0 * b.count / 32;
        return c;
    }

    void execute(ExecContext& ctx, PacketBatch& b) override;

    PacketApp& app_;
};

class PacketApp : public AppDriver
{
  public:
    explicit PacketApp(int packets = 64 * 1024)
    {
        pipe_.addStage<ParseStage>(*this);
        pipe_.addStage<ClassifyStage>(*this);
        pipe_.addStage<TransformStage>(*this);
        pipe_.addStage<EmitStage>(*this);
        pipe_.link<ParseStage, ClassifyStage>();
        pipe_.link<ClassifyStage, TransformStage>();
        pipe_.link<ClassifyStage, EmitStage>(); // bypass path
        pipe_.link<TransformStage, EmitStage>();

        Rng rng(2026);
        for (int i = 0; i < packets; ++i) {
            Packet p;
            p.header = rng.nextU32();
            p.length = static_cast<std::uint16_t>(
                64 + rng.nextBelow(1436));
            p.proto = static_cast<std::uint8_t>(rng.nextBelow(4));
            p.flags = 0;
            p.payloadSum = rng.nextU32();
            trace_.push_back(p);
        }
        reset();
    }

    std::string name() const override { return "packets"; }
    Pipeline& pipeline() override { return pipe_; }

    void
    reset() override
    {
        parsed_ = 0;
        transformed_ = 0;
        emittedBytes_ = 0;
        emittedPackets_ = 0;
    }

    void
    seedFlow(Seeder& seeder, int) override
    {
        std::vector<PacketBatch> batches;
        for (int first = 0; first < static_cast<int>(trace_.size());
             first += 32) {
            int count = std::min<int>(
                32, static_cast<int>(trace_.size()) - first);
            batches.push_back(PacketBatch{first, count});
        }
        seeder.insert<ParseStage>(std::move(batches));
    }

    bool
    verify() override
    {
        // Every packet parsed and emitted exactly once; payload
        // transforms only on the encrypt-protocol packets.
        std::uint64_t want_bytes = 0;
        int want_transformed = 0;
        for (const Packet& p : trace_) {
            want_bytes += p.length;
            want_transformed += p.proto == 1;
        }
        return parsed_ == static_cast<int>(trace_.size())
            && emittedPackets_ == static_cast<int>(trace_.size())
            && transformed_ == want_transformed
            && emittedBytes_ == want_bytes;
    }

    Pipeline pipe_;
    std::vector<Packet> trace_;
    int parsed_ = 0;
    int transformed_ = 0;
    std::uint64_t emittedBytes_ = 0;
    int emittedPackets_ = 0;
};

void
ParseStage::execute(ExecContext& ctx, PacketBatch& b)
{
    app_.parsed_ += b.count;
    ctx.enqueue<ClassifyStage>(b);
}

void
ClassifyStage::execute(ExecContext& ctx, PacketBatch& b)
{
    // Split the batch: protocol 1 goes through the transform path,
    // the rest bypasses straight to emit. (Batches stay intact per
    // path; counts are tracked per packet.)
    int transform_count = 0;
    for (int i = 0; i < b.count; ++i)
        transform_count +=
            app_.trace_[b.first + i].proto == 1;
    if (transform_count > 0)
        ctx.enqueue<TransformStage>(b);
    else
        ctx.enqueue<EmitStage>(b);
}

void
TransformStage::execute(ExecContext& ctx, PacketBatch& b)
{
    for (int i = 0; i < b.count; ++i) {
        Packet& p = app_.trace_[b.first + i];
        if (p.proto == 1) {
            p.payloadSum = p.payloadSum * 2654435761u + 12345;
            p.flags |= 1;
            ++app_.transformed_;
        }
    }
    ctx.enqueue<EmitStage>(b);
}

void
EmitStage::execute(ExecContext&, PacketBatch& b)
{
    for (int i = 0; i < b.count; ++i)
        app_.emittedBytes_ += app_.trace_[b.first + i].length;
    app_.emittedPackets_ += b.count;
}

} // namespace

int
main()
{
    PacketApp app;
    Engine engine(DeviceConfig::gtx1080());

    std::cout << "packet pipeline: " << app.trace_.size()
              << " packets in 32-packet composite items\n\n";

    RunResult kbk = engine.run(app, makeKbkConfig());
    std::cout << "KBK:        " << kbk.ms << " ms (verified: "
              << (kbk.completed ? "yes" : "NO") << ")\n";

    RunResult mk = engine.run(app,
                              makeMegakernelConfig(app.pipeline()));
    std::cout << "Megakernel: " << mk.ms << " ms\n";

    TunerResult tuned = autotune(engine, app);
    RunResult vp = engine.run(app, tuned.best);
    std::cout << "VersaPipe:  " << vp.ms << " ms  ["
              << tuned.best.describe(app.pipeline()) << "]\n";
    std::cout << "\nthroughput (VersaPipe): "
              << app.trace_.size() / (vp.ms * 1e-3) / 1e6
              << " Mpps simulated\n";
    return 0;
}

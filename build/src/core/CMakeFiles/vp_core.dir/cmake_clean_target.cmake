file(REMOVE_RECURSE
  "libvp_core.a"
)

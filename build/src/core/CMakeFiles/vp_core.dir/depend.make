# Empty dependencies file for vp_core.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/vp_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/engine.cc.o.d"
  "/root/repo/src/core/exec_model.cc" "src/core/CMakeFiles/vp_core.dir/exec_model.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/exec_model.cc.o.d"
  "/root/repo/src/core/model_config.cc" "src/core/CMakeFiles/vp_core.dir/model_config.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/model_config.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/vp_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/runner_dp.cc" "src/core/CMakeFiles/vp_core.dir/runner_dp.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/runner_dp.cc.o.d"
  "/root/repo/src/core/runner_groups.cc" "src/core/CMakeFiles/vp_core.dir/runner_groups.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/runner_groups.cc.o.d"
  "/root/repo/src/core/runner_kbk.cc" "src/core/CMakeFiles/vp_core.dir/runner_kbk.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/runner_kbk.cc.o.d"
  "/root/repo/src/core/runtime.cc" "src/core/CMakeFiles/vp_core.dir/runtime.cc.o" "gcc" "src/core/CMakeFiles/vp_core.dir/runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpu/CMakeFiles/vp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/vp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/vp_core.dir/engine.cc.o"
  "CMakeFiles/vp_core.dir/engine.cc.o.d"
  "CMakeFiles/vp_core.dir/exec_model.cc.o"
  "CMakeFiles/vp_core.dir/exec_model.cc.o.d"
  "CMakeFiles/vp_core.dir/model_config.cc.o"
  "CMakeFiles/vp_core.dir/model_config.cc.o.d"
  "CMakeFiles/vp_core.dir/pipeline.cc.o"
  "CMakeFiles/vp_core.dir/pipeline.cc.o.d"
  "CMakeFiles/vp_core.dir/runner_dp.cc.o"
  "CMakeFiles/vp_core.dir/runner_dp.cc.o.d"
  "CMakeFiles/vp_core.dir/runner_groups.cc.o"
  "CMakeFiles/vp_core.dir/runner_groups.cc.o.d"
  "CMakeFiles/vp_core.dir/runner_kbk.cc.o"
  "CMakeFiles/vp_core.dir/runner_kbk.cc.o.d"
  "CMakeFiles/vp_core.dir/runtime.cc.o"
  "CMakeFiles/vp_core.dir/runtime.cc.o.d"
  "libvp_core.a"
  "libvp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libvp_common.a"
)

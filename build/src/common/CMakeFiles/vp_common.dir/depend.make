# Empty dependencies file for vp_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vp_common.dir/logging.cc.o"
  "CMakeFiles/vp_common.dir/logging.cc.o.d"
  "CMakeFiles/vp_common.dir/rng.cc.o"
  "CMakeFiles/vp_common.dir/rng.cc.o.d"
  "CMakeFiles/vp_common.dir/stats.cc.o"
  "CMakeFiles/vp_common.dir/stats.cc.o.d"
  "CMakeFiles/vp_common.dir/table.cc.o"
  "CMakeFiles/vp_common.dir/table.cc.o.d"
  "libvp_common.a"
  "libvp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

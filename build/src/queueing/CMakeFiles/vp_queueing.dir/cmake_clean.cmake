file(REMOVE_RECURSE
  "CMakeFiles/vp_queueing.dir/pending_counter.cc.o"
  "CMakeFiles/vp_queueing.dir/pending_counter.cc.o.d"
  "CMakeFiles/vp_queueing.dir/work_queue.cc.o"
  "CMakeFiles/vp_queueing.dir/work_queue.cc.o.d"
  "libvp_queueing.a"
  "libvp_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

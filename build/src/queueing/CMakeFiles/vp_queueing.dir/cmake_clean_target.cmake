file(REMOVE_RECURSE
  "libvp_queueing.a"
)

# Empty compiler generated dependencies file for vp_queueing.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/vp_sim.dir/simulator.cc.o"
  "CMakeFiles/vp_sim.dir/simulator.cc.o.d"
  "libvp_sim.a"
  "libvp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

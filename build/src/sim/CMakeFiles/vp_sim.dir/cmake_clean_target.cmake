file(REMOVE_RECURSE
  "libvp_sim.a"
)

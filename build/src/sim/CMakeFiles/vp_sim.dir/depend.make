# Empty dependencies file for vp_sim.
# This may be replaced when dependencies are built.

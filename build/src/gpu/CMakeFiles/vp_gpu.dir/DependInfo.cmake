
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/block.cc" "src/gpu/CMakeFiles/vp_gpu.dir/block.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/block.cc.o.d"
  "/root/repo/src/gpu/cost_model.cc" "src/gpu/CMakeFiles/vp_gpu.dir/cost_model.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/cost_model.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/gpu/CMakeFiles/vp_gpu.dir/device.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/device.cc.o.d"
  "/root/repo/src/gpu/device_config.cc" "src/gpu/CMakeFiles/vp_gpu.dir/device_config.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/device_config.cc.o.d"
  "/root/repo/src/gpu/host.cc" "src/gpu/CMakeFiles/vp_gpu.dir/host.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/host.cc.o.d"
  "/root/repo/src/gpu/kernel.cc" "src/gpu/CMakeFiles/vp_gpu.dir/kernel.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/kernel.cc.o.d"
  "/root/repo/src/gpu/occupancy.cc" "src/gpu/CMakeFiles/vp_gpu.dir/occupancy.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/occupancy.cc.o.d"
  "/root/repo/src/gpu/sm.cc" "src/gpu/CMakeFiles/vp_gpu.dir/sm.cc.o" "gcc" "src/gpu/CMakeFiles/vp_gpu.dir/sm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/vp_gpu.dir/block.cc.o"
  "CMakeFiles/vp_gpu.dir/block.cc.o.d"
  "CMakeFiles/vp_gpu.dir/cost_model.cc.o"
  "CMakeFiles/vp_gpu.dir/cost_model.cc.o.d"
  "CMakeFiles/vp_gpu.dir/device.cc.o"
  "CMakeFiles/vp_gpu.dir/device.cc.o.d"
  "CMakeFiles/vp_gpu.dir/device_config.cc.o"
  "CMakeFiles/vp_gpu.dir/device_config.cc.o.d"
  "CMakeFiles/vp_gpu.dir/host.cc.o"
  "CMakeFiles/vp_gpu.dir/host.cc.o.d"
  "CMakeFiles/vp_gpu.dir/kernel.cc.o"
  "CMakeFiles/vp_gpu.dir/kernel.cc.o.d"
  "CMakeFiles/vp_gpu.dir/occupancy.cc.o"
  "CMakeFiles/vp_gpu.dir/occupancy.cc.o.d"
  "CMakeFiles/vp_gpu.dir/sm.cc.o"
  "CMakeFiles/vp_gpu.dir/sm.cc.o.d"
  "libvp_gpu.a"
  "libvp_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for vp_gpu.
# This may be replaced when dependencies are built.

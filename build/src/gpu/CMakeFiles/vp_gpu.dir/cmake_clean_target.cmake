file(REMOVE_RECURSE
  "libvp_gpu.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/cfd/cfd_app.cc" "src/apps/CMakeFiles/vp_apps.dir/cfd/cfd_app.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/cfd/cfd_app.cc.o.d"
  "/root/repo/src/apps/common/image.cc" "src/apps/CMakeFiles/vp_apps.dir/common/image.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/common/image.cc.o.d"
  "/root/repo/src/apps/facedetect/facedetect_app.cc" "src/apps/CMakeFiles/vp_apps.dir/facedetect/facedetect_app.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/facedetect/facedetect_app.cc.o.d"
  "/root/repo/src/apps/ldpc/ldpc_app.cc" "src/apps/CMakeFiles/vp_apps.dir/ldpc/ldpc_app.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/ldpc/ldpc_app.cc.o.d"
  "/root/repo/src/apps/pyramid/pyramid_app.cc" "src/apps/CMakeFiles/vp_apps.dir/pyramid/pyramid_app.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/pyramid/pyramid_app.cc.o.d"
  "/root/repo/src/apps/raster/raster_app.cc" "src/apps/CMakeFiles/vp_apps.dir/raster/raster_app.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/raster/raster_app.cc.o.d"
  "/root/repo/src/apps/registry.cc" "src/apps/CMakeFiles/vp_apps.dir/registry.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/registry.cc.o.d"
  "/root/repo/src/apps/reyes/reyes_app.cc" "src/apps/CMakeFiles/vp_apps.dir/reyes/reyes_app.cc.o" "gcc" "src/apps/CMakeFiles/vp_apps.dir/reyes/reyes_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/vp_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/vp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/vp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

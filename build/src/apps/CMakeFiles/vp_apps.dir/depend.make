# Empty dependencies file for vp_apps.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvp_apps.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vp_apps.dir/cfd/cfd_app.cc.o"
  "CMakeFiles/vp_apps.dir/cfd/cfd_app.cc.o.d"
  "CMakeFiles/vp_apps.dir/common/image.cc.o"
  "CMakeFiles/vp_apps.dir/common/image.cc.o.d"
  "CMakeFiles/vp_apps.dir/facedetect/facedetect_app.cc.o"
  "CMakeFiles/vp_apps.dir/facedetect/facedetect_app.cc.o.d"
  "CMakeFiles/vp_apps.dir/ldpc/ldpc_app.cc.o"
  "CMakeFiles/vp_apps.dir/ldpc/ldpc_app.cc.o.d"
  "CMakeFiles/vp_apps.dir/pyramid/pyramid_app.cc.o"
  "CMakeFiles/vp_apps.dir/pyramid/pyramid_app.cc.o.d"
  "CMakeFiles/vp_apps.dir/raster/raster_app.cc.o"
  "CMakeFiles/vp_apps.dir/raster/raster_app.cc.o.d"
  "CMakeFiles/vp_apps.dir/registry.cc.o"
  "CMakeFiles/vp_apps.dir/registry.cc.o.d"
  "CMakeFiles/vp_apps.dir/reyes/reyes_app.cc.o"
  "CMakeFiles/vp_apps.dir/reyes/reyes_app.cc.o.d"
  "libvp_apps.a"
  "libvp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

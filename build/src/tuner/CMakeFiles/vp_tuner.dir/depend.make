# Empty dependencies file for vp_tuner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libvp_tuner.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/vp_tuner.dir/offline_tuner.cc.o"
  "CMakeFiles/vp_tuner.dir/offline_tuner.cc.o.d"
  "CMakeFiles/vp_tuner.dir/profiler.cc.o"
  "CMakeFiles/vp_tuner.dir/profiler.cc.o.d"
  "CMakeFiles/vp_tuner.dir/search_space.cc.o"
  "CMakeFiles/vp_tuner.dir/search_space.cc.o.d"
  "libvp_tuner.a"
  "libvp_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

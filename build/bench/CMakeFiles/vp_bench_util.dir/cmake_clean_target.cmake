file(REMOVE_RECURSE
  "../lib/libvp_bench_util.a"
)

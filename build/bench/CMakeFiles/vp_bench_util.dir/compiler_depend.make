# Empty compiler generated dependencies file for vp_bench_util.
# This may be replaced when dependencies are built.

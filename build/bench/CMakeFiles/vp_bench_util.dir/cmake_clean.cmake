file(REMOVE_RECURSE
  "../lib/libvp_bench_util.a"
  "../lib/libvp_bench_util.pdb"
  "CMakeFiles/vp_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/vp_bench_util.dir/bench_util.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vp_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec84_dynamic_parallelism.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec84_dynamic_parallelism.dir/sec84_dynamic_parallelism.cc.o"
  "CMakeFiles/sec84_dynamic_parallelism.dir/sec84_dynamic_parallelism.cc.o.d"
  "sec84_dynamic_parallelism"
  "sec84_dynamic_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec84_dynamic_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

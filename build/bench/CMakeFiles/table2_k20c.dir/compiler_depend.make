# Empty compiler generated dependencies file for table2_k20c.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_k20c.dir/table2_k20c.cc.o"
  "CMakeFiles/table2_k20c.dir/table2_k20c.cc.o.d"
  "table2_k20c"
  "table2_k20c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_k20c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig11_overall.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig11_overall.dir/fig11_overall.cc.o"
  "CMakeFiles/fig11_overall.dir/fig11_overall.cc.o.d"
  "fig11_overall"
  "fig11_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for sec83_details.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec83_details.dir/sec83_details.cc.o"
  "CMakeFiles/sec83_details.dir/sec83_details.cc.o.d"
  "sec83_details"
  "sec83_details.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec83_details.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

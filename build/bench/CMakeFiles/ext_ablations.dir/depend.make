# Empty dependencies file for ext_ablations.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ext_ablations.dir/ext_ablations.cc.o"
  "CMakeFiles/ext_ablations.dir/ext_ablations.cc.o.d"
  "ext_ablations"
  "ext_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig6_characteristics.dir/fig6_characteristics.cc.o"
  "CMakeFiles/fig6_characteristics.dir/fig6_characteristics.cc.o.d"
  "fig6_characteristics"
  "fig6_characteristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_characteristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig6_characteristics.
# This may be replaced when dependencies are built.

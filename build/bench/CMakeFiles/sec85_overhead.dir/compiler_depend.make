# Empty compiler generated dependencies file for sec85_overhead.
# This may be replaced when dependencies are built.

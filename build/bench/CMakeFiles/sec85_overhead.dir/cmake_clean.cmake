file(REMOVE_RECURSE
  "CMakeFiles/sec85_overhead.dir/sec85_overhead.cc.o"
  "CMakeFiles/sec85_overhead.dir/sec85_overhead.cc.o.d"
  "sec85_overhead"
  "sec85_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec85_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig13_pyramid.dir/fig13_pyramid.cc.o"
  "CMakeFiles/fig13_pyramid.dir/fig13_pyramid.cc.o.d"
  "fig13_pyramid"
  "fig13_pyramid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_pyramid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

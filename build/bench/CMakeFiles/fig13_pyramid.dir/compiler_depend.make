# Empty compiler generated dependencies file for fig13_pyramid.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for inspect_app.
# This may be replaced when dependencies are built.

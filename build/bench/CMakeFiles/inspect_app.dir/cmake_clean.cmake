file(REMOVE_RECURSE
  "CMakeFiles/inspect_app.dir/inspect_app.cc.o"
  "CMakeFiles/inspect_app.dir/inspect_app.cc.o.d"
  "inspect_app"
  "inspect_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

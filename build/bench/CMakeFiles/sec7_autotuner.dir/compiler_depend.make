# Empty compiler generated dependencies file for sec7_autotuner.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/sec7_autotuner.dir/sec7_autotuner.cc.o"
  "CMakeFiles/sec7_autotuner.dir/sec7_autotuner.cc.o.d"
  "sec7_autotuner"
  "sec7_autotuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec7_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

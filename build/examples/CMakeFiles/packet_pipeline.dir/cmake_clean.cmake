file(REMOVE_RECURSE
  "CMakeFiles/packet_pipeline.dir/packet_pipeline.cc.o"
  "CMakeFiles/packet_pipeline.dir/packet_pipeline.cc.o.d"
  "packet_pipeline"
  "packet_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for packet_pipeline.
# This may be replaced when dependencies are built.

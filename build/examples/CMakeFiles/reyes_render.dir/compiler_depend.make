# Empty compiler generated dependencies file for reyes_render.
# This may be replaced when dependencies are built.

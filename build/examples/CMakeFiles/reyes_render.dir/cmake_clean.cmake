file(REMOVE_RECURSE
  "CMakeFiles/reyes_render.dir/reyes_render.cc.o"
  "CMakeFiles/reyes_render.dir/reyes_render.cc.o.d"
  "reyes_render"
  "reyes_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reyes_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for reyes_render.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for autotune_demo.
# This may be replaced when dependencies are built.

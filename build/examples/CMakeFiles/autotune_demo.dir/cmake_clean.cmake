file(REMOVE_RECURSE
  "CMakeFiles/autotune_demo.dir/autotune_demo.cc.o"
  "CMakeFiles/autotune_demo.dir/autotune_demo.cc.o.d"
  "autotune_demo"
  "autotune_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for face_detection.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/face_detection.dir/face_detection.cc.o"
  "CMakeFiles/face_detection.dir/face_detection.cc.o.d"
  "face_detection"
  "face_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/face_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

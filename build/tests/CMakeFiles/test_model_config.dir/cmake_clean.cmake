file(REMOVE_RECURSE
  "CMakeFiles/test_model_config.dir/test_model_config.cc.o"
  "CMakeFiles/test_model_config.dir/test_model_config.cc.o.d"
  "test_model_config"
  "test_model_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

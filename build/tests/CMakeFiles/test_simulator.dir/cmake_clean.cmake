file(REMOVE_RECURSE
  "CMakeFiles/test_simulator.dir/test_simulator.cc.o"
  "CMakeFiles/test_simulator.dir/test_simulator.cc.o.d"
  "test_simulator"
  "test_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

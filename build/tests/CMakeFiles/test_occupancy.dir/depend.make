# Empty dependencies file for test_occupancy.
# This may be replaced when dependencies are built.

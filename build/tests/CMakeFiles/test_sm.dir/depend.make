# Empty dependencies file for test_sm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_sm.dir/test_sm.cc.o"
  "CMakeFiles/test_sm.dir/test_sm.cc.o.d"
  "test_sm"
  "test_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_image.
# This may be replaced when dependencies are built.

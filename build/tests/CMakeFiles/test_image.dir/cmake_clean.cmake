file(REMOVE_RECURSE
  "CMakeFiles/test_image.dir/test_image.cc.o"
  "CMakeFiles/test_image.dir/test_image.cc.o.d"
  "test_image"
  "test_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_exec_context.dir/test_exec_context.cc.o"
  "CMakeFiles/test_exec_context.dir/test_exec_context.cc.o.d"
  "test_exec_context"
  "test_exec_context.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_context.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

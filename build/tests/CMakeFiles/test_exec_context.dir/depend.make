# Empty dependencies file for test_exec_context.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_seeding_and_failures.
# This may be replaced when dependencies are built.

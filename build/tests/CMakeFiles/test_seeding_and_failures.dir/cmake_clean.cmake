file(REMOVE_RECURSE
  "CMakeFiles/test_seeding_and_failures.dir/test_seeding_and_failures.cc.o"
  "CMakeFiles/test_seeding_and_failures.dir/test_seeding_and_failures.cc.o.d"
  "test_seeding_and_failures"
  "test_seeding_and_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seeding_and_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

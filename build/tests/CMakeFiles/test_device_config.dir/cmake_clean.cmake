file(REMOVE_RECURSE
  "CMakeFiles/test_device_config.dir/test_device_config.cc.o"
  "CMakeFiles/test_device_config.dir/test_device_config.cc.o.d"
  "test_device_config"
  "test_device_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_device_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_device_config.
# This may be replaced when dependencies are built.

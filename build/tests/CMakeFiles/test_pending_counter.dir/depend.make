# Empty dependencies file for test_pending_counter.
# This may be replaced when dependencies are built.

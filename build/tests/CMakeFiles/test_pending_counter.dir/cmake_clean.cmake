file(REMOVE_RECURSE
  "CMakeFiles/test_pending_counter.dir/test_pending_counter.cc.o"
  "CMakeFiles/test_pending_counter.dir/test_pending_counter.cc.o.d"
  "test_pending_counter"
  "test_pending_counter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pending_counter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_model_properties.
# This may be replaced when dependencies are built.

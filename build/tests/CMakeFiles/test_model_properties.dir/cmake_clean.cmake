file(REMOVE_RECURSE
  "CMakeFiles/test_model_properties.dir/test_model_properties.cc.o"
  "CMakeFiles/test_model_properties.dir/test_model_properties.cc.o.d"
  "test_model_properties"
  "test_model_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

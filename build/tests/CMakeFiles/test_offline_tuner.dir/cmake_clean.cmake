file(REMOVE_RECURSE
  "CMakeFiles/test_offline_tuner.dir/test_offline_tuner.cc.o"
  "CMakeFiles/test_offline_tuner.dir/test_offline_tuner.cc.o.d"
  "test_offline_tuner"
  "test_offline_tuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_offline_tuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_offline_tuner.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/test_apps.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/test_apps.dir/test_apps.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/vp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tuner/CMakeFiles/vp_tuner.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/vp_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/vp_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/test_apps.dir/test_apps.cc.o"
  "CMakeFiles/test_apps.dir/test_apps.cc.o.d"
  "test_apps"
  "test_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_runner_features.dir/test_runner_features.cc.o"
  "CMakeFiles/test_runner_features.dir/test_runner_features.cc.o.d"
  "test_runner_features"
  "test_runner_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runner_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_runner_features.
# This may be replaced when dependencies are built.

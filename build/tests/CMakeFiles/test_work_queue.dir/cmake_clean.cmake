file(REMOVE_RECURSE
  "CMakeFiles/test_work_queue.dir/test_work_queue.cc.o"
  "CMakeFiles/test_work_queue.dir/test_work_queue.cc.o.d"
  "test_work_queue"
  "test_work_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_work_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

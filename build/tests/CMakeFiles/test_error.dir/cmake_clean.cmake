file(REMOVE_RECURSE
  "CMakeFiles/test_error.dir/test_error.cc.o"
  "CMakeFiles/test_error.dir/test_error.cc.o.d"
  "test_error"
  "test_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

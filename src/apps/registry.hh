/**
 * @file
 * Application registry: creates the paper's six evaluation
 * applications by name, at full (paper) or reduced (tuner/test)
 * scale.
 */

#ifndef VP_APPS_REGISTRY_HH
#define VP_APPS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hh"

namespace vp {

/** Workload scale of a created application. */
enum class AppScale
{
    /** Paper-like workload (possibly iteration-scaled; see docs). */
    Full,
    /** Reduced workload for tuner searches and unit tests. */
    Small,
};

/** Names of the six evaluation applications (Table 1). */
std::vector<std::string> appNames();

/**
 * Instantiate application @p name ("pyramid", "facedetect", "reyes",
 * "cfd", "raster", "ldpc") at the given scale. Fatal on unknown
 * names.
 */
std::unique_ptr<AppDriver> makeApp(const std::string& name,
                                   AppScale scale = AppScale::Full);

} // namespace vp

#endif // VP_APPS_REGISTRY_HH

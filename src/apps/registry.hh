/**
 * @file
 * Application registry: creates the paper's six evaluation
 * applications plus the streaming vidstream workload by name, at
 * full (paper) or reduced (tuner/test) scale.
 */

#ifndef VP_APPS_REGISTRY_HH
#define VP_APPS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hh"

namespace vp {

/** Workload scale of a created application. */
enum class AppScale
{
    /** Paper-like workload (possibly iteration-scaled; see docs). */
    Full,
    /** Reduced workload for tuner searches and unit tests. */
    Small,
};

/** Names of the registered applications: the paper's six (Table 1)
 *  plus the streaming "vidstream" workload. */
std::vector<std::string> appNames();

/** The paper's six evaluation applications only (Table 1) — what
 *  the figure/table reproduction benches sweep; vidstream is our
 *  extension and has no paper reference numbers. */
std::vector<std::string> paperAppNames();

/**
 * Instantiate application @p name ("pyramid", "facedetect", "reyes",
 * "cfd", "raster", "ldpc", "vidstream") at the given scale. Fatal on
 * unknown names.
 */
std::unique_ptr<AppDriver> makeApp(const std::string& name,
                                   AppScale scale = AppScale::Full);

} // namespace vp

#endif // VP_APPS_REGISTRY_HH

/**
 * @file
 * Streaming video-analytics application (ROADMAP: PulseOBS-shaped):
 * frame decode -> face detect -> ROI track -> per-face signal
 * extraction -> temporal filter.
 *
 * Unlike the six drain-to-empty batch apps, vidstream is built for
 * the serving layer: frames of each camera arrive on a frame clock
 * (one open-loop tenant per camera via VsFrameWorkload) and the
 * success metric is sustained FPS + per-frame deadline hit-rate, not
 * drain time. Face detection has data-dependent fan-out — a seeded
 * per-frame face count that drifts over time (faces enter and leave
 * the scene on a bounded random walk), so the offered per-frame work
 * is genuinely non-stationary, which is what the adaptive controller
 * and the deadline accounting are exercised against.
 *
 * Every per-item computation is a pure function of (seed, camera,
 * frame, face): stages store results only into slots owned by their
 * item, and the temporal filter *recomputes* its window of past
 * samples from the pure helpers instead of reading state written by
 * other frames' items. Execution order across frames and faces
 * therefore cannot change any value, so all execution models and
 * shard plans agree bit-for-bit.
 */

#ifndef VP_APPS_VIDSTREAM_VIDSTREAM_APP_HH
#define VP_APPS_VIDSTREAM_VIDSTREAM_APP_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/versapipe.hh"
#include "serve/serving_engine.hh"

namespace vp::vidstream {

/** Workload parameters. */
struct VsParams
{
    int cameras = 4;
    int frames = 48;       //!< frames per camera in batch mode
    int width = 640;       //!< decoded frame width (cost model)
    int height = 360;      //!< decoded frame height
    int maxFaces = 6;      //!< random-walk ceiling on faces in scene
    int driftPeriod = 8;   //!< frames between face-count walk steps
    int roi = 24;          //!< square per-face region of interest
    int filterWindow = 8;  //!< temporal-filter taps (frames)
    std::uint64_t seed = 20260808;

    static VsParams small();
};

/** Data item (16 B like the paper's Table 2 apps). */
struct VsItem
{
    std::int32_t cam;
    std::int32_t frame;
    std::int32_t face;
    /** Packed ROI center (x << 16 | y), stamped by VsTrack. */
    std::int32_t tag;
};
static_assert(sizeof(VsItem) == 16, "16-byte items");

class VidstreamApp;

/** Frame decode: produce the frame's luma plane (one item/frame). */
class VsDecode : public Stage<VsItem>
{
  public:
    explicit VsDecode(VidstreamApp& app);
    TaskCost cost(const VsItem& item) const override;
    void execute(ExecContext& ctx, VsItem& item) override;

  private:
    VidstreamApp& app_;
};

/** Face detection: data-dependent fan-out, one item per face. */
class VsDetect : public Stage<VsItem>
{
  public:
    explicit VsDetect(VidstreamApp& app);
    TaskCost cost(const VsItem& item) const override;
    void execute(ExecContext& ctx, VsItem& item) override;

  private:
    VidstreamApp& app_;
};

/** ROI tracking: locate one face's region in this frame. */
class VsTrack : public Stage<VsItem>
{
  public:
    explicit VsTrack(VidstreamApp& app);
    TaskCost cost(const VsItem& item) const override;
    void execute(ExecContext& ctx, VsItem& item) override;

  private:
    VidstreamApp& app_;
};

/** Per-face signal extraction (mean ROI luma sample). */
class VsExtract : public Stage<VsItem>
{
  public:
    explicit VsExtract(VidstreamApp& app);
    TaskCost cost(const VsItem& item) const override;
    void execute(ExecContext& ctx, VsItem& item) override;

  private:
    VidstreamApp& app_;
};

/** Temporal filter over the face's recent sample window. */
class VsFilter : public Stage<VsItem>
{
  public:
    explicit VsFilter(VidstreamApp& app);
    TaskCost cost(const VsItem& item) const override;
    void execute(ExecContext& ctx, VsItem& item) override;

  private:
    VidstreamApp& app_;
};

/** The streaming video-analytics application driver. */
class VidstreamApp : public AppDriver
{
  public:
    explicit VidstreamApp(VsParams params = {});

    std::string name() const override { return "vidstream"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    /** A flow is one camera's frame stream. */
    int flowCount() const override { return params_.cameras; }
    /** Batch mode: seed every frame of camera @p flow at once. */
    void seedFlow(Seeder& seeder, int flow) override;
    double inputBytes() const override;
    bool verify() override;

    const VsParams& params() const { return params_; }

    /**
     * Serving mode: seed the next frame of camera @p cam on its
     * frame clock (one VsDecode item). The per-camera frame counter
     * advances past params().frames — the face-count walk and every
     * signal are pure functions of the frame number, so an unbounded
     * stream needs no preallocated state. reset() rewinds the
     * counters so serving reruns are bit-identical.
     */
    void seedFrame(Seeder& seeder, int cam);

    /** Frames fully filtered (every face) in the last run. */
    std::uint64_t framesFiltered() const { return framesFiltered_; }

    /** @name Pure per-frame signal model (shared with reference) @{ */

    /** Faces in camera @p cam's scene at @p frame: a seeded random
     *  walk in [0, maxFaces] stepping every driftPeriod frames. */
    int faceCount(int cam, int frame) const;

    /** Mean luma of the decoded frame (pure; loops over a sample
     *  grid of hashed pixel values). */
    double lumaOf(int cam, int frame) const;

    /** ROI center of @p face in @p frame (seeded anchor + drift). */
    std::pair<int, int> roiOf(int cam, int frame, int face) const;

    /** Raw extracted signal sample of one (cam, frame, face). */
    double sampleOf(int cam, int frame, int face) const;

    /** Temporally filtered signal: weighted window over the face's
     *  own recent samples, recomputed purely. */
    double filteredOf(int cam, int frame, int face) const;

    /** @} */

  private:
    friend class VsDecode;
    friend class VsDetect;
    friend class VsTrack;
    friend class VsExtract;
    friend class VsFilter;

    VsParams params_;
    Pipeline pipe_;

    /** Slot index of (cam, frame) into the batch-mode tables. */
    std::size_t slot(int cam, int frame) const;

    /** Decoded mean luma per (cam, frame % frames). */
    std::vector<double> luma_;
    /** Detected face count per (cam, frame % frames). */
    std::vector<int> faces_;
    /** Extracted samples, slot-per-(cam, frame % frames, face). */
    std::vector<double> samples_;
    /** Filter outputs, same slotting as samples_. */
    std::vector<double> filtered_;
    /** Faces still unfiltered per (cam, frame % frames) (join). */
    std::vector<int> faceRemaining_;
    std::uint64_t framesFiltered_ = 0;

    /** Serving frame clock: next frame per camera. */
    std::vector<int> nextFrame_;

    /** Reference outputs of the sequential CPU pipeline. */
    std::vector<double> refFiltered_;
    std::vector<int> refFaces_;
    bool refBuilt_ = false;

    void buildReference();
};

/**
 * Frame-clock serving workload: one tenant per camera, each admitted
 * request is one frame of that camera's stream (request -> camera =
 * tenant index, frame = the camera's clock position). Pair it with
 * per-tenant deadlineCycles equal to the frame budget to measure
 * per-frame deadline hit-rate.
 */
class VsFrameWorkload : public ServingWorkload
{
  public:
    explicit VsFrameWorkload(VidstreamApp& app)
        : app_(app)
    {
    }

    AppDriver& driver() override { return app_; }

    void
    seedRequest(Seeder& seeder, const Request& req) override
    {
        app_.seedFrame(seeder, req.tenant % app_.params().cameras);
    }

  private:
    VidstreamApp& app_;
};

} // namespace vp::vidstream

#endif // VP_APPS_VIDSTREAM_VIDSTREAM_APP_HH

#include "apps/vidstream/vidstream_app.hh"

#include <algorithm>

#include "common/error.hh"

namespace vp::vidstream {

namespace {

/** splitmix64 finalizer: the pure hash behind every pixel/walk value. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from a hash input. */
double
unit(std::uint64_t x)
{
    return static_cast<double>(mix(x) >> 11) * 0x1.0p-53;
}

/** Key for one (cam, frame, extra) coordinate. */
std::uint64_t
key(std::uint64_t seed, int cam, int frame, int a = 0, int b = 0)
{
    std::uint64_t k = seed;
    k = mix(k ^ (static_cast<std::uint64_t>(cam) + 1));
    k = mix(k ^ (static_cast<std::uint64_t>(frame) + 0x10001));
    k = mix(k ^ (static_cast<std::uint64_t>(a) + 0x20002));
    k = mix(k ^ (static_cast<std::uint64_t>(b) + 0x30003));
    return k;
}

constexpr int kLumaSamples = 96; //!< decode sample-grid points
constexpr int kRoiGrid = 8;      //!< extract samples per ROI axis

} // namespace

VsParams
VsParams::small()
{
    VsParams p;
    p.cameras = 2;
    p.frames = 12;
    p.width = 320;
    p.height = 180;
    p.maxFaces = 4;
    p.driftPeriod = 4;
    p.filterWindow = 4;
    return p;
}

// ------------------------------ stages -------------------------- //

VsDecode::VsDecode(VidstreamApp& app)
    : app_(app)
{
    name = "vs_decode";
    threadNum = 256;
    resources.regsPerThread = 48; // 5 blocks/SM
    resources.codeBytes = 9216;
}

TaskCost
VsDecode::cost(const VsItem&) const
{
    double px = double(app_.params_.width) * app_.params_.height
        / threadNum;
    TaskCost c;
    c.computeInsts = px * 5.0; // entropy decode + dequant + luma
    c.memInsts = px * 2.5;
    c.l1HitRate = 0.60;
    return c;
}

void
VsDecode::execute(ExecContext& ctx, VsItem& item)
{
    app_.luma_[app_.slot(item.cam, item.frame)] =
        app_.lumaOf(item.cam, item.frame);
    ctx.enqueue<VsDetect>(VsItem{item.cam, item.frame, 0, 0});
}

VsDetect::VsDetect(VidstreamApp& app)
    : app_(app)
{
    name = "vs_detect";
    threadNum = 128;
    resources.regsPerThread = 64; // 4 blocks/SM
    resources.codeBytes = 14336;
}

TaskCost
VsDetect::cost(const VsItem&) const
{
    double px = double(app_.params_.width) * app_.params_.height
        / threadNum;
    TaskCost c;
    c.computeInsts = px * 9.0; // sliding-window classifier sweep
    c.memInsts = px * 4.0;
    c.serialInsts = 800.0; // detection NMS on one lane
    c.l1HitRate = 0.65;
    return c;
}

void
VsDetect::execute(ExecContext& ctx, VsItem& item)
{
    std::size_t s = app_.slot(item.cam, item.frame);
    int n = app_.faceCount(item.cam, item.frame);
    app_.faces_[s] = n;
    app_.faceRemaining_[s] = n;
    if (n == 0) {
        // An empty scene still counts as a fully analyzed frame.
        ++app_.framesFiltered_;
        return;
    }
    for (int f = 0; f < n; ++f)
        ctx.enqueue<VsTrack>(VsItem{item.cam, item.frame, f, 0});
}

VsTrack::VsTrack(VidstreamApp& app)
    : app_(app)
{
    name = "vs_track";
    threadNum = 64;
    resources.regsPerThread = 40; // 6 blocks/SM
    resources.codeBytes = 6144;
}

TaskCost
VsTrack::cost(const VsItem&) const
{
    double px = double(app_.params_.roi) * app_.params_.roi * 4.0
        / threadNum; // 4 candidate offsets per ROI pixel
    TaskCost c;
    c.computeInsts = px * 6.0;
    c.memInsts = px * 3.0;
    c.l1HitRate = 0.75;
    return c;
}

void
VsTrack::execute(ExecContext& ctx, VsItem& item)
{
    auto [x, y] = app_.roiOf(item.cam, item.frame, item.face);
    ctx.enqueue<VsExtract>(
        VsItem{item.cam, item.frame, item.face,
               static_cast<std::int32_t>((x << 16) | y)});
}

VsExtract::VsExtract(VidstreamApp& app)
    : app_(app)
{
    name = "vs_extract";
    threadNum = 64;
    resources.regsPerThread = 44; // 5 blocks/SM
    resources.codeBytes = 7168;
}

TaskCost
VsExtract::cost(const VsItem&) const
{
    double px = double(app_.params_.roi) * app_.params_.roi
        / threadNum;
    TaskCost c;
    c.computeInsts = px * 4.0; // spatial mean + skin-mask weighting
    c.memInsts = px * 2.0;
    c.l1HitRate = 0.80;
    return c;
}

void
VsExtract::execute(ExecContext& ctx, VsItem& item)
{
    std::size_t s = app_.slot(item.cam, item.frame);
    app_.samples_[s * app_.params_.maxFaces + item.face] =
        app_.sampleOf(item.cam, item.frame, item.face);
    ctx.enqueue<VsFilter>(item);
}

VsFilter::VsFilter(VidstreamApp& app)
    : app_(app)
{
    name = "vs_filter";
    threadNum = 32;
    resources.regsPerThread = 32; // 8 blocks/SM
    resources.codeBytes = 4096;
}

TaskCost
VsFilter::cost(const VsItem&) const
{
    TaskCost c;
    // One tap re-derives its sample from the ROI grid.
    double taps = app_.params_.filterWindow;
    c.computeInsts = taps * 70.0;
    c.memInsts = taps * 12.0;
    c.l1HitRate = 0.85;
    return c;
}

void
VsFilter::execute(ExecContext&, VsItem& item)
{
    std::size_t s = app_.slot(item.cam, item.frame);
    app_.filtered_[s * app_.params_.maxFaces + item.face] =
        app_.filteredOf(item.cam, item.frame, item.face);
    if (--app_.faceRemaining_[s] == 0)
        ++app_.framesFiltered_;
}

// ------------------------------ driver -------------------------- //

VidstreamApp::VidstreamApp(VsParams params)
    : params_(params)
{
    VP_REQUIRE(params_.cameras > 0 && params_.frames > 0
                   && params_.maxFaces > 0 && params_.driftPeriod > 0
                   && params_.filterWindow > 0
                   && params_.roi > 0
                   && params_.width >= params_.roi
                   && params_.height >= params_.roi,
               "bad vidstream parameters");
    pipe_.addStage<VsDecode>(*this);
    pipe_.addStage<VsDetect>(*this);
    pipe_.addStage<VsTrack>(*this);
    pipe_.addStage<VsExtract>(*this);
    pipe_.addStage<VsFilter>(*this);
    pipe_.link<VsDecode, VsDetect>();
    pipe_.link<VsDetect, VsTrack>();
    pipe_.link<VsTrack, VsExtract>();
    pipe_.link<VsExtract, VsFilter>();
    pipe_.setStructure(PipelineStructure::Linear);
    pipe_.megakernelExtraRegs = 12;
    reset();
}

std::size_t
VidstreamApp::slot(int cam, int frame) const
{
    // Serving streams run past the batch horizon; slots wrap. Every
    // stored value is a pure function of (cam, frame), so a wrapped
    // overwrite is still deterministic run-to-run.
    return static_cast<std::size_t>(cam)
        * static_cast<std::size_t>(params_.frames)
        + static_cast<std::size_t>(frame % params_.frames);
}

int
VidstreamApp::faceCount(int cam, int frame) const
{
    // Bounded random walk, one +/-1/0 step per drift window: faces
    // enter and leave the scene, so per-frame fan-out is
    // non-stationary but piecewise constant and a pure function of
    // (seed, cam, frame).
    int windows = frame / params_.driftPeriod;
    std::uint64_t k0 = key(params_.seed, cam, -1);
    int n = 1
        + static_cast<int>(mix(k0)
                           % static_cast<std::uint64_t>(
                               params_.maxFaces / 2 + 1));
    for (int w = 1; w <= windows; ++w) {
        std::uint64_t r = key(params_.seed, cam, -2, w);
        int step = static_cast<int>(r % 3) - 1;
        n = std::clamp(n + step, 0, params_.maxFaces);
    }
    return n;
}

double
VidstreamApp::lumaOf(int cam, int frame) const
{
    // Mean luma over a fixed sample grid of hashed pixels, modulated
    // by a slow scene-brightness drift.
    double sum = 0.0;
    for (int i = 0; i < kLumaSamples; ++i)
        sum += unit(key(params_.seed, cam, frame, 0x40000 + i));
    double mean = sum / kLumaSamples;
    double drift = 0.15
        * unit(key(params_.seed, cam, frame / params_.driftPeriod,
                   0x50000));
    return 0.25 + 0.5 * mean + drift;
}

std::pair<int, int>
VidstreamApp::roiOf(int cam, int frame, int face) const
{
    int maxX = params_.width - params_.roi;
    int maxY = params_.height - params_.roi;
    // Seeded anchor per face plus a small per-window wander.
    std::uint64_t a = key(params_.seed, cam, -3, face);
    int ax = static_cast<int>(a % static_cast<std::uint64_t>(maxX + 1));
    int ay = static_cast<int>((a >> 20)
                              % static_cast<std::uint64_t>(maxY + 1));
    std::uint64_t w =
        key(params_.seed, cam, frame / params_.driftPeriod, face,
            0x60000);
    int dx = static_cast<int>(w % 17) - 8;
    int dy = static_cast<int>((w >> 8) % 17) - 8;
    return {std::clamp(ax + dx, 0, maxX), std::clamp(ay + dy, 0, maxY)};
}

double
VidstreamApp::sampleOf(int cam, int frame, int face) const
{
    auto [x0, y0] = roiOf(cam, frame, face);
    // Mean hashed-pixel luma over an 8x8 grid inside the ROI,
    // blended with the frame's global luma (rPPG-style raw signal).
    double sum = 0.0;
    int step = std::max(1, params_.roi / kRoiGrid);
    for (int gy = 0; gy < kRoiGrid; ++gy) {
        for (int gx = 0; gx < kRoiGrid; ++gx) {
            int x = x0 + gx * step;
            int y = y0 + gy * step;
            sum += unit(key(params_.seed, cam, frame, x, y + 0x70000));
        }
    }
    double roiMean = sum / (kRoiGrid * kRoiGrid);
    return 0.6 * roiMean + 0.4 * lumaOf(cam, frame);
}

double
VidstreamApp::filteredOf(int cam, int frame, int face) const
{
    // Triangular-weighted average over the face's own recent sample
    // window. Past samples are recomputed from the pure model, never
    // read from state written by other frames' items — execution
    // order across frames cannot change the result.
    int window = std::min(params_.filterWindow, frame + 1);
    double acc = 0.0;
    double wsum = 0.0;
    for (int k = 0; k < window; ++k) {
        double w = params_.filterWindow - k;
        acc += w * sampleOf(cam, frame - k, face);
        wsum += w;
    }
    return acc / wsum;
}

double
VidstreamApp::inputBytes() const
{
    // One YUV420 frame: the stream arrives on the frame clock, so only
    // the frame currently being decoded is staged host-side.  Charging
    // the whole batch here would serialize every frame behind a giant
    // up-front copy and swamp the per-frame deadline accounting.
    return 1.5 * params_.width * params_.height;
}

void
VidstreamApp::reset()
{
    std::size_t frameSlots = static_cast<std::size_t>(params_.cameras)
        * static_cast<std::size_t>(params_.frames);
    std::size_t faceSlots =
        frameSlots * static_cast<std::size_t>(params_.maxFaces);
    luma_.assign(frameSlots, 0.0);
    faces_.assign(frameSlots, 0);
    faceRemaining_.assign(frameSlots, 0);
    samples_.assign(faceSlots, 0.0);
    filtered_.assign(faceSlots, 0.0);
    framesFiltered_ = 0;
    nextFrame_.assign(static_cast<std::size_t>(params_.cameras), 0);
}

void
VidstreamApp::seedFlow(Seeder& seeder, int flow)
{
    std::vector<VsItem> frames;
    frames.reserve(static_cast<std::size_t>(params_.frames));
    for (int f = 0; f < params_.frames; ++f)
        frames.push_back(VsItem{flow, f, 0, 0});
    seeder.insert<VsDecode>(std::move(frames));
}

void
VidstreamApp::seedFrame(Seeder& seeder, int cam)
{
    int frame = nextFrame_[static_cast<std::size_t>(cam)]++;
    std::vector<VsItem> one{VsItem{cam, frame, 0, 0}};
    seeder.insert<VsDecode>(std::move(one));
}

void
VidstreamApp::buildReference()
{
    refFaces_.assign(faces_.size(), 0);
    refFiltered_.assign(filtered_.size(), 0.0);
    for (int c = 0; c < params_.cameras; ++c) {
        for (int f = 0; f < params_.frames; ++f) {
            std::size_t s = slot(c, f);
            int n = faceCount(c, f);
            refFaces_[s] = n;
            for (int face = 0; face < n; ++face) {
                refFiltered_[s * params_.maxFaces + face] =
                    filteredOf(c, f, face);
            }
        }
    }
    refBuilt_ = true;
}

bool
VidstreamApp::verify()
{
    if (!refBuilt_)
        buildReference();
    return faces_ == refFaces_ && filtered_ == refFiltered_;
}

} // namespace vp::vidstream

#include "apps/reyes/reyes_app.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace vp::reyes {

namespace {

/** De Casteljau split of 4 control values at t = 0.5. */
void
splitCubic(const float in[4], float lo[4], float hi[4])
{
    float a = (in[0] + in[1]) * 0.5f;
    float b = (in[1] + in[2]) * 0.5f;
    float c = (in[2] + in[3]) * 0.5f;
    float d = (a + b) * 0.5f;
    float e = (b + c) * 0.5f;
    float f = (d + e) * 0.5f;
    lo[0] = in[0];
    lo[1] = a;
    lo[2] = d;
    lo[3] = f;
    hi[0] = f;
    hi[1] = e;
    hi[2] = c;
    hi[3] = in[3];
}

/** Cubic Bezier evaluation. */
float
evalCubic(const float* p, int stride, float t)
{
    float u = 1.0f - t;
    return u * u * u * p[0] + 3 * u * u * t * p[stride]
        + 3 * u * t * t * p[2 * stride] + t * t * t * p[3 * stride];
}

} // namespace

ReyesParams
ReyesParams::small()
{
    ReyesParams p;
    p.patches = 8;
    p.width = 320;
    p.height = 180;
    p.maxDepth = 6;
    return p;
}

// ------------------------------ stages -------------------------- //

SplitStage::SplitStage(ReyesApp& app)
    : app_(app)
{
    name = "split";
    threadNum = 32;
    resources.regsPerThread = 111; // 2 blocks/SM (paper sec 8.3)
    resources.codeBytes = 14336;
    kbkHostBytesPerItem = 2.0 * sizeof(PatchItem); // CPU control
}

TaskCost
SplitStage::cost(const PatchItem&) const
{
    TaskCost c;
    c.computeInsts = 220.0; // bound 16 cps + two de Casteljau passes
    c.memInsts = 40.0;      // 272-byte patch in, two out
    c.l1HitRate = 0.55;
    return c;
}

void
SplitStage::execute(ExecContext& ctx, PatchItem& item)
{
    if (item.depth >= app_.params_.maxDepth
        || app_.boundSize(item) <= app_.params_.diceBound) {
        ctx.enqueue<DiceStage>(item);
        return;
    }
    // Split all 4 rows (or columns) of control points at t = 0.5.
    PatchItem a = item, b = item;
    a.depth = b.depth = item.depth + 1;
    a.axis = b.axis = 1 - item.axis;
    for (int c = 0; c < 3; ++c) {
        for (int row = 0; row < 4; ++row) {
            float in[4], lo[4], hi[4];
            for (int col = 0; col < 4; ++col) {
                int idx = item.axis == 0 ? row * 4 + col
                                         : col * 4 + row;
                in[col] = item.cp[idx][c];
            }
            splitCubic(in, lo, hi);
            for (int col = 0; col < 4; ++col) {
                int idx = item.axis == 0 ? row * 4 + col
                                         : col * 4 + row;
                a.cp[idx][c] = lo[col];
                b.cp[idx][c] = hi[col];
            }
        }
    }
    ctx.enqueue<SplitStage>(a);
    ctx.enqueue<SplitStage>(b);
}

DiceStage::DiceStage(ReyesApp& app)
    : app_(app)
{
    name = "dice";
    threadNum = 128;
    blockThreads = 128; // lets dice share an SM with split (sec 8.3)
    resources.regsPerThread = 255; // 1 block/SM (paper sec 8.3)
    resources.codeBytes = 20480;
}

TaskCost
DiceStage::cost(const PatchItem&) const
{
    int g = app_.params_.grid + 1;
    TaskCost c;
    // (grid+1)^2 surface evaluations over 128 threads.
    c.computeInsts = double(g) * g * 160.0 / 128.0;
    c.memInsts = double(g) * g * 24.0 / 128.0;
    c.l1HitRate = 0.60;
    return c;
}

void
DiceStage::execute(ExecContext& ctx, PatchItem& item)
{
    int g = app_.params_.grid + 1;
    ReyesApp::Grid grid;
    grid.pts.resize(static_cast<std::size_t>(g) * g * 3);
    for (int j = 0; j < g; ++j) {
        float v = float(j) / (g - 1);
        for (int i = 0; i < g; ++i) {
            float u = float(i) / (g - 1);
            for (int c = 0; c < 3; ++c) {
                // Evaluate rows in u, then the column in v.
                float col[4];
                for (int row = 0; row < 4; ++row) {
                    float rowpts[4] = {
                        item.cp[row * 4 + 0][c],
                        item.cp[row * 4 + 1][c],
                        item.cp[row * 4 + 2][c],
                        item.cp[row * 4 + 3][c],
                    };
                    col[row] = evalCubic(rowpts, 1, u);
                }
                grid.pts[(static_cast<std::size_t>(j) * g + i) * 3
                         + c] = evalCubic(col, 1, v);
            }
        }
    }
    int grid_id = static_cast<int>(app_.grids_.size());
    app_.grids_.push_back(std::move(grid));
    ctx.enqueue<ShadeStage>(GridItem{grid_id, item.id});
}

ShadeStage::ShadeStage(ReyesApp& app)
    : app_(app)
{
    name = "shade";
    threadNum = 256;
    resources.regsPerThread = 61; // 4 blocks/SM (paper sec 8.3)
    resources.codeBytes = 10240;
}

TaskCost
ShadeStage::cost(const GridItem&) const
{
    int g = app_.params_.grid;
    TaskCost c;
    c.computeInsts = double(g) * g * 130.0 / 256.0;
    c.memInsts = double(g) * g * 20.0 / 256.0;
    c.l1HitRate = 0.50;
    return c;
}

void
ShadeStage::execute(ExecContext&, GridItem& item)
{
    app_.shadeGrid(app_.grids_[item.gridId], app_.fb_);
}

// ------------------------------ driver -------------------------- //

ReyesApp::ReyesApp(ReyesParams params)
    : params_(params)
{
    VP_REQUIRE(params_.patches > 0 && params_.grid >= 2,
               "bad Reyes parameters");
    pipe_.addStage<SplitStage>(*this);
    pipe_.addStage<DiceStage>(*this);
    pipe_.addStage<ShadeStage>(*this);
    pipe_.link<SplitStage, SplitStage>(); // recursion
    pipe_.link<SplitStage, DiceStage>();
    pipe_.link<DiceStage, ShadeStage>();
    pipe_.setStructure(PipelineStructure::Recursion);

    // Teapot-like scene: curved patches at varying distances and
    // sizes, so split depth varies per patch (dynamic workload).
    Rng rng(params_.seed);
    for (int p = 0; p < params_.patches; ++p) {
        PatchItem patch{};
        double cx = rng.nextRange(-3.0, 3.0);
        double cy = rng.nextRange(-1.8, 1.8);
        double cz = rng.nextRange(5.0, 16.0);
        double size = rng.nextRange(0.6, 2.2);
        for (int j = 0; j < 4; ++j) {
            for (int i = 0; i < 4; ++i) {
                int idx = j * 4 + i;
                double u = i / 3.0 - 0.5, v = j / 3.0 - 0.5;
                patch.cp[idx][0] = float(cx + u * size);
                patch.cp[idx][1] = float(cy + v * size);
                // Curved surface: paraboloid bulge + ripple.
                patch.cp[idx][2] = float(
                    cz - (u * u + v * v) * size
                    + 0.3 * std::sin(u * 6 + p) * size);
                patch.cp[idx][3] = 1.0f;
            }
        }
        patch.depth = 0;
        patch.id = p;
        patch.axis = 0;
        initial_.push_back(patch);
    }
    reset();
}

void
ReyesApp::project(const float* xyz, double& sx, double& sy) const
{
    double z = std::max(0.1f, xyz[2]);
    double f = params_.height * 0.9;
    sx = xyz[0] / z * f + params_.width * 0.5;
    sy = xyz[1] / z * f + params_.height * 0.5;
}

double
ReyesApp::boundSize(const PatchItem& p) const
{
    double min_x = 1e30, max_x = -1e30, min_y = 1e30, max_y = -1e30;
    for (int i = 0; i < 16; ++i) {
        double sx, sy;
        project(p.cp[i], sx, sy);
        min_x = std::min(min_x, sx);
        max_x = std::max(max_x, sx);
        min_y = std::min(min_y, sy);
        max_y = std::max(max_y, sy);
    }
    return std::max(max_x - min_x, max_y - min_y);
}

void
ReyesApp::shadeGrid(const Grid& g, std::vector<std::uint32_t>& fb)
    const
{
    int n = params_.grid + 1;
    auto pt = [&](int i, int j) {
        return &g.pts[(static_cast<std::size_t>(j) * n + i) * 3];
    };
    for (int j = 0; j < n - 1; ++j) {
        for (int i = 0; i < n - 1; ++i) {
            const float* p00 = pt(i, j);
            const float* p10 = pt(i + 1, j);
            const float* p01 = pt(i, j + 1);
            // Face normal from the two grid tangents.
            float ux = p10[0] - p00[0], uy = p10[1] - p00[1],
                  uz = p10[2] - p00[2];
            float vx = p01[0] - p00[0], vy = p01[1] - p00[1],
                  vz = p01[2] - p00[2];
            float nx = uy * vz - uz * vy;
            float ny = uz * vx - ux * vz;
            float nz = ux * vy - uy * vx;
            float len = std::sqrt(nx * nx + ny * ny + nz * nz);
            if (len <= 1e-12f)
                continue;
            // Lambert against a fixed light direction.
            float lambert = std::max(
                0.0f, -(nx * 0.27f + ny * -0.53f + nz * -0.80f)
                          / len);
            // Splat the micropolygon's corner to the framebuffer.
            double sx, sy;
            project(p00, sx, sy);
            int x = static_cast<int>(sx);
            int y = static_cast<int>(sy);
            if (x < 0 || y < 0 || x >= params_.width
                || y >= params_.height)
                continue;
            // Depth-major packing, max-combined: nearer surfaces
            // (smaller z) win deterministically in any order.
            std::uint32_t inv_z = 0xFFFFFF
                - std::min(0xFFFFFFu,
                           static_cast<std::uint32_t>(p00[2] * 1000));
            std::uint32_t shade = static_cast<std::uint32_t>(
                lambert * 255.0f);
            std::uint32_t packed = (inv_z << 8) | shade;
            std::uint32_t& cell =
                fb[static_cast<std::size_t>(y) * params_.width + x];
            cell = std::max(cell, packed);
        }
    }
}

std::vector<std::uint32_t>
ReyesApp::renderReference() const
{
    std::vector<std::uint32_t> fb(
        static_cast<std::size_t>(params_.width) * params_.height, 0);
    std::vector<Grid> scratch;
    // Depth-first sequential pipeline with the same stage math.
    ReyesApp& self = const_cast<ReyesApp&>(*this);
    std::vector<PatchItem> stack = initial_;
    while (!stack.empty()) {
        PatchItem item = stack.back();
        stack.pop_back();
        if (item.depth >= params_.maxDepth
            || boundSize(item) <= params_.diceBound) {
            // Inline dice (same code path as DiceStage::execute).
            std::vector<Grid> saved_grids;
            saved_grids.swap(self.grids_);
            ExecContext dummy_ctx(self.pipe_, 0, -1);
            DiceStage dicer(self);
            dummy_ctx.beginTask(TaskCost{});
            dicer.execute(dummy_ctx, item);
            Grid g = std::move(self.grids_.back());
            self.grids_ = std::move(saved_grids);
            shadeGrid(g, fb);
        } else {
            ExecContext dummy_ctx(self.pipe_, 0, -1);
            SplitStage splitter(self);
            dummy_ctx.beginTask(TaskCost{});
            std::vector<Grid> saved_grids;
            saved_grids.swap(self.grids_);
            splitter.execute(dummy_ctx, item);
            self.grids_ = std::move(saved_grids);
            // Recover the two children from the buffered outputs.
            for (StagedOutput& out : dummy_ctx.outputs()) {
                WorkQueue<PatchItem> tmp("tmp");
                out.push(tmp);
                PatchItem child{};
                tmp.pop(child);
                stack.push_back(child);
            }
        }
    }
    return fb;
}

void
ReyesApp::reset()
{
    grids_.clear();
    fb_.assign(static_cast<std::size_t>(params_.width)
               * params_.height, 0);
}

void
ReyesApp::seedFlow(Seeder& seeder, int)
{
    seeder.insert<SplitStage>(initial_);
}

bool
ReyesApp::verify()
{
    if (!refBuilt_) {
        std::uint64_t h = 1469598103934665603ULL;
        for (std::uint32_t v : renderReference()) {
            h ^= v;
            h *= 1099511628211ULL;
        }
        refChecksum_ = h;
        refBuilt_ = true;
    }
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint32_t v : fb_) {
        h ^= v;
        h *= 1099511628211ULL;
    }
    return h == refChecksum_;
}

} // namespace vp::reyes

/**
 * @file
 * Reyes rendering application (paper Fig. 1, sec 8.3): the recursive
 * Split (bound+split) stage, Dice, and Shade, over bicubic Bezier
 * patches rendered into a framebuffer.
 *
 * Patches are the Split/Dice data item: 272 bytes, the largest item
 * of any evaluated pipeline (Table 2), which makes Reyes the
 * queue-overhead-heaviest workload.
 */

#ifndef VP_APPS_REYES_REYES_APP_HH
#define VP_APPS_REYES_REYES_APP_HH

#include <cstdint>
#include <vector>

#include "core/versapipe.hh"

namespace vp::reyes {

/** Workload parameters. */
struct ReyesParams
{
    int patches = 32;       //!< initial teapot-like patch count
    int width = 1280;
    int height = 720;
    double diceBound = 24.0; //!< screen-space bound to stop splitting
    int maxDepth = 9;
    int grid = 16;           //!< micropolygon grid side
    std::uint64_t seed = 20170303;

    static ReyesParams small();
};

/** A bicubic Bezier patch in flight (Table 2: 272 B). */
struct PatchItem
{
    float cp[16][4];        //!< control points (x, y, z, w)
    std::int32_t depth;
    std::int32_t id;
    std::int32_t axis;      //!< next split axis (0 = u, 1 = v)
    std::int32_t pad;
};
static_assert(sizeof(PatchItem) == 272,
              "paper reports 272-byte Reyes items");

/** A diced grid handed to Shade (references app-held grid data). */
struct GridItem
{
    std::int32_t gridId;
    std::int32_t patchId;
};

class ReyesApp;

/** Bound + split: recursive subdivision until diceable. */
class SplitStage : public Stage<PatchItem>
{
  public:
    explicit SplitStage(ReyesApp& app);
    TaskCost cost(const PatchItem& item) const override;
    void execute(ExecContext& ctx, PatchItem& item) override;

  private:
    ReyesApp& app_;
};

/** Dice: evaluate the micropolygon grid of a diceable patch. */
class DiceStage : public Stage<PatchItem>
{
  public:
    explicit DiceStage(ReyesApp& app);
    TaskCost cost(const PatchItem& item) const override;
    void execute(ExecContext& ctx, PatchItem& item) override;

  private:
    ReyesApp& app_;
};

/** Shade: light micropolygons and splat them to the framebuffer. */
class ShadeStage : public Stage<GridItem>
{
  public:
    explicit ShadeStage(ReyesApp& app);
    TaskCost cost(const GridItem& item) const override;
    void execute(ExecContext& ctx, GridItem& item) override;

  private:
    ReyesApp& app_;
};

/** The Reyes application driver. */
class ReyesApp : public AppDriver
{
  public:
    explicit ReyesApp(ReyesParams params = {});

    std::string name() const override { return "reyes"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    void seedFlow(Seeder& seeder, int flow) override;
    bool verify() override;

    const ReyesParams& params() const { return params_; }

    /** Rendered framebuffer (intensity-packed, max-combined). */
    const std::vector<std::uint32_t>& framebuffer() const
    {
        return fb_;
    }

    /** Patches diced during the last run. */
    int dicedPatches() const { return static_cast<int>(grids_.size()); }

  private:
    friend class SplitStage;
    friend class DiceStage;
    friend class ShadeStage;

    /** One evaluated micropolygon grid: (grid+1)^2 positions. */
    struct Grid
    {
        std::vector<float> pts; //!< xyz triplets
    };

    /** Screen-space bounding box size of a patch. */
    double boundSize(const PatchItem& p) const;

    /** Project a camera-space point to pixels. */
    void project(const float* xyz, double& sx, double& sy) const;

    /** Render one diced grid into a framebuffer. */
    void shadeGrid(const Grid& g, std::vector<std::uint32_t>& fb)
        const;

    /** Full sequential pipeline for verification. */
    std::vector<std::uint32_t> renderReference() const;

    ReyesParams params_;
    Pipeline pipe_;
    std::vector<PatchItem> initial_;
    std::vector<Grid> grids_;
    std::vector<std::uint32_t> fb_;
    std::uint64_t refChecksum_ = 0;
    bool refBuilt_ = false;
};

} // namespace vp::reyes

#endif // VP_APPS_REYES_REYES_APP_HH

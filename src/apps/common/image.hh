/**
 * @file
 * Minimal image container and procedural test-image generation used
 * by the image-processing applications (Pyramid, Face Detection,
 * Rasterization output).
 */

#ifndef VP_APPS_COMMON_IMAGE_HH
#define VP_APPS_COMMON_IMAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"

namespace vp {

/** A single-channel 8-bit image. */
class GrayImage
{
  public:
    GrayImage() = default;

    GrayImage(int w, int h)
        : width_(w), height_(h),
          pixels_(static_cast<std::size_t>(w) * h, 0)
    {}

    int width() const { return width_; }
    int height() const { return height_; }

    std::uint8_t&
    at(int x, int y)
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    std::uint8_t
    at(int x, int y) const
    {
        return pixels_[static_cast<std::size_t>(y) * width_ + x];
    }

    const std::vector<std::uint8_t>& pixels() const { return pixels_; }
    std::vector<std::uint8_t>& pixels() { return pixels_; }

    /** FNV-1a checksum of the pixel data (for verification). */
    std::uint64_t checksum() const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> pixels_;
};

/** An interleaved RGB 8-bit image. */
class RgbImage
{
  public:
    RgbImage() = default;

    RgbImage(int w, int h)
        : width_(w), height_(h),
          pixels_(static_cast<std::size_t>(w) * h * 3, 0)
    {}

    int width() const { return width_; }
    int height() const { return height_; }

    std::uint8_t&
    at(int x, int y, int c)
    {
        return pixels_[(static_cast<std::size_t>(y) * width_ + x) * 3
                       + c];
    }

    std::uint8_t
    at(int x, int y, int c) const
    {
        return pixels_[(static_cast<std::size_t>(y) * width_ + x) * 3
                       + c];
    }

    double
    bytes() const
    {
        return static_cast<double>(pixels_.size());
    }

    /** Write a binary PPM (P6) file; returns false on I/O error. */
    bool writePpm(const std::string& path) const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> pixels_;
};

/**
 * Deterministic procedural RGB test image: low-frequency gradients
 * plus texture noise, with optional bright square "face" markers at
 * the given centers (used by Face Detection's ground truth).
 */
RgbImage makeTestImage(int w, int h, std::uint64_t seed,
                       const std::vector<std::pair<int, int>>& faces
                       = {});

/** Reference RGB-to-luma conversion (BT.601 integer approximation). */
GrayImage referenceGrayscale(const RgbImage& src);

/** Reference histogram equalization over a gray image. */
GrayImage referenceHistEq(const GrayImage& src);

/** Reference 2x box-filter downsample (floor dimensions). */
GrayImage referenceDownsample(const GrayImage& src);

} // namespace vp

#endif // VP_APPS_COMMON_IMAGE_HH

#include "apps/common/image.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace vp {

std::uint64_t
GrayImage::checksum() const
{
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint8_t p : pixels_) {
        h ^= p;
        h *= 1099511628211ULL;
    }
    h ^= static_cast<std::uint64_t>(width_) << 32 | height_;
    return h;
}

bool
RgbImage::writePpm(const std::string& path) const
{
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    std::fwrite(pixels_.data(), 1, pixels_.size(), f);
    std::fclose(f);
    return true;
}

RgbImage
makeTestImage(int w, int h, std::uint64_t seed,
              const std::vector<std::pair<int, int>>& faces)
{
    RgbImage img(w, h);
    Rng rng(seed);
    // Low-frequency phase offsets make every image distinct.
    double px = rng.nextRange(0.0, 6.28);
    double py = rng.nextRange(0.0, 6.28);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            double gx = 0.5 + 0.5 * std::sin(px + x * 0.013);
            double gy = 0.5 + 0.5 * std::cos(py + y * 0.017);
            int noise = static_cast<int>(rng.nextBelow(32));
            img.at(x, y, 0) = static_cast<std::uint8_t>(
                std::min(255.0, gx * 180 + noise));
            img.at(x, y, 1) = static_cast<std::uint8_t>(
                std::min(255.0, gy * 160 + noise));
            img.at(x, y, 2) = static_cast<std::uint8_t>(
                std::min(255.0, (gx + gy) * 90 + noise));
        }
    }
    // Face markers: bright 24x24 squares with a darker inner frame,
    // a pattern the synthetic LBP cascade is trained to accept.
    for (const auto& [cx, cy] : faces) {
        for (int dy = -12; dy < 12; ++dy) {
            for (int dx = -12; dx < 12; ++dx) {
                int x = cx + dx, y = cy + dy;
                if (x < 0 || y < 0 || x >= w || y >= h)
                    continue;
                bool frame = std::abs(dx) > 8 || std::abs(dy) > 8;
                std::uint8_t v = frame ? 240 : 60;
                img.at(x, y, 0) = v;
                img.at(x, y, 1) = v;
                img.at(x, y, 2) = v;
            }
        }
    }
    return img;
}

GrayImage
referenceGrayscale(const RgbImage& src)
{
    GrayImage out(src.width(), src.height());
    for (int y = 0; y < src.height(); ++y) {
        for (int x = 0; x < src.width(); ++x) {
            int v = (299 * src.at(x, y, 0) + 587 * src.at(x, y, 1)
                     + 114 * src.at(x, y, 2)) / 1000;
            out.at(x, y) = static_cast<std::uint8_t>(v);
        }
    }
    return out;
}

GrayImage
referenceHistEq(const GrayImage& src)
{
    std::vector<std::uint64_t> hist(256, 0);
    for (std::uint8_t p : src.pixels())
        ++hist[p];
    std::vector<std::uint64_t> cdf(256, 0);
    std::uint64_t run = 0;
    std::uint64_t cdf_min = 0;
    for (int i = 0; i < 256; ++i) {
        run += hist[i];
        cdf[i] = run;
        if (cdf_min == 0 && run > 0)
            cdf_min = run;
    }
    std::uint64_t total = src.pixels().size();
    GrayImage out(src.width(), src.height());
    for (std::size_t i = 0; i < src.pixels().size(); ++i) {
        std::uint64_t c = cdf[src.pixels()[i]];
        std::uint64_t denom = total - cdf_min;
        std::uint8_t v = denom == 0
            ? src.pixels()[i]
            : static_cast<std::uint8_t>(
                  (c - cdf_min) * 255 / denom);
        out.pixels()[i] = v;
    }
    return out;
}

GrayImage
referenceDownsample(const GrayImage& src)
{
    int w = src.width() / 2;
    int h = src.height() / 2;
    GrayImage out(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int sum = src.at(2 * x, 2 * y) + src.at(2 * x + 1, 2 * y)
                + src.at(2 * x, 2 * y + 1)
                + src.at(2 * x + 1, 2 * y + 1);
            out.at(x, y) = static_cast<std::uint8_t>(sum / 4);
        }
    }
    return out;
}

} // namespace vp

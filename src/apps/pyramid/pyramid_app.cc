#include "apps/pyramid/pyramid_app.hh"

#include <algorithm>

namespace vp::pyramid {

namespace {
/** Threads per data item: one block cooperates on each task. */
constexpr int kThreads = 256;
} // namespace

PyrParams
PyrParams::small()
{
    PyrParams p;
    p.images = 2;
    p.width = 640;
    p.height = 360;
    return p;
}

// ------------------------------ stages -------------------------- //

GrayscaleStage::GrayscaleStage(PyramidApp& app)
    : app_(app)
{
    name = "grayscale";
    threadNum = kThreads;
    resources.regsPerThread = 40;  // 6 blocks/SM on K20c
    resources.codeBytes = 8192;
}

TaskCost
GrayscaleStage::cost(const PyrItem& item) const
{
    int w = app_.params_.width;
    int rows = std::min(app_.params_.bandRows,
                        app_.params_.height
                        - item.band * app_.params_.bandRows);
    double px_per_thread = double(w) * rows / kThreads;
    TaskCost c;
    c.computeInsts = px_per_thread * 3.0;
    c.memInsts = px_per_thread * 2.0;
    c.l1HitRate = 0.55;
    return c;
}

void
GrayscaleStage::execute(ExecContext& ctx, PyrItem& item)
{
    const RgbImage& src = app_.inputs_[item.image];
    GrayImage& dst = app_.gray_[item.image];
    int y0 = item.band * app_.params_.bandRows;
    int y1 = std::min(src.height(), y0 + app_.params_.bandRows);
    for (int y = y0; y < y1; ++y) {
        for (int x = 0; x < src.width(); ++x) {
            int v = (299 * src.at(x, y, 0) + 587 * src.at(x, y, 1)
                     + 114 * src.at(x, y, 2)) / 1000;
            dst.at(x, y) = static_cast<std::uint8_t>(v);
        }
    }
    // Join: the last band of an image hands it to equalization.
    if (--app_.grayRemaining_[item.image] == 0)
        ctx.enqueue<HistEqStage>(PyrItem{item.image, 0, 0});
}

HistEqStage::HistEqStage(PyramidApp& app)
    : app_(app)
{
    name = "histeq";
    threadNum = kThreads;
    resources.regsPerThread = 80;  // 3 blocks/SM on K20c
    resources.codeBytes = 14336;
}

TaskCost
HistEqStage::cost(const PyrItem&) const
{
    double px_per_thread = double(app_.params_.width)
        * app_.params_.height / kThreads;
    TaskCost c;
    c.computeInsts = px_per_thread * 4.0;
    c.memInsts = px_per_thread * 2.2;
    // The CDF prefix scan and remap-table build run on one lane.
    c.serialInsts = 4000.0;
    c.l1HitRate = 0.60;
    return c;
}

void
HistEqStage::execute(ExecContext& ctx, PyrItem& item)
{
    GrayImage eq = referenceHistEq(app_.gray_[item.image]);
    app_.levels_[item.image][0] = std::move(eq);
    // Kick off the first down-sampled level, band by band.
    if (app_.levelCount() > 1) {
        int bands = app_.bandsInLevel(1);
        app_.levelRemaining_[item.image][1] = bands;
        for (int b = 0; b < bands; ++b)
            ctx.enqueue<ResizeStage>(PyrItem{item.image, 1, b});
    }
}

ResizeStage::ResizeStage(PyramidApp& app)
    : app_(app)
{
    name = "resize";
    threadNum = kThreads;
    resources.regsPerThread = 64;  // 4 blocks/SM on K20c
    resources.codeBytes = 12288;
}

TaskCost
ResizeStage::cost(const PyrItem& item) const
{
    auto [w, h] = app_.levelDims(item.level);
    int rows = std::min(app_.params_.bandRows,
                        h - item.band * app_.params_.bandRows);
    double px_per_thread = double(w) * rows / kThreads;
    TaskCost c;
    c.computeInsts = px_per_thread * 3.5;
    c.memInsts = px_per_thread * 2.5;
    c.l1HitRate = 0.50;
    return c;
}

void
ResizeStage::execute(ExecContext& ctx, PyrItem& item)
{
    const GrayImage& src = app_.levels_[item.image][item.level - 1];
    GrayImage& dst = app_.levels_[item.image][item.level];
    auto [w, h] = app_.levelDims(item.level);
    if (dst.width() == 0)
        dst = GrayImage(w, h);
    int y0 = item.band * app_.params_.bandRows;
    int y1 = std::min(h, y0 + app_.params_.bandRows);
    for (int y = y0; y < y1; ++y) {
        for (int x = 0; x < w; ++x) {
            int sum = src.at(2 * x, 2 * y) + src.at(2 * x + 1, 2 * y)
                + src.at(2 * x, 2 * y + 1)
                + src.at(2 * x + 1, 2 * y + 1);
            dst.at(x, y) = static_cast<std::uint8_t>(sum / 4);
        }
    }
    // Join: the last band of a level spawns the next level.
    if (--app_.levelRemaining_[item.image][item.level] == 0
        && item.level + 1 < app_.levelCount()) {
        int bands = app_.bandsInLevel(item.level + 1);
        app_.levelRemaining_[item.image][item.level + 1] = bands;
        for (int b = 0; b < bands; ++b) {
            ctx.enqueue<ResizeStage>(
                PyrItem{item.image, item.level + 1, b});
        }
    }
}

// ------------------------------ driver -------------------------- //

PyramidApp::PyramidApp(PyrParams params)
    : params_(params)
{
    VP_REQUIRE(params_.images > 0 && params_.width > 16
               && params_.height > 16, "bad pyramid parameters");
    pipe_.addStage<GrayscaleStage>(*this);
    pipe_.addStage<HistEqStage>(*this);
    pipe_.addStage<ResizeStage>(*this);
    pipe_.link<GrayscaleStage, HistEqStage>();
    pipe_.link<HistEqStage, ResizeStage>();
    pipe_.link<ResizeStage, ResizeStage>(); // recursion
    pipe_.setStructure(PipelineStructure::Recursion);

    for (int i = 0; i < params_.images; ++i) {
        inputs_.push_back(makeTestImage(params_.width, params_.height,
                                        params_.seed + i));
    }

    // Reference results for verification.
    for (int i = 0; i < params_.images; ++i) {
        std::vector<std::uint64_t> sums;
        GrayImage g = referenceGrayscale(inputs_[i]);
        GrayImage level = referenceHistEq(g);
        sums.push_back(level.checksum());
        for (int l = 1; l < levelCount(); ++l) {
            level = referenceDownsample(level);
            sums.push_back(level.checksum());
        }
        refChecksums_.push_back(std::move(sums));
    }
    reset();
}

int
PyramidApp::levelCount() const
{
    int count = 1;
    int w = params_.width, h = params_.height;
    while (std::min(w / 2, h / 2) >= params_.minDim) {
        w /= 2;
        h /= 2;
        ++count;
    }
    return count;
}

std::pair<int, int>
PyramidApp::levelDims(int level) const
{
    int w = params_.width, h = params_.height;
    for (int l = 0; l < level; ++l) {
        w /= 2;
        h /= 2;
    }
    return {w, h};
}

int
PyramidApp::bandsInLevel(int level) const
{
    auto [w, h] = levelDims(level);
    (void)w;
    return (h + params_.bandRows - 1) / params_.bandRows;
}

void
PyramidApp::reset()
{
    gray_.assign(params_.images,
                 GrayImage(params_.width, params_.height));
    grayRemaining_.assign(params_.images, bandsInLevel(0));
    levels_.assign(params_.images,
                   std::vector<GrayImage>(levelCount()));
    levelRemaining_.assign(params_.images,
                           std::vector<int>(levelCount() + 1, 0));
}

void
PyramidApp::seedFlow(Seeder& seeder, int flow)
{
    std::vector<PyrItem> bands;
    for (int b = 0; b < bandsInLevel(0); ++b)
        bands.push_back(PyrItem{flow, 0, b});
    seeder.insert<GrayscaleStage>(std::move(bands));
}

bool
PyramidApp::verify()
{
    for (int i = 0; i < params_.images; ++i) {
        for (int l = 0; l < levelCount(); ++l) {
            if (levels_[i][l].checksum() != refChecksums_[i][l])
                return false;
        }
    }
    return true;
}

} // namespace vp::pyramid

/**
 * @file
 * Image Pyramid application (paper sec 8.3, Fig. 12): a 3-stage
 * recursive pipeline — Grayscale -> Histogram equalization ->
 * Resize (recursive down-sampling until the image is small).
 *
 * Histogram equalization runs one 256-thread block per image with an
 * inherently serial portion, the bottleneck that makes the KBK
 * baseline under-utilize the GPU (96% of its runtime in the paper).
 */

#ifndef VP_APPS_PYRAMID_PYRAMID_APP_HH
#define VP_APPS_PYRAMID_PYRAMID_APP_HH

#include <cstdint>
#include <vector>

#include "apps/common/image.hh"
#include "core/versapipe.hh"

namespace vp::pyramid {

/** Workload parameters. */
struct PyrParams
{
    int images = 8;
    int width = 1280;
    int height = 720;
    /** Stop resizing when the next level's min dimension drops
     * below this. */
    int minDim = 24;
    /** Rows per grayscale/resize band item. */
    int bandRows = 32;
    std::uint64_t seed = 20170101;

    /** Small configuration for tuner searches and quick tests. */
    static PyrParams small();
};

/** Data item (Table 2: 12 B). */
struct PyrItem
{
    std::int32_t image;
    std::int32_t level;
    std::int32_t band;
};
static_assert(sizeof(PyrItem) == 12, "paper reports 12-byte items");

class PyramidApp;

/** RGB -> luma over one band of rows. */
class GrayscaleStage : public Stage<PyrItem>
{
  public:
    explicit GrayscaleStage(PyramidApp& app);
    TaskCost cost(const PyrItem& item) const override;
    void execute(ExecContext& ctx, PyrItem& item) override;

  private:
    PyramidApp& app_;
};

/** Whole-image histogram equalization (serial portion). */
class HistEqStage : public Stage<PyrItem>
{
  public:
    explicit HistEqStage(PyramidApp& app);
    TaskCost cost(const PyrItem& item) const override;
    void execute(ExecContext& ctx, PyrItem& item) override;

  private:
    PyramidApp& app_;
};

/** One band of one pyramid level; recursively spawns the next. */
class ResizeStage : public Stage<PyrItem>
{
  public:
    explicit ResizeStage(PyramidApp& app);
    TaskCost cost(const PyrItem& item) const override;
    void execute(ExecContext& ctx, PyrItem& item) override;

  private:
    PyramidApp& app_;
};

/** The Image Pyramid application driver. */
class PyramidApp : public AppDriver
{
  public:
    explicit PyramidApp(PyrParams params = {});

    std::string name() const override { return "pyramid"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    int flowCount() const override { return params_.images; }
    void seedFlow(Seeder& seeder, int flow) override;
    double inputBytes() const override { return 0.0; }
    bool verify() override;

    const PyrParams& params() const { return params_; }

    /** Pyramid levels per image (level 0 = equalized full size). */
    const std::vector<std::vector<GrayImage>>&
    result() const
    {
        return levels_;
    }

    /** Number of levels each image produces (full size included). */
    int levelCount() const;

    /** Dimensions of pyramid level @p level. */
    std::pair<int, int> levelDims(int level) const;

    /** Bands of rows in level @p level. */
    int bandsInLevel(int level) const;

  private:
    friend class GrayscaleStage;
    friend class HistEqStage;
    friend class ResizeStage;

    PyrParams params_;
    Pipeline pipe_;

    std::vector<RgbImage> inputs_;
    std::vector<GrayImage> gray_;
    /** Per-image remaining grayscale bands (join before HistEq). */
    std::vector<int> grayRemaining_;
    /** levels_[image][level]; level 0 is the equalized image. */
    std::vector<std::vector<GrayImage>> levels_;
    /** Per-image, per-level remaining resize bands (join). */
    std::vector<std::vector<int>> levelRemaining_;

    /** Reference results computed once for verification. */
    std::vector<std::vector<std::uint64_t>> refChecksums_;
};

} // namespace vp::pyramid

#endif // VP_APPS_PYRAMID_PYRAMID_APP_HH

/**
 * @file
 * LBP Face Detection application (paper sec 8.3, Fig. 14): a 5-stage
 * recursive pipeline — Grayscale -> Histogram equalization -> Resize
 * (image pyramid) -> LBP feature extraction -> window Scanning with
 * cascade early termination.
 *
 * A search window is the Scanning data item (paper: chosen for load
 * balance); most windows are rejected after one or two cascade
 * stages while windows over a face evaluate the full cascade.
 */

#ifndef VP_APPS_FACEDETECT_FACEDETECT_APP_HH
#define VP_APPS_FACEDETECT_FACEDETECT_APP_HH

#include <cstdint>
#include <set>
#include <tuple>
#include <vector>

#include "apps/common/image.hh"
#include "core/versapipe.hh"

namespace vp::facedetect {

/** Workload parameters. */
struct FdParams
{
    int images = 8;
    int width = 1280;
    int height = 720;
    int minDim = 48;     //!< smallest pyramid level scanned
    int bandRows = 32;   //!< rows per grayscale/resize band
    int window = 24;     //!< square search-window side
    int stride = 6;      //!< window step in both axes
    int facesPerImage = 3;
    std::uint64_t seed = 20170202;

    static FdParams small();
};

/** Data item (Table 2: 16 B). */
struct FdItem
{
    std::int32_t image;
    std::int32_t level;
    std::int32_t a; //!< band (early stages) / window x (scan)
    std::int32_t b; //!< window y (scan)
};
static_assert(sizeof(FdItem) == 16, "paper reports 16-byte items");

class FaceDetectApp;

/** RGB -> luma over one band. */
class FdGrayscale : public Stage<FdItem>
{
  public:
    explicit FdGrayscale(FaceDetectApp& app);
    TaskCost cost(const FdItem& item) const override;
    void execute(ExecContext& ctx, FdItem& item) override;

  private:
    FaceDetectApp& app_;
};

/** Whole-image histogram equalization (limited parallelism). */
class FdHistEq : public Stage<FdItem>
{
  public:
    explicit FdHistEq(FaceDetectApp& app);
    TaskCost cost(const FdItem& item) const override;
    void execute(ExecContext& ctx, FdItem& item) override;

  private:
    FaceDetectApp& app_;
};

/** Pyramid level band; recursive. */
class FdResize : public Stage<FdItem>
{
  public:
    explicit FdResize(FaceDetectApp& app);
    TaskCost cost(const FdItem& item) const override;
    void execute(ExecContext& ctx, FdItem& item) override;

  private:
    FaceDetectApp& app_;
};

/** LBP code computation for one pyramid level. */
class FdFeature : public Stage<FdItem>
{
  public:
    explicit FdFeature(FaceDetectApp& app);
    TaskCost cost(const FdItem& item) const override;
    void execute(ExecContext& ctx, FdItem& item) override;

  private:
    FaceDetectApp& app_;
};

/** Cascade evaluation of one search window. */
class FdScan : public Stage<FdItem>
{
  public:
    explicit FdScan(FaceDetectApp& app);
    TaskCost cost(const FdItem& item) const override;
    void execute(ExecContext& ctx, FdItem& item) override;

  private:
    FaceDetectApp& app_;
};

/** A detected face: (image, level, x, y). */
using Detection = std::tuple<int, int, int, int>;

/** The Face Detection application driver. */
class FaceDetectApp : public AppDriver
{
  public:
    explicit FaceDetectApp(FdParams params = {});

    std::string name() const override { return "facedetect"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    int flowCount() const override { return params_.images; }
    void seedFlow(Seeder& seeder, int flow) override;
    bool verify() override;

    const FdParams& params() const { return params_; }

    /** Detections of the last run (unsorted). */
    const std::vector<Detection>& detections() const
    {
        return detections_;
    }

    /** Ground-truth face count planted in the inputs. */
    int plantedFaces() const
    {
        return params_.images * params_.facesPerImage;
    }

    /** Number of pyramid levels scanned. */
    int levelCount() const;

    /** Dimensions of a level. */
    std::pair<int, int> levelDims(int level) const;

    /** Bands of rows in a level. */
    int bandsInLevel(int level) const;

    /**
     * Cascade evaluation on LBP codes: returns the depth reached
     * (kCascadeStages = accepted). Shared by cost() and execute().
     */
    int cascadeDepth(const FdItem& item) const;

    static constexpr int kCascadeStages = 8;

  private:
    friend class FdGrayscale;
    friend class FdHistEq;
    friend class FdResize;
    friend class FdFeature;
    friend class FdScan;

    FdParams params_;
    Pipeline pipe_;

    std::vector<RgbImage> inputs_;
    std::vector<GrayImage> gray_;
    std::vector<int> grayRemaining_;
    std::vector<std::vector<GrayImage>> levels_;
    std::vector<std::vector<int>> levelRemaining_;
    /** Per-image, per-level remaining feature bands (join). */
    std::vector<std::vector<int>> featureRemaining_;
    /** LBP code images per (image, level). */
    std::vector<std::vector<GrayImage>> lbp_;

    std::vector<Detection> detections_;
    /** Reference detections from the sequential CPU pipeline. */
    std::set<Detection> refDetections_;
    bool refBuilt_ = false;

    void buildReference();
};

} // namespace vp::facedetect

#endif // VP_APPS_FACEDETECT_FACEDETECT_APP_HH

#include "apps/facedetect/facedetect_app.hh"

#include <algorithm>

namespace vp::facedetect {

namespace {
constexpr int kThreads = 256;

/** LBP code of a pixel: 8 neighbor comparisons packed into a byte. */
std::uint8_t
lbpCode(const GrayImage& img, int x, int y)
{
    static const int dx[8] = {-1, 0, 1, 1, 1, 0, -1, -1};
    static const int dy[8] = {-1, -1, -1, 0, 1, 1, 1, 0};
    std::uint8_t center = img.at(x, y);
    std::uint8_t code = 0;
    for (int k = 0; k < 8; ++k) {
        int nx = std::clamp(x + dx[k], 0, img.width() - 1);
        int ny = std::clamp(y + dy[k], 0, img.height() - 1);
        if (img.at(nx, ny) >= center)
            code |= std::uint8_t(1) << k;
    }
    return code;
}

/** True when an LBP code is "uniform" (<= 2 bit transitions). */
bool
uniform(std::uint8_t code)
{
    std::uint8_t rotated = static_cast<std::uint8_t>(
        (code << 1) | (code >> 7));
    int transitions = __builtin_popcount(
        static_cast<unsigned>(code ^ rotated));
    return transitions <= 2;
}

} // namespace

FdParams
FdParams::small()
{
    FdParams p;
    p.images = 2;
    p.width = 640;
    p.height = 360;
    p.minDim = 48;
    p.facesPerImage = 2;
    return p;
}

// ------------------------------ stages -------------------------- //

FdGrayscale::FdGrayscale(FaceDetectApp& app)
    : app_(app)
{
    name = "fd_gray";
    threadNum = kThreads;
    resources.regsPerThread = 56;  // 4 blocks/SM (paper sec 8.3)
    resources.codeBytes = 7168;
}

TaskCost
FdGrayscale::cost(const FdItem& item) const
{
    int rows = std::min(app_.params_.bandRows,
                        app_.params_.height
                        - item.a * app_.params_.bandRows);
    double px = double(app_.params_.width) * rows / kThreads;
    TaskCost c;
    c.computeInsts = px * 3.0;
    c.memInsts = px * 2.0;
    c.l1HitRate = 0.55;
    return c;
}

void
FdGrayscale::execute(ExecContext& ctx, FdItem& item)
{
    const RgbImage& src = app_.inputs_[item.image];
    GrayImage& dst = app_.gray_[item.image];
    int y0 = item.a * app_.params_.bandRows;
    int y1 = std::min(src.height(), y0 + app_.params_.bandRows);
    for (int y = y0; y < y1; ++y) {
        for (int x = 0; x < src.width(); ++x) {
            int v = (299 * src.at(x, y, 0) + 587 * src.at(x, y, 1)
                     + 114 * src.at(x, y, 2)) / 1000;
            dst.at(x, y) = static_cast<std::uint8_t>(v);
        }
    }
    if (--app_.grayRemaining_[item.image] == 0)
        ctx.enqueue<FdHistEq>(FdItem{item.image, 0, 0, 0});
}

FdHistEq::FdHistEq(FaceDetectApp& app)
    : app_(app)
{
    name = "fd_histeq";
    threadNum = kThreads;
    resources.regsPerThread = 69;  // 3 blocks/SM (paper sec 8.3)
    resources.codeBytes = 13312;
}

TaskCost
FdHistEq::cost(const FdItem&) const
{
    double px = double(app_.params_.width) * app_.params_.height
        / kThreads;
    TaskCost c;
    c.computeInsts = px * 1.5;
    c.memInsts = px * 0.8;
    c.serialInsts = 2500.0;
    c.l1HitRate = 0.60;
    return c;
}

void
FdHistEq::execute(ExecContext& ctx, FdItem& item)
{
    app_.levels_[item.image][0] =
        referenceHistEq(app_.gray_[item.image]);
    int fbands = app_.bandsInLevel(0);
    app_.featureRemaining_[item.image][0] = fbands;
    for (int b = 0; b < fbands; ++b)
        ctx.enqueue<FdFeature>(FdItem{item.image, 0, b, 0});
    if (app_.levelCount() > 1) {
        int bands = app_.bandsInLevel(1);
        app_.levelRemaining_[item.image][1] = bands;
        for (int b = 0; b < bands; ++b)
            ctx.enqueue<FdResize>(FdItem{item.image, 1, b, 0});
    }
}

FdResize::FdResize(FaceDetectApp& app)
    : app_(app)
{
    name = "fd_resize";
    threadNum = kThreads;
    resources.regsPerThread = 56;  // 4 blocks/SM
    resources.codeBytes = 11264;
}

TaskCost
FdResize::cost(const FdItem& item) const
{
    auto [w, h] = app_.levelDims(item.level);
    int rows = std::min(app_.params_.bandRows,
                        h - item.a * app_.params_.bandRows);
    double px = double(w) * rows / kThreads;
    TaskCost c;
    c.computeInsts = px * 3.5;
    c.memInsts = px * 2.5;
    c.l1HitRate = 0.50;
    return c;
}

void
FdResize::execute(ExecContext& ctx, FdItem& item)
{
    const GrayImage& src = app_.levels_[item.image][item.level - 1];
    GrayImage& dst = app_.levels_[item.image][item.level];
    auto [w, h] = app_.levelDims(item.level);
    if (dst.width() == 0)
        dst = GrayImage(w, h);
    int y0 = item.a * app_.params_.bandRows;
    int y1 = std::min(h, y0 + app_.params_.bandRows);
    for (int y = y0; y < y1; ++y) {
        for (int x = 0; x < w; ++x) {
            int sum = src.at(2 * x, 2 * y) + src.at(2 * x + 1, 2 * y)
                + src.at(2 * x, 2 * y + 1)
                + src.at(2 * x + 1, 2 * y + 1);
            dst.at(x, y) = static_cast<std::uint8_t>(sum / 4);
        }
    }
    if (--app_.levelRemaining_[item.image][item.level] == 0) {
        int fbands = app_.bandsInLevel(item.level);
        app_.featureRemaining_[item.image][item.level] = fbands;
        for (int b = 0; b < fbands; ++b) {
            ctx.enqueue<FdFeature>(
                FdItem{item.image, item.level, b, 0});
        }
        if (item.level + 1 < app_.levelCount()) {
            int bands = app_.bandsInLevel(item.level + 1);
            app_.levelRemaining_[item.image][item.level + 1] = bands;
            for (int b = 0; b < bands; ++b) {
                ctx.enqueue<FdResize>(
                    FdItem{item.image, item.level + 1, b, 0});
            }
        }
    }
}

FdFeature::FdFeature(FaceDetectApp& app)
    : app_(app)
{
    name = "fd_feature";
    threadNum = kThreads;
    resources.regsPerThread = 61;  // 4 blocks/SM
    resources.codeBytes = 10240;
}

TaskCost
FdFeature::cost(const FdItem& item) const
{
    auto [w, h] = app_.levelDims(item.level);
    int rows = std::min(app_.params_.bandRows,
                        h - item.a * app_.params_.bandRows);
    double px = double(w) * rows / kThreads;
    TaskCost c;
    c.computeInsts = px * 11.0; // 8 neighbor compares + pack
    c.memInsts = px * 9.0;
    c.l1HitRate = 0.70;
    return c;
}

void
FdFeature::execute(ExecContext& ctx, FdItem& item)
{
    const GrayImage& src = app_.levels_[item.image][item.level];
    GrayImage& dst = app_.lbp_[item.image][item.level];
    if (dst.width() == 0)
        dst = GrayImage(src.width(), src.height());
    int y0 = item.a * app_.params_.bandRows;
    int y1 = std::min(src.height(), y0 + app_.params_.bandRows);
    for (int y = y0; y < y1; ++y)
        for (int x = 0; x < src.width(); ++x)
            dst.at(x, y) = lbpCode(src, x, y);

    // Join: once the level's codes are complete, emit one scan item
    // per search window (paper: the load-balance choice).
    if (--app_.featureRemaining_[item.image][item.level] > 0)
        return;
    const FdParams& p = app_.params_;
    for (int wy = 0; wy + p.window <= src.height(); wy += p.stride) {
        for (int wx = 0; wx + p.window <= src.width();
             wx += p.stride) {
            ctx.enqueue<FdScan>(
                FdItem{item.image, item.level, wx, wy});
        }
    }
}

FdScan::FdScan(FaceDetectApp& app)
    : app_(app)
{
    name = "fd_scan";
    threadNum = 1; // one thread per window
    resources.regsPerThread = 37;  // 6 blocks/SM
    resources.codeBytes = 9216;
}

TaskCost
FdScan::cost(const FdItem& item) const
{
    int depth = app_.cascadeDepth(item);
    TaskCost c;
    c.computeInsts = 150.0 + 420.0 * depth;
    c.memInsts = 30.0 + 70.0 * depth;
    c.l1HitRate = 0.75;
    return c;
}

void
FdScan::execute(ExecContext&, FdItem& item)
{
    if (app_.cascadeDepth(item) == FaceDetectApp::kCascadeStages) {
        app_.detections_.emplace_back(item.image, item.level, item.a,
                                      item.b);
    }
}

// ------------------------------ driver -------------------------- //

FaceDetectApp::FaceDetectApp(FdParams params)
    : params_(params)
{
    VP_REQUIRE(params_.images > 0 && params_.width >= 2
               * params_.window, "bad face-detection parameters");
    pipe_.addStage<FdGrayscale>(*this);
    pipe_.addStage<FdHistEq>(*this);
    pipe_.addStage<FdResize>(*this);
    pipe_.addStage<FdFeature>(*this);
    pipe_.addStage<FdScan>(*this);
    pipe_.link<FdGrayscale, FdHistEq>();
    pipe_.link<FdHistEq, FdResize>();
    pipe_.link<FdHistEq, FdFeature>();
    pipe_.link<FdResize, FdResize>();
    pipe_.link<FdResize, FdFeature>();
    pipe_.link<FdFeature, FdScan>();
    pipe_.setStructure(PipelineStructure::Recursion);
    pipe_.megakernelExtraRegs = 18; // 69 + 18 = 87 (paper sec 8.3)

    Rng face_rng(params_.seed * 7919);
    for (int i = 0; i < params_.images; ++i) {
        std::vector<std::pair<int, int>> faces;
        for (int f = 0; f < params_.facesPerImage; ++f) {
            int margin = params_.window;
            int cx = margin + static_cast<int>(face_rng.nextBelow(
                std::max(1, params_.width - 2 * margin)));
            int cy = margin + static_cast<int>(face_rng.nextBelow(
                std::max(1, params_.height - 2 * margin)));
            faces.emplace_back(cx, cy);
        }
        inputs_.push_back(makeTestImage(params_.width, params_.height,
                                        params_.seed + i, faces));
    }
    reset();
}

int
FaceDetectApp::levelCount() const
{
    int count = 1;
    int w = params_.width, h = params_.height;
    while (std::min(w / 2, h / 2) >= params_.minDim) {
        w /= 2;
        h /= 2;
        ++count;
    }
    return count;
}

std::pair<int, int>
FaceDetectApp::levelDims(int level) const
{
    int w = params_.width, h = params_.height;
    for (int l = 0; l < level; ++l) {
        w /= 2;
        h /= 2;
    }
    return {w, h};
}

int
FaceDetectApp::bandsInLevel(int level) const
{
    auto [w, h] = levelDims(level);
    (void)w;
    return (h + params_.bandRows - 1) / params_.bandRows;
}

int
FaceDetectApp::cascadeDepth(const FdItem& item) const
{
    const GrayImage& codes = lbp_[item.image][item.level];
    const int w = params_.window;
    // Each cascade stage samples 16 LBP codes from a ring at growing
    // radius and requires enough uniform patterns. The planted face
    // pattern (high-contrast frame) yields uniform codes; texture
    // noise rarely does for all rings.
    for (int stage = 0; stage < kCascadeStages; ++stage) {
        int radius = 2 + stage;
        int hits = 0;
        for (int k = 0; k < 16; ++k) {
            // Fixed integer ring offsets (no trig for determinism).
            int ox = ((k * 2 + stage) % w - w / 2) * radius / (w / 2);
            int oy = ((k * 5 + 3) % w - w / 2) * radius / (w / 2);
            int x = std::clamp(item.a + w / 2 + ox, 0,
                               codes.width() - 1);
            int y = std::clamp(item.b + w / 2 + oy, 0,
                               codes.height() - 1);
            if (uniform(codes.at(x, y)))
                ++hits;
        }
        if (hits < 12)
            return stage;
    }
    return kCascadeStages;
}

void
FaceDetectApp::reset()
{
    gray_.assign(params_.images,
                 GrayImage(params_.width, params_.height));
    grayRemaining_.assign(params_.images, bandsInLevel(0));
    levels_.assign(params_.images,
                   std::vector<GrayImage>(levelCount()));
    levelRemaining_.assign(params_.images,
                           std::vector<int>(levelCount() + 1, 0));
    featureRemaining_.assign(params_.images,
                             std::vector<int>(levelCount(), 0));
    lbp_.assign(params_.images,
                std::vector<GrayImage>(levelCount()));
    detections_.clear();
}

void
FaceDetectApp::seedFlow(Seeder& seeder, int flow)
{
    std::vector<FdItem> bands;
    for (int b = 0; b < bandsInLevel(0); ++b)
        bands.push_back(FdItem{flow, 0, b, 0});
    seeder.insert<FdGrayscale>(std::move(bands));
}

void
FaceDetectApp::buildReference()
{
    // Sequential CPU pipeline: same math, canonical order.
    for (int i = 0; i < params_.images; ++i) {
        GrayImage level = referenceHistEq(
            referenceGrayscale(inputs_[i]));
        for (int l = 0; l < levelCount(); ++l) {
            if (l > 0)
                level = referenceDownsample(level);
            GrayImage codes(level.width(), level.height());
            for (int y = 0; y < level.height(); ++y)
                for (int x = 0; x < level.width(); ++x)
                    codes.at(x, y) = lbpCode(level, x, y);
            lbp_[i][l] = std::move(codes);
            const FdParams& p = params_;
            for (int wy = 0; wy + p.window <= level.height();
                 wy += p.stride) {
                for (int wx = 0; wx + p.window <= level.width();
                     wx += p.stride) {
                    FdItem item{i, l, wx, wy};
                    if (cascadeDepth(item) == kCascadeStages)
                        refDetections_.emplace(i, l, wx, wy);
                }
            }
        }
    }
    refBuilt_ = true;
    reset();
}

bool
FaceDetectApp::verify()
{
    if (!refBuilt_) {
        std::vector<Detection> got = detections_;
        buildReference();
        detections_ = std::move(got);
    }
    std::set<Detection> got(detections_.begin(), detections_.end());
    return got == refDetections_;
}

} // namespace vp::facedetect

#include "apps/cfd/cfd_app.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace vp::cfd {

namespace {
constexpr int kThreads = 256;
constexpr int kVars = 5; // density, 3x momentum, energy
constexpr float kCfl = 0.6f;
} // namespace

CfdParams
CfdParams::small()
{
    CfdParams p;
    p.outerIters = 2;
    return p;
}

// ------------------------------ stages -------------------------- //

StepFactorStage::StepFactorStage(CfdApp& app)
    : app_(app)
{
    name = "step_factor";
    threadNum = 128;
    blockThreads = 128; // narrow blocks co-reside with flux
    resources.regsPerThread = 56;  // 4 blocks/SM (paper sec 8.3)
    resources.codeBytes = 7168;
}

TaskCost
StepFactorStage::cost(const CfdItem&) const
{
    double per_thread = double(app_.params_.blockElems) / threadNum;
    TaskCost c;
    c.computeInsts = per_thread * 14.0;
    c.memInsts = per_thread * 6.0;
    c.l1HitRate = 0.55;
    return c;
}

void
StepFactorStage::execute(ExecContext& ctx, CfdItem& item)
{
    int e0 = item.block * app_.params_.blockElems;
    int e1 = std::min(app_.params_.elements,
                      e0 + app_.params_.blockElems);
    app_.computeStepFactor(app_.vars_, app_.stepFactor_, e0, e1);
    ctx.enqueue<FluxStage>(CfdItem{item.block, item.outer, 1});
}

FluxStage::FluxStage(CfdApp& app)
    : app_(app)
{
    name = "flux";
    threadNum = kThreads;
    resources.regsPerThread = 90;  // 2 blocks/SM (paper: occupancy-
    resources.codeBytes = 18432;   // limited heavy stage)
}

TaskCost
FluxStage::cost(const CfdItem&) const
{
    double per_thread = double(app_.params_.blockElems) / kThreads;
    TaskCost c;
    c.computeInsts = per_thread * 150.0;
    c.memInsts = per_thread * 44.0;
    c.l1HitRate = 0.45;
    return c;
}

void
FluxStage::execute(ExecContext& ctx, CfdItem& item)
{
    int e0 = item.block * app_.params_.blockElems;
    int e1 = std::min(app_.params_.elements,
                      e0 + app_.params_.blockElems);
    app_.computeFlux(app_.vars_, app_.flux_, e0, e1);
    ctx.enqueue<TimeStepStage>(item);
}

TimeStepStage::TimeStepStage(CfdApp& app)
    : app_(app)
{
    name = "time_step";
    threadNum = 128;
    blockThreads = 128; // narrow blocks co-reside with flux
    resources.regsPerThread = 80;  // 3 blocks/SM
    resources.codeBytes = 7680;
}

TaskCost
TimeStepStage::cost(const CfdItem&) const
{
    double per_thread = double(app_.params_.blockElems) / threadNum;
    TaskCost c;
    c.computeInsts = per_thread * 16.0;
    c.memInsts = per_thread * 11.0;
    c.l1HitRate = 0.50;
    return c;
}

void
TimeStepStage::execute(ExecContext& ctx, CfdItem& item)
{
    int e0 = item.block * app_.params_.blockElems;
    int e1 = std::min(app_.params_.elements,
                      e0 + app_.params_.blockElems);
    app_.timeStep(app_.vars_, app_.stepFactor_, app_.flux_, e0, e1);

    // Composites are independent (block-local neighbors), so each
    // chains through its own loop iterations without global
    // synchronization — the task parallelism VersaPipe exploits.
    if (item.inner < app_.params_.innerIters) {
        ctx.enqueue<FluxStage>(
            CfdItem{item.block, item.outer, item.inner + 1});
    } else if (item.outer < app_.params_.outerIters) {
        ctx.enqueue<StepFactorStage>(
            CfdItem{item.block, item.outer + 1, 0});
    }
    // else: this composite is done.
}

// ------------------------------ driver -------------------------- //

CfdApp::CfdApp(CfdParams params)
    : params_(params)
{
    VP_REQUIRE(params_.elements >= params_.blockElems
               && params_.elements % params_.blockElems == 0,
               "elements must be a positive multiple of blockElems");
    pipe_.addStage<StepFactorStage>(*this);
    pipe_.addStage<FluxStage>(*this);
    pipe_.addStage<TimeStepStage>(*this);
    pipe_.link<StepFactorStage, FluxStage>();
    pipe_.link<FluxStage, TimeStepStage>();
    pipe_.link<TimeStepStage, FluxStage>();       // inner loop
    pipe_.link<TimeStepStage, StepFactorStage>(); // outer loop
    pipe_.setStructure(PipelineStructure::Loop);

    int n = params_.elements;
    // Synthetic unstructured mesh: ring neighbors at mixed strides,
    // wrapped within each 1024-element composite. Composites are
    // therefore independent (frozen-ghost partitioning), which
    // permits the unsynchronized per-item pipelining the paper's
    // implementation exhibits while keeping results schedule-
    // independent. See DESIGN.md.
    neighbors_.resize(static_cast<std::size_t>(n) * 4);
    int strides[4] = {1, -1, 37, -37};
    int be = params_.blockElems;
    for (int e = 0; e < n; ++e) {
        int base = (e / be) * be;
        int local = e - base;
        for (int k = 0; k < 4; ++k) {
            int nb = base + ((local + strides[k]) % be + be) % be;
            neighbors_[static_cast<std::size_t>(e) * 4 + k] = nb;
        }
    }

    // Free-stream-ish initial conditions with a perturbation.
    Rng rng(params_.seed);
    initialVars_.resize(static_cast<std::size_t>(n) * kVars);
    for (int e = 0; e < n; ++e) {
        float bump = 0.05f * float(rng.nextDouble());
        initialVars_[0 * n + e] = 1.0f + bump;            // density
        initialVars_[1 * n + e] = 0.3f + 0.01f * bump;    // mom x
        initialVars_[2 * n + e] = 0.02f * bump;           // mom y
        initialVars_[3 * n + e] = 0.0f;                   // mom z
        initialVars_[4 * n + e] = 2.5f + bump;            // energy
    }
    reset();
}

int
CfdApp::blocks() const
{
    return params_.elements / params_.blockElems;
}

void
CfdApp::computeStepFactor(std::vector<float>& vars,
                          std::vector<float>& sf, int e0, int e1)
    const
{
    int n = params_.elements;
    for (int e = e0; e < e1; ++e) {
        float rho = vars[0 * n + e];
        float mx = vars[1 * n + e];
        float my = vars[2 * n + e];
        float mz = vars[3 * n + e];
        float en = vars[4 * n + e];
        float inv_rho = 1.0f / rho;
        float speed2 = (mx * mx + my * my + mz * mz) * inv_rho
            * inv_rho;
        float pressure = 0.4f * (en - 0.5f * rho * speed2);
        float sound = std::sqrt(std::max(
            1e-6f, 1.4f * pressure * inv_rho));
        sf[e] = kCfl / (std::sqrt(speed2) + sound);
    }
}

void
CfdApp::computeFlux(const std::vector<float>& vars,
                    std::vector<float>& flux, int e0, int e1) const
{
    int n = params_.elements;
    for (int e = e0; e < e1; ++e) {
        float acc[kVars] = {0, 0, 0, 0, 0};
        for (int k = 0; k < 4; ++k) {
            int nb = neighbors_[static_cast<std::size_t>(e) * 4 + k];
            for (int v = 0; v < kVars; ++v) {
                float mine = vars[v * n + e];
                float theirs = vars[v * n + nb];
                // Simple upwind-style dissipative flux.
                acc[v] += 0.5f * (theirs - mine)
                    - 0.1f * (theirs + mine)
                          * (k < 2 ? 1.0f : -1.0f);
            }
        }
        for (int v = 0; v < kVars; ++v)
            flux[static_cast<std::size_t>(v) * n + e] = acc[v];
    }
}

void
CfdApp::timeStep(std::vector<float>& vars,
                 const std::vector<float>& sf,
                 const std::vector<float>& flux, int e0, int e1)
    const
{
    int n = params_.elements;
    for (int e = e0; e < e1; ++e) {
        float factor = sf[e] * 0.05f;
        for (int v = 0; v < kVars; ++v) {
            vars[static_cast<std::size_t>(v) * n + e] +=
                factor * flux[static_cast<std::size_t>(v) * n + e];
        }
    }
}

void
CfdApp::refRun(std::vector<float>& vars) const
{
    int n = params_.elements;
    std::vector<float> sf(n);
    std::vector<float> flux(static_cast<std::size_t>(n) * kVars);
    for (int outer = 0; outer < params_.outerIters; ++outer) {
        computeStepFactor(vars, sf, 0, n);
        for (int inner = 0; inner < params_.innerIters; ++inner) {
            computeFlux(vars, flux, 0, n);
            timeStep(vars, sf, flux, 0, n);
        }
    }
}

void
CfdApp::reset()
{
    vars_ = initialVars_;
    stepFactor_.assign(params_.elements, 0.0f);
    flux_.assign(static_cast<std::size_t>(params_.elements) * kVars,
                 0.0f);
}

void
CfdApp::seedFlow(Seeder& seeder, int)
{
    std::vector<CfdItem> wave;
    for (int b = 0; b < blocks(); ++b)
        wave.push_back(CfdItem{b, 1, 0});
    seeder.insert<StepFactorStage>(std::move(wave));
}

std::uint64_t
CfdApp::densityChecksum() const
{
    std::uint64_t h = 1469598103934665603ULL;
    int n = params_.elements;
    for (int e = 0; e < n; ++e) {
        std::uint32_t bits;
        float v = vars_[e];
        static_assert(sizeof(bits) == sizeof(v));
        __builtin_memcpy(&bits, &v, sizeof(bits));
        h ^= bits;
        h *= 1099511628211ULL;
    }
    return h;
}

bool
CfdApp::verify()
{
    if (!refBuilt_) {
        std::vector<float> ref = initialVars_;
        refRun(ref);
        std::uint64_t h = 1469598103934665603ULL;
        for (int e = 0; e < params_.elements; ++e) {
            std::uint32_t bits;
            __builtin_memcpy(&bits, &ref[e], sizeof(bits));
            h ^= bits;
            h *= 1099511628211ULL;
        }
        refChecksum_ = h;
        refBuilt_ = true;
    }
    return densityChecksum() == refChecksum_;
}

} // namespace vp::cfd

/**
 * @file
 * CFD solver application (paper Fig. 15, Rodinia euler3d-style): a
 * 3-stage loop pipeline — compute Step Factor -> compute Flux ->
 * Time Step — iterated innerIters times per outer iteration over a
 * synthetic unstructured mesh. Data items are composites of 1024
 * elements (the paper's granularity note in sec 6).
 */

#ifndef VP_APPS_CFD_CFD_APP_HH
#define VP_APPS_CFD_CFD_APP_HH

#include <cstdint>
#include <vector>

#include "core/versapipe.hh"

namespace vp::cfd {

/** Workload parameters. */
struct CfdParams
{
    /** Mesh elements (composited into 1024-element items). */
    int elements = 96 * 1024;
    int blockElems = 1024;
    /**
     * Outer iterations. The paper runs 2000; the default here is
     * scaled down so simulations stay fast — model comparisons are
     * iteration-count invariant (see EXPERIMENTS.md).
     */
    int outerIters = 16;
    int innerIters = 3; //!< paper: 3 (RK steps)
    std::uint64_t seed = 20170404;

    static CfdParams small();
};

/** Data item (Table 2: 12 B): one 1024-element composite. */
struct CfdItem
{
    std::int32_t block;
    std::int32_t outer;
    std::int32_t inner;
};
static_assert(sizeof(CfdItem) == 12, "paper reports 12-byte items");

class CfdApp;

/** Per-element local time-step factor. */
class StepFactorStage : public Stage<CfdItem>
{
  public:
    explicit StepFactorStage(CfdApp& app);
    TaskCost cost(const CfdItem& item) const override;
    void execute(ExecContext& ctx, CfdItem& item) override;

  private:
    CfdApp& app_;
};

/** Numerical flux over element faces (the heavy stage). */
class FluxStage : public Stage<CfdItem>
{
  public:
    explicit FluxStage(CfdApp& app);
    TaskCost cost(const CfdItem& item) const override;
    void execute(ExecContext& ctx, CfdItem& item) override;

  private:
    CfdApp& app_;
};

/** Explicit Euler update; drives the inner/outer loop joins. */
class TimeStepStage : public Stage<CfdItem>
{
  public:
    explicit TimeStepStage(CfdApp& app);
    TaskCost cost(const CfdItem& item) const override;
    void execute(ExecContext& ctx, CfdItem& item) override;

  private:
    CfdApp& app_;
};

/** The CFD application driver. */
class CfdApp : public AppDriver
{
  public:
    explicit CfdApp(CfdParams params = {});

    std::string name() const override { return "cfd"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    void seedFlow(Seeder& seeder, int flow) override;
    bool verify() override;

    const CfdParams& params() const { return params_; }

    /** Composite blocks per wave. */
    int blocks() const;

    /** FNV checksum of the density field. */
    std::uint64_t densityChecksum() const;

  private:
    friend class StepFactorStage;
    friend class FluxStage;
    friend class TimeStepStage;

    /** One simulation step set over a state vector (shared by the
     * pipeline stages and the sequential reference). */
    void refRun(std::vector<float>& vars) const;

    void computeStepFactor(std::vector<float>& vars,
                           std::vector<float>& sf, int e0,
                           int e1) const;
    void computeFlux(const std::vector<float>& vars,
                     std::vector<float>& flux, int e0, int e1) const;
    void timeStep(std::vector<float>& vars,
                  const std::vector<float>& sf,
                  const std::vector<float>& flux, int e0,
                  int e1) const;

    CfdParams params_;
    Pipeline pipe_;

    /** 5 conserved variables per element (SoA: v * n + e). */
    std::vector<float> vars_;
    std::vector<float> initialVars_;
    std::vector<float> stepFactor_;
    std::vector<float> flux_;
    /** 4 neighbors per element. */
    std::vector<std::int32_t> neighbors_;

    std::uint64_t refChecksum_ = 0;
    bool refBuilt_ = false;
};

} // namespace vp::cfd

#endif // VP_APPS_CFD_CFD_APP_HH

#include "apps/registry.hh"

#include "apps/cfd/cfd_app.hh"
#include "apps/facedetect/facedetect_app.hh"
#include "apps/ldpc/ldpc_app.hh"
#include "apps/pyramid/pyramid_app.hh"
#include "apps/raster/raster_app.hh"
#include "apps/reyes/reyes_app.hh"
#include "apps/vidstream/vidstream_app.hh"
#include "common/error.hh"

namespace vp {

std::vector<std::string>
appNames()
{
    return {"pyramid", "facedetect", "reyes", "cfd", "raster",
            "ldpc", "vidstream"};
}

std::vector<std::string>
paperAppNames()
{
    return {"pyramid", "facedetect", "reyes", "cfd", "raster",
            "ldpc"};
}

std::unique_ptr<AppDriver>
makeApp(const std::string& name, AppScale scale)
{
    bool small = scale == AppScale::Small;
    if (name == "pyramid") {
        return std::make_unique<pyramid::PyramidApp>(
            small ? pyramid::PyrParams::small()
                  : pyramid::PyrParams{});
    }
    if (name == "facedetect") {
        return std::make_unique<facedetect::FaceDetectApp>(
            small ? facedetect::FdParams::small()
                  : facedetect::FdParams{});
    }
    if (name == "reyes") {
        return std::make_unique<reyes::ReyesApp>(
            small ? reyes::ReyesParams::small()
                  : reyes::ReyesParams{});
    }
    if (name == "cfd") {
        return std::make_unique<cfd::CfdApp>(
            small ? cfd::CfdParams::small() : cfd::CfdParams{});
    }
    if (name == "raster") {
        return std::make_unique<raster::RasterApp>(
            small ? raster::RasterParams::small()
                  : raster::RasterParams{});
    }
    if (name == "ldpc") {
        return std::make_unique<ldpc::LdpcApp>(
            small ? ldpc::LdpcParams::small() : ldpc::LdpcParams{});
    }
    if (name == "vidstream") {
        return std::make_unique<vidstream::VidstreamApp>(
            small ? vidstream::VsParams::small()
                  : vidstream::VsParams{});
    }
    VP_FATAL("unknown application `" << name << "`");
}

} // namespace vp

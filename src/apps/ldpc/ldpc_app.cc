#include "apps/ldpc/ldpc_app.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace vp::ldpc {

namespace {
constexpr int kThreads = 256;
constexpr float kLlrMag = 4.0f;
} // namespace

LdpcParams
LdpcParams::small()
{
    LdpcParams p;
    p.frames = 12;
    p.n = 256;
    p.iterations = 4;
    return p;
}

// ------------------------------ stages -------------------------- //

InitStage::InitStage(LdpcApp& app)
    : app_(app)
{
    name = "ldpc_init";
    threadNum = kThreads;
    retryable = true; // idempotent per-frame writes
    resources.regsPerThread = 56;  // 4 blocks/SM (paper sec 8.3)
    resources.codeBytes = 6144;
    kbkHostBytesPerItem = 1024;    // channel values uploaded per frame
}

TaskCost
InitStage::cost(const LdpcItem&) const
{
    double per_thread = double(app_.edges()) / kThreads;
    TaskCost c;
    c.computeInsts = per_thread * 8.0;
    c.memInsts = per_thread * 5.0;
    c.l1HitRate = 0.6;
    return c;
}

void
InitStage::execute(ExecContext& ctx, LdpcItem& item)
{
    LdpcApp& a = app_;
    int f = item.frame;
    // v2c messages start at the channel LLRs.
    for (int v = 0; v < a.params_.n; ++v) {
        for (int k = 0; k < a.params_.varDeg; ++k) {
            int e = a.varEdges_[static_cast<std::size_t>(v)
                                * a.params_.varDeg + k];
            a.v2c_[f][e] = a.llr_[f][v];
        }
    }
    ctx.enqueue<C2vStage>(LdpcItem{f, 1, 0});
}

C2vStage::C2vStage(LdpcApp& app)
    : app_(app)
{
    name = "ldpc_c2v";
    threadNum = kThreads;
    retryable = true; // reads v2c, writes c2v: idempotent
    resources.regsPerThread = 48;  // 5 blocks/SM (paper sec 8.3)
    resources.codeBytes = 9216;
}

TaskCost
C2vStage::cost(const LdpcItem&) const
{
    double per_thread = double(app_.edges()) / kThreads;
    TaskCost c;
    c.computeInsts = per_thread * 30.0;
    c.memInsts = per_thread * 10.0;
    c.l1HitRate = 0.65;
    return c;
}

void
C2vStage::execute(ExecContext& ctx, LdpcItem& item)
{
    app_.doC2v(app_.v2c_[item.frame], app_.c2v_[item.frame]);
    ctx.enqueue<V2cStage>(item);
}

V2cStage::V2cStage(LdpcApp& app)
    : app_(app)
{
    name = "ldpc_v2c";
    threadNum = kThreads;
    retryable = true; // reads llr/c2v, writes v2c: idempotent
    resources.regsPerThread = 48;  // 5 blocks/SM
    resources.codeBytes = 8192;
}

TaskCost
V2cStage::cost(const LdpcItem&) const
{
    double per_thread = double(app_.edges()) / kThreads;
    TaskCost c;
    c.computeInsts = per_thread * 20.0;
    c.memInsts = per_thread * 8.0;
    c.l1HitRate = 0.65;
    return c;
}

void
V2cStage::execute(ExecContext& ctx, LdpcItem& item)
{
    LdpcApp& a = app_;
    a.doV2c(a.llr_[item.frame], a.c2v_[item.frame],
            a.v2c_[item.frame]);
    if (item.iter < a.params_.iterations)
        ctx.enqueue<C2vStage>(LdpcItem{item.frame, item.iter + 1, 0});
    else
        ctx.enqueue<ProbVarStage>(LdpcItem{item.frame, item.iter, 1});
}

ProbVarStage::ProbVarStage(LdpcApp& app)
    : app_(app)
{
    name = "ldpc_probvar";
    threadNum = kThreads;
    retryable = true; // overwrites its frame's decision: idempotent
    resources.regsPerThread = 56;  // 4 blocks/SM
    resources.codeBytes = 9728;
    kbkHostBytesPerItem = 128;     // decisions downloaded per frame
}

TaskCost
ProbVarStage::cost(const LdpcItem&) const
{
    double per_thread = double(app_.params_.n) / kThreads;
    TaskCost c;
    c.computeInsts = per_thread * 8.0;
    c.memInsts = per_thread * 4.0;
    c.l1HitRate = 0.7;
    return c;
}

void
ProbVarStage::execute(ExecContext&, LdpcItem& item)
{
    LdpcApp& a = app_;
    a.decoded_[item.frame] = a.decide(a.llr_[item.frame],
                                      a.c2v_[item.frame]);
}

// ------------------------------ driver -------------------------- //

LdpcApp::LdpcApp(LdpcParams params)
    : params_(params)
{
    VP_REQUIRE(params_.n > 0 && params_.varDeg > 0
               && (params_.n * params_.varDeg) % params_.checkDeg
                      == 0,
               "bad LDPC parameters: edges must divide evenly into "
               "checks");
    checks_ = params_.n * params_.varDeg / params_.checkDeg;

    pipe_.addStage<InitStage>(*this);
    pipe_.addStage<C2vStage>(*this);
    pipe_.addStage<V2cStage>(*this);
    pipe_.addStage<ProbVarStage>(*this);
    pipe_.link<InitStage, C2vStage>();
    pipe_.link<C2vStage, V2cStage>();
    pipe_.link<V2cStage, C2vStage>(); // decoding iterations
    pipe_.link<V2cStage, ProbVarStage>();
    pipe_.setStructure(PipelineStructure::Loop);
    pipe_.megakernelExtraRegs = 4; // 56 + 4 = 60 (paper: 4 blocks/SM)

    // Tanner graph: edges grouped by check; a deterministic shuffled
    // permutation connects edge slots to variables.
    int e = edges();
    edgeVar_.resize(e);
    std::vector<std::int32_t> perm(e);
    for (int i = 0; i < e; ++i)
        perm[i] = i % params_.n; // each variable appears varDeg times
    Rng rng(params_.seed);
    for (int i = e - 1; i > 0; --i) {
        int j = static_cast<int>(rng.nextBelow(i + 1));
        std::swap(perm[i], perm[j]);
    }
    for (int i = 0; i < e; ++i)
        edgeVar_[i] = perm[i];
    varEdges_.assign(static_cast<std::size_t>(params_.n)
                     * params_.varDeg, 0);
    std::vector<int> fill(params_.n, 0);
    for (int i = 0; i < e; ++i) {
        int v = edgeVar_[i];
        varEdges_[static_cast<std::size_t>(v) * params_.varDeg
                  + fill[v]++] = i;
    }

    // Transmit all-zero codewords over a binary symmetric channel.
    llr_.resize(params_.frames);
    sent_.resize(params_.frames);
    Rng chan(params_.seed * 31 + 7);
    for (int f = 0; f < params_.frames; ++f) {
        sent_[f].assign(params_.n, 0);
        llr_[f].resize(params_.n);
        for (int v = 0; v < params_.n; ++v) {
            bool flipped = chan.nextBool(params_.flipProb);
            llr_[f][v] = flipped ? -kLlrMag : kLlrMag;
        }
    }
    reset();
}

void
LdpcApp::doC2v(std::vector<float>& v2c, std::vector<float>& c2v)
    const
{
    int dc = params_.checkDeg;
    for (int c = 0; c < checks_; ++c) {
        int base = c * dc;
        // Min-sum: per output edge, product of signs and min of
        // magnitudes over the other edges.
        for (int k = 0; k < dc; ++k) {
            float sign = 1.0f;
            float mag = 1e30f;
            for (int j = 0; j < dc; ++j) {
                if (j == k)
                    continue;
                float m = v2c[base + j];
                sign *= (m < 0.0f) ? -1.0f : 1.0f;
                mag = std::min(mag, std::fabs(m));
            }
            c2v[base + k] = 0.8f * sign * mag; // normalized min-sum
        }
    }
}

void
LdpcApp::doV2c(const std::vector<float>& llr,
               const std::vector<float>& c2v,
               std::vector<float>& v2c) const
{
    int dv = params_.varDeg;
    for (int v = 0; v < params_.n; ++v) {
        float total = llr[v];
        for (int k = 0; k < dv; ++k)
            total += c2v[varEdges_[static_cast<std::size_t>(v) * dv
                                   + k]];
        for (int k = 0; k < dv; ++k) {
            int e = varEdges_[static_cast<std::size_t>(v) * dv + k];
            v2c[e] = total - c2v[e];
        }
    }
}

std::vector<std::uint8_t>
LdpcApp::decide(const std::vector<float>& llr,
                const std::vector<float>& c2v) const
{
    int dv = params_.varDeg;
    std::vector<std::uint8_t> out(params_.n);
    for (int v = 0; v < params_.n; ++v) {
        float total = llr[v];
        for (int k = 0; k < dv; ++k)
            total += c2v[varEdges_[static_cast<std::size_t>(v) * dv
                                   + k]];
        out[v] = total < 0.0f ? 1 : 0;
    }
    return out;
}

std::vector<std::uint8_t>
LdpcApp::refDecode(const std::vector<float>& llr) const
{
    std::vector<float> v2c(edges());
    std::vector<float> c2v(edges(), 0.0f);
    for (int v = 0; v < params_.n; ++v)
        for (int k = 0; k < params_.varDeg; ++k)
            v2c[varEdges_[static_cast<std::size_t>(v)
                          * params_.varDeg + k]] = llr[v];
    for (int it = 0; it < params_.iterations; ++it) {
        doC2v(v2c, c2v);
        doV2c(llr, c2v, v2c);
    }
    return decide(llr, c2v);
}

void
LdpcApp::reset()
{
    v2c_.assign(params_.frames, std::vector<float>(edges(), 0.0f));
    c2v_.assign(params_.frames, std::vector<float>(edges(), 0.0f));
    decoded_.assign(params_.frames, {});
}

void
LdpcApp::seedFlow(Seeder& seeder, int)
{
    std::vector<LdpcItem> frames;
    for (int f = 0; f < params_.frames; ++f)
        frames.push_back(LdpcItem{f, 0, 0});
    seeder.insert<InitStage>(std::move(frames));
}

int
LdpcApp::correctedFrames() const
{
    int good = 0;
    for (int f = 0; f < params_.frames; ++f)
        good += decoded_[f] == sent_[f];
    return good;
}

bool
LdpcApp::verify()
{
    if (!refBuilt_) {
        refDecoded_.resize(params_.frames);
        for (int f = 0; f < params_.frames; ++f)
            refDecoded_[f] = refDecode(llr_[f]);
        refBuilt_ = true;
    }
    for (int f = 0; f < params_.frames; ++f) {
        if (decoded_[f] != refDecoded_[f])
            return false;
    }
    return true;
}

} // namespace vp::ldpc

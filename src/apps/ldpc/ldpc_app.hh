/**
 * @file
 * LDPC decoder application (paper Fig. 17): a 4-stage loop pipeline —
 * Initialize -> C2V -> V2C -> ProbVar — running min-sum decoding of a
 * regular (dv=3, dc=6) LDPC code over many frames. Frames are
 * independent, giving abundant task parallelism between stages.
 */

#ifndef VP_APPS_LDPC_LDPC_APP_HH
#define VP_APPS_LDPC_LDPC_APP_HH

#include <cstdint>
#include <vector>

#include "core/versapipe.hh"

namespace vp::ldpc {

/** Workload parameters. */
struct LdpcParams
{
    int frames = 100;   //!< paper: 100 frames
    int n = 1024;       //!< codeword bits
    int varDeg = 3;     //!< edges per variable node
    int checkDeg = 6;   //!< edges per check node
    /**
     * Decoding iterations per frame. The paper runs 100; the default
     * here is scaled down to keep simulations fast (model ratios are
     * iteration-invariant, see EXPERIMENTS.md).
     */
    int iterations = 8;
    double flipProb = 0.03; //!< BSC crossover probability
    std::uint64_t seed = 20170505;

    static LdpcParams small();
};

/** Data item (Table 2: 12 B). */
struct LdpcItem
{
    std::int32_t frame;
    std::int32_t iter;
    std::int32_t pass;
};
static_assert(sizeof(LdpcItem) == 12, "paper reports 12-byte items");

class LdpcApp;

/** Channel LLRs and message initialization for one frame. */
class InitStage : public Stage<LdpcItem>
{
  public:
    explicit InitStage(LdpcApp& app);
    TaskCost cost(const LdpcItem& item) const override;
    void execute(ExecContext& ctx, LdpcItem& item) override;

  private:
    LdpcApp& app_;
};

/** Check-to-variable min-sum update for one frame. */
class C2vStage : public Stage<LdpcItem>
{
  public:
    explicit C2vStage(LdpcApp& app);
    TaskCost cost(const LdpcItem& item) const override;
    void execute(ExecContext& ctx, LdpcItem& item) override;

  private:
    LdpcApp& app_;
};

/** Variable-to-check update for one frame. */
class V2cStage : public Stage<LdpcItem>
{
  public:
    explicit V2cStage(LdpcApp& app);
    TaskCost cost(const LdpcItem& item) const override;
    void execute(ExecContext& ctx, LdpcItem& item) override;

  private:
    LdpcApp& app_;
};

/** Posterior computation and hard decision for one frame. */
class ProbVarStage : public Stage<LdpcItem>
{
  public:
    explicit ProbVarStage(LdpcApp& app);
    TaskCost cost(const LdpcItem& item) const override;
    void execute(ExecContext& ctx, LdpcItem& item) override;

  private:
    LdpcApp& app_;
};

/** The LDPC application driver. */
class LdpcApp : public AppDriver
{
  public:
    explicit LdpcApp(LdpcParams params = {});

    std::string name() const override { return "ldpc"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    void seedFlow(Seeder& seeder, int flow) override;
    bool verify() override;

    const LdpcParams& params() const { return params_; }

    /** Frames whose decoded word matched the transmitted word. */
    int correctedFrames() const;

    /** Edges in the Tanner graph. */
    int edges() const { return params_.n * params_.varDeg; }

  private:
    friend class InitStage;
    friend class C2vStage;
    friend class V2cStage;
    friend class ProbVarStage;

    /** Decode one frame sequentially (reference). */
    std::vector<std::uint8_t>
    refDecode(const std::vector<float>& llr) const;

    void doC2v(std::vector<float>& v2c, std::vector<float>& c2v)
        const;
    void doV2c(const std::vector<float>& llr,
               const std::vector<float>& c2v,
               std::vector<float>& v2c) const;
    std::vector<std::uint8_t>
    decide(const std::vector<float>& llr,
           const std::vector<float>& c2v) const;

    LdpcParams params_;
    Pipeline pipe_;

    int checks_ = 0;
    /** Edge -> variable and edge -> check (grouped by check). */
    std::vector<std::int32_t> edgeVar_;
    /** Variable -> its varDeg edge indices. */
    std::vector<std::int32_t> varEdges_;

    /** Per-frame channel LLRs and messages. */
    std::vector<std::vector<float>> llr_;
    std::vector<std::vector<float>> v2c_;
    std::vector<std::vector<float>> c2v_;
    std::vector<std::vector<std::uint8_t>> decoded_;
    std::vector<std::vector<std::uint8_t>> sent_;

    std::vector<std::vector<std::uint8_t>> refDecoded_;
    bool refBuilt_ = false;
};

} // namespace vp::ldpc

#endif // VP_APPS_LDPC_LDPC_APP_HH

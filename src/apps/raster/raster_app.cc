#include "apps/raster/raster_app.hh"

#include <algorithm>
#include <cmath>

#include "common/rng.hh"

namespace vp::raster {

namespace {

/** Unit cube corner positions. */
const float kCorners[8][3] = {
    {-1, -1, -1}, {1, -1, -1}, {1, 1, -1}, {-1, 1, -1},
    {-1, -1, 1},  {1, -1, 1},  {1, 1, 1},  {-1, 1, 1},
};

/** Cube faces as triangle corner indices. */
const int kFaces[12][3] = {
    {0, 1, 2}, {0, 2, 3}, {4, 6, 5}, {4, 7, 6},
    {0, 4, 5}, {0, 5, 1}, {3, 2, 6}, {3, 6, 7},
    {1, 5, 6}, {1, 6, 2}, {0, 3, 7}, {0, 7, 4},
};

} // namespace

RasterParams
RasterParams::small()
{
    RasterParams p;
    p.cubes = 12;
    p.width = 256;
    p.height = 192;
    return p;
}

// ------------------------------ stages -------------------------- //

ClipStage::ClipStage(RasterApp& app)
    : app_(app)
{
    name = "clip";
    threadNum = 1;
    resources.regsPerThread = 48;  // 5 blocks/SM
    resources.codeBytes = 6144;
}

TaskCost
ClipStage::cost(const RasterItem&) const
{
    TaskCost c;
    c.computeInsts = 55.0; // 3 vertex transforms + cull tests
    c.memInsts = 18.0;
    c.l1HitRate = 0.65;
    return c;
}

void
ClipStage::execute(ExecContext& ctx, RasterItem& item)
{
    app_.clipTri(item.id);
    if (!app_.screen_[item.id].culled) {
        ++app_.drawn_;
        ctx.enqueue<InterpolateStage>(item);
    }
}

InterpolateStage::InterpolateStage(RasterApp& app)
    : app_(app)
{
    name = "interpolate";
    threadNum = 1;
    retryable = true; // pure: reads geometry, emits tile items
    resources.regsPerThread = 72;  // 3 blocks/SM
    resources.codeBytes = 10240;
}

TaskCost
InterpolateStage::cost(const RasterItem& item) const
{
    int tiles = app_.tilesTouched(item.id, nullptr);
    TaskCost c;
    c.computeInsts = 40.0 + 16.0 * tiles; // edge setup + bbox walk
    c.memInsts = 12.0 + 3.0 * tiles;
    c.l1HitRate = 0.60;
    return c;
}

void
InterpolateStage::execute(ExecContext& ctx, RasterItem& item)
{
    std::vector<int> tiles;
    app_.tilesTouched(item.id, &tiles);
    int stride = app_.tilesX() * app_.tilesY();
    for (int t : tiles)
        ctx.enqueue<RShadeStage>(RasterItem{item.id * stride + t});
}

RShadeStage::RShadeStage(RasterApp& app)
    : app_(app)
{
    name = "shade";
    threadNum = 256;
    retryable = true; // depth-test min-write: idempotent
    resources.regsPerThread = 60;  // 4 blocks/SM
    resources.codeBytes = 8192;
}

TaskCost
RShadeStage::cost(const RasterItem&) const
{
    double px = double(app_.params_.tile) * app_.params_.tile / 256.0;
    TaskCost c;
    c.computeInsts = px * 85.0; // edge tests + z interpolation
    c.memInsts = px * 8.0;
    c.l1HitRate = 0.55;
    return c;
}

void
RShadeStage::execute(ExecContext&, RasterItem& item)
{
    int stride = app_.tilesX() * app_.tilesY();
    int tri = item.id / stride;
    int tile = item.id % stride;
    app_.shadeTriTile(tri, tile % app_.tilesX(), tile / app_.tilesX(),
                      app_.fb_);
}

// ------------------------------ driver -------------------------- //

RasterApp::RasterApp(RasterParams params)
    : params_(params)
{
    VP_REQUIRE(params_.cubes > 0, "bad raster parameters");
    pipe_.addStage<ClipStage>(*this);
    pipe_.addStage<InterpolateStage>(*this);
    pipe_.addStage<RShadeStage>(*this);
    pipe_.link<ClipStage, InterpolateStage>();
    pipe_.link<InterpolateStage, RShadeStage>();
    pipe_.setStructure(PipelineStructure::Linear);

    // Place cubes with varying position, scale and rotation.
    Rng rng(params_.seed);
    for (int c = 0; c < params_.cubes; ++c) {
        double cx = rng.nextRange(-5.0, 5.0);
        double cy = rng.nextRange(-3.0, 3.0);
        double cz = rng.nextRange(5.0, 25.0);
        double s = rng.nextRange(0.4, 1.6);
        double ang = rng.nextRange(0.0, 6.28);
        double ca = std::cos(ang), sa = std::sin(ang);
        for (int f = 0; f < 12; ++f) {
            SourceTri tri;
            for (int v = 0; v < 3; ++v) {
                const float* p = kCorners[kFaces[f][v]];
                // Rotate around Y, scale, translate.
                double x = (p[0] * ca + p[2] * sa) * s + cx;
                double y = p[1] * s + cy;
                double z = (-p[0] * sa + p[2] * ca) * s + cz;
                tri.v[v][0] = float(x);
                tri.v[v][1] = float(y);
                tri.v[v][2] = float(z);
            }
            source_.push_back(tri);
        }
    }
    reset();
}

int
RasterApp::tilesX() const
{
    return (params_.width + params_.tile - 1) / params_.tile;
}

int
RasterApp::tilesY() const
{
    return (params_.height + params_.tile - 1) / params_.tile;
}

void
RasterApp::clipTri(int id)
{
    const SourceTri& src = source_[id];
    Tri out;
    double f = params_.height * 0.9;
    bool behind = false;
    for (int v = 0; v < 3; ++v) {
        double z = src.v[v][2];
        if (z < 0.5)
            behind = true;
        z = std::max(0.5, z);
        out.x[v] = float(src.v[v][0] / z * f + params_.width * 0.5);
        out.y[v] = float(src.v[v][1] / z * f + params_.height * 0.5);
        out.z[v] = float(z);
    }
    // Cull: behind camera, fully off screen, or backfacing.
    double area = (out.x[1] - out.x[0]) * (out.y[2] - out.y[0])
        - (out.x[2] - out.x[0]) * (out.y[1] - out.y[0]);
    bool off = true;
    for (int v = 0; v < 3; ++v) {
        if (out.x[v] >= 0 && out.x[v] < params_.width && out.y[v] >= 0
            && out.y[v] < params_.height)
            off = false;
    }
    out.culled = behind || off || area <= 0.0;
    screen_[id] = out;
}

int
RasterApp::tilesTouched(int tri, std::vector<int>* out) const
{
    const Tri& t = screen_[tri];
    int min_x = std::clamp(
        int(std::floor(std::min({t.x[0], t.x[1], t.x[2]})))
            / params_.tile, 0, tilesX() - 1);
    int max_x = std::clamp(
        int(std::ceil(std::max({t.x[0], t.x[1], t.x[2]})))
            / params_.tile, 0, tilesX() - 1);
    int min_y = std::clamp(
        int(std::floor(std::min({t.y[0], t.y[1], t.y[2]})))
            / params_.tile, 0, tilesY() - 1);
    int max_y = std::clamp(
        int(std::ceil(std::max({t.y[0], t.y[1], t.y[2]})))
            / params_.tile, 0, tilesY() - 1);
    int count = 0;
    for (int ty = min_y; ty <= max_y; ++ty) {
        for (int tx = min_x; tx <= max_x; ++tx) {
            ++count;
            if (out)
                out->push_back(ty * tilesX() + tx);
        }
    }
    return count;
}

void
RasterApp::shadeTriTile(int tri, int tx, int ty,
                        std::vector<std::uint64_t>& fb) const
{
    const Tri& t = screen_[tri];
    double x0 = t.x[0], y0 = t.y[0];
    double x1 = t.x[1], y1 = t.y[1];
    double x2 = t.x[2], y2 = t.y[2];
    double area = (x1 - x0) * (y2 - y0) - (x2 - x0) * (y1 - y0);
    if (area <= 0.0)
        return;

    int px0 = tx * params_.tile;
    int py0 = ty * params_.tile;
    int px1 = std::min(params_.width, px0 + params_.tile);
    int py1 = std::min(params_.height, py0 + params_.tile);
    for (int y = py0; y < py1; ++y) {
        for (int x = px0; x < px1; ++x) {
            double cx = x + 0.5, cy = y + 0.5;
            double w0 = (x1 - cx) * (y2 - cy) - (x2 - cx) * (y1 - cy);
            double w1 = (x2 - cx) * (y0 - cy) - (x0 - cx) * (y2 - cy);
            double w2 = (x0 - cx) * (y1 - cy) - (x1 - cx) * (y0 - cy);
            if (w0 < 0 || w1 < 0 || w2 < 0)
                continue;
            double z = (w0 * t.z[0] + w1 * t.z[1] + w2 * t.z[2])
                / area;
            // Depth-major packing with the triangle id as a unique,
            // deterministic tiebreaker: min() = nearest wins.
            std::uint64_t zq = static_cast<std::uint64_t>(
                std::min(1e9, z * 1e4));
            std::uint64_t packed = (zq << 24)
                | static_cast<std::uint64_t>(tri);
            std::uint64_t& cell =
                fb[static_cast<std::size_t>(y) * params_.width + x];
            cell = std::min(cell, packed);
        }
    }
}

void
RasterApp::reset()
{
    screen_.assign(triangles(), Tri{});
    fb_.assign(static_cast<std::size_t>(params_.width)
               * params_.height, ~std::uint64_t(0));
    drawn_ = 0;
}

void
RasterApp::seedFlow(Seeder& seeder, int)
{
    std::vector<RasterItem> tris;
    for (int t = 0; t < triangles(); ++t)
        tris.push_back(RasterItem{t});
    seeder.insert<ClipStage>(std::move(tris));
}

bool
RasterApp::verify()
{
    if (!refBuilt_) {
        // Sequential reference with the same stage math.
        std::vector<std::uint64_t> fb(
            static_cast<std::size_t>(params_.width) * params_.height,
            ~std::uint64_t(0));
        std::vector<Tri> saved_screen = screen_;
        int saved_drawn = drawn_;
        for (int id = 0; id < triangles(); ++id) {
            clipTri(id);
            if (screen_[id].culled)
                continue;
            std::vector<int> tiles;
            tilesTouched(id, &tiles);
            for (int t : tiles)
                shadeTriTile(id, t % tilesX(), t / tilesX(), fb);
        }
        screen_ = std::move(saved_screen);
        drawn_ = saved_drawn;
        std::uint64_t h = 1469598103934665603ULL;
        for (std::uint64_t v : fb) {
            h ^= v;
            h *= 1099511628211ULL;
        }
        refChecksum_ = h;
        refBuilt_ = true;
    }
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint64_t v : fb_) {
        h ^= v;
        h *= 1099511628211ULL;
    }
    return h == refChecksum_;
}

} // namespace vp::raster

/**
 * @file
 * Rasterization application (paper Fig. 16): a linear 3-stage
 * pipeline — Clip -> Interpolate -> Shade — rendering 100 cubes into
 * a 1024x768 framebuffer. Items are 4-byte ids (Table 2), the
 * smallest of any evaluated pipeline.
 */

#ifndef VP_APPS_RASTER_RASTER_APP_HH
#define VP_APPS_RASTER_RASTER_APP_HH

#include <cstdint>
#include <vector>

#include "core/versapipe.hh"

namespace vp::raster {

/** Workload parameters. */
struct RasterParams
{
    int cubes = 100;
    int width = 1024;
    int height = 768;
    int tile = 32; //!< shading tile side in pixels
    std::uint64_t seed = 20170606;

    static RasterParams small();
};

/** Data item (Table 2: 4 B): a triangle id, or a packed
 * (triangle, tile) pair for the Shade stage. */
struct RasterItem
{
    std::int32_t id;
};
static_assert(sizeof(RasterItem) == 4, "paper reports 4-byte items");

class RasterApp;

/** Transform + frustum cull one triangle. */
class ClipStage : public Stage<RasterItem>
{
  public:
    explicit ClipStage(RasterApp& app);
    TaskCost cost(const RasterItem& item) const override;
    void execute(ExecContext& ctx, RasterItem& item) override;

  private:
    RasterApp& app_;
};

/** Coverage setup: emit (triangle, tile) work for touched tiles. */
class InterpolateStage : public Stage<RasterItem>
{
  public:
    explicit InterpolateStage(RasterApp& app);
    TaskCost cost(const RasterItem& item) const override;
    void execute(ExecContext& ctx, RasterItem& item) override;

  private:
    RasterApp& app_;
};

/** Shade covered pixels of one (triangle, tile) pair. */
class RShadeStage : public Stage<RasterItem>
{
  public:
    explicit RShadeStage(RasterApp& app);
    TaskCost cost(const RasterItem& item) const override;
    void execute(ExecContext& ctx, RasterItem& item) override;

  private:
    RasterApp& app_;
};

/** The Rasterization application driver. */
class RasterApp : public AppDriver
{
  public:
    explicit RasterApp(RasterParams params = {});

    std::string name() const override { return "raster"; }
    Pipeline& pipeline() override { return pipe_; }
    void reset() override;
    void seedFlow(Seeder& seeder, int flow) override;
    bool verify() override;

    const RasterParams& params() const { return params_; }

    /** Depth/triangle packed framebuffer (min-combined). */
    const std::vector<std::uint64_t>& framebuffer() const
    {
        return fb_;
    }

    /** Triangles surviving the clip stage in the last run. */
    int trianglesDrawn() const { return drawn_; }

    /** Total input triangles (12 per cube). */
    int triangles() const { return params_.cubes * 12; }

    /** Tiles across / down. */
    int tilesX() const;
    int tilesY() const;

  private:
    friend class ClipStage;
    friend class InterpolateStage;
    friend class RShadeStage;

    /** A screen-space triangle. */
    struct Tri
    {
        float x[3], y[3], z[3];
        bool culled = false;
    };

    /** Object-space triangle corners (set up in the constructor). */
    struct SourceTri
    {
        float v[3][3];
    };

    void clipTri(int id);
    void shadeTriTile(int tri, int tx, int ty,
                      std::vector<std::uint64_t>& fb) const;
    int tilesTouched(int tri, std::vector<int>* out) const;

    RasterParams params_;
    Pipeline pipe_;

    std::vector<SourceTri> source_;
    std::vector<Tri> screen_;
    std::vector<std::uint64_t> fb_;
    int drawn_ = 0;

    std::uint64_t refChecksum_ = 0;
    bool refBuilt_ = false;
};

} // namespace vp::raster

#endif // VP_APPS_RASTER_RASTER_APP_HH

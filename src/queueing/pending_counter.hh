/**
 * @file
 * Global outstanding-work counter used to detect pipeline completion.
 *
 * Every data item in any queue or in flight inside a block contributes
 * one unit. Persistent kernels terminate when the counter drains to
 * zero (after at least one item was ever added), which is exact even
 * for recursive pipelines: an item is only retired after all items it
 * spawned have been counted.
 */

#ifndef VP_QUEUEING_PENDING_COUNTER_HH
#define VP_QUEUEING_PENDING_COUNTER_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace vp {

/** Outstanding-work counter with drain notification. */
class PendingCounter
{
  public:
    /** Add @p n units of outstanding work. */
    void add(std::int64_t n = 1);

    /** Retire @p n units; fires drain callbacks on reaching zero. */
    void sub(std::int64_t n = 1);

    /** Current outstanding units. */
    std::int64_t value() const { return value_; }

    /** True when work was ever added and all of it has retired. */
    bool done() const { return started_ && value_ == 0; }

    /** Register a callback to fire when the counter drains. */
    void notifyOnDrain(std::function<void()> fn);

    /** Reset to the pristine state. */
    void reset();

  private:
    std::int64_t value_ = 0;
    bool started_ = false;
    std::vector<std::function<void()>> onDrain_;
};

} // namespace vp

#endif // VP_QUEUEING_PENDING_COUNTER_HH

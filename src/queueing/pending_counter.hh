/**
 * @file
 * Global outstanding-work counter used to detect pipeline completion.
 *
 * Every data item in any queue or in flight inside a block contributes
 * one unit. Persistent kernels terminate when the counter drains to
 * zero (after at least one item was ever added), which is exact even
 * for recursive pipelines: an item is only retired after all items it
 * spawned have been counted.
 */

#ifndef VP_QUEUEING_PENDING_COUNTER_HH
#define VP_QUEUEING_PENDING_COUNTER_HH

#include <cstdint>
#include <functional>
#include <vector>

namespace vp {

/** Outstanding-work counter with drain notification. */
class PendingCounter
{
  public:
    /** Add @p n units of outstanding work. */
    void add(std::int64_t n = 1);

    /** Retire @p n units; fires drain callbacks on reaching zero. */
    void sub(std::int64_t n = 1);

    /** Current outstanding units (see enableGroupMode). */
    std::int64_t
    value() const
    {
        return groupValue_ ? groupValue_() : value_;
    }

    /** True when work was ever added and all of it has retired. */
    bool done() const { return started_ && value() == 0; }

    /** Register a callback to fire when the counter drains. */
    void notifyOnDrain(std::function<void()> fn);

    /** Reset to the pristine state (keeps group mode off). */
    void reset();

    /**
     * Switch this counter into group (delta) mode: it records one
     * device's local adds/subs of a host-parallel sharded run, which
     * may legitimately go negative (a pinned consumer retires items
     * that a producer on another device added), so the underflow
     * check and the drain callbacks are disabled. value()/done()
     * answer through @p groupValue, which sums every member
     * counter's localValue() — callers only consult it at window
     * barriers, where the sum is exact.
     */
    void enableGroupMode(std::function<std::int64_t()> groupValue);

    /**
     * Mark work as having started without counting it here. Group
     * mode seeds items on their home device's counter; members that
     * received nothing must still not report done() vacuously.
     */
    void markStarted() { started_ = true; }

    /** This counter's own delta, ignoring any group-value probe. */
    std::int64_t localValue() const { return value_; }

  private:
    std::int64_t value_ = 0;
    bool started_ = false;
    bool groupMode_ = false;
    std::function<std::int64_t()> groupValue_;
    std::vector<std::function<void()>> onDrain_;
};

} // namespace vp

#endif // VP_QUEUEING_PENDING_COUNTER_HH

/**
 * @file
 * Work-queue library.
 *
 * One queue buffers the input data items of one pipeline stage. The
 * queue itself is a deterministic FIFO; the *cost* of using it from
 * massively parallel device code (atomics, pointer chasing, payload
 * movement, contention between concurrent accessors) is modeled by
 * accessCost(), which the runtime charges to the accessing block.
 */

#ifndef VP_QUEUEING_WORK_QUEUE_HH
#define VP_QUEUEING_WORK_QUEUE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <typeindex>
#include <utility>
#include <vector>

#include "common/error.hh"
#include "gpu/device_config.hh"
#include "obs/provenance.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace vp {

/** Statistics of one work queue over a run. */
struct QueueStats
{
    std::uint64_t pushes = 0;
    std::uint64_t pops = 0;
    std::size_t maxDepth = 0;
    /** Total cycles blocks spent on push/pop operations here. */
    double opCycles = 0.0;
    /** Cycles of that total attributable to contention. */
    double contentionCycles = 0.0;
};

/**
 * Interval statistics between two snapshots of the same queue:
 * counters subtract; maxDepth is the interval's upper bound (the
 * high-water mark is monotone, so @p now's value bounds the
 * interval). This is how epoch accounting slices a long-lived run —
 * snapshot at each boundary and delta, never resetStats() mid-run,
 * which would also clear the contention window and re-baseline the
 * depth EWMA.
 */
inline QueueStats
queueStatsDelta(const QueueStats& now, const QueueStats& prev)
{
    QueueStats d;
    d.pushes = now.pushes - prev.pushes;
    d.pops = now.pops - prev.pops;
    d.maxDepth = now.maxDepth;
    d.opCycles = now.opCycles - prev.opCycles;
    d.contentionCycles = now.contentionCycles - prev.contentionCycles;
    return d;
}

/**
 * Type-erased base of all work queues, carrying the cost model and
 * statistics; typed payload access lives in WorkQueue<T>.
 */
class QueueBase
{
  public:
    /**
     * @param name queue name (usually the consumer stage's name)
     * @param itemBytes payload size of one data item
     * @param type typeid of the payload for checked downcasts
     */
    QueueBase(std::string name, int itemBytes, std::type_index type);

    virtual ~QueueBase();

    QueueBase(const QueueBase&) = delete;
    QueueBase& operator=(const QueueBase&) = delete;

    /** Queue name. */
    const std::string& name() const { return name_; }

    /** Payload bytes per item. */
    int itemBytes() const { return itemBytes_; }

    /** Payload type. */
    std::type_index type() const { return type_; }

    /** Items currently buffered. */
    virtual std::size_t size() const = 0;

    /** Drop all buffered items. */
    virtual void clear() = 0;

    /**
     * Move every buffered item into @p dst (same payload type),
     * recording the pops here and the pushes there. Failover
     * evacuation: the group coordinator drains a dead device's
     * queues into survivor queues without knowing the payload type.
     * @return the number of items moved.
     */
    virtual std::size_t drainInto(QueueBase& dst) = 0;

    /**
     * Failover re-homing hook: a RemoteStubQueue switches to local
     * buffering (its stage now lives on this device); a real queue
     * ignores it.
     */
    virtual void takeOverLocal() {}

    /** True when no items are buffered. */
    bool empty() const { return size() == 0; }

    /**
     * Cycle cost of one queue access moving @p items items at virtual
     * time @p now. Includes the contention surcharge derived from the
     * number of accesses within the recent window; also records this
     * access for future contention estimates and in the stats.
     */
    Tick accessCost(const DeviceConfig& cfg, Tick now, int items);

    /** Run statistics. */
    const QueueStats& stats() const { return stats_; }

    /**
     * Reset statistics (not contents). Also clears the contention
     * window: the recent-access ring is part of the per-run cost
     * accounting, so a queue reused across runs must not charge
     * phantom contention from the previous run's accesses.
     *
     * Run-boundary only. Inside a run — e.g. between serving epochs —
     * use stats() snapshots and queueStatsDelta() instead: a mid-run
     * reset would drop the contention window (perturbing access
     * costs, hence the event stream) and re-baseline the depth EWMA.
     */
    void
    resetStats()
    {
        stats_ = QueueStats();
        recent_.clear();
        recentHead_ = 0;
        recentCount_ = 0;
        // Re-baseline the smoothed depth to the *surviving* contents:
        // zeroing it on a non-empty queue would feed the adaptive
        // controller a phantom under-load signal on reuse.
        depthEwma_ = ewmaEnabled_ ? static_cast<double>(size()) : 0.0;
    }

    /**
     * Attach the run tracer (null detaches; never owned): every
     * push/pop records a QueueDepth counter sample on @p track
     * (conventionally the consumer stage index). @p nameId is the
     * tracer-interned display name.
     */
    void
    setTrace(Tracer* t, std::int16_t track, std::int32_t nameId)
    {
        tracer_ = t;
        traceTrack_ = track;
        traceName_ = nameId;
    }

    /** @name Capacity (backpressure / deadlock modeling) @{ */

    /** Bound the queue to @p cap items; 0 restores unbounded. */
    void setCapacity(std::size_t cap) { capacity_ = cap; }

    /** Configured capacity; 0 means unbounded. */
    std::size_t capacity() const { return capacity_; }

    /**
     * True when a bounded queue has no room for another item.
     * Virtual so RemoteStubQueue can honor the *home* queue's
     * capacity through a coordinator-wired credit probe.
     */
    virtual bool
    full() const
    {
        return capacity_ > 0 && size() >= capacity_;
    }

    /** @} */

    /** @name Depth EWMA (adaptive load-balance signal) @{
     *
     * When enabled, every push/pop folds the post-operation depth
     * into an exponentially weighted moving average inside the
     * existing bookkeeping hooks. The smoothed depth is what the
     * online load-balance controller reads at its epochs — pure
     * host-side arithmetic, never a simulation event, so enabling it
     * cannot perturb a run. Disabled (the default), the only cost on
     * the hot path is one branch per bookkeeping call.
     */

    /** Start tracking the depth EWMA with smoothing @p alpha. */
    void
    enableDepthEwma(double alpha)
    {
        ewmaEnabled_ = true;
        ewmaAlpha_ = alpha;
        depthEwma_ = static_cast<double>(size());
    }

    /** True once enableDepthEwma() was called. */
    bool depthEwmaEnabled() const { return ewmaEnabled_; }

    /** Smoothed queue depth (instantaneous size when disabled). */
    double
    depthEwma() const
    {
        return ewmaEnabled_ ? depthEwma_
                            : static_cast<double>(size());
    }

    /** @} */

    /** @name Retry metadata (fault/recovery support) @{
     *
     * When enabled, the queue carries a per-item retry count in a
     * parallel deque, maintained inside the existing push/pop stat
     * hooks. Disabled (the default), the only cost on the hot path
     * is one branch per bookkeeping call.
     */

    /** Start tracking per-item retry counts (existing items get 0). */
    void enableRetryMeta();

    /** True once enableRetryMeta() was called. */
    bool retryMetaEnabled() const { return metaEnabled_; }

    /** Stamp the NEXT pushed item with @p tries (one-shot). */
    void stampNextPushTries(std::uint32_t tries) { nextTries_ = tries; }

    /** Retry count of the i-th buffered item (0 if meta disabled). */
    std::uint32_t triesAt(std::size_t i) const;

    /** Retry counts of the items removed by the last pop/popBatch. */
    const std::vector<std::uint32_t>&
    poppedTries() const
    {
        return poppedTries_;
    }

    /** @} */

    /** @name Item provenance (observability support) @{
     *
     * When attached, the queue carries a per-item provenance id in a
     * parallel deque, maintained inside the existing push/pop stat
     * hooks, and reports every enqueue of a tracked item to the
     * tracker with the current simulated time. Purely host-side
     * recording; detached (the default), the only cost on the hot
     * path is one branch per bookkeeping call.
     */

    /**
     * Attach the run's provenance tracker (null detaches; never
     * owned). @p stage / @p device identify this queue to the
     * tracker; existing items get id 0 (untracked).
     */
    void setProvenance(ProvenanceTracker* prov, const Simulator* sim,
                       int stage, int device);

    /** True while a tracker is attached. */
    bool provenanceEnabled() const { return prov_ != nullptr; }

    /** Stamp the NEXT pushed item with provenance @p id (one-shot). */
    void stampNextPushId(std::uint64_t id) { nextId_ = id; }

    /** Consume a pending stamp without pushing (remote-stub diverts
     *  the item onto the interconnect instead of buffering it). */
    std::uint64_t
    takeStampedId()
    {
        std::uint64_t id = nextId_;
        nextId_ = 0;
        return id;
    }

    /** Provenance ids of the items removed by the last pop/popBatch
     *  (scratch — copy before the next pop). */
    const std::vector<std::uint64_t>& poppedIds() const
    {
        return poppedIds_;
    }

    /** @} */

  protected:
    void recordPush(std::size_t depthAfter);
    void recordPop(std::size_t depthAfter);

    /** Record @p n pops in one bookkeeping step (batch pop). */
    void recordPops(std::uint64_t n, std::size_t depthAfter);

    /** Keep item metadata in sync with a clear() of the payload. */
    void
    metaCleared()
    {
        tries_.clear();
        ids_.clear();
    }

  private:
    std::string name_;
    int itemBytes_;
    std::type_index type_;

    /**
     * Timestamps of accesses inside the contention window, as a ring
     * buffer (timestamps are non-decreasing, so eviction only happens
     * at the head). Replaces a std::deque whose chunked allocation
     * and per-access pop/push churn sat on the queue-cost fast path;
     * the contention estimate is bitwise identical.
     */
    std::vector<Tick> recent_;
    std::size_t recentHead_ = 0;
    std::size_t recentCount_ = 0;

    /** Append @p t to the access window, growing if full. */
    void pushRecent(Tick t);

    QueueStats stats_;

    std::size_t capacity_ = 0;
    bool ewmaEnabled_ = false;
    double ewmaAlpha_ = 0.5;
    double depthEwma_ = 0.0;
    Tracer* tracer_ = nullptr;
    std::int16_t traceTrack_ = 0;
    std::int32_t traceName_ = -1;
    bool metaEnabled_ = false;
    std::uint32_t nextTries_ = 0;
    /** Per-item retry counts, parallel to the payload FIFO. */
    std::deque<std::uint32_t> tries_;
    /** Retry counts of the last pop/popBatch (scratch, reused). */
    std::vector<std::uint32_t> poppedTries_;
    ProvenanceTracker* prov_ = nullptr;
    const Simulator* provSim_ = nullptr;
    int provStage_ = -1;
    int provDevice_ = 0;
    std::uint64_t nextId_ = 0;
    /** Per-item provenance ids, parallel to the payload FIFO. */
    std::deque<std::uint64_t> ids_;
    /** Provenance ids of the last pop/popBatch (scratch, reused). */
    std::vector<std::uint64_t> poppedIds_;
};

/** FIFO of data items of type T. */
template <typename T>
class WorkQueue : public QueueBase
{
  public:
    explicit WorkQueue(std::string name)
        : QueueBase(std::move(name), static_cast<int>(sizeof(T)),
                    std::type_index(typeid(T)))
    {}

    std::size_t size() const override { return items_.size(); }

    void
    clear() override
    {
        items_.clear();
        metaCleared();
    }

    /** Read-only access to the i-th buffered item (capture). */
    const T&
    at(std::size_t i) const
    {
        VP_ASSERT(i < items_.size(),
                  "queue `" << name() << "` index " << i
                            << " out of range");
        return items_[i];
    }

    /** Append one item. Virtual so RemoteStubQueue can divert pushes
     *  of stages homed on another device through the interconnect. */
    virtual void
    push(T v)
    {
        items_.push_back(std::move(v));
        recordPush(items_.size());
    }

    /** Remove the oldest item into @p out; false when empty. */
    bool
    pop(T& out)
    {
        if (items_.empty())
            return false;
        out = std::move(items_.front());
        items_.pop_front();
        recordPop(items_.size());
        return true;
    }

    std::size_t
    drainInto(QueueBase& dst) override
    {
        WorkQueue<T>& t = typedQueue<T>(dst);
        std::size_t n = items_.size();
        T v;
        while (pop(v)) {
            // Carry each item's provenance id to its new home so
            // failover evacuation keeps lineages intact.
            if (provenanceEnabled() && !poppedIds().empty())
                t.stampNextPushId(poppedIds().front());
            t.push(std::move(v));
        }
        return n;
    }

    /** Pop up to @p maxItems items into @p out; returns the count. */
    std::size_t
    popBatch(std::vector<T>& out, std::size_t maxItems)
    {
        std::size_t n = std::min(maxItems, items_.size());
        out.reserve(out.size() + n);
        for (std::size_t i = 0; i < n; ++i) {
            out.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        recordPops(n, items_.size());
        return n;
    }

  private:
    std::deque<T> items_;
};

/**
 * Downcast a QueueBase to its typed queue, checking the payload type.
 */
template <typename T>
WorkQueue<T>&
typedQueue(QueueBase& q)
{
    VP_ASSERT(q.type() == std::type_index(typeid(T)),
              "queue `" << q.name() << "` holds a different item type");
    return static_cast<WorkQueue<T>&>(q);
}

} // namespace vp

#endif // VP_QUEUEING_WORK_QUEUE_HH

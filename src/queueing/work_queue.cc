#include "queueing/work_queue.hh"

#include <algorithm>

namespace vp {

namespace {
/** Sliding window, in cycles, over which accesses contend. */
constexpr Tick kContentionWindow = 400.0;
} // namespace

QueueBase::QueueBase(std::string name, int itemBytes,
                     std::type_index type)
    : name_(std::move(name)), itemBytes_(itemBytes), type_(type)
{
    VP_REQUIRE(itemBytes_ > 0, "queue `" << name_
               << "`: item size must be positive");
}

QueueBase::~QueueBase() = default;

void
QueueBase::pushRecent(Tick t)
{
    if (recentCount_ == recent_.size()) {
        // Grow and unroll the ring into a fresh buffer.
        std::vector<Tick> grown;
        grown.reserve(recent_.empty() ? 16 : recent_.size() * 2);
        for (std::size_t i = 0; i < recentCount_; ++i)
            grown.push_back(recent_[(recentHead_ + i) % recent_.size()]);
        grown.resize(grown.capacity());
        recent_ = std::move(grown);
        recentHead_ = 0;
    }
    recent_[(recentHead_ + recentCount_) % recent_.size()] = t;
    ++recentCount_;
}

Tick
QueueBase::accessCost(const DeviceConfig& cfg, Tick now, int items)
{
    VP_ASSERT(items >= 0, "negative item count");
    // Evict timestamps that fell out of the window. Accesses arrive
    // in non-decreasing time order, so only the head can expire.
    while (recentCount_ > 0
           && recent_[recentHead_] < now - kContentionWindow) {
        recentHead_ = (recentHead_ + 1) % recent_.size();
        --recentCount_;
    }
    auto contenders = static_cast<double>(recentCount_);
    pushRecent(now);

    // Payload movement is warp-parallel on the device: 16 lanes of a
    // block cooperate on bulk enqueue/dequeue traffic.
    double base = cfg.queueOpCycles
        + cfg.queueByteCycles * itemBytes_ * std::max(items, 1)
              / 16.0;
    double contention = cfg.queueContentionCycles * contenders;
    stats_.opCycles += base + contention;
    stats_.contentionCycles += contention;
    return base + contention;
}

void
QueueBase::recordPush(std::size_t depthAfter)
{
    ++stats_.pushes;
    stats_.maxDepth = std::max(stats_.maxDepth, depthAfter);
    if (ewmaEnabled_)
        depthEwma_ +=
            ewmaAlpha_ * (static_cast<double>(depthAfter) - depthEwma_);
    if (tracer_)
        tracer_->counter(TraceKind::QueueDepth, traceTrack_,
                         tracer_->now(),
                         static_cast<double>(depthAfter),
                         traceName_);
    if (metaEnabled_) {
        tries_.push_back(nextTries_);
        nextTries_ = 0;
    }
    if (prov_) {
        ids_.push_back(nextId_);
        if (nextId_)
            prov_->noteEnqueue(nextId_, provStage_, provDevice_,
                               provSim_->now());
        nextId_ = 0;
    }
}

void
QueueBase::recordPop(std::size_t depthAfter)
{
    ++stats_.pops;
    if (ewmaEnabled_)
        depthEwma_ +=
            ewmaAlpha_ * (static_cast<double>(depthAfter) - depthEwma_);
    if (tracer_)
        tracer_->counter(TraceKind::QueueDepth, traceTrack_,
                         tracer_->now(),
                         static_cast<double>(depthAfter),
                         traceName_);
    if (metaEnabled_) {
        poppedTries_.clear();
        if (!tries_.empty()) {
            poppedTries_.push_back(tries_.front());
            tries_.pop_front();
        }
    }
    if (prov_) {
        poppedIds_.clear();
        if (!ids_.empty()) {
            poppedIds_.push_back(ids_.front());
            ids_.pop_front();
        }
    }
}

void
QueueBase::recordPops(std::uint64_t n, std::size_t depthAfter)
{
    stats_.pops += n;
    if (ewmaEnabled_ && n > 0)
        depthEwma_ +=
            ewmaAlpha_ * (static_cast<double>(depthAfter) - depthEwma_);
    if (tracer_ && n > 0)
        tracer_->counter(TraceKind::QueueDepth, traceTrack_,
                         tracer_->now(),
                         static_cast<double>(depthAfter),
                         traceName_);
    if (metaEnabled_) {
        poppedTries_.clear();
        std::uint64_t take =
            std::min<std::uint64_t>(n, tries_.size());
        for (std::uint64_t i = 0; i < take; ++i) {
            poppedTries_.push_back(tries_.front());
            tries_.pop_front();
        }
    }
    if (prov_) {
        poppedIds_.clear();
        std::uint64_t take = std::min<std::uint64_t>(n, ids_.size());
        for (std::uint64_t i = 0; i < take; ++i) {
            poppedIds_.push_back(ids_.front());
            ids_.pop_front();
        }
    }
}

void
QueueBase::enableRetryMeta()
{
    if (metaEnabled_)
        return;
    metaEnabled_ = true;
    tries_.assign(size(), 0);
}

void
QueueBase::setProvenance(ProvenanceTracker* prov, const Simulator* sim,
                         int stage, int device)
{
    prov_ = prov;
    provSim_ = sim;
    provStage_ = stage;
    provDevice_ = device;
    if (prov_)
        ids_.assign(size(), 0);
}

std::uint32_t
QueueBase::triesAt(std::size_t i) const
{
    if (!metaEnabled_ || i >= tries_.size())
        return 0;
    return tries_[i];
}

} // namespace vp

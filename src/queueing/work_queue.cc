#include "queueing/work_queue.hh"

#include <algorithm>

namespace vp {

namespace {
/** Sliding window, in cycles, over which accesses contend. */
constexpr Tick kContentionWindow = 400.0;
} // namespace

QueueBase::QueueBase(std::string name, int itemBytes,
                     std::type_index type)
    : name_(std::move(name)), itemBytes_(itemBytes), type_(type)
{
    VP_REQUIRE(itemBytes_ > 0, "queue `" << name_
               << "`: item size must be positive");
}

QueueBase::~QueueBase() = default;

Tick
QueueBase::accessCost(const DeviceConfig& cfg, Tick now, int items)
{
    VP_ASSERT(items >= 0, "negative item count");
    while (!recent_.empty() && recent_.front() < now - kContentionWindow)
        recent_.pop_front();
    auto contenders = static_cast<double>(recent_.size());
    recent_.push_back(now);

    // Payload movement is warp-parallel on the device: 16 lanes of a
    // block cooperate on bulk enqueue/dequeue traffic.
    double base = cfg.queueOpCycles
        + cfg.queueByteCycles * itemBytes_ * std::max(items, 1)
              / 16.0;
    double contention = cfg.queueContentionCycles * contenders;
    stats_.opCycles += base + contention;
    stats_.contentionCycles += contention;
    return base + contention;
}

void
QueueBase::recordPush(std::size_t depthAfter)
{
    ++stats_.pushes;
    stats_.maxDepth = std::max(stats_.maxDepth, depthAfter);
}

void
QueueBase::recordPop()
{
    ++stats_.pops;
}

} // namespace vp

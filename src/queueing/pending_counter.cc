#include "queueing/pending_counter.hh"

#include "common/error.hh"

namespace vp {

void
PendingCounter::add(std::int64_t n)
{
    VP_ASSERT(n >= 0, "negative add " << n);
    value_ += n;
    if (n > 0)
        started_ = true;
}

void
PendingCounter::sub(std::int64_t n)
{
    VP_ASSERT(n >= 0, "negative sub " << n);
    if (groupMode_) {
        // Delta mode: a pinned consumer may retire items added on
        // another device's counter, so a negative local value is
        // fine and drain detection happens at window barriers.
        value_ -= n;
        return;
    }
    VP_ASSERT(value_ >= n, "pending counter underflow: " << value_
              << " - " << n);
    value_ -= n;
    if (done()) {
        auto cbs = std::move(onDrain_);
        onDrain_.clear();
        for (auto& fn : cbs)
            fn();
    }
}

void
PendingCounter::notifyOnDrain(std::function<void()> fn)
{
    if (done()) {
        fn();
        return;
    }
    onDrain_.push_back(std::move(fn));
}

void
PendingCounter::reset()
{
    value_ = 0;
    started_ = false;
    onDrain_.clear();
}

void
PendingCounter::enableGroupMode(
    std::function<std::int64_t()> groupValue)
{
    groupMode_ = true;
    groupValue_ = std::move(groupValue);
}

} // namespace vp

#include "queueing/pending_counter.hh"

#include "common/error.hh"

namespace vp {

void
PendingCounter::add(std::int64_t n)
{
    VP_ASSERT(n >= 0, "negative add " << n);
    value_ += n;
    if (n > 0)
        started_ = true;
}

void
PendingCounter::sub(std::int64_t n)
{
    VP_ASSERT(n >= 0, "negative sub " << n);
    VP_ASSERT(value_ >= n, "pending counter underflow: " << value_
              << " - " << n);
    value_ -= n;
    if (done()) {
        auto cbs = std::move(onDrain_);
        onDrain_.clear();
        for (auto& fn : cbs)
            fn();
    }
}

void
PendingCounter::notifyOnDrain(std::function<void()> fn)
{
    if (done()) {
        fn();
        return;
    }
    onDrain_.push_back(std::move(fn));
}

void
PendingCounter::reset()
{
    value_ = 0;
    started_ = false;
    onDrain_.clear();
}

} // namespace vp

/**
 * @file
 * Remote-hop queue stub for sharded pipelines.
 *
 * When a stage is pinned to another device of the group, the local
 * runner installs a RemoteStubQueue in that stage's queue slot. A
 * push into the stub does not buffer locally: it hands the item to a
 * forward callback (wired by the group coordinator), which pays the
 * interconnect transfer cost and delivers the item into the home
 * device's real queue at the modeled arrival time.
 *
 * The stub therefore always reports size 0 — local blocks never find
 * work for remote stages, and full() is never true, so cross-device
 * hops do not participate in bounded-queue backpressure (transfers
 * in flight are bounded by the producers' batch sizes instead).
 */

#ifndef VP_QUEUEING_REMOTE_QUEUE_HH
#define VP_QUEUEING_REMOTE_QUEUE_HH

#include <functional>
#include <utility>

#include "queueing/work_queue.hh"

namespace vp {

/**
 * Forwards one pushed item toward its home device: arguments are the
 * payload bytes and a closure that pushes the item into whatever
 * queue the coordinator delivers it to.
 */
using RemoteForward =
    std::function<void(int, std::function<void(QueueBase&)>)>;

/** Queue stub whose pushes divert to another device. */
template <typename T>
class RemoteStubQueue : public WorkQueue<T>
{
  public:
    RemoteStubQueue(std::string name, RemoteForward forward)
        : WorkQueue<T>(std::move(name)), forward_(std::move(forward))
    {}

    void
    push(T v) override
    {
        forward_(this->itemBytes(),
                 [v = std::move(v)](QueueBase& dst) mutable {
                     typedQueue<T>(dst).push(std::move(v));
                 });
    }

  private:
    RemoteForward forward_;
};

} // namespace vp

#endif // VP_QUEUEING_REMOTE_QUEUE_HH

/**
 * @file
 * Remote-hop queue stub for sharded pipelines.
 *
 * When a stage is pinned to another device of the group, the local
 * runner installs a RemoteStubQueue in that stage's queue slot. A
 * push into the stub does not buffer locally: it hands the item to a
 * forward callback (wired by the group coordinator), which pays the
 * interconnect transfer cost and delivers the item into the home
 * device's real queue at the modeled arrival time.
 *
 * The stub always reports size 0 — local blocks never find work for
 * remote stages. Bounded-queue backpressure, however, must survive
 * the hop: full() consults a coordinator-wired credit probe that
 * charges the home queue's depth *plus* every in-flight transfer
 * against the home capacity, so a producer on the wrong device
 * commit-waits exactly like a local producer would. Without the
 * probe (unbounded stages, or single-device runs) full() stays
 * false, as before.
 */

#ifndef VP_QUEUEING_REMOTE_QUEUE_HH
#define VP_QUEUEING_REMOTE_QUEUE_HH

#include <functional>
#include <utility>

#include "queueing/work_queue.hh"

namespace vp {

/**
 * Forwards one pushed item toward its home device: arguments are the
 * payload bytes, the item's provenance id (0 when untracked) and a
 * closure that pushes the item into whatever queue the coordinator
 * delivers it to.
 */
using RemoteForward = std::function<void(
    int, std::uint64_t, std::function<void(QueueBase&)>)>;

/**
 * Answers "is the home queue of this stage out of credit?" — true
 * when home depth + in-flight transfers >= home capacity.
 */
using RemoteFullProbe = std::function<bool()>;

/** Queue stub whose pushes divert to another device. */
template <typename T>
class RemoteStubQueue : public WorkQueue<T>
{
  public:
    RemoteStubQueue(std::string name, RemoteForward forward)
        : WorkQueue<T>(std::move(name)), forward_(std::move(forward))
    {}

    /** Wire the credit probe (bounded home stages only). */
    void
    setFullProbe(RemoteFullProbe probe)
    {
        fullProbe_ = std::move(probe);
    }

    /**
     * Credit-scheme backpressure: the stub itself never buffers, but
     * a bounded home queue's capacity counts items already there and
     * items still riding the interconnect. After a failover takeover
     * the stage is local and ordinary capacity rules apply.
     */
    bool
    full() const override
    {
        if (local_)
            return QueueBase::full();
        return fullProbe_ && fullProbe_();
    }

    void
    push(T v) override
    {
        if (local_) {
            WorkQueue<T>::push(std::move(v));
            return;
        }
        // The delivery closure re-stamps the id so the landing
        // queue's enqueue bookkeeping sees the same item, wherever
        // failover ends up delivering it.
        std::uint64_t id = this->takeStampedId();
        forward_(this->itemBytes(), id,
                 [id, v = std::move(v)](QueueBase& dst) mutable {
                     if (id)
                         dst.stampNextPushId(id);
                     typedQueue<T>(dst).push(std::move(v));
                 });
    }

    /**
     * Failover re-homing: this stage's home device died and the
     * coordinator elected this device the new home. From now on the
     * stub buffers like an ordinary local queue; the coordinator
     * re-points remote producers at this device.
     */
    void takeOverLocal() override { local_ = true; }

  private:
    RemoteForward forward_;
    RemoteFullProbe fullProbe_;
    bool local_ = false;
};

} // namespace vp

#endif // VP_QUEUEING_REMOTE_QUEUE_HH

#include "tuner/search_space.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "gpu/occupancy.hh"

namespace vp {

bool
rtcInlinable(const Pipeline& pipe, const std::vector<int>& stages)
{
    if (stages.size() < 2)
        return false;
    StageMask in_group = 0;
    for (int s : stages)
        in_group |= StageMask(1) << s;
    // No external producers into non-entry stages.
    for (std::size_t i = 1; i < stages.size(); ++i) {
        if (pipe.producersOf(stages[i]) & ~in_group)
            return false;
    }
    // No cycles through group members (including self loops).
    for (int s : stages) {
        if (pipe.ancestorsOf(s) & (StageMask(1) << s))
            return false;
    }
    return true;
}

std::vector<std::vector<std::vector<int>>>
contiguousPartitions(int n)
{
    VP_REQUIRE(n >= 1 && n <= 20, "partition count out of range");
    std::vector<std::vector<std::vector<int>>> out;
    // Each of the n-1 gaps is either a cut or not.
    for (unsigned cuts = 0; cuts < (1u << (n - 1)); ++cuts) {
        std::vector<std::vector<int>> part;
        std::vector<int> cur = {0};
        for (int i = 1; i < n; ++i) {
            if (cuts & (1u << (i - 1))) {
                part.push_back(cur);
                cur.clear();
            }
            cur.push_back(i);
        }
        part.push_back(cur);
        out.push_back(std::move(part));
    }
    return out;
}

std::vector<std::vector<int>>
smAllocations(int numSms, const std::vector<double>& weights,
              int maxCandidates)
{
    int g = static_cast<int>(weights.size());
    VP_REQUIRE(g >= 1, "no groups");
    std::vector<std::vector<int>> out;
    if (g == 1) {
        out.push_back({numSms});
        return out;
    }
    VP_REQUIRE(numSms >= g, "fewer SMs than groups");

    std::set<std::vector<int>> seen;
    auto add = [&](std::vector<int> alloc) {
        if (static_cast<int>(out.size()) >= maxCandidates)
            return;
        for (int v : alloc)
            if (v < 1)
                return;
        if (std::accumulate(alloc.begin(), alloc.end(), 0) != numSms)
            return;
        if (seen.insert(alloc).second)
            out.push_back(std::move(alloc));
    };

    // Work-proportional apportionment (largest remainder, floor 1).
    double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    std::vector<int> prop(g, 1);
    if (total > 0.0) {
        int left = numSms - g;
        std::vector<std::pair<double, int>> rema;
        for (int i = 0; i < g; ++i) {
            double exact = weights[i] / total * (numSms - g);
            int whole = static_cast<int>(exact);
            prop[i] += whole;
            left -= whole;
            rema.emplace_back(exact - whole, i);
        }
        std::sort(rema.rbegin(), rema.rend());
        for (int i = 0; i < left; ++i)
            prop[rema[i % g].second] += 1;
    } else {
        for (int i = 0; i < numSms - g; ++i)
            prop[i % g] += 1;
    }
    add(prop);

    // Uniform split.
    std::vector<int> uni(g, numSms / g);
    for (int i = 0; i < numSms % g; ++i)
        uni[i] += 1;
    add(uni);

    // Single-SM shifts from the proportional allocation.
    for (int from = 0; from < g; ++from) {
        for (int to = 0; to < g; ++to) {
            if (from == to)
                continue;
            std::vector<int> alt = prop;
            alt[from] -= 1;
            alt[to] += 1;
            add(std::move(alt));
        }
    }
    return out;
}

namespace {

/** SM index ranges for an allocation (contiguous assignment). */
std::vector<std::vector<int>>
allocationToSmSets(const std::vector<int>& alloc)
{
    std::vector<std::vector<int>> sets;
    int next = 0;
    for (int count : alloc) {
        std::vector<int> sms;
        for (int i = 0; i < count; ++i)
            sms.push_back(next++);
        sets.push_back(std::move(sms));
    }
    return sets;
}

/**
 * Candidate per-SM block mappings for a fine group: the shrunken
 * occupancy-max default plus systematic reductions of each stage.
 */
std::vector<std::map<int, int>>
blockMappings(const Pipeline& pipe, const DeviceConfig& dev,
              const std::vector<int>& stages,
              const ProfileResult& profile, int threadsPerBlock,
              int maxCandidates)
{
    auto block_threads = [&](int s) {
        int bt = pipe.stage(s).blockThreads;
        return bt > 0 ? bt : threadsPerBlock;
    };
    auto fits = [&](const std::map<int, int>& want) {
        long regs = 0, threads = 0, blocks = 0, smem = 0;
        for (int s : stages) {
            int b = want.at(s);
            const ResourceUsage& r = pipe.stage(s).resources;
            regs += long(b) * r.regsPerThread * block_threads(s);
            smem += long(b) * r.smemPerBlock;
            threads += long(b) * block_threads(s);
            blocks += b;
        }
        return regs <= dev.regsPerSm && threads <= dev.maxThreadsPerSm
            && blocks <= dev.maxBlocksPerSm && smem <= dev.smemPerSm;
    };

    // Start at per-stage occupancy maxima (pruning rule 1), shrink
    // the cheapest-to-shrink stage (least profiled work per block)
    // until the combination fits.
    std::map<int, int> base;
    for (int s : stages) {
        int cap = std::max(1, maxBlocksPerSm(dev,
                                             pipe.stage(s).resources,
                                             block_threads(s))
                                  .blocksPerSm);
        base[s] = cap;
    }
    while (!fits(base)) {
        int victim = -1;
        double least = 0.0;
        for (int s : stages) {
            if (base[s] <= 1)
                continue;
            double work = profile.stages[s].totalWork
                / std::max(1, base[s]);
            if (victim < 0 || work < least) {
                victim = s;
                least = work;
            }
        }
        if (victim < 0)
            return {}; // cannot co-locate these stages at all
        base[victim] -= 1;
    }

    std::vector<std::map<int, int>> out = {base};
    std::set<std::map<int, int>> seen = {base};
    // Reductions: each stage down to 1 block in halving steps.
    for (int s : stages) {
        std::map<int, int> alt = base;
        while (alt[s] > 1
               && static_cast<int>(out.size()) < maxCandidates) {
            alt[s] = alt[s] / 2;
            if (alt[s] < 1)
                alt[s] = 1;
            if (fits(alt) && seen.insert(alt).second)
                out.push_back(alt);
            if (alt[s] == 1)
                break;
        }
    }
    return out;
}

} // namespace

std::vector<PipelineConfig>
enumerateConfigs(const Pipeline& pipe, const DeviceConfig& dev,
                 const ProfileResult& profile,
                 const SearchOptions& opts)
{
    std::vector<PipelineConfig> out;
    auto push = [&](PipelineConfig cfg) {
        if (static_cast<int>(out.size()) >= opts.maxConfigs)
            return;
        try {
            cfg.validate(pipe, dev);
        } catch (const FatalError&) {
            return;
        }
        out.push_back(std::move(cfg));
    };

    if (opts.includeCanonical) {
        // Canonical builders can legitimately fail (e.g., a pure
        // fine pipeline whose stages cannot co-reside on one SM).
        auto try_push = [&](auto&& make) {
            try {
                push(make());
            } catch (const FatalError&) {
            }
        };
        try_push([&] { return makeMegakernelConfig(pipe); });
        if (!pipe.hasCycle())
            try_push([&] { return makeRtcConfig(pipe); });
        if (dev.numSms >= pipe.stageCount())
            try_push([&] { return makeCoarseConfig(pipe, dev); });
        try_push([&] { return makeFineConfig(pipe, dev); });
    }

    for (const auto& partition : contiguousPartitions(
             pipe.stageCount())) {
        int g = static_cast<int>(partition.size());
        if (g > dev.numSms)
            continue;

        // Model choices per group.
        std::vector<std::vector<ExecModel>> choices;
        for (const auto& grp : partition) {
            std::vector<ExecModel> c = {ExecModel::Megakernel};
            if (grp.size() > 1) {
                c.push_back(ExecModel::FinePipeline);
                if (rtcInlinable(pipe, grp))
                    c.push_back(ExecModel::RTC);
            }
            choices.push_back(std::move(c));
        }

        // SM allocations weighted by profiled group work.
        std::vector<double> weights;
        for (const auto& grp : partition)
            weights.push_back(std::max(1.0, profile.workOf(grp)));
        std::vector<std::vector<int>> allocs;
        if (g == 1) {
            allocs.push_back({}); // all SMs, no binding
        } else {
            for (const auto& a :
                 smAllocations(dev.numSms, weights,
                               opts.smCandidates)) {
                allocs.push_back(a);
            }
        }

        // Cartesian product over model choices.
        std::vector<int> pick(g, 0);
        for (;;) {
            for (const auto& alloc : allocs) {
                std::vector<std::vector<int>> sm_sets;
                if (!alloc.empty())
                    sm_sets = allocationToSmSets(alloc);

                // Expand fine groups over their block mappings.
                std::vector<PipelineConfig> partial(1);
                for (int i = 0; i < g; ++i) {
                    ExecModel m = choices[i][pick[i]];
                    StageGroup base_grp;
                    base_grp.stages = partition[i];
                    base_grp.model = m;
                    if (!sm_sets.empty())
                        base_grp.sms = sm_sets[i];
                    std::vector<PipelineConfig> next;
                    if (m == ExecModel::FinePipeline) {
                        auto maps = blockMappings(
                            pipe, dev, partition[i], profile, 256,
                            opts.blockCandidates);
                        for (const auto& bm : maps) {
                            for (PipelineConfig c : partial) {
                                StageGroup grp = base_grp;
                                grp.blocksPerSm = bm;
                                c.groups.push_back(std::move(grp));
                                next.push_back(std::move(c));
                            }
                        }
                    } else {
                        for (PipelineConfig c : partial) {
                            c.groups.push_back(base_grp);
                            next.push_back(std::move(c));
                        }
                    }
                    partial = std::move(next);
                    if (partial.empty())
                        break;
                }
                for (PipelineConfig& c : partial)
                    push(std::move(c));
                if (static_cast<int>(out.size()) >= opts.maxConfigs)
                    return out;
            }
            // Advance the model-choice odometer.
            int i = 0;
            while (i < g) {
                if (++pick[i] < static_cast<int>(choices[i].size()))
                    break;
                pick[i] = 0;
                ++i;
            }
            if (i == g)
                break;
        }
    }
    return out;
}

} // namespace vp

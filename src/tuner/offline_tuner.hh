/**
 * @file
 * The offline auto-tuner (Fig. 10): evaluates candidate
 * configurations with timeout-execute, keeping the fastest. The
 * online half (idle-SM refill) lives in the runtime and is switched
 * on by PipelineConfig::onlineAdaptation.
 */

#ifndef VP_TUNER_OFFLINE_TUNER_HH
#define VP_TUNER_OFFLINE_TUNER_HH

#include <string>
#include <vector>

#include "core/engine.hh"
#include "tuner/search_space.hh"

namespace vp {

/** Options of one autotuning session. */
struct TunerOptions
{
    SearchOptions search;
    /**
     * A candidate is abandoned once it exceeds best-so-far times
     * this factor (the paper's timeout-execute with a small margin).
     */
    double timeoutFactor = 1.02;
    /** Enable online adaptation in the returned configuration. */
    bool onlineAdaptation = false;
};

/** Outcome of one autotuning session. */
struct TunerResult
{
    PipelineConfig best;
    RunResult bestRun;
    int evaluated = 0;
    int timedOut = 0;
    /** (config synopsis, cycles) of every finished candidate. */
    std::vector<std::pair<std::string, double>> finished;
};

/**
 * Autotune @p driver on @p engine: profile, enumerate candidates,
 * timeout-execute each, return the fastest configuration.
 */
TunerResult autotune(Engine& engine, AppDriver& driver,
                     const TunerOptions& opts = {});

} // namespace vp

#endif // VP_TUNER_OFFLINE_TUNER_HH

/**
 * @file
 * The offline auto-tuner (Fig. 10): evaluates candidate
 * configurations with timeout-execute, keeping the fastest. The
 * online half (idle-SM refill) lives in the runtime and is switched
 * on by PipelineConfig::onlineAdaptation.
 */

#ifndef VP_TUNER_OFFLINE_TUNER_HH
#define VP_TUNER_OFFLINE_TUNER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "tuner/search_space.hh"

namespace vp {

/** Options of one autotuning session. */
struct TunerOptions
{
    SearchOptions search;
    /**
     * A candidate is abandoned once it exceeds best-so-far times
     * this factor (the paper's timeout-execute with a small margin).
     */
    double timeoutFactor = 1.02;
    /** Enable online adaptation in the returned configuration. */
    bool onlineAdaptation = false;
    /**
     * When set (and enabled), the adaptive load-balance controller
     * joins the search space: every candidate with an adjustable
     * partition (adaptiveApplicable) is evaluated both without and
     * with the controller armed, and TunerResult::bestAdaptive
     * reports which variant won. The tuned candidate's per-stage
     * block budgets seed the controller's initial partition.
     */
    std::optional<AdaptiveConfig> adaptive;
    /**
     * Worker threads for autotuneParallel (<= 0 means one per
     * hardware thread). autotune() ignores this.
     */
    int threads = 1;
    /**
     * Host threads for each sharded candidate run when the engine
     * holds a device group (Engine::setHostThreads). 0 keeps the
     * engine's current setting. The winning configuration and its
     * RunResult are identical to a serial sweep: eligible parallel
     * runs reproduce the serial group loop's results, and ineligible
     * ones fall back to it. autotuneParallel's workers are
     * single-device engines, so this only affects the group sweep of
     * autotune().
     */
    int hostThreads = 0;
};

/** Outcome of one autotuning session. */
struct TunerResult
{
    PipelineConfig best;
    RunResult bestRun;
    int evaluated = 0;
    int timedOut = 0;
    /** (config synopsis, cycles) of every finished candidate. */
    std::vector<std::pair<std::string, double>> finished;
    /**
     * Winning shard plan when the engine holds a device group: the
     * tuner then sweeps config x shard-plan (replicate, and — for
     * multi-group configs — round-robin pinning). `bestSharded`
     * distinguishes the winner (a sharded run of `bestPlan`) from a
     * plain single-device run.
     */
    ShardPlan bestPlan;
    bool bestSharded = false;
    /**
     * True when the winning run had the adaptive controller armed
     * (TunerOptions::adaptive): the caller should pair `best` with
     * Engine::setAdaptive to reproduce it.
     */
    bool bestAdaptive = false;
};

/**
 * Autotune @p driver on @p engine: profile, enumerate candidates,
 * timeout-execute each, return the fastest configuration.
 */
TunerResult autotune(Engine& engine, AppDriver& driver,
                     const TunerOptions& opts = {});

/** Creates one private AppDriver instance per tuner worker. */
using DriverFactory = std::function<std::unique_ptr<AppDriver>()>;

/**
 * autotune() with the candidate sweep spread over
 * TunerOptions::threads host threads. Each worker owns a private
 * Engine and AppDriver (from @p makeDriver), so candidate runs never
 * share mutable state; the threads share one atomic best-so-far
 * cycle count that feeds every worker's timeout-execute cutoff.
 *
 * The chosen configuration and its RunResult are bit-identical to
 * the serial sweep for any thread count: per-candidate runs are
 * deterministic, the best candidate can never time out under a
 * monotonically tightening cutoff (timeoutFactor >= 1), and the
 * arg-min reduction runs serially in candidate order after the
 * sweep. Only the timedOut/finished bookkeeping may differ — a
 * looser interleaving can let more candidates finish than the
 * serial sweep would.
 */
TunerResult autotuneParallel(const DeviceConfig& deviceCfg,
                             const DriverFactory& makeDriver,
                             const TunerOptions& opts = {});

} // namespace vp

#endif // VP_TUNER_OFFLINE_TUNER_HH

#include "tuner/profiler.hh"

#include "gpu/occupancy.hh"

namespace vp {

double
ProfileResult::workOf(const std::vector<int>& which) const
{
    double total = 0.0;
    for (int s : which) {
        VP_REQUIRE(s >= 0 && s < static_cast<int>(stages.size()),
                   "workOf: bad stage " << s);
        total += stages[s].totalWork;
    }
    return total;
}

ProfileResult
profileApp(Engine& engine, AppDriver& driver)
{
    Pipeline& pipe = driver.pipeline();
    RunResult run = engine.run(driver,
                               makeMegakernelConfig(pipe));

    ProfileResult out;
    out.profileCycles = run.cycles;
    for (int s = 0; s < pipe.stageCount(); ++s) {
        StageProfile p;
        p.name = pipe.stage(s).name;
        int bt = pipe.stage(s).blockThreads;
        p.maxBlocksPerSm = maxBlocksPerSm(
            engine.deviceConfig(), pipe.stage(s).resources,
            bt > 0 ? bt : 256).blocksPerSm;
        p.items = run.stages[s].items;
        p.totalWork = run.stages[s].warpInsts;
        p.meanBatchWork = run.stages[s].batches > 0
            ? run.stages[s].warpInsts / run.stages[s].batches
            : 0.0;
        out.stages.push_back(std::move(p));
    }
    return out;
}

} // namespace vp

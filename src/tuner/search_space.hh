/**
 * @file
 * Enumeration of the offline tuner's configuration space (Fig. 10):
 * contiguous stage groupings x per-group models x SM mappings x block
 * mappings, with the paper's pruning rules (per-stage occupancy
 * bounds; identical block counts on every SM of a group) plus a
 * configurable cap on SM-mapping candidates.
 */

#ifndef VP_TUNER_SEARCH_SPACE_HH
#define VP_TUNER_SEARCH_SPACE_HH

#include <vector>

#include "core/model_config.hh"
#include "tuner/profiler.hh"

namespace vp {

/** Knobs bounding the offline search. */
struct SearchOptions
{
    /** SM-mapping candidates generated per grouping. */
    int smCandidates = 8;
    /** Block-mapping candidates generated per fine group. */
    int blockCandidates = 12;
    /** Hard cap on total configurations. */
    int maxConfigs = 4000;
    /** Include single-group whole-pipeline configurations. */
    bool includeCanonical = true;
};

/** True when @p stages can form an RTC inline-chain group. */
bool rtcInlinable(const Pipeline& pipe, const std::vector<int>& stages);

/**
 * All contiguous partitions of the stage list [0, n).
 * Each partition is a list of groups; each group a list of stages.
 */
std::vector<std::vector<std::vector<int>>>
contiguousPartitions(int n);

/**
 * Candidate SM allocations of @p numSms SMs over @p weights.size()
 * groups (each >= 1 SM): work-proportional, uniform, and
 * single-SM-shift perturbations, up to @p maxCandidates.
 */
std::vector<std::vector<int>>
smAllocations(int numSms, const std::vector<double>& weights,
              int maxCandidates);

/**
 * Generate the candidate configurations for one pipeline on one
 * device, pruned per the paper's rules and @p opts.
 */
std::vector<PipelineConfig>
enumerateConfigs(const Pipeline& pipe, const DeviceConfig& dev,
                 const ProfileResult& profile,
                 const SearchOptions& opts = {});

} // namespace vp

#endif // VP_TUNER_SEARCH_SPACE_HH

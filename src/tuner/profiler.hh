/**
 * @file
 * The auto-tuner's profiling component (sec 7): collects, per stage,
 * the maximum number of blocks launchable on one SM (from the
 * occupancy calculator) and the workload weight (from one profiling
 * run), which seed the offline search.
 */

#ifndef VP_TUNER_PROFILER_HH
#define VP_TUNER_PROFILER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hh"

namespace vp {

/** Per-stage profile used by the offline tuner. */
struct StageProfile
{
    std::string name;
    /** Occupancy bound for this stage as its own kernel. */
    int maxBlocksPerSm = 1;
    /** Data items the profiling run processed in this stage. */
    std::uint64_t items = 0;
    /** Total warp instructions the stage retired while profiled. */
    double totalWork = 0.0;
    /** Mean warp instructions per batch. */
    double meanBatchWork = 0.0;
};

/** Result of profiling one application on one device. */
struct ProfileResult
{
    std::vector<StageProfile> stages;
    /** Virtual cycles of the profiling (Megakernel) run. */
    double profileCycles = 0.0;

    /** Workload weight of a stage set (for SM apportionment). */
    double workOf(const std::vector<int>& stages) const;
};

/**
 * Profile @p driver on @p engine's device with one Megakernel run
 * (any model that touches every stage works; Megakernel needs no
 * structure assumptions).
 */
ProfileResult profileApp(Engine& engine, AppDriver& driver);

} // namespace vp

#endif // VP_TUNER_PROFILER_HH

#include "tuner/offline_tuner.hh"

#include <limits>

#include "common/logging.hh"

namespace vp {

TunerResult
autotune(Engine& engine, AppDriver& driver, const TunerOptions& opts)
{
    Pipeline& pipe = driver.pipeline();
    ProfileResult profile = profileApp(engine, driver);

    std::vector<PipelineConfig> candidates = enumerateConfigs(
        pipe, engine.deviceConfig(), profile, opts.search);
    VP_REQUIRE(!candidates.empty(), "no candidate configurations");

    TunerResult result;
    double best = std::numeric_limits<double>::infinity();
    bool have_best = false;

    for (PipelineConfig& cfg : candidates) {
        cfg.onlineAdaptation = opts.onlineAdaptation;
        double limit = have_best
            ? best * opts.timeoutFactor
            : std::numeric_limits<double>::infinity();
        ++result.evaluated;
        auto run = engine.runTimed(driver, cfg, limit);
        if (!run) {
            ++result.timedOut;
            continue;
        }
        result.finished.emplace_back(cfg.describe(pipe), run->cycles);
        if (!have_best || run->cycles < best) {
            best = run->cycles;
            have_best = true;
            result.best = cfg;
            result.bestRun = *run;
            VP_DEBUG("tuner: new best " << run->cycles << " cycles: "
                     << cfg.describe(pipe));
        }
    }
    VP_REQUIRE(have_best, "every candidate configuration timed out");
    return result;
}

} // namespace vp

#include "tuner/offline_tuner.hh"

#include <atomic>
#include <limits>
#include <mutex>
#include <optional>
#include <thread>

#include "common/logging.hh"

namespace vp {

TunerResult
autotune(Engine& engine, AppDriver& driver, const TunerOptions& opts)
{
    Pipeline& pipe = driver.pipeline();
    ProfileResult profile = profileApp(engine, driver);

    std::vector<PipelineConfig> candidates = enumerateConfigs(
        pipe, engine.deviceConfig(), profile, opts.search);
    VP_REQUIRE(!candidates.empty(), "no candidate configurations");

    TunerResult result;
    double best = std::numeric_limits<double>::infinity();
    bool have_best = false;
    int nDevices = engine.deviceCount();
    int priorHostThreads = engine.hostThreads();
    if (opts.hostThreads > 0 && nDevices > 1)
        engine.setHostThreads(opts.hostThreads);

    bool sweepAdaptive = opts.adaptive && opts.adaptive->enabled;

    auto consider = [&](const PipelineConfig& cfg,
                        const ShardPlan* plan, bool adaptive) {
        double limit = have_best
            ? best * opts.timeoutFactor
            : std::numeric_limits<double>::infinity();
        ++result.evaluated;
        if (adaptive)
            engine.setAdaptive(*opts.adaptive);
        auto run = plan
            ? engine.runShardedTimed(driver, cfg, *plan, limit)
            : engine.runTimed(driver, cfg, limit);
        if (adaptive)
            engine.clearAdaptive();
        if (!run) {
            ++result.timedOut;
            return;
        }
        std::string synopsis = cfg.describe(pipe);
        if (plan)
            synopsis += " shard=" + plan->describe();
        if (adaptive)
            synopsis += " +adaptive";
        result.finished.emplace_back(synopsis, run->cycles);
        if (!have_best || run->cycles < best) {
            best = run->cycles;
            have_best = true;
            result.best = cfg;
            result.bestRun = *run;
            result.bestSharded = plan != nullptr;
            result.bestPlan = plan ? *plan : ShardPlan{};
            result.bestAdaptive = adaptive;
            VP_DEBUG("tuner: new best " << run->cycles << " cycles: "
                     << synopsis);
        }
    };

    for (PipelineConfig& cfg : candidates) {
        cfg.onlineAdaptation = opts.onlineAdaptation;
        bool adaptable = sweepAdaptive && adaptiveApplicable(cfg);
        if (nDevices > 1 && cfg.top == PipelineConfig::Top::Groups) {
            // Multi-device engine: the shard plan is one more tuning
            // dimension of each Groups candidate.
            for (const ShardPlan& plan :
                 defaultShardPlans(cfg, pipe, nDevices)) {
                consider(cfg, &plan, false);
                if (adaptable)
                    consider(cfg, &plan, true);
            }
        } else {
            consider(cfg, nullptr, false);
            if (adaptable)
                consider(cfg, nullptr, true);
        }
    }
    engine.setHostThreads(priorHostThreads);
    VP_REQUIRE(have_best, "every candidate configuration timed out");
    return result;
}

TunerResult
autotuneParallel(const DeviceConfig& deviceCfg,
                 const DriverFactory& makeDriver,
                 const TunerOptions& opts)
{
    VP_REQUIRE(makeDriver != nullptr,
               "autotuneParallel needs a driver factory");
    VP_REQUIRE(opts.timeoutFactor >= 1.0,
               "timeoutFactor < 1 could abandon the best candidate");

    int threads = opts.threads;
    if (threads <= 0) {
        threads = static_cast<int>(
            std::thread::hardware_concurrency());
        if (threads <= 0)
            threads = 1;
    }

    // Profile and enumerate once, on the calling thread.
    Engine engine(deviceCfg);
    std::unique_ptr<AppDriver> driver0 = makeDriver();
    VP_REQUIRE(driver0 != nullptr, "driver factory returned null");
    Pipeline& pipe = driver0->pipeline();
    ProfileResult profile = profileApp(engine, *driver0);

    std::vector<PipelineConfig> configs = enumerateConfigs(
        pipe, deviceCfg, profile, opts.search);
    VP_REQUIRE(!configs.empty(), "no candidate configurations");
    for (PipelineConfig& cfg : configs)
        cfg.onlineAdaptation = opts.onlineAdaptation;

    // One job per (config, controller) variant: with the adaptive
    // sweep armed, applicable configs are tried both ways, exactly
    // like the serial sweep.
    bool sweepAdaptive = opts.adaptive && opts.adaptive->enabled;
    std::vector<std::pair<PipelineConfig, bool>> candidates;
    for (const PipelineConfig& cfg : configs) {
        candidates.emplace_back(cfg, false);
        if (sweepAdaptive && adaptiveApplicable(cfg))
            candidates.emplace_back(cfg, true);
    }
    if (threads > static_cast<int>(candidates.size()))
        threads = static_cast<int>(candidates.size());

    // Each slot is written by exactly one worker (candidates are
    // claimed through nextIdx), so the vector needs no lock.
    std::vector<std::optional<RunResult>> runs(candidates.size());
    std::atomic<std::size_t> nextIdx{0};
    // Tightest completed-run cycle count seen so far; only ever
    // decreases, and is always >= the true minimum, so the true-best
    // candidate always finishes under limit = bestSoFar * factor.
    std::atomic<double> bestSoFar{
        std::numeric_limits<double>::infinity()};
    std::mutex errMutex;
    std::exception_ptr firstError;
    std::atomic<bool> failed{false};

    auto worker = [&](AppDriver& driver) {
        Engine eng(deviceCfg);
        for (;;) {
            std::size_t i =
                nextIdx.fetch_add(1, std::memory_order_relaxed);
            if (i >= candidates.size() || failed.load())
                return;
            double limit =
                bestSoFar.load(std::memory_order_relaxed)
                * opts.timeoutFactor;
            try {
                if (candidates[i].second)
                    eng.setAdaptive(*opts.adaptive);
                else
                    eng.clearAdaptive();
                auto run =
                    eng.runTimed(driver, candidates[i].first, limit);
                if (!run)
                    continue;
                double cycles = run->cycles;
                double cur =
                    bestSoFar.load(std::memory_order_relaxed);
                while (cycles < cur
                       && !bestSoFar.compare_exchange_weak(
                              cur, cycles,
                              std::memory_order_relaxed)) {
                }
                runs[i] = std::move(run);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errMutex);
                if (!firstError)
                    firstError = std::current_exception();
                failed.store(true);
                return;
            }
        }
    };

    if (threads <= 1) {
        worker(*driver0);
    } else {
        std::vector<std::unique_ptr<AppDriver>> extraDrivers;
        for (int t = 1; t < threads; ++t) {
            extraDrivers.push_back(makeDriver());
            VP_REQUIRE(extraDrivers.back() != nullptr,
                       "driver factory returned null");
        }
        std::vector<std::thread> pool;
        for (int t = 1; t < threads; ++t)
            pool.emplace_back(worker, std::ref(*extraDrivers[t - 1]));
        worker(*driver0);
        for (std::thread& th : pool)
            th.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    // Serial reduction in candidate order: deterministic tie-breaking
    // (first candidate with the minimal cycle count wins), identical
    // to the serial sweep's arg-min.
    TunerResult result;
    result.evaluated = static_cast<int>(candidates.size());
    double best = std::numeric_limits<double>::infinity();
    bool have_best = false;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (!runs[i]) {
            ++result.timedOut;
            continue;
        }
        std::string synopsis = candidates[i].first.describe(pipe);
        if (candidates[i].second)
            synopsis += " +adaptive";
        result.finished.emplace_back(std::move(synopsis),
                                     runs[i]->cycles);
        if (!have_best || runs[i]->cycles < best) {
            best = runs[i]->cycles;
            have_best = true;
            result.best = candidates[i].first;
            result.bestRun = *runs[i];
            result.bestAdaptive = candidates[i].second;
        }
    }
    VP_REQUIRE(have_best, "every candidate configuration timed out");
    return result;
}

} // namespace vp

#include "core/adaptive.hh"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/error.hh"

namespace vp {

void
AdaptiveConfig::validate() const
{
    if (!enabled)
        return;
    VP_CHECK(epochCycles > 0.0, ErrorCode::Config,
             "adaptive: epochCycles must be positive (got "
             << epochCycles << ")");
    VP_CHECK(hysteresis >= 0.0, ErrorCode::Config,
             "adaptive: hysteresis must be non-negative (got "
             << hysteresis << ")");
    VP_CHECK(minDwellEpochs >= 1, ErrorCode::Config,
             "adaptive: minDwellEpochs must be >= 1 (got "
             << minDwellEpochs << ")");
    VP_CHECK(ewmaAlpha > 0.0 && ewmaAlpha <= 1.0, ErrorCode::Config,
             "adaptive: ewmaAlpha must be in (0, 1] (got "
             << ewmaAlpha << ")");
    VP_CHECK(donorIdleFraction >= 0.0 && donorIdleFraction <= 1.0,
             ErrorCode::Config,
             "adaptive: donorIdleFraction must be in [0, 1] (got "
             << donorIdleFraction << ")");
}

std::string
AdaptiveConfig::describe() const
{
    if (!enabled)
        return "adaptive=off";
    std::ostringstream os;
    os << "adaptive(epoch=" << epochCycles << " hyst=" << hysteresis
       << " dwell=" << minDwellEpochs << " alpha=" << ewmaAlpha
       << " idle=" << donorIdleFraction << ")";
    return os.str();
}

bool
adaptiveApplicable(const PipelineConfig& cfg)
{
    if (cfg.top != PipelineConfig::Top::Groups)
        return false;
    for (const StageGroup& grp : cfg.groups)
        if (grp.model == ExecModel::FinePipeline
            && grp.stages.size() >= 2)
            return true;
    return false;
}

AdaptiveController::AdaptiveController(const AdaptiveConfig& cfg,
                                       std::vector<int> maxBlocks)
    : cfg_(cfg), maxBlocks_(std::move(maxBlocks))
{
}

std::optional<AdaptiveMove>
AdaptiveController::step(const std::vector<AdaptiveLoad>& loads)
{
    ++epoch_;
    // Dwell: the first decision waits a full dwell as well, giving
    // the depth EWMAs time to warm up past the seeding transient.
    if (epoch_ - lastMoveEpoch_ < cfg_.minDwellEpochs)
        return std::nullopt;

    int n = static_cast<int>(loads.size());
    auto score = [&loads](int i) {
        const AdaptiveLoad& l = loads[static_cast<std::size_t>(i)];
        return l.depth / static_cast<double>(std::max(1, l.blocks));
    };
    auto cap = [this](int i) {
        return static_cast<std::size_t>(i) < maxBlocks_.size()
            ? maxBlocks_[static_cast<std::size_t>(i)]
            : 1;
    };

    // Per stage group, one donor -> receiver proposal; the most
    // imbalanced group wins. All comparisons are strict with
    // lowest-index tie-breaking, so the decision is deterministic.
    std::optional<AdaptiveMove> best;
    double bestRatio = 0.0;
    for (int i = 0; i < n; ++i) {
        const AdaptiveLoad& recv = loads[static_cast<std::size_t>(i)];
        if (recv.drained || recv.blocks >= cap(i))
            continue;
        double recvScore = score(i);
        if (recvScore <= 0.0)
            continue;
        for (int j = 0; j < n; ++j) {
            const AdaptiveLoad& donor =
                loads[static_cast<std::size_t>(j)];
            if (j == i || donor.group != recv.group
                || donor.blocks <= 1)
                continue;
            // Depth alone cannot tell a busy stage with a small
            // working set from a starving one; only stages whose
            // blocks demonstrably idled (or that are drained) may
            // donate.
            if (!donor.drained
                && donor.idleFrac < cfg_.donorIdleFraction)
                continue;
            double donorScore = score(j);
            if (recvScore <= (1.0 + cfg_.hysteresis) * donorScore)
                continue;
            double ratio = donorScore > 0.0
                ? recvScore / donorScore
                : std::numeric_limits<double>::infinity();
            if (!best || ratio > bestRatio) {
                // A drained donor's blocks have already retired, so
                // its whole surplus transfers in one decision.
                int count = donor.drained
                    ? std::min(donor.blocks - 1,
                               cap(i) - recv.blocks)
                    : 1;
                best = AdaptiveMove{j, i, count};
                bestRatio = ratio;
            }
        }
    }
    if (best) {
        lastMoveEpoch_ = epoch_;
        ++moves_;
    }
    return best;
}

} // namespace vp

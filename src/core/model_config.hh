/**
 * @file
 * Pipeline execution configuration: the object the auto-tuner
 * searches. A configuration partitions the stages into groups, picks
 * an execution model per group, binds groups to SM sets (the coarse
 * inter-group binding of the hybrid model), and assigns per-SM block
 * counts for fine-pipeline groups (Figure 7).
 */

#ifndef VP_CORE_MODEL_CONFIG_HH
#define VP_CORE_MODEL_CONFIG_HH

#include <map>
#include <string>
#include <vector>

#include "core/exec_model.hh"
#include "core/pipeline.hh"
#include "gpu/device_config.hh"

namespace vp {

/** Task-fetch order used by persistent-block schedulers. */
enum class SchedulePolicy
{
    /** Query later (deeper) stages first; bounds queue growth. */
    LaterStageFirst,
    /** Query earlier stages first. */
    EarlierStageFirst,
    /** Query the longest queue first. */
    LongestQueueFirst,
};

/** Display name of a scheduling policy. */
const char* schedulePolicyName(SchedulePolicy p);

/** One stage group of a (possibly hybrid) configuration. */
struct StageGroup
{
    /** Stage indices in this group, in pipeline order. */
    std::vector<int> stages;

    /**
     * Execution model inside the group: RTC (inline chain),
     * Megakernel (one scheduler kernel), or FinePipeline (per-stage
     * kernels with block-level SM sharing).
     */
    ExecModel model = ExecModel::Megakernel;

    /** SMs this group is bound to; empty = all SMs. */
    std::vector<int> sms;

    /**
     * Per-SM block count per stage (FinePipeline groups), or for the
     * group's single kernel under key -1 (RTC/Megakernel groups).
     * 0 / missing = occupancy maximum.
     */
    std::map<int, int> blocksPerSm;
};

/** A complete execution configuration for one pipeline. */
struct PipelineConfig
{
    /**
     * Top-level strategy. Groups covers RTC / Megakernel / coarse /
     * fine / hybrid uniformly via the groups vector; KBK variants and
     * DynamicParallelism use dedicated host-driven runners.
     */
    enum class Top { Groups, Kbk, KbkStream, DynamicParallelism };

    Top top = Top::Groups;

    /** Stage groups (top == Groups). */
    std::vector<StageGroup> groups;

    /** Block size used for all kernels (paper: 256). */
    int threadsPerBlock = 256;

    /** Task-fetch policy of persistent-block schedulers. */
    SchedulePolicy schedule = SchedulePolicy::LaterStageFirst;

    /** Enable the online tuner's idle-SM refill adaptation. */
    bool onlineAdaptation = false;

    /**
     * Use distributed per-SM work queues with work stealing instead
     * of one central queue per stage (the future-work direction of
     * the paper's sec 8.5; cf. Cederman/Tsigas and Chen et al.).
     * Groups runners only.
     */
    bool distributedQueues = false;

    /** Concurrent streams (top == KbkStream). */
    int numStreams = 4;

    /** Human-readable synopsis for logs and tuner reports. */
    std::string describe(const Pipeline& pipe) const;

    /**
     * Validate against a pipeline and device: groups partition the
     * stages, SM sets are disjoint and in range, RTC groups are
     * inlinable (linear, no external in-edges to internal stages, no
     * internal cycles), block counts are occupancy-feasible.
     * Fatal on violations.
     */
    void validate(const Pipeline& pipe, const DeviceConfig& dev) const;
};

/** @name Canonical configurations (sections 4.1-4.2) @{ */

/** All stages in one inline-chain kernel on all SMs (Fig. 3a). */
PipelineConfig makeRtcConfig(const Pipeline& pipe);

/** Host-sequenced kernel-by-kernel execution (Fig. 3b). */
PipelineConfig makeKbkConfig();

/** KBK with @p numStreams concurrent flows (Fig. 13). */
PipelineConfig makeKbkStreamConfig(int numStreams);

/** One persistent scheduler kernel for all stages (Fig. 3c). */
PipelineConfig makeMegakernelConfig(const Pipeline& pipe);

/**
 * Per-stage persistent kernels on exclusive SM partitions (Fig. 4).
 * SMs are split proportionally to @p smShare (uniform when empty).
 */
PipelineConfig makeCoarseConfig(const Pipeline& pipe,
                                const DeviceConfig& dev,
                                const std::vector<double>& smShare = {});

/** Per-stage persistent kernels sharing all SMs block-wise (Fig. 5). */
PipelineConfig makeFineConfig(const Pipeline& pipe,
                              const DeviceConfig& dev);

/** Dynamic-parallelism execution (sec 8.4). */
PipelineConfig makeDynamicParallelismConfig();

/** @} */

/**
 * Merged resource usage of a set of stages compiled into one kernel:
 * max registers/shared memory, summed code bytes.
 */
ResourceUsage mergedResources(const Pipeline& pipe,
                              const std::vector<int>& stages);

} // namespace vp

#endif // VP_CORE_MODEL_CONFIG_HH

/**
 * @file
 * Result record of one simulated pipeline execution.
 */

#ifndef VP_CORE_RUN_RESULT_HH
#define VP_CORE_RUN_RESULT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "core/recovery.hh"
#include "gpu/device.hh"
#include "gpu/host.hh"
#include "queueing/work_queue.hh"
#include "sim/interconnect.hh"

namespace vp {

struct ObsData;

/** How a run ended. */
enum class RunOutcome
{
    /** Drained all work and verified cleanly. */
    Completed,
    /** Drained, but some injected faults destroyed work (dead
     *  letters, dropped pushes); every task is still accounted for. */
    Degraded,
    /** Drained, but the application's verify() rejected the output. */
    VerifyFailed,
    /** The watchdog detected a stall (deadlock/livelock) and stopped
     *  the run with a diagnostic instead of hanging. */
    Stalled,
    /** The global drain timeout elapsed with work still pending. */
    DrainTimeout,
};

/** Human-readable name of @p o. */
inline const char*
runOutcomeName(RunOutcome o)
{
    switch (o) {
      case RunOutcome::Completed: return "completed";
      case RunOutcome::Degraded: return "degraded";
      case RunOutcome::VerifyFailed: return "verify-failed";
      case RunOutcome::Stalled: return "stalled";
      case RunOutcome::DrainTimeout: return "drain-timeout";
    }
    return "unknown";
}

/** Per-stage accounting of one run. */
struct StageRunStats
{
    std::string name;
    /** Data items processed by this stage. */
    std::uint64_t items = 0;
    /** Block-batches executed. */
    std::uint64_t batches = 0;
    /** Warp instructions attributed to this stage. */
    double warpInsts = 0.0;
    /** Summed wall duration of this stage's batch executions. */
    double execCycles = 0.0;
    /** Items of this stage scheduled for retry after a fault. */
    std::uint64_t retried = 0;
    /** Items of this stage abandoned to the dead-letter count. */
    std::uint64_t deadLettered = 0;
    /** Queue statistics of the stage's input queue. */
    QueueStats queue;
};

/** Per-device breakdown of a sharded (multi-device) run. */
struct ShardDeviceStats
{
    /** Device model name (e.g. "gtx1080"). */
    std::string deviceName;
    DeviceStats device;
    HostStats host;
    /** This device's SM issue-slot utilization [0,1]. */
    double smUtilization = 0.0;

    /** True when a scripted device fault killed this device. */
    bool failed = false;
    /** Items evacuated out of this device's queues at kill time. */
    std::uint64_t itemsEvacuated = 0;
    /** Pinned stages this device adopted from dead peers. */
    int stagesRehomedIn = 0;
};

/** Everything measured during one pipeline run. */
struct RunResult
{
    /** End-to-end virtual time, cycles. */
    double cycles = 0.0;
    /** End-to-end virtual time, milliseconds of device wall time. */
    double ms = 0.0;
    /** Configuration synopsis the run used. */
    std::string configName;
    /** Device name. */
    std::string deviceName;

    DeviceStats device;
    HostStats host;
    std::vector<StageRunStats> stages;

    /** SM issue-slot utilization averaged over SMs and time [0,1]. */
    double smUtilization = 0.0;

    /** Empty-queue polls by persistent blocks. */
    std::uint64_t polls = 0;
    /** Blocks that retreated (wrong SM / block budget exceeded). */
    std::uint64_t retreats = 0;
    /** Refill kernels launched by the online tuner. */
    std::uint64_t refills = 0;

    /** Extra counters (model-specific). */
    StatGroup extra;

    /** Per-device breakdown; empty on single-device runs. */
    std::vector<ShardDeviceStats> shardDevices;
    /** Cross-device transfer totals; zero on single-device runs. */
    InterconnectStats interconnect;

    /** Simulation events dispatched during this run (host-side
     *  engine-throughput metric, not a property of the modeled
     *  device). */
    std::uint64_t simEvents = 0;

    /** True when the run drained all work and verified cleanly. */
    bool completed = false;

    /** How the run ended (refines `completed`). */
    RunOutcome outcome = RunOutcome::Completed;
    /** Diagnostic for Stalled / DrainTimeout outcomes: stage queue
     *  depths, in-flight counts, and the resident-block map. */
    std::string failureReason;
    /** Fault-injection and recovery counters. */
    FaultRecoveryStats faults;

    /**
     * Observability bundle of the run (trace, metrics, histograms,
     * time-series), present when the engine ran with an ObsConfig;
     * null otherwise. Shared so RunResult stays copyable.
     */
    std::shared_ptr<ObsData> obs;
};

} // namespace vp

#endif // VP_CORE_RUN_RESULT_HH

/**
 * @file
 * Online adaptive load balancing: the paper's FinePipeline/Hybrid
 * block-to-stage partition (section 6's load-balance knob), moved
 * from offline search to runtime feedback control.
 *
 * The offline tuner picks an *initial* per-SM block budget per fine
 * stage; skewed or phase-changing workloads then drift away from it.
 * The AdaptiveController watches the smoothed input-queue depth of
 * every fine stage at fixed controller epochs (k * epochCycles, the
 * same zero-sim-event slicing the watchdog and sampler use) and
 * migrates one block of per-SM budget from the most over-provisioned
 * stage to the most starved one, via the runtime's existing
 * retreat/refill machinery. Hysteresis plus a minimum dwell between
 * moves keeps the controller from oscillating.
 *
 * Every decision is a pure function of the sampled simulator state
 * and the controller's own (deterministic) history, so adaptive runs
 * are bit-reproducible; a default AdaptiveConfig{} (disabled) leaves
 * the engine event-for-event identical to an unadapted run.
 */

#ifndef VP_CORE_ADAPTIVE_HH
#define VP_CORE_ADAPTIVE_HH

#include <optional>
#include <string>
#include <vector>

#include "core/model_config.hh"
#include "sim/simulator.hh"

namespace vp {

/** Online load-balance controller policy. */
struct AdaptiveConfig
{
    /** Master switch; disabled runs are identical to the seed. */
    bool enabled = false;

    /** Controller epoch length in simulated cycles. */
    Tick epochCycles = 50000.0;

    /**
     * Required load imbalance before a move: the starved stage's
     * per-block depth must exceed the donor's by this fraction.
     */
    double hysteresis = 0.25;

    /** Epochs a new partition must dwell before the next move. */
    int minDwellEpochs = 2;

    /** Smoothing of the per-queue depth EWMA the controller reads. */
    double ewmaAlpha = 0.5;

    /**
     * Idleness a donor must show before giving up a block: the
     * fraction of its blocks' time spent poll-waiting during the
     * last epoch. Queue depth alone cannot distinguish "keeping up
     * with a small working set" from "starving" — an upstream stage
     * holding the whole remaining input would otherwise raid a busy
     * downstream one. Drained stages donate regardless.
     */
    double donorIdleFraction = 0.01;

    /** Fatal on nonsensical parameters (enabled configs only). */
    void validate() const;

    /** Human-readable synopsis for logs and tuner reports. */
    std::string describe() const;
};

/**
 * True when @p cfg has a partition the controller can act on: a
 * FinePipeline group of at least two stages (one per-stage kernel
 * each, sharing the group's SMs block-wise). Other models have no
 * runtime-adjustable block-to-stage split.
 */
bool adaptiveApplicable(const PipelineConfig& cfg);

/** One adjustable target's sampled state at a controller epoch. */
struct AdaptiveLoad
{
    /** Smoothed input-queue depth (items). */
    double depth = 0.0;
    /** Current per-SM block budget. */
    int blocks = 1;
    /** Stage group the target belongs to (moves stay inside it). */
    int group = 0;
    /** True when the stage can receive no further work. */
    bool drained = false;
    /**
     * Fraction of the stage's block-time spent poll-waiting since
     * the last epoch (occupancy signal; 0 = fully busy).
     */
    double idleFrac = 0.0;
};

/** One rebalance decision: migrate per-SM block budget. */
struct AdaptiveMove
{
    int from = -1;  //!< donor target index
    int to = -1;    //!< receiver target index
    int count = 1;  //!< blocks of per-SM budget to migrate
};

/**
 * The controller law. Deliberately stateless beyond the epoch/dwell
 * counters: step() maps the current sampled loads to at most one
 * move, deterministically (ties break toward the lowest index).
 */
class AdaptiveController
{
  public:
    /**
     * @param cfg policy parameters
     * @param maxBlocks per-target occupancy cap on the per-SM budget
     */
    AdaptiveController(const AdaptiveConfig& cfg,
                       std::vector<int> maxBlocks);

    /**
     * Advance one epoch. Per target, score = depth / blocks (the
     * per-block backlog). Within each stage group, the controller
     * proposes moving budget from a donor (budget > 1) that is
     * provably over-provisioned — idleFrac at least
     * donorIdleFraction, or drained — to the highest-scored receiver
     * (budget below its occupancy cap, not drained) when the
     * receiver's score exceeds the donor's by the hysteresis margin
     * and the dwell has elapsed. Across groups, the most imbalanced
     * proposal wins. A drained donor surrenders all surplus budget
     * at once (its blocks have already retired); a busy-but-idle one
     * gives up a single block per move.
     */
    std::optional<AdaptiveMove>
    step(const std::vector<AdaptiveLoad>& loads);

    /** Epochs stepped so far. */
    int epochs() const { return epoch_; }

    /** Moves issued so far. */
    int moves() const { return moves_; }

  private:
    AdaptiveConfig cfg_;
    std::vector<int> maxBlocks_;
    int epoch_ = 0;
    int lastMoveEpoch_ = 0;
    int moves_ = 0;
};

} // namespace vp

#endif // VP_CORE_ADAPTIVE_HH

/**
 * @file
 * DpRunner: CUDA dynamic-parallelism execution (sec 8.4). Every data
 * item a stage produces triggers a device-side sub-kernel launch; the
 * per-launch overhead dominates, reproducing the paper's >10x
 * slowdown versus VersaPipe on Reyes.
 */

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "core/runtime.hh"
#include "core/stage_impl.hh"

namespace vp {

DpRunner::DpRunner(Simulator& sim, Device& dev, Host& host,
                   Pipeline& pipe, const PipelineConfig& cfg,
                   FaultContext fc)
    : RunnerBase(sim, dev, host, pipe, cfg, fc)
{
    claimed_.assign(pipe.stageCount(), 0);
    // DP has no polling workers: redelivered items need a kernel
    // spawned for them explicitly.
    recovery_.setOnRedelivered([this](int s) {
        int unclaimed =
            static_cast<int>(queues_[s]->size()) - claimed_[s];
        if (unclaimed > 0 && dev_.numOnlineSms() > 0)
            spawnKernel(s, unclaimed, false);
    });
}

void
DpRunner::onSmFailed(int sm)
{
    (void)sm;
    if (dev_.numOnlineSms() <= 0)
        return;
    // Respawn for anything queued but orphaned by the failure.
    for (int t = 0; t < pipe_.stageCount(); ++t) {
        int unclaimed =
            static_cast<int>(queues_[t]->size()) - claimed_[t];
        if (unclaimed > 0) {
            ++faultStats_.degradeRelaunches;
            spawnKernel(t, unclaimed, false);
        }
    }
}

void
DpRunner::start(AppDriver& driver)
{
    seedAll(driver, queues_);
    host_.memcpy(driver.inputBytes(), [this] {
        for (int s = 0; s < pipe_.stageCount(); ++s) {
            int n = static_cast<int>(queues_[s]->size());
            if (n > 0)
                spawnKernel(s, n, false);
        }
    });
}

void
DpRunner::spawnKernel(int s, int items, bool fromDevice)
{
    // Invariant: claimed_[t] counts queued items of stage t that
    // already have a kernel on the way.
    claimed_[s] += items;
    if (tracer_ && fromDevice)
        tracer_->instant(TraceKind::DpSpawn, 0, sim_.now(), s, items);

    StageBase& st = pipe_.stage(s);
    int cap = batchCapacity(s);
    int grid = (items + cap - 1) / cap;
    auto remaining = std::make_shared<int>(items);

    auto kernel = std::make_shared<Kernel>(
        st.name + (fromDevice ? "_dpsub" : "_dp"), st.resources,
        stageBlockThreads(s), grid,
        [this, s, cap, remaining](BlockContext& ctx) {
            if (*remaining <= 0) {
                ctx.exit();
                return;
            }
            int m = std::min(cap, *remaining);
            *remaining -= m;
            claimed_[s] -= m; // popped in the same instant below
            processBatch(ctx, queues_, s, 0, m, [this, &ctx] {
                // Claim every unassigned queued item now, then pay
                // the device-side launch cost and spawn one
                // sub-kernel per item.
                std::vector<std::pair<int, int>> to_spawn;
                int spawns = 0;
                for (int t = 0; t < pipe_.stageCount(); ++t) {
                    int unclaimed = static_cast<int>(
                        queues_[t]->size()) - claimed_[t];
                    if (unclaimed > 0) {
                        claimed_[t] += unclaimed;
                        to_spawn.emplace_back(t, unclaimed);
                        spawns += unclaimed;
                    }
                }
                if (spawns == 0) {
                    ctx.exit();
                    return;
                }
                Tick cost = spawns * dev_.config().dpLaunchCycles;
                ctx.delay(cost, [this, &ctx,
                                 to_spawn = std::move(to_spawn)] {
                    for (const auto& [t, n] : to_spawn) {
                        claimed_[t] -= n; // spawnKernel re-claims
                        for (int i = 0; i < n; ++i)
                            spawnKernel(t, 1, true);
                    }
                    ctx.exit();
                });
            });
        });
    if (instrumented()) {
        // Blocks evicted before claiming their share leave `remaining`
        // nonzero at kernel completion; release those stale claims and
        // respawn for whatever is still queued.
        kernel->notifyOnComplete([this, s, remaining] {
            if (*remaining <= 0)
                return;
            claimed_[s] -= *remaining;
            *remaining = 0;
            int unclaimed =
                static_cast<int>(queues_[s]->size()) - claimed_[s];
            if (unclaimed > 0 && dev_.numOnlineSms() > 0)
                spawnKernel(s, unclaimed, false);
        });
    }
    dev_.launch(dev_.createStream(), kernel);
}

} // namespace vp

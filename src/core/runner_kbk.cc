/**
 * @file
 * KbkRunner: the kernel-by-kernel baseline (Fig. 3b) and its
 * multi-stream variant (Fig. 13).
 *
 * The host sequences the pipeline: it scans the stages of one flow in
 * order, launches a grid kernel over the items currently queued at a
 * stage, synchronizes, performs CPU-side control (and per-item host
 * transfers for recursion control), and repeats passes until the flow
 * drains. Plain KBK processes flows (e.g., images) one after another,
 * as the original benchmarks do; KbkStream keeps several flows in
 * flight on concurrent streams.
 */

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "core/runtime.hh"
#include "core/stage_impl.hh"
#include "gpu/occupancy.hh"

namespace vp {

KbkRunner::KbkRunner(Simulator& sim, Device& dev, Host& host,
                     Pipeline& pipe, const PipelineConfig& cfg,
                     FaultContext fc)
    : RunnerBase(sim, dev, host, pipe, cfg, fc)
{
}

KbkRunner::~KbkRunner() = default;

void
KbkRunner::buildUnits()
{
    if (cfg_.top == PipelineConfig::Top::Kbk && !cfg_.groups.empty()) {
        for (const StageGroup& grp : cfg_.groups) {
            if (grp.model == ExecModel::RTC) {
                Unit u;
                u.entry = grp.stages.front();
                for (std::size_t i = 1; i < grp.stages.size(); ++i)
                    u.inlineMask |= StageMask(1) << grp.stages[i];
                u.res = mergedResources(pipe_, grp.stages);
                u.hostBytesPerItem =
                    pipe_.stage(u.entry).kbkHostBytesPerItem;
                units_.push_back(u);
            } else {
                for (int s : grp.stages) {
                    Unit u;
                    u.entry = s;
                    u.res = pipe_.stage(s).resources;
                    u.hostBytesPerItem =
                        pipe_.stage(s).kbkHostBytesPerItem;
                    units_.push_back(u);
                }
            }
        }
        return;
    }
    for (int s = 0; s < pipe_.stageCount(); ++s) {
        Unit u;
        u.entry = s;
        u.res = pipe_.stage(s).resources;
        u.hostBytesPerItem = pipe_.stage(s).kbkHostBytesPerItem;
        units_.push_back(u);
    }
}

void
KbkRunner::start(AppDriver& driver)
{
    driver_ = &driver;
    buildUnits();
    int n = driver.flowCount();
    int concurrent = cfg_.top == PipelineConfig::Top::KbkStream
        ? std::min(cfg_.numStreams, n)
        : 1;
    flows_.resize(n);
    for (int f = 0; f < n; ++f) {
        flows_[f].id = f;
        flows_[f].stream = dev_.createStream();
        flowQueues_.push_back(std::make_unique<QueueSet>());
        makeQueues(*flowQueues_.back());
        flows_[f].queues = flowQueues_.back().get();
        extraQueueSets_.push_back(flows_[f].queues);
    }
    host_.memcpy(driver.inputBytes(), [this, concurrent] {
        activeFlows_ = 0;
        nextFlowToSeed_ = 0;
        for (int i = 0; i < concurrent; ++i)
            startNextFlows();
    });
}

void
KbkRunner::startNextFlows()
{
    if (nextFlowToSeed_ >= static_cast<int>(flows_.size()))
        return;
    Flow& flow = flows_[nextFlowToSeed_++];
    flow.active = true;
    ++activeFlows_;
    if (tracer_)
        tracer_->begin(TraceKind::FlowSpan,
                       static_cast<std::int16_t>(flow.id),
                       sim_.now(), flow.id);
    seedFlow(*driver_, *flow.queues, flow.id);
    flowPass(flow);
}

void
KbkRunner::flowPass(Flow& flow)
{
    flowStage(flow, 0);
}

void
KbkRunner::flowStage(Flow& flow, int unitIdx)
{
    // Scan forward for the next unit with queued items.
    for (int i = unitIdx; i < static_cast<int>(units_.size()); ++i) {
        if (!(*flow.queues)[units_[i].entry]->empty()) {
            launchStageKernel(flow, i, [this, &flow, i] {
                flowStage(flow, i + 1);
            });
            return;
        }
    }
    // End of pass: anything left means another pass (loop/recursion).
    // Items buffered for fault redelivery count too — the host keeps
    // polling until they land back in a queue.
    bool any = false;
    for (int i = 0; i < pipe_.stageCount(); ++i) {
        any = any || !(*flow.queues)[i]->empty()
            || recovery_.buffered(i) > 0;
    }
    if (any) {
        host_.control(dev_.config().hostControlUs,
                      [this, &flow] { flowPass(flow); });
    } else {
        flowFinished(flow);
    }
}

void
KbkRunner::launchStageKernel(Flow& flow, int unitIdx,
                             std::function<void()> done)
{
    const Unit& unit = units_[unitIdx];
    int s = unit.entry;
    StageMask inline_mask = unit.inlineMask;
    StageBase& st = pipe_.stage(s);
    int snapshot = static_cast<int>((*flow.queues)[s]->size());
    VP_ASSERT(snapshot > 0, "launch over empty stage queue");
    int cap = batchCapacity(s);
    int grid = (snapshot + cap - 1) / cap;

    // Consume at most the items present at launch; items the kernel
    // itself produces (recursion) wait for the next host pass.
    auto remaining = std::make_shared<int>(snapshot);
    QueueSet* qs = flow.queues;

    auto kernel = std::make_shared<Kernel>(
        st.name + "_kbk", unit.res, stageBlockThreads(s), grid,
        [this, s, cap, remaining, qs, inline_mask](BlockContext& ctx) {
            // The stored loop body references itself weakly; each
            // pending continuation holds the strong reference. The
            // final iteration schedules no continuation, so the chain
            // frees itself instead of leaking through a closure
            // cycle.
            auto loop = std::make_shared<std::function<void()>>();
            *loop = [this, s, cap, remaining, qs, inline_mask, &ctx,
                     wl = std::weak_ptr<std::function<void()>>(
                         loop)] {
                if (*remaining <= 0) {
                    ctx.exit();
                    return;
                }
                int m = std::min(cap, *remaining);
                *remaining -= m;
                auto l = wl.lock();
                VP_ASSERT(l, "kbk block loop expired");
                processBatch(ctx, *qs, s, inline_mask, m,
                             [l] { (*l)(); });
            };
            (*loop)();
        });
    host_.launchAsync(flow.stream, kernel);
    host_.synchronize(flow.stream, [this, &flow, unitIdx, snapshot,
                                    done = std::move(done)]() mutable {
        double bytes = units_[unitIdx].hostBytesPerItem * snapshot;
        auto after_copy = [this, done = std::move(done)]() mutable {
            host_.control(dev_.config().hostControlUs, std::move(done));
        };
        if (bytes > 0.0)
            host_.memcpy(bytes, std::move(after_copy));
        else
            after_copy();
    });
}

void
KbkRunner::flowFinished(Flow& flow)
{
    flow.active = false;
    --activeFlows_;
    if (tracer_)
        tracer_->end(TraceKind::FlowSpan,
                     static_cast<std::int16_t>(flow.id), sim_.now(),
                     flow.id);
    VP_DEBUG("kbk: flow " << flow.id << " finished");
    startNextFlows();
}

} // namespace vp

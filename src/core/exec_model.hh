/**
 * @file
 * Execution-model taxonomy for pipelined computing on GPU, following
 * sections 4.1-4.2 of the VersaPipe paper, plus the qualitative
 * characteristics matrix of Figure 6.
 */

#ifndef VP_CORE_EXEC_MODEL_HH
#define VP_CORE_EXEC_MODEL_HH

#include <array>
#include <string>

namespace vp {

/**
 * How a pipeline (or one stage group of a hybrid pipeline) executes.
 *
 * The first five values are the models the paper analyzes; Hybrid
 * composes them per stage group; KbkStream and DynamicParallelism are
 * the additional comparison points of Figure 13 and section 8.4.
 */
enum class ExecModel
{
    /** All stages inlined in one kernel, one pass (Fig. 3a). */
    RTC,
    /** One kernel per stage, host-sequenced (Fig. 3b). */
    KBK,
    /** KBK with independent flows in concurrent streams (Fig. 13). */
    KbkStream,
    /** One persistent kernel scheduling all stages (Fig. 3c). */
    Megakernel,
    /** Per-stage persistent kernels bound to exclusive SMs (Fig. 4). */
    CoarsePipeline,
    /** Per-stage persistent kernels sharing SMs block-wise (Fig. 5). */
    FinePipeline,
    /** Stage groups with per-group models (Fig. 7). */
    Hybrid,
    /** Each produced item spawns a device-side sub-kernel (sec 8.4). */
    DynamicParallelism,
};

/** Short display name of a model. */
const char* execModelName(ExecModel m);

/** The seven qualitative metrics of Figure 6. */
enum class ModelMetric
{
    Applicability,
    TaskParallelism,
    HardwareUsage,
    LoadBalance,
    DataLocality,
    CodeFootprint,
    SimplicityControl,
};

/** Display name of a metric (Figure 6's A-G legend). */
const char* modelMetricName(ModelMetric m);

/** Qualitative level used in Figure 6. */
enum class MetricLevel { Poor = 1, Fair = 2, Good = 3 };

/** Display name of a level. */
const char* metricLevelName(MetricLevel l);

/**
 * The Figure 6 characteristics matrix: qualitative strengths and
 * weaknesses of the five primary models.
 */
MetricLevel modelCharacteristic(ExecModel m, ModelMetric metric);

/** All metrics, in Figure 6 (A..G) order. */
constexpr std::array<ModelMetric, 7> kAllMetrics = {
    ModelMetric::Applicability, ModelMetric::TaskParallelism,
    ModelMetric::HardwareUsage, ModelMetric::LoadBalance,
    ModelMetric::DataLocality, ModelMetric::CodeFootprint,
    ModelMetric::SimplicityControl,
};

/** The five primary models charted in Figure 6. */
constexpr std::array<ExecModel, 5> kFigure6Models = {
    ExecModel::RTC, ExecModel::KBK, ExecModel::Megakernel,
    ExecModel::CoarsePipeline, ExecModel::FinePipeline,
};

} // namespace vp

#endif // VP_CORE_EXEC_MODEL_HH

#include "core/model_config.hh"

#include <algorithm>
#include <numeric>
#include <set>
#include <sstream>

#include "gpu/occupancy.hh"

namespace vp {

const char*
schedulePolicyName(SchedulePolicy p)
{
    switch (p) {
      case SchedulePolicy::LaterStageFirst: return "later-stage-first";
      case SchedulePolicy::EarlierStageFirst:
        return "earlier-stage-first";
      case SchedulePolicy::LongestQueueFirst:
        return "longest-queue-first";
    }
    return "?";
}

std::string
PipelineConfig::describe(const Pipeline& pipe) const
{
    std::ostringstream os;
    switch (top) {
      case Top::Kbk:
        return "KBK";
      case Top::KbkStream:
        os << "KBK+" << numStreams << "streams";
        return os.str();
      case Top::DynamicParallelism:
        return "DynamicParallelism";
      case Top::Groups:
        break;
    }
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const StageGroup& grp = groups[g];
        if (g)
            os << " | ";
        os << execModelName(grp.model) << "{";
        for (std::size_t i = 0; i < grp.stages.size(); ++i) {
            if (i)
                os << ",";
            os << pipe.stage(grp.stages[i]).name;
        }
        os << "}";
        if (!grp.sms.empty())
            os << "@" << grp.sms.size() << "sm";
        for (const auto& [stage, blocks] : grp.blocksPerSm) {
            if (blocks > 0)
                os << " b" << stage << "=" << blocks;
        }
    }
    if (distributedQueues)
        os << " +distq";
    return os.str();
}

void
PipelineConfig::validate(const Pipeline& pipe,
                         const DeviceConfig& dev) const
{
    VP_REQUIRE(threadsPerBlock > 0 && threadsPerBlock % dev.warpSize == 0,
               "threadsPerBlock must be a positive warp multiple");
    if (top == Top::KbkStream || top == Top::DynamicParallelism)
        return;
    if (top == Top::Kbk && groups.empty())
        return; // plain per-stage KBK

    VP_REQUIRE(!groups.empty(), "Groups config with no groups");
    std::set<int> covered;
    std::set<int> sms_used;
    for (const StageGroup& grp : groups) {
        VP_REQUIRE(!grp.stages.empty(), "empty stage group");
        for (int s : grp.stages) {
            VP_REQUIRE(s >= 0 && s < pipe.stageCount(),
                       "group references stage " << s
                       << " outside the pipeline");
            VP_REQUIRE(covered.insert(s).second,
                       "stage " << s << " is in two groups");
        }
        for (int sm : grp.sms) {
            VP_REQUIRE(sm >= 0 && sm < dev.numSms,
                       "group references SM " << sm
                       << " outside the device");
            VP_REQUIRE(sms_used.insert(sm).second,
                       "SM " << sm << " assigned to two groups");
        }
        VP_REQUIRE(grp.model == ExecModel::RTC
                   || grp.model == ExecModel::Megakernel
                   || grp.model == ExecModel::FinePipeline,
                   "group model must be RTC, Megakernel or "
                   "FinePipeline, got " << execModelName(grp.model));
        if (grp.model == ExecModel::RTC) {
            // Inline chains require: no external producer may target
            // a non-entry stage, and no internal cycles.
            StageMask in_group = 0;
            for (int s : grp.stages)
                in_group |= StageMask(1) << s;
            for (std::size_t i = 1; i < grp.stages.size(); ++i) {
                int s = grp.stages[i];
                StageMask external =
                    pipe.producersOf(s) & ~in_group;
                VP_REQUIRE(external == 0,
                           "RTC group: stage `" << pipe.stage(s).name
                           << "` has producers outside the group");
            }
            for (int s : grp.stages) {
                VP_REQUIRE((pipe.ancestorsOf(s)
                            & in_group
                            & (StageMask(1) << s)) == 0,
                           "RTC group contains a cycle through `"
                           << pipe.stage(s).name << "`");
            }
        }
        // Block counts must be occupancy-feasible in combination.
        if (grp.model == ExecModel::FinePipeline) {
            int regs = 0, threads = 0, blocks = 0, smem = 0;
            for (int s : grp.stages) {
                auto it = grp.blocksPerSm.find(s);
                int want = it == grp.blocksPerSm.end() ? 0 : it->second;
                if (want <= 0)
                    continue;
                const StageBase& stage = pipe.stage(s);
                const ResourceUsage& r = stage.resources;
                int bt = stage.blockThreads > 0 ? stage.blockThreads
                                                : threadsPerBlock;
                regs += want * r.regsPerThread * bt;
                smem += want * r.smemPerBlock;
                threads += want * bt;
                blocks += want;
            }
            VP_REQUIRE(regs <= dev.regsPerSm
                       && threads <= dev.maxThreadsPerSm
                       && blocks <= dev.maxBlocksPerSm
                       && smem <= dev.smemPerSm,
                       "fine-pipeline block mapping exceeds SM "
                       "resources");
        }
    }
    VP_REQUIRE(static_cast<int>(covered.size()) == pipe.stageCount(),
               "groups cover " << covered.size() << " of "
               << pipe.stageCount() << " stages");
}

ResourceUsage
mergedResources(const Pipeline& pipe, const std::vector<int>& stages)
{
    VP_REQUIRE(!stages.empty(), "merging zero stages");
    ResourceUsage r = pipe.stage(stages[0]).resources;
    for (std::size_t i = 1; i < stages.size(); ++i)
        r = r.mergedWith(pipe.stage(stages[i]).resources);
    return r;
}

namespace {

std::vector<int>
allStages(const Pipeline& pipe)
{
    std::vector<int> v(pipe.stageCount());
    std::iota(v.begin(), v.end(), 0);
    return v;
}

} // namespace

PipelineConfig
makeRtcConfig(const Pipeline& pipe)
{
    PipelineConfig cfg;
    StageGroup g;
    g.stages = allStages(pipe);
    g.model = ExecModel::RTC;
    cfg.groups.push_back(std::move(g));
    return cfg;
}

PipelineConfig
makeKbkConfig()
{
    PipelineConfig cfg;
    cfg.top = PipelineConfig::Top::Kbk;
    return cfg;
}

PipelineConfig
makeKbkStreamConfig(int numStreams)
{
    PipelineConfig cfg;
    cfg.top = PipelineConfig::Top::KbkStream;
    cfg.numStreams = numStreams;
    return cfg;
}

PipelineConfig
makeMegakernelConfig(const Pipeline& pipe)
{
    PipelineConfig cfg;
    StageGroup g;
    g.stages = allStages(pipe);
    g.model = ExecModel::Megakernel;
    cfg.groups.push_back(std::move(g));
    return cfg;
}

PipelineConfig
makeCoarseConfig(const Pipeline& pipe, const DeviceConfig& dev,
                 const std::vector<double>& smShare)
{
    PipelineConfig cfg;
    int n = pipe.stageCount();
    VP_REQUIRE(dev.numSms >= n,
               "coarse pipeline needs at least one SM per stage");
    std::vector<double> share = smShare;
    if (share.empty())
        share.assign(n, 1.0);
    VP_REQUIRE(static_cast<int>(share.size()) == n,
               "smShare size mismatch");
    double total = std::accumulate(share.begin(), share.end(), 0.0);

    // Largest-remainder apportionment with a floor of one SM each.
    std::vector<int> count(n, 1);
    int remaining = dev.numSms - n;
    std::vector<std::pair<double, int>> order;
    for (int i = 0; i < n; ++i)
        order.emplace_back(share[i] / total, i);
    std::sort(order.rbegin(), order.rend());
    // Hand out the remaining SMs round-robin by descending share.
    for (int give = 0; give < remaining; ++give)
        count[order[give % n].second] += 1;

    int next_sm = 0;
    for (int s = 0; s < n; ++s) {
        StageGroup g;
        g.stages = {s};
        g.model = ExecModel::Megakernel;
        for (int k = 0; k < count[s]; ++k)
            g.sms.push_back(next_sm++);
        cfg.groups.push_back(std::move(g));
    }
    VP_ASSERT(next_sm <= dev.numSms, "SM apportionment overflow");
    return cfg;
}

PipelineConfig
makeFineConfig(const Pipeline& pipe, const DeviceConfig& dev)
{
    PipelineConfig cfg;
    StageGroup g;
    g.stages = allStages(pipe);
    g.model = ExecModel::FinePipeline;

    // Start every stage at its occupancy max, then shrink the largest
    // allocations until the combination fits on one SM.
    auto block_threads = [&](int s) {
        int bt = pipe.stage(s).blockThreads;
        return bt > 0 ? bt : cfg.threadsPerBlock;
    };
    std::vector<int> want(pipe.stageCount());
    for (int s = 0; s < pipe.stageCount(); ++s) {
        want[s] = std::max(1, maxBlocksPerSm(dev,
                                             pipe.stage(s).resources,
                                             block_threads(s))
                                  .blocksPerSm);
    }
    auto fits = [&] {
        long regs = 0, threads = 0, blocks = 0, smem = 0;
        for (int s = 0; s < pipe.stageCount(); ++s) {
            const ResourceUsage& r = pipe.stage(s).resources;
            regs += long(want[s]) * r.regsPerThread
                * block_threads(s);
            smem += long(want[s]) * r.smemPerBlock;
            threads += long(want[s]) * block_threads(s);
            blocks += want[s];
        }
        return regs <= dev.regsPerSm && threads <= dev.maxThreadsPerSm
            && blocks <= dev.maxBlocksPerSm && smem <= dev.smemPerSm;
    };
    while (!fits()) {
        auto it = std::max_element(want.begin(), want.end());
        VP_REQUIRE(*it > 1, "fine pipeline cannot fit all stages on "
                   "one SM even at one block each");
        --*it;
    }
    for (int s = 0; s < pipe.stageCount(); ++s)
        g.blocksPerSm[s] = want[s];
    cfg.groups.push_back(std::move(g));
    return cfg;
}

PipelineConfig
makeDynamicParallelismConfig()
{
    PipelineConfig cfg;
    cfg.top = PipelineConfig::Top::DynamicParallelism;
    return cfg;
}

} // namespace vp

/**
 * @file
 * Pipeline: the stage graph a VersaPipe program declares.
 *
 * Users add stages (in pipeline order) and declare the edges along
 * which items flow; the framework derives structure classification
 * (linear / loop / recursion), producer masks for locality, and
 * ancestor masks for exact per-stage termination detection.
 */

#ifndef VP_CORE_PIPELINE_HH
#define VP_CORE_PIPELINE_HH

#include <memory>
#include <optional>
#include <string>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/stage.hh"

namespace vp {

/** Structural class of a pipeline (Table 1 of the paper). */
enum class PipelineStructure { Linear, Loop, Recursion };

/** Display name of a structure class. */
const char* structureName(PipelineStructure s);

/** The stage graph of one pipeline program. */
class Pipeline
{
  public:
    Pipeline() = default;

    Pipeline(const Pipeline&) = delete;
    Pipeline& operator=(const Pipeline&) = delete;

    /**
     * Construct stage @p S in place and append it to the pipeline.
     * @return reference to the constructed stage.
     */
    template <typename S, typename... Args>
    S&
    addStage(Args&&... args)
    {
        static_assert(std::is_base_of_v<StageBase, S>,
                      "stages must derive from vp::Stage<T>");
        VP_REQUIRE(stages_.size() < 32,
                   "pipelines support at most 32 stages");
        auto stage = std::make_unique<S>(std::forward<Args>(args)...);
        S& ref = *stage;
        std::type_index ti(typeid(S));
        VP_REQUIRE(!byType_.count(ti),
                   "stage type added twice: " << stage->name);
        byType_.emplace(ti, static_cast<int>(stages_.size()));
        stages_.push_back(std::move(stage));
        return ref;
    }

    /** Declare that items flow from stage @p from to stage @p to. */
    void link(int from, int to);

    /** Typed convenience overload of link(). */
    template <typename From, typename To>
    void
    link()
    {
        link(indexOf<From>(), indexOf<To>());
    }

    /** Number of stages. */
    int stageCount() const { return static_cast<int>(stages_.size()); }

    /** Stage by index. */
    StageBase& stage(int i);

    /** Stage by index, const. */
    const StageBase& stage(int i) const;

    /** Index of stage type @p S; fatal if absent. */
    template <typename S>
    int
    indexOf() const
    {
        return indexOfType(std::type_index(typeid(S)));
    }

    /** Index of a stage by type id; fatal if absent. */
    int indexOfType(std::type_index ti) const;

    /** Stage by type, downcast. */
    template <typename S>
    S&
    stageAs()
    {
        return static_cast<S&>(stage(indexOf<S>()));
    }

    /** Declared edges as (from, to) pairs. */
    const std::vector<std::pair<int, int>>& edges() const
    {
        return edges_;
    }

    /** Mask of stages with a declared edge into @p s. */
    StageMask producersOf(int s) const;

    /** Mask of stages with a declared edge out of @p s. */
    StageMask consumersOf(int s) const;

    /**
     * Mask of all transitive producers of @p s, excluding @p s itself
     * unless it lies on a cycle reaching itself.
     */
    StageMask ancestorsOf(int s) const;

    /** True when the declared edges contain a cycle (incl. self). */
    bool hasCycle() const;

    /** Structure classification (explicit or derived). */
    PipelineStructure structure() const;

    /** Override the derived structure classification. */
    void setStructure(PipelineStructure s) { explicit_ = s; }

    /** Call reset() on every stage (between runs). */
    void resetStages();

    /**
     * Extra registers per thread a multi-stage Megakernel consumes
     * for its software scheduler state, on top of the merged stage
     * maximum (capped at the 255-register hardware limit). E.g., the
     * paper's Face Detection megakernel uses 87 registers while its
     * widest stage uses 69.
     */
    int megakernelExtraRegs = 0;

    /** Validate indices and connectivity; fatal on malformed graphs. */
    void validate() const;

  private:
    /**
     * Rebuild the per-stage mask caches when the graph changed.
     * producersOf/ancestorsOf sit on the runners' polling fast path,
     * so they must not re-walk the edge list on every call.
     */
    void refreshMasks() const;

    std::vector<std::unique_ptr<StageBase>> stages_;
    std::unordered_map<std::type_index, int> byType_;
    std::vector<std::pair<int, int>> edges_;
    std::optional<PipelineStructure> explicit_;

    mutable std::vector<StageMask> producerMasks_;
    mutable std::vector<StageMask> consumerMasks_;
    mutable std::vector<StageMask> ancestorMasks_;
    /** (stage count, edge count) the caches were built for. */
    mutable std::pair<std::size_t, std::size_t> maskKey_{~0ull, ~0ull};
};

} // namespace vp

#endif // VP_CORE_PIPELINE_HH

/**
 * @file
 * The VersaPipe programming API: stage definitions and the execution
 * context device code uses to enqueue items to downstream stages.
 *
 * Mirrors the paper's API (Fig. 9): a stage subclasses Stage<T> (the
 * paper's BaseStage), declares its data-item type, the number of
 * threads per task, and an execute() that may call
 * ctx.enqueue<NextStage>(item). Because the "device" is a simulator,
 * a stage additionally declares its hardware footprint (resources)
 * and a cost() function giving per-item instruction counts that drive
 * the timing model; execute() performs the real computation.
 */

#ifndef VP_CORE_STAGE_HH
#define VP_CORE_STAGE_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <typeindex>
#include <vector>

#include "common/error.hh"
#include "gpu/resources.hh"
#include "queueing/remote_queue.hh"
#include "queueing/work_queue.hh"

namespace vp {

class Pipeline;
class ExecContext;

/** Bitmask over stage indices (pipelines hold at most 32 stages). */
using StageMask = std::uint32_t;

/** Aggregate result of one block executing a batch of tasks. */
struct BatchResult
{
    /** Summed per-thread cost of the batch. */
    TaskCost total;
    /** Largest single-task instruction count (load imbalance bound). */
    double maxTaskInsts = 0.0;
    /** Tasks executed. */
    int items = 0;
};

/**
 * Outcome of one fault-instrumented batch fetch (runBatchFI).
 *
 * Transiently failed items are partitioned by their retry budget into
 * `redeliver` (re-pushed by the recovery manager after backoff) and
 * the dead-letter count; executed items can optionally be captured so
 * an SM failure between execution and output commit can replay them.
 */
struct FaultBatch
{
    /** Items that executed this batch. */
    int executed = 0;
    /** Items that failed transiently and await redelivery. */
    int retried = 0;
    /** Items whose retry budget was exhausted. */
    int deadLettered = 0;
    /** Largest retry count among the retried items (backoff input). */
    std::uint32_t maxTries = 0;
    /**
     * Re-pushes the retried items into the stage's queue with their
     * retry counts incremented; empty when retried == 0.
     */
    std::function<void(QueueBase&)> redeliver;
    /**
     * Re-pushes pre-execution copies of the executed items (same
     * contract as redeliver); only set when capture was requested.
     */
    std::function<void(QueueBase&)> capture;
    /** Provenance ids of the executed items (empty when the batch's
     *  queue carries no provenance metadata). */
    std::vector<std::uint64_t> execIds;
    /** Provenance ids of the items that dead-lettered here. */
    std::vector<std::uint64_t> deadIds;
};

/** Type-erased base of all pipeline stages. */
class StageBase
{
  public:
    virtual ~StageBase() = default;

    /** Stage display name. */
    std::string name = "stage";

    /** Hardware footprint of this stage compiled as its own kernel. */
    ResourceUsage resources;

    /** Threads cooperating on one data item (the paper's threadNum). */
    int threadNum = 1;

    /**
     * Block size when this stage runs in its own kernel (KBK, coarse,
     * fine, DP); 0 = the configuration default. Merged kernels (RTC,
     * Megakernel) always use the configuration default.
     */
    int blockThreads = 0;

    /**
     * Bytes the host must move per item when this stage's successors
     * are sequenced by the CPU (KBK model only): recursion control
     * and intermediate-result copies.
     */
    double kbkHostBytesPerItem = 0.0;

    /**
     * True when re-executing an item of this stage is safe (pure
     * transform or idempotent writes). Retryable stages have their
     * in-flight items replayed after an SM failure; non-retryable
     * ones dead-letter them. Transient *fetch* faults are decided
     * before execution and are retried regardless of this flag.
     */
    bool retryable = false;

    /**
     * Bound on this stage's input queue depth (0 = unbounded). A
     * full queue backpressures producers — and can deadlock a cyclic
     * pipeline, which the watchdog converts into a diagnostic.
     */
    std::size_t queueCapacity = 0;

    /** Payload type of this stage's data items. */
    virtual std::type_index itemType() const = 0;

    /** Payload size in bytes. */
    virtual int itemBytes() const = 0;

    /** Create this stage's input work queue. */
    virtual std::unique_ptr<QueueBase> makeQueue() const = 0;

    /**
     * Create a remote stub standing in for this stage's queue on
     * devices the stage is not homed on: pushes divert through
     * @p forward to the home device (see remote_queue.hh). For
     * bounded stages, @p fullProbe wires the credit scheme that
     * keeps backpressure working across the interconnect.
     */
    virtual std::unique_ptr<QueueBase>
    makeRemoteStub(RemoteForward forward,
                   RemoteFullProbe fullProbe = {}) const = 0;

    /**
     * Pop up to @p maxItems items from @p q and execute each,
     * recording outputs and costs in @p ctx.
     */
    virtual BatchResult runBatch(ExecContext& ctx, QueueBase& q,
                                 int maxItems) = 0;

    /**
     * Fault-instrumented runBatch: the first @p failItems popped
     * items fail transiently (skipping execution); failed items
     * within @p maxRetries are packaged for redelivery, the rest
     * dead-letter. With @p wantCapture, pre-execution copies of the
     * executed items are captured for SM-failure replay. Only used
     * when a fault plan injects task faults — the plain runBatch hot
     * path stays untouched.
     */
    virtual BatchResult runBatchFI(ExecContext& ctx, QueueBase& q,
                                   int maxItems, int failItems,
                                   std::uint32_t maxRetries,
                                   bool wantCapture,
                                   FaultBatch& fb) = 0;

    /** Reset any mutable stage-held state between runs. */
    virtual void reset() {}
};

/**
 * One buffered output of a task: the target stage and a closure that
 * pushes the typed payload into that stage's queue at commit time.
 */
struct StagedOutput
{
    int stage;
    std::function<void(QueueBase&)> push;
    /** Provenance id of the popped item whose task produced this
     *  output (0 = untracked); the runtime mints the output's own id
     *  from it at commit time, so aborted batches leave no orphan
     *  lineage records. */
    std::uint64_t provParent = 0;
};

/**
 * Execution context passed to Stage::execute.
 *
 * Collects the outputs a task produces; the runtime commits them to
 * the work queues once the task's simulated execution has completed.
 * For stages inlined into an RTC-style chain kernel, enqueue()
 * executes the downstream stage immediately inside the same task and
 * folds its cost in (the paper's run-to-completion semantics).
 */
class ExecContext
{
  public:
    /**
     * @param pipe the pipeline (for stage lookup by type)
     * @param inlineMask stages executed inline rather than queued
     * @param smId SM the executing block resides on (-1 = n/a)
     */
    /**
     * @param entryThreads threads per task of the stage whose batch
     *        is being executed; inlined stages with wider tasks have
     *        their per-thread costs scaled up, since the same entry
     *        threads must do their work (RTC semantics).
     */
    ExecContext(Pipeline& pipe, StageMask inlineMask, int smId,
                int entryThreads = 1)
        : pipe_(pipe), inlineMask_(inlineMask), smId_(smId),
          entryThreads_(std::max(1, entryThreads))
    {}

    /** SM the executing block resides on. */
    int smId() const { return smId_; }

    /** Threads per task of the batch's entry stage. */
    int entryThreads() const { return entryThreads_; }

    /** Provenance id of the item the current task is executing
     *  (0 = untracked). Set by runBatch before each execute();
     *  outputs enqueued by the task inherit it as their lineage
     *  parent — including through inline (RTC) chains, which run
     *  inside the same task. */
    void setProvParent(std::uint64_t id) { provParent_ = id; }
    std::uint64_t provParent() const { return provParent_; }

    /**
     * Send @p item to stage @p S (the paper's
     * enqueue<StageClassName>(itemVal)). Defined in stage_impl.hh.
     */
    template <typename S>
    void enqueue(typename S::DataItemType item);

    /** Outputs buffered so far (consumed by the runtime). */
    std::vector<StagedOutput>& outputs() { return outputs_; }

    /** Per-stage counts of tasks executed inline (RTC chaining). */
    const std::vector<std::pair<int, int>>&
    inlineRuns() const
    {
        return inlineRuns_;
    }

    /** Record one inline execution of stage @p s (internal). */
    void
    noteInlineRun(int s)
    {
        for (auto& [stage, count] : inlineRuns_) {
            if (stage == s) {
                ++count;
                return;
            }
        }
        inlineRuns_.emplace_back(s, 1);
    }

    /** @name Runtime-side batch bookkeeping @{ */

    /** Begin accounting one task with base cost @p c. */
    void
    beginTask(const TaskCost& c)
    {
        taskCost_ = c;
    }

    /** Add inline-executed downstream cost to the current task. */
    void
    addInlineCost(const TaskCost& c)
    {
        taskCost_ += c;
    }

    /** Finish the current task, returning its accumulated cost. */
    TaskCost
    endTask()
    {
        return taskCost_;
    }

    /** @} */

  private:
    Pipeline& pipe_;
    StageMask inlineMask_;
    int smId_;
    int entryThreads_ = 1;
    std::uint64_t provParent_ = 0;
    int inlineDepth_ = 0;
    TaskCost taskCost_;
    std::vector<StagedOutput> outputs_;
    std::vector<std::pair<int, int>> inlineRuns_;

    static constexpr int kMaxInlineDepth = 64;
};

/**
 * Typed stage base (the paper's BaseStage<Derived>).
 *
 * @tparam T the stage's data-item type
 */
template <typename T>
class Stage : public StageBase
{
  public:
    using DataItemType = T;

    /** Per-item instruction cost driving the timing model. */
    virtual TaskCost cost(const T& item) const = 0;

    /** Process one item; may ctx.enqueue<Next>() results. */
    virtual void execute(ExecContext& ctx, T& item) = 0;

    std::type_index
    itemType() const override
    {
        return std::type_index(typeid(T));
    }

    int
    itemBytes() const override
    {
        return static_cast<int>(sizeof(T));
    }

    std::unique_ptr<QueueBase>
    makeQueue() const override
    {
        return std::make_unique<WorkQueue<T>>(name);
    }

    std::unique_ptr<QueueBase>
    makeRemoteStub(RemoteForward forward,
                   RemoteFullProbe fullProbe = {}) const override
    {
        auto stub = std::make_unique<RemoteStubQueue<T>>(
            name, std::move(forward));
        if (fullProbe)
            stub->setFullProbe(std::move(fullProbe));
        return stub;
    }

    // Defined in stage_impl.hh (needs the Pipeline definition).
    BatchResult runBatch(ExecContext& ctx, QueueBase& q,
                         int maxItems) override;

    BatchResult runBatchFI(ExecContext& ctx, QueueBase& q,
                           int maxItems, int failItems,
                           std::uint32_t maxRetries, bool wantCapture,
                           FaultBatch& fb) override;
};

} // namespace vp

#endif // VP_CORE_STAGE_HH

#include "core/shard.hh"

#include <cstdint>
#include <sstream>

#include "common/error.hh"

namespace vp {

ShardPlan
ShardPlan::replicateAll(const Pipeline& pipe)
{
    ShardPlan plan;
    plan.stages.assign(static_cast<std::size_t>(pipe.stageCount()),
                       StagePlace{Placement::Replicate, 0});
    return plan;
}

ShardPlan
ShardPlan::pinnedRoundRobin(const PipelineConfig& cfg,
                            const Pipeline& pipe, int nDevices)
{
    VP_REQUIRE(nDevices >= 1, "shard plan over zero devices");
    ShardPlan plan;
    plan.stages.assign(static_cast<std::size_t>(pipe.stageCount()),
                       StagePlace{Placement::Pin, 0});
    if (cfg.top == PipelineConfig::Top::Groups && !cfg.groups.empty()) {
        for (std::size_t g = 0; g < cfg.groups.size(); ++g)
            for (int s : cfg.groups[g].stages)
                plan.stages[static_cast<std::size_t>(s)] = StagePlace{
                    Placement::Pin,
                    static_cast<int>(g) % nDevices};
    } else {
        for (int s = 0; s < pipe.stageCount(); ++s)
            plan.stages[static_cast<std::size_t>(s)] =
                StagePlace{Placement::Pin, s % nDevices};
    }
    return plan;
}

ShardPlan
ShardPlan::parse(const std::string& spec, const Pipeline& pipe,
                 int nDevices)
{
    if (spec.empty() || spec == "replicate")
        return replicateAll(pipe);
    if (spec == "rr") {
        // Per-stage round robin; group-aware callers should use
        // pinnedRoundRobin with their config instead.
        VP_CHECK(nDevices >= 1, ErrorCode::Config,
                 "shard spec `rr`: group has " << nDevices
                 << " devices; need at least 1");
        ShardPlan plan;
        for (int s = 0; s < pipe.stageCount(); ++s)
            plan.stages.push_back(
                StagePlace{Placement::Pin, s % nDevices});
        return plan;
    }
    VP_CHECK(spec.rfind("pin:", 0) == 0, ErrorCode::Config,
             "shard spec `" << spec
             << "`: expected replicate, rr, or pin:<d0>,<d1>,...");
    ShardPlan plan;
    std::istringstream in(spec.substr(4));
    std::string tok;
    while (std::getline(in, tok, ',')) {
        std::size_t used = 0;
        int d = -1;
        try {
            d = std::stoi(tok, &used);
        } catch (const std::exception&) {
            used = 0;
        }
        VP_CHECK(used == tok.size() && d >= 0 && d < nDevices,
                 ErrorCode::Config,
                 "shard spec `" << spec << "`: bad device `" << tok
                 << "` (group has " << nDevices << " devices)");
        plan.stages.push_back(StagePlace{Placement::Pin, d});
    }
    VP_CHECK(!plan.stages.empty(), ErrorCode::Config,
             "shard spec `" << spec
             << "`: empty device list (expected pin:<d0>,<d1>,... "
                "with one device per stage)");
    VP_CHECK(static_cast<int>(plan.stages.size())
                 == pipe.stageCount(),
             ErrorCode::Config,
             "shard spec `" << spec << "` names "
             << plan.stages.size() << " stages; pipeline has "
             << pipe.stageCount());
    return plan;
}

bool
ShardPlan::anyPinned() const
{
    for (const StagePlace& p : stages)
        if (p.place == Placement::Pin)
            return true;
    return false;
}

std::string
ShardPlan::describe() const
{
    if (!anyPinned())
        return "replicate";
    std::ostringstream os;
    os << "pin[";
    for (std::size_t s = 0; s < stages.size(); ++s) {
        if (s)
            os << ",";
        if (stages[s].place == Placement::Replicate)
            os << "*";
        else
            os << stages[s].device;
    }
    os << "]";
    return os.str();
}

void
ShardPlan::validate(const Pipeline& pipe, const PipelineConfig& cfg,
                    int nDevices) const
{
    VP_CHECK(static_cast<int>(stages.size()) == pipe.stageCount(),
             ErrorCode::Config,
             "shard plan covers " << stages.size()
             << " stages; pipeline has " << pipe.stageCount());
    VP_CHECK(cfg.top == PipelineConfig::Top::Groups,
             ErrorCode::Config,
             "sharding requires a persistent-block (Groups) "
             "configuration; KBK and dynamic parallelism are "
             "host-sequenced per device");
    for (const StagePlace& p : stages) {
        VP_CHECK(p.place == Placement::Replicate
                     || (p.device >= 0 && p.device < nDevices),
                 ErrorCode::Config,
                 "shard plan pins a stage to device " << p.device
                 << "; group has " << nDevices << " devices");
    }
    for (const StageGroup& grp : cfg.groups) {
        for (std::size_t i = 1; i < grp.stages.size(); ++i) {
            const StagePlace& a =
                stages[static_cast<std::size_t>(grp.stages[0])];
            const StagePlace& b =
                stages[static_cast<std::size_t>(grp.stages[i])];
            bool same = a.place == b.place
                && (a.place == Placement::Replicate
                    || a.device == b.device);
            VP_CHECK(same, ErrorCode::Config,
                     "shard plan splits stage group containing `"
                     << pipe.stage(grp.stages[0]).name
                     << "`: placement must be uniform within a "
                        "group (its kernel launches per device as "
                        "a unit)");
        }
    }
}

std::vector<ShardPlan>
defaultShardPlans(const PipelineConfig& cfg, const Pipeline& pipe,
                  int nDevices)
{
    std::vector<ShardPlan> plans;
    plans.push_back(ShardPlan::replicateAll(pipe));
    if (nDevices > 1 && cfg.top == PipelineConfig::Top::Groups
        && cfg.groups.size() > 1)
        plans.push_back(
            ShardPlan::pinnedRoundRobin(cfg, pipe, nDevices));
    return plans;
}

int
shardSeedDevice(int stage, int ordinal, int nDevices)
{
    // splitmix64 of (stage, ordinal): cheap, well-mixed, and fully
    // deterministic across platforms.
    std::uint64_t x = (static_cast<std::uint64_t>(
                           static_cast<std::uint32_t>(stage))
                       << 32)
        | static_cast<std::uint32_t>(ordinal);
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x = x ^ (x >> 31);
    return static_cast<int>(x % static_cast<std::uint64_t>(nDevices));
}

int
FailoverPolicy::rehome(int stage,
                       const std::vector<std::int64_t>& loads,
                       const std::vector<char>& alive)
{
    auto tieHash = [stage](int dev) {
        std::uint64_t x = (static_cast<std::uint64_t>(
                               static_cast<std::uint32_t>(stage))
                           << 32)
            | static_cast<std::uint32_t>(dev);
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    };
    int best = -1;
    for (int d = 0; d < static_cast<int>(alive.size()); ++d) {
        if (!alive[static_cast<std::size_t>(d)])
            continue;
        if (best < 0) {
            best = d;
            continue;
        }
        std::int64_t ld = loads[static_cast<std::size_t>(d)];
        std::int64_t lb = loads[static_cast<std::size_t>(best)];
        if (ld < lb || (ld == lb && tieHash(d) < tieHash(best)))
            best = d;
    }
    VP_REQUIRE(best >= 0, "failover: no surviving device to re-home "
                          "stage " << stage << " onto");
    return best;
}

} // namespace vp

/**
 * @file
 * GroupsRunner: executes RTC / Megakernel / coarse / fine / hybrid
 * configurations with persistent blocks, SM-centric mapping, block
 * mapping, and the online idle-SM refill adaptation of section 7.
 */

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "core/runtime.hh"
#include "core/stage_impl.hh"
#include "gpu/occupancy.hh"

namespace vp {

GroupsRunner::GroupsRunner(Simulator& sim, Device& dev, Host& host,
                           Pipeline& pipe, const PipelineConfig& cfg,
                           FaultContext fc)
    : RunnerBase(sim, dev, host, pipe, cfg, fc)
{
    buildSpecs();
    if (cfg_.distributedQueues) {
        // One queue shard per SM; blocks work on their home shard
        // and steal from the others when it runs dry (sec 8.5's
        // distributed-queue direction).
        for (int i = 0; i < dev_.numSms(); ++i) {
            shards_.push_back(std::make_unique<QueueSet>());
            makeQueues(*shards_.back());
            extraQueueSets_.push_back(shards_.back().get());
        }
    }
}

QueueSet&
GroupsRunner::homeQueues(int smId)
{
    if (shards_.empty())
        return queues_;
    return *shards_[smId % shards_.size()];
}

QueueBase&
GroupsRunner::deliveryQueue(int stage, std::uint64_t hint)
{
    if (shards_.empty())
        return *queues_[stage];
    return *(*shards_[hint % shards_.size()])[stage];
}

int
GroupsRunner::findWork(int smId, const std::vector<int>& stages,
                       QueueSet*& qs)
{
    qs = &homeQueues(smId);
    int s = pickStage(*qs, stages);
    if (s >= 0 || shards_.empty())
        return s;
    // Steal scan over the other shards, nearest-first.
    int n = static_cast<int>(shards_.size());
    for (int d = 1; d < n; ++d) {
        QueueSet& victim = *shards_[(smId + d) % n];
        int found = pickStage(victim, stages);
        if (found >= 0) {
            ++steals_;
            qs = &victim;
            return found;
        }
    }
    return -1;
}

void
GroupsRunner::buildSpecs()
{
    builtGroups_.assign(cfg_.groups.size(), 0);
    for (std::size_t g = 0; g < cfg_.groups.size(); ++g) {
        const StageGroup& grp = cfg_.groups[g];
        // Sharded: groups homed on another device launch no kernels
        // here. Placement is uniform within a group (ShardPlan::
        // validate), so the first stage decides for all of them.
        if (shard_ && shard_->plan && !grp.stages.empty()
            && shard_->plan->pinnedElsewhere(grp.stages.front(),
                                             shard_->deviceIndex))
            continue;
        buildGroupSpecs(g);
    }
}

void
GroupsRunner::buildGroupSpecs(std::size_t g)
{
    builtGroups_[g] = 1;
    {
        const StageGroup& grp = cfg_.groups[g];
        auto configured_blocks = [&](int key) {
            auto it = grp.blocksPerSm.find(key);
            return it == grp.blocksPerSm.end() ? 0 : it->second;
        };
        if (grp.model == ExecModel::FinePipeline) {
            // One kernel per stage; blocks of several stages share
            // each assigned SM.
            for (int s : grp.stages) {
                KernelSpec spec;
                spec.name = pipe_.stage(s).name + "_fine";
                spec.stages = {s};
                spec.res = pipe_.stage(s).resources;
                spec.sms = grp.sms;
                spec.threads = stageBlockThreads(s);
                int want = configured_blocks(s);
                if (want <= 0) {
                    want = maxBlocksPerSm(dev_.config(), spec.res,
                                          spec.threads)
                               .blocksPerSm;
                }
                spec.blocksPerSm = std::max(1, want);
                spec.groupIdx = static_cast<int>(g);
                spec.fine = true;
                specs_.push_back(std::move(spec));
            }
        } else {
            // RTC or Megakernel: one kernel for the whole group.
            KernelSpec spec;
            std::ostringstream name;
            name << (grp.model == ExecModel::RTC ? "rtc" : "mega");
            for (int s : grp.stages)
                name << "_" << pipe_.stage(s).name;
            spec.name = name.str();
            spec.res = mergedResources(pipe_, grp.stages);
            if (grp.model == ExecModel::Megakernel
                && grp.stages.size() > 1) {
                spec.res.regsPerThread = std::min(
                    255, spec.res.regsPerThread
                         + pipe_.megakernelExtraRegs);
            }
            spec.sms = grp.sms;
            spec.threads = cfg_.threadsPerBlock;
            spec.groupIdx = static_cast<int>(g);
            if (grp.model == ExecModel::RTC) {
                // The kernel serves the entry stage; the rest of the
                // group is inlined into the same tasks.
                spec.stages = {grp.stages.front()};
                for (std::size_t i = 1; i < grp.stages.size(); ++i) {
                    spec.inlineMask |=
                        StageMask(1) << grp.stages[i];
                }
            } else {
                spec.stages = grp.stages;
            }
            int want = configured_blocks(-1);
            if (want <= 0) {
                want = maxBlocksPerSm(dev_.config(), spec.res,
                                      cfg_.threadsPerBlock)
                           .blocksPerSm;
            }
            VP_REQUIRE(want > 0, "group kernel `" << spec.name
                       << "` cannot be launched: zero occupancy");
            spec.blocksPerSm = want;
            specs_.push_back(std::move(spec));
        }
    }
}

void
GroupsRunner::adoptStages(const std::vector<int>& stages)
{
    std::size_t before = specs_.size();
    for (std::size_t g = 0; g < cfg_.groups.size(); ++g) {
        if (builtGroups_[g])
            continue;
        const StageGroup& grp = cfg_.groups[g];
        bool adopted = false;
        for (int s : grp.stages)
            adopted = adopted
                || std::find(stages.begin(), stages.end(), s)
                    != stages.end();
        if (adopted)
            buildGroupSpecs(g);
    }
    if (adaptiveArmed_) {
        adaptIdle_.resize(specs_.size(), 0.0);
        adaptIdleLast_.resize(specs_.size(), 0.0);
    }
    for (std::size_t i = before; i < specs_.size(); ++i)
        launchSpec(static_cast<int>(i), specs_[i].sms, false);
}

void
GroupsRunner::start(AppDriver& driver)
{
    if (shard_) {
        // Sharded runs are seeded once by the group coordinator,
        // which routes each item to its device; do not re-seed here.
    } else if (cfg_.distributedQueues) {
        // Seed flows round-robin across the shards; stealing
        // rebalances single-flow workloads at runtime.
        for (int f = 0; f < driver.flowCount(); ++f)
            seedFlow(driver, *shards_[f % shards_.size()], f);
    } else {
        seedAll(driver, queues_);
    }
    // The input transfer happens once, identically for every model.
    host_.memcpy(driver.inputBytes(), [this] {
        for (std::size_t i = 0; i < specs_.size(); ++i)
            launchSpec(static_cast<int>(i), specs_[i].sms, false);
    });
}

void
GroupsRunner::launchSpec(int specIdx, const std::vector<int>& sms,
                         bool isRefill)
{
    const KernelSpec& spec = specs_[specIdx];
    int sm_count = sms.empty() ? dev_.numSms()
                               : static_cast<int>(sms.size());
    int grid = spec.blocksPerSm * sm_count;
    auto kernel = std::make_shared<Kernel>(
        isRefill ? spec.name + "_refill" : spec.name, spec.res,
        spec.threads, grid,
        [this, specIdx](BlockContext& ctx) {
            blockMain(ctx, specIdx);
        });
    kernel->setAllowedSms(sms);
    ++liveKernels_;
    if (specLiveKernels_.size() < specs_.size())
        specLiveKernels_.resize(specs_.size(), 0);
    ++specLiveKernels_[static_cast<std::size_t>(specIdx)];
    kernel->notifyOnComplete([this, specIdx] {
        --liveKernels_;
        --specLiveKernels_[static_cast<std::size_t>(specIdx)];
        onKernelComplete();
    });
    Stream* stream = dev_.createStream();
    host_.launchAsync(stream, kernel);
    // Record which kernel ids serve which stages (for locality and
    // the SM-mapping introspection in tests). The id is assigned at
    // device launch; bind after the launch is enqueued.
    std::vector<int> stages = spec.stages;
    Kernel* kp = kernel.get();
    sim_.after(0.0, [this, kp, stages] {
        if (kp->id() >= 0)
            for (int s : stages)
                bindStageKernel(s, kp->id());
    });
}

void
GroupsRunner::serveWake()
{
    // Epoch seeding may have landed work for a stage group whose
    // persistent blocks all retired while the pipeline idled between
    // request bursts: relaunch exactly those specs. Groups with live
    // kernels keep their resident blocks — they poll and pick the
    // new work up — so a wake costs nothing while the pipeline is
    // busy.
    if (specLiveKernels_.size() < specs_.size())
        specLiveKernels_.resize(specs_.size(), 0);
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        if (specLiveKernels_[i] > 0)
            continue;
        if (!anyFutureWork(specs_[i].stages))
            continue;
        launchSpec(static_cast<int>(i), specs_[i].sms, false);
    }
}

void
GroupsRunner::blockMain(BlockContext& ctx, int specIdx)
{
    const KernelSpec& spec = specs_[specIdx];
    // Block-mapping check (filling-retreating): each stage keeps a
    // per-SM block counter; blocks beyond the budget retreat.
    auto key = std::make_pair(specIdx, ctx.smId());
    int& count = blockCount_[key];
    if (count >= spec.blocksPerSm) {
        ++retreats_;
        if (tracer_)
            tracer_->instant(TraceKind::Retreat,
                             static_cast<std::int16_t>(trackBase_
                                                       + ctx.smId()),
                             sim_.now(), specIdx);
        ctx.delay(20.0, [&ctx] { ctx.exit(); });
        return;
    }
    ++count;
    if (instrumented())
        blockSpec_[&ctx] = specIdx;
    blockLoop(ctx, specIdx, dev_.config().pollIntervalCycles);
}

void
GroupsRunner::blockLoop(BlockContext& ctx, int specIdx,
                        Tick pollBackoff)
{
    const KernelSpec& spec = specs_[specIdx];
    if (adaptiveArmed_) {
        // The controller shrank this spec's per-SM budget: surplus
        // blocks retreat, freeing their slot for the receiving
        // stage's refill. Guarded by the armed flag, so unadapted
        // runs take exactly the pre-controller path.
        auto key = std::make_pair(specIdx, ctx.smId());
        auto it = blockCount_.find(key);
        if (it != blockCount_.end()
            && it->second > spec.blocksPerSm) {
            --it->second;
            blockSpec_.erase(&ctx);
            ++retreats_;
            if (tracer_)
                tracer_->instant(
                    TraceKind::Retreat,
                    static_cast<std::int16_t>(trackBase_
                                              + ctx.smId()),
                    sim_.now(), specIdx);
            ctx.delay(20.0, [&ctx] { ctx.exit(); });
            return;
        }
    }
    if (!anyFutureWork(spec.stages)) {
        // This stage group has fully drained: retire the block.
        auto key = std::make_pair(specIdx, ctx.smId());
        --blockCount_[key];
        blockSpec_.erase(&ctx);
        ctx.exit();
        return;
    }
    QueueSet* qs = nullptr;
    int s = findWork(ctx.smId(), spec.stages, qs);
    if (s < 0) {
        // Upstream still working: poll with exponential backoff.
        ++polls_;
        if (adaptiveArmed_)
            adaptIdle_[static_cast<std::size_t>(specIdx)]
                += pollBackoff;
        Tick next_backoff = std::min(
            pollBackoff * 1.5, dev_.config().pollIntervalCycles * 3.0);
        ctx.delay(pollBackoff, [this, &ctx, specIdx, next_backoff] {
            blockLoop(ctx, specIdx, next_backoff);
        });
        return;
    }
    processBatch(ctx, *qs, s, spec.inlineMask, -1,
                 [this, &ctx, specIdx] {
                     blockLoop(ctx, specIdx,
                               dev_.config().pollIntervalCycles);
                 },
                 &homeQueues(ctx.smId()));
}

void
GroupsRunner::onBlockAborted(BlockContext& ctx)
{
    auto it = blockSpec_.find(&ctx);
    if (it == blockSpec_.end())
        return;
    // The evicted block no longer occupies its block-mapping slot.
    --blockCount_[std::make_pair(it->second, ctx.smId())];
    blockSpec_.erase(it);
}

void
GroupsRunner::onSmFailed(int sm)
{
    (void)sm;
    if (dev_.numOnlineSms() <= 0)
        return;
    // Graceful degradation: re-provision every spec that may still
    // see work onto the surviving SMs. Blocks landing on SMs already
    // at their block-mapping budget simply retreat, so this is safe
    // to over-apply; for specs whose SM binding died entirely it is
    // what brings their stages back to life.
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const KernelSpec& spec = specs_[i];
        if (!anyFutureWork(spec.stages))
            continue;
        std::vector<int> sms;
        for (int bound : spec.sms)
            if (!dev_.sm(bound).offline())
                sms.push_back(bound);
        // A spec bound only to dead SMs spreads over all survivors
        // (an empty set means "any SM"; offline ones refuse blocks).
        ++faultStats_.degradeRelaunches;
        launchSpec(static_cast<int>(i), sms, true);
    }
}

void
GroupsRunner::onKernelComplete()
{
    if (cfg_.onlineAdaptation && !pendingPtr_->done())
        maybeRefill();
}

void
GroupsRunner::maybeRefill()
{
    if (refillBudget_ <= 0)
        return;
    // Pick the stage with the most stalled items (sec 7: "it chooses
    // the stage group with the most data items stalled in its
    // queues") and widen its kernel onto all SMs.
    int best = -1;
    std::size_t depth = 0;
    for (int s = 0; s < pipe_.stageCount(); ++s) {
        if (totalQueued(s) > depth) {
            depth = totalQueued(s);
            best = s;
        }
    }
    if (best < 0)
        return;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const KernelSpec& spec = specs_[i];
        if (std::find(spec.stages.begin(), spec.stages.end(), best)
            == spec.stages.end())
            continue;
        --refillBudget_;
        ++refills_;
        if (tracer_)
            tracer_->instant(TraceKind::Refill, 0, sim_.now(), best,
                             static_cast<std::int32_t>(depth));
        VP_DEBUG("online tuner: refilling `" << spec.name << "` ("
                 << depth << " items stalled)");
        launchSpec(static_cast<int>(i), {}, true);
        return;
    }
}

bool
GroupsRunner::armAdaptive(const AdaptiveConfig& cfg)
{
    // Adjustable targets: fine-pipeline specs in groups with at
    // least two of them (a lone fine stage has nobody to trade
    // block budget with). Under sharding only locally homed groups
    // built specs, so each device's controller is independent.
    adaptTargets_.clear();
    std::map<int, int> finePerGroup;
    for (const KernelSpec& spec : specs_)
        if (spec.fine)
            ++finePerGroup[spec.groupIdx];
    std::vector<int> caps;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const KernelSpec& spec = specs_[i];
        if (!spec.fine || finePerGroup[spec.groupIdx] < 2)
            continue;
        adaptTargets_.push_back(static_cast<int>(i));
        // A receiver may grow past its tuned budget up to the
        // occupancy limit of its own kernel.
        caps.push_back(std::max(
            spec.blocksPerSm,
            maxBlocksPerSm(dev_.config(), spec.res, spec.threads)
                .blocksPerSm));
    }
    if (adaptTargets_.size() < 2) {
        adaptTargets_.clear();
        return false;
    }
    for (int t : adaptTargets_) {
        int s = specs_[static_cast<std::size_t>(t)].stages.front();
        queues_[static_cast<std::size_t>(s)]->enableDepthEwma(
            cfg.ewmaAlpha);
        for (auto& sh : shards_)
            (*sh)[static_cast<std::size_t>(s)]->enableDepthEwma(
                cfg.ewmaAlpha);
    }
    adaptCfg_ = cfg;
    adaptIdle_.assign(specs_.size(), 0.0);
    adaptIdleLast_.assign(specs_.size(), 0.0);
    adaptCtl_ = std::make_unique<AdaptiveController>(
        cfg, std::move(caps));
    adaptiveArmed_ = true;
    return true;
}

double
GroupsRunner::adaptDepth(int specIdx) const
{
    int s = specs_[static_cast<std::size_t>(specIdx)].stages.front();
    double d = queues_[static_cast<std::size_t>(s)]->depthEwma();
    for (const auto& sh : shards_)
        d += (*sh)[static_cast<std::size_t>(s)]->depthEwma();
    return d;
}

void
GroupsRunner::adaptEpoch()
{
    if (!adaptCtl_)
        return;
    std::vector<AdaptiveLoad> loads;
    loads.reserve(adaptTargets_.size());
    for (int t : adaptTargets_) {
        const KernelSpec& spec = specs_[static_cast<std::size_t>(t)];
        AdaptiveLoad l;
        l.depth = adaptDepth(t);
        l.blocks = spec.blocksPerSm;
        l.group = spec.groupIdx;
        l.drained = !futureWorkPossible(spec.stages.front());
        // Occupancy: poll-wait cycles this spec's blocks burned
        // since the last epoch, normalised by the block-time the
        // epoch offered them.
        double idleDelta = adaptIdle_[static_cast<std::size_t>(t)]
            - adaptIdleLast_[static_cast<std::size_t>(t)];
        adaptIdleLast_[static_cast<std::size_t>(t)] =
            adaptIdle_[static_cast<std::size_t>(t)];
        int smCount = spec.sms.empty()
            ? dev_.numSms()
            : static_cast<int>(spec.sms.size());
        l.idleFrac = idleDelta
            / (adaptCfg_.epochCycles
               * std::max(1, spec.blocksPerSm * smCount));
        loads.push_back(l);
    }
    ++adaptEpochs_;
    if (obs_)
        obs_->metrics.counter("adaptive/epochs").add();
    if (tracer_)
        tracer_->instant(TraceKind::AdaptiveEpoch, 0, sim_.now(),
                         static_cast<std::int32_t>(adaptMoves_));
    auto move = adaptCtl_->step(loads);
    if (!move)
        return;
    int from = adaptTargets_[static_cast<std::size_t>(move->from)];
    int to = adaptTargets_[static_cast<std::size_t>(move->to)];
    specs_[static_cast<std::size_t>(from)].blocksPerSm -=
        move->count;
    specs_[static_cast<std::size_t>(to)].blocksPerSm += move->count;
    adaptMoves_ += static_cast<std::uint64_t>(move->count);
    if (obs_)
        obs_->metrics.counter("adaptive/moves")
            .add(static_cast<std::uint64_t>(move->count));
    if (tracer_)
        tracer_->instant(
            TraceKind::AdaptiveMove, 0, sim_.now(),
            specs_[static_cast<std::size_t>(from)].stages.front(),
            specs_[static_cast<std::size_t>(to)].stages.front());
    VP_DEBUG("adaptive: +" << move->count << " block/SM `"
             << specs_[static_cast<std::size_t>(to)].name << "` <- `"
             << specs_[static_cast<std::size_t>(from)].name << "`");
    // The receiver gains its blocks through a refill launch: the
    // wider grid fills the raised per-SM budget and the surplus
    // retreats on arrival. Donor blocks over budget retreat at
    // their next loop iteration (see blockLoop).
    launchSpec(to, specs_[static_cast<std::size_t>(to)].sms, true);
}

} // namespace vp

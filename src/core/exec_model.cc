#include "core/exec_model.hh"

#include "common/error.hh"

namespace vp {

const char*
execModelName(ExecModel m)
{
    switch (m) {
      case ExecModel::RTC: return "RTC";
      case ExecModel::KBK: return "KBK";
      case ExecModel::KbkStream: return "KBK+Stream";
      case ExecModel::Megakernel: return "Megakernel";
      case ExecModel::CoarsePipeline: return "CoarsePipeline";
      case ExecModel::FinePipeline: return "FinePipeline";
      case ExecModel::Hybrid: return "Hybrid";
      case ExecModel::DynamicParallelism: return "DynamicParallelism";
    }
    return "?";
}

const char*
modelMetricName(ModelMetric m)
{
    switch (m) {
      case ModelMetric::Applicability: return "A:Applicability";
      case ModelMetric::TaskParallelism: return "B:Task parallelism";
      case ModelMetric::HardwareUsage: return "C:Hardware usage";
      case ModelMetric::LoadBalance: return "D:Load balance";
      case ModelMetric::DataLocality: return "E:Data locality";
      case ModelMetric::CodeFootprint: return "F:Code footprint";
      case ModelMetric::SimplicityControl: return "G:Simplicity control";
    }
    return "?";
}

const char*
metricLevelName(MetricLevel l)
{
    switch (l) {
      case MetricLevel::Poor: return "poor";
      case MetricLevel::Fair: return "fair";
      case MetricLevel::Good: return "good";
    }
    return "?";
}

MetricLevel
modelCharacteristic(ExecModel m, ModelMetric metric)
{
    using M = ModelMetric;
    using L = MetricLevel;
    switch (m) {
      case ExecModel::RTC:
        // One kernel, one pass: great locality, but cannot express
        // recursion/global sync, merges resource usage and code.
        switch (metric) {
          case M::Applicability: return L::Poor;
          case M::TaskParallelism: return L::Poor;
          case M::HardwareUsage: return L::Poor;
          case M::LoadBalance: return L::Fair;
          case M::DataLocality: return L::Good;
          case M::CodeFootprint: return L::Poor;
          case M::SimplicityControl: return L::Good;
        }
        break;
      case ExecModel::KBK:
        // Small kernels, any structure, but serial stages and launch
        // overhead; no cross-stage parallelism or locality.
        switch (metric) {
          case M::Applicability: return L::Good;
          case M::TaskParallelism: return L::Poor;
          case M::HardwareUsage: return L::Good;
          case M::LoadBalance: return L::Fair;
          case M::DataLocality: return L::Poor;
          case M::CodeFootprint: return L::Good;
          case M::SimplicityControl: return L::Good;
        }
        break;
      case ExecModel::Megakernel:
        // Full task parallelism, but merged register/code pressure.
        switch (metric) {
          case M::Applicability: return L::Good;
          case M::TaskParallelism: return L::Good;
          case M::HardwareUsage: return L::Poor;
          case M::LoadBalance: return L::Good;
          case M::DataLocality: return L::Fair;
          case M::CodeFootprint: return L::Poor;
          case M::SimplicityControl: return L::Good;
        }
        break;
      case ExecModel::CoarsePipeline:
        // Per-stage kernels on exclusive SMs: small kernels, task
        // parallel, but whole-SM granularity wastes partial SMs.
        switch (metric) {
          case M::Applicability: return L::Good;
          case M::TaskParallelism: return L::Good;
          case M::HardwareUsage: return L::Good;
          case M::LoadBalance: return L::Poor;
          case M::DataLocality: return L::Fair;
          case M::CodeFootprint: return L::Good;
          case M::SimplicityControl: return L::Fair;
        }
        break;
      case ExecModel::FinePipeline:
        // Block-granular mapping: best utilization and locality, but
        // a large, tricky configuration space.
        switch (metric) {
          case M::Applicability: return L::Good;
          case M::TaskParallelism: return L::Good;
          case M::HardwareUsage: return L::Good;
          case M::LoadBalance: return L::Good;
          case M::DataLocality: return L::Good;
          case M::CodeFootprint: return L::Good;
          case M::SimplicityControl: return L::Poor;
        }
        break;
      default:
        break;
    }
    VP_FATAL("no Figure-6 characteristics for model "
             << execModelName(m));
}

} // namespace vp

/**
 * @file
 * The VersaPipe runtime: runners translate a PipelineConfig into
 * kernels, streams, SM bindings and block programs on the simulated
 * device, implementing the execution models of sections 4-5.
 *
 *  - GroupsRunner: RTC / Megakernel / coarse / fine / hybrid via
 *    persistent blocks, SM mapping and block mapping (Fig. 8).
 *  - KbkRunner: host-sequenced kernel-by-kernel, optionally with
 *    per-flow streams (Fig. 3b / Fig. 13).
 *  - DpRunner: CUDA dynamic-parallelism comparison (sec 8.4).
 */

#ifndef VP_CORE_RUNTIME_HH
#define VP_CORE_RUNTIME_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/adaptive.hh"
#include "core/model_config.hh"
#include "core/pipeline.hh"
#include "core/recovery.hh"
#include "core/run_result.hh"
#include "core/shard.hh"
#include "core/stage.hh"
#include "gpu/block.hh"
#include "gpu/host.hh"
#include "obs/obs.hh"
#include "queueing/pending_counter.hh"

namespace vp {

class RunnerBase;
class FaultInjector;

/**
 * Wiring of one runner into a multi-device shard: its position in
 * the group, the shared termination counter, and callbacks into the
 * group coordinator for remote-work queries and cross-device item
 * forwarding. Null (the default) runs single-device exactly as
 * before — every shard hook is behind a null check.
 */
struct ShardContext
{
    /** This runner's device index within the group. */
    int deviceIndex = 0;
    /** Devices in the group. */
    int numDevices = 1;
    /** First global trace track of this device's SMs. */
    int smTrackBase = 0;
    /** Stage placement over the group; owned by the caller. */
    const ShardPlan* plan = nullptr;
    /** Group-wide outstanding-work counter; owned by the caller. */
    PendingCounter* sharedPending = nullptr;
    /**
     * True when another device (or an in-flight transfer) may still
     * generate work for any stage in the mask. Consulted by block
     * exit decisions so a device does not retire its blocks while a
     * remote producer is still running.
     */
    std::function<bool(StageMask)> remoteWork;
    /**
     * Forward one item of a pinned stage toward its home device:
     * (stage, payload bytes, provenance id, deliver closure). The
     * coordinator pays the interconnect cost and delivers at arrival
     * time; the id (0 when untracked) lets it record the transfer on
     * the item's provenance lineage.
     */
    std::function<void(int, int, std::uint64_t,
                       std::function<void(QueueBase&)>)>
        forward;
    /**
     * Credit probe for bounded stages pinned remotely: true when the
     * stage's home queue is out of credit (home depth + in-flight
     * transfers >= home capacity), so producers on this device must
     * backpressure exactly like the home device's own producers.
     */
    std::function<bool(int)> remoteFull;
    /**
     * Execution fence for host-parallel runs. Stage execute() is
     * arbitrary application code and may touch state shared across
     * devices (join counters, shared image levels), so batches must
     * run in the group's merged event order, never concurrently.
     * Called by processBatch before any application code runs;
     * blocks until every peer device has simulated past this
     * device's current event. Null everywhere except the
     * host-parallel group loop.
     */
    std::function<void()> execFence;
};

/**
 * Optional fault-injection/recovery wiring handed to a runner. Both
 * pointers may be null (the default): the runner then takes the
 * uninstrumented hot path and behaves exactly as before.
 */
struct FaultContext
{
    /** Fault decision oracle; owned by the caller (Engine). */
    FaultInjector* injector = nullptr;
    /** Retry/backoff policy; owned by the caller. */
    const RecoveryConfig* recovery = nullptr;
    /** Observability bundle (tracer/metrics/histograms); owned by
     *  the caller. Null runs fully uninstrumented. */
    ObsData* obs = nullptr;
    /** Multi-device shard wiring; null runs single-device. */
    const ShardContext* shard = nullptr;
};

/** One stage's input queues (per execution flow). */
using QueueSet = std::vector<std::unique_ptr<QueueBase>>;

/**
 * Handed to AppDriver::seed to push initial data items into stage
 * input queues (the paper's VersaPipe::insertIntoQueue).
 */
class Seeder
{
  public:
    /** Insert @p items into the input queue of stage @p S. */
    template <typename S>
    void
    insert(std::vector<typename S::DataItemType> items)
    {
        using T = typename S::DataItemType;
        int idx = pipe_->indexOf<S>();
        int n = static_cast<int>(items.size());
        if (route_) {
            // Sharded seeding: the group coordinator routes each
            // item to a device queue by (stage, ordinal).
            for (auto& it : items) {
                QueueBase& q = route_(idx, ordinal_++);
                if (prov_)
                    q.stampNextPushId(prov_->mintSeed());
                typedQueue<T>(q).push(std::move(it));
            }
        } else {
            auto& q = typedQueue<T>(*(*queues_)[idx]);
            for (auto& it : items) {
                if (prov_)
                    q.stampNextPushId(prov_->mintSeed());
                q.push(std::move(it));
            }
        }
        noteSeeded_(idx, n);
    }

    /** Single-item convenience overload. */
    template <typename S>
    void
    insert(typename S::DataItemType item)
    {
        std::vector<typename S::DataItemType> v;
        v.push_back(std::move(item));
        insert<S>(std::move(v));
    }

  private:
    friend class RunnerBase;
    friend class GroupCoordinator;
    friend class Engine; // builds the sharded serving seeder
    Pipeline* pipe_ = nullptr;
    QueueSet* queues_ = nullptr;
    std::function<void(int, int)> noteSeeded_;
    /** Per-item device routing for sharded seeding (else null). */
    std::function<QueueBase&(int, int)> route_;
    int ordinal_ = 0;
    /** Stamps each seed with a fresh provenance id when armed. */
    ProvenanceTracker* prov_ = nullptr;
};

/**
 * An application the engine can run: owns the pipeline, seeds input,
 * and verifies output against a reference implementation.
 */
class AppDriver
{
  public:
    virtual ~AppDriver() = default;

    /** Application name. */
    virtual std::string name() const = 0;

    /** The stage graph. */
    virtual Pipeline& pipeline() = 0;

    /** Reset application state before a run. */
    virtual void reset() = 0;

    /**
     * Number of independent input flows (e.g., images). Flows matter
     * to the KBK runners: plain KBK processes flows sequentially (the
     * original implementations), KbkStream overlaps them in streams.
     */
    virtual int flowCount() const { return 1; }

    /** Seed the initial items of flow @p flow. */
    virtual void seedFlow(Seeder& seeder, int flow) = 0;

    /** Bytes of input copied host-to-device before the first kernel. */
    virtual double inputBytes() const { return 0.0; }

    /** Check results against the reference; true when correct. */
    virtual bool verify() { return true; }
};

/** Shared machinery of all runners. */
class RunnerBase
{
  public:
    RunnerBase(Simulator& sim, Device& dev, Host& host, Pipeline& pipe,
               const PipelineConfig& cfg, FaultContext fc = {});

    virtual ~RunnerBase() = default;

    /** Seed input and launch the configured execution. */
    virtual void start(AppDriver& driver) = 0;

    /** Gather statistics after the simulation has drained. */
    RunResult collect();

    /** Outstanding-work counter (the group's when sharded). */
    PendingCounter& pending() { return *pendingPtr_; }

    /** Primary input queue of stage @p s. */
    QueueBase& queue(int s) { return *queues_[s]; }

    /**
     * Queue that cross-device deliveries and coordinator seeds for
     * stage @p stage should land in. @p hint spreads deliveries over
     * queue shards under distributed queues (GroupsRunner override).
     */
    virtual QueueBase&
    deliveryQueue(int stage, std::uint64_t hint)
    {
        (void)hint;
        return *queues_[stage];
    }

    /**
     * True when this runner holds work for any stage in @p relevant:
     * queued items, in-flight batches, or buffered retries. The
     * group coordinator queries it across devices to decide whether
     * a remote device may still produce work.
     */
    bool localWork(StageMask relevant) const;

    /**
     * Bitmask of stages this runner currently holds work for
     * (localWork(m) == (localWorkMask() & m) != 0). The host-parallel
     * coordinator snapshots it at window barriers so remote-work
     * queries stay deterministic.
     */
    StageMask localWorkMask() const;

    /**
     * Monotonic heartbeat sampled by the engine's watchdog between
     * run slices: total queue traffic (pushes + pops across every
     * queue set) plus dead-lettered items. Any batch fetch, output
     * commit, redelivery or dead-letter moves it; a wedged pipeline
     * — every block parked in commit-wait polling full queues — does
     * not. Computed from statistics both batch paths already keep,
     * so the heartbeat costs the hot path nothing.
     */
    std::uint64_t drainProgress() const;

    /**
     * Multi-line snapshot of where work is stuck: per-stage queue
     * depths/capacities, in-flight and buffered counts, dead
     * letters, and the per-SM resident-block map.
     */
    std::string diagnoseStall() const;

    /** Fault/recovery counters accumulated so far. */
    const FaultRecoveryStats& faultStats() const { return faultStats_; }

    /**
     * Register this runner's live-state probes (per-stage queue
     * depths, resident blocks, occupancy, pending work, in-flight
     * retries) on the run's sampler. Called by the engine once,
     * before the run starts.
     */
    void registerProbes(Sampler& sampler);

    /** Items currently queued for stage @p s (all queue sets). */
    std::size_t queuedFor(int s) const { return totalQueued(s); }

    /** @name Device-failure failover (group coordinator hooks) @{ */

    /**
     * This device adopted stage @p s from a dead peer: flip every
     * queue slot of the stage (remote stubs) to local buffering and
     * restore the stage's configured capacity (@p capacity, 0 =
     * unbounded).
     */
    void takeOverStage(int s, std::size_t capacity);

    /**
     * Drain every queue slot of stage @p s into @p dst (the new
     * home's delivery queue). Called on a dead device's runner at
     * kill time. @return items moved.
     */
    std::size_t evacuateStage(int s, QueueBase& dst);

    /**
     * Buffer one re-routed in-flight delivery for @p stage through
     * this runner's recovery manager: the item waits out one backoff
     * (counting as future work, so blocks keep polling) and then
     * lands in this device's delivery queue. @p hint spreads
     * deliveries over queue shards like a normal delivery.
     */
    void redeliverForeign(int stage, std::uint64_t hint,
                          std::function<void(QueueBase&)> deliver);

    /**
     * Install the redirect consulted when this runner's buffered
     * redeliveries fire; see RecoveryManager::setRedirect. The
     * coordinator returns the current live queue for a stage once
     * this device is dead, null while it is alive.
     */
    void setRecoveryRedirect(std::function<QueueBase*(int)> fn);

    /**
     * Launch kernels for stages this device adopted from a dead
     * peer. Default no-op: only GroupsRunner (the only sharded
     * runner) builds and launches the adopted groups' specs.
     */
    virtual void adoptStages(const std::vector<int>& stages);

    /** @} */

    /** @name Serving (continuous request ingest) @{ */

    /**
     * Seeder for serving-mode epoch injection: pushes land in this
     * runner's queues and count on the pending counter exactly like
     * initial seeding, and each item is stamped with a fresh
     * provenance id when the run tracks provenance. The caller keeps
     * the seeder alive across epochs.
     */
    Seeder serveSeeder();

    /**
     * Serving-mode wake-up after epoch seeding: relaunch kernels for
     * stage groups whose persistent blocks retired while the
     * pipeline sat idle between request bursts. Default no-op — only
     * GroupsRunner serves.
     */
    virtual void serveWake() {}

    /** @} */

    /**
     * Arm the online load-balance controller. @return true when this
     * runner has an adjustable block-to-stage partition (a fine
     * group of >= 2 stages under GroupsRunner); the engine then
     * drives adaptEpoch() at every controller epoch. The base
     * implementation declines — only GroupsRunner overrides it.
     */
    virtual bool armAdaptive(const AdaptiveConfig&) { return false; }

    /** One controller epoch: sample loads, maybe migrate a block. */
    virtual void adaptEpoch() {}

  protected:
    /** Create one queue per stage into @p qs. */
    void makeQueues(QueueSet& qs);

    /** Seed every flow of @p driver into @p qs. */
    void seedAll(AppDriver& driver, QueueSet& qs);

    /** Seed one flow of @p driver into @p qs. */
    void seedFlow(AppDriver& driver, QueueSet& qs, int flow);

    /**
     * True when stage @p s might still receive work: itself or any
     * transitive producer has queued items or in-flight tasks.
     */
    bool futureWorkPossible(int s) const;

    /** futureWorkPossible over a set of stages. */
    bool anyFutureWork(const std::vector<int>& stages) const;

    /**
     * Choose the next stage to serve among @p stages (those with a
     * non-empty queue in @p qs), honoring the configured policy.
     * @return stage index or -1 when all queues are empty.
     */
    int pickStage(const QueueSet& qs,
                  const std::vector<int>& stages) const;

    /**
     * Run one batch of stage @p s on block @p ctx: pop (queue cost),
     * execute (processor sharing), push (queue cost), commit outputs,
     * then invoke @p next. @p maxItems bounds the batch (-1 = the
     * block's natural capacity). Outputs commit into @p pushInto
     * when given (distributed queues push to the block's home
     * shard), otherwise back into @p qs.
     */
    void processBatch(BlockContext& ctx, QueueSet& qs, int s,
                      StageMask inlineMask, int maxItems,
                      EventFn next, QueueSet* pushInto = nullptr);

    /**
     * Fault-instrumented processBatch: consults the injector for
     * fetch faults and slowdowns, routes transient failures through
     * the recovery manager, applies push drop/corruption at commit,
     * and backpressures on full bounded queues. Selected once per
     * run; the plain path never pays for any of it.
     */
    void processBatchFI(BlockContext& ctx, QueueSet& qs, int s,
                        StageMask inlineMask, int maxItems,
                        EventFn next, QueueSet* pushInto = nullptr);

    /**
     * Device hook: @p ctx was evicted by an SM failure mid-batch.
     * Replays or dead-letters its in-flight items, then calls
     * onBlockAborted for subclass bookkeeping.
     */
    void blockAborted(BlockContext& ctx);

    /** Device hook: SM @p sm went offline (after evictions). */
    void smFailed(int sm);

    /** Subclass bookkeeping for an evicted block. */
    virtual void onBlockAborted(BlockContext&) {}

    /** Subclass re-provisioning after an SM failure. */
    virtual void onSmFailed(int) {}

    /** True when the fault-instrumented batch path is active. */
    bool instrumented() const { return instrumentBatches_; }

    /** Tasks a block of stage @p s processes per fetch. */
    int batchCapacity(int s) const;

    /** Block size of stage @p s in its own kernel. */
    int stageBlockThreads(int s) const;

    /** True when a producer of @p s has blocks resident on SM @p sm. */
    bool producerResidentOn(int s, int sm) const;

    /** Register that kernel @p kernelId serves stage @p s. */
    void bindStageKernel(int s, int kernelId);

    Simulator& sim_;
    Device& dev_;
    Host& host_;
    Pipeline& pipe_;
    const PipelineConfig& cfg_;

    QueueSet queues_;
    /** Additional queue sets (flow replicas) included in stats. */
    std::vector<QueueSet*> extraQueueSets_;
    PendingCounter pending_;
    /** Effective counter: &pending_, or the group's when sharded. */
    PendingCounter* pendingPtr_ = &pending_;
    /** Multi-device wiring; null on single-device runs. */
    const ShardContext* shard_ = nullptr;
    /** Global trace-track offset of this device's SMs/stages. */
    int trackBase_ = 0;
    std::vector<std::int64_t> inFlight_;
    std::vector<StageRunStats> stageStats_;
    std::vector<std::vector<int>> stageKernels_;

    std::uint64_t polls_ = 0;
    std::uint64_t retreats_ = 0;
    std::uint64_t refills_ = 0;
    std::uint64_t steals_ = 0;
    std::string configName_;

    /** @name Online load balancing @{ */

    /** True once armAdaptive accepted a controller. */
    bool adaptiveArmed_ = false;
    std::uint64_t adaptEpochs_ = 0;
    std::uint64_t adaptMoves_ = 0;

    /** @} */

    /** Items queued for stage @p s across all queue sets. */
    std::size_t totalQueued(int s) const;

    /** @name Fault injection / recovery @{ */

    /** Decision oracle; null when no fault plan is configured. */
    FaultInjector* injector_ = nullptr;
    /** Effective retry/backoff policy (defaults when none given). */
    RecoveryConfig recoveryCfg_;
    RecoveryManager recovery_;
    FaultRecoveryStats faultStats_;
    /** True when batches route through processBatchFI. */
    bool instrumentBatches_ = false;
    /** True when executed items are captured for SM-kill replay. */
    bool captureForReplay_ = false;

    /** A batch between fetch and commit, replayable on eviction. */
    struct InFlightBatch
    {
        int stage = 0;
        /** Queue to redeliver into (the one the batch popped). */
        QueueBase* q = nullptr;
        /** Pre-execution copies; empty for non-retryable stages. */
        std::function<void(QueueBase&)> capture;
        int items = 0;
        /** Provenance ids of the executed items (dead-lettered when
         *  a non-retryable abort destroys the batch). */
        std::vector<std::uint64_t> provIds;
    };
    std::map<BlockContext*, InFlightBatch> inFlightBatches_;

    /** @} */

    /** @name Observability @{ */

    /** The run's observability bundle; null when not observing. */
    ObsData* obs_ = nullptr;
    /** The run tracer; null when tracing is off. */
    Tracer* tracer_ = nullptr;
    /** The run's provenance tracker; null when not armed. */
    ProvenanceTracker* prov_ = nullptr;

    /** Record one finished stage batch (trace span + histogram). */
    void
    noteBatchDone(int s, int smId, Tick start, int items)
    {
        Tick dur = sim_.now() - start;
        if (tracer_)
            tracer_->span(TraceKind::StageBatch,
                          static_cast<std::int16_t>(trackBase_ + smId),
                          start, dur, s, items);
        if (obs_
            && static_cast<std::size_t>(s)
                   < obs_->stageBatchCycles.size())
            obs_->stageBatchCycles[static_cast<std::size_t>(s)].add(
                dur);
    }

    /** @} */
};

/** Persistent-block runner for Groups configurations. */
class GroupsRunner : public RunnerBase
{
  public:
    GroupsRunner(Simulator& sim, Device& dev, Host& host,
                 Pipeline& pipe, const PipelineConfig& cfg,
                 FaultContext fc = {});

    void start(AppDriver& driver) override;

    QueueBase& deliveryQueue(int stage, std::uint64_t hint) override;

    bool armAdaptive(const AdaptiveConfig& cfg) override;
    void adaptEpoch() override;

    void adoptStages(const std::vector<int>& stages) override;

    void serveWake() override;

  protected:
    void onBlockAborted(BlockContext& ctx) override;
    void onSmFailed(int sm) override;

  private:
    /** One kernel to launch (a group, or one stage of a fine group). */
    struct KernelSpec
    {
        std::string name;
        std::vector<int> stages;  //!< stages this kernel serves
        StageMask inlineMask = 0; //!< RTC groups: inlined stages
        ResourceUsage res;
        std::vector<int> sms;     //!< allowed SMs (empty = all)
        int blocksPerSm = 1;
        int threads = 256;        //!< block size of this kernel
        int groupIdx = 0;
        bool fine = false;        //!< one stage of a fine group
    };

    void buildSpecs();

    /** Build the specs of config group @p g (buildSpecs body). */
    void buildGroupSpecs(std::size_t g);

    void launchSpec(int specIdx, const std::vector<int>& sms,
                    bool isRefill);
    void blockMain(BlockContext& ctx, int specIdx);
    void blockLoop(BlockContext& ctx, int specIdx, Tick pollBackoff);
    void onKernelComplete();
    void maybeRefill();

    /** The queue set a block on SM @p smId works against. */
    QueueSet& homeQueues(int smId);

    /**
     * Find a queue set holding work for one of @p stages, starting
     * at SM @p smId's home shard and stealing from the others
     * (distributed queues). @return the chosen stage, or -1; sets
     * @p qs to the set it was found in.
     */
    int findWork(int smId, const std::vector<int>& stages,
                 QueueSet*& qs);

    std::vector<KernelSpec> specs_;
    /** Config groups whose specs exist here (home or adopted). */
    std::vector<char> builtGroups_;
    /** Per-SM queue shards when cfg.distributedQueues is set. */
    std::vector<std::unique_ptr<QueueSet>> shards_;
    /** (specIdx, smId) -> resident block count (block mapping). */
    std::map<std::pair<int, int>, int> blockCount_;
    /** Live block -> spec index, for eviction bookkeeping. */
    std::map<BlockContext*, int> blockSpec_;
    int liveKernels_ = 0;
    /** Live kernels per spec index (serving wake-up bookkeeping:
     *  only specs with no live kernel need a relaunch). */
    std::vector<int> specLiveKernels_;
    int refillBudget_ = 64;

    /** @name Online load balancing @{ */

    /** Controller, armed by the engine when a fine group exists. */
    std::unique_ptr<AdaptiveController> adaptCtl_;
    AdaptiveConfig adaptCfg_;
    /** Spec indices whose blocksPerSm the controller may adjust. */
    std::vector<int> adaptTargets_;
    /** Accumulated poll-wait cycles per spec (occupancy signal). */
    std::vector<double> adaptIdle_;
    /** adaptIdle_ snapshot at the previous controller epoch. */
    std::vector<double> adaptIdleLast_;

    /** Smoothed input depth of fine spec @p specIdx's stage. */
    double adaptDepth(int specIdx) const;

    /** @} */
};

/** Host-sequenced kernel-by-kernel runner (plus stream variant). */
class KbkRunner : public RunnerBase
{
  public:
    KbkRunner(Simulator& sim, Device& dev, Host& host, Pipeline& pipe,
              const PipelineConfig& cfg, FaultContext fc = {});

    ~KbkRunner() override;

    void start(AppDriver& driver) override;

  private:
    /** One independent flow being sequenced by the host. */
    struct Flow
    {
        int id = 0;
        Stream* stream = nullptr;
        QueueSet* queues = nullptr;
        bool active = false;
    };

    /**
     * One host launch unit: a single stage, or an RTC-fused chain
     * (the paper's "mixing of KBK and RTC" baseline for
     * Rasterization). Built from cfg.groups when present.
     */
    struct Unit
    {
        int entry;
        StageMask inlineMask = 0;
        ResourceUsage res;
        double hostBytesPerItem = 0.0;
    };

    void buildUnits();
    void startNextFlows();
    void flowPass(Flow& flow);
    void flowStage(Flow& flow, int unitIdx);
    void launchStageKernel(Flow& flow, int unitIdx,
                           std::function<void()> done);
    void flowFinished(Flow& flow);

    std::vector<Unit> units_;

    AppDriver* driver_ = nullptr;
    std::vector<Flow> flows_;
    std::vector<std::unique_ptr<QueueSet>> flowQueues_;
    int nextFlowToSeed_ = 0;
    int activeFlows_ = 0;
};

/** Dynamic-parallelism runner (sec 8.4). */
class DpRunner : public RunnerBase
{
  public:
    DpRunner(Simulator& sim, Device& dev, Host& host, Pipeline& pipe,
             const PipelineConfig& cfg, FaultContext fc = {});

    void start(AppDriver& driver) override;

  protected:
    void onSmFailed(int sm) override;

  private:
    /** Launch one sub-kernel popping @p items items of stage @p s. */
    void spawnKernel(int s, int items, bool fromDevice);

    /** Per-stage count of queued items already assigned a kernel. */
    std::vector<int> claimed_;
};

/** Instantiate the runner for a configuration. */
std::unique_ptr<RunnerBase> makeRunner(Simulator& sim, Device& dev,
                                       Host& host, Pipeline& pipe,
                                       const PipelineConfig& cfg,
                                       FaultContext fc = {});

} // namespace vp

#endif // VP_CORE_RUNTIME_HH

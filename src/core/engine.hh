/**
 * @file
 * Engine: builds a fresh simulated device per run and executes a
 * pipeline application under a given configuration.
 */

#ifndef VP_CORE_ENGINE_HH
#define VP_CORE_ENGINE_HH

#include <cstdint>
#include <optional>

#include "core/model_config.hh"
#include "core/run_result.hh"
#include "core/runtime.hh"
#include "gpu/device_config.hh"

namespace vp {

/** Executes pipeline applications on a simulated device. */
class Engine
{
  public:
    /** @param cfg the device to simulate. */
    explicit Engine(DeviceConfig cfg);

    /** The device configuration runs execute on. */
    const DeviceConfig& deviceConfig() const { return cfg_; }

    /**
     * Run @p driver under @p config to completion.
     * Fatal when the run livelocks or leaves work pending.
     *
     * const — a run builds all mutable state (simulator, device,
     * runner) on its own stack, so distinct drivers can run through
     * the same Engine from different threads concurrently.
     */
    RunResult run(AppDriver& driver,
                  const PipelineConfig& config) const;

    /**
     * Timeout-execute (the auto-tuner primitive of Fig. 10): run,
     * but abandon once virtual time exceeds @p cycleLimit.
     * @return the result, or nullopt on timeout.
     */
    std::optional<RunResult> runTimed(AppDriver& driver,
                                      const PipelineConfig& config,
                                      double cycleLimit) const;

    /** Cap on simulation events per run (livelock guard). */
    void setEventLimit(std::uint64_t limit) { eventLimit_ = limit; }

  private:
    DeviceConfig cfg_;
    std::uint64_t eventLimit_ = 400000000ULL;
};

} // namespace vp

#endif // VP_CORE_ENGINE_HH

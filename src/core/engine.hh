/**
 * @file
 * Engine: builds a fresh simulated device per run and executes a
 * pipeline application under a given configuration.
 */

#ifndef VP_CORE_ENGINE_HH
#define VP_CORE_ENGINE_HH

#include <cstdint>
#include <optional>

#include "core/model_config.hh"
#include "core/recovery.hh"
#include "core/run_result.hh"
#include "core/runtime.hh"
#include "core/shard.hh"
#include "gpu/device_config.hh"
#include "gpu/device_group.hh"
#include "obs/obs.hh"
#include "sim/fault.hh"

namespace vp {

class ServeSession;

/** Executes pipeline applications on a simulated device. */
class Engine
{
  public:
    /** @param cfg the device to simulate. */
    explicit Engine(DeviceConfig cfg);

    /**
     * Multi-device engine: runs shard over the devices of @p group,
     * connected by its simulated interconnect. Single-device entry
     * points (run/runTimed) keep using the first device.
     */
    explicit Engine(DeviceGroupConfig group);

    /** The device configuration runs execute on. */
    const DeviceConfig& deviceConfig() const { return cfg_; }

    /** Devices available to sharded runs (1 without a group). */
    int
    deviceCount() const
    {
        return group_ ? static_cast<int>(group_->devices.size()) : 1;
    }

    /** The group configuration, if constructed with one. */
    const std::optional<DeviceGroupConfig>&
    groupConfig() const
    {
        return group_;
    }

    /**
     * Host threads driving sharded runs (see
     * DeviceGroupConfig::hostThreads). 1 keeps the serial group
     * loop; >1 selects the host-parallel loop when the run is
     * eligible. No effect on an engine without a device group.
     */
    void
    setHostThreads(int threads)
    {
        if (group_)
            group_->hostThreads = threads;
    }

    /** Configured host threads for sharded runs. */
    int
    hostThreads() const
    {
        return group_ ? group_->hostThreads : 1;
    }

    /** @name Fault injection and recovery @{ */

    /**
     * Inject the faults described by @p plan into subsequent runs.
     * Each run constructs its own seeded FaultInjector from the
     * plan, so repeated runs are bit-reproducible.
     */
    void
    setFaultPlan(const FaultPlan& plan)
    {
        plan_ = plan;
    }

    /** Stop injecting faults. */
    void clearFaultPlan() { plan_.reset(); }

    /** The active fault plan, if any. */
    const std::optional<FaultPlan>& faultPlan() const { return plan_; }

    /**
     * Configure retry/backoff/watchdog policy for subsequent runs.
     * Also switches "drained but work left"/watchdog conditions from
     * fatal errors to structured RunResult failures.
     */
    void
    setRecovery(const RecoveryConfig& rc)
    {
        recovery_ = rc;
    }

    /** Drop the recovery policy (defaults apply while a fault plan
     *  is set). */
    void clearRecovery() { recovery_.reset(); }

    /** @} */

    /** @name Observability @{ */

    /**
     * Arm tracing/metrics/sampling for subsequent runs. Each run
     * builds its own ObsData and hands it back through
     * RunResult::obs. Tracing is passive — it records simulated
     * timestamps without scheduling simulation events — so an
     * observed run's event sequence and cycle count are identical to
     * an unobserved one.
     */
    void
    setObservability(const ObsConfig& oc)
    {
        obsCfg_ = oc;
    }

    /** Stop collecting traces/metrics. */
    void clearObservability() { obsCfg_.reset(); }

    /** The armed observability configuration, if any. */
    const std::optional<ObsConfig>&
    observability() const
    {
        return obsCfg_;
    }

    /** @} */

    /** @name Online load balancing @{ */

    /**
     * Arm the adaptive load-balance controller for subsequent runs
     * (core/adaptive.hh). At every controller epoch the engine
     * pauses event delivery — the same zero-sim-event slicing the
     * watchdog and sampler use — samples the smoothed fine-stage
     * queue depths, and lets the controller migrate one block of
     * per-SM budget between stages. A disabled config (the default
     * AdaptiveConfig{}) leaves runs event-for-event identical to an
     * engine that never saw this call; configurations with no fine
     * group simply never arm.
     */
    void
    setAdaptive(const AdaptiveConfig& ac)
    {
        ac.validate();
        adaptiveCfg_ = ac;
    }

    /** Stop adapting. */
    void clearAdaptive() { adaptiveCfg_.reset(); }

    /** The armed adaptive configuration, if any. */
    const std::optional<AdaptiveConfig>&
    adaptive() const
    {
        return adaptiveCfg_;
    }

    /** @} */

    /** @name Serving (continuous request ingest) @{ */

    /**
     * Attach a serving session (core/serve_hook.hh): subsequent runs
     * ingest its requests on zero-sim-event epoch boundaries instead
     * of ending at the first drain. Non-owning — the session must
     * outlive the runs and is normally managed by vp_serve's
     * ServingEngine, which also arms the provenance tracker serving
     * depends on. Serve-mode runs require a Groups configuration and
     * reject scripted fault events.
     */
    void setServeSession(ServeSession* s) { serve_ = s; }

    /** Detach the serving session. */
    void clearServeSession() { serve_ = nullptr; }

    /** The attached serving session, if any. */
    ServeSession* serveSession() const { return serve_; }

    /** @} */

    /**
     * Run @p driver under @p config to completion.
     * Fatal when the run livelocks or leaves work pending.
     *
     * const — a run builds all mutable state (simulator, device,
     * runner) on its own stack, so distinct drivers can run through
     * the same Engine from different threads concurrently.
     */
    RunResult run(AppDriver& driver,
                  const PipelineConfig& config) const;

    /**
     * Timeout-execute (the auto-tuner primitive of Fig. 10): run,
     * but abandon once virtual time exceeds @p cycleLimit.
     * @return the result, or nullopt on timeout.
     */
    std::optional<RunResult> runTimed(AppDriver& driver,
                                      const PipelineConfig& config,
                                      double cycleLimit) const;

    /**
     * Run @p driver sharded over the engine's device group under
     * @p plan. Requires construction with a DeviceGroupConfig and a
     * Groups configuration (ShardPlan::validate). A single-device
     * group with a replicate plan is the degenerate case and matches
     * run() event-for-event.
     */
    RunResult runSharded(AppDriver& driver,
                         const PipelineConfig& config,
                         const ShardPlan& plan) const;

    /** Timeout-execute variant of runSharded (auto-tuner primitive). */
    std::optional<RunResult>
    runShardedTimed(AppDriver& driver, const PipelineConfig& config,
                    const ShardPlan& plan, double cycleLimit) const;

    /** Cap on simulation events per run (livelock guard). */
    void setEventLimit(std::uint64_t limit) { eventLimit_ = limit; }

  private:
    /**
     * Host-parallel sharded loop (engine_group_parallel.cc): one
     * simulator per device, each driven by its own host thread,
     * synchronized in conservative lookahead windows. Dispatched to
     * by runShardedTimed when hostParallelEligible.
     */
    std::optional<RunResult>
    runShardedParallel(AppDriver& driver,
                       const PipelineConfig& config,
                       const ShardPlan& plan, double cycleLimit) const;

    DeviceConfig cfg_;
    std::uint64_t eventLimit_ = 400000000ULL;
    std::optional<FaultPlan> plan_;
    std::optional<RecoveryConfig> recovery_;
    std::optional<ObsConfig> obsCfg_;
    std::optional<AdaptiveConfig> adaptiveCfg_;
    std::optional<DeviceGroupConfig> group_;
    ServeSession* serve_ = nullptr;
};

} // namespace vp

#endif // VP_CORE_ENGINE_HH

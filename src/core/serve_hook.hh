/**
 * @file
 * Engine-side hook for the serving layer (continuous request
 * ingest).
 *
 * A one-shot run seeds everything up front and drains. A serving run
 * instead pauses on *epoch boundaries* — zero-sim-event instants
 * carved out of the supervision slicing loop, the same technique the
 * watchdog and metrics sampler use — and lets an attached
 * ServeSession admit freshly arrived requests and seed them into the
 * live pipeline. Between bursts the pipeline may drain dry; the
 * engine then jumps the clock to the next boundary (legal: no
 * pending events) instead of ending the run, until the session
 * reports itself quiescent.
 *
 * vp_core only sees this abstract interface; the concrete session
 * (request generators, admission control, SLO accounting) lives in
 * vp_serve so the dependency points outward.
 */

#ifndef VP_CORE_SERVE_HOOK_HH
#define VP_CORE_SERVE_HOOK_HH

#include <cstdint>
#include <functional>

#include "sim/simulator.hh"

namespace vp {

class Seeder;
struct ObsData;
struct RunResult;

/** Wiring handed to a ServeSession when its run starts. */
struct ServeBinding
{
    Simulator* sim = nullptr;
    /** Epoch seeding path into the running pipeline. One seeder
     *  lives for the whole run: its routing ordinal keeps rolling
     *  across epochs so sharded seed placement stays deterministic. */
    Seeder* seeder = nullptr;
    /** The run's observability bundle (always present in serve mode;
     *  carries the armed provenance tracker). */
    ObsData* obs = nullptr;
    /** Relaunch kernels whose persistent blocks retired while the
     *  pipeline sat idle between bursts. Call after seeding. */
    std::function<void()> wake;
    /** Monotone queue-traffic counter (pushes + pops + transfer
     *  deliveries) for per-epoch snapshot deltas. */
    std::function<std::uint64_t()> queueTraffic;
};

/**
 * A serving session drives continuous ingest through an engine run.
 * The engine does not own the session (attach with
 * Engine::setServeSession); it must outlive the run. Serving
 * requires a Groups configuration, an armed provenance tracker
 * (lineage closure is how request completion is detected; request
 * roots are force-tracked, so a sampling stride > 1 only thins the
 * pre-seeded app items) and no scripted fault events (their
 * drain-notification triggers assume the one-shot drain).
 */
class ServeSession
{
  public:
    virtual ~ServeSession() = default;

    /** Epoch period in cycles (must be > 0). */
    virtual Tick epochCycles() const = 0;

    /** Bind to a starting run. */
    virtual void begin(const ServeBinding& b) = 0;

    /**
     * One epoch boundary at simulated time @p now: poll arrivals,
     * admit, seed, account completions. @return true while the
     * session may still produce or finish work (the engine keeps
     * slicing); false once fully quiescent, which lets the final
     * drain end the run.
     */
    virtual bool epoch(Tick now) = 0;

    /** Attach serving stats to @p r; @p end is the final sim time.
     *  Called once, before observability finalization. */
    virtual void finish(RunResult& r, Tick end) = 0;
};

} // namespace vp

#endif // VP_CORE_SERVE_HOOK_HH

/**
 * @file
 * Multi-device (sharded) execution: Engine::runSharded runs one
 * pipeline over the devices of a DeviceGroup under a ShardPlan.
 *
 * Each device gets its own runner over the shared simulator; the
 * group coordinator routes seed items to their devices, forwards
 * cross-device pushes through the interconnect, and answers the
 * remote-work queries behind block-exit decisions. One shared
 * PendingCounter covers queued, in-flight and in-transit work, so
 * group-wide termination detection needs no extra protocol: the run
 * drains exactly when the counter does.
 */

#include "core/engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/engine_group_internal.hh"
#include "gpu/device_group.hh"

namespace vp {

Engine::Engine(DeviceGroupConfig group)
    : cfg_(group.devices.empty() ? DeviceConfig{} : group.devices[0])
{
    group.validate();
    group_ = std::move(group);
}

using groupdetail::mergeRunnerResult;

RunResult
Engine::runSharded(AppDriver& driver, const PipelineConfig& config,
                   const ShardPlan& plan) const
{
    auto r = runShardedTimed(driver, config, plan,
                             std::numeric_limits<double>::infinity());
    VP_ASSERT(r.has_value(), "untimed sharded run reported a timeout");
    return *r;
}

std::optional<RunResult>
Engine::runShardedTimed(AppDriver& driver,
                        const PipelineConfig& config,
                        const ShardPlan& plan,
                        double cycleLimit) const
{
    VP_CHECK(group_.has_value(), ErrorCode::Config,
             "runSharded requires an Engine built from a "
             "DeviceGroupConfig");
    const DeviceGroupConfig& gcfg = *group_;
    int n = gcfg.size();

    Pipeline& pipe = driver.pipeline();
    // Timed runs (the tuner's candidate sweep) compare cycle counts
    // across configs, and the conserving tier is fingerprint- but not
    // cycle-identical to this loop; pinned plans under a finite limit
    // therefore stay serial so the sweep's winner is reproducible at
    // any hostThreads. Untimed pinned runs keep the conserving tier.
    bool cycleExact = !plan.anyPinned();
    if (groupdetail::hostParallelEligible(gcfg, n, pipe, config, plan,
                                          plan_)
        && (cycleExact || std::isinf(cycleLimit)))
        return runShardedParallel(driver, config, plan, cycleLimit);

    pipe.validate();
    for (const DeviceConfig& dcfg : gcfg.devices)
        config.validate(pipe, dcfg);
    plan.validate(pipe, config, n);
    driver.reset();
    pipe.resetStages();

    Simulator sim;
    DeviceGroup group(sim, gcfg);
    Interconnect& icx = group.interconnect();

    struct LogClockScope
    {
        bool armed = false;
        explicit LogClockScope(Simulator* s)
        {
            if (Logger::enabled(LogLevel::Trace)) {
                armed = true;
                Logger::setClock([s] { return s->now(); });
            }
        }
        ~LogClockScope()
        {
            if (armed) {
                Logger::setClock({});
                Logger::setSm(-1);
            }
        }
    } logClock(&sim);

    std::optional<FaultInjector> injector;
    RecoveryConfig rc;
    bool faulted = plan_.has_value() || recovery_.has_value();

    std::shared_ptr<ObsData> obs;
    if (obsCfg_) {
        obs = std::make_shared<ObsData>(*obsCfg_, &sim);
        for (int i = 0; i < n; ++i) {
            group.device(i).setTracer(obs->tracerPtr());
            // Streams get 64 tracks per device — far beyond any
            // realistic per-device stream count.
            group.device(i).setTraceTrackBase(group.smTrackBase(i),
                                              i * 64);
        }
    }
    Tracer* tracer = obs ? obs->tracerPtr() : nullptr;
    if (tracer) {
        icx.setTraceHook([tracer](int src, int dst, double bytes,
                                  Tick submit, Tick arrival) {
            tracer->span(TraceKind::Transfer,
                         static_cast<std::int16_t>(dst), submit,
                         arrival - submit, src,
                         static_cast<std::int32_t>(bytes));
        });
    }

    if (plan_) {
        plan_->validate();
        injector.emplace(*plan_);
        for (int i = 0; i < n; ++i)
            group.device(i).setFaultInjector(&*injector);
    }
    if (recovery_) {
        recovery_->validate();
        rc = *recovery_;
    }

    // Group-wide termination: one counter spans queued items,
    // in-flight batches and in-transit transfers on every device
    // (producers commit outputs with add() before sub()bing their
    // inputs, so the counter never dips to zero while work exists).
    PendingCounter pending;

    // Contexts must outlive the runners that point at them; the
    // callback members are filled in after the runners exist.
    std::vector<ShardContext> shardCtxs(static_cast<std::size_t>(n));
    std::vector<std::unique_ptr<RunnerBase>> runners;
    for (int i = 0; i < n; ++i) {
        ShardContext& sc = shardCtxs[static_cast<std::size_t>(i)];
        sc.deviceIndex = i;
        sc.numDevices = n;
        sc.smTrackBase = group.smTrackBase(i);
        sc.plan = &plan;
        sc.sharedPending = &pending;

        FaultContext fc;
        fc.shard = &sc;
        if (injector)
            fc.injector = &*injector;
        if (recovery_)
            fc.recovery = &*recovery_;
        if (obs)
            fc.obs = obs.get();
        runners.push_back(makeRunner(sim, group.device(i),
                                     group.host(i), pipe, config,
                                     fc));
    }

    // Cross-device forwarding: a push into a remote stub on device i
    // rides the interconnect to the stage's home device and lands in
    // that runner's delivery queue at arrival time. The rolling
    // sequence spreads deliveries over queue shards deterministically.
    //
    // Bounded stages keep backpressure across devices via a credit
    // scheme: per-stage counters charge every in-flight transfer
    // against the home queue's capacity, and the remote stubs'
    // full() consults them (remoteFull below). Without the in-flight
    // term a burst of transfers could overshoot the bound arbitrarily
    // between submission and delivery.
    auto deliverySeq =
        std::make_shared<std::uint64_t>(0);
    auto inTransit = std::make_shared<std::vector<std::int64_t>>(
        static_cast<std::size_t>(pipe.stageCount()), 0);
    for (int i = 0; i < n; ++i) {
        ShardContext& sc = shardCtxs[static_cast<std::size_t>(i)];
        sc.forward = [&icx, &runners, &plan, i, deliverySeq,
                      inTransit](int stage, int bytes,
                                 std::function<void(QueueBase&)>
                                     deliver) {
            int home = plan.homeDevice(stage);
            VP_ASSERT(home >= 0, "remote forward of an unpinned stage");
            ++(*inTransit)[static_cast<std::size_t>(stage)];
            icx.transfer(
                i, home, static_cast<double>(bytes),
                [&runners, home, stage, deliverySeq, inTransit,
                 deliver = std::move(deliver)] {
                    --(*inTransit)[static_cast<std::size_t>(stage)];
                    deliver(
                        runners[static_cast<std::size_t>(home)]
                            ->deliveryQueue(stage, (*deliverySeq)++));
                });
        };
        sc.remoteFull = [&runners, &plan, &pipe,
                         inTransit](int stage) -> bool {
            std::size_t cap = pipe.stage(stage).queueCapacity;
            if (cap == 0)
                return false;
            int home = plan.homeDevice(stage);
            if (home < 0)
                return false;
            std::size_t charged =
                runners[static_cast<std::size_t>(home)]->queuedFor(
                    stage)
                + static_cast<std::size_t>(
                    (*inTransit)[static_cast<std::size_t>(stage)]);
            return charged >= cap;
        };
        sc.remoteWork = [&icx, &runners, i,
                         n](StageMask relevant) -> bool {
            if (icx.inFlight() > 0)
                return true;
            for (int j = 0; j < n; ++j)
                if (j != i
                    && runners[static_cast<std::size_t>(j)]->localWork(
                        relevant))
                    return true;
            return false;
        };
    }

    // Scripted SM faults, per target device; cancelled on drain.
    if (plan_ && !plan_->smEvents.empty()) {
        auto handles = std::make_shared<std::vector<EventHandle>>();
        for (const SmFaultEvent& e : plan_->smEvents) {
            VP_CHECK(e.device >= 0 && e.device < n, ErrorCode::Config,
                     "fault plan: device " << e.device
                     << " out of range (group has " << n
                     << " devices)");
            Device& dev = group.device(e.device);
            VP_CHECK(e.sm >= 0 && e.sm < dev.numSms(),
                     ErrorCode::Config,
                     "fault plan: SM " << e.sm
                     << " out of range (device " << e.device
                     << " has " << dev.numSms() << " SMs)");
            handles->push_back(sim.at(e.time, [&dev, e] {
                if (dev.sm(e.sm).offline())
                    return;
                if (e.kind == SmFaultEvent::Kind::Kill)
                    dev.failSm(e.sm);
                else
                    dev.degradeSm(e.sm, e.factor);
            }));
        }
        pending.notifyOnDrain([&sim, handles] {
            for (EventHandle h : *handles)
                sim.cancel(h);
        });
    }

    if (obs && obs->sampler.enabled()) {
        for (auto& r : runners)
            r->registerProbes(obs->sampler);
        obs->sampler.addSeries("interconnect_in_flight", [&icx] {
            return static_cast<double>(icx.inFlight());
        });
    }

    // Per-device controllers: each armed runner rebalances its own
    // locally homed fine group; epochs fire group-wide in device
    // order at the same slice boundaries.
    bool adaptOn = false;
    if (adaptiveCfg_ && adaptiveCfg_->enabled) {
        adaptiveCfg_->validate();
        for (auto& r : runners)
            if (r->armAdaptive(*adaptiveCfg_))
                adaptOn = true;
    }

    GroupCoordinator::seedAll(driver, pipe, runners, plan, pending);
    for (auto& r : runners)
        r->start(driver);

    auto groupProgress = [&runners, &icx] {
        std::uint64_t p = icx.stats().delivered;
        for (const auto& r : runners)
            p += r->drainProgress();
        return p;
    };
    auto groupDiagnose = [&runners, &icx] {
        std::ostringstream os;
        os << "interconnect: inFlight=" << icx.inFlight() << "\n";
        for (std::size_t i = 0; i < runners.size(); ++i)
            os << "device " << i << ":\n"
               << runners[i]->diagnoseStall();
        return os.str();
    };

    bool watchdogOn = faulted && rc.watchdogIntervalCycles > 0.0;
    bool timeoutOn = faulted && rc.drainTimeoutCycles > 0.0;
    bool samplerOn = obs && obs->sampler.enabled();

    bool drained;
    std::optional<RunOutcome> failure;
    std::string reason;
    if (!watchdogOn && !timeoutOn && !samplerOn && !adaptOn) {
        drained = sim.runUntil(cycleLimit, eventLimit_);
    } else {
        // Same supervision slicing as the single-device engine
        // (engine.cc), with progress and diagnostics group-wide.
        std::uint64_t lastProgress = groupProgress();
        std::uint64_t lastEvents = sim.eventsRun();
        int stalledChecks = 0;
        constexpr Tick kInf = std::numeric_limits<Tick>::infinity();
        Tick checkpoint =
            watchdogOn ? rc.watchdogIntervalCycles : kInf;
        Tick sampNext = samplerOn ? obs->sampler.interval() : kInf;
        Tick adaptNext = adaptOn ? adaptiveCfg_->epochCycles : kInf;
        for (;;) {
            Tick target =
                std::min({checkpoint, sampNext, adaptNext,
                          cycleLimit});
            if (timeoutOn)
                target = std::min(target, rc.drainTimeoutCycles);
            std::uint64_t budget = eventLimit_ > sim.eventsRun()
                ? eventLimit_ - sim.eventsRun()
                : 0;
            drained = sim.runUntil(target, budget);
            if (drained)
                break;
            if (sim.eventsRun() >= eventLimit_ || target >= cycleLimit)
                break;
            if (samplerOn && target >= sampNext) {
                obs->sampler.sampleAt(sampNext);
                sampNext += obs->sampler.interval();
            }
            if (adaptOn && target >= adaptNext) {
                for (auto& r : runners)
                    r->adaptEpoch();
                adaptNext += adaptiveCfg_->epochCycles;
            }
            if (timeoutOn && target >= rc.drainTimeoutCycles) {
                failure = RunOutcome::DrainTimeout;
                reason = "global drain timeout ("
                    + std::to_string(rc.drainTimeoutCycles)
                    + " cycles) elapsed\n" + groupDiagnose();
                break;
            }
            if (!watchdogOn || target < checkpoint)
                continue;
            std::uint64_t progress = groupProgress();
            std::uint64_t events = sim.eventsRun();
            if (tracer) {
                tracer->instant(TraceKind::WatchdogCheck, 0,
                                sim.now(), stalledChecks);
            }
            if (progress != lastProgress) {
                stalledChecks = 0;
            } else if (events != lastEvents && pending.value() > 0) {
                if (++stalledChecks >= rc.watchdogStallChecks) {
                    failure = RunOutcome::Stalled;
                    reason = "watchdog: no drain progress for "
                        + std::to_string(stalledChecks)
                        + " checks\n" + groupDiagnose();
                    break;
                }
            }
            lastProgress = progress;
            lastEvents = events;
            checkpoint += rc.watchdogIntervalCycles;
        }
    }

    auto collectMerged = [&]() {
        RunResult merged = runners[0]->collect();
        std::vector<RunResult> per;
        per.push_back(merged);
        for (int i = 1; i < n; ++i) {
            per.push_back(runners[static_cast<std::size_t>(i)]
                              ->collect());
            mergeRunnerResult(merged, per.back());
        }
        double steals = 0.0;
        double adEpochs = 0.0;
        double adMoves = 0.0;
        for (const RunResult& ri : per) {
            steals += ri.extra.get("steals");
            adEpochs += ri.extra.get("adaptiveEpochs");
            adMoves += ri.extra.get("adaptiveMoves");
        }
        merged.extra.set("steals", steals);
        if (adaptOn) {
            merged.extra.set("adaptiveEpochs", adEpochs);
            merged.extra.set("adaptiveMoves", adMoves);
        }

        merged.cycles = sim.now();
        merged.ms = gcfg.devices[0].cyclesToMs(merged.cycles);
        merged.simEvents = sim.eventsRun();
        merged.deviceName = gcfg.describe();
        merged.configName = config.describe(pipe) + " shard="
            + plan.describe();
        merged.interconnect = icx.stats();

        double issue = 0.0;
        for (int i = 0; i < n; ++i) {
            ShardDeviceStats sd;
            sd.deviceName = gcfg.devices[static_cast<std::size_t>(i)]
                                .name;
            sd.device = per[static_cast<std::size_t>(i)].device;
            sd.host = per[static_cast<std::size_t>(i)].host;
            sd.smUtilization =
                per[static_cast<std::size_t>(i)].smUtilization;
            merged.shardDevices.push_back(std::move(sd));
            for (int s = 0; s < group.device(i).numSms(); ++s)
                issue += group.device(i).sm(s).stats().issueCycles;
        }
        if (merged.cycles > 0.0 && group.totalSms() > 0)
            merged.smUtilization =
                issue / (merged.cycles * group.totalSms());
        return merged;
    };

    auto finishObs = [&](RunResult& result) {
        if (!obs)
            return;
        if (tracer) {
            tracer->span(TraceKind::RunSpan, 0, 0.0, sim.now(),
                         tracer->intern(result.configName));
        }
        result.obs = obs;
    };
    auto attachTraceTail = [&](std::string& why) {
        if (tracer && obs->config.diagnosticTailEvents > 0) {
            why += "\nlast trace events:\n"
                + tracer->tail(obs->config.diagnosticTailEvents);
        }
    };

    if (failure) {
        RunResult result = collectMerged();
        result.completed = false;
        result.outcome = *failure;
        attachTraceTail(reason);
        result.failureReason = std::move(reason);
        result.faults.watchdogFired = *failure == RunOutcome::Stalled;
        finishObs(result);
        return result;
    }
    if (!drained) {
        VP_CHECK(sim.eventsRun() < eventLimit_, ErrorCode::Livelock,
                 "sharded run exceeded the event limit ("
                 << eventLimit_ << ") — livelock in config `"
                 << config.describe(pipe) << "`?");
        VP_DEBUG("engine: sharded timeout at " << sim.now()
                 << " cycles for `" << config.describe(pipe) << "`");
        return std::nullopt;
    }
    if (pending.value() != 0) {
        if (faulted) {
            RunResult result = collectMerged();
            result.completed = false;
            result.outcome = RunOutcome::Stalled;
            std::string why = "drained events but work is left\n"
                + groupDiagnose();
            attachTraceTail(why);
            result.failureReason = std::move(why);
            finishObs(result);
            return result;
        }
        VP_REQUIRE(false,
                   "sharded run drained events but left work pending "
                   "(config `" << config.describe(pipe) << "`)");
    }

    RunResult result = collectMerged();
    result.completed = driver.verify();
    if (result.completed) {
        result.outcome = RunOutcome::Completed;
    } else if (result.faults.deadLettered > 0
               || result.faults.droppedPushes > 0) {
        result.outcome = RunOutcome::Degraded;
    } else {
        result.outcome = RunOutcome::VerifyFailed;
    }
    finishObs(result);
    return result;
}

} // namespace vp

/**
 * @file
 * Multi-device (sharded) execution: Engine::runSharded runs one
 * pipeline over the devices of a DeviceGroup under a ShardPlan.
 *
 * Each device gets its own runner over the shared simulator; the
 * group coordinator routes seed items to their devices, forwards
 * cross-device pushes through the interconnect, and answers the
 * remote-work queries behind block-exit decisions. One shared
 * PendingCounter covers queued, in-flight and in-transit work, so
 * group-wide termination detection needs no extra protocol: the run
 * drains exactly when the counter does.
 */

#include "core/engine.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "core/engine_group_internal.hh"
#include "core/serve_hook.hh"
#include "gpu/device_group.hh"

namespace vp {

Engine::Engine(DeviceGroupConfig group)
    : cfg_(group.devices.empty() ? DeviceConfig{} : group.devices[0])
{
    group.validate();
    group_ = std::move(group);
}

using groupdetail::mergeRunnerResult;

namespace {

/**
 * Coordinator-side failover bookkeeping of one sharded run. Armed
 * only when the fault plan scripts device or link events; when
 * disarmed every consulting site takes its pre-failover path, so
 * runs without such plans stay event-for-event identical.
 */
struct FailoverState
{
    bool armed = false;
    /** Per device: still accepting work. */
    std::vector<char> alive;
    /** Per stage: re-homed device, or -1 for the plan's home. */
    std::vector<int> homeOverride;
    /** Per device: items drained off it when it died. */
    std::vector<std::uint64_t> evacuated;
    /** Per device: stages this survivor adopted. */
    std::vector<int> rehomedIn;
    /** Per stage: items dead-lettered at failed-link push sites. */
    std::vector<std::uint64_t> linkDeadLettered;
    int devicesFailed = 0;
    int linksFailed = 0;
    int linksDegraded = 0;
    int stagesRehomed = 0;
    std::uint64_t transfersRedelivered = 0;

    int
    curHome(int stage, const ShardPlan& plan) const
    {
        int o = homeOverride[static_cast<std::size_t>(stage)];
        return o >= 0 ? o : plan.homeDevice(stage);
    }

    /**
     * Live landing device for @p stage: the (possibly re-homed)
     * pinned home, or for replicated stages the lowest-index
     * survivor. Pinned homes are always live outside the kill
     * handler itself — death immediately re-homes them.
     */
    int
    liveTarget(int stage, const ShardPlan& plan) const
    {
        int home = curHome(stage, plan);
        if (home >= 0)
            return home;
        for (std::size_t d = 0; d < alive.size(); ++d)
            if (alive[d])
                return static_cast<int>(d);
        return 0;
    }
};

} // namespace

RunResult
Engine::runSharded(AppDriver& driver, const PipelineConfig& config,
                   const ShardPlan& plan) const
{
    auto r = runShardedTimed(driver, config, plan,
                             std::numeric_limits<double>::infinity());
    VP_ASSERT(r.has_value(), "untimed sharded run reported a timeout");
    return *r;
}

std::optional<RunResult>
Engine::runShardedTimed(AppDriver& driver,
                        const PipelineConfig& config,
                        const ShardPlan& plan,
                        double cycleLimit) const
{
    VP_CHECK(group_.has_value(), ErrorCode::Config,
             "runSharded requires an Engine built from a "
             "DeviceGroupConfig");
    const DeviceGroupConfig& gcfg = *group_;
    int n = gcfg.size();

    Pipeline& pipe = driver.pipeline();
    // Timed runs (the tuner's candidate sweep) compare cycle counts
    // across configs, and the conserving tier is fingerprint- but not
    // cycle-identical to this loop; pinned plans under a finite limit
    // therefore stay serial so the sweep's winner is reproducible at
    // any hostThreads. Untimed pinned runs keep the conserving tier.
    bool cycleExact = !plan.anyPinned();
    // Provenance recording is single-threaded host state (one
    // tracker, one id sequence); armed runs stay on the serial loop.
    // Serving runs stay serial too: the session's epoch boundaries
    // and the provenance tracker they ride are single-threaded host
    // state (and serving always arms provenance anyway).
    if (groupdetail::hostParallelEligible(gcfg, n, pipe, config, plan,
                                          plan_)
        && (cycleExact || std::isinf(cycleLimit))
        && !(obsCfg_ && obsCfg_->provenance) && !serve_)
        return runShardedParallel(driver, config, plan, cycleLimit);

    pipe.validate();
    for (const DeviceConfig& dcfg : gcfg.devices)
        config.validate(pipe, dcfg);
    plan.validate(pipe, config, n);
    driver.reset();
    pipe.resetStages();

    Simulator sim;
    DeviceGroup group(sim, gcfg);
    Interconnect& icx = group.interconnect();

    struct LogClockScope
    {
        bool armed = false;
        explicit LogClockScope(Simulator* s)
        {
            if (Logger::enabled(LogLevel::Trace)) {
                armed = true;
                Logger::setClock([s] { return s->now(); });
            }
        }
        ~LogClockScope()
        {
            if (armed) {
                Logger::setClock({});
                Logger::setSm(-1);
            }
        }
    } logClock(&sim);

    std::optional<FaultInjector> injector;
    RecoveryConfig rc;
    bool faulted = plan_.has_value() || recovery_.has_value();

    std::shared_ptr<ObsData> obs;
    if (obsCfg_) {
        obs = std::make_shared<ObsData>(*obsCfg_, &sim);
        for (int i = 0; i < n; ++i) {
            group.device(i).setTracer(obs->tracerPtr());
            // Streams get 64 tracks per device — far beyond any
            // realistic per-device stream count.
            group.device(i).setTraceTrackBase(group.smTrackBase(i),
                                              i * 64);
        }
    }
    Tracer* tracer = obs ? obs->tracerPtr() : nullptr;
    ProvenanceTracker* prov = obs ? obs->provenancePtr() : nullptr;
    if (tracer) {
        icx.setTraceHook([tracer](int src, int dst, double bytes,
                                  Tick submit, Tick arrival) {
            tracer->span(TraceKind::Transfer,
                         static_cast<std::int16_t>(dst), submit,
                         arrival - submit, src,
                         static_cast<std::int32_t>(bytes));
        });
    }

    if (plan_) {
        plan_->validate();
        // Eager target validation: scripted events aimed at devices,
        // SMs, stages or links this group does not have are rejected
        // up front instead of silently never firing.
        std::vector<int> smsPerDevice;
        for (const DeviceConfig& dcfg : gcfg.devices)
            smsPerDevice.push_back(dcfg.numSms);
        plan_->validateTargets(smsPerDevice, pipe.stageCount());
        injector.emplace(*plan_);
        for (int i = 0; i < n; ++i)
            group.device(i).setFaultInjector(&*injector);
    }
    if (recovery_) {
        recovery_->validate();
        rc = *recovery_;
    }

    // Group-wide termination: one counter spans queued items,
    // in-flight batches and in-transit transfers on every device
    // (producers commit outputs with add() before sub()bing their
    // inputs, so the counter never dips to zero while work exists).
    PendingCounter pending;

    // Contexts must outlive the runners that point at them; the
    // callback members are filled in after the runners exist.
    std::vector<ShardContext> shardCtxs(static_cast<std::size_t>(n));
    std::vector<std::unique_ptr<RunnerBase>> runners;
    for (int i = 0; i < n; ++i) {
        ShardContext& sc = shardCtxs[static_cast<std::size_t>(i)];
        sc.deviceIndex = i;
        sc.numDevices = n;
        sc.smTrackBase = group.smTrackBase(i);
        sc.plan = &plan;
        sc.sharedPending = &pending;

        FaultContext fc;
        fc.shard = &sc;
        if (injector)
            fc.injector = &*injector;
        if (recovery_)
            fc.recovery = &*recovery_;
        if (obs)
            fc.obs = obs.get();
        runners.push_back(makeRunner(sim, group.device(i),
                                     group.host(i), pipe, config,
                                     fc));
    }

    // Cross-device forwarding: a push into a remote stub on device i
    // rides the interconnect to the stage's home device and lands in
    // that runner's delivery queue at arrival time. The rolling
    // sequence spreads deliveries over queue shards deterministically.
    //
    // Bounded stages keep backpressure across devices via a credit
    // scheme: per-stage counters charge every in-flight transfer
    // against the home queue's capacity, and the remote stubs'
    // full() consults them (remoteFull below). Without the in-flight
    // term a burst of transfers could overshoot the bound arbitrarily
    // between submission and delivery.
    auto deliverySeq =
        std::make_shared<std::uint64_t>(0);
    auto inTransit = std::make_shared<std::vector<std::int64_t>>(
        static_cast<std::size_t>(pipe.stageCount()), 0);

    // Failover state: armed only for plans with device/link events.
    // Every fo-consulting branch below is behind fo->armed, so runs
    // without such plans take exactly the pre-failover event path.
    auto fo = std::make_shared<FailoverState>();
    bool failoverOn = plan_
        && (plan_->anyDeviceFaults() || plan_->anyLinkFaults());
    if (failoverOn) {
        fo->armed = true;
        fo->alive.assign(static_cast<std::size_t>(n), 1);
        fo->homeOverride.assign(
            static_cast<std::size_t>(pipe.stageCount()), -1);
        fo->evacuated.assign(static_cast<std::size_t>(n), 0);
        fo->rehomedIn.assign(static_cast<std::size_t>(n), 0);
        fo->linkDeadLettered.assign(
            static_cast<std::size_t>(pipe.stageCount()), 0);
    }

    for (int i = 0; i < n; ++i) {
        ShardContext& sc = shardCtxs[static_cast<std::size_t>(i)];
        sc.forward = [&icx, &runners, &plan, &pending, &sim, i,
                      deliverySeq, inTransit, fo, tracer,
                      prov](int stage, int bytes, std::uint64_t provId,
                            std::function<void(QueueBase&)>
                                deliver) {
            int home = fo->armed ? fo->curHome(stage, plan)
                                 : plan.homeDevice(stage);
            VP_ASSERT(home >= 0, "remote forward of an unpinned stage");
            if (fo->armed && !icx.pathUsable(i, home)) {
                // Both endpoints alive but the link between them
                // failed: the item is lost in a structured way.
                // Ledger it (conservation) and release its pending
                // unit so the group can still drain.
                ++fo->linkDeadLettered[
                    static_cast<std::size_t>(stage)];
                pending.sub(1);
                if (prov && provId)
                    prov->noteDeadLetter(provId, sim.now());
                if (tracer)
                    tracer->instant(TraceKind::DeadLetter, 0,
                                    sim.now(), stage, 1);
                return;
            }
            if (prov && provId)
                prov->noteForward(provId, stage, i, home, sim.now());
            ++(*inTransit)[static_cast<std::size_t>(stage)];
            icx.transfer(
                i, home, static_cast<double>(bytes),
                [&runners, &plan, &sim, home, stage, deliverySeq,
                 inTransit, fo, tracer,
                 deliver = std::move(deliver)]() mutable {
                    --(*inTransit)[static_cast<std::size_t>(stage)];
                    if (fo->armed
                        && !fo->alive[static_cast<std::size_t>(home)]) {
                        // Destination died while the payload was in
                        // flight: redeliver through the new home's
                        // recovery buffer. The pending unit stays
                        // charged, so termination waits for it.
                        int nh = fo->liveTarget(stage, plan);
                        ++fo->transfersRedelivered;
                        if (tracer)
                            tracer->instant(
                                TraceKind::TransferRedeliver, 0,
                                sim.now(), stage, nh);
                        runners[static_cast<std::size_t>(nh)]
                            ->redeliverForeign(stage,
                                               (*deliverySeq)++,
                                               std::move(deliver));
                        return;
                    }
                    deliver(
                        runners[static_cast<std::size_t>(home)]
                            ->deliveryQueue(stage, (*deliverySeq)++));
                });
        };
        sc.remoteFull = [&icx, &runners, &plan, &pipe, i, inTransit,
                         fo](int stage) -> bool {
            std::size_t cap = pipe.stage(stage).queueCapacity;
            if (cap == 0)
                return false;
            int home = fo->armed ? fo->curHome(stage, plan)
                                 : plan.homeDevice(stage);
            if (home < 0)
                return false;
            // Pushes onto a failed path dead-letter immediately, so
            // they must never backpressure-wait on home credit.
            if (fo->armed && !icx.pathUsable(i, home))
                return false;
            std::size_t charged =
                runners[static_cast<std::size_t>(home)]->queuedFor(
                    stage)
                + static_cast<std::size_t>(
                    (*inTransit)[static_cast<std::size_t>(stage)]);
            return charged >= cap;
        };
        sc.remoteWork = [&icx, &runners, i,
                         n](StageMask relevant) -> bool {
            if (icx.inFlight() > 0)
                return true;
            for (int j = 0; j < n; ++j)
                if (j != i
                    && runners[static_cast<std::size_t>(j)]->localWork(
                        relevant))
                    return true;
            return false;
        };
    }

    // In-flight redeliveries buffered on a dead device's runner are
    // rerouted at fire time: once a device is marked dead, anything
    // its recovery manager still holds lands on the stage's live
    // target instead.
    if (failoverOn) {
        for (int i = 0; i < n; ++i) {
            runners[static_cast<std::size_t>(i)]->setRecoveryRedirect(
                [&runners, &plan, fo, deliverySeq,
                 i](int stage) -> QueueBase* {
                    if (fo->alive[static_cast<std::size_t>(i)])
                        return nullptr;
                    int nh = fo->liveTarget(stage, plan);
                    return &runners[static_cast<std::size_t>(nh)]
                                ->deliveryQueue(stage,
                                                (*deliverySeq)++);
                });
        }
    }

    // Scripted SM/device/link faults, per target device; range
    // checks already ran in validateTargets above. Outstanding
    // events are cancelled when the group drains.
    if (plan_
        && (!plan_->smEvents.empty() || failoverOn)) {
        auto handles = std::make_shared<std::vector<EventHandle>>();
        for (const SmFaultEvent& e : plan_->smEvents) {
            Device& dev = group.device(e.device);
            handles->push_back(sim.at(e.time, [&dev, e] {
                if (dev.sm(e.sm).offline())
                    return;
                if (e.kind == SmFaultEvent::Kind::Kill)
                    dev.failSm(e.sm);
                else
                    dev.degradeSm(e.sm, e.factor);
            }));
        }
        for (const DeviceFaultEvent& e : plan_->deviceEvents) {
            handles->push_back(sim.at(e.time, [&, fo, deliverySeq] {
                int d = e.device;
                if (!fo->alive[static_cast<std::size_t>(d)])
                    return;
                fo->alive[static_cast<std::size_t>(d)] = 0;
                ++fo->devicesFailed;
                if (tracer)
                    tracer->instant(TraceKind::DeviceKill, 0,
                                    sim.now(), d);
                if (obs)
                    obs->metrics.counter("failover/device_kills")
                        .add();
                // Order matters. (1) Sever the interconnect so no
                // new transfers target the corpse. (2) Take every SM
                // offline and evict resident blocks — aborted
                // batches buffer on the dead runner's recovery
                // manager, whose redirect now reroutes them. (3)
                // Re-home pinned stages onto survivors BEFORE
                // evacuating queues, so evacuated items land in
                // queues that are already local at their new home.
                icx.failDevice(d);
                group.device(d).failDevice();

                std::vector<std::int64_t> loads(
                    static_cast<std::size_t>(n), 0);
                for (int j = 0; j < n; ++j) {
                    if (!fo->alive[static_cast<std::size_t>(j)])
                        continue;
                    for (int s = 0; s < pipe.stageCount(); ++s)
                        loads[static_cast<std::size_t>(j)] +=
                            static_cast<std::int64_t>(
                                runners[static_cast<std::size_t>(j)]
                                    ->queuedFor(s));
                }
                std::vector<std::vector<int>> adopted(
                    static_cast<std::size_t>(n));
                auto rehomeUnit = [&](const std::vector<int>& stages) {
                    if (stages.empty()
                        || fo->curHome(stages.front(), plan) != d)
                        return;
                    int nh = FailoverPolicy::rehome(stages.front(),
                                                    loads, fo->alive);
                    for (int s : stages) {
                        fo->homeOverride[
                            static_cast<std::size_t>(s)] = nh;
                        ++fo->stagesRehomed;
                        ++fo->rehomedIn[static_cast<std::size_t>(nh)];
                        runners[static_cast<std::size_t>(nh)]
                            ->takeOverStage(
                                s, pipe.stage(s).queueCapacity);
                        adopted[static_cast<std::size_t>(nh)]
                            .push_back(s);
                        if (tracer)
                            tracer->instant(TraceKind::StageRehome, 0,
                                            sim.now(), s, nh);
                        if (obs)
                            obs->metrics
                                .counter("failover/stage_rehomes")
                                .add();
                    }
                };
                // Placement is uniform per stage group, so re-homing
                // moves whole groups; stages outside any group (non-
                // Groups tops never shard, but stay defensive) move
                // singly.
                std::vector<char> inGroup(
                    static_cast<std::size_t>(pipe.stageCount()), 0);
                for (const StageGroup& grp : config.groups) {
                    for (int s : grp.stages)
                        inGroup[static_cast<std::size_t>(s)] = 1;
                    rehomeUnit(grp.stages);
                }
                for (int s = 0; s < pipe.stageCount(); ++s)
                    if (!inGroup[static_cast<std::size_t>(s)])
                        rehomeUnit({s});

                // Capture the corpse's resident queue contents onto
                // each stage's live target.
                for (int s = 0; s < pipe.stageCount(); ++s) {
                    RunnerBase& dead =
                        *runners[static_cast<std::size_t>(d)];
                    if (dead.queuedFor(s) == 0)
                        continue;
                    int t = fo->liveTarget(s, plan);
                    std::size_t moved = dead.evacuateStage(
                        s,
                        runners[static_cast<std::size_t>(t)]
                            ->deliveryQueue(s, (*deliverySeq)++));
                    fo->evacuated[static_cast<std::size_t>(d)] +=
                        moved;
                }
                // Launch kernels for adopted stage groups last, so
                // their first dispatch sees the evacuated work.
                for (int j = 0; j < n; ++j)
                    if (!adopted[static_cast<std::size_t>(j)].empty())
                        runners[static_cast<std::size_t>(j)]
                            ->adoptStages(
                                adopted[static_cast<std::size_t>(j)]);
            }));
        }
        for (const LinkFaultEvent& e : plan_->linkEvents) {
            handles->push_back(sim.at(e.time, [&, fo, e] {
                if (e.kind == LinkFaultEvent::Kind::Fail) {
                    if (!icx.pathUsable(e.src, e.dst))
                        return;
                    icx.failLink(e.src, e.dst);
                    ++fo->linksFailed;
                    if (tracer)
                        tracer->instant(TraceKind::LinkFail, 0,
                                        sim.now(), e.src, e.dst);
                    if (obs)
                        obs->metrics.counter("failover/link_fails")
                            .add();
                } else {
                    icx.degradeLink(e.src, e.dst, e.factor);
                    ++fo->linksDegraded;
                    if (tracer)
                        tracer->instant(TraceKind::LinkDegrade, 0,
                                        sim.now(), e.src, e.dst);
                    if (obs)
                        obs->metrics.counter("failover/link_degrades")
                            .add();
                }
            }));
        }
        pending.notifyOnDrain([&sim, handles] {
            for (EventHandle h : *handles)
                sim.cancel(h);
        });
    }

    if (obs && obs->sampler.enabled()) {
        for (auto& r : runners)
            r->registerProbes(obs->sampler);
        obs->sampler.addSeries("interconnect_in_flight", [&icx] {
            return static_cast<double>(icx.inFlight());
        });
    }

    // Per-device controllers: each armed runner rebalances its own
    // locally homed fine group; epochs fire group-wide in device
    // order at the same slice boundaries.
    bool adaptOn = false;
    if (adaptiveCfg_ && adaptiveCfg_->enabled) {
        adaptiveCfg_->validate();
        for (auto& r : runners)
            if (r->armAdaptive(*adaptiveCfg_))
                adaptOn = true;
    }

    GroupCoordinator::seedAll(driver, pipe, runners, plan, pending,
                              prov);
    for (auto& r : runners)
        r->start(driver);

    // Serving mode (core/serve_hook.hh): the session seeds admitted
    // requests at epoch boundaries through one run-lifetime routed
    // seeder — the same (stage, ordinal) placement as seedAll, with
    // the ordinal rolling across epochs so sharded serving placement
    // is a pure function of the admission order.
    bool serveOn = serve_ != nullptr;
    Tick serveEpoch = 0.0;
    bool serveActive = false;
    Seeder serveSeeder;
    if (serveOn) {
        VP_CHECK(obs && prov, ErrorCode::Config,
                 "serving requires an armed provenance tracker "
                 "(ServingEngine arms it; request roots are "
                 "force-tracked regardless of the sampling stride)");
        VP_CHECK(!plan_
                     || (plan_->smEvents.empty()
                         && !plan_->anyDeviceFaults()
                         && !plan_->anyLinkFaults()),
                 ErrorCode::Config,
                 "serving cannot combine with scripted fault events "
                 "(their drain-cancellation trigger assumes the "
                 "one-shot drain)");
        serveEpoch = serve_->epochCycles();
        VP_CHECK(serveEpoch > 0.0, ErrorCode::Config,
                 "serve session must use a positive epoch period");
        serveSeeder.pipe_ = &pipe;
        serveSeeder.prov_ = prov;
        serveSeeder.noteSeeded_ = [&pending](int stage, int items) {
            (void)stage;
            pending.add(items);
        };
        serveSeeder.route_ = [&runners, &plan,
                              n](int stage, int ordinal) -> QueueBase& {
            int home = plan.homeDevice(stage);
            int dev = home >= 0 ? home
                                : shardSeedDevice(stage, ordinal, n);
            return runners[static_cast<std::size_t>(dev)]
                ->deliveryQueue(stage,
                                static_cast<std::uint64_t>(ordinal));
        };
        ServeBinding sb;
        sb.sim = &sim;
        sb.seeder = &serveSeeder;
        sb.obs = obs.get();
        sb.wake = [&runners] {
            for (auto& r : runners)
                r->serveWake();
        };
        sb.queueTraffic = [&runners, &icx] {
            std::uint64_t p = icx.stats().delivered;
            for (const auto& r : runners)
                p += r->drainProgress();
            return p;
        };
        serve_->begin(sb);
        serveActive = true;
    }

    auto groupProgress = [&runners, &icx] {
        std::uint64_t p = icx.stats().delivered;
        for (const auto& r : runners)
            p += r->drainProgress();
        return p;
    };
    auto groupDiagnose = [&runners, &icx] {
        std::ostringstream os;
        os << "interconnect: inFlight=" << icx.inFlight() << "\n";
        for (std::size_t i = 0; i < runners.size(); ++i)
            os << "device " << i << ":\n"
               << runners[i]->diagnoseStall();
        return os.str();
    };

    bool watchdogOn = faulted && rc.watchdogIntervalCycles > 0.0;
    bool timeoutOn = faulted && rc.drainTimeoutCycles > 0.0;
    bool samplerOn = obs && obs->sampler.enabled();

    bool drained;
    std::optional<RunOutcome> failure;
    std::string reason;
    if (!watchdogOn && !timeoutOn && !samplerOn && !adaptOn
        && !serveOn) {
        drained = sim.runUntil(cycleLimit, eventLimit_);
    } else {
        // Same supervision slicing as the single-device engine
        // (engine.cc), with progress and diagnostics group-wide.
        std::uint64_t lastProgress = groupProgress();
        std::uint64_t lastEvents = sim.eventsRun();
        int stalledChecks = 0;
        constexpr Tick kInf = std::numeric_limits<Tick>::infinity();
        Tick checkpoint =
            watchdogOn ? rc.watchdogIntervalCycles : kInf;
        Tick sampNext = samplerOn ? obs->sampler.interval() : kInf;
        Tick adaptNext = adaptOn ? adaptiveCfg_->epochCycles : kInf;
        Tick serveNext = serveActive ? serveEpoch : kInf;
        for (;;) {
            Tick target =
                std::min({checkpoint, sampNext, adaptNext, serveNext,
                          cycleLimit});
            if (timeoutOn)
                target = std::min(target, rc.drainTimeoutCycles);
            std::uint64_t budget = eventLimit_ > sim.eventsRun()
                ? eventLimit_ - sim.eventsRun()
                : 0;
            drained = sim.runUntil(target, budget);
            if (drained) {
                if (serveActive) {
                    // The group idled dry between bursts: hop the
                    // clock to the next epoch boundary (legal — no
                    // pending events) and let the session refill it.
                    if (sim.now() < serveNext)
                        sim.advanceTo(serveNext);
                    serveActive = serve_->epoch(serveNext);
                    serveNext = serveActive ? serveNext + serveEpoch
                                            : kInf;
                    continue;
                }
                break;
            }
            if (sim.eventsRun() >= eventLimit_ || target >= cycleLimit)
                break;
            if (samplerOn && target >= sampNext) {
                obs->sampler.sampleAt(sampNext);
                sampNext += obs->sampler.interval();
            }
            if (adaptOn && target >= adaptNext) {
                for (auto& r : runners)
                    r->adaptEpoch();
                adaptNext += adaptiveCfg_->epochCycles;
            }
            if (serveActive && target >= serveNext) {
                // runUntil already delivered every event at or
                // before the boundary, so the hop is zero-event.
                if (sim.now() < serveNext)
                    sim.advanceTo(serveNext);
                serveActive = serve_->epoch(serveNext);
                serveNext = serveActive ? serveNext + serveEpoch
                                        : kInf;
            }
            if (timeoutOn && target >= rc.drainTimeoutCycles) {
                failure = RunOutcome::DrainTimeout;
                reason = "global drain timeout ("
                    + std::to_string(rc.drainTimeoutCycles)
                    + " cycles) elapsed\n" + groupDiagnose();
                break;
            }
            if (!watchdogOn || target < checkpoint)
                continue;
            std::uint64_t progress = groupProgress();
            std::uint64_t events = sim.eventsRun();
            if (tracer) {
                tracer->instant(TraceKind::WatchdogCheck, 0,
                                sim.now(), stalledChecks);
            }
            if (progress != lastProgress) {
                stalledChecks = 0;
            } else if (events != lastEvents && pending.value() > 0) {
                if (++stalledChecks >= rc.watchdogStallChecks) {
                    failure = RunOutcome::Stalled;
                    reason = "watchdog: no drain progress for "
                        + std::to_string(stalledChecks)
                        + " checks\n" + groupDiagnose();
                    break;
                }
            }
            lastProgress = progress;
            lastEvents = events;
            checkpoint += rc.watchdogIntervalCycles;
        }
    }

    auto collectMerged = [&]() {
        RunResult merged = runners[0]->collect();
        std::vector<RunResult> per;
        per.push_back(merged);
        for (int i = 1; i < n; ++i) {
            per.push_back(runners[static_cast<std::size_t>(i)]
                              ->collect());
            mergeRunnerResult(merged, per.back());
        }
        double steals = 0.0;
        double adEpochs = 0.0;
        double adMoves = 0.0;
        for (const RunResult& ri : per) {
            steals += ri.extra.get("steals");
            adEpochs += ri.extra.get("adaptiveEpochs");
            adMoves += ri.extra.get("adaptiveMoves");
        }
        merged.extra.set("steals", steals);
        if (adaptOn) {
            merged.extra.set("adaptiveEpochs", adEpochs);
            merged.extra.set("adaptiveMoves", adMoves);
        }

        merged.cycles = sim.now();
        merged.ms = gcfg.devices[0].cyclesToMs(merged.cycles);
        merged.simEvents = sim.eventsRun();
        merged.deviceName = gcfg.describe();
        merged.configName = config.describe(pipe) + " shard="
            + plan.describe();
        merged.interconnect = icx.stats();

        double issue = 0.0;
        for (int i = 0; i < n; ++i) {
            ShardDeviceStats sd;
            sd.deviceName = gcfg.devices[static_cast<std::size_t>(i)]
                                .name;
            sd.device = per[static_cast<std::size_t>(i)].device;
            sd.host = per[static_cast<std::size_t>(i)].host;
            sd.smUtilization =
                per[static_cast<std::size_t>(i)].smUtilization;
            if (fo->armed) {
                sd.failed = !fo->alive[static_cast<std::size_t>(i)];
                sd.itemsEvacuated =
                    fo->evacuated[static_cast<std::size_t>(i)];
                sd.stagesRehomedIn =
                    fo->rehomedIn[static_cast<std::size_t>(i)];
            }
            merged.shardDevices.push_back(std::move(sd));
            for (int s = 0; s < group.device(i).numSms(); ++s)
                issue += group.device(i).sm(s).stats().issueCycles;
        }
        if (fo->armed) {
            merged.faults.devicesFailed = fo->devicesFailed;
            merged.faults.linksFailed = fo->linksFailed;
            merged.faults.linksDegraded = fo->linksDegraded;
            merged.faults.stagesRehomed = fo->stagesRehomed;
            merged.faults.transfersRedelivered =
                fo->transfersRedelivered;
            for (int i = 0; i < n; ++i)
                merged.faults.itemsEvacuated +=
                    fo->evacuated[static_cast<std::size_t>(i)];
            for (int s = 0; s < pipe.stageCount(); ++s) {
                std::uint64_t dl =
                    fo->linkDeadLettered[static_cast<std::size_t>(s)];
                merged.stages[static_cast<std::size_t>(s)]
                    .deadLettered += dl;
                merged.faults.deadLettered += dl;
            }
        }
        if (merged.cycles > 0.0 && group.totalSms() > 0)
            merged.smUtilization =
                issue / (merged.cycles * group.totalSms());
        return merged;
    };

    auto finishObs = [&](RunResult& result) {
        if (serve_)
            serve_->finish(result, sim.now());
        if (!obs)
            return;
        if (tracer) {
            tracer->span(TraceKind::RunSpan, 0, 0.0, sim.now(),
                         tracer->intern(result.configName));
        }
        if (obs->provenance)
            obs->provenance->finalize(obs->metrics);
        result.obs = obs;
    };
    auto attachTraceTail = [&](std::string& why) {
        if (tracer && obs->config.diagnosticTailEvents > 0) {
            why += "\nlast trace events:\n"
                + tracer->tail(obs->config.diagnosticTailEvents);
        }
    };

    if (failure) {
        RunResult result = collectMerged();
        result.completed = false;
        result.outcome = *failure;
        attachTraceTail(reason);
        result.failureReason = std::move(reason);
        result.faults.watchdogFired = *failure == RunOutcome::Stalled;
        finishObs(result);
        return result;
    }
    if (!drained) {
        VP_CHECK(sim.eventsRun() < eventLimit_, ErrorCode::Livelock,
                 "sharded run exceeded the event limit ("
                 << eventLimit_ << ") — livelock in config `"
                 << config.describe(pipe) << "`?");
        VP_DEBUG("engine: sharded timeout at " << sim.now()
                 << " cycles for `" << config.describe(pipe) << "`");
        return std::nullopt;
    }
    if (pending.value() != 0) {
        if (faulted) {
            RunResult result = collectMerged();
            result.completed = false;
            result.outcome = RunOutcome::Stalled;
            std::string why = "drained events but work is left\n"
                + groupDiagnose();
            attachTraceTail(why);
            result.failureReason = std::move(why);
            finishObs(result);
            return result;
        }
        VP_REQUIRE(false,
                   "sharded run drained events but left work pending "
                   "(config `" << config.describe(pipe) << "`)");
    }

    RunResult result = collectMerged();
    // Serving runs: per-request conservation (checked by the
    // session) replaces the app's one-shot whole-workload verify.
    result.completed = serve_ ? true : driver.verify();
    // Surviving a device kill or link failure is by definition a
    // degraded run, even when every item still made it through: the
    // group no longer matches its configuration.
    bool failedOver = fo->devicesFailed > 0 || fo->linksFailed > 0
        || fo->linksDegraded > 0;
    if (result.completed) {
        result.outcome = failedOver ? RunOutcome::Degraded
                                    : RunOutcome::Completed;
    } else if (failedOver || result.faults.deadLettered > 0
               || result.faults.droppedPushes > 0) {
        result.outcome = RunOutcome::Degraded;
    } else {
        result.outcome = RunOutcome::VerifyFailed;
    }
    finishObs(result);
    return result;
}

} // namespace vp

/**
 * @file
 * Runtime recovery from injected faults: retry policy with capped
 * exponential backoff, dead-letter accounting, and the redelivery
 * buffer that keeps termination detection exact while failed items
 * wait out their backoff.
 *
 * The watchdog itself lives in the Engine run loop (it slices
 * Simulator::runUntil at checkpoint boundaries and samples the
 * runner's drain-progress heartbeat), so a healthy run pays no extra
 * simulation events for being supervised.
 */

#ifndef VP_CORE_RECOVERY_HH
#define VP_CORE_RECOVERY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/trace.hh"
#include "queueing/work_queue.hh"
#include "sim/simulator.hh"

namespace vp {

/** Retry/backoff/watchdog policy for one run. */
struct RecoveryConfig
{
    /** Transient-failure retries per item before dead-lettering. */
    std::uint32_t maxRetries = 3;

    /** Backoff before the first redelivery, cycles. */
    Tick backoffBaseCycles = 500.0;
    /** Backoff growth per retry. */
    double backoffFactor = 2.0;
    /** Backoff ceiling, cycles. */
    Tick backoffCapCycles = 16000.0;

    /**
     * Drain-progress heartbeat sampling interval, cycles. The
     * watchdog fires after `watchdogStallChecks` consecutive samples
     * with no progress while work is pending. 0 disables it.
     */
    Tick watchdogIntervalCycles = 1000000.0;
    /** Consecutive stalled samples before the watchdog fires. */
    int watchdogStallChecks = 4;

    /**
     * Global drain timeout, cycles of virtual time; a run still
     * pending past this point returns a structured DrainTimeout
     * result instead of spinning to the cycle cap. 0 disables it.
     */
    Tick drainTimeoutCycles = 0.0;

    /** Backoff before redelivering an item on its n-th try (n>=1). */
    Tick backoffFor(std::uint32_t tries) const;

    /** Raise FatalError(Config) on out-of-range fields. */
    void validate() const;
};

/** Fault and recovery counters of one run (RunResult::faults). */
struct FaultRecoveryStats
{
    /** Transient task faults injected at fetch time. */
    std::uint64_t taskFaults = 0;
    /** Items scheduled for retry (transient faults + SM-kill
     *  replays of retryable stages). */
    std::uint64_t tasksRetried = 0;
    /** Items abandoned: retries exhausted, corrupted in transit, or
     *  lost with a non-retryable stage's evicted block. */
    std::uint64_t deadLettered = 0;
    /** Queue pushes silently dropped by injection. */
    std::uint64_t droppedPushes = 0;
    /** Queue pushes corrupted in transit (detected + dead-lettered
     *  at commit). */
    std::uint64_t corruptedPushes = 0;
    /** Batches slowed by transient throughput faults. */
    std::uint64_t slowdowns = 0;
    /** Commit attempts that waited on a full downstream queue. */
    std::uint64_t backpressureWaits = 0;
    /** Kernels relaunched to re-provision work after an SM loss. */
    std::uint64_t degradeRelaunches = 0;
    /** Kernel launches delayed by injection (device counter). */
    std::uint64_t launchDelays = 0;
    /** SMs killed / degraded (device counters). */
    int smsFailed = 0;
    int smsDegraded = 0;
    /** Resident blocks evicted by SM failures (device counter). */
    int blocksEvicted = 0;
    /** True when the stall watchdog converted a hang into a
     *  structured failure. */
    bool watchdogFired = false;

    /** @name Failover (multi-device device/link failures) @{ */

    /** Whole devices killed by scripted device faults. */
    int devicesFailed = 0;
    /** Interconnect paths failed / degraded by scripted events. */
    int linksFailed = 0;
    int linksDegraded = 0;
    /** Pinned stages re-homed onto a survivor device. */
    int stagesRehomed = 0;
    /** In-flight transfers whose destination died mid-flight,
     *  redelivered to the new home through the recovery buffer. */
    std::uint64_t transfersRedelivered = 0;
    /** Items drained out of a dead device's queues at kill time. */
    std::uint64_t itemsEvacuated = 0;

    /** @} */
};

/**
 * Buffers items that failed transiently and redelivers them to their
 * stage queue after backoff. Items in the buffer count as future
 * work, so persistent blocks keep polling (and the KBK host keeps
 * scheduling passes) instead of retiring before redelivery.
 */
class RecoveryManager
{
  public:
    /** Wire up; must be called before use. */
    void init(Simulator* sim, const RecoveryConfig* cfg,
              int stageCount);

    /**
     * Schedule @p redeliver(*q) after the backoff for @p tries;
     * @p count items become buffered for @p stage until then.
     */
    void scheduleRedeliver(int stage, QueueBase* q,
                           std::function<void(QueueBase&)> redeliver,
                           int count, std::uint32_t tries);

    /** Items currently awaiting redelivery for @p stage. */
    std::int64_t
    buffered(int stage) const
    {
        return buffered_[static_cast<std::size_t>(stage)];
    }

    /** Items awaiting redelivery across all stages. */
    std::int64_t totalBuffered() const;

    /** Redelivery batches executed so far. */
    std::uint64_t redeliveries() const { return redeliveries_; }

    /**
     * Callback fired after each redelivery lands, with the stage
     * index; runners without polling workers (DP) use it to spawn a
     * kernel for the redelivered items.
     */
    void
    setOnRedelivered(std::function<void(int)> fn)
    {
        onRedelivered_ = std::move(fn);
    }

    /** Attach the run tracer (null detaches; never owned): each
     *  redelivery landing records a Redeliver instant. */
    void setTracer(Tracer* t) { tracer_ = t; }

    /**
     * Install a redirect consulted when each redelivery fires: a
     * non-null return replaces the queue the batch would land in.
     * The group coordinator uses it after a device death so
     * redeliveries scheduled against a dead device's queues land on
     * the stage's new home instead — including batches that were
     * already waiting out their backoff when the device died.
     */
    void
    setRedirect(std::function<QueueBase*(int)> fn)
    {
        redirect_ = std::move(fn);
    }

  private:
    Simulator* sim_ = nullptr;
    const RecoveryConfig* cfg_ = nullptr;
    std::vector<std::int64_t> buffered_;
    std::uint64_t redeliveries_ = 0;
    std::function<void(int)> onRedelivered_;
    std::function<QueueBase*(int)> redirect_;
    Tracer* tracer_ = nullptr;
};

} // namespace vp

#endif // VP_CORE_RECOVERY_HH

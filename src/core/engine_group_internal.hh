/**
 * @file
 * Machinery shared by the serial (engine_group.cc) and host-parallel
 * (engine_group_parallel.cc) sharded run loops: the seeding
 * coordinator, per-runner result merging, and the eligibility test
 * that decides which loop a sharded run takes.
 */

#ifndef VP_CORE_ENGINE_GROUP_INTERNAL_HH
#define VP_CORE_ENGINE_GROUP_INTERNAL_HH

#include <algorithm>
#include <memory>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "core/run_result.hh"
#include "core/runtime.hh"
#include "core/shard.hh"
#include "gpu/device_group.hh"
#include "sim/fault.hh"

namespace vp {

/**
 * Friend of Seeder: builds the routed seeders of a sharded run.
 * Pinned stages seed straight to their home device; replicated
 * stages hash each item over the group (shardSeedDevice), which is
 * the only point where replicated work is distributed — intermediate
 * outputs stay on the producing device for locality.
 */
class GroupCoordinator
{
  public:
    static void
    seedAll(AppDriver& driver, Pipeline& pipe,
            std::vector<std::unique_ptr<RunnerBase>>& runners,
            const ShardPlan& plan, PendingCounter& pending,
            ProvenanceTracker* prov = nullptr)
    {
        int n = static_cast<int>(runners.size());
        for (int f = 0; f < driver.flowCount(); ++f) {
            Seeder seeder;
            seeder.pipe_ = &pipe;
            seeder.prov_ = prov;
            seeder.noteSeeded_ = [&pending](int stage, int items) {
                (void)stage;
                pending.add(items);
            };
            seeder.route_ = [&runners, &plan,
                             n](int stage, int ordinal) -> QueueBase& {
                int home = plan.homeDevice(stage);
                int dev = home >= 0
                    ? home
                    : shardSeedDevice(stage, ordinal, n);
                return runners[static_cast<std::size_t>(dev)]
                    ->deliveryQueue(
                        stage, static_cast<std::uint64_t>(ordinal));
            };
            driver.seedFlow(seeder, f);
        }
    }

    /**
     * Host-parallel variant: each seeded item is counted on its
     * *destination* device's member counter instead of one shared
     * counter. Equivalent to seedAll + group-mode deltas: no events
     * are running yet and group mode disables drain callbacks, so
     * only the barrier-time sum matters. Every member is marked
     * started afterwards so a device that received no seeds does not
     * report done() vacuously.
     */
    static void
    seedAllGrouped(AppDriver& driver, Pipeline& pipe,
                   std::vector<std::unique_ptr<RunnerBase>>& runners,
                   const ShardPlan& plan,
                   std::vector<PendingCounter>& counters)
    {
        int n = static_cast<int>(runners.size());
        for (int f = 0; f < driver.flowCount(); ++f) {
            Seeder seeder;
            seeder.pipe_ = &pipe;
            seeder.noteSeeded_ = [](int, int) {};
            seeder.route_ = [&runners, &plan, &counters,
                             n](int stage, int ordinal) -> QueueBase& {
                int home = plan.homeDevice(stage);
                int dev = home >= 0
                    ? home
                    : shardSeedDevice(stage, ordinal, n);
                counters[static_cast<std::size_t>(dev)].add(1);
                return runners[static_cast<std::size_t>(dev)]
                    ->deliveryQueue(
                        stage, static_cast<std::uint64_t>(ordinal));
            };
            driver.seedFlow(seeder, f);
        }
        for (PendingCounter& c : counters)
            c.markStarted();
    }
};

namespace groupdetail {

/** Fold runner @p ri's collected stats into @p merged. */
inline void
mergeRunnerResult(RunResult& merged, const RunResult& ri)
{
    for (std::size_t s = 0; s < merged.stages.size(); ++s) {
        StageRunStats& a = merged.stages[s];
        const StageRunStats& b = ri.stages[s];
        a.items += b.items;
        a.batches += b.batches;
        a.warpInsts += b.warpInsts;
        a.execCycles += b.execCycles;
        a.retried += b.retried;
        a.deadLettered += b.deadLettered;
        a.queue.pushes += b.queue.pushes;
        a.queue.pops += b.queue.pops;
        a.queue.maxDepth = std::max(a.queue.maxDepth,
                                    b.queue.maxDepth);
        a.queue.opCycles += b.queue.opCycles;
        a.queue.contentionCycles += b.queue.contentionCycles;
    }
    merged.polls += ri.polls;
    merged.retreats += ri.retreats;
    merged.refills += ri.refills;

    merged.faults.taskFaults += ri.faults.taskFaults;
    merged.faults.tasksRetried += ri.faults.tasksRetried;
    merged.faults.deadLettered += ri.faults.deadLettered;
    merged.faults.droppedPushes += ri.faults.droppedPushes;
    merged.faults.corruptedPushes += ri.faults.corruptedPushes;
    merged.faults.slowdowns += ri.faults.slowdowns;
    merged.faults.backpressureWaits += ri.faults.backpressureWaits;
    merged.faults.degradeRelaunches += ri.faults.degradeRelaunches;
    merged.faults.launchDelays += ri.faults.launchDelays;
    merged.faults.smsFailed += ri.faults.smsFailed;
    merged.faults.smsDegraded += ri.faults.smsDegraded;
    merged.faults.blocksEvicted += ri.faults.blocksEvicted;
}

/**
 * True when a sharded run may take the host-parallel loop. The
 * parallel loop is conservative: anything whose determinism or
 * thread-safety it cannot reproduce falls back to the serial loop.
 *
 *  - onlineAdaptation reads the group pending counter mid-window
 *    (GroupsRunner::onKernelComplete), which is only exact at
 *    barriers.
 *  - Probabilistic fault draws consume one shared RNG stream whose
 *    order depends on event interleaving; scripted SM events are
 *    fine (they draw nothing).
 *  - Device-kill and link fail/degrade plans drive the failover
 *    path, which re-homes stages and re-routes deliveries through
 *    coordinator state the windowed loop cannot replay.
 *  - Trace-level logging installs a global clock bound to one
 *    simulator.
 *  - Bounded pinned stages use the cross-device credit scheme
 *    (remoteFull), which reads remote queue depths mid-window.
 */
inline bool
hostParallelEligible(const DeviceGroupConfig& gcfg, int n,
                     const Pipeline& pipe,
                     const PipelineConfig& config,
                     const ShardPlan& plan,
                     const std::optional<FaultPlan>& faults)
{
    if (gcfg.hostThreads <= 1 || n <= 1)
        return false;
    if (config.onlineAdaptation)
        return false;
    if (faults
        && (faults->anyTaskFaults() || faults->anyPushFaults()
            || faults->launchDelayProb > 0.0
            || faults->anyDeviceFaults() || faults->anyLinkFaults()))
        return false;
    if (Logger::enabled(LogLevel::Trace))
        return false;
    // Malformed plans fall through to the serial loop's validation
    // so the error message is identical.
    if (plan.stages.size()
        != static_cast<std::size_t>(pipe.stageCount()))
        return false;
    for (int s = 0; s < pipe.stageCount(); ++s)
        if (plan.homeDevice(s) >= 0
            && pipe.stage(s).queueCapacity > 0)
            return false;
    return true;
}

} // namespace groupdetail

} // namespace vp

#endif // VP_CORE_ENGINE_GROUP_INTERNAL_HH

/**
 * @file
 * Host-parallel multi-device execution: one event loop per device,
 * each driven by its own host thread, synchronized in conservative
 * lookahead windows (docs/MODEL.md, "Host-parallel simulation").
 *
 * The serial group loop (engine_group.cc) merges every device's
 * events into one heap, so wall-clock time grows with the group even
 * though the devices are nearly independent. This loop gives each
 * device its own Simulator and exploits the interconnect's minimum
 * link latency L as lookahead: within a window no cross-device event
 * can affect another device, so the devices advance fully in
 * parallel and exchange in-transit deliveries at window barriers.
 *
 * Two tiers, chosen by the shard plan:
 *
 *  - Exact (replicate-only plans): no stage is pinned, so no
 *    transfer ever crosses devices and the lookahead is infinite.
 *    The only cross-device coupling is the remote-work query behind
 *    block-exit decisions. Per ancestor-closed stage mask that work
 *    is *monotone* — once a device's closure drains it can never
 *    refill (in-flight batches count as work, there is no external
 *    input) — so each device advertises a horizon (the time of its
 *    next unexecuted event) and per-closure drain times through
 *    atomics, and a querying device waits until every peer has
 *    passed the query time, then answers exactly. Same-tick order
 *    between devices is resolved by device index; the golden-corpus
 *    suite pins the merged schedule byte-for-byte against the
 *    serial loop.
 *
 *  - Conserving (pinned plans): cross-device pushes are recorded in
 *    per-device outboxes during a window of width
 *    min(boundary, min next event + L) and replayed at the barrier
 *    in merged (submit tick, device, sequence) order through
 *    Interconnect::route, which reproduces link serialization and
 *    contention; deliveries are scheduled on the home device's
 *    simulator at arrival (always >= the window end, by
 *    construction). Remote-work queries answer from a snapshot
 *    frozen at the last barrier — conservatively over-reporting
 *    work, which costs extra polls but conserves every item — so
 *    runs are deterministic and fingerprint-identical to the serial
 *    loop.
 *
 * Supervision (sampler, adaptive epochs, drain timeout, watchdog,
 * scripted SM faults) runs on the coordinator thread at window
 * barriers, aligned to the same boundaries as the serial loop's
 * slicing ladder.
 */

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "core/engine.hh"
#include "core/engine_group_internal.hh"
#include "gpu/device_group.hh"

namespace vp {

namespace {

constexpr Tick kInf = std::numeric_limits<Tick>::infinity();

/**
 * Counting semaphore bounding how many device windows run at once:
 * min(hostThreads, devices) permits. Workers hold a permit while
 * executing a window and release it while parked at the barrier (or
 * during long remote-work spins, so a probed device can be scheduled
 * even when hostThreads < devices).
 */
class Permits
{
  public:
    explicit Permits(int count) : count_(count) {}

    void
    acquire()
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [this] { return count_ > 0; });
        --count_;
    }

    void
    release()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            ++count_;
        }
        cv_.notify_one();
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    int count_;
};

/**
 * Two-phase window barrier between the coordinator and the device
 * workers. The coordinator publishes the next window's plan, bumps
 * the generation (release), waits for every worker to arrive, then
 * does the barrier work while the workers are parked. All shared
 * plain (non-atomic) state is written by exactly one side while the
 * other is parked, with the barrier mutex providing the
 * happens-before edges.
 */
class WindowBarrier
{
  public:
    explicit WindowBarrier(int n) : n_(n) {}

    /** Worker: wait for generation > @p gen. False on shutdown. */
    bool
    awaitGo(int gen)
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] { return done_ || gen_ > gen; });
        return !done_;
    }

    /** Worker: report this window finished. */
    void
    arrive()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            ++arrived_;
        }
        cv_.notify_all();
    }

    /** Coordinator: start the next window. */
    void
    release()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            arrived_ = 0;
            ++gen_;
        }
        cv_.notify_all();
    }

    /** Coordinator: wait until every worker arrived. */
    void
    awaitAll()
    {
        std::unique_lock<std::mutex> lk(m_);
        cv_.wait(lk, [&] { return arrived_ == n_; });
    }

    /** Coordinator: wake every worker for exit. Idempotent. */
    void
    shutdown()
    {
        {
            std::lock_guard<std::mutex> lk(m_);
            done_ = true;
        }
        cv_.notify_all();
    }

  private:
    std::mutex m_;
    std::condition_variable cv_;
    int n_;
    int arrived_ = 0;
    int gen_ = 0;
    bool done_ = false;
};

/**
 * One device's progress advertisement for the exact tier. horizon is
 * stored (release) before each event executes, so a peer that reads
 * horizon > t (acquire) knows every event of this device at or
 * before t — and every drainedAt store those events made — is
 * visible. drainedAt[s] is the time the ancestor closure of stage s
 * went permanently workless: +inf while work remains, -inf when the
 * closure was workless from the start. Write-once (monotonicity).
 */
struct DeviceProgress
{
    explicit DeviceProgress(int stages) : drainedAt(stages)
    {
        for (auto& d : drainedAt)
            d.store(kInf, std::memory_order_relaxed);
    }

    std::atomic<Tick> horizon{0.0};
    std::vector<std::atomic<Tick>> drainedAt;
};

/** One cross-device push recorded during a conserving-tier window. */
struct MailboxPost
{
    int stage = 0;
    int srcDev = 0;
    int bytes = 0;
    Tick submit = 0.0;
    std::uint64_t srcSeq = 0;
    std::function<void(QueueBase&)> deliver;
};

/** Minimum cycles between a cross-device submit and its arrival. */
Tick
minLinkLatency(const InterconnectConfig& icfg)
{
    if (icfg.kind == InterconnectConfig::Kind::Peer)
        return icfg.peerLatencyCycles;
    // Host-staged transfers take an uplink and a downlink hop, each
    // adding its latency after serialization.
    return 2.0 * icfg.hostLatencyCycles;
}

} // namespace

std::optional<RunResult>
Engine::runShardedParallel(AppDriver& driver,
                           const PipelineConfig& config,
                           const ShardPlan& plan,
                           double cycleLimit) const
{
    const DeviceGroupConfig& gcfg = *group_;
    int n = gcfg.size();

    Pipeline& pipe = driver.pipeline();
    pipe.validate();
    for (const DeviceConfig& dcfg : gcfg.devices)
        config.validate(pipe, dcfg);
    plan.validate(pipe, config, n);
    driver.reset();
    pipe.resetStages();

    std::vector<std::unique_ptr<Simulator>> simOwners;
    std::vector<Simulator*> sims;
    for (int i = 0; i < n; ++i) {
        simOwners.push_back(std::make_unique<Simulator>());
        sims.push_back(simOwners.back().get());
    }
    DeviceGroup group(sims, gcfg);
    Interconnect& icx = group.interconnect();

    const int stageCount = pipe.stageCount();
    const bool exact = !plan.anyPinned();
    const Tick lookahead = minLinkLatency(gcfg.interconnect);

    // Per-device observability shards: the tracer hooks and batch
    // histograms fire on worker threads, so each device records into
    // its own bundle; the shards merge into the main bundle (which
    // only the coordinator writes) after the run.
    std::shared_ptr<ObsData> obs;
    std::vector<std::unique_ptr<ObsData>> shardObs;
    if (obsCfg_) {
        obs = std::make_shared<ObsData>(*obsCfg_, sims[0]);
        for (int i = 0; i < n; ++i) {
            shardObs.push_back(
                std::make_unique<ObsData>(*obsCfg_, sims[i]));
            group.device(i).setTracer(shardObs.back()->tracerPtr());
            group.device(i).setTraceTrackBase(group.smTrackBase(i),
                                              i * 64);
        }
    }
    Tracer* tracer = obs ? obs->tracerPtr() : nullptr;

    std::optional<FaultInjector> injector;
    RecoveryConfig rc;
    bool faulted = plan_.has_value() || recovery_.has_value();
    if (plan_) {
        // Eligibility guarantees the plan is smEvents-only, so the
        // shared injector never draws randomness from worker threads.
        plan_->validate();
        injector.emplace(*plan_);
        for (int i = 0; i < n; ++i)
            group.device(i).setFaultInjector(&*injector);
    }
    if (recovery_) {
        recovery_->validate();
        rc = *recovery_;
    }

    // Group-wide termination: each device keeps a local delta of the
    // shared outstanding-work count (a pinned consumer may retire
    // items a remote producer added, so deltas go negative); the sum
    // is exact whenever the workers are parked at a barrier.
    std::vector<PendingCounter> counters(
        static_cast<std::size_t>(n));
    auto groupPending = [&counters]() {
        std::int64_t v = 0;
        for (const PendingCounter& c : counters)
            v += c.localValue();
        return v;
    };
    for (PendingCounter& c : counters)
        c.enableGroupMode(groupPending);

    // Progress advertisements. Horizons are maintained by both
    // tiers (the execution fence needs them everywhere); the
    // closure drain times only feed the exact tier's probes.
    std::vector<std::unique_ptr<DeviceProgress>> progress;
    std::vector<StageMask> closure(
        static_cast<std::size_t>(stageCount), 0);
    for (int s = 0; s < stageCount; ++s)
        closure[static_cast<std::size_t>(s)] =
            pipe.ancestorsOf(s) | (StageMask(1) << s);
    std::vector<StageMask> undrained(static_cast<std::size_t>(n), 0);
    for (int i = 0; i < n; ++i)
        progress.push_back(
            std::make_unique<DeviceProgress>(stageCount));

    // Conserving-tier mailbox state. frozenWork/frozenTransit are
    // written only at barriers (workers parked) and read only during
    // windows; the barrier provides the ordering.
    std::vector<std::vector<MailboxPost>> outbox(
        static_cast<std::size_t>(n));
    std::vector<std::uint64_t> outboxSeq(
        static_cast<std::size_t>(n), 0);
    std::vector<std::uint64_t> deliveredFired(
        static_cast<std::size_t>(n), 0);
    std::uint64_t routedTotal = 0;
    std::uint64_t deliveryHint = 0;
    std::vector<std::pair<Tick, int>> transitTimeline;
    std::vector<StageMask> frozenWork(static_cast<std::size_t>(n),
                                      0);
    bool frozenTransit = false;
    auto firedSum = [&deliveredFired]() {
        std::uint64_t f = 0;
        for (std::uint64_t d : deliveredFired)
            f += d;
        return f;
    };

    Permits permits(std::min(gcfg.hostThreads, n));

    // True whenever the workers are parked (between windows and
    // before/after the loop): remote-work queries from the
    // coordinator — adaptive epochs, stall diagnosis — then answer
    // from live runner state, exactly like the serial loop, instead
    // of the window protocols (whose spin would deadlock against
    // parked workers). Written only while workers are parked; the
    // barrier mutex orders it against worker reads.
    bool atBarrier = true;

    std::vector<ShardContext> shardCtxs(static_cast<std::size_t>(n));
    std::vector<std::unique_ptr<RunnerBase>> runners;
    for (int i = 0; i < n; ++i) {
        ShardContext& sc = shardCtxs[static_cast<std::size_t>(i)];
        sc.deviceIndex = i;
        sc.numDevices = n;
        sc.smTrackBase = group.smTrackBase(i);
        sc.plan = &plan;
        sc.sharedPending = &counters[static_cast<std::size_t>(i)];

        FaultContext fc;
        fc.shard = &sc;
        if (injector)
            fc.injector = &*injector;
        if (recovery_)
            fc.recovery = &*recovery_;
        if (obs)
            fc.obs = shardObs[static_cast<std::size_t>(i)].get();
        runners.push_back(makeRunner(*sims[static_cast<std::size_t>(
                                         i)],
                                     group.device(i), group.host(i),
                                     pipe, config, fc));
    }

    // Merged-order wait: block until every peer's horizon has
    // passed (t, i) — no peer will ever again execute an event the
    // serial loop would have ordered before this device's current
    // one. This is both an ordering and a mutual-exclusion
    // primitive: two devices inside fenced sections at once would
    // contradict horizon monotonicity within a window. Deadlock-
    // free: the least (tick, device) waiter's condition is already
    // met by every other waiter, so it only waits on devices that
    // are executing events, and a failed worker parks its horizon
    // at +inf.
    auto awaitPeersPast = [&](int i, Tick t) {
        std::uint32_t pendingMask = 0;
        for (int j = 0; j < n; ++j) {
            if (j == i)
                continue;
            Tick hj = progress[static_cast<std::size_t>(j)]
                          ->horizon.load(std::memory_order_acquire);
            if (!(hj > t || (hj == t && j > i)))
                pendingMask |= 1u << j;
        }
        if (!pendingMask)
            return;
        // Hand the run permit back after a while so a waited-on
        // device can be scheduled even when hostThreads < devices.
        bool holding = true;
        std::uint32_t spins = 0;
        while (pendingMask) {
            for (int j = 0; j < n; ++j) {
                if (!(pendingMask & (1u << j)))
                    continue;
                Tick hj =
                    progress[static_cast<std::size_t>(j)]
                        ->horizon.load(std::memory_order_acquire);
                if (hj > t || (hj == t && j > i))
                    pendingMask &= ~(1u << j);
            }
            if (!pendingMask)
                break;
            if (holding && ++spins >= 512) {
                permits.release();
                holding = false;
            }
            std::this_thread::yield();
        }
        if (!holding)
            permits.acquire();
    };

    // Exact-tier remote-work query: wait until every peer's horizon
    // passes the probe point (same-tick ties resolved by device
    // index: lower index acts first), then answer from the
    // write-once closure drain times. Deadlock-free: among spinning
    // probes the least (tick, device) one only waits on devices that
    // are executing events.
    auto probeRemote = [&](int i, StageMask relevant) -> bool {
        int s = -1;
        for (int c = 0; c < stageCount; ++c)
            if (closure[static_cast<std::size_t>(c)] == relevant) {
                s = c;
                break;
            }
        VP_ASSERT(s >= 0,
                  "remote-work query for a non-closure mask "
                      << relevant);
        Tick tp = sims[static_cast<std::size_t>(i)]->now();
        std::uint32_t pendingMask = 0;
        for (int j = 0; j < n; ++j) {
            if (j == i)
                continue;
            const DeviceProgress& pj =
                *progress[static_cast<std::size_t>(j)];
            Tick dAt = pj.drainedAt[static_cast<std::size_t>(s)].load(
                std::memory_order_acquire);
            if (dAt != kInf) {
                if (!(dAt < tp || (dAt == tp && j < i)))
                    return true; // drained after the probe point
                continue;        // drained before it
            }
            Tick hj = pj.horizon.load(std::memory_order_acquire);
            if (hj > tp || (hj == tp && j > i))
                return true; // undrained and past the probe point
            pendingMask |= 1u << j;
        }
        if (!pendingMask)
            return false;
        // Spin on the stragglers; hand the run permit back after a
        // while so a probed device can be scheduled even when
        // hostThreads < devices.
        bool holding = true;
        bool answer = false;
        std::uint32_t spins = 0;
        while (pendingMask) {
            for (int j = 0; j < n && pendingMask; ++j) {
                if (!(pendingMask & (1u << j)))
                    continue;
                const DeviceProgress& pj =
                    *progress[static_cast<std::size_t>(j)];
                Tick dAt =
                    pj.drainedAt[static_cast<std::size_t>(s)].load(
                        std::memory_order_acquire);
                if (dAt != kInf) {
                    pendingMask &= ~(1u << j);
                    if (!(dAt < tp || (dAt == tp && j < i))) {
                        answer = true;
                        pendingMask = 0;
                    }
                    continue;
                }
                Tick hj =
                    pj.horizon.load(std::memory_order_acquire);
                if (hj > tp || (hj == tp && j > i)) {
                    answer = true;
                    pendingMask = 0;
                }
            }
            if (!pendingMask)
                break;
            if (holding && ++spins >= 512) {
                permits.release();
                holding = false;
            }
            std::this_thread::yield();
        }
        if (!holding)
            permits.acquire();
        return answer;
    };

    // The serial loop's live answer, valid while workers are parked.
    auto remoteWorkAtBarrier = [&](int i,
                                   StageMask relevant) -> bool {
        if (!exact && routedTotal - firedSum() > 0)
            return true;
        for (int j = 0; j < n; ++j)
            if (j != i
                && runners[static_cast<std::size_t>(j)]->localWork(
                    relevant))
                return true;
        return false;
    };

    for (int i = 0; i < n; ++i) {
        ShardContext& sc = shardCtxs[static_cast<std::size_t>(i)];
        if (exact) {
            sc.remoteWork = [&probeRemote, &remoteWorkAtBarrier,
                             &atBarrier,
                             i](StageMask relevant) -> bool {
                if (atBarrier)
                    return remoteWorkAtBarrier(i, relevant);
                return probeRemote(i, relevant);
            };
            sc.forward = [](int, int, std::uint64_t,
                            std::function<void(QueueBase&)>) {
                VP_ASSERT(false,
                          "cross-device forward under a "
                          "replicate-only plan");
            };
        } else {
            sc.remoteWork = [&frozenWork, &frozenTransit,
                             &remoteWorkAtBarrier, &atBarrier, i,
                             n](StageMask relevant) -> bool {
                if (atBarrier)
                    return remoteWorkAtBarrier(i, relevant);
                if (frozenTransit)
                    return true;
                for (int j = 0; j < n; ++j)
                    if (j != i
                        && (frozenWork[static_cast<std::size_t>(j)]
                            & relevant))
                        return true;
                return false;
            };
            // The parallel loop never runs with provenance armed
            // (gated in runShardedTimed); the id is dropped.
            sc.forward = [&outbox, &outboxSeq, &sims, &plan,
                          i](int stage, int bytes, std::uint64_t,
                             std::function<void(QueueBase&)>
                                 deliver) {
                VP_ASSERT(plan.homeDevice(stage) >= 0,
                          "remote forward of an unpinned stage");
                outbox[static_cast<std::size_t>(i)].push_back(
                    {stage, i, bytes,
                     sims[static_cast<std::size_t>(i)]->now(),
                     outboxSeq[static_cast<std::size_t>(i)]++,
                     std::move(deliver)});
            };
        }
        // Eligibility excludes bounded pinned stages, so the
        // cross-device credit scheme never charges anything (the
        // serial loop also answers false for unbounded stages).
        sc.remoteFull = [](int) { return false; };
        // Application code (stage execute()) may touch state shared
        // across devices; both tiers run it in merged event order.
        sc.execFence = [&awaitPeersPast, &sims, i] {
            awaitPeersPast(
                i, sims[static_cast<std::size_t>(i)]->now());
        };
    }

    // Scripted SM faults land directly on the target device's
    // simulator; a barrier just before each fault time decides
    // cancellation (the serial loop cancels on drain — outcome is
    // identical: the fault fires iff work is still pending at its
    // time).
    struct FaultEventRef
    {
        Tick time;
        int device;
        EventHandle handle;
    };
    std::vector<FaultEventRef> faultRefs;
    std::vector<Tick> faultBarriers;
    if (plan_ && !plan_->smEvents.empty()) {
        for (const SmFaultEvent& e : plan_->smEvents) {
            VP_CHECK(e.device >= 0 && e.device < n, ErrorCode::Config,
                     "fault plan: device " << e.device
                     << " out of range (group has " << n
                     << " devices)");
            Device& dev = group.device(e.device);
            VP_CHECK(e.sm >= 0 && e.sm < dev.numSms(),
                     ErrorCode::Config,
                     "fault plan: SM " << e.sm
                     << " out of range (device " << e.device
                     << " has " << dev.numSms() << " SMs)");
            EventHandle h = sims[static_cast<std::size_t>(e.device)]
                                ->at(e.time, [&dev, e] {
                                    if (dev.sm(e.sm).offline())
                                        return;
                                    if (e.kind
                                        == SmFaultEvent::Kind::Kill)
                                        dev.failSm(e.sm);
                                    else
                                        dev.degradeSm(e.sm,
                                                      e.factor);
                                });
            faultRefs.push_back({e.time, e.device, h});
            faultBarriers.push_back(
                std::nextafter(e.time, -kInf));
        }
        std::sort(faultBarriers.begin(), faultBarriers.end());
        faultBarriers.erase(std::unique(faultBarriers.begin(),
                                        faultBarriers.end()),
                            faultBarriers.end());
    }

    if (obs && obs->sampler.enabled()) {
        for (auto& r : runners)
            r->registerProbes(obs->sampler);
        obs->sampler.addSeries(
            "interconnect_in_flight",
            [&routedTotal, &firedSum, exact] {
                return exact ? 0.0
                             : static_cast<double>(routedTotal
                                                   - firedSum());
            });
    }

    bool adaptOn = false;
    if (adaptiveCfg_ && adaptiveCfg_->enabled) {
        adaptiveCfg_->validate();
        for (auto& r : runners)
            if (r->armAdaptive(*adaptiveCfg_))
                adaptOn = true;
    }

    GroupCoordinator::seedAllGrouped(driver, pipe, runners, plan,
                                     counters);
    for (auto& r : runners)
        r->start(driver);

    if (exact) {
        for (int i = 0; i < n; ++i) {
            StageMask wm =
                runners[static_cast<std::size_t>(i)]->localWorkMask();
            StageMask undr = 0;
            for (int s = 0; s < stageCount; ++s) {
                if (closure[static_cast<std::size_t>(s)] & wm)
                    undr |= StageMask(1) << s;
                else
                    progress[static_cast<std::size_t>(i)]
                        ->drainedAt[static_cast<std::size_t>(s)]
                        .store(-kInf, std::memory_order_relaxed);
            }
            undrained[static_cast<std::size_t>(i)] = undr;
        }
    }

    // ---- window machinery -------------------------------------

    WindowBarrier barrier(n);
    struct WindowPlan
    {
        Tick target = 0.0;
        std::uint64_t budget = 0;
    } wplan;
    std::vector<std::exception_ptr> workerErrors(
        static_cast<std::size_t>(n));
    std::atomic<bool> workerFailed{false};

    auto noteFailure = [&](int i, std::exception_ptr e) {
        workerErrors[static_cast<std::size_t>(i)] = std::move(e);
        workerFailed.store(true, std::memory_order_release);
        progress[static_cast<std::size_t>(i)]->horizon.store(
            kInf, std::memory_order_release);
    };

    auto runWindowExact = [&](int i) {
        Simulator& sim = *sims[static_cast<std::size_t>(i)];
        RunnerBase& runner = *runners[static_cast<std::size_t>(i)];
        DeviceProgress& pr = *progress[static_cast<std::size_t>(i)];
        std::uint64_t ran = 0;
        for (;;) {
            Tick t = sim.nextEventTime();
            pr.horizon.store(t, std::memory_order_release);
            if (t > wplan.target)
                break;
            if (ran >= wplan.budget) {
                // Event budget blown: the coordinator will fail the
                // run at the barrier; lift the horizon so no peer
                // spins on this device meanwhile.
                pr.horizon.store(kInf, std::memory_order_release);
                break;
            }
            sim.step();
            ++ran;
            StageMask undr = undrained[static_cast<std::size_t>(i)];
            if (undr) {
                StageMask wm = runner.localWorkMask();
                for (int s = 0; s < stageCount; ++s) {
                    StageMask bit = StageMask(1) << s;
                    if (!(undr & bit))
                        continue;
                    if (closure[static_cast<std::size_t>(s)] & wm)
                        continue;
                    pr.drainedAt[static_cast<std::size_t>(s)].store(
                        sim.now(), std::memory_order_release);
                    undr &= ~bit;
                }
                undrained[static_cast<std::size_t>(i)] = undr;
            }
        }
    };

    // Like Simulator::runUntil(target, budget), but advertising the
    // horizon before each event so execution fences see this
    // device's progress.
    auto runWindowConserving = [&](int i) {
        Simulator& sim = *sims[static_cast<std::size_t>(i)];
        DeviceProgress& pr = *progress[static_cast<std::size_t>(i)];
        std::uint64_t ran = 0;
        for (;;) {
            Tick t = sim.nextEventTime();
            pr.horizon.store(t, std::memory_order_release);
            if (t > wplan.target)
                break;
            if (ran >= wplan.budget) {
                pr.horizon.store(kInf, std::memory_order_release);
                break;
            }
            sim.step();
            ++ran;
        }
    };

    std::vector<std::thread> workers;
    struct WorkerScope
    {
        WindowBarrier& barrier;
        std::vector<std::thread>& threads;
        ~WorkerScope()
        {
            barrier.shutdown();
            for (std::thread& t : threads)
                if (t.joinable())
                    t.join();
        }
    } workerScope{barrier, workers};
    for (int i = 0; i < n; ++i)
        workers.emplace_back([&, i] {
            int gen = 0;
            for (;;) {
                if (!barrier.awaitGo(gen))
                    break;
                ++gen;
                permits.acquire();
                try {
                    if (exact)
                        runWindowExact(i);
                    else
                        runWindowConserving(i);
                } catch (...) {
                    noteFailure(i, std::current_exception());
                }
                permits.release();
                barrier.arrive();
            }
        });

    // ---- coordinator helpers ----------------------------------

    auto eventsSum = [&sims]() {
        std::uint64_t e = 0;
        for (const Simulator* s : sims)
            e += s->eventsRun();
        return e;
    };
    auto globalNow = [&sims]() {
        Tick t = 0.0;
        for (const Simulator* s : sims)
            t = std::max(t, s->now());
        return t;
    };
    auto minNextEvent = [&sims]() {
        Tick t = kInf;
        for (const Simulator* s : sims)
            t = std::min(t, s->nextEventTime());
        return t;
    };
    auto groupProgress = [&]() {
        std::uint64_t p = firedSum();
        for (const auto& r : runners)
            p += r->drainProgress();
        return p;
    };
    auto groupDiagnose = [&]() {
        std::ostringstream os;
        os << "interconnect: inFlight="
           << (exact ? 0 : routedTotal - firedSum()) << "\n";
        for (std::size_t i = 0; i < runners.size(); ++i)
            os << "device " << i << ":\n"
               << runners[i]->diagnoseStall();
        return os.str();
    };

    // Drain the window's outboxes: replay link occupancy in merged
    // submission order, then schedule the deliveries (arrival is
    // always >= the window end — any submit is >= the window-start
    // minimum next event, and the window ended at most lookahead
    // after that).
    auto flushMailboxes = [&]() {
        std::vector<MailboxPost> posts;
        for (auto& box : outbox) {
            for (MailboxPost& p : box)
                posts.push_back(std::move(p));
            box.clear();
        }
        if (posts.empty())
            return;
        std::sort(posts.begin(), posts.end(),
                  [](const MailboxPost& a, const MailboxPost& b) {
                      if (a.submit != b.submit)
                          return a.submit < b.submit;
                      if (a.srcDev != b.srcDev)
                          return a.srcDev < b.srcDev;
                      return a.srcSeq < b.srcSeq;
                  });
        struct Routed
        {
            Tick arrival;
            std::size_t idx;
        };
        std::vector<Routed> routed;
        routed.reserve(posts.size());
        for (std::size_t k = 0; k < posts.size(); ++k) {
            const MailboxPost& p = posts[k];
            int home = plan.homeDevice(p.stage);
            Tick arrival =
                icx.route(p.srcDev, home,
                          static_cast<double>(p.bytes), p.submit);
            if (tracer)
                tracer->span(TraceKind::Transfer,
                             static_cast<std::int16_t>(home),
                             p.submit, arrival - p.submit, p.srcDev,
                             p.bytes);
            ++routedTotal;
            transitTimeline.push_back({p.submit, +1});
            transitTimeline.push_back({arrival, -1});
            routed.push_back({arrival, k});
        }
        std::stable_sort(routed.begin(), routed.end(),
                         [](const Routed& a, const Routed& b) {
                             return a.arrival < b.arrival;
                         });
        for (const Routed& r : routed) {
            MailboxPost& p = posts[r.idx];
            int home = plan.homeDevice(p.stage);
            std::uint64_t hint = deliveryHint++;
            RunnerBase* homeRunner =
                runners[static_cast<std::size_t>(home)].get();
            std::uint64_t* fired =
                &deliveredFired[static_cast<std::size_t>(home)];
            sims[static_cast<std::size_t>(home)]->at(
                r.arrival,
                [deliver = std::move(p.deliver), homeRunner,
                 stage = p.stage, hint, fired] {
                    ++*fired;
                    deliver(homeRunner->deliveryQueue(stage, hint));
                });
        }
    };

    bool watchdogOn = faulted && rc.watchdogIntervalCycles > 0.0;
    bool timeoutOn = faulted && rc.drainTimeoutCycles > 0.0;
    bool samplerOn = obs && obs->sampler.enabled();

    // ---- the window loop --------------------------------------

    bool drained = false;
    std::optional<RunOutcome> failure;
    std::string reason;
    std::uint64_t lastProgress = groupProgress();
    std::uint64_t lastEvents = 0;
    int stalledChecks = 0;
    Tick checkpoint = watchdogOn ? rc.watchdogIntervalCycles : kInf;
    Tick sampNext = samplerOn ? obs->sampler.interval() : kInf;
    Tick adaptNext = adaptOn ? adaptiveCfg_->epochCycles : kInf;
    std::size_t nextFaultBarrier = 0;
    bool workerThrew = false;

    for (;;) {
        Tick minNext = minNextEvent();
        if (minNext == kInf) {
            drained = true;
            break;
        }
        Tick target =
            std::min({checkpoint, sampNext, adaptNext, cycleLimit});
        if (timeoutOn)
            target = std::min(target, rc.drainTimeoutCycles);
        if (nextFaultBarrier < faultBarriers.size())
            target =
                std::min(target, faultBarriers[nextFaultBarrier]);
        if (!exact)
            target = std::min(target, minNext + lookahead);

        std::uint64_t soFar = eventsSum();
        wplan.target = target;
        wplan.budget =
            eventLimit_ > soFar ? eventLimit_ - soFar : 0;

        // Refresh the progress advertisements / frozen snapshot:
        // the coordinator may have changed simulator state since
        // the last window (deliveries, fault cancellation,
        // adaptive launches).
        for (int j = 0; j < n; ++j)
            progress[static_cast<std::size_t>(j)]->horizon.store(
                sims[static_cast<std::size_t>(j)]->nextEventTime(),
                std::memory_order_release);
        if (!exact) {
            for (int j = 0; j < n; ++j)
                frozenWork[static_cast<std::size_t>(j)] =
                    runners[static_cast<std::size_t>(j)]
                        ->localWorkMask();
            frozenTransit = routedTotal - firedSum() > 0;
        }

        atBarrier = false;
        barrier.release();
        barrier.awaitAll();
        atBarrier = true;

        if (workerFailed.load(std::memory_order_acquire)) {
            workerThrew = true;
            break;
        }
        if (!exact)
            flushMailboxes();

        if (minNextEvent() == kInf) {
            drained = true;
            break;
        }
        if (eventsSum() >= eventLimit_ || target >= cycleLimit)
            break;
        if (nextFaultBarrier < faultBarriers.size()
            && target >= faultBarriers[nextFaultBarrier]) {
            ++nextFaultBarrier;
            if (groupPending() == 0) {
                for (const FaultEventRef& f : faultRefs)
                    sims[static_cast<std::size_t>(f.device)]->cancel(
                        f.handle);
                nextFaultBarrier = faultBarriers.size();
            }
        }
        if (samplerOn && target >= sampNext) {
            obs->sampler.sampleAt(sampNext);
            sampNext += obs->sampler.interval();
        }
        if (adaptOn && target >= adaptNext) {
            // Epochs fire at a common group time, like the serial
            // loop's shared clock; the clock-only advance is legal
            // because every remaining event lies beyond the window.
            Tick gnow = globalNow();
            for (Simulator* s : sims)
                if (s->pendingEvents() == 0
                    || s->nextEventTime() + 1e-9 >= gnow)
                    s->advanceTo(gnow);
            for (auto& r : runners)
                r->adaptEpoch();
            adaptNext += adaptiveCfg_->epochCycles;
        }
        if (timeoutOn && target >= rc.drainTimeoutCycles) {
            failure = RunOutcome::DrainTimeout;
            reason = "global drain timeout ("
                + std::to_string(rc.drainTimeoutCycles)
                + " cycles) elapsed\n" + groupDiagnose();
            break;
        }
        if (!watchdogOn || target < checkpoint)
            continue;
        std::uint64_t progressNow = groupProgress();
        std::uint64_t events = eventsSum();
        if (tracer)
            tracer->instant(TraceKind::WatchdogCheck, 0,
                            globalNow(), stalledChecks);
        if (progressNow != lastProgress) {
            stalledChecks = 0;
        } else if (events != lastEvents && groupPending() > 0) {
            if (++stalledChecks >= rc.watchdogStallChecks) {
                failure = RunOutcome::Stalled;
                reason = "watchdog: no drain progress for "
                    + std::to_string(stalledChecks) + " checks\n"
                    + groupDiagnose();
                break;
            }
        }
        lastProgress = progressNow;
        lastEvents = events;
        checkpoint += rc.watchdogIntervalCycles;
    }

    barrier.shutdown();
    for (std::thread& t : workers)
        if (t.joinable())
            t.join();

    if (workerThrew)
        for (const std::exception_ptr& e : workerErrors)
            if (e)
                std::rethrow_exception(e);

    // ---- merge and report -------------------------------------

    if (!exact) {
        std::uint64_t fired = firedSum();
        std::sort(transitTimeline.begin(), transitTimeline.end());
        std::int64_t cur = 0;
        std::uint64_t peak = 0;
        for (const auto& [t, d] : transitTimeline) {
            cur += d;
            peak = std::max(peak, static_cast<std::uint64_t>(
                                      std::max<std::int64_t>(cur,
                                                             0)));
        }
        icx.setDeliveryCounters(fired, routedTotal - fired, peak);
    }

    bool obsMerged = false;
    auto mergeObs = [&]() {
        if (!obs || obsMerged)
            return;
        obsMerged = true;
        obs->stageNames = shardObs[0]->stageNames;
        obs->stageBatchCycles = shardObs[0]->stageBatchCycles;
        for (int i = 1; i < n; ++i) {
            const ObsData& sh = *shardObs[static_cast<std::size_t>(
                i)];
            for (std::size_t s = 0;
                 s < obs->stageBatchCycles.size()
                 && s < sh.stageBatchCycles.size();
                 ++s)
                obs->stageBatchCycles[s].merge(
                    sh.stageBatchCycles[s]);
        }
        for (int i = 0; i < n; ++i) {
            const ObsData& sh = *shardObs[static_cast<std::size_t>(
                i)];
            obs->tracer.absorb(sh.tracer);
            for (const auto& [name, c] : sh.metrics.counters())
                obs->metrics.counter(name).add(c.value());
            for (const auto& [name, g] : sh.metrics.gauges())
                obs->metrics.gauge(name).set(g.value());
        }
    };
    mergeObs();

    Tick gnow = globalNow();
    auto collectMerged = [&]() {
        for (Simulator* s : sims)
            if (s->pendingEvents() == 0
                || s->nextEventTime() + 1e-9 >= gnow)
                s->advanceTo(gnow);
        RunResult merged = runners[0]->collect();
        std::vector<RunResult> per;
        per.push_back(merged);
        for (int i = 1; i < n; ++i) {
            per.push_back(
                runners[static_cast<std::size_t>(i)]->collect());
            groupdetail::mergeRunnerResult(merged, per.back());
        }
        double steals = 0.0;
        double adEpochs = 0.0;
        double adMoves = 0.0;
        for (const RunResult& ri : per) {
            steals += ri.extra.get("steals");
            adEpochs += ri.extra.get("adaptiveEpochs");
            adMoves += ri.extra.get("adaptiveMoves");
        }
        merged.extra.set("steals", steals);
        if (adaptOn) {
            merged.extra.set("adaptiveEpochs", adEpochs);
            merged.extra.set("adaptiveMoves", adMoves);
        }

        merged.cycles = gnow;
        merged.ms = gcfg.devices[0].cyclesToMs(merged.cycles);
        merged.simEvents = eventsSum();
        merged.deviceName = gcfg.describe();
        merged.configName = config.describe(pipe) + " shard="
            + plan.describe();
        merged.interconnect = icx.stats();

        double issue = 0.0;
        for (int i = 0; i < n; ++i) {
            ShardDeviceStats sd;
            sd.deviceName =
                gcfg.devices[static_cast<std::size_t>(i)].name;
            sd.device = per[static_cast<std::size_t>(i)].device;
            sd.host = per[static_cast<std::size_t>(i)].host;
            sd.smUtilization =
                per[static_cast<std::size_t>(i)].smUtilization;
            merged.shardDevices.push_back(std::move(sd));
            for (int s = 0; s < group.device(i).numSms(); ++s)
                issue += group.device(i).sm(s).stats().issueCycles;
        }
        if (merged.cycles > 0.0 && group.totalSms() > 0)
            merged.smUtilization =
                issue / (merged.cycles * group.totalSms());
        return merged;
    };

    auto finishObs = [&](RunResult& result) {
        if (!obs)
            return;
        if (tracer) {
            tracer->span(TraceKind::RunSpan, 0, 0.0, gnow,
                         tracer->intern(result.configName));
        }
        result.obs = obs;
    };
    auto attachTraceTail = [&](std::string& why) {
        if (tracer && obs->config.diagnosticTailEvents > 0) {
            why += "\nlast trace events:\n"
                + tracer->tail(obs->config.diagnosticTailEvents);
        }
    };

    if (failure) {
        RunResult result = collectMerged();
        result.completed = false;
        result.outcome = *failure;
        attachTraceTail(reason);
        result.failureReason = std::move(reason);
        result.faults.watchdogFired = *failure == RunOutcome::Stalled;
        finishObs(result);
        return result;
    }
    if (!drained) {
        VP_CHECK(eventsSum() < eventLimit_, ErrorCode::Livelock,
                 "sharded run exceeded the event limit ("
                 << eventLimit_ << ") — livelock in config `"
                 << config.describe(pipe) << "`?");
        VP_DEBUG("engine: sharded timeout at " << gnow
                 << " cycles for `" << config.describe(pipe) << "`");
        return std::nullopt;
    }
    if (groupPending() != 0) {
        if (faulted) {
            RunResult result = collectMerged();
            result.completed = false;
            result.outcome = RunOutcome::Stalled;
            std::string why = "drained events but work is left\n"
                + groupDiagnose();
            attachTraceTail(why);
            result.failureReason = std::move(why);
            finishObs(result);
            return result;
        }
        VP_REQUIRE(false,
                   "sharded run drained events but left work pending "
                   "(config `" << config.describe(pipe) << "`)");
    }

    RunResult result = collectMerged();
    result.completed = driver.verify();
    if (result.completed) {
        result.outcome = RunOutcome::Completed;
    } else if (result.faults.deadLettered > 0
               || result.faults.droppedPushes > 0) {
        result.outcome = RunOutcome::Degraded;
    } else {
        result.outcome = RunOutcome::VerifyFailed;
    }
    finishObs(result);
    return result;
}

} // namespace vp

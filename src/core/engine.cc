#include "core/engine.hh"

#include "common/logging.hh"

namespace vp {

Engine::Engine(DeviceConfig cfg)
    : cfg_(std::move(cfg))
{
}

RunResult
Engine::run(AppDriver& driver, const PipelineConfig& config) const
{
    auto r = runTimed(driver, config,
                      std::numeric_limits<double>::infinity());
    VP_ASSERT(r.has_value(), "untimed run reported a timeout");
    return *r;
}

std::optional<RunResult>
Engine::runTimed(AppDriver& driver, const PipelineConfig& config,
                 double cycleLimit) const
{
    Pipeline& pipe = driver.pipeline();
    pipe.validate();
    config.validate(pipe, cfg_);
    driver.reset();
    pipe.resetStages();

    Simulator sim;
    Device dev(sim, cfg_);
    Host host(sim, dev);
    auto runner = makeRunner(sim, dev, host, pipe, config);

    runner->start(driver);
    bool drained = sim.runUntil(cycleLimit, eventLimit_);
    if (!drained) {
        VP_REQUIRE(sim.eventsRun() < eventLimit_,
                   "run exceeded the event limit ("
                   << eventLimit_ << ") — livelock in config `"
                   << config.describe(pipe) << "`?");
        VP_DEBUG("engine: timeout at " << sim.now() << " cycles for `"
                 << config.describe(pipe) << "`");
        return std::nullopt;
    }
    VP_REQUIRE(runner->pending().value() == 0,
               "run drained events but left work pending (config `"
               << config.describe(pipe) << "`)");

    RunResult result = runner->collect();
    result.completed = driver.verify();
    return result;
}

} // namespace vp

#include "core/engine.hh"

#include <limits>
#include <string>

#include "common/logging.hh"

namespace vp {

Engine::Engine(DeviceConfig cfg)
    : cfg_(std::move(cfg))
{
}

RunResult
Engine::run(AppDriver& driver, const PipelineConfig& config) const
{
    auto r = runTimed(driver, config,
                      std::numeric_limits<double>::infinity());
    VP_ASSERT(r.has_value(), "untimed run reported a timeout");
    return *r;
}

std::optional<RunResult>
Engine::runTimed(AppDriver& driver, const PipelineConfig& config,
                 double cycleLimit) const
{
    Pipeline& pipe = driver.pipeline();
    pipe.validate();
    config.validate(pipe, cfg_);
    driver.reset();
    pipe.resetStages();

    Simulator sim;
    Device dev(sim, cfg_);
    Host host(sim, dev);

    // All fault/recovery state lives on this stack frame, keeping
    // runTimed const and re-entrant: repeated runs under the same
    // plan are bit-reproducible because each builds a fresh seeded
    // injector.
    std::optional<FaultInjector> injector;
    FaultContext fc;
    RecoveryConfig rc;
    bool faulted = plan_.has_value() || recovery_.has_value();
    if (plan_) {
        plan_->validate();
        injector.emplace(*plan_);
        fc.injector = &*injector;
        dev.setFaultInjector(&*injector);
    }
    if (recovery_) {
        recovery_->validate();
        rc = *recovery_;
        fc.recovery = &*recovery_;
    }

    auto runner = makeRunner(sim, dev, host, pipe, config, fc);

    // Scripted SM failures/degradations become ordinary engine
    // events. Outstanding ones are cancelled when the pipeline
    // drains, so a fault scheduled past the natural end of the run
    // neither fires into a dead device nor inflates the run time.
    if (plan_ && !plan_->smEvents.empty()) {
        auto handles = std::make_shared<std::vector<EventHandle>>();
        for (const SmFaultEvent& e : plan_->smEvents) {
            VP_CHECK(e.sm >= 0 && e.sm < dev.numSms(),
                     ErrorCode::Config,
                     "fault plan: SM " << e.sm
                     << " out of range (device has " << dev.numSms()
                     << " SMs)");
            handles->push_back(sim.at(e.time, [&dev, e] {
                if (dev.sm(e.sm).offline())
                    return;
                if (e.kind == SmFaultEvent::Kind::Kill)
                    dev.failSm(e.sm);
                else
                    dev.degradeSm(e.sm, e.factor);
            }));
        }
        runner->pending().notifyOnDrain([&sim, handles] {
            for (EventHandle h : *handles)
                sim.cancel(h);
        });
    }

    runner->start(driver);

    bool watchdogOn = faulted && rc.watchdogIntervalCycles > 0.0;
    bool timeoutOn = faulted && rc.drainTimeoutCycles > 0.0;

    bool drained;
    std::optional<RunOutcome> failure;
    std::string reason;
    if (!watchdogOn && !timeoutOn) {
        drained = sim.runUntil(cycleLimit, eventLimit_);
    } else {
        // Slice the run at watchdog checkpoints and sample the
        // runner's drain-progress heartbeat between slices. This
        // costs no simulation events, so a healthy run's event
        // trace — and cycle count — is identical to an unsupervised
        // one.
        std::uint64_t lastProgress = runner->drainProgress();
        std::uint64_t lastEvents = sim.eventsRun();
        int stalledChecks = 0;
        Tick checkpoint = watchdogOn
            ? rc.watchdogIntervalCycles
            : std::numeric_limits<Tick>::infinity();
        for (;;) {
            Tick target = std::min(checkpoint, cycleLimit);
            if (timeoutOn)
                target = std::min(target, rc.drainTimeoutCycles);
            std::uint64_t budget = eventLimit_ > sim.eventsRun()
                ? eventLimit_ - sim.eventsRun()
                : 0;
            drained = sim.runUntil(target, budget);
            if (drained)
                break;
            if (sim.eventsRun() >= eventLimit_ || target >= cycleLimit)
                break;
            if (timeoutOn && target >= rc.drainTimeoutCycles) {
                failure = RunOutcome::DrainTimeout;
                reason = "global drain timeout ("
                    + std::to_string(rc.drainTimeoutCycles)
                    + " cycles) elapsed\n" + runner->diagnoseStall();
                break;
            }
            std::uint64_t progress = runner->drainProgress();
            std::uint64_t events = sim.eventsRun();
            if (progress != lastProgress) {
                stalledChecks = 0;
            } else if (events != lastEvents
                       && runner->pending().value() > 0) {
                // Events are being dispatched but the queues are
                // silent: the pipeline is spinning (polls, commit
                // retries) without moving work. A window with NO
                // events is not counted — the simulator is merely
                // jumping time toward a scheduled future event
                // (memcpy completion, retry backoff), which is
                // legitimate waiting, not a stall.
                if (++stalledChecks >= rc.watchdogStallChecks) {
                    failure = RunOutcome::Stalled;
                    reason = "watchdog: no drain progress for "
                        + std::to_string(stalledChecks)
                        + " checks\n" + runner->diagnoseStall();
                    break;
                }
            }
            lastProgress = progress;
            lastEvents = events;
            checkpoint += rc.watchdogIntervalCycles;
        }
    }

    if (failure) {
        RunResult result = runner->collect();
        result.completed = false;
        result.outcome = *failure;
        result.failureReason = std::move(reason);
        result.faults.watchdogFired =
            *failure == RunOutcome::Stalled;
        return result;
    }
    if (!drained) {
        VP_CHECK(sim.eventsRun() < eventLimit_, ErrorCode::Livelock,
                 "run exceeded the event limit ("
                 << eventLimit_ << ") — livelock in config `"
                 << config.describe(pipe) << "`?");
        VP_DEBUG("engine: timeout at " << sim.now() << " cycles for `"
                 << config.describe(pipe) << "`");
        return std::nullopt;
    }
    if (runner->pending().value() != 0) {
        if (faulted) {
            // With faults in play, leftover work is a diagnosable
            // stall (e.g., every SM died), not a programming error.
            RunResult result = runner->collect();
            result.completed = false;
            result.outcome = RunOutcome::Stalled;
            result.failureReason = "drained events but work is left\n"
                + runner->diagnoseStall();
            return result;
        }
        VP_REQUIRE(false,
                   "run drained events but left work pending (config `"
                   << config.describe(pipe) << "`)");
    }

    RunResult result = runner->collect();
    result.completed = driver.verify();
    if (result.completed) {
        result.outcome = RunOutcome::Completed;
    } else if (result.faults.deadLettered > 0
               || result.faults.droppedPushes > 0) {
        result.outcome = RunOutcome::Degraded;
    } else {
        result.outcome = RunOutcome::VerifyFailed;
    }
    return result;
}

} // namespace vp

#include "core/engine.hh"

#include <algorithm>
#include <limits>
#include <memory>
#include <string>

#include "common/logging.hh"
#include "core/serve_hook.hh"

namespace vp {

Engine::Engine(DeviceConfig cfg)
    : cfg_(std::move(cfg))
{
}

RunResult
Engine::run(AppDriver& driver, const PipelineConfig& config) const
{
    auto r = runTimed(driver, config,
                      std::numeric_limits<double>::infinity());
    VP_ASSERT(r.has_value(), "untimed run reported a timeout");
    return *r;
}

std::optional<RunResult>
Engine::runTimed(AppDriver& driver, const PipelineConfig& config,
                 double cycleLimit) const
{
    Pipeline& pipe = driver.pipeline();
    pipe.validate();
    config.validate(pipe, cfg_);
    driver.reset();
    pipe.resetStages();

    Simulator sim;
    Device dev(sim, cfg_);
    Host host(sim, dev);

    // Under VP_LOG=trace, prefix every record of this run with the
    // simulated clock (and SM id, tagged in processBatch). RAII so
    // every return path — including structured failures — uninstalls
    // the hook; other levels never pay the std::function call.
    struct LogClockScope
    {
        bool armed = false;
        explicit LogClockScope(Simulator* s)
        {
            if (Logger::enabled(LogLevel::Trace)) {
                armed = true;
                Logger::setClock([s] { return s->now(); });
            }
        }
        ~LogClockScope()
        {
            if (armed) {
                Logger::setClock({});
                Logger::setSm(-1);
            }
        }
    } logClock(&sim);

    // All fault/recovery state lives on this stack frame, keeping
    // runTimed const and re-entrant: repeated runs under the same
    // plan are bit-reproducible because each builds a fresh seeded
    // injector.
    std::optional<FaultInjector> injector;
    FaultContext fc;
    RecoveryConfig rc;
    bool faulted = plan_.has_value() || recovery_.has_value();

    // Observability state is per-run and shares the run's stack
    // discipline: a fresh ObsData keeps repeated runs independent,
    // and the shared_ptr survives into RunResult::obs so callers can
    // export traces after the run stack unwinds.
    std::shared_ptr<ObsData> obs;
    if (obsCfg_) {
        obs = std::make_shared<ObsData>(*obsCfg_, &sim);
        dev.setTracer(obs->tracerPtr());
        fc.obs = obs.get();
    }

    if (plan_) {
        plan_->validate();
        // Eager target validation: a scripted event aimed at a
        // device/SM/stage this run does not have is rejected up
        // front instead of silently never firing.
        plan_->validateTargets({dev.numSms()}, pipe.stageCount());
        VP_CHECK(!plan_->anyDeviceFaults() && !plan_->anyLinkFaults(),
                 ErrorCode::Config,
                 "fault plan scripts device/link failures but this "
                 "is a single-device run");
        injector.emplace(*plan_);
        fc.injector = &*injector;
        dev.setFaultInjector(&*injector);
    }
    if (recovery_) {
        recovery_->validate();
        rc = *recovery_;
        fc.recovery = &*recovery_;
    }

    auto runner = makeRunner(sim, dev, host, pipe, config, fc);

    // Scripted SM failures/degradations become ordinary engine
    // events. Outstanding ones are cancelled when the pipeline
    // drains, so a fault scheduled past the natural end of the run
    // neither fires into a dead device nor inflates the run time.
    if (plan_ && !plan_->smEvents.empty()) {
        auto handles = std::make_shared<std::vector<EventHandle>>();
        for (const SmFaultEvent& e : plan_->smEvents) {
            // Range checks already ran in validateTargets above.
            handles->push_back(sim.at(e.time, [&dev, e] {
                if (dev.sm(e.sm).offline())
                    return;
                if (e.kind == SmFaultEvent::Kind::Kill)
                    dev.failSm(e.sm);
                else
                    dev.degradeSm(e.sm, e.factor);
            }));
        }
        runner->pending().notifyOnDrain([&sim, handles] {
            for (EventHandle h : *handles)
                sim.cancel(h);
        });
    }

    if (obs && obs->sampler.enabled())
        runner->registerProbes(obs->sampler);

    // Arm the adaptive load-balance controller (if configured and
    // the runner has an adjustable partition) before seeding, so the
    // depth EWMAs see every push from the first item on.
    bool adaptOn = false;
    if (adaptiveCfg_ && adaptiveCfg_->enabled) {
        adaptiveCfg_->validate();
        adaptOn = runner->armAdaptive(*adaptiveCfg_);
    }

    runner->start(driver);

    // Serving mode: the attached session ingests requests at epoch
    // boundaries through a run-lifetime Seeder and re-wakes retired
    // kernels; provenance lineage closure reports request completion
    // back to it (core/serve_hook.hh).
    bool serveOn = serve_ != nullptr;
    Tick serveEpoch = 0.0;
    bool serveActive = false;
    Seeder serveSeeder;
    if (serveOn) {
        VP_CHECK(config.top == PipelineConfig::Top::Groups,
                 ErrorCode::Config,
                 "serving requires a Groups configuration");
        VP_CHECK(obs && obs->provenance, ErrorCode::Config,
                 "serving requires an armed provenance tracker "
                 "(ServingEngine arms it; request roots are "
                 "force-tracked regardless of the sampling stride)");
        VP_CHECK(!plan_ || plan_->smEvents.empty(), ErrorCode::Config,
                 "serving cannot combine with scripted SM fault "
                 "events (their drain-cancellation trigger assumes "
                 "the one-shot drain)");
        serveEpoch = serve_->epochCycles();
        VP_CHECK(serveEpoch > 0.0, ErrorCode::Config,
                 "serve session must use a positive epoch period");
        serveSeeder = runner->serveSeeder();
        ServeBinding sb;
        sb.sim = &sim;
        sb.seeder = &serveSeeder;
        sb.obs = obs.get();
        sb.wake = [r = runner.get()] { r->serveWake(); };
        sb.queueTraffic = [r = runner.get()] {
            return r->drainProgress();
        };
        serve_->begin(sb);
        serveActive = true;
    }

    Tracer* tracer = obs ? obs->tracerPtr() : nullptr;

    bool watchdogOn = faulted && rc.watchdogIntervalCycles > 0.0;
    bool timeoutOn = faulted && rc.drainTimeoutCycles > 0.0;
    bool samplerOn = obs && obs->sampler.enabled();

    bool drained;
    std::optional<RunOutcome> failure;
    std::string reason;
    if (!watchdogOn && !timeoutOn && !samplerOn && !adaptOn
        && !serveOn) {
        drained = sim.runUntil(cycleLimit, eventLimit_);
    } else {
        // Slice the run at watchdog checkpoints and sampler
        // boundaries, and sample the runner's drain-progress
        // heartbeat / metric probes between slices. This costs no
        // simulation events, so a healthy run's event trace — and
        // cycle count — is identical to an unsupervised one.
        std::uint64_t lastProgress = runner->drainProgress();
        std::uint64_t lastEvents = sim.eventsRun();
        int stalledChecks = 0;
        constexpr Tick kInf = std::numeric_limits<Tick>::infinity();
        Tick checkpoint =
            watchdogOn ? rc.watchdogIntervalCycles : kInf;
        Tick sampNext = samplerOn ? obs->sampler.interval() : kInf;
        Tick adaptNext = adaptOn ? adaptiveCfg_->epochCycles : kInf;
        Tick serveNext = serveActive ? serveEpoch : kInf;
        for (;;) {
            Tick target =
                std::min({checkpoint, sampNext, adaptNext, serveNext,
                          cycleLimit});
            if (timeoutOn)
                target = std::min(target, rc.drainTimeoutCycles);
            std::uint64_t budget = eventLimit_ > sim.eventsRun()
                ? eventLimit_ - sim.eventsRun()
                : 0;
            drained = sim.runUntil(target, budget);
            if (drained) {
                if (serveActive) {
                    // The pipeline idled dry between bursts: hop the
                    // clock to the next epoch boundary (legal — no
                    // pending events) and let the session refill it.
                    if (sim.now() < serveNext)
                        sim.advanceTo(serveNext);
                    serveActive = serve_->epoch(serveNext);
                    serveNext = serveActive ? serveNext + serveEpoch
                                            : kInf;
                    continue;
                }
                break;
            }
            if (sim.eventsRun() >= eventLimit_ || target >= cycleLimit)
                break;
            if (samplerOn && target >= sampNext) {
                obs->sampler.sampleAt(sampNext);
                sampNext += obs->sampler.interval();
            }
            if (adaptOn && target >= adaptNext) {
                runner->adaptEpoch();
                adaptNext += adaptiveCfg_->epochCycles;
            }
            if (serveActive && target >= serveNext) {
                // runUntil already delivered every event at or
                // before the boundary, so the hop is zero-event.
                if (sim.now() < serveNext)
                    sim.advanceTo(serveNext);
                serveActive = serve_->epoch(serveNext);
                serveNext = serveActive ? serveNext + serveEpoch
                                        : kInf;
            }
            if (timeoutOn && target >= rc.drainTimeoutCycles) {
                failure = RunOutcome::DrainTimeout;
                reason = "global drain timeout ("
                    + std::to_string(rc.drainTimeoutCycles)
                    + " cycles) elapsed\n" + runner->diagnoseStall();
                break;
            }
            if (!watchdogOn || target < checkpoint)
                continue;
            std::uint64_t progress = runner->drainProgress();
            std::uint64_t events = sim.eventsRun();
            if (tracer) {
                tracer->instant(TraceKind::WatchdogCheck, 0,
                                sim.now(), stalledChecks);
            }
            if (progress != lastProgress) {
                stalledChecks = 0;
            } else if (events != lastEvents
                       && runner->pending().value() > 0) {
                // Events are being dispatched but the queues are
                // silent: the pipeline is spinning (polls, commit
                // retries) without moving work. A window with NO
                // events is not counted — the simulator is merely
                // jumping time toward a scheduled future event
                // (memcpy completion, retry backoff), which is
                // legitimate waiting, not a stall.
                if (++stalledChecks >= rc.watchdogStallChecks) {
                    failure = RunOutcome::Stalled;
                    reason = "watchdog: no drain progress for "
                        + std::to_string(stalledChecks)
                        + " checks\n" + runner->diagnoseStall();
                    break;
                }
            }
            lastProgress = progress;
            lastEvents = events;
            checkpoint += rc.watchdogIntervalCycles;
        }
    }

    // Close out the run's trace and attach the observability data to
    // whatever result goes back to the caller. On failure paths the
    // tail of the trace ring is the flight recorder: append it to the
    // diagnostic so post-mortems need no separate export step.
    auto finishObs = [&](RunResult& result) {
        if (serve_)
            serve_->finish(result, sim.now());
        if (!obs)
            return;
        if (tracer) {
            tracer->span(TraceKind::RunSpan, 0, 0.0, sim.now(),
                         tracer->intern(config.describe(pipe)));
        }
        if (obs->provenance)
            obs->provenance->finalize(obs->metrics);
        result.obs = obs;
    };
    auto attachTraceTail = [&](std::string& why) {
        if (tracer && obs->config.diagnosticTailEvents > 0) {
            why += "\nlast trace events:\n"
                + tracer->tail(obs->config.diagnosticTailEvents);
        }
    };

    if (failure) {
        RunResult result = runner->collect();
        result.completed = false;
        result.outcome = *failure;
        attachTraceTail(reason);
        result.failureReason = std::move(reason);
        result.faults.watchdogFired =
            *failure == RunOutcome::Stalled;
        finishObs(result);
        return result;
    }
    if (!drained) {
        VP_CHECK(sim.eventsRun() < eventLimit_, ErrorCode::Livelock,
                 "run exceeded the event limit ("
                 << eventLimit_ << ") — livelock in config `"
                 << config.describe(pipe) << "`?");
        VP_DEBUG("engine: timeout at " << sim.now() << " cycles for `"
                 << config.describe(pipe) << "`");
        return std::nullopt;
    }
    if (runner->pending().value() != 0) {
        if (faulted) {
            // With faults in play, leftover work is a diagnosable
            // stall (e.g., every SM died), not a programming error.
            RunResult result = runner->collect();
            result.completed = false;
            result.outcome = RunOutcome::Stalled;
            std::string why = "drained events but work is left\n"
                + runner->diagnoseStall();
            attachTraceTail(why);
            result.failureReason = std::move(why);
            finishObs(result);
            return result;
        }
        VP_REQUIRE(false,
                   "run drained events but left work pending (config `"
                   << config.describe(pipe) << "`)");
    }

    RunResult result = runner->collect();
    // A serving run has no one-shot verify(): the pipeline was
    // re-seeded continuously, so per-request conservation — checked
    // by the session — replaces the app's whole-workload check.
    result.completed = serve_ ? true : driver.verify();
    if (result.completed) {
        result.outcome = RunOutcome::Completed;
    } else if (result.faults.deadLettered > 0
               || result.faults.droppedPushes > 0) {
        result.outcome = RunOutcome::Degraded;
    } else {
        result.outcome = RunOutcome::VerifyFailed;
    }
    finishObs(result);
    return result;
}

} // namespace vp

#include "core/pipeline.hh"

#include <optional>

namespace vp {

const char*
structureName(PipelineStructure s)
{
    switch (s) {
      case PipelineStructure::Linear: return "linear";
      case PipelineStructure::Loop: return "loop";
      case PipelineStructure::Recursion: return "recursion";
    }
    return "?";
}

void
Pipeline::link(int from, int to)
{
    VP_REQUIRE(from >= 0 && from < stageCount(),
               "link: bad source stage " << from);
    VP_REQUIRE(to >= 0 && to < stageCount(),
               "link: bad target stage " << to);
    for (const auto& [f, t] : edges_)
        if (f == from && t == to)
            return; // idempotent
    edges_.emplace_back(from, to);
}

StageBase&
Pipeline::stage(int i)
{
    VP_REQUIRE(i >= 0 && i < stageCount(), "stage index " << i
               << " out of range");
    return *stages_[i];
}

const StageBase&
Pipeline::stage(int i) const
{
    VP_REQUIRE(i >= 0 && i < stageCount(), "stage index " << i
               << " out of range");
    return *stages_[i];
}

int
Pipeline::indexOfType(std::type_index ti) const
{
    auto it = byType_.find(ti);
    VP_REQUIRE(it != byType_.end(),
               "stage type not registered in this pipeline");
    return it->second;
}

void
Pipeline::refreshMasks() const
{
    std::pair<std::size_t, std::size_t> key{stages_.size(),
                                            edges_.size()};
    if (key == maskKey_)
        return;
    int n = stageCount();
    producerMasks_.assign(n, 0);
    consumerMasks_.assign(n, 0);
    for (const auto& [f, t] : edges_) {
        producerMasks_[t] |= StageMask(1) << f;
        consumerMasks_[f] |= StageMask(1) << t;
    }
    ancestorMasks_.assign(n, 0);
    for (int s = 0; s < n; ++s) {
        // Fixed-point over the reverse edges.
        StageMask frontier = producerMasks_[s];
        StageMask seen = frontier;
        while (frontier) {
            StageMask next = 0;
            for (int i = 0; i < n; ++i)
                if (frontier & (StageMask(1) << i))
                    next |= producerMasks_[i];
            frontier = next & ~seen;
            seen |= next;
        }
        ancestorMasks_[s] = seen;
    }
    maskKey_ = key;
}

StageMask
Pipeline::producersOf(int s) const
{
    if (s < 0 || s >= stageCount())
        return 0;
    refreshMasks();
    return producerMasks_[s];
}

StageMask
Pipeline::consumersOf(int s) const
{
    if (s < 0 || s >= stageCount())
        return 0;
    refreshMasks();
    return consumerMasks_[s];
}

StageMask
Pipeline::ancestorsOf(int s) const
{
    if (s < 0 || s >= stageCount())
        return 0;
    refreshMasks();
    return ancestorMasks_[s];
}

bool
Pipeline::hasCycle() const
{
    for (int i = 0; i < stageCount(); ++i)
        if (ancestorsOf(i) & (StageMask(1) << i))
            return true;
    return false;
}

PipelineStructure
Pipeline::structure() const
{
    if (explicit_)
        return *explicit_;
    return hasCycle() ? PipelineStructure::Recursion
                      : PipelineStructure::Linear;
}

void
Pipeline::resetStages()
{
    for (auto& s : stages_)
        s->reset();
}

void
Pipeline::validate() const
{
    VP_REQUIRE(stageCount() > 0, "pipeline has no stages");
    // Every stage other than the first must be reachable from some
    // other stage; isolated stages indicate a missing link().
    for (int i = 1; i < stageCount(); ++i) {
        VP_REQUIRE(producersOf(i) != 0 || consumersOf(i) != 0,
                   "stage `" << stage(i).name
                   << "` is disconnected; declare link()s");
    }
}

} // namespace vp

#include "core/pipeline.hh"

#include <optional>

namespace vp {

const char*
structureName(PipelineStructure s)
{
    switch (s) {
      case PipelineStructure::Linear: return "linear";
      case PipelineStructure::Loop: return "loop";
      case PipelineStructure::Recursion: return "recursion";
    }
    return "?";
}

void
Pipeline::link(int from, int to)
{
    VP_REQUIRE(from >= 0 && from < stageCount(),
               "link: bad source stage " << from);
    VP_REQUIRE(to >= 0 && to < stageCount(),
               "link: bad target stage " << to);
    for (const auto& [f, t] : edges_)
        if (f == from && t == to)
            return; // idempotent
    edges_.emplace_back(from, to);
}

StageBase&
Pipeline::stage(int i)
{
    VP_REQUIRE(i >= 0 && i < stageCount(), "stage index " << i
               << " out of range");
    return *stages_[i];
}

const StageBase&
Pipeline::stage(int i) const
{
    VP_REQUIRE(i >= 0 && i < stageCount(), "stage index " << i
               << " out of range");
    return *stages_[i];
}

int
Pipeline::indexOfType(std::type_index ti) const
{
    auto it = byType_.find(ti);
    VP_REQUIRE(it != byType_.end(),
               "stage type not registered in this pipeline");
    return it->second;
}

StageMask
Pipeline::producersOf(int s) const
{
    StageMask m = 0;
    for (const auto& [f, t] : edges_)
        if (t == s)
            m |= StageMask(1) << f;
    return m;
}

StageMask
Pipeline::consumersOf(int s) const
{
    StageMask m = 0;
    for (const auto& [f, t] : edges_)
        if (f == s)
            m |= StageMask(1) << t;
    return m;
}

StageMask
Pipeline::ancestorsOf(int s) const
{
    // Fixed-point over the reverse edges.
    StageMask frontier = producersOf(s);
    StageMask seen = frontier;
    while (frontier) {
        StageMask next = 0;
        for (int i = 0; i < stageCount(); ++i)
            if (frontier & (StageMask(1) << i))
                next |= producersOf(i);
        frontier = next & ~seen;
        seen |= next;
    }
    return seen;
}

bool
Pipeline::hasCycle() const
{
    for (int i = 0; i < stageCount(); ++i)
        if (ancestorsOf(i) & (StageMask(1) << i))
            return true;
    return false;
}

PipelineStructure
Pipeline::structure() const
{
    if (explicit_)
        return *explicit_;
    return hasCycle() ? PipelineStructure::Recursion
                      : PipelineStructure::Linear;
}

void
Pipeline::resetStages()
{
    for (auto& s : stages_)
        s->reset();
}

void
Pipeline::validate() const
{
    VP_REQUIRE(stageCount() > 0, "pipeline has no stages");
    // Every stage other than the first must be reachable from some
    // other stage; isolated stages indicate a missing link().
    for (int i = 1; i < stageCount(); ++i) {
        VP_REQUIRE(producersOf(i) != 0 || consumersOf(i) != 0,
                   "stage `" << stage(i).name
                   << "` is disconnected; declare link()s");
    }
}

} // namespace vp

#include "core/runtime.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "core/stage_impl.hh"
#include "gpu/occupancy.hh"
#include "sim/fault.hh"

namespace vp {

RunnerBase::RunnerBase(Simulator& sim, Device& dev, Host& host,
                       Pipeline& pipe, const PipelineConfig& cfg,
                       FaultContext fc)
    : sim_(sim), dev_(dev), host_(host), pipe_(pipe), cfg_(cfg)
{
    injector_ = fc.injector;
    if (fc.recovery)
        recoveryCfg_ = *fc.recovery;
    recovery_.init(&sim_, &recoveryCfg_, pipe_.stageCount());

    // Shard wiring must precede makeQueues: remote-stub installation
    // depends on the plan, and seeding/commits go through the shared
    // counter.
    shard_ = fc.shard;
    if (shard_) {
        trackBase_ = shard_->smTrackBase;
        if (shard_->sharedPending)
            pendingPtr_ = shard_->sharedPending;
    }

    obs_ = fc.obs;
    if (obs_) {
        tracer_ = obs_->tracerPtr();
        recovery_.setTracer(tracer_);
        obs_->stageNames.clear();
        obs_->stageBatchCycles.clear();
        for (int s = 0; s < pipe.stageCount(); ++s) {
            obs_->stageNames.push_back(pipe.stage(s).name);
            // Batch latencies start around tens of cycles; a 1.25
            // growth gives ~12% bucket resolution across the range.
            obs_->stageBatchCycles.emplace_back(16.0, 1.25);
        }
        prov_ = obs_->provenancePtr();
        if (prov_)
            prov_->bindStageNames(obs_->stageNames);
    }

    bool anyBoundedQueue = false;
    for (int s = 0; s < pipe_.stageCount(); ++s)
        anyBoundedQueue |= pipe_.stage(s).queueCapacity > 0;
    if (injector_) {
        const FaultPlan& plan = injector_->plan();
        // Device kills evict blocks exactly like SM kills, so their
        // in-flight batches need the same pre-execution capture.
        captureForReplay_ =
            !plan.smEvents.empty() || !plan.deviceEvents.empty();
        instrumentBatches_ = plan.anyTaskFaults() || plan.anyPushFaults()
            || captureForReplay_;
    }
    instrumentBatches_ |= anyBoundedQueue;
    dev_.setBlockAbortHook(
        [this](BlockContext& ctx) { blockAborted(ctx); });
    dev_.setSmFailedHook([this](int sm) { smFailed(sm); });

    makeQueues(queues_);
    inFlight_.assign(pipe_.stageCount(), 0);
    stageStats_.resize(pipe_.stageCount());
    stageKernels_.resize(pipe_.stageCount());
    for (int s = 0; s < pipe_.stageCount(); ++s)
        stageStats_[s].name = pipe_.stage(s).name;
    configName_ = cfg.describe(pipe);
}

void
RunnerBase::makeQueues(QueueSet& qs)
{
    qs.clear();
    for (int s = 0; s < pipe_.stageCount(); ++s) {
        StageBase& st = pipe_.stage(s);
        bool remote = shard_ && shard_->plan
            && shard_->plan->pinnedElsewhere(s, shard_->deviceIndex);
        if (remote) {
            // Stage homed on another device: pushes divert across
            // the interconnect. Bounded stages keep backpressure via
            // the coordinator's credit probe — full() consults the
            // home queue's depth plus in-flight transfers, so a
            // remote producer stalls exactly when a local one would.
            RemoteFullProbe probe;
            if (st.queueCapacity > 0)
                probe = [this, s] {
                    return shard_->remoteFull && shard_->remoteFull(s);
                };
            qs.push_back(st.makeRemoteStub(
                [this, s](int bytes, std::uint64_t provId,
                          std::function<void(QueueBase&)> deliver) {
                    shard_->forward(s, bytes, provId,
                                    std::move(deliver));
                },
                std::move(probe)));
        } else {
            qs.push_back(st.makeQueue());
            if (st.queueCapacity > 0)
                qs.back()->setCapacity(st.queueCapacity);
        }
        if (instrumentBatches_)
            qs.back()->enableRetryMeta();
        if (prov_)
            qs.back()->setProvenance(prov_, &sim_, s,
                                     shard_ ? shard_->deviceIndex : 0);
        if (tracer_) {
            std::string qname = st.name;
            if (shard_ && shard_->numDevices > 1)
                qname = "d" + std::to_string(shard_->deviceIndex)
                    + "/" + qname;
            qs.back()->setTrace(tracer_,
                                static_cast<std::int16_t>(s),
                                tracer_->intern(qname));
        }
    }
}

void
RunnerBase::seedAll(AppDriver& driver, QueueSet& qs)
{
    for (int f = 0; f < driver.flowCount(); ++f)
        seedFlow(driver, qs, f);
}

void
RunnerBase::seedFlow(AppDriver& driver, QueueSet& qs, int flow)
{
    Seeder seeder;
    seeder.pipe_ = &pipe_;
    seeder.queues_ = &qs;
    seeder.noteSeeded_ = [this](int stage, int n) {
        (void)stage;
        pendingPtr_->add(n);
    };
    seeder.prov_ = prov_;
    driver.seedFlow(seeder, flow);
}

Seeder
RunnerBase::serveSeeder()
{
    // Same wiring as seedFlow's one-shot seeder, but returned to the
    // engine so the serving session can inject items at every epoch
    // boundary of a run.
    Seeder seeder;
    seeder.pipe_ = &pipe_;
    seeder.queues_ = &queues_;
    seeder.noteSeeded_ = [this](int stage, int n) {
        (void)stage;
        pendingPtr_->add(n);
    };
    seeder.prov_ = prov_;
    return seeder;
}

bool
RunnerBase::localWork(StageMask relevant) const
{
    for (int i = 0; i < pipe_.stageCount(); ++i) {
        if (!(relevant & (StageMask(1) << i)))
            continue;
        if (inFlight_[i] > 0)
            return true;
        if (!queues_[i]->empty())
            return true;
        if (recovery_.buffered(i) > 0)
            return true;
        for (const QueueSet* qs : extraQueueSets_)
            if (!(*qs)[i]->empty())
                return true;
    }
    return false;
}

StageMask
RunnerBase::localWorkMask() const
{
    StageMask m = 0;
    for (int i = 0; i < pipe_.stageCount(); ++i) {
        StageMask bit = StageMask(1) << i;
        if (localWork(bit))
            m |= bit;
    }
    return m;
}

bool
RunnerBase::futureWorkPossible(int s) const
{
    StageMask relevant = pipe_.ancestorsOf(s) | (StageMask(1) << s);
    if (localWork(relevant))
        return true;
    // Sharded: a remote device running an ancestor stage — or an
    // item in flight on the interconnect — may still feed us.
    return shard_ && shard_->remoteWork && shard_->remoteWork(relevant);
}

std::uint64_t
RunnerBase::drainProgress() const
{
    std::uint64_t h = faultStats_.deadLettered;
    for (const auto& q : queues_)
        h += q->stats().pushes + q->stats().pops;
    for (const QueueSet* qs : extraQueueSets_)
        for (const auto& q : *qs)
            h += q->stats().pushes + q->stats().pops;
    return h;
}

std::size_t
RunnerBase::totalQueued(int s) const
{
    std::size_t total = queues_[s]->size();
    for (const QueueSet* qs : extraQueueSets_)
        total += (*qs)[s]->size();
    return total;
}

void
RunnerBase::takeOverStage(int s, std::size_t capacity)
{
    queues_[s]->takeOverLocal();
    queues_[s]->setCapacity(capacity);
    for (QueueSet* qs : extraQueueSets_) {
        (*qs)[s]->takeOverLocal();
        (*qs)[s]->setCapacity(capacity);
    }
}

std::size_t
RunnerBase::evacuateStage(int s, QueueBase& dst)
{
    std::size_t moved = queues_[s]->drainInto(dst);
    for (QueueSet* qs : extraQueueSets_)
        moved += (*qs)[s]->drainInto(dst);
    return moved;
}

void
RunnerBase::redeliverForeign(int stage, std::uint64_t hint,
                             std::function<void(QueueBase&)> deliver)
{
    recovery_.scheduleRedeliver(stage, &deliveryQueue(stage, hint),
                                std::move(deliver), 1, 1);
}

void
RunnerBase::setRecoveryRedirect(std::function<QueueBase*(int)> fn)
{
    recovery_.setRedirect(std::move(fn));
}

void
RunnerBase::adoptStages(const std::vector<int>& stages)
{
    (void)stages;
}

bool
RunnerBase::anyFutureWork(const std::vector<int>& stages) const
{
    for (int s : stages)
        if (futureWorkPossible(s))
            return true;
    return false;
}

int
RunnerBase::pickStage(const QueueSet& qs,
                      const std::vector<int>& stages) const
{
    switch (cfg_.schedule) {
      case SchedulePolicy::LaterStageFirst:
        for (auto it = stages.rbegin(); it != stages.rend(); ++it)
            if (!qs[*it]->empty())
                return *it;
        return -1;
      case SchedulePolicy::EarlierStageFirst:
        for (int s : stages)
            if (!qs[s]->empty())
                return s;
        return -1;
      case SchedulePolicy::LongestQueueFirst: {
        int best = -1;
        std::size_t depth = 0;
        for (int s : stages) {
            if (qs[s]->size() > depth) {
                depth = qs[s]->size();
                best = s;
            }
        }
        return best;
      }
    }
    return -1;
}

int
RunnerBase::stageBlockThreads(int s) const
{
    int bt = pipe_.stage(s).blockThreads;
    return bt > 0 ? bt : cfg_.threadsPerBlock;
}

int
RunnerBase::batchCapacity(int s) const
{
    int tn = std::max(1, pipe_.stage(s).threadNum);
    return std::max(1, stageBlockThreads(s) / tn);
}

bool
RunnerBase::producerResidentOn(int s, int sm) const
{
    StageMask producers = pipe_.producersOf(s);
    for (int p = 0; p < pipe_.stageCount(); ++p) {
        if (!(producers & (StageMask(1) << p)))
            continue;
        for (int kid : stageKernels_[p])
            if (dev_.sm(sm).residentBlocksOf(kid) > 0)
                return true;
    }
    return false;
}

void
RunnerBase::bindStageKernel(int s, int kernelId)
{
    stageKernels_[s].push_back(kernelId);
}

void
RunnerBase::processBatch(BlockContext& ctx, QueueSet& qs, int s,
                         StageMask inlineMask, int maxItems,
                         EventFn next, QueueSet* pushInto)
{
    if (Logger::enabled(LogLevel::Trace))
        Logger::setSm(ctx.smId());
    if (instrumentBatches_) {
        processBatchFI(ctx, qs, s, inlineMask, maxItems,
                       std::move(next), pushInto);
        return;
    }
    // Host-parallel: application code below (runBatch -> execute())
    // may touch cross-device shared state; run it in merged order.
    if (shard_ && shard_->execFence)
        shard_->execFence();
    StageBase& st = pipe_.stage(s);
    QueueBase& q = *qs[s];
    const DeviceConfig& dcfg = dev_.config();

    int cap = batchCapacity(s);
    if (maxItems >= 0)
        cap = std::min(cap, maxItems);
    VP_ASSERT(cap > 0, "zero batch capacity");

    ExecContext ectx(pipe_, inlineMask, ctx.smId(),
                     std::max(1, st.threadNum));
    int avail = static_cast<int>(std::min<std::size_t>(q.size(), cap));
    Tick bstart = sim_.now();
    Tick pop_cost = q.accessCost(dcfg, sim_.now(), std::max(avail, 1));
    BatchResult br = st.runBatch(ectx, q, cap);
    VP_ASSERT(br.items > 0, "processBatch on an empty queue for stage `"
              << st.name << "`");

    // Copy: the queue's popped-id scratch is overwritten by the
    // next pop. Service runs from the pop until the commit below.
    std::vector<std::uint64_t> provIds;
    if (prov_) {
        provIds = q.poppedIds();
        for (std::uint64_t id : provIds)
            if (id)
                prov_->notePop(id, ctx.smId(),
                               trackBase_ + ctx.smId(), bstart);
    }

    inFlight_[s] += br.items;
    stageStats_[s].items += br.items;
    stageStats_[s].batches += 1;
    for (const auto& [inl, count] : ectx.inlineRuns()) {
        stageStats_[inl].items += count;
        stageStats_[inl].batches += 1;
    }

    // Data-locality bonus: producers co-resident on this SM (fine
    // pipeline / megakernel) or inline chaining (RTC) keep
    // intermediate data in the on-chip caches.
    TaskCost cost = br.total;
    bool chained = (inlineMask & ~(StageMask(1) << s)) != 0;
    if (ctx.smId() >= 0
        && (chained || producerResidentOn(s, ctx.smId()))) {
        cost.l1HitRate = std::min(0.95, cost.l1HitRate
                                  + dcfg.localityBonus);
    }

    WorkSpec w = makeWorkSpec(dcfg, cost, std::max(1, st.threadNum),
                              br.items, br.maxTaskInsts);
    stageStats_[s].warpInsts += w.warpInsts;

    std::vector<StagedOutput> outputs = std::move(ectx.outputs());
    int items = br.items;
    BlockContext* cp = &ctx;
    QueueSet* qsp = pushInto ? pushInto : &qs;

    cp->delay(pop_cost, [this, cp, qsp, s, w, bstart,
                         outputs = std::move(outputs), items,
                         provIds = std::move(provIds),
                         next = std::move(next)]() mutable {
        Tick exec_start = sim_.now();
        cp->exec(w, [this, cp, qsp, s, outputs = std::move(outputs),
                     items, exec_start, bstart,
                     provIds = std::move(provIds),
                     next = std::move(next)]() mutable {
            stageStats_[s].execCycles += sim_.now() - exec_start;
            const DeviceConfig& dcfg2 = dev_.config();
            // Group outputs by target queue for push costing. Stage
            // indices are < 32, so a stack array replaces the former
            // per-batch std::map.
            int counts[32] = {};
            StageMask touched = 0;
            for (const StagedOutput& o : outputs) {
                counts[o.stage] += 1;
                touched |= StageMask(1) << o.stage;
            }
            Tick push_cost = 0.0;
            for (int t = 0; touched; ++t, touched >>= 1) {
                if (touched & 1) {
                    push_cost += (*qsp)[t]->accessCost(
                        dcfg2, sim_.now(), counts[t]);
                }
            }

            auto commit = [this, cp, qsp, s, bstart,
                           outputs = std::move(outputs), items,
                           provIds = std::move(provIds),
                           next = std::move(next)]() mutable {
                pendingPtr_->add(
                    static_cast<std::int64_t>(outputs.size()));
                for (StagedOutput& o : outputs) {
                    // Mint the output's own id only now that the
                    // batch is committing: aborted batches leave no
                    // orphan lineage records.
                    if (prov_ && o.provParent) {
                        std::uint64_t cid =
                            prov_->mintChild(o.provParent);
                        if (cid)
                            (*qsp)[o.stage]->stampNextPushId(cid);
                    }
                    o.push(*(*qsp)[o.stage]);
                }
                inFlight_[s] -= items;
                pendingPtr_->sub(items);
                if (prov_)
                    for (std::uint64_t id : provIds)
                        if (id)
                            prov_->noteComplete(id, sim_.now());
                if (obs_)
                    noteBatchDone(s, cp->smId(), bstart, items);
                next();
            };
            if (push_cost > 0.0 && !outputs.empty())
                cp->delay(push_cost, std::move(commit));
            else
                commit();
        });
    });
}

void
RunnerBase::processBatchFI(BlockContext& ctx, QueueSet& qs, int s,
                           StageMask inlineMask, int maxItems,
                           EventFn next, QueueSet* pushInto)
{
    // Host-parallel: application code below (runBatch -> execute())
    // may touch cross-device shared state; run it in merged order.
    if (shard_ && shard_->execFence)
        shard_->execFence();
    StageBase& st = pipe_.stage(s);
    QueueBase& q = *qs[s];
    const DeviceConfig& dcfg = dev_.config();

    int cap = batchCapacity(s);
    if (maxItems >= 0)
        cap = std::min(cap, maxItems);
    VP_ASSERT(cap > 0, "zero batch capacity");

    ExecContext ectx(pipe_, inlineMask, ctx.smId(),
                     std::max(1, st.threadNum));
    int avail = static_cast<int>(std::min<std::size_t>(q.size(), cap));
    Tick bstart = sim_.now();
    Tick pop_cost = q.accessCost(dcfg, sim_.now(), std::max(avail, 1));

    const FaultPlan* plan = injector_ ? &injector_->plan() : nullptr;
    int failItems = 0;
    if (plan && plan->anyTaskFaults())
        failItems = injector_->fetchFaults(s, ctx.smId(), avail,
                                           sim_.now());

    FaultBatch fb;
    bool wantCapture = captureForReplay_ && st.retryable;
    BatchResult br = st.runBatchFI(ectx, q, cap, failItems,
                                   recoveryCfg_.maxRetries,
                                   wantCapture, fb);
    if (prov_) {
        // Every popped item enters service at the pop. Retried items
        // stay in service until redelivery re-queues them (their
        // enqueue closes the hop, backoff included); dead-lettered
        // ones terminate at fault-detection time.
        for (std::uint64_t id : q.poppedIds())
            if (id)
                prov_->notePop(id, ctx.smId(),
                               trackBase_ + ctx.smId(), bstart);
        for (std::uint64_t id : fb.deadIds)
            prov_->noteDeadLetter(id, sim_.now());
    }

    int faulted = fb.retried + fb.deadLettered;
    faultStats_.taskFaults += faulted;
    if (tracer_ && faulted > 0)
        tracer_->instant(TraceKind::TaskFault,
                         static_cast<std::int16_t>(trackBase_ + ctx.smId()),
                         sim_.now(), s, faulted);
    if (fb.deadLettered > 0) {
        stageStats_[s].deadLettered += fb.deadLettered;
        faultStats_.deadLettered += fb.deadLettered;
        pendingPtr_->sub(fb.deadLettered);
        if (tracer_)
            tracer_->instant(TraceKind::DeadLetter,
                             static_cast<std::int16_t>(trackBase_ + ctx.smId()),
                             sim_.now(), s, fb.deadLettered);
    }
    if (fb.retried > 0) {
        stageStats_[s].retried += fb.retried;
        faultStats_.tasksRetried += fb.retried;
        if (tracer_)
            tracer_->instant(TraceKind::Retry,
                             static_cast<std::int16_t>(trackBase_ + ctx.smId()),
                             sim_.now(), s, fb.retried);
        recovery_.scheduleRedeliver(s, &q, std::move(fb.redeliver),
                                    fb.retried, fb.maxTries);
    }
    // Fault detection (parity check, timeout) costs cycles too.
    Tick detect = faulted > 0 ? plan->faultDetectCycles * faulted : 0.0;

    stageStats_[s].batches += 1;
    if (br.items == 0) {
        // The whole fetch faulted: charge pop + detection, move on.
        ctx.delay(pop_cost + detect, std::move(next));
        return;
    }

    inFlight_[s] += br.items;
    stageStats_[s].items += br.items;
    for (const auto& [inl, count] : ectx.inlineRuns()) {
        stageStats_[inl].items += count;
        stageStats_[inl].batches += 1;
    }

    TaskCost cost = br.total;
    bool chained = (inlineMask & ~(StageMask(1) << s)) != 0;
    if (ctx.smId() >= 0
        && (chained || producerResidentOn(s, ctx.smId()))) {
        cost.l1HitRate = std::min(0.95, cost.l1HitRate
                                  + dcfg.localityBonus);
    }

    WorkSpec w = makeWorkSpec(dcfg, cost, std::max(1, st.threadNum),
                              br.items, br.maxTaskInsts);
    stageStats_[s].warpInsts += w.warpInsts;
    if (plan && plan->taskSlowProb > 0.0) {
        double slow = injector_->slowFactor();
        if (slow > 1.0) {
            w.warpInsts *= slow;
            ++faultStats_.slowdowns;
        }
    }

    if (captureForReplay_) {
        inFlightBatches_[&ctx] = InFlightBatch{
            s, &q, std::move(fb.capture), br.items, fb.execIds};
    }

    std::vector<StagedOutput> outputs = std::move(ectx.outputs());
    int items = br.items;
    std::vector<std::uint64_t> provIds = std::move(fb.execIds);
    BlockContext* cp = &ctx;
    QueueSet* qsp = pushInto ? pushInto : &qs;

    cp->delay(pop_cost + detect, [this, cp, qsp, s, w, bstart,
                                  outputs = std::move(outputs), items,
                                  provIds = std::move(provIds),
                                  next = std::move(next)]() mutable {
        Tick exec_start = sim_.now();
        cp->exec(w, [this, cp, qsp, s, outputs = std::move(outputs),
                     items, exec_start, bstart,
                     provIds = std::move(provIds),
                     next = std::move(next)]() mutable {
            stageStats_[s].execCycles += sim_.now() - exec_start;
            const DeviceConfig& dcfg2 = dev_.config();
            int counts[32] = {};
            StageMask touched = 0;
            for (const StagedOutput& o : outputs) {
                counts[o.stage] += 1;
                touched |= StageMask(1) << o.stage;
            }
            Tick push_cost = 0.0;
            for (int t = 0; touched; ++t, touched >>= 1) {
                if (touched & 1) {
                    push_cost += (*qsp)[t]->accessCost(
                        dcfg2, sim_.now(), counts[t]);
                }
            }

            // In-transit push faults, decided in output order. The
            // block pays the push cost either way; a corrupted item
            // additionally pays for being detected and discarded.
            const FaultPlan* plan2 =
                injector_ ? &injector_->plan() : nullptr;
            if (plan2 && plan2->anyPushFaults()) {
                int dropped = 0, corrupted = 0;
                auto keep = outputs.begin();
                for (auto& o : outputs) {
                    switch (injector_->pushFault()) {
                      case PushFault::None:
                        *keep++ = std::move(o);
                        break;
                      case PushFault::Drop:
                        ++dropped;
                        // The output dies before it was ever queued:
                        // record a stillborn child so lineage
                        // conservation still accounts for it.
                        if (prov_ && o.provParent) {
                            std::uint64_t cid =
                                prov_->mintChild(o.provParent);
                            if (cid)
                                prov_->noteDropped(cid, sim_.now());
                        }
                        break;
                      case PushFault::Corrupt:
                        ++corrupted;
                        stageStats_[o.stage].deadLettered += 1;
                        if (prov_ && o.provParent) {
                            std::uint64_t cid =
                                prov_->mintChild(o.provParent);
                            if (cid)
                                prov_->noteDeadLetter(cid, sim_.now());
                        }
                        break;
                    }
                }
                outputs.erase(keep, outputs.end());
                push_cost += plan2->faultDetectCycles * corrupted;
                faultStats_.droppedPushes += dropped;
                faultStats_.corruptedPushes += corrupted;
                faultStats_.deadLettered += corrupted;
            }

            // Commit, backpressuring while any bounded target queue
            // is full. The state is shared between retries; the
            // closure holds it weakly to avoid a reference cycle.
            struct CommitState
            {
                std::vector<StagedOutput> outputs;
                std::vector<std::uint64_t> provIds;
                EventFn next;
                std::function<void()> tryCommit;
            };
            auto st = std::make_shared<CommitState>();
            st->outputs = std::move(outputs);
            st->provIds = std::move(provIds);
            st->next = std::move(next);
            st->tryCommit = [this, cp, qsp, s, items, bstart,
                             stw = std::weak_ptr<CommitState>(st)]() {
                auto self = stw.lock();
                VP_ASSERT(self, "commit state expired");
                for (const StagedOutput& o : self->outputs) {
                    if ((*qsp)[o.stage]->full()) {
                        ++faultStats_.backpressureWaits;
                        if (tracer_)
                            tracer_->instant(
                                TraceKind::Backpressure,
                                static_cast<std::int16_t>(
                                    trackBase_ + cp->smId()),
                                sim_.now(), o.stage);
                        cp->delay(dev_.config().pollIntervalCycles,
                                  [self] { self->tryCommit(); });
                        return;
                    }
                }
                pendingPtr_->add(static_cast<std::int64_t>(
                    self->outputs.size()));
                for (StagedOutput& o : self->outputs) {
                    // Mint the output's own id only at commit time:
                    // aborted batches leave no orphan records.
                    if (prov_ && o.provParent) {
                        std::uint64_t cid =
                            prov_->mintChild(o.provParent);
                        if (cid)
                            (*qsp)[o.stage]->stampNextPushId(cid);
                    }
                    o.push(*(*qsp)[o.stage]);
                }
                inFlight_[s] -= items;
                pendingPtr_->sub(items);
                inFlightBatches_.erase(cp);
                if (prov_)
                    for (std::uint64_t id : self->provIds)
                        if (id)
                            prov_->noteComplete(id, sim_.now());
                if (obs_)
                    noteBatchDone(s, cp->smId(), bstart, items);
                self->next();
            };
            if (push_cost > 0.0) {
                cp->delay(push_cost, [st] { st->tryCommit(); });
            } else {
                st->tryCommit();
            }
        });
    });
}

void
RunnerBase::blockAborted(BlockContext& ctx)
{
    auto it = inFlightBatches_.find(&ctx);
    if (it != inFlightBatches_.end()) {
        InFlightBatch b = std::move(it->second);
        inFlightBatches_.erase(it);
        inFlight_[b.stage] -= b.items;
        if (b.capture) {
            // Retryable stage: replay the pre-execution copies.
            stageStats_[b.stage].retried += b.items;
            faultStats_.tasksRetried += b.items;
            if (tracer_)
                tracer_->instant(
                    TraceKind::Retry,
                    static_cast<std::int16_t>(trackBase_ + ctx.smId()),
                    sim_.now(), b.stage, b.items);
            recovery_.scheduleRedeliver(b.stage, b.q,
                                        std::move(b.capture),
                                        b.items, 1);
        } else {
            // Non-retryable: the in-flight items die with the block.
            // (Retryable batches need no hook here — the capture's
            // redelivery re-stamps their ids on re-enqueue.)
            pendingPtr_->sub(b.items);
            stageStats_[b.stage].deadLettered += b.items;
            faultStats_.deadLettered += b.items;
            if (prov_)
                for (std::uint64_t id : b.provIds)
                    if (id)
                        prov_->noteDeadLetter(id, sim_.now());
            if (tracer_)
                tracer_->instant(
                    TraceKind::DeadLetter,
                    static_cast<std::int16_t>(trackBase_ + ctx.smId()),
                    sim_.now(), b.stage, b.items);
        }
    }
    onBlockAborted(ctx);
}

void
RunnerBase::smFailed(int sm)
{
    onSmFailed(sm);
}

void
RunnerBase::registerProbes(Sampler& sampler)
{
    // Per-device series prefix so group runs keep the devices apart.
    std::string pre;
    if (shard_ && shard_->numDevices > 1)
        pre = "d" + std::to_string(shard_->deviceIndex) + "/";
    for (int s = 0; s < pipe_.stageCount(); ++s)
        sampler.addSeries(
            pre + "queue_depth/" + pipe_.stage(s).name, [this, s] {
                return static_cast<double>(totalQueued(s));
            });
    sampler.addSeries(pre + "resident_blocks", [this] {
        return static_cast<double>(dev_.residentBlocks());
    });
    // Occupancy as a block-slot fraction: resident blocks over the
    // device-wide residency limit.
    double slots = static_cast<double>(dev_.numSms())
        * dev_.config().maxBlocksPerSm;
    sampler.addSeries(pre + "occupancy", [this, slots] {
        return slots > 0.0 ? dev_.residentBlocks() / slots : 0.0;
    });
    if (!shard_ || shard_->deviceIndex == 0) {
        // pending_work is group-wide when sharded; register it once.
        sampler.addSeries("pending_work", [this] {
            return static_cast<double>(pendingPtr_->value());
        });
    }
    sampler.addSeries(pre + "in_flight_retries", [this] {
        return static_cast<double>(recovery_.totalBuffered());
    });
}

std::string
RunnerBase::diagnoseStall() const
{
    std::ostringstream os;
    os << "pipeline stalled at cycle " << sim_.now() << ": pending="
       << pendingPtr_->value() << "\n";
    for (int s = 0; s < pipe_.stageCount(); ++s) {
        os << "  stage `" << pipe_.stage(s).name
           << "`: queued=" << totalQueued(s);
        if (queues_[s]->capacity() > 0)
            os << "/cap" << queues_[s]->capacity();
        os << " inFlight=" << inFlight_[s]
           << " buffered=" << recovery_.buffered(s)
           << " retried=" << stageStats_[s].retried
           << " deadLettered=" << stageStats_[s].deadLettered << "\n";
    }
    for (int i = 0; i < dev_.numSms(); ++i) {
        const Sm& sm = dev_.sm(i);
        os << "  sm " << i << ": residentBlocks="
           << sm.residentBlocks()
           << (sm.offline() ? " OFFLINE" : "") << "\n";
    }
    return os.str();
}

RunResult
RunnerBase::collect()
{
    RunResult r;
    r.cycles = sim_.now();
    r.ms = dev_.config().cyclesToMs(r.cycles);
    r.simEvents = sim_.eventsRun();
    r.configName = configName_;
    r.deviceName = dev_.config().name;
    r.device = dev_.stats();
    r.host = host_.stats();
    r.polls = polls_;
    r.retreats = retreats_;
    r.refills = refills_;
    r.extra.set("steals", static_cast<double>(steals_));
    if (adaptiveArmed_) {
        r.extra.set("adaptiveEpochs",
                    static_cast<double>(adaptEpochs_));
        r.extra.set("adaptiveMoves",
                    static_cast<double>(adaptMoves_));
    }

    r.faults = faultStats_;
    r.faults.smsFailed = r.device.smsFailed;
    r.faults.smsDegraded = r.device.smsDegraded;
    r.faults.blocksEvicted = r.device.blocksEvicted;
    r.faults.launchDelays = r.device.launchDelays;
    if (instrumentBatches_) {
        r.extra.set("redeliveries",
                    static_cast<double>(recovery_.redeliveries()));
    }

    for (int s = 0; s < pipe_.stageCount(); ++s) {
        StageRunStats st = stageStats_[s];
        st.queue = queues_[s]->stats();
        for (const QueueSet* qs : extraQueueSets_) {
            const QueueStats& extra = (*qs)[s]->stats();
            st.queue.pushes += extra.pushes;
            st.queue.pops += extra.pops;
            st.queue.maxDepth = std::max(st.queue.maxDepth,
                                         extra.maxDepth);
            st.queue.opCycles += extra.opCycles;
            st.queue.contentionCycles += extra.contentionCycles;
        }
        r.stages.push_back(std::move(st));
    }

    double issue = 0.0;
    for (int i = 0; i < dev_.numSms(); ++i)
        issue += dev_.sm(i).stats().issueCycles;
    if (r.cycles > 0.0)
        r.smUtilization = issue / (r.cycles * dev_.numSms());
    return r;
}

std::unique_ptr<RunnerBase>
makeRunner(Simulator& sim, Device& dev, Host& host, Pipeline& pipe,
           const PipelineConfig& cfg, FaultContext fc)
{
    switch (cfg.top) {
      case PipelineConfig::Top::Groups:
        return std::make_unique<GroupsRunner>(sim, dev, host, pipe,
                                              cfg, fc);
      case PipelineConfig::Top::Kbk:
      case PipelineConfig::Top::KbkStream:
        return std::make_unique<KbkRunner>(sim, dev, host, pipe, cfg,
                                           fc);
      case PipelineConfig::Top::DynamicParallelism:
        return std::make_unique<DpRunner>(sim, dev, host, pipe, cfg,
                                          fc);
    }
    VP_PANIC("unknown runner top");
}

} // namespace vp

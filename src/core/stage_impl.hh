/**
 * @file
 * Out-of-line template definitions of the stage API that need the
 * full Pipeline definition. Include core/versapipe.hh, which pulls
 * this in last, rather than this header directly.
 */

#ifndef VP_CORE_STAGE_IMPL_HH
#define VP_CORE_STAGE_IMPL_HH

#include "core/pipeline.hh"
#include "core/stage.hh"

namespace vp {

template <typename S>
void
ExecContext::enqueue(typename S::DataItemType item)
{
    using T = typename S::DataItemType;
    int idx = pipe_.indexOf<S>();
    if (inlineMask_ & (StageMask(1) << idx)) {
        // RTC-style inline chaining: the downstream stage runs inside
        // the same task; its cost folds into the current task.
        VP_ASSERT(inlineDepth_ < kMaxInlineDepth,
                  "inline chain too deep (cycle in RTC group?)");
        ++inlineDepth_;
        S& st = pipe_.stageAs<S>();
        // Per-thread costs of a wider stage fall on the (fewer)
        // entry threads when inlined into their task.
        TaskCost c = st.cost(item);
        double ratio = double(std::max(1, st.threadNum))
            / entryThreads_;
        if (ratio > 1.0) {
            c.computeInsts *= ratio;
            c.memInsts *= ratio;
            c.serialInsts *= ratio;
        }
        addInlineCost(c);
        noteInlineRun(idx);
        st.execute(*this, item);
        --inlineDepth_;
        return;
    }
    outputs_.push_back(StagedOutput{
        idx,
        [item = std::move(item)](QueueBase& q) mutable {
            typedQueue<T>(q).push(std::move(item));
        },
        provParent_});
}

template <typename T>
BatchResult
Stage<T>::runBatch(ExecContext& ctx, QueueBase& q, int maxItems)
{
    auto& tq = typedQueue<T>(q);
    std::vector<T> items;
    tq.popBatch(items, static_cast<std::size_t>(maxItems));
    // Copy: the next pop overwrites the queue's scratch vector.
    std::vector<std::uint64_t> ids;
    if (tq.provenanceEnabled()) {
        ids = tq.poppedIds();
        ids.resize(items.size(), 0);
    }

    BatchResult r;
    r.items = static_cast<int>(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        T& item = items[i];
        if (!ids.empty())
            ctx.setProvParent(ids[i]);
        ctx.beginTask(cost(item));
        execute(ctx, item);
        TaskCost c = ctx.endTask();
        r.maxTaskInsts = std::max(r.maxTaskInsts,
                                  c.computeInsts + c.memInsts);
        r.total += c;
    }
    ctx.setProvParent(0);
    return r;
}

template <typename T>
BatchResult
Stage<T>::runBatchFI(ExecContext& ctx, QueueBase& q, int maxItems,
                     int failItems, std::uint32_t maxRetries,
                     bool wantCapture, FaultBatch& fb)
{
    auto& tq = typedQueue<T>(q);
    std::vector<T> items;
    tq.popBatch(items, static_cast<std::size_t>(maxItems));
    // Copy: the next pop overwrites the queue's scratch vectors.
    std::vector<std::uint32_t> tries = tq.poppedTries();
    tries.resize(items.size(), 0);
    std::vector<std::uint64_t> ids = tq.poppedIds();
    ids.resize(items.size(), 0);

    // The first failItems items of the batch take the transient
    // faults — a fixed, deterministic assignment.
    struct RetryItem
    {
        T item;
        std::uint32_t tries;
        std::uint64_t id;
    };
    std::vector<RetryItem> retry;
    std::size_t nf = std::min<std::size_t>(
        failItems < 0 ? 0 : static_cast<std::size_t>(failItems),
        items.size());
    for (std::size_t i = 0; i < nf; ++i) {
        if (tries[i] >= maxRetries) {
            ++fb.deadLettered;
            if (ids[i])
                fb.deadIds.push_back(ids[i]);
            continue;
        }
        retry.push_back({std::move(items[i]), tries[i] + 1, ids[i]});
        fb.maxTries = std::max(fb.maxTries, tries[i] + 1);
    }
    if (!retry.empty()) {
        fb.retried = static_cast<int>(retry.size());
        fb.redeliver = [batch = std::move(retry)](QueueBase& dst) {
            auto& dq = typedQueue<T>(dst);
            for (const RetryItem& e : batch) {
                dq.stampNextPushTries(e.tries);
                if (e.id)
                    dq.stampNextPushId(e.id);
                dq.push(e.item);
            }
        };
    }

    BatchResult r;
    std::vector<RetryItem> cap;
    for (std::size_t i = nf; i < items.size(); ++i) {
        if (wantCapture)
            cap.push_back({items[i], tries[i] + 1, ids[i]});
        T& item = items[i];
        if (tq.provenanceEnabled()) {
            ctx.setProvParent(ids[i]);
            fb.execIds.push_back(ids[i]);
        }
        ctx.beginTask(cost(item));
        execute(ctx, item);
        TaskCost c = ctx.endTask();
        r.maxTaskInsts = std::max(r.maxTaskInsts,
                                  c.computeInsts + c.memInsts);
        r.total += c;
        ++r.items;
    }
    ctx.setProvParent(0);
    fb.executed = r.items;
    if (!cap.empty()) {
        fb.capture = [batch = std::move(cap)](QueueBase& dst) {
            auto& dq = typedQueue<T>(dst);
            for (const RetryItem& e : batch) {
                dq.stampNextPushTries(e.tries);
                if (e.id)
                    dq.stampNextPushId(e.id);
                dq.push(e.item);
            }
        };
    }
    return r;
}

} // namespace vp

#endif // VP_CORE_STAGE_IMPL_HH

#include "core/recovery.hh"

#include <algorithm>

#include "common/error.hh"
#include "core/run_result.hh"

namespace vp {

Tick
RecoveryConfig::backoffFor(std::uint32_t tries) const
{
    Tick d = backoffBaseCycles;
    for (std::uint32_t i = 1; i < tries; ++i) {
        d *= backoffFactor;
        if (d >= backoffCapCycles)
            break;
    }
    return std::min(d, backoffCapCycles);
}

void
RecoveryConfig::validate() const
{
    VP_CHECK(backoffBaseCycles >= 0.0, ErrorCode::Config,
             "recovery: backoffBaseCycles must be >= 0");
    VP_CHECK(backoffFactor >= 1.0, ErrorCode::Config,
             "recovery: backoffFactor must be >= 1");
    VP_CHECK(backoffCapCycles >= backoffBaseCycles, ErrorCode::Config,
             "recovery: backoffCapCycles must be >= backoffBaseCycles");
    VP_CHECK(watchdogIntervalCycles >= 0.0, ErrorCode::Config,
             "recovery: watchdogIntervalCycles must be >= 0");
    VP_CHECK(watchdogStallChecks >= 1, ErrorCode::Config,
             "recovery: watchdogStallChecks must be >= 1");
    VP_CHECK(drainTimeoutCycles >= 0.0, ErrorCode::Config,
             "recovery: drainTimeoutCycles must be >= 0");
}

void
RecoveryManager::init(Simulator* sim, const RecoveryConfig* cfg,
                      int stageCount)
{
    sim_ = sim;
    cfg_ = cfg;
    buffered_.assign(static_cast<std::size_t>(stageCount), 0);
    redeliveries_ = 0;
}

void
RecoveryManager::scheduleRedeliver(
    int stage, QueueBase* q, std::function<void(QueueBase&)> redeliver,
    int count, std::uint32_t tries)
{
    VP_ASSERT(sim_ && cfg_, "RecoveryManager used before init()");
    VP_ASSERT(count > 0 && redeliver, "empty redelivery batch");
    buffered_[static_cast<std::size_t>(stage)] += count;
    sim_->after(
        cfg_->backoffFor(std::max<std::uint32_t>(tries, 1)),
        [this, stage, q, fn = std::move(redeliver), count] {
            buffered_[static_cast<std::size_t>(stage)] -= count;
            ++redeliveries_;
            if (tracer_)
                tracer_->instant(TraceKind::Redeliver, 0,
                                 sim_->now(), stage, count);
            QueueBase* target = redirect_ ? redirect_(stage) : nullptr;
            fn(target ? *target : *q);
            if (onRedelivered_)
                onRedelivered_(stage);
        });
}

std::int64_t
RecoveryManager::totalBuffered() const
{
    std::int64_t t = 0;
    for (std::int64_t b : buffered_)
        t += b;
    return t;
}

} // namespace vp

/**
 * @file
 * Umbrella header of the VersaPipe framework: include this to write a
 * pipeline application (stages, pipeline graph, configurations,
 * engine). See examples/quickstart.cc for the canonical usage.
 */

#ifndef VP_CORE_VERSAPIPE_HH
#define VP_CORE_VERSAPIPE_HH

#include "core/engine.hh"
#include "core/exec_model.hh"
#include "core/model_config.hh"
#include "core/pipeline.hh"
#include "core/run_result.hh"
#include "core/runtime.hh"
#include "core/stage.hh"
#include "core/stage_impl.hh" // IWYU pragma: keep (template defs)

#endif // VP_CORE_VERSAPIPE_HH

/**
 * @file
 * ShardPlan: how a pipeline's stages are placed onto the devices of
 * a DeviceGroup.
 *
 * Two placements exist per stage:
 *
 *  - Replicate: the stage runs on every device. Seed items entering
 *    a replicated stage are distributed across the devices by a
 *    deterministic item hash; intermediate outputs to a replicated
 *    stage stay on the producing device (data locality).
 *  - Pin: the stage runs on exactly one home device. Producers on
 *    other devices push into a remote stub whose items hop across
 *    the interconnect, paying transfer cost, before landing in the
 *    home device's real queue.
 *
 * Sharding requires a persistent-block (Top::Groups) configuration,
 * and placement must be uniform within each stage group: a merged
 * RTC/Megakernel kernel is launched — or not — per device as a unit,
 * and RTC's inline chaining bypasses queues entirely, so splitting a
 * group across devices has no sound execution.
 */

#ifndef VP_CORE_SHARD_HH
#define VP_CORE_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/model_config.hh"
#include "core/pipeline.hh"

namespace vp {

/** Per-stage device placement of one pipeline over one group. */
struct ShardPlan
{
    enum class Placement
    {
        /** Run the stage on every device (items hashed at seed). */
        Replicate,
        /** Run the stage only on `device`; remote producers pay an
         *  interconnect hop. */
        Pin,
    };

    struct StagePlace
    {
        Placement place = Placement::Replicate;
        int device = 0;
    };

    /** Placement of each stage, indexed by stage. */
    std::vector<StagePlace> stages;

    /** Every stage replicated on every device. */
    static ShardPlan replicateAll(const Pipeline& pipe);

    /**
     * Stage groups of @p cfg pinned round-robin across @p nDevices
     * (group g's stages on device g % n) — the cross-device analogue
     * of the coarse pipeline's SM partitioning.
     */
    static ShardPlan pinnedRoundRobin(const PipelineConfig& cfg,
                                      const Pipeline& pipe,
                                      int nDevices);

    /**
     * Parse a CLI spec: "replicate", "rr" (round-robin pinning by
     * stage group of the config in use — resolved by the caller via
     * pinnedRoundRobin), or "pin:0,1,1,..." listing one home device
     * per stage. Fatal on malformed specs.
     */
    static ShardPlan parse(const std::string& spec,
                           const Pipeline& pipe, int nDevices);

    /** True when stage @p s does not run on device @p device. */
    bool
    pinnedElsewhere(int s, int device) const
    {
        const StagePlace& p = stages[static_cast<std::size_t>(s)];
        return p.place == Placement::Pin && p.device != device;
    }

    /** Home device of stage @p s, or -1 when replicated. */
    int
    homeDevice(int s) const
    {
        const StagePlace& p = stages[static_cast<std::size_t>(s)];
        return p.place == Placement::Pin ? p.device : -1;
    }

    /** True when any stage is pinned (cross-device hops possible). */
    bool anyPinned() const;

    /** "replicate" / "pin[0,1,1]"-style synopsis. */
    std::string describe() const;

    /**
     * Fatal unless the plan covers @p pipe's stages with in-range
     * devices, @p cfg is a Groups configuration, and placement is
     * uniform within each stage group.
     */
    void validate(const Pipeline& pipe, const PipelineConfig& cfg,
                  int nDevices) const;
};

/**
 * The shard plans the auto-tuner sweeps for an n-device group under
 * configuration @p cfg: replicate-everywhere plus (when the config
 * has at least two stage groups) round-robin pinning.
 */
std::vector<ShardPlan> defaultShardPlans(const PipelineConfig& cfg,
                                         const Pipeline& pipe,
                                         int nDevices);

/**
 * Deterministic device choice for seed item @p ordinal of stage
 * @p stage over @p nDevices (splitmix64 hash — stable across
 * platforms and runs).
 */
int shardSeedDevice(int stage, int ordinal, int nDevices);

/**
 * Deterministic re-shard policy for device-failure failover: when a
 * pinned stage's home device dies, pick its new home among the
 * survivors. Lowest load wins; ties break by a splitmix64 hash of
 * (stage, device) so equal-load survivors are chosen evenly but
 * reproducibly across reruns.
 */
struct FailoverPolicy
{
    /**
     * New home for @p stage: the alive device with the smallest
     * load, splitmix64 tie-break. @p loads holds one queued-work
     * figure per device (dead entries ignored); @p alive flags the
     * survivors. Fatal when no device is alive.
     */
    static int rehome(int stage,
                      const std::vector<std::int64_t>& loads,
                      const std::vector<char>& alive);
};

} // namespace vp

#endif // VP_CORE_SHARD_HH

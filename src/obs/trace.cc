#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <utility>

#include "obs/provenance.hh"

namespace vp {

const char*
traceKindName(TraceKind k)
{
    switch (k) {
    case TraceKind::RunSpan: return "run";
    case TraceKind::KernelLaunch: return "kernel_launch";
    case TraceKind::KernelSpan: return "kernel";
    case TraceKind::StageBatch: return "stage_batch";
    case TraceKind::ExecSpan: return "exec";
    case TraceKind::ResidentBlocks: return "resident_blocks";
    case TraceKind::QueueDepth: return "queue_depth";
    case TraceKind::FlowSpan: return "flow";
    case TraceKind::TaskFault: return "task_fault";
    case TraceKind::Retry: return "retry";
    case TraceKind::Redeliver: return "redeliver";
    case TraceKind::DeadLetter: return "dead_letter";
    case TraceKind::Backpressure: return "backpressure";
    case TraceKind::LaunchDelay: return "launch_delay";
    case TraceKind::SmFail: return "sm_fail";
    case TraceKind::SmDegrade: return "sm_degrade";
    case TraceKind::Refill: return "refill";
    case TraceKind::Retreat: return "retreat";
    case TraceKind::DpSpawn: return "dp_spawn";
    case TraceKind::WatchdogCheck: return "watchdog_check";
    case TraceKind::Transfer: return "transfer";
    case TraceKind::AdaptiveEpoch: return "adaptive_epoch";
    case TraceKind::AdaptiveMove: return "adaptive_move";
    case TraceKind::DeviceKill: return "device_kill";
    case TraceKind::LinkFail: return "link_fail";
    case TraceKind::LinkDegrade: return "link_degrade";
    case TraceKind::StageRehome: return "stage_rehome";
    case TraceKind::TransferRedeliver: return "transfer_redeliver";
    }
    return "?";
}

Tracer::Tracer(const Simulator* sim, std::size_t capacity)
    : sim_(sim), ring_(capacity)
{
}

std::int32_t
Tracer::intern(const std::string& s)
{
    for (std::size_t i = 0; i < strings_.size(); ++i)
        if (strings_[i] == s)
            return static_cast<std::int32_t>(i);
    strings_.push_back(s);
    return static_cast<std::int32_t>(strings_.size() - 1);
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(size_);
    // Oldest retained event: head_ when the ring has wrapped,
    // index 0 otherwise.
    std::size_t start = size_ == ring_.size() ? head_ : 0;
    for (std::size_t i = 0; i < size_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

std::string
Tracer::tail(std::size_t k) const
{
    std::vector<TraceEvent> evs = snapshot();
    std::size_t first = evs.size() > k ? evs.size() - k : 0;
    std::ostringstream os;
    for (std::size_t i = first; i < evs.size(); ++i) {
        const TraceEvent& e = evs[i];
        char line[160];
        std::snprintf(line, sizeof line,
                      "  [%12.1f] %-15s track=%-3d a=%d b=%d%s\n",
                      e.ts, traceKindName(e.kind), e.track, e.a, e.b,
                      e.phase == TracePhase::Begin    ? " (begin)"
                      : e.phase == TracePhase::End    ? " (end)"
                      : e.phase == TracePhase::Counter
                          ? " (counter)"
                          : "");
        os << line;
    }
    return os.str();
}

void
Tracer::absorb(const Tracer& shard)
{
    if (ring_.empty())
        return;
    // Map shard string ids to this table lazily: most events carry
    // no string argument at all.
    std::vector<std::int32_t> idMap(shard.strings_.size(), -1);
    auto remap = [&](std::int32_t a) {
        if (a < 0
            || static_cast<std::size_t>(a) >= shard.strings_.size())
            return a; // Out of table: export falls back by kind.
        if (idMap[static_cast<std::size_t>(a)] < 0)
            idMap[static_cast<std::size_t>(a)] =
                intern(shard.strings_[static_cast<std::size_t>(a)]);
        return idMap[static_cast<std::size_t>(a)];
    };
    for (TraceEvent e : shard.snapshot()) {
        switch (e.kind) {
        case TraceKind::KernelLaunch:
        case TraceKind::KernelSpan:
        case TraceKind::LaunchDelay:
        case TraceKind::QueueDepth:
            e.a = remap(e.a);
            break;
        default:
            // StageBatch deliberately keeps its raw stage index: the
            // serial group loop records it the same way, and the
            // export resolves it against device 0's queue names.
            break;
        }
        record(e);
    }
    // Events the shard ring had already overwritten stay lost.
    recorded_ += shard.dropped_;
    dropped_ += shard.dropped_;
}

namespace {

/** Process (pid) grouping of the exported timeline. */
enum : int
{
    PidHost = 1,
    PidStreams = 2,
    PidSms = 3,
    PidQueues = 4,
    PidFlows = 5,
    PidFaults = 6,
    PidInterconnect = 7,
};

struct ExportMeta
{
    int pid;
    int tid;
};

/** Which timeline process/thread a recorded event renders on. */
ExportMeta
placeEvent(const TraceEvent& e)
{
    switch (e.kind) {
    case TraceKind::RunSpan:
    case TraceKind::KernelLaunch:
    case TraceKind::WatchdogCheck:
        return {PidHost, 0};
    case TraceKind::KernelSpan:
        return {PidStreams, e.track};
    case TraceKind::StageBatch:
    case TraceKind::ExecSpan:
    case TraceKind::ResidentBlocks:
        return {PidSms, e.track};
    case TraceKind::QueueDepth:
        return {PidQueues, e.track};
    case TraceKind::FlowSpan:
        return {PidFlows, e.track};
    case TraceKind::TaskFault:
    case TraceKind::Retry:
    case TraceKind::Redeliver:
    case TraceKind::DeadLetter:
    case TraceKind::Backpressure:
    case TraceKind::LaunchDelay:
    case TraceKind::Refill:
    case TraceKind::DpSpawn:
    case TraceKind::AdaptiveEpoch:
    case TraceKind::AdaptiveMove:
        return {PidFaults, e.track};
    case TraceKind::SmFail:
    case TraceKind::SmDegrade:
    case TraceKind::Retreat:
        return {PidSms, e.track};
    case TraceKind::Transfer:
        return {PidInterconnect, e.track};
    }
    return {PidHost, 0};
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Display name of one exported event. */
std::string
eventName(const TraceEvent& e, const std::vector<std::string>& strings)
{
    auto named = [&strings](std::int32_t id,
                            const char* fallback) -> std::string {
        if (id >= 0 && static_cast<std::size_t>(id) < strings.size())
            return strings[static_cast<std::size_t>(id)];
        return fallback;
    };
    switch (e.kind) {
    case TraceKind::KernelLaunch:
    case TraceKind::KernelSpan:
    case TraceKind::LaunchDelay:
        return named(e.a, traceKindName(e.kind));
    case TraceKind::StageBatch:
        return named(e.a, "stage_batch");
    case TraceKind::QueueDepth:
        return named(e.a, "queue_depth");
    default:
        return traceKindName(e.kind);
    }
}

void
writeEvent(std::ostream& os, const TraceEvent& e,
           const std::vector<std::string>& strings, bool& first)
{
    ExportMeta m = placeEvent(e);
    const char* ph = "i";
    switch (e.phase) {
    case TracePhase::Instant: ph = "i"; break;
    case TracePhase::Begin: ph = "B"; break;
    case TracePhase::End: ph = "E"; break;
    case TracePhase::Complete: ph = "X"; break;
    case TracePhase::Counter: ph = "C"; break;
    }
    char buf[384];
    std::string name = jsonEscape(eventName(e, strings));
    int n = std::snprintf(
        buf, sizeof buf,
        "%s    {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", "
        "\"ts\": %.3f, \"pid\": %d, \"tid\": %d",
        first ? "" : ",\n", name.c_str(), traceKindName(e.kind), ph,
        e.ts, m.pid, m.tid);
    os.write(buf, n);
    first = false;
    if (e.phase == TracePhase::Complete) {
        n = std::snprintf(buf, sizeof buf, ", \"dur\": %.3f",
                          std::max(e.val, 0.0));
        os.write(buf, n);
    }
    if (e.phase == TracePhase::Instant)
        os << ", \"s\": \"t\"";
    if (e.phase == TracePhase::Counter) {
        n = std::snprintf(buf, sizeof buf,
                          ", \"args\": {\"value\": %.3f}}", e.val);
        os.write(buf, n);
        return;
    }
    n = std::snprintf(buf, sizeof buf,
                      ", \"args\": {\"a\": %d, \"b\": %d}}", e.a, e.b);
    os.write(buf, n);
}

void
writeMeta(std::ostream& os, int pid, const char* processName,
          bool& first)
{
    char buf[256];
    int n = std::snprintf(
        buf, sizeof buf,
        "%s    {\"name\": \"process_name\", \"ph\": \"M\", "
        "\"pid\": %d, \"tid\": 0, "
        "\"args\": {\"name\": \"%s\"}}",
        first ? "" : ",\n", pid, processName);
    os.write(buf, n);
    first = false;
}

} // namespace

void
exportTraceJson(std::ostream& os, const Tracer& t)
{
    exportTraceJson(os, t, nullptr);
}

namespace {

/** First (or last) Service hop of @p r bound to a real SM track. */
const ProvHop*
serviceHop(const ItemRecord& r, bool last)
{
    const ProvHop* found = nullptr;
    for (const ProvHop& h : r.hops) {
        if (h.kind != HopKind::Service || h.track < 0)
            continue;
        found = &h;
        if (!last)
            break;
    }
    return found;
}

/** Legacy Perfetto flow event ("s" start / "f" finish). */
void
writeFlowEvent(std::ostream& os, const char* ph, std::uint64_t id,
               Tick ts, int tid, bool& first)
{
    char buf[256];
    int n = std::snprintf(
        buf, sizeof buf,
        "%s    {\"name\": \"item\", \"cat\": \"flow\", "
        "\"ph\": \"%s\", \"id\": %llu, \"ts\": %.3f, "
        "\"pid\": %d, \"tid\": %d%s}",
        first ? "" : ",\n", ph,
        static_cast<unsigned long long>(id), ts, PidSms, tid,
        ph[0] == 'f' ? ", \"bp\": \"e\"" : "");
    os.write(buf, n);
    first = false;
}

} // namespace

void
exportTraceJson(std::ostream& os, const Tracer& t,
                const ProvenanceTracker* prov)
{
    std::vector<TraceEvent> evs = t.snapshot();

    // Complete (X) spans are recorded when they *finish* but carry
    // their start time, so the raw ring is not globally ordered.
    // Sort by timestamp — stably, to keep same-tick ordering (and
    // therefore the exported file) deterministic.
    std::stable_sort(evs.begin(), evs.end(),
                     [](const TraceEvent& x, const TraceEvent& y) {
                         return x.ts < y.ts;
                     });

    // Rebalance Begin/End pairs against ring truncation: drop an End
    // whose Begin was overwritten; close Begins still open at the
    // final timestamp (a wedged run leaves spans open).
    Tick lastTs = evs.empty() ? 0.0 : evs.back().ts;
    std::map<std::pair<int, int>, int> depth;
    std::vector<TraceEvent> out;
    out.reserve(evs.size());
    for (const TraceEvent& e : evs) {
        if (e.phase == TracePhase::Begin) {
            ExportMeta m = placeEvent(e);
            ++depth[{m.pid, m.tid}];
        } else if (e.phase == TracePhase::End) {
            ExportMeta m = placeEvent(e);
            int& d = depth[{m.pid, m.tid}];
            if (d == 0)
                continue; // orphan End: Begin fell off the ring
            --d;
        }
        out.push_back(e);
    }
    std::vector<TraceEvent> closers;
    for (const TraceEvent& e : out)
        if (e.phase == TracePhase::Begin) {
            ExportMeta m = placeEvent(e);
            int& d = depth[{m.pid, m.tid}];
            if (d > 0) {
                --d;
                TraceEvent close = e;
                close.phase = TracePhase::End;
                close.ts = lastTs;
                closers.push_back(close);
            }
        }
    out.insert(out.end(), closers.begin(), closers.end());

    os << "{\n  \"displayTimeUnit\": \"ms\",\n"
       << "  \"traceEvents\": [\n";
    bool first = true;
    writeMeta(os, PidHost, "host", first);
    writeMeta(os, PidStreams, "streams", first);
    writeMeta(os, PidSms, "sms", first);
    writeMeta(os, PidQueues, "queues", first);
    writeMeta(os, PidFlows, "flows", first);
    writeMeta(os, PidFaults, "faults", first);
    writeMeta(os, PidInterconnect, "interconnect", first);
    for (const TraceEvent& e : out)
        writeEvent(os, e, t.strings(), first);

    // Lineage flows: one arrow per tracked parent→child edge, from
    // the batch slice that produced the child to the batch slice
    // that consumed it. Emitted at export time from the tracker's
    // records — the ring holds no flow events, so tracing cost is
    // unchanged when provenance is off.
    if (prov) {
        const std::vector<ItemRecord>& recs = prov->records();
        for (std::size_t i = 0; i < recs.size(); ++i) {
            const ItemRecord& child = recs[i];
            if (!child.parent)
                continue;
            const ItemRecord* parent = prov->record(child.parent);
            if (!parent)
                continue;
            const ProvHop* from = serviceHop(*parent, true);
            const ProvHop* to = serviceHop(child, false);
            if (!from || !to)
                continue;
            std::uint64_t id = static_cast<std::uint64_t>(i) + 1;
            writeFlowEvent(os, "s", id, from->t0, from->track, first);
            writeFlowEvent(os, "f", id, to->t0, to->track, first);
        }
    }
    os << "\n  ]\n}\n";
}

} // namespace vp

/**
 * @file
 * Observability bundle: configuration + per-run data (tracer,
 * metrics registry, sampler, per-stage latency histograms).
 *
 * An ObsData instance lives for one Engine run and is handed to the
 * device, runners and queues as raw hooks (Tracer*, Sampler&). The
 * engine stores the finished bundle on RunResult::obs so callers can
 * export traces and reports after the run.
 */

#ifndef VP_OBS_OBS_HH
#define VP_OBS_OBS_HH

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "obs/trace.hh"

namespace vp {

/** What to observe during a run. A default ObsConfig records a
 *  trace but does not sample time-series. */
struct ObsConfig
{
    /** Record trace events (spans/instants/counters). */
    bool trace = true;
    /** Trace ring capacity in events; oldest overwritten on wrap. */
    std::size_t traceCapacity = 1u << 18;
    /**
     * Sample registered probes every this many simulated cycles
     * (0 = no time-series). Sampling slices the run loop exactly
     * like the watchdog — no simulation events are scheduled, so
     * the run stays bit-identical.
     */
    Tick sampleIntervalCycles = 0.0;
    /** Trace-tail length attached to stall/timeout diagnostics. */
    std::size_t diagnosticTailEvents = 32;
    /**
     * Track per-item provenance (lineage, latency decomposition,
     * critical path). Passive like the tracer: no simulation events,
     * bit-identical runs; off by default.
     */
    bool provenance = false;
    /** Track every k-th seed item (1 = all); children inherit their
     *  parent's tracking so sampled lineages stay complete. */
    std::uint64_t provenanceSampleEvery = 1;
};

/** Everything observed during one run. */
struct ObsData
{
    ObsData(const ObsConfig& cfg, const Simulator* sim)
        : config(cfg),
          tracer(sim, cfg.trace ? cfg.traceCapacity : 0),
          sampler(cfg.sampleIntervalCycles)
    {
        if (cfg.provenance)
            provenance = std::make_unique<ProvenanceTracker>(
                cfg.provenanceSampleEvery);
    }

    ObsConfig config;
    Tracer tracer;
    MetricsRegistry metrics;
    Sampler sampler;
    /** Batch latency (cycles, fetch→commit) per pipeline stage. */
    std::vector<Histogram> stageBatchCycles;
    /** Stage names parallel to stageBatchCycles. */
    std::vector<std::string> stageNames;

    /** Item provenance tracker; null when not armed. */
    std::unique_ptr<ProvenanceTracker> provenance;

    /** The tracer as a hook pointer; null when tracing is off. */
    Tracer* tracerPtr() { return tracer.enabled() ? &tracer : nullptr; }

    /** The provenance tracker as a hook pointer; null when off. */
    ProvenanceTracker* provenancePtr() { return provenance.get(); }
};

} // namespace vp

#endif // VP_OBS_OBS_HH

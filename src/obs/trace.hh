/**
 * @file
 * Run tracer: time-resolved record of what the simulated machine did.
 *
 * The tracer is a passive observer: hooks in the device, SMs, runners
 * and work queues record spans, instants and counter samples in
 * *simulated* time onto a preallocated slab ring buffer. Recording
 * never schedules simulation events, so a traced run's event sequence
 * — and therefore its cycle count — is bit-identical to an untraced
 * one; when tracing is disabled the hooks cost one predictable null
 * check.
 *
 * Traces export to the Chrome/Perfetto `trace_event` JSON format
 * (exportTraceJson), so any run can be opened as a timeline in
 * chrome://tracing or https://ui.perfetto.dev. One simulated cycle is
 * exported as one microsecond.
 */

#ifndef VP_OBS_TRACE_HH
#define VP_OBS_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace vp {

class ProvenanceTracker;

/** What a trace event describes (drives export naming/grouping). */
enum class TraceKind : std::uint8_t
{
    /** Whole-run span on the host track. */
    RunSpan,
    /** Host-side kernel launch request (instant; a = kernel name
     *  id, b = grid blocks). */
    KernelLaunch,
    /** Kernel executing on its stream (B/E pair; track = stream,
     *  a = kernel name id). */
    KernelSpan,
    /** One block-batch of a stage from fetch to commit (complete
     *  span; track = SM, a = stage, b = items). */
    StageBatch,
    /** One processor-sharing execution on an SM (complete span;
     *  track = SM, a = kernel id, b = warps). */
    ExecSpan,
    /** Resident blocks on an SM (counter; track = SM). */
    ResidentBlocks,
    /** Buffered items of a stage queue (counter; track = stage). */
    QueueDepth,
    /** One KBK flow from seed to drain (B/E pair; track = flow). */
    FlowSpan,
    /** Injected transient task faults (instant; a = stage, b = n). */
    TaskFault,
    /** Items scheduled for retry (instant; a = stage, b = n). */
    Retry,
    /** Redelivery of retried items (instant; a = stage, b = n). */
    Redeliver,
    /** Items dead-lettered (instant; a = stage, b = n). */
    DeadLetter,
    /** Commit waiting on a full bounded queue (instant; a = stage). */
    Backpressure,
    /** Injected kernel-launch delay (instant; a = name id). */
    LaunchDelay,
    /** SM killed by fault injection (instant; track = SM). */
    SmFail,
    /** SM throughput degraded (instant; track = SM, b = pct). */
    SmDegrade,
    /** Online-tuner refill launch (instant; a = stage, b = depth). */
    Refill,
    /** Block retreated (block-mapping budget; track = SM). */
    Retreat,
    /** Dynamic-parallelism sub-kernel spawn (a = stage, b = items). */
    DpSpawn,
    /** Engine watchdog checkpoint (instant; a = stalled checks). */
    WatchdogCheck,
    /** Cross-device interconnect transfer (complete span; track =
     *  destination device, a = source device, b = bytes). */
    Transfer,
    /** Adaptive-controller epoch (instant; a = moves so far). */
    AdaptiveEpoch,
    /** Adaptive block migration (instant; a = donor stage, b =
     *  receiver stage). */
    AdaptiveMove,
    /** Scripted whole-device kill (instant; a = device). */
    DeviceKill,
    /** Interconnect path failed (instant; a = src, b = dst). */
    LinkFail,
    /** Interconnect path degraded (instant; a = src, b = dst). */
    LinkDegrade,
    /** Pinned stage re-homed after a device death (instant; a =
     *  stage, b = new home device). */
    StageRehome,
    /** In-flight transfer redelivered because its destination died
     *  (instant; a = stage, b = new home device). */
    TransferRedeliver,
};

/** Human-readable name of @p k. */
const char* traceKindName(TraceKind k);

/** Event phase, mirroring trace_event `ph` values. */
enum class TracePhase : std::uint8_t
{
    Instant,  //!< ph "i"
    Begin,    //!< ph "B"
    End,      //!< ph "E"
    Complete, //!< ph "X" (ts + dur)
    Counter,  //!< ph "C" (value in val)
};

/** One record on the trace ring. POD; 32 bytes. */
struct TraceEvent
{
    /** Simulated time of the event (span start for Complete). */
    Tick ts = 0.0;
    /** Duration for Complete events; sampled value for Counter. */
    double val = 0.0;
    TraceKind kind = TraceKind::RunSpan;
    TracePhase phase = TracePhase::Instant;
    /** Track within the kind's group: SM / stream / stage / flow. */
    std::int16_t track = 0;
    /** Kind-specific arguments (stage index, item count, name id). */
    std::int32_t a = 0;
    std::int32_t b = 0;

    bool
    operator==(const TraceEvent& o) const
    {
        return ts == o.ts && val == o.val && kind == o.kind
            && phase == o.phase && track == o.track && a == o.a
            && b == o.b;
    }
};

/**
 * Slab ring buffer of trace events for one run.
 *
 * Capacity is fixed at construction (one allocation); when the ring
 * fills, the oldest events are overwritten and counted as dropped —
 * recent history, the part diagnostics need, is always retained.
 */
class Tracer
{
  public:
    /**
     * @param sim clock source for hooks that record "now"
     * @param capacity ring capacity in events; 0 disables recording
     */
    Tracer(const Simulator* sim, std::size_t capacity);

    /** True when this tracer records (capacity > 0). */
    bool enabled() const { return !ring_.empty(); }

    /** Current simulated time (for hooks without a timestamp). */
    Tick now() const { return sim_->now(); }

    /** Record an instant event at time @p ts. */
    void
    instant(TraceKind k, std::int16_t track, Tick ts,
            std::int32_t a = 0, std::int32_t b = 0)
    {
        record({ts, 0.0, k, TracePhase::Instant, track, a, b});
    }

    /** Record a complete span [@p ts, @p ts + @p dur]. */
    void
    span(TraceKind k, std::int16_t track, Tick ts, Tick dur,
         std::int32_t a = 0, std::int32_t b = 0)
    {
        record({ts, dur, k, TracePhase::Complete, track, a, b});
    }

    /** Open a Begin/End span on @p track. */
    void
    begin(TraceKind k, std::int16_t track, Tick ts,
          std::int32_t a = 0)
    {
        record({ts, 0.0, k, TracePhase::Begin, track, a, 0});
    }

    /** Close the innermost open span of @p k on @p track. */
    void
    end(TraceKind k, std::int16_t track, Tick ts, std::int32_t a = 0)
    {
        record({ts, 0.0, k, TracePhase::End, track, a, 0});
    }

    /** Record a counter sample (@p a optionally names the series). */
    void
    counter(TraceKind k, std::int16_t track, Tick ts, double value,
            std::int32_t a = 0)
    {
        record({ts, value, k, TracePhase::Counter, track, a, 0});
    }

    /**
     * Intern @p s into the trace string table; returns a stable id
     * usable as an event argument. Idempotent per string.
     */
    std::int32_t intern(const std::string& s);

    /** The interned string table, in id order. */
    const std::vector<std::string>& strings() const { return strings_; }

    /** Events recorded over the run (including overwritten ones). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to ring overwrite. */
    std::uint64_t dropped() const { return dropped_; }

    /** The retained events, oldest first (unrolls the ring). */
    std::vector<TraceEvent> snapshot() const;

    /**
     * Human-readable rendering of the last @p k retained events,
     * newest last — attached to Stalled/DrainTimeout diagnostics.
     */
    std::string tail(std::size_t k) const;

    /**
     * Append every retained event of @p shard, re-interning
     * string-table arguments (KernelLaunch/KernelSpan/LaunchDelay
     * name ids, QueueDepth queue-name ids) into this tracer's table.
     * StageBatch events keep their raw stage-index argument, exactly
     * like the serial group loop records them. Used to merge the
     * per-device tracer shards of a host-parallel run; call once per
     * shard, in device order, before recording run-final events so
     * the merged string table starts with device 0's queue names.
     */
    void absorb(const Tracer& shard);

  private:
    void
    record(TraceEvent e)
    {
        if (ring_.empty())
            return;
        ring_[head_] = e;
        head_ = head_ + 1 == ring_.size() ? 0 : head_ + 1;
        if (size_ < ring_.size())
            ++size_;
        else
            ++dropped_;
        ++recorded_;
    }

    const Simulator* sim_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
    std::vector<std::string> strings_;
};

/**
 * Export @p t as Chrome/Perfetto `trace_event` JSON.
 *
 * Events are sorted by timestamp, so every track is monotonic, and
 * Begin/End pairs are rebalanced against ring truncation: an End
 * whose Begin was overwritten is dropped, a Begin left open at the
 * end of the trace (e.g. a stalled run) is closed at the final
 * timestamp. `scripts/trace_lint.py` validates both properties.
 */
void exportTraceJson(std::ostream& os, const Tracer& t);

/**
 * Flow-aware export: additionally emits one Perfetto flow (legacy
 * s/f pair, id = the child item's provenance id) per parent→child
 * lineage edge of @p prov, binding the arrow from the parent's
 * serving batch slice to the child's. Items without a service hop on
 * either end (never popped, or served on an untracked SM) emit no
 * flow. @p prov may be null, which degrades to the plain export.
 */
void exportTraceJson(std::ostream& os, const Tracer& t,
                     const ProvenanceTracker* prov);

} // namespace vp

#endif // VP_OBS_TRACE_HH

/**
 * @file
 * Metrics registry: counters, gauges, log-bucketed latency
 * histograms with percentile estimation, and a periodic sampler
 * that turns live probes into simulated-time series.
 *
 * Everything here is plain host-side bookkeeping — no simulation
 * events are ever scheduled, so metrics collection cannot perturb a
 * run. The sampler is driven from Engine::runTimed's slicing loop
 * (the same zero-sim-event technique the watchdog uses).
 */

#ifndef VP_OBS_METRICS_HH
#define VP_OBS_METRICS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "sim/simulator.hh"

namespace vp {

/** Monotonically increasing count. */
class Counter
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** Last-written value. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * Log-bucketed histogram for long-tailed latency distributions.
 *
 * Bucket 0 holds values <= @p lo; bucket i >= 1 holds
 * (lo * growth^(i-1), lo * growth^i]. Buckets are appended lazily,
 * so an untouched histogram costs a few words. Percentiles are
 * estimated by linear interpolation inside the covering bucket —
 * with the default 1.25 growth the estimate is within ~12% of the
 * true value, plenty for p50/p95/p99 reporting. Exact count, mean,
 * stddev, min and max ride along in an Accumulator.
 */
class Histogram
{
  public:
    explicit Histogram(double lo = 1.0, double growth = 1.25);

    void add(double v);

    /**
     * Fold @p other into this histogram. Requires identical bucket
     * geometry (lo, growth) so counts can be added bucket-wise; the
     * host-parallel group loop uses this to merge per-device shards
     * into the run's single reported histogram.
     */
    void merge(const Histogram& other);

    /** Index of the bucket @p v falls in. */
    std::size_t bucketIndex(double v) const;
    /** Inclusive upper bound of bucket @p i. */
    double upperBound(std::size_t i) const;
    /** Exclusive lower bound of bucket @p i (-inf for bucket 0). */
    double lowerBound(std::size_t i) const;

    /**
     * Estimated value at quantile @p p in [0, 1]. Returns 0 for an
     * empty histogram (check empty() when rendering).
     */
    double percentile(double p) const;

    bool empty() const { return acc_.empty(); }
    std::uint64_t count() const { return acc_.count(); }
    double mean() const { return acc_.mean(); }
    double stddev() const { return acc_.stddev(); }
    double min() const { return acc_.min(); }
    double max() const { return acc_.max(); }
    const Accumulator& accumulator() const { return acc_; }
    const std::vector<std::uint64_t>& buckets() const
    {
        return buckets_;
    }

  private:
    double lo_;
    double growth_;
    double logGrowth_;
    std::vector<std::uint64_t> buckets_;
    Accumulator acc_;
};

/** One sampled series: parallel (simulated time, value) arrays. */
struct TimeSeries
{
    std::string name;
    std::vector<Tick> t;
    std::vector<double> v;
};

/**
 * Periodic sampler. Probes are registered once (cheap
 * std::function reads of live state — queue depths, resident
 * blocks...); sampleAt() appends one point per series. The caller
 * decides *when* to sample; this class only records.
 */
class Sampler
{
  public:
    explicit Sampler(Tick intervalCycles)
        : interval_(intervalCycles)
    {
    }

    /** Sampling period in simulated cycles (0 = sampling off). */
    Tick interval() const { return interval_; }
    bool enabled() const { return interval_ > 0.0; }

    void
    addSeries(std::string name, std::function<double()> probe)
    {
        series_.push_back({std::move(name), {}, {}});
        probes_.push_back(std::move(probe));
    }

    /** Append one sample of every series, stamped @p now. */
    void
    sampleAt(Tick now)
    {
        for (std::size_t i = 0; i < probes_.size(); ++i) {
            series_[i].t.push_back(now);
            series_[i].v.push_back(probes_[i]());
        }
    }

    const std::vector<TimeSeries>& series() const { return series_; }

  private:
    Tick interval_;
    std::vector<TimeSeries> series_;
    std::vector<std::function<double()>> probes_;
};

/**
 * Name-addressed registry of run metrics. Accessors create on first
 * use; references stay valid for the registry's lifetime (node-based
 * map storage).
 */
class MetricsRegistry
{
  public:
    Counter& counter(const std::string& name)
    {
        return counters_[name];
    }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    Histogram&
    histogram(const std::string& name, double lo = 1.0,
              double growth = 1.25)
    {
        auto it = histograms_.find(name);
        if (it == histograms_.end())
            it = histograms_.emplace(name, Histogram(lo, growth))
                     .first;
        return it->second;
    }

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Gauge>& gauges() const
    {
        return gauges_;
    }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace vp

#endif // VP_OBS_METRICS_HH

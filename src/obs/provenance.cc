#include "obs/provenance.hh"

#include <algorithm>
#include <cmath>
#include <map>

namespace vp {

const char*
itemFateName(ItemFate f)
{
    switch (f) {
    case ItemFate::Open: return "open";
    case ItemFate::Completed: return "completed";
    case ItemFate::DeadLettered: return "dead-lettered";
    case ItemFate::Dropped: return "dropped";
    }
    return "?";
}

ProvenanceTracker::ProvenanceTracker(std::uint64_t sampleEvery)
    : sampleEvery_(sampleEvery == 0 ? 1 : sampleEvery)
{
}

std::uint64_t
ProvenanceTracker::mintSeed()
{
    ++seedsSeen_;
    if (!alwaysTrack_ && sampleEvery_ > 1
        && (seedsSeen_ - 1) % sampleEvery_ != 0)
        return 0;
    ++seedsTracked_;
    records_.emplace_back();
    auto id = static_cast<std::uint64_t>(records_.size());
    rootOf_.push_back(id); // a seed roots its own lineage
    openByRoot_.push_back(1);
    return id;
}

std::uint64_t
ProvenanceTracker::mintChild(std::uint64_t parent)
{
    if (parent == 0 || parent > records_.size())
        return 0;
    std::uint64_t root = rootOf_[static_cast<std::size_t>(parent - 1)];
    records_.emplace_back();
    records_.back().parent = parent;
    rootOf_.push_back(root);
    openByRoot_.push_back(0);
    if (root != 0)
        ++openByRoot_[static_cast<std::size_t>(root - 1)];
    return static_cast<std::uint64_t>(records_.size());
}

void
ProvenanceTracker::bindStageNames(const std::vector<std::string>& names)
{
    if (stageNames_.empty())
        stageNames_ = names;
}

ItemRecord*
ProvenanceTracker::rec(std::uint64_t id)
{
    if (id == 0 || id > records_.size())
        return nullptr;
    return &records_[static_cast<std::size_t>(id - 1)];
}

const ItemRecord*
ProvenanceTracker::record(std::uint64_t id) const
{
    if (id == 0 || id > records_.size())
        return nullptr;
    return &records_[static_cast<std::size_t>(id - 1)];
}

void
ProvenanceTracker::closeHop(ItemRecord& r, Tick now)
{
    ProvHop h;
    h.stage = r.stage;
    h.device = r.device;
    h.t0 = r.since;
    h.t1 = now;
    double d = now - r.since;
    switch (r.state) {
    case ItemRecord::State::None:
        return;
    case ItemRecord::State::Queued:
        h.kind = HopKind::Wait;
        r.waitCycles += d;
        break;
    case ItemRecord::State::InService:
        h.kind = HopKind::Service;
        h.sm = r.sm;
        h.track = r.track;
        r.serviceCycles += d;
        break;
    case ItemRecord::State::InTransfer:
        h.kind = HopKind::Transfer;
        h.fromDevice = r.fromDevice;
        h.toDevice = r.toDevice;
        r.transferCycles += d;
        break;
    }
    r.hops.push_back(h);
}

void
ProvenanceTracker::noteEnqueue(std::uint64_t id, int stage, int device,
                               Tick now)
{
    ItemRecord* r = rec(id);
    if (!r || r->fate != ItemFate::Open)
        return;
    if (r->state == ItemRecord::State::None)
        r->birth = now;
    else
        closeHop(*r, now);
    r->state = ItemRecord::State::Queued;
    r->since = now;
    r->stage = static_cast<std::int16_t>(stage);
    r->device = static_cast<std::int16_t>(device);
}

void
ProvenanceTracker::notePop(std::uint64_t id, int sm, int track, Tick now)
{
    ItemRecord* r = rec(id);
    if (!r || r->fate != ItemFate::Open)
        return;
    if (r->state == ItemRecord::State::None)
        r->birth = now;
    else
        closeHop(*r, now);
    r->state = ItemRecord::State::InService;
    r->since = now;
    r->sm = static_cast<std::int16_t>(sm);
    r->track = track;
}

void
ProvenanceTracker::noteForward(std::uint64_t id, int stage,
                               int fromDevice, int toDevice, Tick now)
{
    ItemRecord* r = rec(id);
    if (!r || r->fate != ItemFate::Open)
        return;
    if (r->state == ItemRecord::State::None)
        r->birth = now;
    else
        closeHop(*r, now);
    r->state = ItemRecord::State::InTransfer;
    r->since = now;
    r->stage = static_cast<std::int16_t>(stage);
    r->device = static_cast<std::int16_t>(toDevice);
    r->fromDevice = static_cast<std::int16_t>(fromDevice);
    r->toDevice = static_cast<std::int16_t>(toDevice);
}

void
ProvenanceTracker::terminal(std::uint64_t id, Tick now, ItemFate fate)
{
    ItemRecord* r = rec(id);
    if (!r || r->fate != ItemFate::Open)
        return;
    if (r->state == ItemRecord::State::None && r->hops.empty())
        r->birth = now; // never observed in a queue (e.g. lost at a
                        // failed link on the tick it was minted)
    ItemRecord::State last = r->state;
    closeHop(*r, now);
    r->done = now;
    r->fate = fate;
    // Exact decomposition: the final hop's bucket is the remainder
    // of e2e minus the other buckets, so accumulated rounding folds
    // into the hop it belongs to and the invariant holds bit-exactly.
    double e2e = r->done - r->birth;
    switch (last) {
    case ItemRecord::State::None:
        break;
    case ItemRecord::State::Queued:
        r->waitCycles = e2e - r->serviceCycles - r->transferCycles;
        break;
    case ItemRecord::State::InService:
        r->serviceCycles = e2e - r->waitCycles - r->transferCycles;
        break;
    case ItemRecord::State::InTransfer:
        r->transferCycles = e2e - r->waitCycles - r->serviceCycles;
        break;
    }
    r->state = ItemRecord::State::None;
    std::uint64_t root = rootOf_[static_cast<std::size_t>(id - 1)];
    if (root != 0
        && --openByRoot_[static_cast<std::size_t>(root - 1)] == 0)
        closedRoots_.push_back({root, now});
}

void
ProvenanceTracker::noteComplete(std::uint64_t id, Tick now)
{
    terminal(id, now, ItemFate::Completed);
}

void
ProvenanceTracker::noteDeadLetter(std::uint64_t id, Tick now)
{
    terminal(id, now, ItemFate::DeadLettered);
}

void
ProvenanceTracker::noteDropped(std::uint64_t id, Tick now)
{
    terminal(id, now, ItemFate::Dropped);
}

std::string
ProvenanceTracker::stageName(int stage) const
{
    if (stage >= 0
        && static_cast<std::size_t>(stage) < stageNames_.size())
        return stageNames_[static_cast<std::size_t>(stage)];
    return "stage" + std::to_string(stage);
}

void
ProvenanceTracker::finalize(MetricsRegistry& m)
{
    if (finalized_)
        return;
    finalized_ = true;
    for (const ItemRecord& r : records_) {
        if (r.fate == ItemFate::Completed)
            m.histogram("prov/e2e_cycles", 16.0, 1.25).add(r.e2e());
        for (const ProvHop& h : r.hops) {
            if (h.kind == HopKind::Transfer)
                continue;
            const char* kind =
                h.kind == HopKind::Wait ? "prov/wait/" : "prov/service/";
            m.histogram(kind + stageName(h.stage), 16.0, 1.25)
                .add(h.t1 - h.t0);
        }
    }
}

std::uint64_t
ProvenanceTracker::countByFate(ItemFate f) const
{
    std::uint64_t n = 0;
    for (const ItemRecord& r : records_)
        if (r.fate == f)
            ++n;
    return n;
}

std::uint64_t
ProvenanceTracker::rootOf(std::uint64_t id) const
{
    if (id == 0 || id > rootOf_.size())
        return 0;
    return rootOf_[static_cast<std::size_t>(id - 1)];
}

std::uint64_t
ProvenanceTracker::openOfRoot(std::uint64_t root) const
{
    if (root == 0 || root > openByRoot_.size())
        return 0;
    return openByRoot_[static_cast<std::size_t>(root - 1)];
}

std::vector<ProvenanceTracker::ClosedRoot>
ProvenanceTracker::drainClosedRoots()
{
    return std::exchange(closedRoots_, {});
}

double
ProvenanceTracker::maxInvariantError() const
{
    double worst = 0.0;
    for (const ItemRecord& r : records_) {
        if (r.fate == ItemFate::Open)
            continue;
        double err = std::fabs(r.waitCycles + r.serviceCycles
                               + r.transferCycles - r.e2e());
        worst = std::max(worst, err);
    }
    return worst;
}

double
ProvenanceTracker::transferCyclesTotal() const
{
    double total = 0.0;
    for (const ItemRecord& r : records_)
        total += r.transferCycles;
    return total;
}

std::vector<StageDecomposition>
ProvenanceTracker::stageDecomposition() const
{
    std::vector<StageDecomposition> out;
    auto at = [&](int stage) -> StageDecomposition& {
        for (StageDecomposition& d : out)
            if (d.stage == stage)
                return d;
        out.emplace_back();
        out.back().stage = stage;
        out.back().name = stageName(stage);
        return out.back();
    };
    for (const ItemRecord& r : records_) {
        for (const ProvHop& h : r.hops) {
            if (h.kind == HopKind::Transfer)
                continue;
            StageDecomposition& d = at(h.stage);
            if (h.kind == HopKind::Wait) {
                ++d.waits;
                d.waitCycles += h.t1 - h.t0;
            } else {
                ++d.services;
                d.serviceCycles += h.t1 - h.t0;
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const StageDecomposition& a,
                 const StageDecomposition& b) {
                  return a.stage < b.stage;
              });
    return out;
}

std::vector<PathSegment>
ProvenanceTracker::criticalPath() const
{
    // Last-finishing completed item; ties break on the lower id so
    // identical runs extract identical paths.
    std::uint64_t lastId = 0;
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const ItemRecord& r = records_[i];
        if (r.fate != ItemFate::Completed)
            continue;
        if (lastId == 0 || r.done > records_[lastId - 1].done)
            lastId = static_cast<std::uint64_t>(i + 1);
    }
    if (lastId == 0)
        return {};

    // Lineage chain, seed first.
    std::vector<const ItemRecord*> chain;
    for (std::uint64_t id = lastId; id != 0;) {
        const ItemRecord* r = record(id);
        if (!r)
            break;
        chain.push_back(r);
        id = r->parent;
    }
    std::reverse(chain.begin(), chain.end());

    std::vector<PathSegment> path;
    for (const ItemRecord* r : chain) {
        for (const ProvHop& h : r->hops) {
            PathSegment s;
            s.kind = h.kind;
            s.t0 = h.t0;
            s.t1 = h.t1;
            s.cycles = h.t1 - h.t0;
            switch (h.kind) {
            case HopKind::Wait:
                s.label = "wait:" + stageName(h.stage) + "@d"
                    + std::to_string(h.device);
                break;
            case HopKind::Service:
                s.label = "service:" + stageName(h.stage) + "@d"
                    + std::to_string(h.device);
                break;
            case HopKind::Transfer:
                s.label = "transfer:d" + std::to_string(h.fromDevice)
                    + "->d" + std::to_string(h.toDevice);
                break;
            }
            path.push_back(std::move(s));
        }
    }
    return path;
}

std::vector<std::pair<std::string, double>>
ProvenanceTracker::rankedCriticalSegments(std::size_t topN) const
{
    std::map<std::string, double> agg;
    for (const PathSegment& s : criticalPath())
        agg[s.label] += s.cycles;
    std::vector<std::pair<std::string, double>> out(agg.begin(),
                                                    agg.end());
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (topN > 0 && out.size() > topN)
        out.resize(topN);
    return out;
}

} // namespace vp

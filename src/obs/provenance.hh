/**
 * @file
 * Item provenance: per-item lineage, latency decomposition and
 * critical-path attribution.
 *
 * The tracker assigns every sampled seed item a compact id (1-based;
 * 0 means "untracked") and follows it through queue waits, batch
 * service, retries, cross-device transfers and dynamic-parallelism
 * spawns (a stage output inherits lineage from the popped item that
 * produced it). Recording is strictly passive: every hook takes an
 * explicit simulated timestamp and touches only host-side memory, so
 * an instrumented run schedules exactly the same simulation events
 * as an uninstrumented one.
 *
 * Each item's lifetime partitions into *hops* — Wait (in a stage
 * queue), Service (popped into a batch until its outputs commit) and
 * Transfer (riding the interconnect, including any failover
 * redelivery delay) — and the decomposition invariant
 *
 *     wait + service + transfer == done - birth
 *
 * holds exactly: when an item reaches a terminal state the bucket of
 * its final hop is assigned as the remainder of the end-to-end time
 * minus the other two buckets, folding any floating-point
 * accumulation error into the hop it belongs to.
 *
 * The critical path walks lineage backwards from the last-finishing
 * completed item to its seed; a parent completes on the tick its
 * outputs commit, so consecutive chain links abut in time and the
 * path's hops tile the chain's span of the run.
 */

#ifndef VP_OBS_PROVENANCE_HH
#define VP_OBS_PROVENANCE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hh"
#include "sim/simulator.hh"

namespace vp {

/** Terminal accounting state of a tracked item. */
enum class ItemFate : std::uint8_t
{
    /** Still in flight (or the run ended without resolving it). */
    Open,
    /** Executed by its stage; outputs (if any) committed. */
    Completed,
    /** Abandoned: retry budget exhausted, non-retryable abort, or a
     *  failed interconnect link. */
    DeadLettered,
    /** Destroyed by an injected push-drop fault. */
    Dropped,
};

/** Human-readable name of @p f. */
const char* itemFateName(ItemFate f);

/** What an item was doing during one hop of its lifetime. */
enum class HopKind : std::uint8_t
{
    /** Sitting in a stage input queue. */
    Wait,
    /** Popped into a batch, until the batch committed (includes any
     *  retry backoff: a retried item stays "in service" from its
     *  faulted pop until redelivery re-queues it). */
    Service,
    /** Crossing the interconnect (submit to delivery, including
     *  failover redelivery of in-flight transfers). */
    Transfer,
};

/** One closed interval of a tracked item's lifetime. */
struct ProvHop
{
    HopKind kind = HopKind::Wait;
    /** Stage the hop belongs to (queue stage / serving stage /
     *  transfer destination stage). */
    std::int16_t stage = -1;
    /** Device the hop ran on (destination device for transfers). */
    std::int16_t device = -1;
    /** Serving SM (Service hops only). */
    std::int16_t sm = -1;
    /** Trace track of the serving SM (Service hops; binds Perfetto
     *  flow events to the StageBatch slice). */
    std::int32_t track = -1;
    /** Transfer endpoints (Transfer hops only). */
    std::int16_t fromDevice = -1;
    std::int16_t toDevice = -1;
    Tick t0 = 0.0;
    Tick t1 = 0.0;
};

/** Full provenance of one tracked item. */
struct ItemRecord
{
    /** Item id of the popped item whose batch produced this one;
     *  0 for seed items. */
    std::uint64_t parent = 0;
    /** First observation (enqueue or transfer submit). */
    Tick birth = 0.0;
    /** Terminal observation; 0 while Open. */
    Tick done = 0.0;
    ItemFate fate = ItemFate::Open;
    /** Decomposition buckets; sum == done - birth exactly once the
     *  item is terminal. */
    double waitCycles = 0.0;
    double serviceCycles = 0.0;
    double transferCycles = 0.0;
    std::vector<ProvHop> hops;

    /** @name Live tracking state (internal) @{ */
    enum class State : std::uint8_t
    {
        None,
        Queued,
        InService,
        InTransfer,
    };
    State state = State::None;
    Tick since = 0.0;
    std::int16_t stage = -1;
    std::int16_t device = -1;
    std::int16_t sm = -1;
    std::int32_t track = -1;
    std::int16_t fromDevice = -1;
    std::int16_t toDevice = -1;
    /** @} */

    /** End-to-end latency (valid once terminal). */
    double e2e() const { return done - birth; }
};

/** One labelled interval of the critical path. */
struct PathSegment
{
    /** "wait:<stage>@d<dev>", "service:<stage>@d<dev>" or
     *  "transfer:d<src>->d<dst>". */
    std::string label;
    HopKind kind = HopKind::Wait;
    Tick t0 = 0.0;
    Tick t1 = 0.0;
    double cycles = 0.0;
};

/** Aggregate wait/service decomposition of one stage. */
struct StageDecomposition
{
    int stage = -1;
    std::string name;
    std::uint64_t waits = 0;
    std::uint64_t services = 0;
    double waitCycles = 0.0;
    double serviceCycles = 0.0;
};

/**
 * Passive per-item provenance recorder. One instance lives inside an
 * ObsData for the duration of a run; the queueing layer stamps and
 * reports enqueues, the runtime reports pops/commits/terminals, and
 * the sharded engine reports transfers. All methods are O(1) per
 * observation (amortized) and never touch the simulator.
 *
 * Every record also knows the *root* (seed ancestor) of its lineage,
 * and the tracker counts how many items of each lineage are still
 * Open. The tick the count hits zero the lineage is "closed" and
 * appended to a drain list — the serving layer maps closed roots
 * back to requests to stamp end-to-end latency without ever walking
 * the record table.
 */
class ProvenanceTracker
{
  public:
    /** Track every @p sampleEvery -th seed item (1 = all). Children
     *  inherit tracking from their parent, so sampled lineages stay
     *  complete end-to-end. */
    explicit ProvenanceTracker(std::uint64_t sampleEvery = 1);

    /** Id for the next seed item; 0 when sampled out. */
    std::uint64_t mintSeed();

    /**
     * While on, mintSeed tracks every seed regardless of the
     * sampling stride. The serving layer flips this around request
     * seeding: request roots must always be tracked (lineage closure
     * is how completion is detected) while pre-seeded app items keep
     * honoring the caller's stride. Forced seeds still advance
     * seedsSeen(), so the stride phase stays a pure function of the
     * seed sequence.
     */
    void setAlwaysTrack(bool on) { alwaysTrack_ = on; }
    bool alwaysTrack() const { return alwaysTrack_; }

    /** Id for an output of the batch that popped @p parent; 0 when
     *  the parent itself is untracked. */
    std::uint64_t mintChild(std::uint64_t parent);

    /** Stage names for labels; first binding wins. */
    void bindStageNames(const std::vector<std::string>& names);

    /** @name Recording hooks (all take an explicit sim timestamp) @{ */
    void noteEnqueue(std::uint64_t id, int stage, int device, Tick now);
    void notePop(std::uint64_t id, int sm, int track, Tick now);
    void noteForward(std::uint64_t id, int stage, int fromDevice,
                     int toDevice, Tick now);
    void noteComplete(std::uint64_t id, Tick now);
    void noteDeadLetter(std::uint64_t id, Tick now);
    void noteDropped(std::uint64_t id, Tick now);
    /** @} */

    /**
     * Fold per-item latencies into @p m: "prov/e2e_cycles" over
     * completed items plus per-stage "prov/wait/<stage>" and
     * "prov/service/<stage>" hop histograms. Idempotent.
     */
    void finalize(MetricsRegistry& m);

    /** @name Queries @{ */

    /** Seed items offered to mintSeed (tracked or not). */
    std::uint64_t seedsSeen() const { return seedsSeen_; }
    /** Seed items actually tracked. */
    std::uint64_t seedsTracked() const { return seedsTracked_; }
    std::uint64_t sampleEvery() const { return sampleEvery_; }

    const std::vector<ItemRecord>& records() const { return records_; }
    /** Record of @p id, or null for 0 / out of range. */
    const ItemRecord* record(std::uint64_t id) const;

    std::uint64_t countByFate(ItemFate f) const;

    /** Seed (root) ancestor id of @p id's lineage; 0 for 0 / out of
     *  range. A seed is its own root. */
    std::uint64_t rootOf(std::uint64_t id) const;

    /** Tracked items of @p root's lineage still Open. */
    std::uint64_t openOfRoot(std::uint64_t root) const;

    /** One lineage whose items all reached terminal fates. */
    struct ClosedRoot
    {
        std::uint64_t root = 0;
        /** Time the last open item of the lineage went terminal. */
        Tick closedAt = 0.0;
    };

    /**
     * Lineages that closed since the previous drain, in close order
     * (terminal hooks run at simulated event times, so the order is
     * deterministic). Moves the list out.
     */
    std::vector<ClosedRoot> drainClosedRoots();

    /** Largest |wait+service+transfer - e2e| over terminal items
     *  (the decomposition invariant; must be exactly 0). */
    double maxInvariantError() const;

    /** Total cycles tracked items spent on the interconnect. */
    double transferCyclesTotal() const;

    /** Per-stage aggregate wait/service decomposition. */
    std::vector<StageDecomposition> stageDecomposition() const;

    /**
     * Hop-by-hop critical path: the lineage chain of the
     * last-finishing completed item, seed first. Empty when nothing
     * completed.
     */
    std::vector<PathSegment> criticalPath() const;

    /** Critical-path time aggregated by segment label, largest
     *  first, capped at @p topN (0 = all). */
    std::vector<std::pair<std::string, double>>
    rankedCriticalSegments(std::size_t topN = 0) const;

    std::string stageName(int stage) const;

    /** @} */

  private:
    ItemRecord* rec(std::uint64_t id);
    /** Close the hop open since r.since and charge its bucket. */
    void closeHop(ItemRecord& r, Tick now);
    void terminal(std::uint64_t id, Tick now, ItemFate fate);

    std::uint64_t sampleEvery_;
    bool alwaysTrack_ = false;
    std::uint64_t seedsSeen_ = 0;
    std::uint64_t seedsTracked_ = 0;
    std::vector<ItemRecord> records_;
    /** Root id per record, parallel to records_. */
    std::vector<std::uint64_t> rootOf_;
    /** Open items per lineage, keyed by root id - 1 (slots of
     *  non-root ids stay 0). */
    std::vector<std::uint32_t> openByRoot_;
    std::vector<ClosedRoot> closedRoots_;
    std::vector<std::string> stageNames_;
    bool finalized_ = false;
};

} // namespace vp

#endif // VP_OBS_PROVENANCE_HH

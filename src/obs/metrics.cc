#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hh"

namespace vp {

Histogram::Histogram(double lo, double growth)
    : lo_(lo > 0.0 ? lo : 1.0),
      growth_(growth > 1.0 ? growth : 1.25),
      logGrowth_(std::log(growth_ > 1.0 ? growth_ : 1.25))
{
}

std::size_t
Histogram::bucketIndex(double v) const
{
    if (!(v > lo_))
        return 0;
    // Candidate index from logs, then fix up against FP error so the
    // boundary contract — upperBound(i) inclusive — holds exactly.
    double raw = std::log(v / lo_) / logGrowth_;
    std::size_t i = static_cast<std::size_t>(std::ceil(raw));
    if (i == 0)
        i = 1;
    while (i > 1 && v <= upperBound(i - 1))
        --i;
    while (v > upperBound(i))
        ++i;
    return i;
}

double
Histogram::upperBound(std::size_t i) const
{
    return lo_ * std::pow(growth_, static_cast<double>(i));
}

double
Histogram::lowerBound(std::size_t i) const
{
    if (i == 0)
        return -std::numeric_limits<double>::infinity();
    return lo_ * std::pow(growth_, static_cast<double>(i) - 1.0);
}

void
Histogram::add(double v)
{
    std::size_t i = bucketIndex(v);
    if (i >= buckets_.size())
        buckets_.resize(i + 1, 0);
    ++buckets_[i];
    acc_.add(v);
}

void
Histogram::merge(const Histogram& other)
{
    VP_ASSERT(lo_ == other.lo_ && growth_ == other.growth_,
              "merging histograms with different bucket geometry");
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    acc_.merge(other.acc_);
}

double
Histogram::percentile(double p) const
{
    if (acc_.empty())
        return 0.0;
    p = std::min(std::max(p, 0.0), 1.0);
    double target = p * static_cast<double>(acc_.count());
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        double before = static_cast<double>(cum);
        cum += buckets_[i];
        if (static_cast<double>(cum) >= target) {
            // Interpolate within the bucket, clamped to the observed
            // range so estimates never leave [min, max].
            double loB = i == 0 ? acc_.min() : lowerBound(i);
            double hiB = upperBound(i);
            double frac =
                (target - before) / static_cast<double>(buckets_[i]);
            double est = loB + frac * (hiB - loB);
            return std::min(std::max(est, acc_.min()), acc_.max());
        }
    }
    return acc_.max();
}

} // namespace vp

#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "core/run_result.hh"
#include "obs/obs.hh"

// NOTE: vp_obs does not link against vp_core; this translation unit
// may use only header-inline content from core/gpu/queueing headers
// (plain struct fields, inline functions). Keep it that way.

namespace vp {

namespace {

std::string
esc(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Number formatting that is always valid JSON (no inf/nan). */
std::string
num(double v)
{
    if (!(v == v))
        return "null";
    if (v > 1e308 || v < -1e308)
        return "null";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

std::string
uint(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

/** Latency-summary object of one histogram ({} when no samples). */
void
writeHistogram(std::ostream& os, const Histogram& h,
               const char* indent)
{
    if (h.empty()) {
        os << "{\"count\": 0}";
        return;
    }
    os << "{\n"
       << indent << "  \"count\": " << uint(h.count()) << ",\n"
       << indent << "  \"mean\": " << num(h.mean()) << ",\n"
       << indent << "  \"stddev\": " << num(h.stddev()) << ",\n"
       << indent << "  \"min\": " << num(h.min()) << ",\n"
       << indent << "  \"max\": " << num(h.max()) << ",\n"
       << indent << "  \"p50\": " << num(h.percentile(0.50)) << ",\n"
       << indent << "  \"p95\": " << num(h.percentile(0.95)) << ",\n"
       << indent << "  \"p99\": " << num(h.percentile(0.99)) << "\n"
       << indent << "}";
}

} // namespace

void
writeReportJson(std::ostream& os, const RunResult& r)
{
    const ObsData* obs = r.obs.get();

    os << "{\n";
    os << "  \"config\": \"" << esc(r.configName) << "\",\n";
    os << "  \"device\": \"" << esc(r.deviceName) << "\",\n";
    os << "  \"outcome\": \"" << runOutcomeName(r.outcome) << "\",\n";
    os << "  \"completed\": " << (r.completed ? "true" : "false")
       << ",\n";
    os << "  \"cycles\": " << num(r.cycles) << ",\n";
    os << "  \"ms\": " << num(r.ms) << ",\n";
    os << "  \"sm_utilization\": " << num(r.smUtilization) << ",\n";
    os << "  \"sim_events\": " << uint(r.simEvents) << ",\n";
    os << "  \"polls\": " << uint(r.polls) << ",\n";
    os << "  \"retreats\": " << uint(r.retreats) << ",\n";
    os << "  \"refills\": " << uint(r.refills) << ",\n";

    os << "  \"host\": {\"launches\": " << uint(r.host.launches)
       << ", \"memcpys\": " << uint(r.host.memcpys)
       << ", \"memcpy_bytes\": " << num(r.host.memcpyBytes)
       << ", \"busy_cycles\": " << num(r.host.busyCycles) << "},\n";

    os << "  \"device_stats\": {\"kernel_launches\": "
       << uint(r.device.kernelLaunches)
       << ", \"blocks_dispatched\": "
       << uint(r.device.blocksDispatched)
       << ", \"peak_resident_blocks\": " << r.device.peakResidentBlocks
       << ", \"sms_failed\": " << r.device.smsFailed
       << ", \"sms_degraded\": " << r.device.smsDegraded << "},\n";

    os << "  \"faults\": {\"task_faults\": " << uint(r.faults.taskFaults)
       << ", \"tasks_retried\": " << uint(r.faults.tasksRetried)
       << ", \"dead_lettered\": " << uint(r.faults.deadLettered)
       << ", \"dropped_pushes\": " << uint(r.faults.droppedPushes)
       << ", \"corrupted_pushes\": " << uint(r.faults.corruptedPushes)
       << ", \"backpressure_waits\": "
       << uint(r.faults.backpressureWaits)
       << ", \"watchdog_fired\": "
       << (r.faults.watchdogFired ? "true" : "false") << "},\n";

    if (r.serving) {
        const ServingRunStats& sv = *r.serving;
        os << "  \"serving\": {\n"
           << "    \"epochs\": " << uint(sv.epochs)
           << ", \"epoch_cycles\": " << num(sv.epochCycles)
           << ",\n    \"offered\": " << uint(sv.offered)
           << ", \"admitted\": " << uint(sv.admitted)
           << ", \"shed\": " << uint(sv.shed)
           << ", \"completed\": " << uint(sv.completed)
           << ", \"outstanding\": " << uint(sv.outstanding)
           << ",\n    \"throughput_per_mcycle\": "
           << num(sv.throughputPerMCycle) << ",\n";
        // Deadline keys appear only when a tenant configured one, so
        // no-deadline reports stay byte-identical to earlier builds.
        bool anyDeadline = false;
        for (const TenantServeStats& t : sv.tenants)
            anyDeadline = anyDeadline || t.deadlineCycles > 0.0;
        if (anyDeadline) {
            os << "    \"deadline_misses\": "
               << uint(sv.deadlineMisses)
               << ", \"deadline_hit_rate\": "
               << num(sv.deadlineHitRate) << ",\n";
        }
        os << "    \"tenants\": [\n";
        for (std::size_t i = 0; i < sv.tenants.size(); ++i) {
            const TenantServeStats& t = sv.tenants[i];
            os << "      {\"name\": \"" << esc(t.name)
               << "\", \"offered\": " << uint(t.offered)
               << ", \"admitted\": " << uint(t.admitted)
               << ", \"shed\": " << uint(t.shed)
               << ", \"completed\": " << uint(t.completed)
               << ", \"outstanding\": " << uint(t.outstanding)
               << ",\n       \"p50_cycles\": " << num(t.p50Cycles)
               << ", \"p99_cycles\": " << num(t.p99Cycles)
               << ", \"mean_cycles\": " << num(t.meanCycles)
               << ", \"max_cycles\": " << num(t.maxCycles)
               << ",\n       \"slo_p50_cycles\": "
               << num(t.sloP50Cycles)
               << ", \"slo_p99_cycles\": " << num(t.sloP99Cycles)
               << ", \"slo_p50_ok\": " << (t.sloP50Ok ? "true" : "false")
               << ", \"slo_p99_ok\": " << (t.sloP99Ok ? "true" : "false")
               << ", \"deadline_misses\": " << uint(t.deadlineMisses);
            if (t.deadlineCycles > 0.0) {
                os << ",\n       \"deadline_cycles\": "
                   << num(t.deadlineCycles)
                   << ", \"deadline_hit_rate\": "
                   << num(t.deadlineHitRate);
            }
            os << "}" << (i + 1 < sv.tenants.size() ? "," : "")
               << "\n";
        }
        os << "    ],\n    \"epoch_log\": [\n";
        for (std::size_t i = 0; i < sv.epochLog.size(); ++i) {
            const ServeEpochStats& e = sv.epochLog[i];
            os << "      {\"at\": " << num(e.at)
               << ", \"arrivals\": " << uint(e.arrivals)
               << ", \"admitted\": " << uint(e.admitted)
               << ", \"shed\": " << uint(e.shed)
               << ", \"completed\": " << uint(e.completed)
               << ", \"queue_traffic\": " << uint(e.queueTraffic)
               << "}" << (i + 1 < sv.epochLog.size() ? "," : "")
               << "\n";
        }
        os << "    ]\n  },\n";
    }

    os << "  \"stages\": [\n";
    for (std::size_t i = 0; i < r.stages.size(); ++i) {
        const StageRunStats& s = r.stages[i];
        os << "    {\"name\": \"" << esc(s.name)
           << "\", \"items\": " << uint(s.items)
           << ", \"batches\": " << uint(s.batches)
           << ", \"warp_insts\": " << num(s.warpInsts)
           << ", \"exec_cycles\": " << num(s.execCycles)
           << ", \"retried\": " << uint(s.retried)
           << ", \"dead_lettered\": " << uint(s.deadLettered)
           << ",\n     \"queue\": {\"pushes\": " << uint(s.queue.pushes)
           << ", \"pops\": " << uint(s.queue.pops)
           << ", \"max_depth\": " << uint(s.queue.maxDepth)
           << ", \"op_cycles\": " << num(s.queue.opCycles)
           << ", \"contention_cycles\": "
           << num(s.queue.contentionCycles) << "}";
        if (obs && i < obs->stageBatchCycles.size()) {
            os << ",\n     \"batch_latency_cycles\": ";
            writeHistogram(os, obs->stageBatchCycles[i], "     ");
        }
        os << "}" << (i + 1 < r.stages.size() ? "," : "") << "\n";
    }
    os << "  ]";

    if (obs) {
        os << ",\n  \"trace\": {\"enabled\": "
           << (obs->tracer.enabled() ? "true" : "false")
           << ", \"recorded\": " << uint(obs->tracer.recorded())
           << ", \"dropped\": " << uint(obs->tracer.dropped());
        if (obs->tracer.dropped() > 0) {
            // The ring overwrites oldest-first, so a non-zero drop
            // count means the *early* history is gone. Say so loudly:
            // a truncated trace silently skews any analysis that
            // assumes it starts at cycle 0.
            os << ", \"warning\": \"trace ring overflowed: the "
               << uint(obs->tracer.dropped())
               << " oldest events were overwritten and the exported "
                  "trace is missing its earliest history; increase "
                  "ObsConfig::traceCapacity\"";
        }
        os << "},\n";

        if (obs->provenance) {
            const ProvenanceTracker& pv = *obs->provenance;
            os << "  \"provenance\": {\n"
               << "    \"seeds_seen\": " << uint(pv.seedsSeen())
               << ", \"seeds_tracked\": " << uint(pv.seedsTracked())
               << ", \"sample_every\": " << uint(pv.sampleEvery())
               << ",\n    \"items_tracked\": "
               << uint(pv.records().size())
               << ", \"completed\": "
               << uint(pv.countByFate(ItemFate::Completed))
               << ", \"dead_lettered\": "
               << uint(pv.countByFate(ItemFate::DeadLettered))
               << ", \"dropped\": "
               << uint(pv.countByFate(ItemFate::Dropped))
               << ", \"open\": "
               << uint(pv.countByFate(ItemFate::Open))
               << ",\n    \"transfer_cycles\": "
               << num(pv.transferCyclesTotal())
               << ", \"decomposition_error\": "
               << num(pv.maxInvariantError()) << ",\n";

            os << "    \"stage_decomposition\": [\n";
            auto decomp = pv.stageDecomposition();
            for (std::size_t i = 0; i < decomp.size(); ++i) {
                const StageDecomposition& d = decomp[i];
                os << "      {\"stage\": \"" << esc(d.name)
                   << "\", \"waits\": " << uint(d.waits)
                   << ", \"wait_cycles\": " << num(d.waitCycles)
                   << ", \"services\": " << uint(d.services)
                   << ", \"service_cycles\": " << num(d.serviceCycles)
                   << "}" << (i + 1 < decomp.size() ? "," : "")
                   << "\n";
            }
            os << "    ],\n";

            auto path = pv.criticalPath();
            double pathCycles = 0.0;
            for (const PathSegment& seg : path)
                pathCycles += seg.cycles;
            os << "    \"critical_path\": {\"cycles\": "
               << num(pathCycles) << ", \"segments\": [\n";
            for (std::size_t i = 0; i < path.size(); ++i) {
                const PathSegment& seg = path[i];
                os << "      {\"label\": \"" << esc(seg.label)
                   << "\", \"t0\": " << num(seg.t0)
                   << ", \"t1\": " << num(seg.t1)
                   << ", \"cycles\": " << num(seg.cycles) << "}"
                   << (i + 1 < path.size() ? "," : "") << "\n";
            }
            os << "    ], \"ranked\": [\n";
            auto ranked = pv.rankedCriticalSegments();
            for (std::size_t i = 0; i < ranked.size(); ++i) {
                os << "      {\"label\": \"" << esc(ranked[i].first)
                   << "\", \"cycles\": " << num(ranked[i].second)
                   << "}" << (i + 1 < ranked.size() ? "," : "")
                   << "\n";
            }
            os << "    ]}\n  },\n";
        }

        os << "  \"metrics\": {\n    \"counters\": {";
        bool first = true;
        for (const auto& [name, c] : obs->metrics.counters()) {
            os << (first ? "" : ", ") << "\"" << esc(name)
               << "\": " << uint(c.value());
            first = false;
        }
        os << "},\n    \"gauges\": {";
        first = true;
        for (const auto& [name, g] : obs->metrics.gauges()) {
            os << (first ? "" : ", ") << "\"" << esc(name)
               << "\": " << num(g.value());
            first = false;
        }
        os << "},\n    \"histograms\": {";
        first = true;
        for (const auto& [name, h] : obs->metrics.histograms()) {
            os << (first ? "" : ", ") << "\"" << esc(name) << "\": ";
            writeHistogram(os, h, "    ");
            first = false;
        }
        os << "}\n  },\n";

        os << "  \"series\": [\n";
        const auto& series = obs->sampler.series();
        for (std::size_t i = 0; i < series.size(); ++i) {
            const TimeSeries& ts = series[i];
            os << "    {\"name\": \"" << esc(ts.name) << "\", \"t\": [";
            for (std::size_t k = 0; k < ts.t.size(); ++k)
                os << (k ? ", " : "") << num(ts.t[k]);
            os << "], \"v\": [";
            for (std::size_t k = 0; k < ts.v.size(); ++k)
                os << (k ? ", " : "") << num(ts.v[k]);
            os << "]}" << (i + 1 < series.size() ? "," : "") << "\n";
        }
        os << "  ]";
    }

    if (!r.failureReason.empty())
        os << ",\n  \"failure_reason\": \"" << esc(r.failureReason)
           << "\"";
    os << "\n}\n";
}

void
writeTimeSeriesCsv(std::ostream& os, const ObsData& obs)
{
    const auto& series = obs.sampler.series();
    os << "t";
    for (const TimeSeries& s : series)
        os << "," << s.name;
    os << "\n";
    std::size_t rows = 0;
    for (const TimeSeries& s : series)
        rows = std::max(rows, s.t.size());
    for (std::size_t k = 0; k < rows; ++k) {
        // All series share the sampler clock; take t from the first
        // series long enough to cover row k.
        for (const TimeSeries& s : series)
            if (k < s.t.size()) {
                os << num(s.t[k]);
                break;
            }
        for (const TimeSeries& s : series) {
            os << ",";
            if (k < s.v.size())
                os << num(s.v[k]);
        }
        os << "\n";
    }
}

} // namespace vp

/**
 * @file
 * Run report exporter: serializes a finished RunResult — end-of-run
 * scalars, per-stage accounting with batch-latency percentiles,
 * fault/recovery counters, and the sampled time-series — to JSON,
 * plus a CSV form of the time-series for spreadsheet/plot tooling.
 */

#ifndef VP_OBS_REPORT_HH
#define VP_OBS_REPORT_HH

#include <iosfwd>

namespace vp {

struct RunResult;
struct ObsData;

/**
 * Write @p r as a self-contained JSON report. When the run carried
 * an ObsData bundle (r.obs), per-stage latency histograms
 * (count/mean/stddev/min/max/p50/p95/p99), registry metrics, trace
 * summary, and sampled time-series are included inline.
 */
void writeReportJson(std::ostream& os, const RunResult& r);

/**
 * Write the sampled time-series of @p obs as CSV: one `t` column of
 * simulated cycles, one column per series. Series are sampled on a
 * shared clock, so the time columns coincide.
 */
void writeTimeSeriesCsv(std::ostream& os, const ObsData& obs);

} // namespace vp

#endif // VP_OBS_REPORT_HH

/**
 * @file
 * Static per-kernel resource descriptors and per-task dynamic costs.
 */

#ifndef VP_GPU_RESOURCES_HH
#define VP_GPU_RESOURCES_HH

#include <algorithm>

namespace vp {

/**
 * Static hardware footprint of one kernel (or of one pipeline stage,
 * before stages are merged into kernels by an execution model).
 */
struct ResourceUsage
{
    /** Registers allocated per thread. */
    int regsPerThread = 32;
    /** Static shared memory per block, bytes. */
    int smemPerBlock = 0;
    /** Instruction footprint of the kernel body, bytes. */
    int codeBytes = 4096;

    /**
     * Footprint of a kernel that merges this code with @p other, as
     * RTC and Megakernel do: register and shared-memory demand is the
     * maximum (one allocation serves whichever branch runs), code size
     * is the sum (all stage bodies are materialized in one kernel).
     */
    ResourceUsage
    mergedWith(const ResourceUsage& other) const
    {
        ResourceUsage r;
        r.regsPerThread = std::max(regsPerThread, other.regsPerThread);
        r.smemPerBlock = std::max(smemPerBlock, other.smemPerBlock);
        r.codeBytes = codeBytes + other.codeBytes;
        return r;
    }
};

/**
 * Dynamic cost of processing one data item in one stage, expressed in
 * per-thread instruction counts. The runtime aggregates these into
 * warp-level work for the SM processor-sharing model.
 */
struct TaskCost
{
    /** Dynamic non-memory instructions per participating thread. */
    double computeInsts = 0.0;
    /** Dynamic memory instructions per participating thread. */
    double memInsts = 0.0;
    /** Probability that a memory access hits in the L1 cache. */
    double l1HitRate = 0.5;
    /**
     * Instructions of an inherently serial portion executed by a
     * single lane while the rest of the block waits (e.g., the
     * prefix-scan step of histogram equalization).
     */
    double serialInsts = 0.0;

    /** Element-wise sum; used when one block runs a batch of items. */
    TaskCost&
    operator+=(const TaskCost& o)
    {
        double insts = computeInsts + memInsts;
        double oinsts = o.computeInsts + o.memInsts;
        double total = insts + oinsts;
        if (total > 0.0) {
            l1HitRate = (l1HitRate * insts + o.l1HitRate * oinsts)
                / total;
        }
        computeInsts += o.computeInsts;
        memInsts += o.memInsts;
        serialInsts += o.serialInsts;
        return *this;
    }
};

} // namespace vp

#endif // VP_GPU_RESOURCES_HH

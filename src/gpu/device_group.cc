#include "gpu/device_group.hh"

#include <map>
#include <sstream>

#include "common/error.hh"
#include "gpu/block.hh"

namespace vp {

std::string
DeviceGroupConfig::describe() const
{
    // Collapse runs of identical device names: "2xgtx1080" rather
    // than "gtx1080+gtx1080".
    std::map<std::string, int> counts;
    std::vector<std::string> order;
    for (const DeviceConfig& d : devices) {
        if (counts.find(d.name) == counts.end())
            order.push_back(d.name);
        ++counts[d.name];
    }
    std::ostringstream os;
    bool first = true;
    for (const std::string& n : order) {
        if (!first)
            os << "+";
        first = false;
        if (counts[n] > 1)
            os << counts[n] << "x";
        os << n;
    }
    os << " (" << interconnect.describe() << ")";
    return os.str();
}

void
DeviceGroupConfig::validate() const
{
    VP_CHECK(!devices.empty(), ErrorCode::Config,
             "device group has no devices");
    interconnect.validate();
}

DeviceGroup::DeviceGroup(Simulator& sim, const DeviceGroupConfig& cfg)
    : cfg_(cfg),
      interconnect_(sim, cfg.interconnect,
                    static_cast<int>(cfg.devices.size()))
{
    cfg_.validate();
    for (const DeviceConfig& dc : cfg_.devices) {
        smTrackBase_.push_back(totalSms_);
        devices_.push_back(std::make_unique<Device>(sim, dc));
        hosts_.push_back(
            std::make_unique<Host>(sim, *devices_.back()));
        totalSms_ += dc.numSms;
    }
}

DeviceGroup::DeviceGroup(const std::vector<Simulator*>& sims,
                         const DeviceGroupConfig& cfg)
    : cfg_(cfg),
      interconnect_(*sims.at(0), cfg.interconnect,
                    static_cast<int>(cfg.devices.size()))
{
    cfg_.validate();
    VP_REQUIRE(sims.size() == cfg_.devices.size(),
               "device group needs one simulator per device");
    for (std::size_t i = 0; i < cfg_.devices.size(); ++i) {
        const DeviceConfig& dc = cfg_.devices[i];
        smTrackBase_.push_back(totalSms_);
        devices_.push_back(std::make_unique<Device>(*sims[i], dc));
        hosts_.push_back(
            std::make_unique<Host>(*sims[i], *devices_.back()));
        totalSms_ += dc.numSms;
    }
}

} // namespace vp

/**
 * @file
 * CUDA-stream analogue: kernels launched into one stream execute in
 * order; kernels in different streams may run concurrently.
 */

#ifndef VP_GPU_STREAM_HH
#define VP_GPU_STREAM_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

namespace vp {

class Kernel;

/** An in-order kernel queue. Created and owned by the Device. */
class Stream
{
  public:
    explicit Stream(int id) : id_(id) {}

    Stream(const Stream&) = delete;
    Stream& operator=(const Stream&) = delete;

    /** Device-assigned stream id. */
    int id() const { return id_; }

    /** True when no kernel is running or queued on this stream. */
    bool
    idle() const
    {
        return !running_ && pending_.empty();
    }

  private:
    friend class Device;

    int id_;
    std::deque<std::shared_ptr<Kernel>> pending_;
    std::shared_ptr<Kernel> running_;
    std::vector<std::function<void()>> idleCallbacks_;
};

} // namespace vp

#endif // VP_GPU_STREAM_HH

#include "gpu/device.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "gpu/block.hh"
#include "sim/fault.hh"

namespace vp {

Device::Device(Simulator& sim, DeviceConfig cfg)
    : sim_(sim), cfg_(std::move(cfg))
{
    VP_REQUIRE(cfg_.numSms > 0, "device needs at least one SM");
    for (int i = 0; i < cfg_.numSms; ++i)
        sms_.push_back(std::make_unique<Sm>(sim_, cfg_, i));
    streams_.push_back(std::make_unique<Stream>(0));
}

Sm&
Device::sm(int i)
{
    VP_ASSERT(i >= 0 && i < numSms(), "SM index " << i << " out of range");
    return *sms_[i];
}

void
Device::setTracer(Tracer* t)
{
    tracer_ = t;
    for (auto& s : sms_)
        s->setTracer(t);
}

void
Device::setTraceTrackBase(int smBase, int streamBase)
{
    smTrackBase_ = smBase;
    streamTrackBase_ = streamBase;
    for (std::size_t i = 0; i < sms_.size(); ++i)
        sms_[i]->setTraceTrack(smBase + static_cast<int>(i));
}

void
Device::traceResidency(int smId)
{
    if (tracer_)
        tracer_->counter(TraceKind::ResidentBlocks,
                         static_cast<std::int16_t>(smTrackBase_
                                                   + smId),
                         sim_.now(),
                         sms_[static_cast<std::size_t>(smId)]
                             ->residentBlocks());
}

Stream*
Device::createStream()
{
    streams_.push_back(
        std::make_unique<Stream>(static_cast<int>(streams_.size())));
    return streams_.back().get();
}

void
Device::launch(Stream* stream, std::shared_ptr<Kernel> kernel)
{
    VP_REQUIRE(stream, "null stream");
    VP_REQUIRE(kernel, "null kernel");
    if (tracer_)
        tracer_->instant(TraceKind::KernelLaunch, 0, sim_.now(),
                         tracer_->intern(kernel->name()),
                         kernel->gridBlocks());
    if (injector_) {
        Tick d = injector_->launchDelay();
        if (d > 0.0) {
            ++stats_.launchDelays;
            if (tracer_)
                tracer_->instant(TraceKind::LaunchDelay, 0,
                                 sim_.now(),
                                 tracer_->intern(kernel->name()),
                                 static_cast<std::int32_t>(d));
            VP_DEBUG("device: launch of `" << kernel->name()
                     << "` delayed " << d << " cycles (fault)");
            sim_.after(d,
                       [this, stream, k = std::move(kernel)]() mutable {
                           doLaunch(stream, std::move(k));
                       });
            return;
        }
    }
    doLaunch(stream, std::move(kernel));
}

void
Device::doLaunch(Stream* stream, std::shared_ptr<Kernel> kernel)
{
    kernel->id_ = nextKernelId_++;
    kernelStream_.push_back(stream);
    VP_ASSERT(static_cast<int>(kernelStream_.size()) == nextKernelId_,
              "kernel id bookkeeping out of sync");
    ++stats_.kernelLaunches;
    stream->pending_.push_back(std::move(kernel));
    streamAdvance(stream);
}

void
Device::streamAdvance(Stream* stream)
{
    if (stream->running_ || stream->pending_.empty())
        return;
    stream->running_ = stream->pending_.front();
    stream->pending_.pop_front();
    active_.push_back(stream->running_);
    VP_DEBUG("device: kernel `" << stream->running_->name()
             << "` starts on stream " << stream->id());
    if (tracer_)
        tracer_->begin(TraceKind::KernelSpan,
                       static_cast<std::int16_t>(streamTrackBase_
                                                 + stream->id()),
                       sim_.now(),
                       tracer_->intern(stream->running_->name()));
    scheduleDispatch();
}

void
Device::scheduleDispatch()
{
    if (dispatchScheduled_)
        return;
    dispatchScheduled_ = true;
    sim_.after(0.0, [this] {
        dispatchScheduled_ = false;
        tryDispatch();
    });
}

void
Device::tryDispatch()
{
    bool progress = true;
    while (progress) {
        progress = false;
        for (int i = 0; i < numSms(); ++i) {
            int sm_idx = (rrSm_ + i) % numSms();
            for (auto& k : active_) {
                if (k->blocksDispatched_ >= k->gridBlocks_)
                    continue;
                if (!k->allowedOn(sm_idx))
                    continue;
                Sm& target = *sms_[sm_idx];
                if (!target.canFit(k->resources(), k->threadsPerBlock()))
                    continue;
                // Place one block of kernel k on this SM.
                target.occupy(k->resources(), k->threadsPerBlock(),
                              k->id());
                traceResidency(sm_idx);
                int idx = k->blocksDispatched_++;
                ++stats_.blocksDispatched;
                stats_.peakResidentBlocks =
                    std::max(stats_.peakResidentBlocks,
                             residentBlocks());
                auto ctx = std::make_unique<BlockContext>(
                    *this, *k, sm_idx, idx);
                BlockContext* raw = ctx.get();
                blocks_.push_back(std::move(ctx));
                Kernel* kp = k.get();
                // The start event is remembered on the context so an
                // SM failure can cancel a block that never began.
                raw->pendingEvent_ =
                    sim_.after(cfg_.blockStartCycles, [kp, raw] {
                        kp->logic_(*raw);
                    });
                progress = true;
                break;
            }
        }
        rrSm_ = (rrSm_ + 1) % numSms();
    }
}

void
Device::blockExited(BlockContext& ctx)
{
    Kernel& k = ctx.kernel();
    sms_[ctx.smId()]->release(k.resources(), k.threadsPerBlock(),
                              k.id());
    traceResidency(ctx.smId());
    ++k.blocksExited_;
    if (k.completed()) {
        // Find the shared_ptr owner in active_.
        auto it = std::find_if(active_.begin(), active_.end(),
                               [&](const std::shared_ptr<Kernel>& p) {
                                   return p.get() == &k;
                               });
        VP_ASSERT(it != active_.end(), "completed kernel not active");
        kernelCompleted(*it);
    } else {
        scheduleDispatch();
    }
}

void
Device::kernelCompleted(const std::shared_ptr<Kernel>& kernel)
{
    VP_DEBUG("device: kernel `" << kernel->name() << "` completed");
    std::shared_ptr<Kernel> k = kernel; // keep alive past erase
    if (tracer_)
        tracer_->end(TraceKind::KernelSpan,
                     static_cast<std::int16_t>(
                         streamTrackBase_
                         + kernelStream_[k->id()]->id()),
                     sim_.now(), tracer_->intern(k->name()));
    active_.erase(std::remove(active_.begin(), active_.end(), k),
                  active_.end());

    // Free this kernel's block contexts once the stack unwinds.
    sim_.after(0.0, [this, k] {
        blocks_.erase(
            std::remove_if(blocks_.begin(), blocks_.end(),
                           [&](const std::unique_ptr<BlockContext>& b) {
                               return &b->kernel() == k.get();
                           }),
            blocks_.end());
    });

    Stream* stream = kernelStream_[k->id()];
    VP_ASSERT(stream->running_ == k, "stream/kernel mismatch");
    stream->running_.reset();

    for (auto& fn : k->onComplete_)
        sim_.after(0.0, fn);

    streamAdvance(stream);

    if (stream->idle()) {
        auto cbs = std::move(stream->idleCallbacks_);
        stream->idleCallbacks_.clear();
        for (auto& fn : cbs)
            sim_.after(0.0, fn);
    }
    if (idle()) {
        auto cbs = std::move(deviceIdleCallbacks_);
        deviceIdleCallbacks_.clear();
        for (auto& fn : cbs)
            sim_.after(0.0, fn);
    }
    scheduleDispatch();
}

void
Device::failSm(int smId)
{
    Sm& failed = sm(smId);
    VP_CHECK(!failed.offline(), ErrorCode::SmFailure,
             "SM " << smId << " failed twice");
    failed.setOffline();
    ++stats_.smsFailed;
    VP_DEBUG("device: SM " << smId << " failed");
    if (tracer_)
        tracer_->instant(TraceKind::SmFail,
                         static_cast<std::int16_t>(smTrackBase_
                                                   + smId),
                         sim_.now());

    // Evict every resident block. kernelCompleted() only mutates
    // blocks_ via deferred events, so iterating by index is safe.
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        BlockContext* ctx = blocks_[i].get();
        if (ctx->smId() != smId || ctx->exited())
            continue;
        Kernel& k = ctx->kernel();
        ctx->abortForFault();
        if (blockAbortHook_)
            blockAbortHook_(*ctx);
        failed.release(k.resources(), k.threadsPerBlock(), k.id());
        traceResidency(smId);
        ++k.blocksExited_;
        ++stats_.blocksEvicted;
        if (k.completed()) {
            auto it = std::find_if(
                active_.begin(), active_.end(),
                [&](const std::shared_ptr<Kernel>& p) {
                    return p.get() == &k;
                });
            VP_ASSERT(it != active_.end(),
                      "evicted kernel not active");
            kernelCompleted(*it);
        }
    }

    retireStrandedKernels();

    if (smFailedHook_)
        smFailedHook_(smId);

    // Still-placeable kernels re-dispatch their remaining blocks
    // onto the survivors.
    scheduleDispatch();
}

void
Device::failDevice()
{
    bool any = false;
    for (int s = 0; s < numSms(); ++s) {
        if (sms_[static_cast<std::size_t>(s)]->offline())
            continue;
        any = true;
        sms_[static_cast<std::size_t>(s)]->setOffline();
        ++stats_.smsFailed;
        if (tracer_)
            tracer_->instant(TraceKind::SmFail,
                             static_cast<std::int16_t>(smTrackBase_
                                                       + s),
                             sim_.now());
    }
    if (!any)
        return;
    VP_DEBUG("device: all SMs failed (device kill)");

    // Evict every resident block on every SM. kernelCompleted()
    // only mutates blocks_ via deferred events, so iterating by
    // index is safe.
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        BlockContext* ctx = blocks_[i].get();
        if (ctx->exited())
            continue;
        Kernel& k = ctx->kernel();
        int smId = ctx->smId();
        ctx->abortForFault();
        if (blockAbortHook_)
            blockAbortHook_(*ctx);
        sm(smId).release(k.resources(), k.threadsPerBlock(), k.id());
        traceResidency(smId);
        ++k.blocksExited_;
        ++stats_.blocksEvicted;
        if (k.completed()) {
            auto it = std::find_if(
                active_.begin(), active_.end(),
                [&](const std::shared_ptr<Kernel>& p) {
                    return p.get() == &k;
                });
            VP_ASSERT(it != active_.end(),
                      "evicted kernel not active");
            kernelCompleted(*it);
        }
    }

    retireStrandedKernels();
    scheduleDispatch();
}

void
Device::retireStrandedKernels()
{
    // Snapshot: kernelCompleted() mutates active_.
    std::vector<std::shared_ptr<Kernel>> snapshot = active_;
    for (const std::shared_ptr<Kernel>& k : snapshot) {
        if (k->completed()
            || k->blocksDispatched_ >= k->gridBlocks_)
            continue;
        bool placeable = false;
        for (int s = 0; s < numSms() && !placeable; ++s)
            placeable = k->allowedOn(s) && !sms_[s]->offline();
        if (placeable)
            continue;
        VP_DEBUG("device: kernel `" << k->name()
                 << "` stranded (all allowed SMs offline)");
        // Undispatched blocks can never run; count them exited so
        // the kernel completes and its stream advances. Evicted
        // blocks were already counted by failSm().
        k->blocksExited_ +=
            k->gridBlocks_ - k->blocksDispatched_;
        k->blocksDispatched_ = k->gridBlocks_;
        VP_ASSERT(k->completed(), "stranded kernel not completed");
        kernelCompleted(k);
    }
}

void
Device::degradeSm(int smId, double factor)
{
    VP_CHECK(factor > 0.0 && factor <= 1.0, ErrorCode::Config,
             "degrade factor " << factor << " for SM " << smId
                               << " outside (0, 1]");
    Sm& s = sm(smId);
    VP_CHECK(!s.offline(), ErrorCode::SmFailure,
             "cannot degrade offline SM " << smId);
    s.setThrottle(factor);
    ++stats_.smsDegraded;
    VP_DEBUG("device: SM " << smId << " degraded to " << factor
             << "x throughput");
    if (tracer_)
        tracer_->instant(
            TraceKind::SmDegrade,
            static_cast<std::int16_t>(smTrackBase_ + smId),
            sim_.now(), 0,
            static_cast<std::int32_t>(factor * 100.0));
}

int
Device::numOnlineSms() const
{
    int n = 0;
    for (const auto& s : sms_)
        if (!s->offline())
            ++n;
    return n;
}

void
Device::whenStreamIdle(Stream* stream, std::function<void()> fn)
{
    if (stream->idle()) {
        sim_.after(0.0, std::move(fn));
        return;
    }
    stream->idleCallbacks_.push_back(std::move(fn));
}

void
Device::whenDeviceIdle(std::function<void()> fn)
{
    if (idle()) {
        sim_.after(0.0, std::move(fn));
        return;
    }
    deviceIdleCallbacks_.push_back(std::move(fn));
}

bool
Device::idle() const
{
    for (const auto& s : streams_)
        if (!s->idle())
            return false;
    return true;
}

int
Device::residentBlocks() const
{
    int total = 0;
    for (const auto& s : sms_)
        total += s->residentBlocks();
    return total;
}

} // namespace vp

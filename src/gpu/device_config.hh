/**
 * @file
 * Device configuration: the architectural and cost-model parameters of
 * one simulated GPU. Presets mirror the two devices used in the paper
 * (Tesla K20c and GeForce GTX 1080).
 */

#ifndef VP_GPU_DEVICE_CONFIG_HH
#define VP_GPU_DEVICE_CONFIG_HH

#include <string>

#include "sim/simulator.hh"

namespace vp {

/**
 * All parameters of a simulated device.
 *
 * Architectural limits (SM count, register file, shared memory, thread
 * and block caps) follow the published specifications of the real
 * parts. Cost-model parameters (latencies, issue width, overheads) are
 * calibrated so the occupancy and overhead phenomena reported in the
 * paper emerge from the model; see DESIGN.md section 4.
 */
struct DeviceConfig
{
    std::string name = "generic";

    /** @name Architectural limits @{ */
    int numSms = 13;
    double clockGhz = 0.706;
    int warpSize = 32;
    int maxThreadsPerSm = 2048;
    int maxBlocksPerSm = 16;
    int regsPerSm = 65536;
    int smemPerSm = 49152;
    /** @} */

    /** @name SM throughput model @{ */
    /** Warp instructions issued per cycle per SM. */
    double issueWidth = 4.0;
    /** DRAM transactions (128 B) per cycle per SM at peak. */
    double memIssuePerCycle = 0.18;
    /** Memory-level parallelism: outstanding misses hidden per warp. */
    double mlp = 4.0;
    /** @} */

    /** @name Memory hierarchy @{ */
    double l1LatencyCycles = 28.0;
    double l2LatencyCycles = 190.0;
    double memLatencyCycles = 440.0;
    /** Fraction of L1 misses that hit in L2. */
    double l2HitRate = 0.55;
    /** Per-SM instruction cache working-set size in bytes. */
    int icacheBytes = 32768;
    /** Issue-rate divisor applied when resident code exceeds icache. */
    double icachePenalty = 1.35;
    /** L1 hit-rate bonus when producer stage co-resides on the SM. */
    double localityBonus = 0.15;
    /** @} */

    /** @name Host interaction overheads @{ */
    /** Host-side cost of one kernel launch (microseconds). */
    double kernelLaunchUs = 6.0;
    /** Device-side start latency of a dispatched block (cycles). */
    double blockStartCycles = 50.0;
    /** CPU-side pipeline control cost per host iteration (us). */
    double hostControlUs = 3.0;
    /** Fixed latency of one cudaMemcpy call (us). */
    double memcpyLatencyUs = 8.0;
    /** PCIe bandwidth in GB/s for memcpy payloads. */
    double memcpyGBs = 6.0;
    /** Device-side sub-kernel launch cost for dynamic parallelism. */
    double dpLaunchCycles = 17000.0;
    /** @} */

    /** @name Work-queue cost model @{ */
    /** Fixed cycles for one queue push or pop (atomics + pointers). */
    double queueOpCycles = 90.0;
    /** Extra cycles per byte moved through a queue item. */
    double queueByteCycles = 0.45;
    /** Extra cycles per concurrent accessor contending on a queue. */
    double queueContentionCycles = 14.0;
    /** Cycles a persistent block sleeps between empty-queue polls. */
    double pollIntervalCycles = 150.0;
    /** @} */

    /** Convert a duration in microseconds to device cycles. */
    Tick
    usToCycles(double us) const
    {
        return us * clockGhz * 1e3;
    }

    /** Convert device cycles to milliseconds of wall time. */
    double
    cyclesToMs(Tick cycles) const
    {
        return cycles / (clockGhz * 1e6);
    }

    /** Cycles to move @p bytes across PCIe, including call latency. */
    Tick
    memcpyCycles(double bytes) const
    {
        double us = memcpyLatencyUs + bytes / (memcpyGBs * 1e3);
        return usToCycles(us);
    }

    /** Preset mirroring the Tesla K20c (13 SMs, Kepler GK110). */
    static DeviceConfig k20c();

    /** Preset mirroring the GeForce GTX 1080 (20 SMs, Pascal GP104). */
    static DeviceConfig gtx1080();

    /** Look up a preset by name ("k20c" or "gtx1080"). */
    static DeviceConfig byName(const std::string& name);
};

} // namespace vp

#endif // VP_GPU_DEVICE_CONFIG_HH

/**
 * @file
 * Analytic SM throughput model.
 *
 * The SM executes resident work under processor sharing. Each piece of
 * work (one block executing one batch of tasks) is summarized as a
 * WorkSpec; the model converts per-thread task costs into warp-level
 * work and computes per-warp sustainable issue rates from memory
 * latency, cache behaviour and memory-level parallelism. The SM
 * (sm.cc) then splits its issue bandwidth across resident work
 * proportionally to demand.
 */

#ifndef VP_GPU_COST_MODEL_HH
#define VP_GPU_COST_MODEL_HH

#include "gpu/device_config.hh"
#include "gpu/resources.hh"

namespace vp {

/** Warp-level summary of one block-batch execution. */
struct WorkSpec
{
    /** Total warp instructions to retire. */
    double warpInsts = 0.0;
    /** Fraction of warp instructions that access memory. */
    double memRatio = 0.0;
    /**
     * Effective concurrent warps. Serial task portions reduce this
     * below the block's physical warp count (see makeWorkSpec).
     */
    double warps = 1.0;
    /** L1 hit probability of the memory instructions. */
    double l1Hit = 0.5;
};

/**
 * Build a WorkSpec for one block executing a batch of tasks.
 *
 * @param cfg device parameters
 * @param cost summed per-thread task cost of the batch
 * @param threadsPerTask threads cooperating on each task
 * @param tasksInBatch number of tasks executed concurrently
 * @param maxTaskInsts largest single-task instruction count in the
 *        batch (per thread); bounds the critical path so that a batch
 *        with imbalanced items takes at least as long as its largest
 *        item (lanes that finish early idle)
 */
WorkSpec makeWorkSpec(const DeviceConfig& cfg, const TaskCost& cost,
                      int threadsPerTask, int tasksInBatch,
                      double maxTaskInsts);

/**
 * Average memory latency seen by a warp of this work, after L1/L2 and
 * divided by the per-warp memory-level parallelism.
 */
double effectiveMemLatency(const DeviceConfig& cfg, double l1Hit);

/**
 * Sustainable issue rate of one warp of this work in isolation,
 * in warp-instructions per cycle (<= 1).
 */
double perWarpRate(const DeviceConfig& cfg, const WorkSpec& w);

} // namespace vp

#endif // VP_GPU_COST_MODEL_HH

#include "gpu/host.hh"

#include <algorithm>

namespace vp {

Host::Host(Simulator& sim, Device& dev)
    : sim_(sim), dev_(dev)
{
}

Tick
Host::occupy(Tick cycles)
{
    Tick start = std::max(freeAt_, sim_.now());
    freeAt_ = start + cycles;
    stats_.busyCycles += cycles;
    return freeAt_;
}

void
Host::launchAsync(Stream* stream, std::shared_ptr<Kernel> kernel)
{
    ++stats_.launches;
    Tick ready = occupy(dev_.config().usToCycles(
        dev_.config().kernelLaunchUs));
    sim_.at(ready, [this, stream, kernel = std::move(kernel)]() mutable {
        dev_.launch(stream, std::move(kernel));
    });
}

void
Host::memcpy(double bytes, std::function<void()> done)
{
    ++stats_.memcpys;
    stats_.memcpyBytes += bytes;
    Tick ready = occupy(dev_.config().memcpyCycles(bytes));
    sim_.at(ready, std::move(done));
}

void
Host::control(double us, std::function<void()> done)
{
    Tick ready = occupy(dev_.config().usToCycles(us));
    sim_.at(ready, std::move(done));
}

void
Host::synchronize(Stream* stream, std::function<void()> fn)
{
    // Register only once the host timeline reaches this call, so the
    // wait observes launches issued earlier in program order.
    Tick ready = std::max(freeAt_, sim_.now());
    sim_.at(ready, [this, stream, fn = std::move(fn)]() mutable {
        dev_.whenStreamIdle(stream, [this, fn = std::move(fn)]() mutable {
            Tick t = std::max(freeAt_, sim_.now());
            sim_.at(t, std::move(fn));
        });
    });
}

void
Host::deviceSynchronize(std::function<void()> fn)
{
    Tick ready = std::max(freeAt_, sim_.now());
    sim_.at(ready, [this, fn = std::move(fn)]() mutable {
        dev_.whenDeviceIdle([this, fn = std::move(fn)]() mutable {
            Tick t = std::max(freeAt_, sim_.now());
            sim_.at(t, std::move(fn));
        });
    });
}

} // namespace vp

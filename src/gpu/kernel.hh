/**
 * @file
 * Kernel launch descriptor: grid shape, resource usage, the per-block
 * program, and optional SM placement restrictions (the SM-centric
 * binding used by the coarse/fine pipeline models).
 */

#ifndef VP_GPU_KERNEL_HH
#define VP_GPU_KERNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "gpu/resources.hh"

namespace vp {

class BlockContext;

/**
 * The program each block of a kernel runs. It is invoked once when
 * the block becomes resident; the block then drives itself through
 * BlockContext::exec/delay continuations and ends with exit().
 */
using BlockLogic = std::function<void(BlockContext&)>;

/** One kernel launch. */
class Kernel
{
  public:
    /**
     * @param name kernel name for logs and stats
     * @param res static resource usage
     * @param threadsPerBlock block size
     * @param gridBlocks number of blocks in the grid
     * @param logic per-block program
     */
    Kernel(std::string name, ResourceUsage res, int threadsPerBlock,
           int gridBlocks, BlockLogic logic);

    const std::string& name() const { return name_; }
    const ResourceUsage& resources() const { return res_; }
    int threadsPerBlock() const { return threadsPerBlock_; }
    int gridBlocks() const { return gridBlocks_; }

    /**
     * Restrict block placement to the given SMs (SM-centric binding).
     * An empty vector means any SM.
     */
    void setAllowedSms(std::vector<int> sms);

    /** True when blocks of this kernel may be placed on SM @p smId. */
    bool allowedOn(int smId) const;

    /** Register a callback to fire when all blocks have exited. */
    void notifyOnComplete(std::function<void()> fn);

    /** Device-assigned id, unique per device. */
    int id() const { return id_; }

    /** True once every block of the grid has exited. */
    bool completed() const { return blocksExited_ == gridBlocks_; }

    /** Blocks dispatched onto SMs so far. */
    int blocksDispatched() const { return blocksDispatched_; }

    /** Blocks that have exited so far. */
    int blocksExited() const { return blocksExited_; }

  private:
    friend class Device;

    std::string name_;
    ResourceUsage res_;
    int threadsPerBlock_;
    int gridBlocks_;
    BlockLogic logic_;
    std::vector<bool> allowedSms_; // empty = all allowed
    std::vector<std::function<void()>> onComplete_;

    int id_ = -1;
    int blocksDispatched_ = 0;
    int blocksExited_ = 0;
};

} // namespace vp

#endif // VP_GPU_KERNEL_HH

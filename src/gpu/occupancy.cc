#include "gpu/occupancy.hh"

#include <algorithm>

#include "common/error.hh"

namespace vp {

OccupancyResult
maxBlocksPerSm(const DeviceConfig& cfg, const ResourceUsage& res,
               int threadsPerBlock)
{
    VP_REQUIRE(threadsPerBlock > 0,
               "threadsPerBlock must be positive, got " << threadsPerBlock);
    VP_REQUIRE(res.regsPerThread >= 0 && res.smemPerBlock >= 0,
               "negative resource usage");

    OccupancyResult out;

    int by_blocks = cfg.maxBlocksPerSm;
    int by_threads = cfg.maxThreadsPerSm / threadsPerBlock;
    int by_regs = res.regsPerThread > 0
        ? cfg.regsPerSm / (res.regsPerThread * threadsPerBlock)
        : by_blocks;
    int by_smem = res.smemPerBlock > 0
        ? cfg.smemPerSm / res.smemPerBlock
        : by_blocks;

    out.blocksPerSm = std::min({by_blocks, by_threads, by_regs, by_smem});
    if (out.blocksPerSm < 0)
        out.blocksPerSm = 0;

    if (out.blocksPerSm == by_regs && by_regs < by_blocks)
        out.limiter = OccupancyLimiter::Registers;
    else if (out.blocksPerSm == by_smem && by_smem < by_blocks)
        out.limiter = OccupancyLimiter::SharedMem;
    else if (out.blocksPerSm == by_threads && by_threads < by_blocks)
        out.limiter = OccupancyLimiter::Threads;
    else
        out.limiter = OccupancyLimiter::Blocks;

    out.occupancy = static_cast<double>(out.blocksPerSm)
        * threadsPerBlock / cfg.maxThreadsPerSm;
    return out;
}

const char*
limiterName(OccupancyLimiter l)
{
    switch (l) {
      case OccupancyLimiter::Blocks: return "blocks";
      case OccupancyLimiter::Threads: return "threads";
      case OccupancyLimiter::Registers: return "registers";
      case OccupancyLimiter::SharedMem: return "shared-mem";
    }
    return "?";
}

} // namespace vp

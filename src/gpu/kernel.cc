#include "gpu/kernel.hh"

#include "common/error.hh"

namespace vp {

Kernel::Kernel(std::string name, ResourceUsage res, int threadsPerBlock,
               int gridBlocks, BlockLogic logic)
    : name_(std::move(name)), res_(res),
      threadsPerBlock_(threadsPerBlock), gridBlocks_(gridBlocks),
      logic_(std::move(logic))
{
    VP_REQUIRE(threadsPerBlock_ > 0, "kernel `" << name_
               << "`: threadsPerBlock must be positive");
    VP_REQUIRE(gridBlocks_ > 0, "kernel `" << name_
               << "`: gridBlocks must be positive");
    VP_REQUIRE(logic_, "kernel `" << name_ << "`: missing block logic");
}

void
Kernel::setAllowedSms(std::vector<int> sms)
{
    if (sms.empty()) {
        allowedSms_.clear();
        return;
    }
    int max_id = 0;
    for (int s : sms)
        max_id = std::max(max_id, s);
    allowedSms_.assign(max_id + 1, false);
    for (int s : sms) {
        VP_REQUIRE(s >= 0, "negative SM id " << s);
        allowedSms_[s] = true;
    }
}

bool
Kernel::allowedOn(int smId) const
{
    if (allowedSms_.empty())
        return true;
    return smId >= 0
        && smId < static_cast<int>(allowedSms_.size())
        && allowedSms_[smId];
}

void
Kernel::notifyOnComplete(std::function<void()> fn)
{
    onComplete_.push_back(std::move(fn));
}

} // namespace vp

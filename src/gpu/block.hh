/**
 * @file
 * Per-block execution context handed to a kernel's BlockLogic.
 *
 * A block drives itself in continuation-passing style: exec() submits
 * work to the SM's processor-sharing engine, delay() models fixed-cost
 * actions (queue operations, polling), and exit() retires the block
 * and frees its SM resources. All continuations are trampolined
 * through the simulator's event loop, so there is no recursion-depth
 * concern.
 */

#ifndef VP_GPU_BLOCK_HH
#define VP_GPU_BLOCK_HH

#include "gpu/cost_model.hh"
#include "sim/simulator.hh"

namespace vp {

class Device;
class Kernel;
class Sm;

/** Runtime state of one resident block. */
class BlockContext
{
  public:
    BlockContext(Device& dev, Kernel& kernel, int smId, int blockIdx);

    BlockContext(const BlockContext&) = delete;
    BlockContext& operator=(const BlockContext&) = delete;

    /** The SM this block is resident on. */
    int smId() const { return smId_; }

    /** Index of this block within its kernel's grid. */
    int blockIdx() const { return blockIdx_; }

    /** The kernel this block belongs to. */
    Kernel& kernel() { return kernel_; }

    /** The device this block runs on. */
    Device& device() { return dev_; }

    /** The simulator clock. */
    Simulator& sim();

    /** The SM object this block is resident on. */
    Sm& sm();

    /**
     * Execute @p work on the SM under processor sharing, then invoke
     * @p cb. The block may not have another exec/delay outstanding.
     */
    void exec(const WorkSpec& work, EventFn cb);

    /** Busy-occupy the block for @p cycles, then invoke @p cb. */
    void delay(Tick cycles, EventFn cb);

    /** Retire the block, freeing its SM resources. */
    void exit();

    /** True once exit() has been called. */
    bool exited() const { return exited_; }

    /** True when the block was torn down by an SM failure. */
    bool aborted() const { return aborted_; }

  private:
    friend class Device;

    /** Finish the outstanding operation and run its continuation. */
    void complete();

    /**
     * Tear the block down after an SM failure: cancel the pending
     * start/delay event, drop the continuation, and mark the block
     * exited without the exit() invariants (the SM engine has
     * already dropped any in-flight exec). Called by Device only.
     */
    void abortForFault();

    Device& dev_;
    Kernel& kernel_;
    int smId_;
    int blockIdx_;
    /**
     * Continuation of the single outstanding exec/delay. Keeping it
     * here (instead of capturing it into the scheduled event) keeps
     * the per-event closure down to one pointer, which always fits
     * EventFn's inline buffer.
     */
    EventFn cont_;
    /** Pending kernel-start or delay() event, for fault abort. */
    EventHandle pendingEvent_;
    bool busy_ = false;
    bool exited_ = false;
    bool aborted_ = false;
};

} // namespace vp

#endif // VP_GPU_BLOCK_HH

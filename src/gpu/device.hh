/**
 * @file
 * The simulated GPU: SM array, hardware block dispatcher, streams, and
 * device-level statistics.
 */

#ifndef VP_GPU_DEVICE_HH
#define VP_GPU_DEVICE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "gpu/device_config.hh"
#include "gpu/kernel.hh"
#include "gpu/sm.hh"
#include "gpu/stream.hh"
#include "sim/simulator.hh"

namespace vp {

class BlockContext;
class FaultInjector;

/** Device-level counters for a run. */
struct DeviceStats
{
    std::uint64_t kernelLaunches = 0;
    std::uint64_t blocksDispatched = 0;
    /** Peak number of simultaneously resident blocks device-wide. */
    int peakResidentBlocks = 0;
    /** SMs taken offline by fault injection. */
    int smsFailed = 0;
    /** SMs with degraded throughput from fault injection. */
    int smsDegraded = 0;
    /** Resident blocks evicted by SM failures. */
    int blocksEvicted = 0;
    /** Kernel launches delayed by fault injection. */
    std::uint64_t launchDelays = 0;
};

/**
 * A simulated GPU.
 *
 * The hardware block dispatcher places pending blocks of running
 * kernels onto SMs round-robin whenever resources free up, respecting
 * per-kernel SM placement restrictions. Kernels in one stream run in
 * order; different streams run concurrently.
 */
class Device
{
  public:
    Device(Simulator& sim, DeviceConfig cfg);

    Device(const Device&) = delete;
    Device& operator=(const Device&) = delete;

    /** The architecture/cost parameters of this device. */
    const DeviceConfig& config() const { return cfg_; }

    /** The driving simulator. */
    Simulator& sim() { return sim_; }

    /** Number of SMs. */
    int numSms() const { return static_cast<int>(sms_.size()); }

    /** SM by index. */
    Sm& sm(int i);

    /** Create a new stream. */
    Stream* createStream();

    /** The default (id 0) stream. */
    Stream* defaultStream() { return streams_.front().get(); }

    /**
     * Enqueue a kernel on a stream (device side; host-side launch
     * overhead is modeled by Host).
     */
    void launch(Stream* stream, std::shared_ptr<Kernel> kernel);

    /** Invoke @p fn once @p stream has fully drained. */
    void whenStreamIdle(Stream* stream, std::function<void()> fn);

    /** Invoke @p fn once every stream has fully drained. */
    void whenDeviceIdle(std::function<void()> fn);

    /** True when no kernel is running or queued anywhere. */
    bool idle() const;

    /** Number of blocks currently resident across all SMs. */
    int residentBlocks() const;

    /** @name Fault injection & degradation @{ */

    /**
     * Attach the run's fault injector (launch-delay decisions).
     * Null detaches; the device never owns the injector.
     */
    void setFaultInjector(FaultInjector* injector)
    {
        injector_ = injector;
    }

    /**
     * Hook fired for every resident block evicted by an SM failure,
     * before its resources are released. The runtime uses it to
     * recover the block's in-flight work items.
     */
    void setBlockAbortHook(std::function<void(BlockContext&)> fn)
    {
        blockAbortHook_ = std::move(fn);
    }

    /** Hook fired after an SM failure has been fully processed. */
    void setSmFailedHook(std::function<void(int)> fn)
    {
        smFailedHook_ = std::move(fn);
    }

    /**
     * Attach the run tracer to the device and all SMs (null
     * detaches; never owned). Records kernel launches/spans, block
     * residency counters and SM fail/degrade instants.
     */
    void setTracer(Tracer* t);

    /**
     * Offset the trace tracks this device (and its SMs/streams)
     * records on, so the devices of a group render on disjoint
     * timeline rows. Call after setTracer.
     */
    void setTraceTrackBase(int smBase, int streamBase);

    /**
     * Kill an SM mid-run: refuse new blocks, drop its in-flight
     * executions, evict its resident blocks (firing the abort hook
     * per block), and force-complete kernels whose entire allowed SM
     * set is now offline so their streams do not wedge. Remaining
     * grid blocks of still-placeable kernels re-dispatch onto
     * surviving SMs.
     */
    void failSm(int smId);

    /**
     * Kill the whole device: every SM goes offline before any block
     * is evicted, so the abort hooks observe an already-dead device
     * and nothing (not even the SM-failed relaunch hook, which is
     * deliberately not fired) can re-place work here. Resident
     * blocks are evicted with the abort hook per block, stranded
     * kernels are force-completed, and later stream launches strand
     * harmlessly. Idempotent: a dead device stays dead.
     */
    void failDevice();

    /** Degrade an SM's throughput to @p factor of nominal. */
    void degradeSm(int smId, double factor);

    /** Number of SMs still accepting work. */
    int numOnlineSms() const;

    /** @} */

    /** Run counters. */
    const DeviceStats& stats() const { return stats_; }

  private:
    friend class BlockContext;

    /** Start the next kernel of a stream if the stream is free. */
    void streamAdvance(Stream* stream);

    /** Device-side enqueue after any injected launch delay. */
    void doLaunch(Stream* stream, std::shared_ptr<Kernel> kernel);

    /** Place as many pending blocks on SMs as will fit. */
    void tryDispatch();

    /** Schedule a dispatch pass (coalesced). */
    void scheduleDispatch();

    /** Force-complete active kernels with undispatched blocks whose
     *  allowed SMs are all offline, so their streams do not hang. */
    void retireStrandedKernels();

    /** Called by BlockContext::exit(). */
    void blockExited(BlockContext& ctx);

    /** Fire kernel completion, advance its stream. */
    void kernelCompleted(const std::shared_ptr<Kernel>& kernel);

    Simulator& sim_;
    DeviceConfig cfg_;
    std::vector<std::unique_ptr<Sm>> sms_;
    std::vector<std::unique_ptr<Stream>> streams_;

    /** Kernels started (stream head) with blocks left to dispatch. */
    std::vector<std::shared_ptr<Kernel>> active_;
    /** Stream owning each active kernel, by kernel id. */
    std::vector<Stream*> kernelStream_;
    /** Live block contexts, freed on kernel completion. */
    std::vector<std::unique_ptr<BlockContext>> blocks_;

    std::vector<std::function<void()>> deviceIdleCallbacks_;

    FaultInjector* injector_ = nullptr;
    std::function<void(BlockContext&)> blockAbortHook_;
    std::function<void(int)> smFailedHook_;
    Tracer* tracer_ = nullptr;
    /** Added to SM-track / stream-track trace ids (device groups). */
    int smTrackBase_ = 0;
    int streamTrackBase_ = 0;

    /** Record a ResidentBlocks counter sample for SM @p smId. */
    void traceResidency(int smId);

    int nextKernelId_ = 0;
    int rrSm_ = 0;
    bool dispatchScheduled_ = false;
    DeviceStats stats_;
};

} // namespace vp

#endif // VP_GPU_DEVICE_HH

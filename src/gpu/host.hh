/**
 * @file
 * Host (CPU-side) cost model.
 *
 * The host is a single sequential thread: kernel launches, memcpys and
 * pipeline-control work each occupy it for their modeled duration, so
 * bursts of launches serialize — the source of the launch overhead
 * that dominates kernel-by-kernel pipelines in the paper.
 */

#ifndef VP_GPU_HOST_HH
#define VP_GPU_HOST_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "gpu/device.hh"
#include "sim/simulator.hh"

namespace vp {

/** Host-side counters for a run. */
struct HostStats
{
    std::uint64_t launches = 0;
    std::uint64_t memcpys = 0;
    double memcpyBytes = 0.0;
    /** Total cycles the host spent on launches/copies/control. */
    double busyCycles = 0.0;
};

/** The sequential host thread. */
class Host
{
  public:
    Host(Simulator& sim, Device& dev);

    /**
     * Launch @p kernel on @p stream: charges host launch overhead,
     * then enqueues device-side. Returns immediately (async).
     */
    void launchAsync(Stream* stream, std::shared_ptr<Kernel> kernel);

    /**
     * Copy @p bytes between host and device, then run @p done. The
     * host blocks for the duration (cudaMemcpy semantics).
     */
    void memcpy(double bytes, std::function<void()> done);

    /** Occupy the host with @p us of control work, then run @p done. */
    void control(double us, std::function<void()> done);

    /** Run @p fn once the host is free and @p stream has drained. */
    void synchronize(Stream* stream, std::function<void()> fn);

    /** Run @p fn once the host is free and the device has drained. */
    void deviceSynchronize(std::function<void()> fn);

    /** Run counters. */
    const HostStats& stats() const { return stats_; }

  private:
    /** Advance the host-free horizon by @p cycles; return new horizon. */
    Tick occupy(Tick cycles);

    Simulator& sim_;
    Device& dev_;
    Tick freeAt_ = 0.0;
    HostStats stats_;
};

} // namespace vp

#endif // VP_GPU_HOST_HH

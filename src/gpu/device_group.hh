/**
 * @file
 * DeviceGroup: N simulated devices sharing one simulator and one
 * interconnect, the substrate of multi-device (sharded) pipeline
 * execution.
 *
 * Each member device keeps its own Host ("one CPU thread per GPU"),
 * so launches and memcpys of different devices overlap, while the
 * group shares the simulator clock and the interconnect links. Trace
 * tracks are kept disjoint by offsetting every device's SM/stream
 * tracks by the cumulative SM/stream count of its predecessors.
 */

#ifndef VP_GPU_DEVICE_GROUP_HH
#define VP_GPU_DEVICE_GROUP_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/device.hh"
#include "gpu/device_config.hh"
#include "gpu/host.hh"
#include "sim/interconnect.hh"

namespace vp {

/** The devices of a group and the interconnect between them. */
struct DeviceGroupConfig
{
    /** Member device configurations (index = device id). */
    std::vector<DeviceConfig> devices;
    /** Link topology and cost parameters. */
    InterconnectConfig interconnect;
    /**
     * Host threads driving a sharded run. 1 (the default) keeps the
     * serial group loop: every device on one shared simulator. >1
     * selects the host-parallel loop — one simulator per device,
     * each driven by its own thread, synchronized in conservative
     * lookahead windows (see docs/MODEL.md). Excluded from
     * describe(): it changes wall-clock speed, not the simulation.
     */
    int hostThreads = 1;

    /** @p n identical devices of configuration @p cfg. */
    static DeviceGroupConfig
    homogeneous(DeviceConfig cfg, int n)
    {
        DeviceGroupConfig g;
        for (int i = 0; i < n; ++i)
            g.devices.push_back(cfg);
        return g;
    }

    /** Number of member devices. */
    int size() const { return static_cast<int>(devices.size()); }

    /** "2xgtx1080 (peer 20B/cy lat700)"-style synopsis. */
    std::string describe() const;

    /** Fatal when empty or a member/interconnect config is invalid. */
    void validate() const;
};

/**
 * N live simulated devices on one simulator, each with its own host
 * thread, joined by an interconnect.
 */
class DeviceGroup
{
  public:
    DeviceGroup(Simulator& sim, const DeviceGroupConfig& cfg);

    /**
     * Host-parallel variant: device i (and its host) live on
     * *sims[i] so each device's event loop can run on its own host
     * thread. The interconnect is built on *sims[0] but the parallel
     * coordinator never lets it schedule events there (transfers go
     * through route() + explicit mailbox delivery).
     */
    DeviceGroup(const std::vector<Simulator*>& sims,
                const DeviceGroupConfig& cfg);

    DeviceGroup(const DeviceGroup&) = delete;
    DeviceGroup& operator=(const DeviceGroup&) = delete;

    /** Number of member devices. */
    int size() const { return static_cast<int>(devices_.size()); }

    /** Member device @p i. */
    Device& device(int i) { return *devices_[static_cast<std::size_t>(i)]; }

    /** Host thread of device @p i. */
    Host& host(int i) { return *hosts_[static_cast<std::size_t>(i)]; }

    /** The interconnect between the members. */
    Interconnect& interconnect() { return interconnect_; }

    /** SMs across all member devices. */
    int totalSms() const { return totalSms_; }

    /** First global trace track of device @p i's SMs. */
    int
    smTrackBase(int i) const
    {
        return smTrackBase_[static_cast<std::size_t>(i)];
    }

    /** The group configuration. */
    const DeviceGroupConfig& config() const { return cfg_; }

  private:
    DeviceGroupConfig cfg_;
    std::vector<std::unique_ptr<Device>> devices_;
    std::vector<std::unique_ptr<Host>> hosts_;
    std::vector<int> smTrackBase_;
    int totalSms_ = 0;
    Interconnect interconnect_;
};

} // namespace vp

#endif // VP_GPU_DEVICE_GROUP_HH

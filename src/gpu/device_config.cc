#include "gpu/device_config.hh"

#include "common/error.hh"

namespace vp {

DeviceConfig
DeviceConfig::k20c()
{
    DeviceConfig c;
    c.name = "k20c";
    c.numSms = 13;
    c.clockGhz = 0.706;
    c.maxThreadsPerSm = 2048;
    c.maxBlocksPerSm = 16;
    c.regsPerSm = 65536;
    c.smemPerSm = 49152;
    c.issueWidth = 4.0;
    // 208 GB/s over 13 SMs at 0.706 GHz, 128-byte transactions.
    c.memIssuePerCycle = 208.0 / 13.0 / 0.706 / 128.0;
    c.l2HitRate = 0.50;
    c.icacheBytes = 32768;
    return c;
}

DeviceConfig
DeviceConfig::gtx1080()
{
    DeviceConfig c;
    c.name = "gtx1080";
    c.numSms = 20;
    c.clockGhz = 1.607;
    c.maxThreadsPerSm = 2048;
    c.maxBlocksPerSm = 32;
    c.regsPerSm = 65536;
    c.smemPerSm = 98304;
    c.issueWidth = 4.0;
    // 320 GB/s over 20 SMs at 1.607 GHz, 128-byte transactions.
    c.memIssuePerCycle = 320.0 / 20.0 / 1.607 / 128.0;
    // Pascal: better caching and latency hiding.
    c.l2HitRate = 0.65;
    c.l1LatencyCycles = 24.0;
    c.l2LatencyCycles = 170.0;
    c.memLatencyCycles = 400.0;
    c.mlp = 6.0;
    c.icacheBytes = 49152;
    return c;
}

DeviceConfig
DeviceConfig::byName(const std::string& name)
{
    if (name == "k20c")
        return k20c();
    if (name == "gtx1080")
        return gtx1080();
    VP_FATAL("unknown device preset `" << name
             << "` (expected k20c or gtx1080)");
}

} // namespace vp

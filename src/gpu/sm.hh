/**
 * @file
 * One streaming multiprocessor: residency accounting plus a
 * processor-sharing execution engine.
 *
 * Resident block-batches ("executions") share the SM's issue bandwidth
 * proportionally to their demand (warps x per-warp sustainable rate),
 * subject to the SM issue width, the DRAM bandwidth share, and an
 * instruction-cache penalty when the resident code footprint exceeds
 * the i-cache. Rates are recomputed whenever residency changes, so
 * latency hiding (more resident warps -> higher utilization) and
 * interference fall out of the model naturally.
 */

#ifndef VP_GPU_SM_HH
#define VP_GPU_SM_HH

#include <cstdint>
#include <map>
#include <vector>

#include "gpu/cost_model.hh"
#include "gpu/device_config.hh"
#include "gpu/resources.hh"
#include "obs/trace.hh"
#include "sim/simulator.hh"

namespace vp {

/** Aggregate statistics of one SM over a run. */
struct SmStats
{
    /** Integral of "some execution resident" over time (cycles). */
    double activeCycles = 0.0;
    /** Integral of issue-slot utilization over time (slot-cycles). */
    double issueCycles = 0.0;
    /** Total warp instructions retired. */
    double instsRetired = 0.0;
    /** Completed block-batch executions. */
    std::uint64_t execsCompleted = 0;
};

/** A streaming multiprocessor. */
class Sm
{
  public:
    using ExecId = std::uint64_t;

    Sm(Simulator& sim, const DeviceConfig& cfg, int id);

    Sm(const Sm&) = delete;
    Sm& operator=(const Sm&) = delete;

    /** Index of this SM on its device. */
    int id() const { return id_; }

    /** @name Residency accounting @{ */

    /** True when a block of the given shape can become resident. */
    bool canFit(const ResourceUsage& res, int threadsPerBlock) const;

    /** Make one block of kernel @p kernelId resident. */
    void occupy(const ResourceUsage& res, int threadsPerBlock,
                int kernelId);

    /** Remove one resident block of kernel @p kernelId. */
    void release(const ResourceUsage& res, int threadsPerBlock,
                 int kernelId);

    /** Number of blocks currently resident. */
    int residentBlocks() const { return blocks_; }

    /** Number of resident blocks belonging to kernel @p kernelId. */
    int residentBlocksOf(int kernelId) const;

    /** True when any block of @p kernelId is resident. */
    bool hasResident(int kernelId) const;

    /** Currently used registers. */
    int usedRegs() const { return regs_; }

    /** Currently used threads. */
    int usedThreads() const { return threads_; }

    /** @} */

    /** @name Execution @{ */

    /**
     * Start executing @p work under processor sharing; @p onDone fires
     * when the work retires. @p kernelId attributes the work to a
     * resident kernel so the instruction-cache pressure model can
     * count only actively executing code.
     */
    ExecId beginWork(const WorkSpec& work, int kernelId,
                     EventFn onDone);

    /** Number of in-flight executions. */
    std::size_t activeExecs() const { return execs_.size(); }

    /** @} */

    /** @name Fault modeling @{ */

    /**
     * Take the SM offline: canFit() refuses new blocks and all
     * in-flight executions are dropped without firing their
     * completion callbacks (the device evicts the owning blocks).
     * @return the number of executions aborted.
     */
    int setOffline();

    /** True once setOffline() has been called. */
    bool offline() const { return offline_; }

    /**
     * Degrade issue/memory throughput to @p factor of nominal
     * (0 < factor <= 1). Progress already made is retained; rates
     * recompute from now on.
     */
    void setThrottle(double factor);

    /** Current throughput multiplier (1.0 = healthy). */
    double throttle() const { return throttle_; }

    /**
     * Current total issue rate (warp insts/cycle) across resident
     * executions; exposed for tests of the sharing model.
     */
    double currentTotalRate() const;

    /** @} */

    /** Run statistics. */
    const SmStats& stats() const { return stats_; }

    /** Attach the run tracer (null detaches; never owned). Completed
     *  executions record ExecSpan complete events on this SM's track. */
    void setTracer(Tracer* t) { tracer_ = t; }

    /** Override the trace track this SM records on (defaults to the
     *  SM id; device groups offset it to keep tracks disjoint). */
    void setTraceTrack(int track) { traceTrack_ = track; }

  private:
    struct Exec
    {
        WorkSpec work;
        double remaining;
        double rate = 0.0;
        /** Demand (warps x per-warp rate); fixed per execution. */
        double demand = 0.0;
        /** Fraction of issued demand that reaches DRAM; fixed. */
        double dramFrac = 0.0;
        /** Start time (trace span anchor). */
        Tick start = 0.0;
        ExecId id = 0;
        int kernelId = -1;
        EventFn onDone;
    };

    /** Retire elapsed progress since the last update. */
    void advance();

    /** Recompute rates and reschedule the next completion event. */
    void reschedule();

    /** Issue-rate divisor from resident code footprint. */
    double icacheFactor() const;

    Simulator& sim_;
    const DeviceConfig& cfg_;
    int id_;

    int blocks_ = 0;
    int threads_ = 0;
    int regs_ = 0;
    int smem_ = 0;

    /** kernelId -> (resident block count, code bytes). */
    std::map<int, std::pair<int, int>> kernels_;

    /** In-flight executions, in start order (stable; determinism). */
    std::vector<Exec> execs_;
    /** Scratch for completion collection; reused to avoid allocs. */
    std::vector<EventFn> doneScratch_;
    /** Scratch for icacheFactor's kernel dedup; reused. */
    mutable std::vector<int> icacheScratch_;
    ExecId nextExecId_ = 1;
    Tick lastUpdate_ = 0.0;
    EventHandle completion_;
    bool offline_ = false;
    double throttle_ = 1.0;
    Tracer* tracer_ = nullptr;
    /** Trace track; -1 falls back to the SM id. */
    int traceTrack_ = -1;

    SmStats stats_;
};

} // namespace vp

#endif // VP_GPU_SM_HH

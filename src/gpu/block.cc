#include "gpu/block.hh"

#include "common/error.hh"
#include "gpu/device.hh"

namespace vp {

BlockContext::BlockContext(Device& dev, Kernel& kernel, int smId,
                           int blockIdx)
    : dev_(dev), kernel_(kernel), smId_(smId), blockIdx_(blockIdx)
{
}

Simulator&
BlockContext::sim()
{
    return dev_.sim();
}

Sm&
BlockContext::sm()
{
    return dev_.sm(smId_);
}

void
BlockContext::complete()
{
    busy_ = false;
    EventFn cb = std::move(cont_);
    cb();
}

void
BlockContext::exec(const WorkSpec& work, EventFn cb)
{
    VP_ASSERT(!exited_, "exec() on an exited block");
    VP_ASSERT(!busy_, "block already has an operation outstanding");
    busy_ = true;
    cont_ = std::move(cb);
    sm().beginWork(work, kernel_.id(), [this] { complete(); });
}

void
BlockContext::delay(Tick cycles, EventFn cb)
{
    VP_ASSERT(!exited_, "delay() on an exited block");
    VP_ASSERT(!busy_, "block already has an operation outstanding");
    busy_ = true;
    cont_ = std::move(cb);
    pendingEvent_ = sim().after(cycles, [this] { complete(); });
}

void
BlockContext::abortForFault()
{
    VP_ASSERT(!exited_, "abort of an exited block");
    // Whatever the block was waiting on — its start event, a delay,
    // or an SM execution the engine already dropped — must never fire
    // into this context again.
    sim().cancel(pendingEvent_);
    pendingEvent_ = EventHandle();
    cont_.reset();
    busy_ = false;
    aborted_ = true;
    exited_ = true;
}

void
BlockContext::exit()
{
    VP_ASSERT(!exited_, "double exit of block");
    VP_ASSERT(!busy_, "exit() with an operation outstanding");
    exited_ = true;
    dev_.blockExited(*this);
}

} // namespace vp

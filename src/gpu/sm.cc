#include "gpu/sm.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hh"

namespace vp {

namespace {
constexpr double kEps = 1e-6;
} // namespace

Sm::Sm(Simulator& sim, const DeviceConfig& cfg, int id)
    : sim_(sim), cfg_(cfg), id_(id)
{
}

bool
Sm::canFit(const ResourceUsage& res, int threadsPerBlock) const
{
    if (offline_)
        return false;
    if (blocks_ + 1 > cfg_.maxBlocksPerSm)
        return false;
    if (threads_ + threadsPerBlock > cfg_.maxThreadsPerSm)
        return false;
    if (regs_ + res.regsPerThread * threadsPerBlock > cfg_.regsPerSm)
        return false;
    if (smem_ + res.smemPerBlock > cfg_.smemPerSm)
        return false;
    return true;
}

void
Sm::occupy(const ResourceUsage& res, int threadsPerBlock, int kernelId)
{
    VP_ASSERT(canFit(res, threadsPerBlock),
              "occupy() without canFit() on SM " << id_);
    blocks_ += 1;
    threads_ += threadsPerBlock;
    regs_ += res.regsPerThread * threadsPerBlock;
    smem_ += res.smemPerBlock;
    auto& entry = kernels_[kernelId];
    entry.first += 1;
    entry.second = res.codeBytes;
    // Residency affects the i-cache factor of running executions.
    advance();
    reschedule();
}

void
Sm::release(const ResourceUsage& res, int threadsPerBlock, int kernelId)
{
    auto it = kernels_.find(kernelId);
    VP_ASSERT(it != kernels_.end() && it->second.first > 0,
              "release of non-resident kernel " << kernelId
              << " on SM " << id_);
    blocks_ -= 1;
    threads_ -= threadsPerBlock;
    regs_ -= res.regsPerThread * threadsPerBlock;
    smem_ -= res.smemPerBlock;
    VP_ASSERT(blocks_ >= 0 && threads_ >= 0 && regs_ >= 0 && smem_ >= 0,
              "negative residency on SM " << id_);
    it->second.first -= 1;
    if (it->second.first == 0)
        kernels_.erase(it);
    advance();
    reschedule();
}

int
Sm::residentBlocksOf(int kernelId) const
{
    auto it = kernels_.find(kernelId);
    return it == kernels_.end() ? 0 : it->second.first;
}

bool
Sm::hasResident(int kernelId) const
{
    return residentBlocksOf(kernelId) > 0;
}

double
Sm::icacheFactor() const
{
    // Only code that is actively issuing competes for the i-cache;
    // resident blocks that are merely polling do not thrash it.
    int code = 0;
    icacheScratch_.clear();
    for (const Exec& e : execs_) {
        if (e.kernelId < 0)
            continue;
        if (std::find(icacheScratch_.begin(), icacheScratch_.end(),
                      e.kernelId)
            != icacheScratch_.end())
            continue;
        icacheScratch_.push_back(e.kernelId);
        auto it = kernels_.find(e.kernelId);
        if (it != kernels_.end())
            code += it->second.second;
    }
    return code > cfg_.icacheBytes ? cfg_.icachePenalty : 1.0;
}

int
Sm::setOffline()
{
    VP_ASSERT(!offline_, "double setOffline on SM " << id_);
    advance();
    offline_ = true;
    sim_.cancel(completion_);
    completion_ = EventHandle();
    int aborted = static_cast<int>(execs_.size());
    // Drop in-flight executions without firing their completion
    // callbacks: the device evicts the owning blocks and the runtime
    // recovers their in-flight work items.
    execs_.clear();
    return aborted;
}

void
Sm::setThrottle(double factor)
{
    VP_ASSERT(factor > 0.0 && factor <= 1.0,
              "throttle factor " << factor << " outside (0, 1] on SM "
                                 << id_);
    advance();
    throttle_ = factor;
    reschedule();
}

Sm::ExecId
Sm::beginWork(const WorkSpec& work, int kernelId, EventFn onDone)
{
    VP_ASSERT(work.warps > 0.0, "work with no warps");
    VP_ASSERT(!offline_, "beginWork on offline SM " << id_);
    advance();
    Exec e;
    e.work = work;
    e.remaining = std::max(work.warpInsts, kEps);
    e.start = sim_.now();
    e.kernelId = kernelId;
    e.id = nextExecId_++;
    e.onDone = std::move(onDone);
    // Demand and the DRAM share of it depend only on the work shape;
    // computing them once here keeps reschedule() to plain sums.
    e.demand = work.warps * perWarpRate(cfg_, work);
    double miss = (1.0 - work.l1Hit) * (1.0 - cfg_.l2HitRate);
    e.dramFrac = work.memRatio * miss;
    execs_.push_back(std::move(e));
    reschedule();
    return execs_.back().id;
}

double
Sm::currentTotalRate() const
{
    double total = 0.0;
    for (const Exec& e : execs_)
        total += e.rate;
    return total;
}

void
Sm::advance()
{
    Tick now = sim_.now();
    double dt = now - lastUpdate_;
    lastUpdate_ = now;
    if (dt <= 0.0)
        return;
    if (execs_.empty())
        return;
    stats_.activeCycles += dt;
    double issued = 0.0;
    for (Exec& e : execs_) {
        double done = e.rate * dt;
        e.remaining = std::max(0.0, e.remaining - done);
        issued += done;
    }
    stats_.instsRetired += issued;
    stats_.issueCycles += issued / cfg_.issueWidth;
}

void
Sm::reschedule()
{
    sim_.cancel(completion_);
    completion_ = EventHandle();
    if (execs_.empty())
        return;

    // Demand-proportional sharing of the SM issue bandwidth.
    double demand = 0.0;
    double dram_demand = 0.0;
    for (const Exec& e : execs_) {
        demand += e.demand;
        dram_demand += e.demand * e.dramFrac;
    }

    double scale = 1.0;
    if (demand > cfg_.issueWidth)
        scale = cfg_.issueWidth / demand;
    if (dram_demand * scale > cfg_.memIssuePerCycle && dram_demand > 0.0)
        scale = std::min(scale, cfg_.memIssuePerCycle / dram_demand);
    scale /= icacheFactor();
    scale *= throttle_;

    Tick soonest = std::numeric_limits<double>::infinity();
    for (Exec& e : execs_) {
        e.rate = e.demand * scale;
        VP_ASSERT(e.rate > 0.0, "zero execution rate on SM " << id_);
        soonest = std::min(soonest, e.remaining / e.rate);
    }

    completion_ = sim_.after(std::max(soonest, 0.0), [this] {
        advance();
        // Collect all executions that retired at this instant,
        // preserving start order for deterministic callback order.
        doneScratch_.clear();
        auto keep = execs_.begin();
        for (auto it = execs_.begin(); it != execs_.end(); ++it) {
            if (it->remaining <= kEps) {
                if (tracer_)
                    tracer_->span(
                        TraceKind::ExecSpan,
                        static_cast<std::int16_t>(
                            traceTrack_ >= 0 ? traceTrack_ : id_),
                        it->start,
                        sim_.now() - it->start, it->kernelId,
                        static_cast<std::int32_t>(it->work.warps));
                doneScratch_.push_back(std::move(it->onDone));
                ++stats_.execsCompleted;
            } else {
                if (keep != it)
                    *keep = std::move(*it);
                ++keep;
            }
        }
        execs_.erase(keep, execs_.end());
        reschedule();
        for (EventFn& fn : doneScratch_)
            fn();
    });
}

} // namespace vp

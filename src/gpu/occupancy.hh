/**
 * @file
 * CUDA-style occupancy calculator: how many blocks of a kernel can be
 * resident on one SM, given the kernel's resource usage.
 */

#ifndef VP_GPU_OCCUPANCY_HH
#define VP_GPU_OCCUPANCY_HH

#include "gpu/device_config.hh"
#include "gpu/resources.hh"

namespace vp {

/** Which resource bounds the occupancy of a kernel. */
enum class OccupancyLimiter { Blocks, Threads, Registers, SharedMem };

/** Result of an occupancy query. */
struct OccupancyResult
{
    /** Maximum concurrently resident blocks per SM (0 = unlaunchable). */
    int blocksPerSm = 0;
    /** The resource that produced the bound. */
    OccupancyLimiter limiter = OccupancyLimiter::Blocks;
    /** Resident threads at that block count over the SM thread cap. */
    double occupancy = 0.0;
};

/**
 * Compute the occupancy of a kernel on a device.
 *
 * @param cfg device architecture parameters
 * @param res kernel resource usage
 * @param threadsPerBlock block size in threads
 */
OccupancyResult maxBlocksPerSm(const DeviceConfig& cfg,
                               const ResourceUsage& res,
                               int threadsPerBlock);

/** Human-readable name of a limiter value. */
const char* limiterName(OccupancyLimiter l);

} // namespace vp

#endif // VP_GPU_OCCUPANCY_HH

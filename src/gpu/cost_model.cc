#include "gpu/cost_model.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"

namespace vp {

WorkSpec
makeWorkSpec(const DeviceConfig& cfg, const TaskCost& cost,
             int threadsPerTask, int tasksInBatch, double maxTaskInsts)
{
    VP_ASSERT(threadsPerTask > 0 && tasksInBatch > 0,
              "bad batch shape: " << threadsPerTask << "x" << tasksInBatch);

    int total_threads = threadsPerTask * tasksInBatch;
    int warps = std::max(1, (total_threads + cfg.warpSize - 1)
                         / cfg.warpSize);

    // Per-thread instruction streams of all tasks in the batch execute
    // on parallel lanes; warp instruction count is the mean per-thread
    // stream (the batch sum divided by tasks) because each warp
    // executes one thread's stream per lane in lock step.
    double per_thread = (cost.computeInsts + cost.memInsts)
        / tasksInBatch;

    // Load imbalance: the batch cannot finish before its largest item.
    double critical = std::max(per_thread, maxTaskInsts);
    double parallel_insts = critical * warps;

    WorkSpec w;
    // The serial portion executes on a single lane of a single warp:
    // it contributes its instructions as extra warp instructions that
    // cannot be overlapped with thread-level parallelism.
    double serial = cost.serialInsts;
    w.warpInsts = parallel_insts + serial;
    double mem = cost.memInsts / std::max(1.0, double(tasksInBatch));
    double tot = cost.computeInsts / std::max(1.0, double(tasksInBatch))
        + mem;
    w.memRatio = tot > 0.0 ? mem / tot : 0.0;
    w.l1Hit = std::clamp(cost.l1HitRate, 0.0, 1.0);

    // Effective warp parallelism: a run with P parallel warp-insts at
    // warp count W plus S serial warp-insts at warp count 1 finishes,
    // per unit per-warp rate, in P/W + S cycles. Fold that into a
    // single equivalent warp count so the SM model stays uniform.
    if (w.warpInsts > 0.0) {
        double denom = parallel_insts / warps + serial;
        w.warps = denom > 0.0 ? w.warpInsts / denom : warps;
    } else {
        w.warps = warps;
    }
    return w;
}

double
effectiveMemLatency(const DeviceConfig& cfg, double l1Hit)
{
    double l1 = std::clamp(l1Hit, 0.0, 1.0);
    double miss_lat = cfg.l2HitRate * cfg.l2LatencyCycles
        + (1.0 - cfg.l2HitRate) * cfg.memLatencyCycles;
    double avg = l1 * cfg.l1LatencyCycles + (1.0 - l1) * miss_lat;
    return avg / std::max(1.0, cfg.mlp);
}

double
perWarpRate(const DeviceConfig& cfg, const WorkSpec& w)
{
    double stall = w.memRatio * effectiveMemLatency(cfg, w.l1Hit);
    return 1.0 / (1.0 + stall);
}

} // namespace vp

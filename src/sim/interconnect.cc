#include "sim/interconnect.hh"

#include <sstream>

#include "common/error.hh"

namespace vp {

void
InterconnectConfig::validate() const
{
    VP_CHECK(peerBandwidthBytesPerCycle > 0.0, ErrorCode::Config,
             "interconnect: peer bandwidth must be positive");
    VP_CHECK(hostBandwidthBytesPerCycle > 0.0, ErrorCode::Config,
             "interconnect: host bandwidth must be positive");
    VP_CHECK(peerLatencyCycles >= 0.0 && hostLatencyCycles >= 0.0,
             ErrorCode::Config,
             "interconnect: latencies must be non-negative");
}

std::string
InterconnectConfig::describe() const
{
    std::ostringstream os;
    if (kind == Kind::Peer) {
        os << "peer " << peerBandwidthBytesPerCycle << "B/cy lat"
           << peerLatencyCycles;
    } else {
        os << "host-staged " << hostBandwidthBytesPerCycle
           << "B/cy lat" << hostLatencyCycles;
    }
    return os.str();
}

Interconnect::Interconnect(Simulator& sim,
                           const InterconnectConfig& cfg, int devices)
    : sim_(sim), cfg_(cfg), devices_(devices)
{
    VP_REQUIRE(devices >= 1, "interconnect spans no devices");
    cfg_.validate();
    if (cfg_.kind == InterconnectConfig::Kind::Peer) {
        links_.assign(static_cast<std::size_t>(devices * devices),
                      Link(cfg_.peerBandwidthBytesPerCycle,
                           cfg_.peerLatencyCycles));
    } else {
        // Per-device PCIe uplink (device -> host) then downlink.
        links_.assign(static_cast<std::size_t>(2 * devices),
                      Link(cfg_.hostBandwidthBytesPerCycle,
                           cfg_.hostLatencyCycles));
    }
}

Link&
Interconnect::peerLink(int src, int dst)
{
    return links_[static_cast<std::size_t>(src * devices_ + dst)];
}

void
Interconnect::transfer(int src, int dst, double bytes, EventFn deliver)
{
    VP_ASSERT(src >= 0 && src < devices_ && dst >= 0
                  && dst < devices_,
              "interconnect: device index out of range");
    VP_ASSERT(src != dst, "interconnect: transfer to self");
    VP_ASSERT(bytes >= 0.0, "interconnect: negative transfer size");

    Tick now = sim_.now();
    Tick arrival;
    if (cfg_.kind == InterconnectConfig::Kind::Peer) {
        arrival = peerLink(src, dst).occupy(bytes, now);
    } else {
        // Stage through the host: uplink first, then the downlink
        // once the payload has fully landed in host memory.
        Tick atHost =
            links_[static_cast<std::size_t>(src)].occupy(bytes, now);
        arrival = links_[static_cast<std::size_t>(devices_ + dst)]
                      .occupy(bytes, atHost);
    }

    ++inFlight_;
    if (inFlight_ > maxInFlight_)
        maxInFlight_ = inFlight_;
    if (trace_)
        trace_(src, dst, bytes, now, arrival);
    sim_.at(arrival,
            [this, deliver = std::move(deliver)]() mutable {
                --inFlight_;
                ++delivered_;
                deliver();
            });
}

Tick
Interconnect::route(int src, int dst, double bytes, Tick submitTick)
{
    VP_ASSERT(src >= 0 && src < devices_ && dst >= 0
                  && dst < devices_,
              "interconnect: device index out of range");
    VP_ASSERT(src != dst, "interconnect: transfer to self");
    VP_ASSERT(bytes >= 0.0, "interconnect: negative transfer size");

    if (cfg_.kind == InterconnectConfig::Kind::Peer)
        return peerLink(src, dst).occupy(bytes, submitTick);
    Tick atHost =
        links_[static_cast<std::size_t>(src)].occupy(bytes,
                                                     submitTick);
    return links_[static_cast<std::size_t>(devices_ + dst)].occupy(
        bytes, atHost);
}

void
Interconnect::failLink(int src, int dst)
{
    VP_ASSERT(src >= 0 && src < devices_ && dst >= 0
                  && dst < devices_,
              "interconnect: device index out of range");
    if (pathFailed_.empty())
        pathFailed_.assign(
            static_cast<std::size_t>(devices_ * devices_), 0);
    pathFailed_[static_cast<std::size_t>(src * devices_ + dst)] = 1;
}

void
Interconnect::failDevice(int dev)
{
    VP_ASSERT(dev >= 0 && dev < devices_,
              "interconnect: device index out of range");
    for (int other = 0; other < devices_; ++other) {
        if (other == dev)
            continue;
        failLink(dev, other);
        failLink(other, dev);
    }
}

void
Interconnect::degradeLink(int src, int dst, double factor)
{
    VP_ASSERT(src >= 0 && src < devices_ && dst >= 0
                  && dst < devices_ && src != dst,
              "interconnect: bad degrade path");
    VP_ASSERT(factor > 0.0 && factor <= 1.0,
              "interconnect: degrade factor outside (0, 1]");
    if (cfg_.kind == InterconnectConfig::Kind::Peer) {
        peerLink(src, dst).scaleBandwidth(factor);
    } else {
        links_[static_cast<std::size_t>(src)].scaleBandwidth(factor);
        links_[static_cast<std::size_t>(devices_ + dst)]
            .scaleBandwidth(factor);
    }
}

InterconnectStats
Interconnect::stats() const
{
    InterconnectStats s;
    for (const Link& l : links_) {
        // HostStaged counts each staged transfer on two links; report
        // end-to-end transfers from the delivery counter instead.
        s.bytes += l.stats().bytes;
        s.serializeCycles += l.stats().serializeCycles;
        s.waitCycles += l.stats().waitCycles;
    }
    s.transfers = delivered_ + inFlight_;
    s.delivered = delivered_;
    s.maxInFlight = maxInFlight_;
    return s;
}

} // namespace vp

/**
 * @file
 * Simulated inter-device interconnect.
 *
 * Models the links that carry data items between the devices of a
 * DeviceGroup. Two topologies are supported:
 *
 *  - HostStaged: every transfer is staged through host memory over
 *    the source and destination devices' PCIe links (one shared
 *    uplink and one shared downlink per device), like a
 *    cudaMemcpyPeer without peer access.
 *  - Peer: every ordered device pair owns a direct link (NVLink-like
 *    peer access): higher bandwidth, lower latency, no host hop.
 *
 * Each link serializes its transfers: a transfer occupies the link
 * for bytes/bandwidth cycles starting no earlier than the link's
 * busy-until horizon, so concurrent transfers queue and the wait is
 * accounted as contention. Delivery is an ordinary simulation event
 * at arrival time (serialization end + link latency), which keeps
 * multi-device runs fully deterministic.
 *
 * The interconnect lives in vp_sim and therefore cannot depend on
 * the tracer (vp_obs sits above vp_sim); callers that want transfer
 * spans recorded install a trace hook instead.
 */

#ifndef VP_SIM_INTERCONNECT_HH
#define VP_SIM_INTERCONNECT_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hh"

namespace vp {

/** Per-link transfer counters. */
struct LinkStats
{
    std::uint64_t transfers = 0;
    double bytes = 0.0;
    /** Cycles the link spent moving payload. */
    double serializeCycles = 0.0;
    /** Cycles transfers waited for the link to free up. */
    double waitCycles = 0.0;
};

/** Group-wide interconnect counters for a run. */
struct InterconnectStats
{
    std::uint64_t transfers = 0;
    double bytes = 0.0;
    double serializeCycles = 0.0;
    double waitCycles = 0.0;
    /** Transfers delivered to their destination so far. */
    std::uint64_t delivered = 0;
    /** Peak number of simultaneously in-flight transfers. */
    std::uint64_t maxInFlight = 0;
};

/** Topology and cost parameters of a group's interconnect. */
struct InterconnectConfig
{
    enum class Kind
    {
        /** Transfers staged through host memory over PCIe. */
        HostStaged,
        /** Direct per-pair peer links (NVLink-like). */
        Peer,
    };

    Kind kind = Kind::Peer;

    /** Peer-link bandwidth, bytes per device cycle (~20 B/cy at
     *  1.6 GHz is roughly NVLink-class 32 GB/s). */
    double peerBandwidthBytesPerCycle = 20.0;
    /** Peer-link latency from serialization end to delivery. */
    Tick peerLatencyCycles = 700.0;

    /** Host-staged (PCIe) bandwidth per direction, bytes/cycle. */
    double hostBandwidthBytesPerCycle = 4.0;
    /** Latency of one host-staged hop (per direction). */
    Tick hostLatencyCycles = 1500.0;

    /** Fatal when a parameter is out of range. */
    void validate() const;

    /** One-line synopsis ("peer 20B/cy lat700"). */
    std::string describe() const;
};

/**
 * One directed link: serializes transfers in submission order.
 */
class Link
{
  public:
    Link() = default;

    Link(double bandwidthBytesPerCycle, Tick latencyCycles)
        : bw_(bandwidthBytesPerCycle), lat_(latencyCycles)
    {}

    /**
     * Occupy the link with a @p bytes transfer submitted at
     * @p earliest. Serialization starts at max(earliest, busy-until)
     * and the link is busy until it ends.
     * @return the delivery time (serialization end + latency).
     */
    Tick
    occupy(double bytes, Tick earliest)
    {
        Tick start = earliest > busyUntil_ ? earliest : busyUntil_;
        Tick ser = bytes / bw_;
        busyUntil_ = start + ser;
        stats_.transfers += 1;
        stats_.bytes += bytes;
        stats_.serializeCycles += ser;
        stats_.waitCycles += start - earliest;
        return busyUntil_ + lat_;
    }

    /** Time at which the link next frees up. */
    Tick busyUntil() const { return busyUntil_; }

    /** Scale the link's bandwidth by @p factor (degradation). */
    void scaleBandwidth(double factor) { bw_ *= factor; }

    /** Per-link counters. */
    const LinkStats& stats() const { return stats_; }

  private:
    double bw_ = 1.0;
    Tick lat_ = 0.0;
    Tick busyUntil_ = 0.0;
    LinkStats stats_;
};

/**
 * The interconnect of one device group: owns the links and turns
 * transfers into delivery events on the group's simulator.
 */
class Interconnect
{
  public:
    /** Called when a transfer is submitted: (src, dst, bytes,
     *  submit time, delivery time). */
    using TraceHook =
        std::function<void(int, int, double, Tick, Tick)>;

    Interconnect(Simulator& sim, const InterconnectConfig& cfg,
                 int devices);

    /** Number of devices the interconnect spans. */
    int devices() const { return devices_; }

    /** The configuration. */
    const InterconnectConfig& config() const { return cfg_; }

    /**
     * Move @p bytes from device @p src to device @p dst, then run
     * @p deliver at the modeled arrival time. Transfers between the
     * same (src, dst) pair deliver in submission order.
     */
    void transfer(int src, int dst, double bytes, EventFn deliver);

    /**
     * Occupy the links of a @p src -> @p dst transfer of @p bytes
     * submitted at @p submitTick, without scheduling a delivery
     * event or touching the in-flight counters.
     * @return the modeled arrival time.
     *
     * The host-parallel group loop replays each window's mailbox
     * posts through this in merged (submit tick, device, seq) order,
     * so link serialization and contention match the serial loop
     * exactly; delivery events and counters are managed by the
     * caller (see setDeliveryCounters).
     */
    Tick route(int src, int dst, double bytes, Tick submitTick);

    /**
     * Overwrite the delivery-side counters. The host-parallel
     * coordinator reconstructs delivered/in-flight/peak from its
     * mailbox ledger at window barriers; transfer() keeps them
     * itself and never needs this.
     */
    void
    setDeliveryCounters(std::uint64_t delivered,
                        std::uint64_t inFlight,
                        std::uint64_t maxInFlight)
    {
        delivered_ = delivered;
        inFlight_ = inFlight;
        if (maxInFlight > maxInFlight_)
            maxInFlight_ = maxInFlight;
    }

    /** Transfers submitted but not yet delivered. */
    std::uint64_t inFlight() const { return inFlight_; }

    /** @name Path failure / degradation (failover support) @{
     *
     * The interconnect only records which directed paths are usable;
     * the group coordinator decides what happens to traffic that
     * would have used a failed path (re-home, redeliver, or
     * dead-letter) because only it can keep the group's termination
     * counter exact. Transfers already submitted are unaffected —
     * the payload has left the source.
     */

    /** Mark the directed @p src -> @p dst path failed. */
    void failLink(int src, int dst);

    /** Mark every path to or from @p dev failed (device death). */
    void failDevice(int dev);

    /**
     * Scale the bandwidth of the @p src -> @p dst path by
     * @p factor. Peer topology degrades the pair's direct link;
     * HostStaged degrades the source uplink and destination
     * downlink (which other pairs share, like a real PCIe switch).
     */
    void degradeLink(int src, int dst, double factor);

    /** True when the directed @p src -> @p dst path is usable. */
    bool
    pathUsable(int src, int dst) const
    {
        if (pathFailed_.empty())
            return true;
        return !pathFailed_[static_cast<std::size_t>(
            src * devices_ + dst)];
    }

    /** @} */

    /** Group-wide counters (sums the links). */
    InterconnectStats stats() const;

    /** Install @p hook to observe every transfer (null detaches). */
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

  private:
    /** Directed peer link src -> dst (Peer topology). */
    Link& peerLink(int src, int dst);

    Simulator& sim_;
    InterconnectConfig cfg_;
    int devices_;
    /** Peer: devices*devices directed links (diagonal unused).
     *  HostStaged: per-device uplinks then downlinks. */
    std::vector<Link> links_;
    /** Directed-path failure flags (devices^2, lazily allocated). */
    std::vector<char> pathFailed_;
    std::uint64_t inFlight_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t maxInFlight_ = 0;
    TraceHook trace_;
};

} // namespace vp

#endif // VP_SIM_INTERCONNECT_HH

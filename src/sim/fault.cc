#include "sim/fault.hh"

#include <cmath>

#include "common/error.hh"

namespace vp {

namespace {

void
checkProb(double p, const char* name)
{
    VP_CHECK(p >= 0.0 && p <= 1.0 && !std::isnan(p), ErrorCode::Config,
             "fault probability " << name << " = " << p
                                  << " outside [0, 1]");
}

} // namespace

void
FaultPlan::validate() const
{
    checkProb(taskFailProb, "taskFailProb");
    checkProb(taskSlowProb, "taskSlowProb");
    checkProb(pushDropProb, "pushDropProb");
    checkProb(pushCorruptProb, "pushCorruptProb");
    checkProb(launchDelayProb, "launchDelayProb");
    VP_CHECK(taskSlowFactor >= 1.0, ErrorCode::Config,
             "taskSlowFactor " << taskSlowFactor << " must be >= 1");
    VP_CHECK(launchDelayCycles >= 0.0, ErrorCode::Config,
             "launchDelayCycles " << launchDelayCycles
                                  << " must be >= 0");
    VP_CHECK(faultDetectCycles >= 0.0, ErrorCode::Config,
             "faultDetectCycles " << faultDetectCycles
                                  << " must be >= 0");
    for (const SmFaultEvent& e : smEvents) {
        VP_CHECK(e.time >= 0.0, ErrorCode::Config,
                 "SM fault event time " << e.time << " must be >= 0");
        VP_CHECK(e.sm >= 0, ErrorCode::Config,
                 "SM fault event targets negative SM " << e.sm);
        if (e.kind == SmFaultEvent::Kind::Degrade) {
            VP_CHECK(e.factor > 0.0 && e.factor <= 1.0,
                     ErrorCode::Config,
                     "degrade factor " << e.factor
                                       << " for sm " << e.sm
                                       << " outside (0, 1]");
        }
    }
    for (const ScriptedTaskFault& f : scripted) {
        VP_CHECK(f.count > 0, ErrorCode::Config,
                 "scripted fault count " << f.count << " must be > 0");
        VP_CHECK(f.atOrAfter >= 0.0, ErrorCode::Config,
                 "scripted fault time " << f.atOrAfter
                                        << " must be >= 0");
    }
    for (const DeviceFaultEvent& e : deviceEvents) {
        VP_CHECK(e.time >= 0.0, ErrorCode::Config,
                 "device fault event time " << e.time
                                            << " must be >= 0");
        VP_CHECK(e.device >= 0, ErrorCode::Config,
                 "device fault event targets negative device "
                     << e.device);
    }
    for (const LinkFaultEvent& e : linkEvents) {
        VP_CHECK(e.time >= 0.0, ErrorCode::Config,
                 "link fault event time " << e.time
                                          << " must be >= 0");
        VP_CHECK(e.src >= 0 && e.dst >= 0, ErrorCode::Config,
                 "link fault event targets negative device ("
                     << e.src << " -> " << e.dst << ")");
        if (e.kind == LinkFaultEvent::Kind::Degrade) {
            VP_CHECK(e.factor > 0.0 && e.factor <= 1.0,
                     ErrorCode::Config,
                     "link degrade factor " << e.factor
                         << " for " << e.src << " -> " << e.dst
                         << " outside (0, 1]");
        }
    }
}

void
FaultPlan::validateTargets(const std::vector<int>& smsPerDevice,
                           int stageCount) const
{
    int devices = static_cast<int>(smsPerDevice.size());
    int maxSms = 0;
    for (int s : smsPerDevice)
        maxSms = s > maxSms ? s : maxSms;
    for (const SmFaultEvent& e : smEvents) {
        VP_CHECK(e.device >= 0 && e.device < devices,
                 ErrorCode::Config,
                 "fault plan: SM event targets device " << e.device
                     << " but the run has " << devices
                     << " device(s)");
        VP_CHECK(e.sm
                     < smsPerDevice[static_cast<std::size_t>(
                         e.device)],
                 ErrorCode::Config,
                 "fault plan: SM event targets sm " << e.sm
                     << " but device " << e.device << " has "
                     << smsPerDevice[static_cast<std::size_t>(
                            e.device)]
                     << " SMs");
    }
    for (const ScriptedTaskFault& f : scripted) {
        VP_CHECK(f.sm < maxSms, ErrorCode::Config,
                 "fault plan: scripted fault targets sm " << f.sm
                     << " but no device has more than " << maxSms
                     << " SMs");
        if (stageCount >= 0) {
            VP_CHECK(f.stage < stageCount, ErrorCode::Config,
                     "fault plan: scripted fault targets stage "
                         << f.stage << " but the pipeline has "
                         << stageCount << " stages");
        }
    }
    for (const DeviceFaultEvent& e : deviceEvents) {
        VP_CHECK(e.device >= 0 && e.device < devices,
                 ErrorCode::Config,
                 "fault plan: device kill targets device "
                     << e.device << " but the run has " << devices
                     << " device(s)");
    }
    for (const LinkFaultEvent& e : linkEvents) {
        VP_CHECK(e.src >= 0 && e.src < devices && e.dst >= 0
                     && e.dst < devices,
                 ErrorCode::Config,
                 "fault plan: link event targets path " << e.src
                     << " -> " << e.dst << " but the run has "
                     << devices << " device(s)");
        VP_CHECK(e.src != e.dst, ErrorCode::Config,
                 "fault plan: link event targets self-path "
                     << e.src << " -> " << e.dst);
    }
}

FaultInjector::FaultInjector(const FaultPlan& plan)
    : plan_(plan),
      // Distinct sequence constants give each fault class an
      // independent PCG stream off the one user-visible seed.
      failRng_(plan.seed, 0x9e3779b97f4a7c15ULL),
      slowRng_(plan.seed, 0xbf58476d1ce4e5b9ULL),
      pushRng_(plan.seed, 0x94d049bb133111ebULL),
      launchRng_(plan.seed, 0xd6e8feb86659fd93ULL)
{
    scriptedLeft_.reserve(plan_.scripted.size());
    for (const ScriptedTaskFault& f : plan_.scripted)
        scriptedLeft_.push_back(f.count);
}

int
FaultInjector::fetchFaults(int stage, int sm, int items, Tick now)
{
    int fails = 0;
    for (std::size_t i = 0; i < plan_.scripted.size() && items > 0;
         ++i) {
        if (scriptedLeft_[i] <= 0)
            continue;
        const ScriptedTaskFault& f = plan_.scripted[i];
        if (now < f.atOrAfter)
            continue;
        if (f.sm >= 0 && f.sm != sm)
            continue;
        if (f.stage >= 0 && f.stage != stage)
            continue;
        int take = scriptedLeft_[i] < items ? scriptedLeft_[i] : items;
        scriptedLeft_[i] -= take;
        items -= take;
        fails += take;
    }
    if (plan_.taskFailProb > 0.0) {
        for (int i = 0; i < items; ++i)
            if (failRng_.nextBool(plan_.taskFailProb))
                ++fails;
    }
    return fails;
}

double
FaultInjector::slowFactor()
{
    if (plan_.taskSlowProb <= 0.0)
        return 1.0;
    return slowRng_.nextBool(plan_.taskSlowProb) ? plan_.taskSlowFactor
                                                 : 1.0;
}

PushFault
FaultInjector::pushFault()
{
    // One draw decides both outcomes so enabling corruption does not
    // shift the drop decisions of an otherwise-identical plan.
    if (!plan_.anyPushFaults())
        return PushFault::None;
    double u = pushRng_.nextDouble();
    if (u < plan_.pushDropProb)
        return PushFault::Drop;
    if (u < plan_.pushDropProb + plan_.pushCorruptProb)
        return PushFault::Corrupt;
    return PushFault::None;
}

Tick
FaultInjector::launchDelay()
{
    if (plan_.launchDelayProb <= 0.0)
        return 0.0;
    return launchRng_.nextBool(plan_.launchDelayProb)
               ? plan_.launchDelayCycles
               : 0.0;
}

} // namespace vp

#include "sim/simulator.hh"

#include <algorithm>
#include <cmath>
#include <limits>

namespace vp {

std::uint32_t
Simulator::allocSlot()
{
    if (freeHead_ != EventHandle::kNone) {
        std::uint32_t idx = freeHead_;
        freeHead_ = slab_[idx].nextFree;
        slab_[idx].nextFree = EventHandle::kNone;
        return idx;
    }
    VP_ASSERT(slab_.size() < kSlotMask,
              "event slab exhausted (too many pending events)");
    slab_.emplace_back();
    return static_cast<std::uint32_t>(slab_.size() - 1);
}

void
Simulator::freeSlot(std::uint32_t idx)
{
    Slot& s = slab_[idx];
    s.fn.reset();
    s.heapPos = kNotQueued;
    // Stale handles to this slot's previous tenant now mismatch.
    ++s.gen;
    s.nextFree = freeHead_;
    freeHead_ = idx;
}

void
Simulator::heapPush(HeapEntry e)
{
    heap_.push_back(e);
    siftUp(static_cast<std::uint32_t>(heap_.size() - 1));
}

void
Simulator::heapRemove(std::uint32_t pos)
{
    std::uint32_t last = static_cast<std::uint32_t>(heap_.size() - 1);
    slab_[heap_[pos].slot()].heapPos = kNotQueued;
    if (pos != last) {
        heap_[pos] = heap_[last];
        heap_.pop_back();
        // The displaced element may need to move either direction.
        siftDown(pos);
        siftUp(pos);
    } else {
        heap_.pop_back();
    }
}

void
Simulator::siftUp(std::uint32_t pos)
{
    HeapEntry e = heap_[pos];
    while (pos > 0) {
        std::uint32_t parent = (pos - 1) / kArity;
        if (!firesBefore(e, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        slab_[heap_[pos].slot()].heapPos = pos;
        pos = parent;
    }
    heap_[pos] = e;
    slab_[e.slot()].heapPos = pos;
}

void
Simulator::siftDown(std::uint32_t pos)
{
    HeapEntry e = heap_[pos];
    std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    for (;;) {
        std::uint32_t first = kArity * pos + 1;
        if (first >= n)
            break;
        std::uint32_t stop = std::min(first + kArity, n);
        std::uint32_t best = first;
        for (std::uint32_t c = first + 1; c < stop; ++c)
            if (firesBefore(heap_[c], heap_[best]))
                best = c;
        if (!firesBefore(heap_[best], e))
            break;
        heap_[pos] = heap_[best];
        slab_[heap_[pos].slot()].heapPos = pos;
        pos = best;
    }
    heap_[pos] = e;
    slab_[e.slot()].heapPos = pos;
}

EventHandle
Simulator::at(Tick when, EventFn fn)
{
    VP_ASSERT(std::isfinite(when), "event time must be finite");
    VP_ASSERT(when + 1e-9 >= now_,
              "cannot schedule in the past: " << when << " < " << now_);
    std::uint32_t idx = allocSlot();
    Slot& s = slab_[idx];
    s.fn = std::move(fn);
    std::uint32_t gen = s.gen;
    std::uint64_t seq = nextSeq_++;
    VP_ASSERT(seq < (std::uint64_t(1) << (64 - kSlotBits)),
              "event sequence space exhausted");
    heapPush(HeapEntry{when > now_ ? when : now_,
                       (seq << kSlotBits) | idx});
    return EventHandle(idx, gen);
}

EventHandle
Simulator::after(Tick delay, EventFn fn)
{
    VP_ASSERT(delay >= 0.0, "negative delay " << delay);
    return at(now_ + delay, std::move(fn));
}

void
Simulator::cancel(EventHandle h)
{
    if (!h.valid() || h.slot_ >= slab_.size())
        return;
    Slot& s = slab_[h.slot_];
    // Stale generation: the event already fired (or was cancelled)
    // and the slot may belong to someone else now.
    if (s.gen != h.gen_ || s.heapPos == kNotQueued)
        return;
    heapRemove(s.heapPos);
    freeSlot(h.slot_);
}

void
Simulator::dispatchNext()
{
    std::uint32_t idx = heap_[0].slot();
    now_ = heap_[0].when;
    ++eventsRun_;
    EventFn fn = std::move(slab_[idx].fn);
    heapRemove(0);
    // Recycle before firing: the callback may schedule new events,
    // which can then reuse this slot immediately.
    freeSlot(idx);
    fn();
}

Tick
Simulator::run()
{
    while (!heap_.empty() && !stop_)
        dispatchNext();
    return now_;
}

bool
Simulator::runUntil(Tick timeLimit, std::uint64_t eventLimit)
{
    std::uint64_t start = eventsRun_;
    while (!heap_.empty()) {
        if (stop_)
            return false;
        if (eventsRun_ - start >= eventLimit)
            return false;
        if (heap_[0].when > timeLimit)
            return false;
        dispatchNext();
    }
    return true;
}

Tick
Simulator::nextEventTime() const
{
    return heap_.empty() ? std::numeric_limits<Tick>::infinity()
                         : heap_[0].when;
}

bool
Simulator::step()
{
    if (heap_.empty() || stop_)
        return false;
    dispatchNext();
    return true;
}

void
Simulator::advanceTo(Tick t)
{
    if (!(t > now_))
        return;
    VP_ASSERT(heap_.empty() || heap_[0].when + 1e-9 >= t,
              "advanceTo(" << t << ") would skip an event at "
                           << heap_[0].when);
    now_ = t;
}

bool
Simulator::runBounded(std::uint64_t limit)
{
    std::uint64_t start = eventsRun_;
    while (!heap_.empty()) {
        if (stop_)
            return false;
        if (eventsRun_ - start >= limit)
            return false;
        dispatchNext();
    }
    return true;
}

} // namespace vp

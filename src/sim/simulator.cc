#include "sim/simulator.hh"

#include <cmath>

namespace vp {

EventHandle
Simulator::at(Tick when, std::function<void()> fn)
{
    VP_ASSERT(std::isfinite(when), "event time must be finite");
    VP_ASSERT(when + 1e-9 >= now_,
              "cannot schedule in the past: " << when << " < " << now_);
    auto rec = std::make_unique<Record>();
    rec->when = std::max(when, now_);
    rec->seq = nextSeq_++;
    rec->id = nextId_++;
    rec->fn = std::move(fn);
    Record* raw = rec.get();
    records_.emplace(raw->id, std::move(rec));
    queue_.push(raw);
    ++live_;
    return EventHandle(raw->id);
}

EventHandle
Simulator::after(Tick delay, std::function<void()> fn)
{
    VP_ASSERT(delay >= 0.0, "negative delay " << delay);
    return at(now_ + delay, std::move(fn));
}

void
Simulator::cancel(EventHandle h)
{
    if (!h.valid())
        return;
    auto it = records_.find(h.id_);
    if (it == records_.end())
        return;
    if (!it->second->cancelled) {
        it->second->cancelled = true;
        --live_;
    }
}

void
Simulator::dispatchNext()
{
    Record* rec = queue_.top();
    queue_.pop();
    if (!rec->cancelled) {
        now_ = rec->when;
        --live_;
        ++eventsRun_;
        auto fn = std::move(rec->fn);
        records_.erase(rec->id);
        fn();
    } else {
        records_.erase(rec->id);
    }
}

Tick
Simulator::run()
{
    while (!queue_.empty())
        dispatchNext();
    return now_;
}

bool
Simulator::runUntil(Tick timeLimit, std::uint64_t eventLimit)
{
    std::uint64_t start = eventsRun_;
    while (!queue_.empty()) {
        if (eventsRun_ - start >= eventLimit)
            return false;
        if (queue_.top()->when > timeLimit)
            return false;
        dispatchNext();
    }
    return true;
}

bool
Simulator::runBounded(std::uint64_t limit)
{
    std::uint64_t start = eventsRun_;
    while (!queue_.empty()) {
        if (eventsRun_ - start >= limit)
            return false;
        dispatchNext();
    }
    return true;
}

} // namespace vp

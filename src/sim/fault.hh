/**
 * @file
 * Deterministic fault injection for the simulated GPU runtime.
 *
 * A FaultPlan describes which faults to inject into a run: transient
 * task failures and slowdowns (ECC-style soft errors), SM kill or
 * throughput-degradation events at scripted times, dropped/corrupted
 * queue pushes, and delayed kernel launches. A FaultInjector turns
 * the plan into a pure decision oracle: every injection decision is
 * drawn from per-fault-class PCG32 streams seeded from the plan, so a
 * given (plan, workload) pair replays bit-identically — faults are
 * ordinary engine events, never wall-clock dependent.
 *
 * The injector only decides; the runtime layers (Device, runners,
 * RecoveryManager) act on the decisions and count them. Keeping the
 * oracle stateless apart from its RNG streams is what makes the
 * "injection compiled in but disabled" overhead requirement cheap to
 * meet: when a plan injects nothing, the runtime never consults the
 * oracle at all.
 */

#ifndef VP_SIM_FAULT_HH
#define VP_SIM_FAULT_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "sim/simulator.hh"

namespace vp {

/** A scripted mid-run SM event: kill it or degrade its throughput. */
struct SmFaultEvent
{
    enum class Kind
    {
        /** Take the SM offline; resident blocks are evicted. */
        Kill,
        /** Scale the SM's issue/memory throughput by `factor`. */
        Degrade,
    };

    /** Virtual time (cycles) at which the event fires. */
    Tick time = 0.0;
    /** Target SM index (local to the target device). */
    int sm = 0;
    Kind kind = Kind::Kill;
    /** Throughput multiplier for Degrade (0 < factor <= 1). */
    double factor = 0.5;
    /** Target device of a multi-device group (0 on single device). */
    int device = 0;
};

/**
 * A scripted transient-task-fault trigger: fail the next `count`
 * task fetches matching (sm, stage) at or after `atOrAfter`.
 * Negative sm/stage act as wildcards.
 */
struct ScriptedTaskFault
{
    Tick atOrAfter = 0.0;
    int sm = -1;
    int stage = -1;
    int count = 1;
};

/**
 * A scripted whole-device failure: every SM of the device goes
 * offline at once, its resident blocks are evicted, and the group
 * coordinator re-homes the device's pinned stages onto survivors.
 * Only meaningful for multi-device (sharded) runs.
 */
struct DeviceFaultEvent
{
    /** Virtual time (cycles) at which the device dies. */
    Tick time = 0.0;
    /** Target device index within the group. */
    int device = 0;
};

/**
 * A scripted interconnect path event between two group members:
 * fail the src -> dst path for all future transfers, or scale its
 * bandwidth. Transfers already in flight when the path fails still
 * arrive (the payload has left the source).
 */
struct LinkFaultEvent
{
    enum class Kind
    {
        /** The src -> dst path becomes unusable for new transfers;
         *  items pushed over it are dead-lettered. */
        Fail,
        /** The path's bandwidth is scaled by `factor`. */
        Degrade,
    };

    /** Virtual time (cycles) at which the event fires. */
    Tick time = 0.0;
    int src = 0;
    int dst = 0;
    Kind kind = Kind::Fail;
    /** Bandwidth multiplier for Degrade (0 < factor <= 1). */
    double factor = 0.5;
};

/**
 * Seeded, config-driven description of the faults to inject into one
 * run. All probabilities are per-item (or per-push / per-launch);
 * zero disables that fault class without consuming RNG draws.
 */
struct FaultPlan
{
    /** Seed for the per-class decision streams. */
    std::uint64_t seed = 1;

    /** Probability a fetched task fails transiently and must retry. */
    double taskFailProb = 0.0;
    /** Probability a batch executes slowed by `taskSlowFactor`. */
    double taskSlowProb = 0.0;
    /** Execution-time multiplier for slowed batches (>= 1). */
    double taskSlowFactor = 4.0;

    /** Probability a queue push is silently dropped. */
    double pushDropProb = 0.0;
    /** Probability a queue push is corrupted (detected at commit,
     *  item dead-lettered after charging `faultDetectCycles`). */
    double pushCorruptProb = 0.0;

    /** Probability a kernel launch is delayed. */
    double launchDelayProb = 0.0;
    /** Extra launch latency (cycles) when a launch is delayed. */
    Tick launchDelayCycles = 5000.0;

    /** Cycles charged to detect and handle one injected fault. */
    Tick faultDetectCycles = 200.0;

    /** Scripted SM kill/degrade events. */
    std::vector<SmFaultEvent> smEvents;
    /** Scripted transient-task-fault triggers. */
    std::vector<ScriptedTaskFault> scripted;
    /** Scripted whole-device failures (sharded runs only). */
    std::vector<DeviceFaultEvent> deviceEvents;
    /** Scripted interconnect fail/degrade events (sharded runs). */
    std::vector<LinkFaultEvent> linkEvents;

    /** True when any task-level fault (probabilistic or scripted)
     *  can fire — the runners pick the instrumented batch path. */
    bool
    anyTaskFaults() const
    {
        return taskFailProb > 0.0 || taskSlowProb > 0.0
            || !scripted.empty();
    }

    /** True when any push-level fault can fire. */
    bool
    anyPushFaults() const
    {
        return pushDropProb > 0.0 || pushCorruptProb > 0.0;
    }

    /** True when whole-device failures are scripted. */
    bool anyDeviceFaults() const { return !deviceEvents.empty(); }

    /** True when interconnect fail/degrade events are scripted. */
    bool anyLinkFaults() const { return !linkEvents.empty(); }

    /** True when the plan injects anything at all. */
    bool
    enabled() const
    {
        return anyTaskFaults() || anyPushFaults()
            || launchDelayProb > 0.0 || !smEvents.empty()
            || anyDeviceFaults() || anyLinkFaults();
    }

    /** Raise FatalError(Config) on out-of-range fields. */
    void validate() const;

    /**
     * Raise FatalError(Config) when any scripted event targets a
     * device, SM, or stage that does not exist in the configured
     * run — a scripted fault that can never fire is a plan bug, not
     * a no-op. @p smsPerDevice holds the SM count of every group
     * member (one entry for single-device runs); @p stageCount the
     * pipeline's stage count (negative skips stage checks).
     */
    void validateTargets(const std::vector<int>& smsPerDevice,
                         int stageCount) const;
};

/** Outcome of a push-fault decision. */
enum class PushFault
{
    None,
    /** The push is silently lost (item never reaches the queue). */
    Drop,
    /** The push lands corrupted; consumer-side detection
     *  dead-letters it after the detection cost. */
    Corrupt,
};

/**
 * Deterministic decision oracle for one run. Each fault class draws
 * from its own PCG32 stream, so enabling one class never perturbs
 * the decisions of another — a plan with only SM events replays the
 * exact transient-fault decisions of a plan with none.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan& plan);

    const FaultPlan& plan() const { return plan_; }

    /**
     * Decide how many of @p items fetched for @p stage on @p sm at
     * time @p now fail transiently. Scripted triggers match first
     * (and are consumed); the probabilistic stream covers the rest.
     */
    int fetchFaults(int stage, int sm, int items, Tick now);

    /** Decide the slowdown multiplier for one batch (1.0 = none). */
    double slowFactor();

    /** Decide the fate of one queue push. */
    PushFault pushFault();

    /** Decide the extra latency for one kernel launch (0 = none). */
    Tick launchDelay();

  private:
    FaultPlan plan_;
    Rng failRng_;
    Rng slowRng_;
    Rng pushRng_;
    Rng launchRng_;
    /** Remaining fail budget per scripted trigger. */
    std::vector<int> scriptedLeft_;
};

} // namespace vp

#endif // VP_SIM_FAULT_HH

/**
 * @file
 * Discrete-event simulation core.
 *
 * The whole GPU model is driven by one Simulator: entities schedule
 * callbacks at absolute virtual times (measured in device cycles) and
 * the simulator dispatches them in (time, sequence) order, which makes
 * every run fully deterministic. Events can be cancelled through the
 * EventHandle returned at scheduling time.
 */

#ifndef VP_SIM_SIMULATOR_HH
#define VP_SIM_SIMULATOR_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/error.hh"

namespace vp {

/** Virtual time in device cycles. Fractional cycles are permitted. */
using Tick = double;

/** Token identifying a scheduled event so it can be cancelled. */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True when this handle refers to a scheduled (maybe run) event. */
    bool valid() const { return id_ != 0; }

  private:
    friend class Simulator;
    explicit EventHandle(std::uint64_t id) : id_(id) {}
    std::uint64_t id_ = 0;
};

/**
 * Deterministic event-driven simulator with a virtual cycle clock.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current virtual time in cycles. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when.
     * @return a handle that can be used to cancel the event.
     */
    EventHandle at(Tick when, std::function<void()> fn);

    /** Schedule @p fn to run @p delay cycles from now. */
    EventHandle after(Tick delay, std::function<void()> fn);

    /** Cancel a previously scheduled event; no-op if already run. */
    void cancel(EventHandle h);

    /** Run until no events remain. @return the final virtual time. */
    Tick run();

    /**
     * Run until no events remain or @p limit events have fired.
     * @return true when the queue drained, false on the event limit
     * (useful as a hang detector in tests).
     */
    bool runBounded(std::uint64_t limit);

    /**
     * Run until the queue drains, the next event lies beyond
     * @p timeLimit, or @p eventLimit events have fired.
     * @return true when the queue drained within the limits (the
     * auto-tuner's timeout-execute primitive).
     */
    bool runUntil(Tick timeLimit, std::uint64_t eventLimit);

    /** Number of events dispatched so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return live_; }

  private:
    struct Record
    {
        Tick when;
        std::uint64_t seq;
        std::uint64_t id;
        std::function<void()> fn;
        bool cancelled = false;
    };

    struct Order
    {
        bool
        operator()(const Record* a, const Record* b) const
        {
            if (a->when != b->when)
                return a->when > b->when;
            return a->seq > b->seq;
        }
    };

    void dispatchNext();

    Tick now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t nextId_ = 1;
    std::uint64_t eventsRun_ = 0;
    std::size_t live_ = 0;
    std::priority_queue<Record*, std::vector<Record*>, Order> queue_;
    std::unordered_map<std::uint64_t, std::unique_ptr<Record>> records_;
};

} // namespace vp

#endif // VP_SIM_SIMULATOR_HH

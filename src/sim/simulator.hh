/**
 * @file
 * Discrete-event simulation core.
 *
 * The whole GPU model is driven by one Simulator: entities schedule
 * callbacks at absolute virtual times (measured in device cycles) and
 * the simulator dispatches them in (time, sequence) order, which makes
 * every run fully deterministic. Events can be cancelled through the
 * EventHandle returned at scheduling time.
 *
 * The engine is built for throughput: events live in a slab of
 * recycled slots (no per-event allocation), ordering is a 4-ary
 * min-heap of packed (time, seq, slot) keys (no per-event map
 * bookkeeping), cancellation is generation-counted — a stale handle
 * is detected by a counter compare, never a lookup — and callbacks
 * are stored in EventFn, a move-only function whose inline buffer
 * fits every hot-path continuation without touching the allocator.
 */

#ifndef VP_SIM_SIMULATOR_HH
#define VP_SIM_SIMULATOR_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hh"

namespace vp {

/** Virtual time in device cycles. Fractional cycles are permitted. */
using Tick = double;

/**
 * Move-only callable of signature void() with a small-buffer store.
 *
 * The simulator fires millions of continuations per run; std::function
 * heap-allocates any capture list larger than two words, which puts an
 * allocator round trip on the fetch/execute/push loop of every
 * persistent block. EventFn keeps captures up to kInlineBytes inline
 * (enough for the block/SM continuations, which capture a pointer or
 * two plus a wrapped callback) and only falls back to the heap for
 * genuinely large closures.
 */
class EventFn
{
  public:
    /** Inline capture capacity, bytes. */
    static constexpr std::size_t kInlineBytes = 56;

    EventFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventFn>>>
    EventFn(F&& f) // NOLINT: implicit by design, mirrors std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes
                      && alignof(Fn) <= alignof(std::max_align_t)
                      && std::is_trivially_copyable_v<Fn>
                      && std::is_trivially_destructible_v<Fn>) {
            // Pointer-capture closures (the hot-path continuations):
            // relocation is a plain memcpy and destruction a no-op,
            // signalled by null relocate/destroy entries.
            new (buf_) Fn(std::forward<F>(f));
            ops_ = &trivialOps<Fn>;
        } else if constexpr (sizeof(Fn) <= kInlineBytes
                             && alignof(Fn)
                                    <= alignof(std::max_align_t)
                             && std::is_nothrow_move_constructible_v<
                                    Fn>) {
            new (buf_) Fn(std::forward<F>(f));
            ops_ = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn**>(buf_) =
                new Fn(std::forward<F>(f));
            ops_ = &heapOps<Fn>;
        }
    }

    EventFn(EventFn&& other) noexcept { moveFrom(other); }

    EventFn&
    operator=(EventFn&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventFn(const EventFn&) = delete;
    EventFn& operator=(const EventFn&) = delete;

    ~EventFn() { reset(); }

    /** True when a callable is stored. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the stored callable. */
    void
    operator()()
    {
        VP_ASSERT(ops_, "invoking an empty EventFn");
        ops_->invoke(buf_);
    }

    /** Drop the stored callable (if any). */
    void
    reset()
    {
        if (ops_) {
            if (ops_->destroy)
                ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        void (*invoke)(void*);
        /** Relocate from src into (raw) dst, leaving src destroyed;
         *  null means "memcpy the buffer". */
        void (*relocate)(void* src, void* dst) noexcept;
        /** Null means trivially destructible. */
        void (*destroy)(void*);
    };

    template <typename Fn>
    static constexpr Ops trivialOps = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        nullptr,
        nullptr,
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void* p) { (*static_cast<Fn*>(p))(); },
        [](void* src, void* dst) noexcept {
            auto* f = static_cast<Fn*>(src);
            new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        [](void* p) { static_cast<Fn*>(p)->~Fn(); },
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void* p) { (**static_cast<Fn**>(p))(); },
        [](void* src, void* dst) noexcept {
            *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
        },
        [](void* p) { delete *static_cast<Fn**>(p); },
    };

    void
    moveFrom(EventFn& other) noexcept
    {
        ops_ = other.ops_;
        if (ops_) {
            if (ops_->relocate)
                ops_->relocate(other.buf_, buf_);
            else
                __builtin_memcpy(buf_, other.buf_, kInlineBytes);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
    const Ops* ops_ = nullptr;
};

/**
 * Token identifying a scheduled event so it can be cancelled.
 *
 * A handle names (slab slot, generation). The generation is bumped
 * whenever a slot is recycled, so handles to events that already fired
 * or were cancelled go stale instead of aliasing the slot's next
 * tenant.
 */
class EventHandle
{
  public:
    EventHandle() = default;

    /** True when this handle refers to a scheduled (maybe run) event. */
    bool valid() const { return slot_ != kNone; }

  private:
    friend class Simulator;
    static constexpr std::uint32_t kNone = 0xffffffffu;

    EventHandle(std::uint32_t slot, std::uint32_t gen)
        : slot_(slot), gen_(gen)
    {}

    std::uint32_t slot_ = kNone;
    std::uint32_t gen_ = 0;
};

/**
 * Deterministic event-driven simulator with a virtual cycle clock.
 */
class Simulator
{
  public:
    Simulator() = default;

    Simulator(const Simulator&) = delete;
    Simulator& operator=(const Simulator&) = delete;

    /** Current virtual time in cycles. */
    Tick now() const { return now_; }

    /**
     * Schedule @p fn to run at absolute time @p when. Scheduling into
     * the past (beyond a small floating-point tolerance) is an
     * invariant violation and panics rather than reordering time.
     * @return a handle that can be used to cancel the event.
     */
    EventHandle at(Tick when, EventFn fn);

    /**
     * Schedule @p fn to run @p delay cycles from now. Negative (or
     * NaN) delays panic.
     */
    EventHandle after(Tick delay, EventFn fn);

    /** Cancel a previously scheduled event; no-op if already run. */
    void cancel(EventHandle h);

    /** Run until no events remain. @return the final virtual time. */
    Tick run();

    /**
     * Run until no events remain or @p limit events have fired.
     * @return true when the queue drained, false on the event limit
     * (useful as a hang detector in tests).
     */
    bool runBounded(std::uint64_t limit);

    /**
     * Run until the queue drains, the next event lies beyond
     * @p timeLimit, or @p eventLimit events have fired.
     * @return true when the queue drained within the limits (the
     * auto-tuner's timeout-execute primitive).
     */
    bool runUntil(Tick timeLimit, std::uint64_t eventLimit);

    /**
     * Absolute time of the earliest pending event, or +infinity when
     * the queue is empty. The window scheduler of the host-parallel
     * group loop uses this to derive each device's safe horizon.
     */
    Tick nextEventTime() const;

    /**
     * Dispatch exactly one event (the earliest pending one).
     * @return false when the queue was empty or a stop was requested.
     */
    bool step();

    /**
     * Advance the clock to @p t without dispatching anything. Only
     * legal when no pending event fires before @p t; used at window
     * barriers so supervision hooks observe a common group time.
     */
    void advanceTo(Tick t);

    /** Number of events dispatched so far. */
    std::uint64_t eventsRun() const { return eventsRun_; }

    /** Number of events currently pending. */
    std::size_t pendingEvents() const { return heap_.size(); }

    /**
     * Ask the run loop to return after the current event. Used by the
     * fault watchdog to convert a wedged pipeline into a structured
     * failure instead of spinning to an event/cycle cap. Sticky until
     * clearStop().
     */
    void requestStop() { stop_ = true; }

    /** True once requestStop() has been called. */
    bool stopRequested() const { return stop_; }

    /** Re-arm the run loop after a requested stop. */
    void clearStop() { stop_ = false; }

  private:
    /** One slab slot: either a pending event or a freelist link. */
    struct Slot
    {
        EventFn fn;
        /** Bumped on recycle; stale EventHandles mismatch. */
        std::uint32_t gen = 0;
        /** Position in heap_, or kNotQueued. */
        std::uint32_t heapPos = kNotQueued;
        /** Next free slot when on the freelist. */
        std::uint32_t nextFree = EventHandle::kNone;
    };

    /**
     * One heap element. The ordering key (when, seq) lives here, not
     * in the slab, so sift comparisons stay within the contiguous
     * heap array instead of chasing slab indices. seq and slot are
     * packed into one word to keep the entry at 16 bytes (a 4-ary
     * node's children span exactly one cache line): because sequence
     * numbers are unique, comparing the packed word orders by seq
     * and the slot bits can never decide a comparison.
     */
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seqSlot;

        std::uint32_t
        slot() const
        {
            return static_cast<std::uint32_t>(seqSlot & kSlotMask);
        }
    };

    /** Low bits of HeapEntry::seqSlot hold the slab slot. */
    static constexpr std::uint64_t kSlotBits = 20;
    static constexpr std::uint64_t kSlotMask =
        (std::uint64_t(1) << kSlotBits) - 1;

    static constexpr std::uint32_t kNotQueued = 0xffffffffu;

    /** Heap arity: 4-ary halves the depth vs. binary and keeps a
     *  node's children in exactly one cache line. */
    static constexpr std::uint32_t kArity = 4;

    static bool
    firesBefore(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.when != b.when)
            return a.when < b.when;
        return a.seqSlot < b.seqSlot;
    }

    std::uint32_t allocSlot();
    void freeSlot(std::uint32_t idx);
    void heapPush(HeapEntry e);
    void heapRemove(std::uint32_t pos);
    void siftUp(std::uint32_t pos);
    void siftDown(std::uint32_t pos);
    void dispatchNext();

    Tick now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t eventsRun_ = 0;
    std::vector<Slot> slab_;
    /**
     * 4-ary min-heap ordered by (when, seq). Cancelled events are
     * removed eagerly via the slab's heap-position back-pointer;
     * keeping dead entries around (lazy deletion) measured slower —
     * every tombstone eventually costs a full root pop plus a slab
     * probe, and the extra depth taxes all sifts.
     */
    std::vector<HeapEntry> heap_;
    std::uint32_t freeHead_ = EventHandle::kNone;
    bool stop_ = false;
};

} // namespace vp

#endif // VP_SIM_SIMULATOR_HH

#include "common/logging.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

namespace vp {

namespace {

LogLevel
initialLevel()
{
    const char* env = std::getenv("VP_LOG");
    if (!env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "trace"))
        return LogLevel::Trace;
    if (!std::strcmp(env, "debug"))
        return LogLevel::Debug;
    if (!std::strcmp(env, "info"))
        return LogLevel::Info;
    return LogLevel::Warn;
}

LogLevel&
levelRef()
{
    static LogLevel lvl = initialLevel();
    return lvl;
}

const char*
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
    }
    return "?";
}

} // namespace

LogLevel
Logger::level()
{
    return levelRef();
}

void
Logger::setLevel(LogLevel lvl)
{
    levelRef() = lvl;
}

void
Logger::emit(LogLevel lvl, const std::string& msg)
{
    static std::mutex mtx;
    std::lock_guard<std::mutex> lock(mtx);
    std::cerr << "[" << levelName(lvl) << "] " << msg << "\n";
}

} // namespace vp

#include "common/logging.hh"

#include <cstdlib>
#include <cstring>
#include <iomanip>
#include <iostream>
#include <mutex>

namespace vp {

namespace {

LogLevel
initialLevel()
{
    const char* env = std::getenv("VP_LOG");
    if (!env)
        return LogLevel::Warn;
    if (!std::strcmp(env, "trace"))
        return LogLevel::Trace;
    if (!std::strcmp(env, "debug"))
        return LogLevel::Debug;
    if (!std::strcmp(env, "info"))
        return LogLevel::Info;
    return LogLevel::Warn;
}

LogLevel&
levelRef()
{
    static LogLevel lvl = initialLevel();
    return lvl;
}

const char*
levelName(LogLevel lvl)
{
    switch (lvl) {
      case LogLevel::Trace: return "TRACE";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info: return "INFO";
      case LogLevel::Warn: return "WARN";
    }
    return "?";
}

// Thread-local so concurrent Engine runs (each on its own stack, see
// Engine::run) prefix with their own simulator's clock.
thread_local std::function<double()> tlClock;
thread_local int tlSm = -1;

} // namespace

void
Logger::setClock(std::function<double()> now)
{
    tlClock = std::move(now);
}

void
Logger::setSm(int sm)
{
    tlSm = sm;
}

LogLevel
Logger::level()
{
    return levelRef();
}

void
Logger::setLevel(LogLevel lvl)
{
    levelRef() = lvl;
}

void
Logger::emit(LogLevel lvl, const std::string& msg)
{
    static std::mutex mtx;
    std::lock_guard<std::mutex> lock(mtx);
    std::cerr << "[" << levelName(lvl) << "] ";
    if (enabled(LogLevel::Trace) && tlClock) {
        std::cerr << "cycle=" << std::setprecision(15) << tlClock()
                  << std::setprecision(6);
        if (tlSm >= 0)
            std::cerr << " sm=" << tlSm;
        std::cerr << " ";
    }
    std::cerr << msg << "\n";
}

} // namespace vp

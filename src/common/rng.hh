/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The whole reproduction must be bit-reproducible across runs and
 * platforms, so we carry our own PCG32 generator instead of relying on
 * std::mt19937 distributions (whose results are implementation-defined
 * for floating point).
 */

#ifndef VP_COMMON_RNG_HH
#define VP_COMMON_RNG_HH

#include <cstdint>

namespace vp {

/**
 * PCG32 generator (O'Neill, 2014): small, fast, statistically solid,
 * and fully deterministic given (seed, sequence).
 */
class Rng
{
  public:
    /** Construct from a seed and an optional stream-selection value. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t seq = 0xda3e39cb94b95bdbULL);

    /** Next uniformly distributed 32-bit value. */
    std::uint32_t nextU32();

    /** Uniform integer in [0, bound), bias-free via rejection. */
    std::uint32_t nextBelow(std::uint32_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform double in [lo, hi). */
    double nextRange(double lo, double hi);

    /** Approximate standard normal via sum of uniforms (CLT, 12x). */
    double nextGaussian();

    /** True with probability @p p. */
    bool nextBool(double p);

  private:
    std::uint64_t state_;
    std::uint64_t inc_;
};

} // namespace vp

#endif // VP_COMMON_RNG_HH

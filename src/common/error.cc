/**
 * @file
 * Error-code display names.
 */

#include "common/error.hh"

namespace vp {

const char*
errorCodeName(ErrorCode c)
{
    switch (c) {
      case ErrorCode::Generic: return "generic";
      case ErrorCode::Config: return "config";
      case ErrorCode::Input: return "input";
      case ErrorCode::Stall: return "stall";
      case ErrorCode::Deadlock: return "deadlock";
      case ErrorCode::Livelock: return "livelock";
      case ErrorCode::SmFailure: return "sm-failure";
      case ErrorCode::QueueOverflow: return "queue-overflow";
      case ErrorCode::Timeout: return "timeout";
    }
    return "unknown";
}

} // namespace vp

#include "common/stats.hh"

#include <algorithm>

namespace vp {

void
Accumulator::add(double v)
{
    ++count_;
    sum_ += v;
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Accumulator::merge(const Accumulator& other)
{
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::clear()
{
    *this = Accumulator();
}

void
StatGroup::inc(const std::string& name, double v)
{
    vals_[name] += v;
}

void
StatGroup::set(const std::string& name, double v)
{
    vals_[name] = v;
}

double
StatGroup::get(const std::string& name) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? 0.0 : it->second;
}

void
StatGroup::merge(const StatGroup& other)
{
    for (const auto& [k, v] : other.vals_)
        vals_[k] += v;
}

} // namespace vp

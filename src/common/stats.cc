#include "common/stats.hh"

#include <algorithm>
#include <cmath>

namespace vp {

void
Accumulator::add(double v)
{
    ++count_;
    sum_ += v;
    double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. pairwise combination of Welford states.
    double na = static_cast<double>(count_);
    double nb = static_cast<double>(other.count_);
    double delta = other.mean_ - mean_;
    double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::clear()
{
    *this = Accumulator();
}

void
StatGroup::inc(const std::string& name, double v)
{
    vals_[name] += v;
}

void
StatGroup::set(const std::string& name, double v)
{
    vals_[name] = v;
}

double
StatGroup::get(const std::string& name) const
{
    auto it = vals_.find(name);
    return it == vals_.end() ? 0.0 : it->second;
}

void
StatGroup::merge(const StatGroup& other)
{
    for (const auto& [k, v] : other.vals_)
        vals_[k] += v;
}

} // namespace vp

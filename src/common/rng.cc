#include "common/rng.hh"

namespace vp {

Rng::Rng(std::uint64_t seed, std::uint64_t seq)
    : state_(0), inc_((seq << 1u) | 1u)
{
    nextU32();
    state_ += seed;
    nextU32();
}

std::uint32_t
Rng::nextU32()
{
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    std::uint32_t xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
}

std::uint32_t
Rng::nextBelow(std::uint32_t bound)
{
    if (bound == 0)
        return 0;
    // Rejection sampling to avoid modulo bias.
    std::uint32_t threshold = (-bound) % bound;
    for (;;) {
        std::uint32_t r = nextU32();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return nextU32() * (1.0 / 4294967296.0);
}

double
Rng::nextRange(double lo, double hi)
{
    return lo + (hi - lo) * nextDouble();
}

double
Rng::nextGaussian()
{
    double sum = 0.0;
    for (int i = 0; i < 12; ++i)
        sum += nextDouble();
    return sum - 6.0;
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

} // namespace vp

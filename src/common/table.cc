#include "common/table.hh"

#include <iomanip>
#include <sstream>

#include "common/error.hh"

namespace vp {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    VP_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    VP_REQUIRE(cells.size() == headers_.size(),
               "row has " << cells.size() << " cells, expected "
                          << headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(width[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(width[c], '-')
           << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto& row : rows_)
        emit_row(row);
    return os.str();
}

std::string
TextTable::num(double v, int prec)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

} // namespace vp

/**
 * @file
 * ASCII table formatter used by the benchmark harnesses to print
 * paper-style tables and figure series.
 */

#ifndef VP_COMMON_TABLE_HH
#define VP_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace vp {

/** Column-aligned text table with a header row. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have as many cells as there are headers. */
    void addRow(std::vector<std::string> cells);

    /** Render the table, headers underlined, columns padded. */
    std::string render() const;

    /** Format a double with @p prec digits after the point. */
    static std::string num(double v, int prec = 2);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace vp

#endif // VP_COMMON_TABLE_HH

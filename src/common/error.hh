/**
 * @file
 * Error-reporting primitives for the VersaPipe reproduction.
 *
 * Follows the gem5 convention of distinguishing user errors ("fatal",
 * recoverable by fixing inputs or configuration) from internal
 * invariant violations ("panic", a bug in this library). Both raise
 * typed exceptions so tests can assert on them.
 *
 * Errors additionally carry a typed ErrorCode so fault diagnostics
 * can name the failing subsystem (stage, SM, queue, watchdog) and
 * callers can branch on the class of failure instead of parsing
 * message strings.
 */

#ifndef VP_COMMON_ERROR_HH
#define VP_COMMON_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace vp {

/** Machine-checkable classification of an error. */
enum class ErrorCode
{
    /** Unclassified error (the VP_FATAL / VP_PANIC default). */
    Generic,
    /** Invalid configuration or pipeline description. */
    Config,
    /** Invalid input data or API usage. */
    Input,
    /** A run made no drain progress (watchdog / stall detection). */
    Stall,
    /** A queue-full cycle wedged the pipeline. */
    Deadlock,
    /** The event-count livelock guard tripped. */
    Livelock,
    /** An SM failed or was taken offline. */
    SmFailure,
    /** A work queue overflowed its configured capacity. */
    QueueOverflow,
    /** A run exceeded its drain timeout. */
    Timeout,
};

/** Display name of an error code. */
const char* errorCodeName(ErrorCode c);

/** Raised when the user supplied an invalid configuration or input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg,
                        ErrorCode code = ErrorCode::Generic)
        : std::runtime_error(msg), code_(code)
    {}

    /** Typed classification of this error. */
    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

/** Raised when an internal invariant of the library is violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg,
                        ErrorCode code = ErrorCode::Generic)
        : std::logic_error(msg), code_(code)
    {}

    /** Typed classification of this error. */
    ErrorCode code() const { return code_; }

  private:
    ErrorCode code_;
};

namespace detail {

/** Accumulates a message via stream inserters then throws on commit. */
template <typename Exc>
[[noreturn]] inline void
throwFormatted(const char* kind, const char* file, int line,
               const std::string& msg,
               ErrorCode code = ErrorCode::Generic)
{
    std::ostringstream os;
    os << kind;
    if (code != ErrorCode::Generic)
        os << "[" << errorCodeName(code) << "]";
    os << ": " << msg << " (" << file << ":" << line << ")";
    throw Exc(os.str(), code);
}

} // namespace detail

} // namespace vp

/** Report an unrecoverable user/configuration error. */
#define VP_FATAL(msg)                                                       \
    do {                                                                    \
        std::ostringstream vp_os_;                                          \
        vp_os_ << msg;                                                      \
        ::vp::detail::throwFormatted<::vp::FatalError>(                     \
            "fatal", __FILE__, __LINE__, vp_os_.str());                     \
    } while (0)

/** Report an internal bug (invariant violation). */
#define VP_PANIC(msg)                                                       \
    do {                                                                    \
        std::ostringstream vp_os_;                                          \
        vp_os_ << msg;                                                      \
        ::vp::detail::throwFormatted<::vp::PanicError>(                     \
            "panic", __FILE__, __LINE__, vp_os_.str());                     \
    } while (0)

/** Check an internal invariant; panics with the condition text. */
#define VP_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            VP_PANIC("assertion `" #cond "` failed: " << msg);              \
        }                                                                   \
    } while (0)

/** Validate a user-visible precondition; fatal on failure. */
#define VP_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            VP_FATAL("requirement `" #cond "` failed: " << msg);            \
        }                                                                   \
    } while (0)

/**
 * Validate a condition and, on failure, raise a FatalError carrying a
 * typed ErrorCode plus a context message. Use this (rather than bare
 * VP_REQUIRE) in fault/recovery paths so the diagnostic names the
 * stage, SM or queue involved and tests can match on the code.
 */
#define VP_CHECK(cond, errcode, msg)                                        \
    do {                                                                    \
        if (!(cond)) {                                                      \
            std::ostringstream vp_os_;                                      \
            vp_os_ << msg;                                                  \
            ::vp::detail::throwFormatted<::vp::FatalError>(                 \
                "fatal", __FILE__, __LINE__, vp_os_.str(), (errcode));      \
        }                                                                   \
    } while (0)

#endif // VP_COMMON_ERROR_HH

/**
 * @file
 * Error-reporting primitives for the VersaPipe reproduction.
 *
 * Follows the gem5 convention of distinguishing user errors ("fatal",
 * recoverable by fixing inputs or configuration) from internal
 * invariant violations ("panic", a bug in this library). Both raise
 * typed exceptions so tests can assert on them.
 */

#ifndef VP_COMMON_ERROR_HH
#define VP_COMMON_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace vp {

/** Raised when the user supplied an invalid configuration or input. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& msg)
        : std::runtime_error(msg)
    {}
};

/** Raised when an internal invariant of the library is violated. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& msg)
        : std::logic_error(msg)
    {}
};

namespace detail {

/** Accumulates a message via stream inserters then throws on commit. */
template <typename Exc>
[[noreturn]] inline void
throwFormatted(const char* kind, const char* file, int line,
               const std::string& msg)
{
    std::ostringstream os;
    os << kind << ": " << msg << " (" << file << ":" << line << ")";
    throw Exc(os.str());
}

} // namespace detail

} // namespace vp

/** Report an unrecoverable user/configuration error. */
#define VP_FATAL(msg)                                                       \
    do {                                                                    \
        std::ostringstream vp_os_;                                          \
        vp_os_ << msg;                                                      \
        ::vp::detail::throwFormatted<::vp::FatalError>(                     \
            "fatal", __FILE__, __LINE__, vp_os_.str());                     \
    } while (0)

/** Report an internal bug (invariant violation). */
#define VP_PANIC(msg)                                                       \
    do {                                                                    \
        std::ostringstream vp_os_;                                          \
        vp_os_ << msg;                                                      \
        ::vp::detail::throwFormatted<::vp::PanicError>(                     \
            "panic", __FILE__, __LINE__, vp_os_.str());                     \
    } while (0)

/** Check an internal invariant; panics with the condition text. */
#define VP_ASSERT(cond, msg)                                                \
    do {                                                                    \
        if (!(cond)) {                                                      \
            VP_PANIC("assertion `" #cond "` failed: " << msg);              \
        }                                                                   \
    } while (0)

/** Validate a user-visible precondition; fatal on failure. */
#define VP_REQUIRE(cond, msg)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            VP_FATAL("requirement `" #cond "` failed: " << msg);            \
        }                                                                   \
    } while (0)

#endif // VP_COMMON_ERROR_HH

/**
 * @file
 * Minimal leveled logging used by the simulator and framework.
 *
 * Logging is off by default (level Warn) so tests and benchmarks stay
 * quiet; raise the level with Logger::setLevel or the VP_LOG
 * environment variable (trace|debug|info|warn).
 */

#ifndef VP_COMMON_LOGGING_HH
#define VP_COMMON_LOGGING_HH

#include <functional>
#include <sstream>
#include <string>

namespace vp {

/** Severity of a log record, lowest first. */
enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3 };

/** Process-wide logging front end. */
class Logger
{
  public:
    /** Current minimum level that will be emitted. */
    static LogLevel level();

    /** Set the minimum level that will be emitted. */
    static void setLevel(LogLevel lvl);

    /** Emit one record to stderr with a level prefix. */
    static void emit(LogLevel lvl, const std::string& msg);

    /** True when records at @p lvl would be emitted. */
    static bool enabled(LogLevel lvl) { return lvl >= level(); }

    /**
     * Install a thread-local simulated-clock source. While the Trace
     * level is active, every record emitted from this thread carries
     * a structured `cycle=<n>` prefix (plus `sm=<id>` when setSm has
     * tagged the thread), so interleaved VP_LOG=trace output can be
     * correlated with exported traces. Pass an empty function to
     * uninstall. The Engine installs its run's simulator clock for
     * the duration of a run.
     */
    static void setClock(std::function<double()> now);

    /** Tag records from this thread with SM @p sm (-1 clears). */
    static void setSm(int sm);
};

} // namespace vp

#define VP_LOG_AT(lvl, msg)                                                 \
    do {                                                                    \
        if (::vp::Logger::enabled(lvl)) {                                   \
            std::ostringstream vp_log_os_;                                  \
            vp_log_os_ << msg;                                              \
            ::vp::Logger::emit(lvl, vp_log_os_.str());                      \
        }                                                                   \
    } while (0)

#define VP_TRACE(msg) VP_LOG_AT(::vp::LogLevel::Trace, msg)
#define VP_DEBUG(msg) VP_LOG_AT(::vp::LogLevel::Debug, msg)
#define VP_INFO(msg) VP_LOG_AT(::vp::LogLevel::Info, msg)
#define VP_WARN(msg) VP_LOG_AT(::vp::LogLevel::Warn, msg)

#endif // VP_COMMON_LOGGING_HH

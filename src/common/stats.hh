/**
 * @file
 * Lightweight statistics containers used throughout the simulator.
 */

#ifndef VP_COMMON_STATS_HH
#define VP_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace vp {

/**
 * Running summary (count / sum / min / max / mean / variance) of a
 * scalar. Variance uses Welford's online update (Chan et al.'s
 * pairwise form in merge()), so it is numerically stable for long
 * runs of nearby samples.
 *
 * mean() returns 0 for an empty accumulator — indistinguishable from
 * a genuine zero-sum. Call empty() before rendering a mean so "no
 * samples" and "mean of 0" display differently.
 */
class Accumulator
{
  public:
    /** Fold one sample into the summary. */
    void add(double v);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator& other);

    /** True when no samples have been folded in. */
    bool empty() const { return count_ == 0; }

    /** Number of samples folded in so far. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Smallest sample, or +inf when empty. */
    double min() const { return min_; }

    /** Largest sample, or -inf when empty. */
    double max() const { return max_; }

    /** Arithmetic mean, or 0 when empty (see empty()). */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance, or 0 with fewer than two samples. */
    double variance() const
    {
        return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
    }

    /** Population standard deviation (sqrt of variance()). */
    double stddev() const;

    /** Reset to the empty state. */
    void clear();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Named counters grouped under one component, for run reports. */
class StatGroup
{
  public:
    /** Add @p v to counter @p name (creating it at zero). */
    void inc(const std::string& name, double v = 1.0);

    /** Set counter @p name to @p v. */
    void set(const std::string& name, double v);

    /** Value of counter @p name, or 0 when absent. */
    double get(const std::string& name) const;

    /** All counters in name order. */
    const std::map<std::string, double>& all() const { return vals_; }

    /** Merge counters from @p other by addition. */
    void merge(const StatGroup& other);

  private:
    std::map<std::string, double> vals_;
};

} // namespace vp

#endif // VP_COMMON_STATS_HH

/**
 * @file
 * Lightweight statistics containers used throughout the simulator.
 */

#ifndef VP_COMMON_STATS_HH
#define VP_COMMON_STATS_HH

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace vp {

/** Running summary (count / sum / min / max / mean) of a scalar. */
class Accumulator
{
  public:
    /** Fold one sample into the summary. */
    void add(double v);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator& other);

    /** Number of samples folded in so far. */
    std::uint64_t count() const { return count_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Smallest sample, or +inf when empty. */
    double min() const { return min_; }

    /** Largest sample, or -inf when empty. */
    double max() const { return max_; }

    /** Arithmetic mean, or 0 when empty. */
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    /** Reset to the empty state. */
    void clear();

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Named counters grouped under one component, for run reports. */
class StatGroup
{
  public:
    /** Add @p v to counter @p name (creating it at zero). */
    void inc(const std::string& name, double v = 1.0);

    /** Set counter @p name to @p v. */
    void set(const std::string& name, double v);

    /** Value of counter @p name, or 0 when absent. */
    double get(const std::string& name) const;

    /** All counters in name order. */
    const std::map<std::string, double>& all() const { return vals_; }

    /** Merge counters from @p other by addition. */
    void merge(const StatGroup& other);

  private:
    std::map<std::string, double> vals_;
};

} // namespace vp

#endif // VP_COMMON_STATS_HH

#include "serve/admission.hh"

#include <algorithm>

namespace vp {

AdmissionController::AdmissionController(const ServeConfig& cfg)
    : cfg_(cfg)
{
    cfg_.validate();
    auto n = cfg_.tenants.size();
    buckets_.resize(n);
    rooms_.resize(n);
    // Buckets start full: a serving run may admit an initial burst,
    // exactly like a freshly provisioned quota.
    for (std::size_t t = 0; t < n; ++t)
        buckets_[t].tokens = cfg_.tenants[t].burstTokens;
    for (std::size_t t = 0; t < n; ++t)
        order_.push_back(static_cast<int>(t));
    std::stable_sort(order_.begin(), order_.end(),
                     [&](int a, int b) {
                         return cfg_.tenants[static_cast<std::size_t>(
                                    a)].priority
                             > cfg_.tenants[static_cast<std::size_t>(
                                   b)].priority;
                     });
}

void
AdmissionController::offer(const std::vector<Request>& arrivals)
{
    for (const Request& q : arrivals)
        rooms_[static_cast<std::size_t>(q.tenant)].push_back(q);
}

AdmissionController::Decision
AdmissionController::admitAt(Tick now)
{
    Decision d;
    // Refill first, for every tenant — time passes for idle buckets
    // too, whether or not they have arrivals this epoch.
    for (std::size_t t = 0; t < buckets_.size(); ++t) {
        Bucket& b = buckets_[t];
        const TenantConfig& tc = cfg_.tenants[t];
        if (now > b.refilledAt) {
            b.tokens = std::min(
                tc.burstTokens,
                b.tokens + tc.tokensPerCycle * (now - b.refilledAt));
            b.refilledAt = now;
        }
    }
    // Drain the rooms priority-major; the global cap (when set)
    // spends on high-priority tenants first, which is what makes the
    // ordering observable even when every bucket has credit.
    std::uint64_t budget = cfg_.maxAdmitPerEpoch;
    for (int t : order_) {
        auto& room = rooms_[static_cast<std::size_t>(t)];
        Bucket& b = buckets_[static_cast<std::size_t>(t)];
        while (!room.empty() && b.tokens >= 1.0
               && (cfg_.maxAdmitPerEpoch == 0 || budget > 0)) {
            b.tokens -= 1.0;
            if (budget > 0)
                --budget;
            d.admitted.push_back(room.front());
            room.pop_front();
        }
    }
    // Overload policy for whatever is still waiting.
    for (int t : order_) {
        auto& room = rooms_[static_cast<std::size_t>(t)];
        if (cfg_.overload == OverloadPolicy::Shed) {
            for (const Request& q : room)
                d.shed.push_back(q);
            room.clear();
        } else if (cfg_.queueCapacity > 0) {
            // Bounded waiting room: the newest arrivals overflow.
            while (room.size() > cfg_.queueCapacity) {
                d.shed.push_back(room.back());
                room.pop_back();
            }
        }
    }
    return d;
}

double
AdmissionController::tokens(int tenant) const
{
    return buckets_[static_cast<std::size_t>(tenant)].tokens;
}

std::size_t
AdmissionController::waiting(int tenant) const
{
    return rooms_[static_cast<std::size_t>(tenant)].size();
}

std::size_t
AdmissionController::waitingTotal() const
{
    std::size_t n = 0;
    for (const auto& room : rooms_)
        n += room.size();
    return n;
}

} // namespace vp

/**
 * @file
 * Token-bucket admission control with per-tenant quotas and
 * priorities.
 *
 * Each tenant owns one bucket: capacity burstTokens, refill rate
 * tokensPerCycle, one token per admitted request. Arrivals wait in a
 * per-tenant room until the next epoch boundary, where admitAt()
 * refills the buckets and drains the rooms in (priority desc,
 * tenant index asc) order, FIFO within a tenant. Whatever credit
 * cannot cover is handled by the overload policy: Shed rejects it
 * immediately; Queue keeps up to queueCapacity requests waiting per
 * tenant and sheds the newest overflow.
 *
 * The bucket is the quota-isolation mechanism: a flooding tenant
 * exhausts its own tokens and its surplus is shed (or queued), while
 * every other tenant's bucket — and therefore its admission rate —
 * is untouched.
 */

#ifndef VP_SERVE_ADMISSION_HH
#define VP_SERVE_ADMISSION_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/serve.hh"

namespace vp {

/** Epoch-boundary token-bucket admission controller. */
class AdmissionController
{
  public:
    explicit AdmissionController(const ServeConfig& cfg);

    /** Park @p arrivals in their tenants' waiting rooms. */
    void offer(const std::vector<Request>& arrivals);

    /** Epoch-boundary outcome. */
    struct Decision
    {
        /** In admission order (priority-major, FIFO within tenant). */
        std::vector<Request> admitted;
        /** In shed order. */
        std::vector<Request> shed;
    };

    /**
     * Refill every bucket up to @p now and admit what credit (and
     * the global per-epoch cap) allows; apply the overload policy to
     * the remainder.
     */
    Decision admitAt(Tick now);

    /** Current token balance of @p tenant. */
    double tokens(int tenant) const;

    /** Requests of @p tenant still waiting for admission. */
    std::size_t waiting(int tenant) const;

    /** Waiting requests across every tenant. */
    std::size_t waitingTotal() const;

  private:
    struct Bucket
    {
        double tokens = 0.0;
        Tick refilledAt = 0.0;
    };

    const ServeConfig cfg_;
    /** Tenant indices in admission order (priority desc, index asc). */
    std::vector<int> order_;
    std::vector<Bucket> buckets_;
    std::vector<std::deque<Request>> rooms_;
};

} // namespace vp

#endif // VP_SERVE_ADMISSION_HH

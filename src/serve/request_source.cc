#include "serve/request_source.hh"

#include <cmath>
#include <limits>

namespace vp {

namespace {
constexpr Tick kNever = std::numeric_limits<Tick>::infinity();
} // namespace

RequestSource::RequestSource(const ServeConfig& cfg)
    : cfg_(cfg)
{
    cfg_.validate();
    std::uint64_t ordinal = 0;
    for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
        const TenantConfig& tc = cfg_.tenants[t];
        for (std::size_t c = 0; c < tc.clients.size(); ++c) {
            Client cl;
            cl.tenant = static_cast<int>(t);
            cl.index = static_cast<int>(c);
            cl.cfg = tc.clients[c];
            // One PCG32 stream per client: the sequence selector is
            // the global client ordinal, so adding a tenant never
            // perturbs the streams of the ones before it.
            cl.rng = Rng(cfg_.seed, 0x5e221ce5ULL + ordinal);
            ++ordinal;
            // First arrival: open-loop draws an interarrival gap
            // from t=0; closed-loop staggers clients by one think
            // draw (no completion exists yet to react to).
            double gap = cl.cfg.kind == ArrivalKind::OpenLoop
                ? expDraw(cl.rng, cl.cfg.meanInterarrivalCycles)
                : expDraw(cl.rng, cl.cfg.thinkCycles);
            cl.next = gap;
            if (retired(cl, cl.next))
                cl.next = kNever;
            clients_.push_back(std::move(cl));
        }
    }
}

double
RequestSource::expDraw(Rng& rng, double mean)
{
    if (mean <= 0.0)
        return 0.0;
    // Inverse-CDF exponential; nextDouble() < 1 keeps log() finite.
    return -mean * std::log(1.0 - rng.nextDouble());
}

bool
RequestSource::retired(const Client& c, Tick at) const
{
    if (c.cfg.maxRequests > 0 && c.issued >= c.cfg.maxRequests)
        return true;
    return cfg_.horizonCycles > 0.0 && at > cfg_.horizonCycles;
}

void
RequestSource::scheduleNext(Client& c, Tick at)
{
    if (c.cfg.kind == ArrivalKind::ClosedLoop) {
        // Nothing to schedule until the outstanding request finishes.
        c.waiting = true;
        c.next = kNever;
        return;
    }
    Tick next = at + expDraw(c.rng, c.cfg.meanInterarrivalCycles);
    c.next = retired(c, next) ? kNever : next;
}

void
RequestSource::poll(Tick now, std::vector<Request>& out)
{
    // Deterministic time-ordered merge: repeatedly emit the earliest
    // due arrival (ties break on the lower client ordinal), so ids
    // are dense in arrival order regardless of the epoch length.
    for (;;) {
        std::size_t best = clients_.size();
        for (std::size_t i = 0; i < clients_.size(); ++i) {
            if (clients_[i].next > now)
                continue;
            if (best == clients_.size()
                || clients_[i].next < clients_[best].next)
                best = i;
        }
        if (best == clients_.size())
            return;
        Client& c = clients_[best];
        Request q;
        q.tenant = c.tenant;
        q.client = c.index;
        q.id = nextId_++;
        q.arrival = c.next;
        out.push_back(q);
        ++c.issued;
        scheduleNext(c, q.arrival);
    }
}

void
RequestSource::noteRequestDone(int tenant, int client, Tick t)
{
    for (Client& c : clients_) {
        if (c.tenant != tenant || c.index != client || !c.waiting)
            continue;
        c.waiting = false;
        if (retired(c, t)) {
            c.next = kNever;
            return;
        }
        Tick next = t + expDraw(c.rng, c.cfg.thinkCycles);
        c.next = retired(c, next) ? kNever : next;
        return;
    }
}

bool
RequestSource::exhausted() const
{
    for (const Client& c : clients_)
        if (c.waiting || c.next != kNever)
            return false;
    return true;
}

} // namespace vp

/**
 * @file
 * Deterministic request generation for serving runs.
 *
 * Every client owns a PCG32 stream derived from (ServeConfig::seed,
 * client ordinal), so the full arrival sequence is a pure function
 * of the seed and the times fed into poll()/noteRequestDone() — two
 * identical serving runs generate identical requests with identical
 * ids, which is what makes serving replay bit-exact.
 */

#ifndef VP_SERVE_REQUEST_SOURCE_HH
#define VP_SERVE_REQUEST_SOURCE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "serve/serve.hh"

namespace vp {

/** Generates the merged arrival stream of every configured client. */
class RequestSource
{
  public:
    explicit RequestSource(const ServeConfig& cfg);

    /**
     * Append every arrival with time <= @p now to @p out, in
     * (time, client ordinal) order, assigning dense ids in that
     * order. Clients may contribute several arrivals per call
     * (open-loop bursts between epochs).
     */
    void poll(Tick now, std::vector<Request>& out);

    /**
     * A request of (tenant, client) finished at @p t — completed or
     * shed. Closed-loop clients draw their think time and schedule
     * the next arrival; open-loop clients ignore it.
     */
    void noteRequestDone(int tenant, int client, Tick t);

    /** No arrivals are due now or can ever become due: every client
     *  is past its horizon/request budget and none is waiting on a
     *  completion. */
    bool exhausted() const;

    /** Requests generated so far. */
    std::uint64_t generated() const { return nextId_; }

  private:
    struct Client
    {
        int tenant = 0;
        int index = 0; //!< client index within the tenant
        ClientConfig cfg;
        Rng rng;
        /** Next arrival time; infinity when retired or (closed-loop)
         *  waiting on a completion. */
        Tick next = 0.0;
        /** Closed-loop: a request is outstanding. */
        bool waiting = false;
        std::uint64_t issued = 0;
    };

    /** Exponential draw around @p mean (inverse-CDF of nextDouble,
     *  bit-stable across platforms). */
    static double expDraw(Rng& rng, double mean);

    /** True when the client may not issue any further request. */
    bool retired(const Client& c, Tick at) const;

    /** Advance @p c past an issued arrival at @p at. */
    void scheduleNext(Client& c, Tick at);

    const ServeConfig cfg_;
    std::vector<Client> clients_;
    std::uint64_t nextId_ = 0;
};

} // namespace vp

#endif // VP_SERVE_REQUEST_SOURCE_HH

/**
 * @file
 * ServingEngine: a long-lived engine run fed by continuous request
 * ingest.
 *
 * The engine's run loop already pauses on zero-sim-event boundaries
 * for the watchdog, the metrics sampler and the adaptive controller;
 * serving rides the same slicing. At every epoch boundary the
 * session polls the deterministic client generators, pushes the
 * arrivals through the token-bucket admission controller, seeds the
 * admitted requests into the live pipeline, and re-wakes any kernels
 * that retired while the pipeline idled between bursts.
 *
 * Completion detection rides provenance: ServingEngine arms the
 * tracker (honoring a caller-configured sampling stride for the
 * pre-seeded app items; request roots are always tracked), the
 * seeder stamps every seeded item with a fresh lineage id, and a
 * request is complete when all of its lineages close. End-to-end
 * latency (admission -> last terminal) lands in per-tenant
 * "serve/e2e/<tenant>" histograms and in RunResult::serving with
 * exact nearest-rank p50/p99 SLO verdicts and, for tenants with a
 * per-request deadlineCycles, a deadline hit-rate accounted the
 * moment each lineage closes.
 */

#ifndef VP_SERVE_SERVING_ENGINE_HH
#define VP_SERVE_SERVING_ENGINE_HH

#include <vector>

#include "core/engine.hh"
#include "serve/serve.hh"

namespace vp {

/** Turns admitted requests into pipeline seed items. */
class ServingWorkload
{
  public:
    virtual ~ServingWorkload() = default;

    /** The application run under serving (pipeline, reset, stages). */
    virtual AppDriver& driver() = 0;

    /**
     * Seed the pipeline items of one admitted request. Every
     * insert<>() the implementation makes is stamped with a fresh
     * provenance lineage of the request; the request completes when
     * all of them close. Seeding nothing completes the request
     * immediately with zero latency.
     */
    virtual void seedRequest(Seeder& seeder, const Request& req) = 0;
};

/**
 * Generic workload over any AppDriver: request k re-seeds the
 * driver's flow (k mod flowCount). This is what `inspect_app
 * --serve` and the serving bench use to serve the registry apps.
 */
class FlowServingWorkload : public ServingWorkload
{
  public:
    explicit FlowServingWorkload(AppDriver& d)
        : driver_(d)
    {
    }

    AppDriver& driver() override { return driver_; }

    void
    seedRequest(Seeder& seeder, const Request& req) override
    {
        int flows = driver_.flowCount();
        int flow = flows > 0
            ? static_cast<int>(req.id % static_cast<std::uint64_t>(
                                   flows))
            : 0;
        driver_.seedFlow(seeder, flow);
    }

  private:
    AppDriver& driver_;
};

/**
 * Summarize one tenant's completed-request latencies into its
 * TenantServeStats (percentiles, SLO verdicts, deadline misses).
 * Exposed so tests can hand-compute the expected verdicts.
 */
TenantServeStats summarizeTenantLatencies(const TenantConfig& tc,
                                          std::vector<double> lats);

/**
 * Runs an Engine in serving mode. A disabled config (no tenants)
 * degenerates to the plain one-shot run — event-for-event identical
 * to an engine that never heard of serving.
 */
class ServingEngine
{
  public:
    /** @p engine is borrowed and reconfigured around each run (its
     *  observability config is saved and restored). */
    ServingEngine(Engine& engine, ServeConfig cfg);

    /** Serve @p wl on a single device. */
    RunResult run(ServingWorkload& wl, const PipelineConfig& config);

    /** Serve @p wl sharded over the engine's device group. */
    RunResult runSharded(ServingWorkload& wl,
                         const PipelineConfig& config,
                         const ShardPlan& plan);

    const ServeConfig& config() const { return cfg_; }

  private:
    RunResult dispatch(ServingWorkload& wl,
                       const PipelineConfig& config,
                       const ShardPlan* plan);

    Engine& engine_;
    ServeConfig cfg_;
};

} // namespace vp

#endif // VP_SERVE_SERVING_ENGINE_HH

#include "serve/serving_engine.hh"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/serve_hook.hh"
#include "obs/obs.hh"
#include "serve/admission.hh"
#include "serve/request_source.hh"

namespace vp {

TenantServeStats
summarizeTenantLatencies(const TenantConfig& tc,
                         std::vector<double> lats)
{
    TenantServeStats ts;
    ts.name = tc.name;
    ts.sloP50Cycles = tc.sloP50Cycles;
    ts.sloP99Cycles = tc.sloP99Cycles;
    ts.deadlineCycles = tc.deadlineCycles;
    ts.completed = lats.size();
    std::sort(lats.begin(), lats.end());
    if (!lats.empty()) {
        ts.p50Cycles = nearestRank(lats, 0.50);
        ts.p99Cycles = nearestRank(lats, 0.99);
        double sum = 0.0;
        for (double v : lats)
            sum += v;
        ts.meanCycles = sum / static_cast<double>(lats.size());
        ts.maxCycles = lats.back();
    }
    if (tc.sloP50Cycles > 0.0)
        ts.sloP50Ok = ts.p50Cycles <= tc.sloP50Cycles;
    if (tc.sloP99Cycles > 0.0)
        ts.sloP99Ok = ts.p99Cycles <= tc.sloP99Cycles;
    // A per-request deadline takes over miss accounting; without one
    // the p99 SLO target keeps its historical role as the miss line.
    // Strict `>` on both: finishing exactly at the target is a hit,
    // consistent with the `p99 <= target` verdicts above.
    double missLine = tc.deadlineCycles > 0.0 ? tc.deadlineCycles
                                              : tc.sloP99Cycles;
    if (missLine > 0.0) {
        for (double v : lats)
            if (v > missLine)
                ++ts.deadlineMisses;
    }
    if (tc.deadlineCycles > 0.0 && ts.completed > 0) {
        ts.deadlineHitRate =
            static_cast<double>(ts.completed - ts.deadlineMisses)
            / static_cast<double>(ts.completed);
    }
    return ts;
}

namespace {

/**
 * The concrete serving session: generators + admission + per-request
 * lineage accounting, driven by the engine at epoch boundaries.
 */
class ServeSessionImpl final : public ServeSession
{
  public:
    ServeSessionImpl(const ServeConfig& cfg, ServingWorkload& wl)
        : cfg_(cfg), wl_(wl), source_(cfg), admission_(cfg)
    {
        tenants_.resize(cfg_.tenants.size());
    }

    Tick epochCycles() const override { return cfg_.epochCycles; }

    void
    begin(const ServeBinding& b) override
    {
        b_ = b;
        prov_ = b.obs->provenancePtr();
        lastTraffic_ = b_.queueTraffic ? b_.queueTraffic() : 0;
    }

    bool
    epoch(Tick now) override
    {
        ServeEpochStats ep;
        ep.at = now;

        arrivals_.clear();
        source_.poll(now, arrivals_);
        for (const Request& q : arrivals_)
            ++acc(q).offered;
        ep.arrivals = arrivals_.size();

        admission_.offer(arrivals_);
        AdmissionController::Decision d = admission_.admitAt(now);
        for (const Request& q : d.shed) {
            ++acc(q).shed;
            // A shed is an immediate (rejection) response: the
            // closed-loop client thinks and comes back; open-loop
            // clients ignore the signal.
            source_.noteRequestDone(q.tenant, q.client, now);
        }
        bool seeded = false;
        for (const Request& q : d.admitted) {
            ++acc(q).admitted;
            std::size_t before = prov_->records().size();
            // Request roots are always tracked — lineage closure is
            // the completion signal — even when the caller sampled
            // the tracker down for the pre-seeded app items.
            prov_->setAlwaysTrack(true);
            wl_.seedRequest(*b_.seeder, q);
            prov_->setAlwaysTrack(false);
            std::size_t after = prov_->records().size();
            // The pipeline is paused during seeding, so every record
            // minted here is a seed — a root of this request.
            if (after == before) {
                // Nothing seeded: the request is trivially done.
                acc(q).latencies.push_back(0.0);
                ++acc(q).completed;
                source_.noteRequestDone(q.tenant, q.client, now);
                continue;
            }
            requests_.push_back(OpenRequest{
                q.tenant, q.client, now,
                static_cast<int>(after - before)});
            for (std::size_t id = before + 1; id <= after; ++id)
                rootToReq_[id] = requests_.size() - 1;
            ++outstanding_;
            seeded = true;
        }
        ep.admitted = d.admitted.size();
        ep.shed = d.shed.size();
        if (seeded && b_.wake)
            b_.wake();

        ep.completed = drainCompletions();

        if (b_.queueTraffic) {
            std::uint64_t t = b_.queueTraffic();
            ep.queueTraffic = t - lastTraffic_;
            lastTraffic_ = t;
        }
        epochLog_.push_back(ep);
        ++epochs_;

        return !source_.exhausted() || admission_.waitingTotal() > 0
            || outstanding_ > 0;
    }

    void
    finish(RunResult& r, Tick end) override
    {
        // Lineages may close between the last epoch boundary and the
        // final drain.
        drainCompletions();

        auto stats = std::make_shared<ServingRunStats>();
        stats->epochs = epochs_;
        stats->epochCycles = cfg_.epochCycles;
        stats->epochLog = epochLog_;
        stats->outstanding = outstanding_;
        std::uint64_t deadlineCompleted = 0;
        for (std::size_t t = 0; t < cfg_.tenants.size(); ++t) {
            const TenantConfig& tc = cfg_.tenants[t];
            TenantAcc& a = tenants_[t];
            TenantServeStats ts =
                summarizeTenantLatencies(tc, a.latencies);
            ts.name = tenantName(static_cast<int>(t));
            ts.offered = a.offered;
            ts.admitted = a.admitted;
            ts.shed = a.shed;
            ts.completed = a.completed;
            ts.outstanding = a.admitted - a.completed;
            if (tc.deadlineCycles > 0.0) {
                // The close-time count is authoritative (it saw each
                // latency the tick the lineage closed); the summary's
                // recomputation from the latency list must agree.
                ts.deadlineMisses = a.deadlineMisses;
                stats->deadlineMisses += a.deadlineMisses;
                deadlineCompleted += a.completed;
            }
            stats->offered += ts.offered;
            stats->admitted += ts.admitted;
            stats->shed += ts.shed;
            stats->completed += ts.completed;
            stats->tenants.push_back(std::move(ts));
        }
        if (deadlineCompleted > 0) {
            stats->deadlineHitRate =
                static_cast<double>(deadlineCompleted
                                    - stats->deadlineMisses)
                / static_cast<double>(deadlineCompleted);
        }
        if (end > 0.0)
            stats->throughputPerMCycle =
                static_cast<double>(stats->completed) * 1e6 / end;

        if (b_.obs) {
            for (std::size_t t = 0; t < tenants_.size(); ++t) {
                Histogram& h = b_.obs->metrics.histogram(
                    "serve/e2e/" + tenantName(static_cast<int>(t)),
                    16.0, 1.25);
                for (double v : tenants_[t].latencies)
                    h.add(v);
            }
        }
        r.serving = std::move(stats);
    }

  private:
    struct OpenRequest
    {
        int tenant = 0;
        int client = 0;
        Tick admitted = 0.0;
        /** Lineages still open; done when it reaches 0. */
        int openRoots = 0;
    };

    struct TenantAcc
    {
        std::uint64_t offered = 0;
        std::uint64_t admitted = 0;
        std::uint64_t shed = 0;
        std::uint64_t completed = 0;
        /** Misses against the tenant's deadlineCycles, counted the
         *  moment each lineage closes. */
        std::uint64_t deadlineMisses = 0;
        std::vector<double> latencies;
    };

    TenantAcc& acc(const Request& q)
    {
        return tenants_[static_cast<std::size_t>(q.tenant)];
    }

    std::string
    tenantName(int t) const
    {
        const std::string& n =
            cfg_.tenants[static_cast<std::size_t>(t)].name;
        return n.empty() ? "tenant" + std::to_string(t) : n;
    }

    /** Fold closed lineages into request completions. @return the
     *  requests that finished. */
    std::uint64_t
    drainCompletions()
    {
        std::uint64_t finished = 0;
        for (const ProvenanceTracker::ClosedRoot& cr :
             prov_->drainClosedRoots()) {
            auto it = rootToReq_.find(cr.root);
            if (it == rootToReq_.end())
                continue;
            OpenRequest& rq = requests_[it->second];
            if (--rq.openRoots > 0)
                continue;
            // Closed roots drain in close order, so this root's
            // close time is the request's last-terminal time.
            double lat = cr.closedAt - rq.admitted;
            TenantAcc& a =
                tenants_[static_cast<std::size_t>(rq.tenant)];
            a.latencies.push_back(lat);
            ++a.completed;
            // Deadline verdicts are known the moment the lineage
            // closes (strict >: finishing exactly on the deadline is
            // a hit).
            double dl = cfg_.tenants[static_cast<std::size_t>(
                                         rq.tenant)].deadlineCycles;
            if (dl > 0.0 && lat > dl)
                ++a.deadlineMisses;
            --outstanding_;
            ++finished;
            source_.noteRequestDone(rq.tenant, rq.client,
                                    cr.closedAt);
        }
        return finished;
    }

    const ServeConfig cfg_;
    ServingWorkload& wl_;
    RequestSource source_;
    AdmissionController admission_;

    ServeBinding b_;
    ProvenanceTracker* prov_ = nullptr;

    std::vector<TenantAcc> tenants_;
    std::vector<OpenRequest> requests_;
    /** Lineage root id -> index into requests_. */
    std::unordered_map<std::uint64_t, std::size_t> rootToReq_;
    std::uint64_t outstanding_ = 0;

    std::vector<Request> arrivals_;
    std::vector<ServeEpochStats> epochLog_;
    std::uint64_t epochs_ = 0;
    std::uint64_t lastTraffic_ = 0;
};

} // namespace

ServingEngine::ServingEngine(Engine& engine, ServeConfig cfg)
    : engine_(engine), cfg_(std::move(cfg))
{
    if (cfg_.enabled())
        cfg_.validate();
}

RunResult
ServingEngine::run(ServingWorkload& wl, const PipelineConfig& config)
{
    return dispatch(wl, config, nullptr);
}

RunResult
ServingEngine::runSharded(ServingWorkload& wl,
                          const PipelineConfig& config,
                          const ShardPlan& plan)
{
    return dispatch(wl, config, &plan);
}

RunResult
ServingEngine::dispatch(ServingWorkload& wl,
                        const PipelineConfig& config,
                        const ShardPlan* plan)
{
    // Disabled serving is the identity: the plain one-shot run, with
    // nothing armed and nothing attached — event-for-event identical
    // to an engine that never saw a ServeConfig.
    if (!cfg_.enabled()) {
        return plan
            ? engine_.runSharded(wl.driver(), config, *plan)
            : engine_.run(wl.driver(), config);
    }

    // Serving rides provenance lineage closure for completion
    // detection; arm the tracker while preserving everything the
    // caller configured — including a sampling stride > 1, which
    // then applies to the pre-seeded app items only (request roots
    // are force-tracked at seeding time). RAII so the borrowed
    // engine is restored on every path.
    struct Restore
    {
        Engine& e;
        std::optional<ObsConfig> saved;
        ~Restore()
        {
            e.clearServeSession();
            if (saved)
                e.setObservability(*saved);
            else
                e.clearObservability();
        }
    } restore{engine_, engine_.observability()};

    ObsConfig oc = restore.saved.value_or(ObsConfig{});
    oc.provenance = true;
    engine_.setObservability(oc);

    ServeSessionImpl session(cfg_, wl);
    engine_.setServeSession(&session);
    return plan ? engine_.runSharded(wl.driver(), config, *plan)
                : engine_.run(wl.driver(), config);
}

} // namespace vp

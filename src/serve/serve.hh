/**
 * @file
 * Serving-layer configuration: tenants, clients and the admission
 * policy of a pipeline-as-a-service run.
 *
 * A ServeConfig describes N simulated clients split over tenants.
 * Clients generate requests with deterministic seeded generators —
 * open-loop (Poisson-like exponential interarrival, an offered load
 * independent of service latency) or closed-loop (each client waits
 * for its previous request to finish, thinks, then issues the next)
 * — so every arrival time is a pure function of (seed, clock) and a
 * serving run replays bit-identically.
 *
 * Requests pass a token-bucket admission controller (per-tenant
 * rate + burst, priority-ordered draining) before they may seed
 * pipeline work; what the bucket cannot cover is shed immediately or
 * parked in a bounded per-tenant queue, per the overload policy.
 * Admission happens ahead of the queueing layer's backpressure
 * credits: an admitted request still honours bounded stage queues
 * when it seeds.
 */

#ifndef VP_SERVE_SERVE_HH
#define VP_SERVE_SERVE_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hh"
#include "sim/simulator.hh"

namespace vp {

/** How a client schedules its next request. */
enum class ArrivalKind
{
    /** Exponential interarrival around meanInterarrivalCycles,
     *  independent of completions (offered load is fixed). */
    OpenLoop,
    /** Next request issues one think time after the previous one
     *  finishes (completion or shed). */
    ClosedLoop,
};

/** One simulated client of a tenant. */
struct ClientConfig
{
    ArrivalKind kind = ArrivalKind::OpenLoop;
    /** Open-loop: mean interarrival gap, cycles. */
    double meanInterarrivalCycles = 1000.0;
    /** Closed-loop: mean think time between requests, cycles. */
    double thinkCycles = 1000.0;
    /** Stop after this many requests (0 = bounded by the horizon
     *  only). */
    std::uint64_t maxRequests = 0;
};

/** One tenant: an admission quota shared by its clients. */
struct TenantConfig
{
    std::string name;
    /** Higher priorities admit first at each epoch boundary. */
    int priority = 0;
    /** Token-bucket refill rate, tokens (requests) per cycle. */
    double tokensPerCycle = 0.01;
    /** Token-bucket capacity: the largest admissible burst. */
    double burstTokens = 8.0;
    /** p50 / p99 end-to-end latency SLO targets, cycles (0 = no
     *  target; verdicts then stay vacuously true). */
    double sloP50Cycles = 0.0;
    double sloP99Cycles = 0.0;
    /**
     * Per-request completion deadline, cycles (0 = none). A request
     * completing after more than this many cycles is a deadline miss,
     * accounted the moment its lineage closes; finishing exactly at
     * the deadline is a hit, matching the `p99 <= target` SLO
     * convention. Frame-clock workloads (vidstream) set this to the
     * frame budget so the hit-rate is the per-frame deadline metric.
     */
    double deadlineCycles = 0.0;
    std::vector<ClientConfig> clients;
};

/** What happens to arrivals the token bucket cannot cover. */
enum class OverloadPolicy
{
    /** Reject immediately (a fast 429-style response). */
    Shed,
    /** Park in a bounded per-tenant FIFO; overflow sheds the
     *  newest arrival. */
    Queue,
};

/** Full serving-run description. Default-constructed = disabled. */
struct ServeConfig
{
    /** Master seed for every client generator. */
    std::uint64_t seed = 1;
    /** Epoch period: arrivals batch into pipeline seeds on these
     *  zero-sim-event boundaries. */
    double epochCycles = 1000.0;
    /** Stop generating arrivals past this time (0 = unbounded; every
     *  generator then needs maxRequests). */
    double horizonCycles = 0.0;
    OverloadPolicy overload = OverloadPolicy::Shed;
    /** Per-tenant waiting-room bound under OverloadPolicy::Queue
     *  (0 = unbounded). */
    std::size_t queueCapacity = 0;
    /** Group-wide admission cap per epoch (0 = unlimited). Makes
     *  priority ordering observable even when every bucket has
     *  credit. */
    std::uint64_t maxAdmitPerEpoch = 0;
    std::vector<TenantConfig> tenants;

    /** A config with no tenants disables serving entirely. */
    bool enabled() const { return !tenants.empty(); }

    void
    validate() const
    {
        VP_CHECK(epochCycles > 0.0, ErrorCode::Config,
                 "ServeConfig.epochCycles must be > 0");
        VP_CHECK(horizonCycles >= 0.0, ErrorCode::Config,
                 "ServeConfig.horizonCycles must be >= 0");
        for (const TenantConfig& t : tenants) {
            VP_CHECK(!t.clients.empty(), ErrorCode::Config,
                     "tenant `" << t.name << "` has no clients");
            VP_CHECK(t.tokensPerCycle >= 0.0, ErrorCode::Config,
                     "tenant `" << t.name
                                << "` has a negative token rate");
            VP_CHECK(t.burstTokens >= 1.0, ErrorCode::Config,
                     "tenant `" << t.name
                                << "` needs burstTokens >= 1 to ever "
                                   "admit a request");
            VP_CHECK(t.deadlineCycles >= 0.0, ErrorCode::Config,
                     "tenant `" << t.name
                                << "` has a negative deadline");
            for (const ClientConfig& c : t.clients) {
                if (c.kind == ArrivalKind::OpenLoop) {
                    VP_CHECK(c.meanInterarrivalCycles > 0.0,
                             ErrorCode::Config,
                             "open-loop client of tenant `" << t.name
                                 << "` needs a positive mean "
                                    "interarrival");
                } else {
                    VP_CHECK(c.thinkCycles >= 0.0, ErrorCode::Config,
                             "closed-loop client of tenant `" << t.name
                                 << "` has a negative think time");
                }
                VP_CHECK(horizonCycles > 0.0 || c.maxRequests > 0,
                         ErrorCode::Config,
                         "client of tenant `" << t.name
                             << "` is unbounded: set horizonCycles "
                                "or maxRequests");
            }
        }
    }
};

/** One generated request. */
struct Request
{
    /** Tenant index into ServeConfig::tenants. */
    int tenant = 0;
    /** Client index within the tenant. */
    int client = 0;
    /** Global arrival ordinal (dense, in arrival order). */
    std::uint64_t id = 0;
    /** Generation time, cycles. */
    Tick arrival = 0.0;
};

/**
 * Exact nearest-rank percentile of @p sorted (ascending):
 * the smallest element with at least ceil(q * n) values <= it.
 * 0 for an empty sample. The serving layer uses it for SLO verdicts
 * so tests can hand-compute the expected value.
 */
inline double
nearestRank(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::max<std::size_t>(rank, 1);
    rank = std::min(rank, sorted.size());
    return sorted[rank - 1];
}

} // namespace vp

#endif // VP_SERVE_SERVE_HH

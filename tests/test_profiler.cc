/**
 * @file
 * Unit tests for the auto-tuner's profiling component.
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"
#include "tuner/profiler.hh"

using namespace vp;
using namespace vp::test;

TEST(Profiler, CollectsPerStageOccupancy)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto p = profileApp(engine, app);
    ASSERT_EQ(p.stages.size(), 3u);
    // gen: 32 regs x 256 threads -> 8 blocks (thread-capped).
    EXPECT_EQ(p.stages[0].maxBlocksPerSm, 8);
    // work: 48 regs x 256 -> 5 blocks (register-capped).
    EXPECT_EQ(p.stages[1].maxBlocksPerSm, 5);
    EXPECT_EQ(p.stages[0].name, "gen");
}

TEST(Profiler, CountsItemsPerStage)
{
    LinearApp app(2, 40);
    Engine engine(DeviceConfig::k20c());
    auto p = profileApp(engine, app);
    EXPECT_EQ(p.stages[0].items, 80u);
    EXPECT_EQ(p.stages[2].items, 80u);
}

TEST(Profiler, WorkReflectsStageCosts)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto p = profileApp(engine, app);
    // The middle stage is the most expensive per item (460 vs 220 vs
    // 130 insts) and has equal item counts.
    EXPECT_GT(p.stages[1].totalWork, p.stages[0].totalWork);
    EXPECT_GT(p.stages[1].totalWork, p.stages[2].totalWork);
}

TEST(Profiler, WorkOfSumsStages)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto p = profileApp(engine, app);
    double total = p.workOf({0, 1, 2});
    EXPECT_NEAR(total, p.stages[0].totalWork + p.stages[1].totalWork
                + p.stages[2].totalWork, 1e-9);
    EXPECT_THROW(p.workOf({7}), FatalError);
}

TEST(Profiler, WorksOnRecursivePipelines)
{
    RecursiveApp app(12);
    Engine engine(DeviceConfig::k20c());
    auto p = profileApp(engine, app);
    // Recursion: stage 1 processes more items than were seeded.
    EXPECT_GT(p.stages[0].items, 12u);
    EXPECT_EQ(p.stages[2].items, 12u);
}

/**
 * @file
 * Small synthetic pipeline applications shared by the framework
 * tests: a linear 3-stage pipeline and the recursive 3-stage pipeline
 * of the paper's Figure 9.
 */

#ifndef VP_TESTS_TOY_APPS_HH
#define VP_TESTS_TOY_APPS_HH

#include <algorithm>
#include <vector>

#include "core/versapipe.hh"

namespace vp::test {

/** Payload used by the toy pipelines. */
struct ToyItem
{
    int value = 0;
    int flow = 0;
};

// ---------------------------------------------------------------- //
// Linear pipeline: Gen -> Work -> Sink                             //
// ---------------------------------------------------------------- //

struct LinearSink;
struct LinearWork;

/** First stage: doubles the value. */
struct LinearGen : Stage<ToyItem>
{
    LinearGen()
    {
        name = "gen";
        resources.regsPerThread = 32;
        resources.codeBytes = 4000;
        retryable = true; // pure transform

    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 200;
        c.memInsts = 20;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

/** Second stage: adds three. */
struct LinearWork : Stage<ToyItem>
{
    LinearWork()
    {
        name = "work";
        resources.regsPerThread = 48;
        resources.codeBytes = 6000;
        retryable = true; // pure transform

    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 400;
        c.memInsts = 60;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

/** Terminal stage: records results. */
struct LinearSink : Stage<ToyItem>
{
    LinearSink()
    {
        name = "sink";
        resources.regsPerThread = 24;
        resources.codeBytes = 3000;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 100;
        c.memInsts = 30;
        return c;
    }

    void
    execute(ExecContext&, ToyItem& item) override
    {
        results.push_back(item.value);
    }

    void reset() override { results.clear(); }

    std::vector<int> results;
};

inline void
LinearGen::execute(ExecContext& ctx, ToyItem& item)
{
    item.value *= 2;
    ctx.enqueue<LinearWork>(item);
}

inline void
LinearWork::execute(ExecContext& ctx, ToyItem& item)
{
    item.value += 3;
    ctx.enqueue<LinearSink>(item);
}

/** Linear 3-stage application with @p flows x @p perFlow items. */
class LinearApp : public AppDriver
{
  public:
    explicit LinearApp(int flows = 2, int perFlow = 40)
        : flows_(flows), perFlow_(perFlow)
    {
        pipe_.addStage<LinearGen>();
        pipe_.addStage<LinearWork>();
        pipe_.addStage<LinearSink>();
        pipe_.link<LinearGen, LinearWork>();
        pipe_.link<LinearWork, LinearSink>();
    }

    std::string name() const override { return "linear-toy"; }

    Pipeline& pipeline() override { return pipe_; }

    void reset() override {}

    int flowCount() const override { return flows_; }

    void
    seedFlow(Seeder& seeder, int flow) override
    {
        std::vector<ToyItem> items;
        for (int i = 0; i < perFlow_; ++i)
            items.push_back(ToyItem{flow * 1000 + i, flow});
        seeder.insert<LinearGen>(std::move(items));
    }

    double inputBytes() const override { return 1 << 16; }

    bool
    verify() override
    {
        auto& sink = pipe_.stageAs<LinearSink>();
        if (static_cast<int>(sink.results.size())
            != flows_ * perFlow_) {
            return false;
        }
        std::vector<int> got = sink.results;
        std::sort(got.begin(), got.end());
        std::vector<int> want;
        for (int f = 0; f < flows_; ++f)
            for (int i = 0; i < perFlow_; ++i)
                want.push_back((f * 1000 + i) * 2 + 3);
        std::sort(want.begin(), want.end());
        return got == want;
    }

    int totalItems() const { return flows_ * perFlow_; }

  private:
    Pipeline pipe_;
    int flows_;
    int perFlow_;
};

// ---------------------------------------------------------------- //
// Recursive pipeline (paper Fig. 9): Stage1 -> Stage1 | Stage2 ->  //
// Stage3                                                           //
// ---------------------------------------------------------------- //

struct RecStage2;
struct RecStage3;

/** Doubles until the threshold is reached (recursive). */
struct RecStage1 : Stage<ToyItem>
{
    static constexpr int kThreshold = 100;

    RecStage1()
    {
        name = "rec1";
        resources.regsPerThread = 64;
        resources.codeBytes = 8000;
        retryable = true; // pure transform

        kbkHostBytesPerItem = 16.0; // CPU recursion control in KBK
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 300;
        c.memInsts = 40;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

/** Adds one. */
struct RecStage2 : Stage<ToyItem>
{
    RecStage2()
    {
        name = "rec2";
        resources.regsPerThread = 40;
        resources.codeBytes = 5000;
        retryable = true; // pure transform

    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 500;
        c.memInsts = 80;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

/** Records results. */
struct RecStage3 : Stage<ToyItem>
{
    RecStage3()
    {
        name = "rec3";
        resources.regsPerThread = 30;
        resources.codeBytes = 4000;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 150;
        c.memInsts = 20;
        return c;
    }

    void
    execute(ExecContext&, ToyItem& item) override
    {
        results.push_back(item.value);
    }

    void reset() override { results.clear(); }

    std::vector<int> results;
};

inline void
RecStage1::execute(ExecContext& ctx, ToyItem& item)
{
    item.value *= 2;
    if (item.value >= kThreshold)
        ctx.enqueue<RecStage2>(item);
    else
        ctx.enqueue<RecStage1>(item);
}

inline void
RecStage2::execute(ExecContext& ctx, ToyItem& item)
{
    item.value += 1;
    ctx.enqueue<RecStage3>(item);
}

/** The Figure 9 recursive application. */
class RecursiveApp : public AppDriver
{
  public:
    explicit RecursiveApp(int seeds = 10)
        : seeds_(seeds)
    {
        pipe_.addStage<RecStage1>();
        pipe_.addStage<RecStage2>();
        pipe_.addStage<RecStage3>();
        pipe_.link<RecStage1, RecStage1>();
        pipe_.link<RecStage1, RecStage2>();
        pipe_.link<RecStage2, RecStage3>();
    }

    std::string name() const override { return "recursive-toy"; }

    Pipeline& pipeline() override { return pipe_; }

    void reset() override {}

    void
    seedFlow(Seeder& seeder, int) override
    {
        std::vector<ToyItem> items;
        for (int i = 1; i <= seeds_; ++i)
            items.push_back(ToyItem{i, 0});
        seeder.insert<RecStage1>(std::move(items));
    }

    bool
    verify() override
    {
        auto& sink = pipe_.stageAs<RecStage3>();
        if (static_cast<int>(sink.results.size()) != seeds_)
            return false;
        std::vector<int> got = sink.results;
        std::sort(got.begin(), got.end());
        std::vector<int> want;
        for (int i = 1; i <= seeds_; ++i) {
            int v = i;
            do {
                v *= 2; // execute() doubles before the check
            } while (v < RecStage1::kThreshold);
            want.push_back(v + 1);
        }
        std::sort(want.begin(), want.end());
        return got == want;
    }

  private:
    Pipeline pipe_;
    int seeds_;
};

} // namespace vp::test

#endif // VP_TESTS_TOY_APPS_HH

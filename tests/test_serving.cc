/**
 * @file
 * Serving-layer tests: token-bucket laws (burst cap, refill, priority
 * ordering, quota isolation), shed-vs-queue overload handling,
 * deterministic request generation (bit-identical reruns of both
 * generator kinds, poll-granularity invariance), engine integration
 * (a disabled ServeConfig run is event-for-event identical to the
 * seed, per-tenant conservation, hand-computed SLO verdicts,
 * 2-device sharded parity), the epoch-stats snapshot-delta fix, and
 * a byte-exact golden streaming report.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "apps/vidstream/vidstream_app.hh"
#include "core/engine.hh"
#include "core/shard.hh"
#include "obs/report.hh"
#include "queueing/work_queue.hh"
#include "serve/admission.hh"
#include "serve/request_source.hh"
#include "serve/serving_engine.hh"
#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

/**
 * Linear toy with a tiny input transfer. LinearApp's 64 KiB copy
 * takes ~42k cycles of host time, which would delay the first kernel
 * launch past most of the serving horizon and collapse every request
 * into one completion burst. With a small copy the kernel starts
 * almost immediately, the pipeline drains dry between request
 * bursts, and each epoch exercises the retire/re-wake path.
 */
class ServeLinearApp : public LinearApp
{
  public:
    using LinearApp::LinearApp;
    double inputBytes() const override { return 256.0; }
};

/** One tenant with one bounded client (keeps validate() happy for
 *  controller-only tests that never poll a generator). */
TenantConfig
tenantOf(const std::string& name, double rate, double burst,
         int priority = 0)
{
    TenantConfig tc;
    tc.name = name;
    tc.priority = priority;
    tc.tokensPerCycle = rate;
    tc.burstTokens = burst;
    ClientConfig cl;
    cl.maxRequests = 1;
    tc.clients.push_back(cl);
    return tc;
}

std::vector<Request>
requestsOf(int tenant, int n, Tick at = 0.0)
{
    std::vector<Request> v;
    for (int i = 0; i < n; ++i)
        v.push_back(Request{tenant, 0,
                            static_cast<std::uint64_t>(i), at});
    return v;
}

/** The standard end-to-end serving scenario: two open-loop tenants
 *  over the linear toy pipeline. */
ServeConfig
openLoopConfig()
{
    ServeConfig sc;
    sc.seed = 42;
    sc.epochCycles = 2000.0;
    sc.horizonCycles = 40000.0;
    for (int t = 0; t < 2; ++t) {
        TenantConfig tc = tenantOf("t" + std::to_string(t), 0.01, 8.0);
        tc.clients.clear();
        ClientConfig cl;
        cl.kind = ArrivalKind::OpenLoop;
        cl.meanInterarrivalCycles = 3000.0;
        tc.clients.push_back(cl);
        sc.tenants.push_back(tc);
    }
    return sc;
}

ServeConfig
closedLoopConfig()
{
    ServeConfig sc;
    sc.seed = 7;
    sc.epochCycles = 2000.0;
    TenantConfig tc = tenantOf("cl", 0.05, 4.0);
    tc.clients.clear();
    for (int c = 0; c < 3; ++c) {
        ClientConfig cl;
        cl.kind = ArrivalKind::ClosedLoop;
        cl.thinkCycles = 1500.0;
        cl.maxRequests = 6;
        tc.clients.push_back(cl);
    }
    sc.tenants.push_back(tc);
    return sc;
}

std::vector<std::uint64_t>
stageItems(const RunResult& r)
{
    std::vector<std::uint64_t> v;
    for (const StageRunStats& s : r.stages)
        v.push_back(s.items + s.deadLettered);
    return v;
}

/** Per-tenant and run-total conservation laws of a finished serve. */
void
expectServeConserved(const RunResult& r)
{
    ASSERT_TRUE(r.serving);
    const ServingRunStats& sv = *r.serving;
    std::uint64_t offered = 0, admitted = 0, shed = 0, completed = 0;
    for (const TenantServeStats& t : sv.tenants) {
        EXPECT_EQ(t.offered, t.admitted + t.shed)
            << "tenant " << t.name;
        EXPECT_EQ(t.admitted, t.completed + t.outstanding)
            << "tenant " << t.name;
        offered += t.offered;
        admitted += t.admitted;
        shed += t.shed;
        completed += t.completed;
    }
    EXPECT_EQ(sv.offered, offered);
    EXPECT_EQ(sv.admitted, admitted);
    EXPECT_EQ(sv.shed, shed);
    EXPECT_EQ(sv.completed, completed);
    EXPECT_EQ(sv.admitted, sv.completed + sv.outstanding);
}

/** Full serving fingerprint equality: clock, events, stats. */
void
expectServeEqual(const RunResult& a, const RunResult& b)
{
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(stageItems(a), stageItems(b));
    ASSERT_TRUE(a.serving && b.serving);
    const ServingRunStats& x = *a.serving;
    const ServingRunStats& y = *b.serving;
    EXPECT_EQ(x.epochs, y.epochs);
    EXPECT_EQ(x.offered, y.offered);
    EXPECT_EQ(x.admitted, y.admitted);
    EXPECT_EQ(x.shed, y.shed);
    EXPECT_EQ(x.completed, y.completed);
    EXPECT_EQ(x.outstanding, y.outstanding);
    ASSERT_EQ(x.tenants.size(), y.tenants.size());
    for (std::size_t t = 0; t < x.tenants.size(); ++t) {
        EXPECT_EQ(x.tenants[t].completed, y.tenants[t].completed);
        EXPECT_DOUBLE_EQ(x.tenants[t].p50Cycles,
                         y.tenants[t].p50Cycles);
        EXPECT_DOUBLE_EQ(x.tenants[t].p99Cycles,
                         y.tenants[t].p99Cycles);
        EXPECT_DOUBLE_EQ(x.tenants[t].meanCycles,
                         y.tenants[t].meanCycles);
    }
    ASSERT_EQ(x.epochLog.size(), y.epochLog.size());
    for (std::size_t e = 0; e < x.epochLog.size(); ++e) {
        EXPECT_DOUBLE_EQ(x.epochLog[e].at, y.epochLog[e].at);
        EXPECT_EQ(x.epochLog[e].arrivals, y.epochLog[e].arrivals);
        EXPECT_EQ(x.epochLog[e].admitted, y.epochLog[e].admitted);
        EXPECT_EQ(x.epochLog[e].shed, y.epochLog[e].shed);
        EXPECT_EQ(x.epochLog[e].completed, y.epochLog[e].completed);
        EXPECT_EQ(x.epochLog[e].queueTraffic,
                  y.epochLog[e].queueTraffic);
    }
}

} // namespace

// ----------------------- token-bucket laws ---------------------- //

TEST(Admission, BurstCapBoundsFirstEpoch)
{
    ServeConfig sc;
    sc.horizonCycles = 1.0;
    sc.tenants.push_back(tenantOf("a", 0.0, 3.0));
    AdmissionController ac(sc);

    ac.offer(requestsOf(0, 5));
    auto d = ac.admitAt(0.0);
    ASSERT_EQ(d.admitted.size(), 3u);
    EXPECT_EQ(d.shed.size(), 2u);
    // FIFO within the tenant.
    for (std::uint64_t i = 0; i < 3; ++i)
        EXPECT_EQ(d.admitted[i].id, i);
    EXPECT_LT(ac.tokens(0), 1.0);
}

TEST(Admission, RefillIsRateTimesElapsed)
{
    ServeConfig sc;
    sc.horizonCycles = 1.0;
    sc.tenants.push_back(tenantOf("a", 0.01, 8.0));
    AdmissionController ac(sc);

    // Drain the full burst at t=0...
    ac.offer(requestsOf(0, 8));
    EXPECT_EQ(ac.admitAt(0.0).admitted.size(), 8u);
    EXPECT_DOUBLE_EQ(ac.tokens(0), 0.0);

    // ...then 300 cycles refill exactly 3 tokens.
    ac.offer(requestsOf(0, 5, 300.0));
    auto d = ac.admitAt(300.0);
    EXPECT_EQ(d.admitted.size(), 3u);
    EXPECT_EQ(d.shed.size(), 2u);

    // And the refill clamps at the burst capacity.
    auto later = ac.admitAt(1e9);
    EXPECT_TRUE(later.admitted.empty());
    EXPECT_DOUBLE_EQ(ac.tokens(0), 8.0);
}

TEST(Admission, PriorityOrdersTheGlobalBudget)
{
    ServeConfig sc;
    sc.horizonCycles = 1.0;
    sc.maxAdmitPerEpoch = 2;
    sc.tenants.push_back(tenantOf("low", 0.0, 8.0, 0));
    sc.tenants.push_back(tenantOf("high", 0.0, 8.0, 5));
    AdmissionController ac(sc);

    ac.offer(requestsOf(0, 2));
    ac.offer(requestsOf(1, 2));
    auto d = ac.admitAt(0.0);
    // Both buckets have credit; the global cap spends on the
    // high-priority tenant first.
    ASSERT_EQ(d.admitted.size(), 2u);
    EXPECT_EQ(d.admitted[0].tenant, 1);
    EXPECT_EQ(d.admitted[1].tenant, 1);
    EXPECT_EQ(d.shed.size(), 2u);
    EXPECT_EQ(d.shed[0].tenant, 0);
}

TEST(Admission, QuotaIsolatesAFloodingTenant)
{
    ServeConfig sc;
    sc.horizonCycles = 1.0;
    sc.tenants.push_back(tenantOf("flood", 0.0, 4.0));
    sc.tenants.push_back(tenantOf("quiet", 0.0, 8.0));
    AdmissionController ac(sc);

    ac.offer(requestsOf(0, 20));
    ac.offer(requestsOf(1, 2));
    auto d = ac.admitAt(0.0);
    int floodAdmitted = 0, quietAdmitted = 0;
    for (const Request& q : d.admitted)
        (q.tenant == 0 ? floodAdmitted : quietAdmitted)++;
    // The flood exhausts only its own bucket; the quiet tenant's
    // admission is untouched.
    EXPECT_EQ(floodAdmitted, 4);
    EXPECT_EQ(quietAdmitted, 2);
    EXPECT_EQ(d.shed.size(), 16u);
    EXPECT_DOUBLE_EQ(ac.tokens(1), 6.0);
}

TEST(Admission, ShedVersusQueueOverload)
{
    ServeConfig shedCfg;
    shedCfg.horizonCycles = 1.0;
    shedCfg.overload = OverloadPolicy::Shed;
    shedCfg.tenants.push_back(tenantOf("a", 0.01, 2.0));
    AdmissionController shed(shedCfg);
    shed.offer(requestsOf(0, 6));
    auto ds = shed.admitAt(0.0);
    EXPECT_EQ(ds.admitted.size(), 2u);
    EXPECT_EQ(ds.shed.size(), 4u);
    EXPECT_EQ(shed.waiting(0), 0u);

    ServeConfig qCfg = shedCfg;
    qCfg.overload = OverloadPolicy::Queue;
    qCfg.queueCapacity = 3;
    AdmissionController q(qCfg);
    q.offer(requestsOf(0, 6));
    auto dq = q.admitAt(0.0);
    EXPECT_EQ(dq.admitted.size(), 2u);
    // Capacity 3 stays parked; only the newest overflow sheds.
    EXPECT_EQ(dq.shed.size(), 1u);
    EXPECT_EQ(dq.shed[0].id, 5u);
    EXPECT_EQ(q.waiting(0), 3u);

    // The parked requests admit FIFO once the bucket refills.
    auto dq2 = q.admitAt(200.0);
    ASSERT_EQ(dq2.admitted.size(), 2u);
    EXPECT_EQ(dq2.admitted[0].id, 2u);
    EXPECT_EQ(dq2.admitted[1].id, 3u);
    EXPECT_EQ(q.waiting(0), 1u);
}

// ------------------- deterministic generators ------------------- //

TEST(RequestSource, OpenLoopRerunIsBitIdentical)
{
    ServeConfig sc = openLoopConfig();
    RequestSource a(sc);
    RequestSource b(sc);
    std::vector<Request> ra, rb;
    for (Tick t = sc.epochCycles; t <= sc.horizonCycles + 1;
         t += sc.epochCycles) {
        a.poll(t, ra);
        b.poll(t, rb);
    }
    ASSERT_EQ(ra.size(), rb.size());
    ASSERT_FALSE(ra.empty());
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_EQ(ra[i].tenant, rb[i].tenant);
        EXPECT_EQ(ra[i].client, rb[i].client);
        EXPECT_EQ(ra[i].id, rb[i].id);
        EXPECT_DOUBLE_EQ(ra[i].arrival, rb[i].arrival);
        EXPECT_EQ(ra[i].id, static_cast<std::uint64_t>(i));
        if (i > 0) {
            EXPECT_GE(ra[i].arrival, ra[i - 1].arrival);
        }
    }
    EXPECT_TRUE(a.exhausted());
}

TEST(RequestSource, OpenLoopArrivalsIndependentOfPollGranularity)
{
    // Arrival times are a pure function of (seed, clock): slicing the
    // same horizon into fine or coarse polls yields the identical
    // request sequence.
    ServeConfig sc = openLoopConfig();
    RequestSource fine(sc);
    RequestSource coarse(sc);
    std::vector<Request> rf, rc;
    for (Tick t = 500.0; t <= sc.horizonCycles + 1; t += 500.0)
        fine.poll(t, rf);
    coarse.poll(sc.horizonCycles + 1, rc);
    ASSERT_EQ(rf.size(), rc.size());
    for (std::size_t i = 0; i < rf.size(); ++i) {
        EXPECT_EQ(rf[i].id, rc[i].id);
        EXPECT_DOUBLE_EQ(rf[i].arrival, rc[i].arrival);
    }
}

TEST(RequestSource, ClosedLoopReplayIsBitIdentical)
{
    ServeConfig sc = closedLoopConfig();
    RequestSource a(sc);
    RequestSource b(sc);
    std::vector<Request> ra, rb;
    // Same completion schedule -> same think draws -> same stream.
    for (int round = 1; round <= 30; ++round) {
        Tick t = round * sc.epochCycles;
        std::size_t beforeA = ra.size();
        a.poll(t, ra);
        b.poll(t, rb);
        ASSERT_EQ(ra.size(), rb.size());
        for (std::size_t i = beforeA; i < ra.size(); ++i) {
            EXPECT_EQ(ra[i].client, rb[i].client);
            EXPECT_DOUBLE_EQ(ra[i].arrival, rb[i].arrival);
            // "Service" takes 100 cycles.
            a.noteRequestDone(ra[i].tenant, ra[i].client,
                              ra[i].arrival + 100.0);
            b.noteRequestDone(rb[i].tenant, rb[i].client,
                              rb[i].arrival + 100.0);
        }
    }
    // 3 clients x 6 requests, all issued and none still waiting.
    EXPECT_EQ(ra.size(), 18u);
    EXPECT_TRUE(a.exhausted());
    EXPECT_TRUE(b.exhausted());
}

TEST(RequestSource, QueueOverflowShedsReArmClosedLoopClients)
{
    // The wedge repro: a closed-loop client whose request is
    // displaced by Queue-policy overflow ("sheds the newest") must be
    // released via noteRequestDone like any other shed, or it waits
    // forever, exhausted() never turns true, and the serve loop spins
    // on zero-event epochs. This mirrors ServeSessionImpl::epoch(),
    // which completes every element of the admission delta's shed
    // list back to the source; the loop bound turns a wedge into a
    // test failure instead of a hang.
    ServeConfig sc;
    sc.seed = 11;
    sc.epochCycles = 500.0;
    sc.overload = OverloadPolicy::Queue;
    sc.queueCapacity = 1; // overflow displaces on every burst
    TenantConfig tc = tenantOf("cl", /*rate=*/0.002, /*burst=*/1.0);
    tc.clients.clear();
    for (int c = 0; c < 4; ++c) {
        ClientConfig cl;
        cl.kind = ArrivalKind::ClosedLoop;
        cl.thinkCycles = 100.0;
        cl.maxRequests = 3;
        tc.clients.push_back(cl);
    }
    sc.tenants.push_back(tc);

    RequestSource src(sc);
    AdmissionController ac(sc);
    std::vector<Request> arrivals;
    std::uint64_t admitted = 0, shed = 0;
    int rounds = 0;
    for (int round = 1; round <= 200; ++round) {
        rounds = round;
        Tick now = round * sc.epochCycles;
        arrivals.clear();
        src.poll(now, arrivals);
        if (arrivals.empty() && src.exhausted()
            && ac.waitingTotal() == 0)
            break;
        ac.offer(arrivals);
        auto d = ac.admitAt(now);
        admitted += d.admitted.size();
        shed += d.shed.size();
        // Admitted requests "serve" instantly; displaced ones must
        // also release their client or the loop never drains.
        for (const Request& q : d.admitted)
            src.noteRequestDone(q.tenant, q.client, now);
        for (const Request& q : d.shed)
            src.noteRequestDone(q.tenant, q.client, now);
    }
    EXPECT_TRUE(src.exhausted())
        << "closed-loop clients wedged; still waiting after "
        << rounds << " rounds";
    EXPECT_GT(shed, 0u) << "scenario never overflowed the queue";
    // 4 clients x 3 requests, each admitted or displaced exactly once.
    EXPECT_EQ(admitted + shed, 12u);
}

// ----------------------- SLO arithmetic ------------------------- //

TEST(Slo, VerdictsMatchHandComputedPercentiles)
{
    std::vector<double> lats;
    for (int i = 1; i <= 10; ++i)
        lats.push_back(i * 10.0); // 10, 20, ..., 100

    // nearest-rank: p50 = ceil(0.5*10) = 5th -> 50;
    //               p99 = ceil(0.99*10) = 10th -> 100.
    TenantConfig tc;
    tc.name = "hand";
    tc.sloP50Cycles = 60.0;
    tc.sloP99Cycles = 90.0;
    TenantServeStats ts = summarizeTenantLatencies(tc, lats);
    EXPECT_DOUBLE_EQ(ts.p50Cycles, 50.0);
    EXPECT_DOUBLE_EQ(ts.p99Cycles, 100.0);
    EXPECT_DOUBLE_EQ(ts.meanCycles, 55.0);
    EXPECT_DOUBLE_EQ(ts.maxCycles, 100.0);
    EXPECT_TRUE(ts.sloP50Ok);   // 50 <= 60
    EXPECT_FALSE(ts.sloP99Ok);  // 100 > 90
    EXPECT_EQ(ts.deadlineMisses, 1u); // only 100 exceeds 90

    // No target -> vacuously true verdicts.
    TenantConfig open;
    TenantServeStats to = summarizeTenantLatencies(open, lats);
    EXPECT_TRUE(to.sloP50Ok);
    EXPECT_TRUE(to.sloP99Ok);
    EXPECT_EQ(to.deadlineMisses, 0u);

    // Empty sample -> zeros, still vacuous.
    TenantServeStats te = summarizeTenantLatencies(tc, {});
    EXPECT_DOUBLE_EQ(te.p50Cycles, 0.0);
    EXPECT_EQ(te.completed, 0u);
}

TEST(Slo, DeadlineBoundaryCountsConsistently)
{
    // The off-by-one pin: a request completing exactly at
    // deadlineCycles is a hit in *both* accountings — the miss
    // counter (strict >) and the SLO verdict (p99 <= target) — so
    // the two can never disagree about the boundary value.
    std::vector<double> lats = {80.0, 100.0, 120.0};
    TenantConfig tc;
    tc.name = "dl";
    tc.deadlineCycles = 100.0;
    TenantServeStats ts = summarizeTenantLatencies(tc, lats);
    EXPECT_EQ(ts.deadlineMisses, 1u); // only 120; exactly-100 hits
    EXPECT_DOUBLE_EQ(ts.deadlineHitRate, 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(ts.deadlineCycles, 100.0);

    // When both a deadline and a p99 target are set, the deadline
    // owns the miss line; the verdict still judges the percentile.
    TenantConfig both = tc;
    both.sloP99Cycles = 100.0;
    TenantServeStats tb = summarizeTenantLatencies(both, lats);
    EXPECT_FALSE(tb.sloP99Ok); // p99 = 120 > 100
    EXPECT_EQ(tb.deadlineMisses, 1u);

    TenantConfig slack = tc;
    slack.deadlineCycles = 200.0;
    slack.sloP99Cycles = 90.0; // would count 2 misses if it ruled
    TenantServeStats tsl = summarizeTenantLatencies(slack, lats);
    EXPECT_EQ(tsl.deadlineMisses, 0u);
    EXPECT_DOUBLE_EQ(tsl.deadlineHitRate, 1.0);
    EXPECT_FALSE(tsl.sloP99Ok);

    // Boundary agreement: p99 lands exactly on the shared line ->
    // the verdict passes and the miss counter stays at zero.
    TenantConfig edge;
    edge.name = "edge";
    edge.sloP99Cycles = 120.0;
    edge.deadlineCycles = 120.0;
    TenantServeStats te = summarizeTenantLatencies(edge, lats);
    EXPECT_TRUE(te.sloP99Ok);
    EXPECT_EQ(te.deadlineMisses, 0u);
    EXPECT_DOUBLE_EQ(te.deadlineHitRate, 1.0);

    // No deadline -> the hit-rate stays at its vacuous default even
    // when the p99 line counts misses.
    TenantConfig sloOnly;
    sloOnly.sloP99Cycles = 100.0;
    TenantServeStats to = summarizeTenantLatencies(sloOnly, lats);
    EXPECT_EQ(to.deadlineMisses, 1u);
    EXPECT_DOUBLE_EQ(to.deadlineHitRate, 1.0);
    EXPECT_DOUBLE_EQ(to.deadlineCycles, 0.0);
}

// --------------------- engine integration ----------------------- //

TEST(Serving, DisabledConfigMatchesSeedRun)
{
    // The acceptance gate: a default ServeConfig{} serve must be
    // event-for-event identical to a plain engine run.
    ServeLinearApp plainApp(2, 16);
    Engine plain(DeviceConfig::byName("gtx1080"));
    PipelineConfig cfg = makeMegakernelConfig(plainApp.pipeline());
    RunResult base = plain.run(plainApp, cfg);
    ASSERT_TRUE(base.completed);

    ServeLinearApp servedApp(2, 16);
    Engine engine(DeviceConfig::byName("gtx1080"));
    ServingEngine serve(engine, ServeConfig{});
    FlowServingWorkload wl(servedApp);
    RunResult r = serve.run(
        wl, makeMegakernelConfig(servedApp.pipeline()));
    ASSERT_TRUE(r.completed);

    EXPECT_EQ(base.simEvents, r.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, r.cycles);
    EXPECT_EQ(stageItems(base), stageItems(r));
    EXPECT_FALSE(r.serving);
    // And the engine came back clean: no session, no armed obs.
    EXPECT_EQ(engine.serveSession(), nullptr);
    EXPECT_FALSE(engine.observability().has_value());
}

TEST(Serving, OpenLoopServeRerunsBitIdentical)
{
    ServeConfig sc = openLoopConfig();
    RunResult first, second;
    for (RunResult* out : {&first, &second}) {
        ServeLinearApp app(2, 8);
        Engine engine(DeviceConfig::byName("gtx1080"));
        ServingEngine serve(engine, sc);
        FlowServingWorkload wl(app);
        *out = serve.run(wl, makeMegakernelConfig(app.pipeline()));
        ASSERT_TRUE(out->completed) << out->failureReason;
    }
    ASSERT_TRUE(first.serving);
    EXPECT_GT(first.serving->offered, 0u);
    EXPECT_GT(first.serving->completed, 0u);
    expectServeEqual(first, second);
    expectServeConserved(first);
    // Fully drained: nothing in flight once the horizon passed.
    EXPECT_EQ(first.serving->outstanding, 0u);
}

TEST(Serving, ClosedLoopServeRerunsBitIdentical)
{
    ServeConfig sc = closedLoopConfig();
    RunResult first, second;
    for (RunResult* out : {&first, &second}) {
        ServeLinearApp app(2, 8);
        Engine engine(DeviceConfig::byName("gtx1080"));
        ServingEngine serve(engine, sc);
        FlowServingWorkload wl(app);
        *out = serve.run(wl, makeMegakernelConfig(app.pipeline()));
        ASSERT_TRUE(out->completed) << out->failureReason;
    }
    ASSERT_TRUE(first.serving);
    // Closed loop is self-limiting: every request eventually admits,
    // completes, and triggers the next, down to the per-client cap.
    EXPECT_EQ(first.serving->offered, 18u);
    EXPECT_EQ(first.serving->completed + first.serving->shed, 18u);
    expectServeEqual(first, second);
    expectServeConserved(first);
    EXPECT_EQ(first.serving->outstanding, 0u);
}

TEST(Serving, ConservationAndProvenanceUnderOverload)
{
    // Starve the buckets so a real fraction of the offered load
    // sheds; per-tenant conservation and lineage closure must both
    // hold.
    ServeConfig sc = openLoopConfig();
    for (TenantConfig& t : sc.tenants) {
        t.tokensPerCycle = 0.001;
        t.burstTokens = 2.0;
        for (ClientConfig& c : t.clients)
            c.meanInterarrivalCycles = 800.0;
    }
    ServeLinearApp app(2, 8);
    Engine engine(DeviceConfig::byName("gtx1080"));
    ServingEngine serve(engine, sc);
    FlowServingWorkload wl(app);
    RunResult r = serve.run(wl, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;
    expectServeConserved(r);
    EXPECT_GT(r.serving->shed, 0u);
    EXPECT_GT(r.serving->completed, 0u);
    EXPECT_EQ(r.serving->outstanding, 0u);

    // Every tracked lineage resolved (the serving loop only ends
    // after the pipeline drains what was admitted).
    ASSERT_TRUE(r.obs && r.obs->provenance);
    EXPECT_EQ(r.obs->provenance->countByFate(ItemFate::Open), 0u);
}

TEST(Serving, QueuePolicyAdmitsWhatShedWouldDrop)
{
    ServeConfig shedCfg = openLoopConfig();
    for (TenantConfig& t : shedCfg.tenants) {
        t.tokensPerCycle = 0.001;
        t.burstTokens = 2.0;
        for (ClientConfig& c : t.clients)
            c.meanInterarrivalCycles = 800.0;
    }
    ServeConfig queueCfg = shedCfg;
    queueCfg.overload = OverloadPolicy::Queue;
    queueCfg.queueCapacity = 64;

    auto serveWith = [](const ServeConfig& sc) {
        ServeLinearApp app(2, 8);
        Engine engine(DeviceConfig::byName("gtx1080"));
        ServingEngine serve(engine, sc);
        FlowServingWorkload wl(app);
        RunResult r =
            serve.run(wl, makeMegakernelConfig(app.pipeline()));
        EXPECT_TRUE(r.completed) << r.failureReason;
        return r;
    };
    RunResult shed = serveWith(shedCfg);
    RunResult queued = serveWith(queueCfg);
    expectServeConserved(shed);
    expectServeConserved(queued);
    // Identical offered load (open loop), but queuing converts
    // rejections into (delayed) admissions.
    EXPECT_EQ(shed.serving->offered, queued.serving->offered);
    EXPECT_GT(shed.serving->shed, queued.serving->shed);
    EXPECT_GT(queued.serving->admitted, shed.serving->admitted);
}

TEST(Serving, SloVerdictsSurfaceInRunResult)
{
    ServeConfig sc = openLoopConfig();
    sc.tenants[0].sloP50Cycles = 0.001; // impossible target
    sc.tenants[1].sloP99Cycles = 1e12;  // trivial target
    ServeLinearApp app(2, 8);
    Engine engine(DeviceConfig::byName("gtx1080"));
    ServingEngine serve(engine, sc);
    FlowServingWorkload wl(app);
    RunResult r = serve.run(wl, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;
    ASSERT_TRUE(r.serving);
    ASSERT_EQ(r.serving->tenants.size(), 2u);
    const TenantServeStats& t0 = r.serving->tenants[0];
    const TenantServeStats& t1 = r.serving->tenants[1];
    ASSERT_GT(t0.completed, 0u);
    EXPECT_FALSE(t0.sloP50Ok);
    EXPECT_TRUE(t1.sloP99Ok);
    // The reported percentiles are ordered and within range.
    EXPECT_LE(t0.p50Cycles, t0.p99Cycles);
    EXPECT_LE(t0.p99Cycles, t0.maxCycles);
    EXPECT_GT(t0.p50Cycles, 0.0);
    // And the e2e latency histograms landed in the metrics registry.
    ASSERT_TRUE(r.obs);
    EXPECT_EQ(r.obs->metrics.histogram("serve/e2e/t0", 16.0, 1.25)
                  .count(),
              t0.completed);
}

TEST(Serving, ShardedTwoDeviceServeRerunsBitIdentical)
{
    ServeConfig sc = openLoopConfig();
    DeviceGroupConfig group = DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), 2);
    RunResult first, second;
    for (RunResult* out : {&first, &second}) {
        ServeLinearApp app(2, 8);
        Engine engine(group);
        ServingEngine serve(engine, sc);
        FlowServingWorkload wl(app);
        *out = serve.runSharded(
            wl, makeMegakernelConfig(app.pipeline()),
            ShardPlan::replicateAll(app.pipeline()));
        ASSERT_TRUE(out->completed) << out->failureReason;
    }
    ASSERT_TRUE(first.serving);
    EXPECT_GT(first.serving->completed, 0u);
    expectServeEqual(first, second);
    expectServeConserved(first);
    EXPECT_EQ(first.serving->outstanding, 0u);
}

TEST(Serving, ShardedDisabledConfigMatchesSeedRun)
{
    DeviceGroupConfig group = DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), 2);

    ServeLinearApp plainApp(2, 16);
    Engine plain(group);
    RunResult base = plain.runSharded(
        plainApp, makeMegakernelConfig(plainApp.pipeline()),
        ShardPlan::replicateAll(plainApp.pipeline()));
    ASSERT_TRUE(base.completed);

    ServeLinearApp servedApp(2, 16);
    Engine engine(group);
    ServingEngine serve(engine, ServeConfig{});
    FlowServingWorkload wl(servedApp);
    RunResult r = serve.runSharded(
        wl, makeMegakernelConfig(servedApp.pipeline()),
        ShardPlan::replicateAll(servedApp.pipeline()));
    ASSERT_TRUE(r.completed);

    EXPECT_EQ(base.simEvents, r.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, r.cycles);
    EXPECT_EQ(stageItems(base), stageItems(r));
}

TEST(Serving, QueueOverflowClosedLoopServeCompletes)
{
    // Engine-level wedge repro: closed-loop clients behind a
    // capacity-1 waiting room and a starved bucket. Under Queue
    // policy every shed *is* an overflow displacement, so shed > 0
    // proves the repro fired; the run completing at all proves the
    // displaced clients were re-armed (a wedged client would hang
    // the serve loop, since closed-loop generators bound the run).
    ServeConfig sc = closedLoopConfig();
    sc.overload = OverloadPolicy::Queue;
    sc.queueCapacity = 1;
    sc.tenants[0].tokensPerCycle = 0.0005;
    sc.tenants[0].burstTokens = 1.0;
    ServeLinearApp app(2, 8);
    Engine engine(DeviceConfig::byName("gtx1080"));
    ServingEngine serve(engine, sc);
    FlowServingWorkload wl(app);
    RunResult r = serve.run(wl, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;
    expectServeConserved(r);
    ASSERT_TRUE(r.serving);
    EXPECT_GT(r.serving->shed, 0u);
    EXPECT_GT(r.serving->completed, 0u);
    EXPECT_EQ(r.serving->offered, 18u);
    EXPECT_EQ(r.serving->completed + r.serving->shed, 18u);
    EXPECT_EQ(r.serving->outstanding, 0u);
}

TEST(Serving, UserSampledProvenanceIsHonored)
{
    // The sampling-stride regression: ServingEngine used to overwrite
    // a user-armed ObsConfig::provenanceSampleEvery with 1. It must
    // honor the stride (request roots are force-tracked regardless,
    // so completion detection still sees every lineage) and restore
    // the engine's observability afterwards.
    auto serveWith = [](std::uint64_t sampleEvery) {
        ServeLinearApp app(2, 8);
        Engine engine(DeviceConfig::byName("gtx1080"));
        if (sampleEvery > 0) {
            ObsConfig oc;
            oc.trace = false;
            oc.sampleIntervalCycles = 0.0;
            oc.provenance = false; // the serve arms provenance itself
            oc.provenanceSampleEvery = sampleEvery;
            engine.setObservability(oc);
        }
        ServingEngine serve(engine, openLoopConfig());
        FlowServingWorkload wl(app);
        RunResult r =
            serve.run(wl, makeMegakernelConfig(app.pipeline()));
        EXPECT_TRUE(r.completed) << r.failureReason;
        // The engine's own config came back exactly as armed.
        if (sampleEvery > 0) {
            EXPECT_TRUE(engine.observability().has_value());
            if (engine.observability()) {
                EXPECT_EQ(
                    engine.observability()->provenanceSampleEvery,
                    sampleEvery);
                EXPECT_FALSE(engine.observability()->provenance);
            }
        } else {
            EXPECT_FALSE(engine.observability().has_value());
        }
        return r;
    };

    RunResult dflt = serveWith(0);    // no user obs at all
    RunResult full = serveWith(1);    // explicit track-everything
    RunResult sampled = serveWith(4); // the formerly clobbered case

    // The run tracker carries the caller's stride, not a forced 1.
    ASSERT_TRUE(sampled.obs && sampled.obs->provenance);
    EXPECT_EQ(sampled.obs->provenance->sampleEvery(), 4u);
    ASSERT_TRUE(full.obs && full.obs->provenance);
    EXPECT_EQ(full.obs->provenance->sampleEvery(), 1u);
    ASSERT_TRUE(dflt.obs && dflt.obs->provenance);
    EXPECT_EQ(dflt.obs->provenance->sampleEvery(), 1u);

    // The stride genuinely thinned the pre-seeded app items (the
    // clobbered-to-1 bug tracked every seed), yet request roots stay
    // force-tracked, so both runs saw the same seed stream and every
    // tracked lineage still closed.
    EXPECT_EQ(sampled.obs->provenance->seedsSeen(),
              full.obs->provenance->seedsSeen());
    EXPECT_EQ(full.obs->provenance->seedsTracked(),
              full.obs->provenance->seedsSeen());
    EXPECT_LT(sampled.obs->provenance->seedsTracked(),
              sampled.obs->provenance->seedsSeen());
    EXPECT_EQ(sampled.obs->provenance->countByFate(ItemFate::Open),
              0u);
    // ...and provenance stays passive: all three serves are
    // event-for-event and stat-for-stat identical.
    expectServeEqual(dflt, full);
    expectServeEqual(full, sampled);
    expectServeConserved(sampled);
}

// ------------------- vidstream frame serving --------------------- //

TEST(Serving, VidstreamFrameClockDeadlinesRerunBitIdentical)
{
    // The streaming scenario end-to-end: one open-loop tenant per
    // camera issuing frames on a frame clock, per-frame deadlines on
    // every tenant. Even cameras get an impossible 1-cycle budget
    // (every completion misses), odd cameras an unbounded one (every
    // completion hits), so the expected verdicts are exact regardless
    // of the simulated latencies; a rerun must reproduce the
    // deadline accounting bit for bit.
    vidstream::VsParams p = vidstream::VsParams::small();
    ServeConfig sc;
    sc.seed = 2026;
    sc.epochCycles = 2000.0;
    sc.horizonCycles = 60000.0;
    for (int cam = 0; cam < p.cameras; ++cam) {
        TenantConfig tc;
        tc.name = "cam" + std::to_string(cam);
        tc.tokensPerCycle = 0.01;
        tc.burstTokens = 4.0;
        tc.deadlineCycles = (cam % 2 == 0) ? 1.0 : 1e12;
        ClientConfig cl;
        cl.kind = ArrivalKind::OpenLoop;
        cl.meanInterarrivalCycles = 4000.0; // the frame clock
        tc.clients.push_back(cl);
        sc.tenants.push_back(tc);
    }

    RunResult first, second;
    for (RunResult* out : {&first, &second}) {
        vidstream::VidstreamApp app(p);
        Engine engine(DeviceConfig::byName("gtx1080"));
        ServingEngine serve(engine, sc);
        vidstream::VsFrameWorkload wl(app);
        *out = serve.run(wl, makeMegakernelConfig(app.pipeline()));
        ASSERT_TRUE(out->completed) << out->failureReason;
    }
    expectServeEqual(first, second);
    expectServeConserved(first);
    ASSERT_TRUE(first.serving);
    const ServingRunStats& sv = *first.serving;
    EXPECT_GT(sv.completed, 0u);
    EXPECT_EQ(sv.outstanding, 0u);
    ASSERT_EQ(sv.tenants.size(), static_cast<std::size_t>(p.cameras));

    std::uint64_t misses = 0, completed = 0;
    for (std::size_t t = 0; t < sv.tenants.size(); ++t) {
        const TenantServeStats& ts = sv.tenants[t];
        ASSERT_GT(ts.completed, 0u) << ts.name;
        if (t % 2 == 0) {
            // 1-cycle budget: every frame misses.
            EXPECT_EQ(ts.deadlineMisses, ts.completed) << ts.name;
            EXPECT_DOUBLE_EQ(ts.deadlineHitRate, 0.0) << ts.name;
        } else {
            EXPECT_EQ(ts.deadlineMisses, 0u) << ts.name;
            EXPECT_DOUBLE_EQ(ts.deadlineHitRate, 1.0) << ts.name;
        }
        misses += ts.deadlineMisses;
        completed += ts.completed;
    }
    // Run totals tile the per-tenant accounting exactly.
    EXPECT_EQ(sv.deadlineMisses, misses);
    EXPECT_DOUBLE_EQ(
        sv.deadlineHitRate,
        static_cast<double>(completed - misses)
            / static_cast<double>(completed));

    // And the rerun reproduced every deadline verdict.
    for (std::size_t t = 0; t < sv.tenants.size(); ++t) {
        EXPECT_EQ(second.serving->tenants[t].deadlineMisses,
                  sv.tenants[t].deadlineMisses);
        EXPECT_DOUBLE_EQ(second.serving->tenants[t].deadlineHitRate,
                         sv.tenants[t].deadlineHitRate);
    }
    EXPECT_EQ(second.serving->deadlineMisses, sv.deadlineMisses);
    EXPECT_DOUBLE_EQ(second.serving->deadlineHitRate,
                     sv.deadlineHitRate);
}

// ----------------- epoch stats: snapshot deltas ------------------ //

TEST(Serving, EpochLogDeltasSumToRunTotals)
{
    // The regression behind the snapshot-delta fix: per-epoch stats
    // are differences of run-total snapshots, so they must tile the
    // run exactly — no double counting, no leaks across epochs.
    ServeConfig sc = openLoopConfig();
    ServeLinearApp app(2, 8);
    Engine engine(DeviceConfig::byName("gtx1080"));
    ServingEngine serve(engine, sc);
    FlowServingWorkload wl(app);
    RunResult r = serve.run(wl, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;
    ASSERT_TRUE(r.serving);
    const ServingRunStats& sv = *r.serving;
    ASSERT_GE(sv.epochLog.size(), 3u);
    std::uint64_t arrivals = 0, admitted = 0, shed = 0,
                  completed = 0, traffic = 0;
    Tick prev = 0.0;
    for (const ServeEpochStats& e : sv.epochLog) {
        EXPECT_GT(e.at, prev);
        prev = e.at;
        arrivals += e.arrivals;
        admitted += e.admitted;
        shed += e.shed;
        completed += e.completed;
        traffic += e.queueTraffic;
    }
    EXPECT_EQ(arrivals, sv.offered);
    EXPECT_EQ(admitted, sv.admitted);
    EXPECT_EQ(shed, sv.shed);
    EXPECT_EQ(completed, sv.completed);
    EXPECT_GT(traffic, 0u);
}

TEST(QueueEpochStats, SnapshotDeltasMatchFreshQueues)
{
    // A 3-epoch continuous run sliced by stats() snapshots must equal
    // three fresh per-epoch queues (accesses spaced beyond the
    // contention window so the cost of each epoch is self-contained).
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    WorkQueue<int> continuous("q");
    QueueStats snap;
    for (int epoch = 0; epoch < 3; ++epoch) {
        WorkQueue<int> fresh("q");
        Tick base = epoch * 100000.0;
        for (int i = 0; i < 4 + epoch; ++i) {
            Tick t = base + i * 1000.0;
            continuous.accessCost(dev, t, 1);
            continuous.push(i);
            fresh.accessCost(dev, t, 1);
            fresh.push(i);
        }
        int out;
        continuous.accessCost(dev, base + 50000.0, 1);
        continuous.pop(out);
        fresh.accessCost(dev, base + 50000.0, 1);
        fresh.pop(out);

        QueueStats now = continuous.stats();
        QueueStats delta = queueStatsDelta(now, snap);
        snap = now;
        EXPECT_EQ(delta.pushes, fresh.stats().pushes)
            << "epoch " << epoch;
        EXPECT_EQ(delta.pops, fresh.stats().pops) << "epoch " << epoch;
        EXPECT_DOUBLE_EQ(delta.opCycles, fresh.stats().opCycles)
            << "epoch " << epoch;
        EXPECT_DOUBLE_EQ(delta.contentionCycles,
                         fresh.stats().contentionCycles)
            << "epoch " << epoch;
    }
}

TEST(QueueEpochStats, ResetStatsRebaselinesTheDepthEwma)
{
    // resetStats() on a non-empty queue must re-baseline the EWMA to
    // the surviving depth, not zero it — zero would feed the adaptive
    // controller a phantom under-load signal on engine reuse.
    WorkQueue<int> q("q");
    q.enableDepthEwma(0.5);
    for (int i = 0; i < 6; ++i)
        q.push(i);
    ASSERT_GT(q.depthEwma(), 0.0);
    q.resetStats();
    EXPECT_DOUBLE_EQ(q.depthEwma(), 6.0);
    EXPECT_EQ(q.stats().pushes, 0u);
}

// ------------------- golden streaming corpus -------------------- //

TEST(Serving, GoldenStreamingReport)
{
    // Byte-exact serving report: the full JSON document of a fixed
    // serving scenario. Regenerate with GOLDEN_REGEN=1 (see
    // scripts/regen_golden.sh) and review the diff.
    ServeConfig sc = openLoopConfig();
    sc.tenants[0].sloP50Cycles = 50000.0;
    sc.tenants[1].sloP99Cycles = 80000.0;
    ServeLinearApp app(2, 8);
    Engine engine(DeviceConfig::byName("gtx1080"));
    ServingEngine serve(engine, sc);
    FlowServingWorkload wl(app);
    RunResult r = serve.run(wl, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;

    std::ostringstream got;
    writeReportJson(got, r);
    const std::string path =
        std::string(GOLDEN_DIR) + "/serving.json";

    if (std::getenv("GOLDEN_REGEN")) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << got.str();
        SUCCEED() << "regenerated " << path;
        return;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " is missing; run scripts/regen_golden.sh";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got.str(), want.str())
        << "the serving report diverged from its golden corpus "
        << "entry. If the change is intentional, run "
        << "scripts/regen_golden.sh and commit the diff.";
}

/**
 * @file
 * Unit tests for the host (CPU-side) cost model.
 */

#include <gtest/gtest.h>

#include "gpu/block.hh"
#include "gpu/host.hh"

using namespace vp;

namespace {

std::shared_ptr<Kernel>
trivialKernel(const std::string& name, double insts = 100.0)
{
    ResourceUsage u;
    u.regsPerThread = 32;
    return std::make_shared<Kernel>(
        name, u, 256, 1, [insts](BlockContext& ctx) {
            WorkSpec w;
            w.warpInsts = insts;
            w.warps = 8.0;
            ctx.exec(w, [&ctx] { ctx.exit(); });
        });
}

struct Fixture
{
    Simulator sim;
    Device dev{sim, DeviceConfig::k20c()};
    Host host{sim, dev};
};

} // namespace

TEST(Host, LaunchChargesOverheadBeforeKernelStarts)
{
    Fixture f;
    Tick started = -1.0;
    auto k = trivialKernel("k");
    f.host.launchAsync(f.dev.defaultStream(), k);
    f.host.synchronize(f.dev.defaultStream(),
                       [&] { started = f.sim.now(); });
    f.sim.run();
    Tick launch = f.dev.config().usToCycles(
        f.dev.config().kernelLaunchUs);
    EXPECT_GE(started, launch);
}

TEST(Host, BackToBackLaunchesSerializeOnHost)
{
    Fixture f;
    // 100 launches into distinct streams: host overhead serializes
    // them even though the device could start them all at once.
    for (int i = 0; i < 100; ++i)
        f.host.launchAsync(f.dev.createStream(), trivialKernel("k"));
    f.sim.run();
    Tick launch = f.dev.config().usToCycles(
        f.dev.config().kernelLaunchUs);
    EXPECT_GE(f.host.stats().busyCycles, 100 * launch - 1e-6);
    EXPECT_GE(f.sim.now(), 100 * launch);
}

TEST(Host, MemcpyCostScalesWithBytes)
{
    Fixture f;
    Tick small_done = -1.0;
    f.host.memcpy(1024.0, [&] { small_done = f.sim.now(); });
    f.sim.run();

    Fixture g;
    Tick big_done = -1.0;
    g.host.memcpy(64.0 * 1024 * 1024, [&] { big_done = g.sim.now(); });
    g.sim.run();
    EXPECT_GT(big_done, small_done);
}

TEST(Host, ControlOccupiesHost)
{
    Fixture f;
    Tick done = -1.0;
    f.host.control(10.0, [&] { done = f.sim.now(); });
    f.sim.run();
    EXPECT_NEAR(done, f.dev.config().usToCycles(10.0), 1e-6);
}

TEST(Host, SynchronizeWaitsForStream)
{
    Fixture f;
    Tick sync_at = -1.0;
    Tick kernel_done = -1.0;
    auto k = trivialKernel("k", 50000.0);
    k->notifyOnComplete([&] { kernel_done = f.sim.now(); });
    f.host.launchAsync(f.dev.defaultStream(), k);
    f.host.synchronize(f.dev.defaultStream(),
                       [&] { sync_at = f.sim.now(); });
    f.sim.run();
    EXPECT_GE(sync_at, kernel_done);
}

TEST(Host, DeviceSynchronizeWaitsForEverything)
{
    Fixture f;
    Tick sync_at = -1.0;
    f.host.launchAsync(f.dev.defaultStream(), trivialKernel("a", 9000.0));
    f.host.launchAsync(f.dev.createStream(), trivialKernel("b", 20.0));
    f.host.deviceSynchronize([&] { sync_at = f.sim.now(); });
    f.sim.run();
    EXPECT_NEAR(sync_at, f.sim.now(), 1e-6);
}

TEST(Host, StatsCountActivity)
{
    Fixture f;
    f.host.launchAsync(f.dev.defaultStream(), trivialKernel("k"));
    f.host.memcpy(4096.0, [] {});
    f.sim.run();
    EXPECT_EQ(f.host.stats().launches, 1u);
    EXPECT_EQ(f.host.stats().memcpys, 1u);
    EXPECT_DOUBLE_EQ(f.host.stats().memcpyBytes, 4096.0);
}

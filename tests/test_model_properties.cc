/**
 * @file
 * Property-style sweeps over the performance model: monotonicity and
 * conservation laws that must hold for any calibration, checked with
 * parameterized gtest.
 */

#include <gtest/gtest.h>

#include "gpu/cost_model.hh"
#include "gpu/occupancy.hh"
#include "gpu/sm.hh"

using namespace vp;

namespace {

double
soloRuntime(const DeviceConfig& cfg, const WorkSpec& w)
{
    Simulator sim;
    Sm sm(sim, cfg, 0);
    double done = -1.0;
    sm.beginWork(w, 0, [&] { done = sim.now(); });
    sim.run();
    return done;
}

WorkSpec
spec(double insts, double warps, double mem, double l1)
{
    WorkSpec w;
    w.warpInsts = insts;
    w.warps = warps;
    w.memRatio = mem;
    w.l1Hit = l1;
    return w;
}

} // namespace

// Runtime scales linearly with work at fixed shape.
class WorkScaling : public ::testing::TestWithParam<double>
{};

TEST_P(WorkScaling, RuntimeLinearInWork)
{
    auto cfg = DeviceConfig::k20c();
    double scale = GetParam();
    double base = soloRuntime(cfg, spec(1000, 8, 0.2, 0.5));
    double scaled = soloRuntime(cfg,
                                spec(1000 * scale, 8, 0.2, 0.5));
    EXPECT_NEAR(scaled / base, scale, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Scales, WorkScaling,
                         ::testing::Values(2.0, 3.0, 5.0, 10.0));

// More warps never slow a fixed amount of work down.
class WarpSweep : public ::testing::TestWithParam<int>
{};

TEST_P(WarpSweep, MoreWarpsNeverSlower)
{
    auto cfg = DeviceConfig::k20c();
    int warps = GetParam();
    double fewer = soloRuntime(cfg, spec(4000, warps, 0.3, 0.5));
    double more = soloRuntime(cfg, spec(4000, warps + 2, 0.3, 0.5));
    EXPECT_LE(more, fewer + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Warps, WarpSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 32));

// Better cache hit rates never slow memory-bound work down.
class L1Sweep : public ::testing::TestWithParam<double>
{};

TEST_P(L1Sweep, HigherHitRateNeverSlower)
{
    auto cfg = DeviceConfig::k20c();
    double l1 = GetParam();
    double worse = soloRuntime(cfg, spec(4000, 4, 0.4, l1));
    double better = soloRuntime(cfg, spec(4000, 4, 0.4, l1 + 0.1));
    EXPECT_LE(better, worse + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(HitRates, L1Sweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7,
                                           0.85));

// Processor sharing conserves throughput: n identical saturating
// executions finish together in exactly n times the solo time.
class SharingSweep : public ::testing::TestWithParam<int>
{};

TEST_P(SharingSweep, FairSharingConservesThroughput)
{
    auto cfg = DeviceConfig::k20c();
    int n = GetParam();
    WorkSpec w = spec(2000, 8, 0.0, 0.5); // saturates issue width
    double solo = soloRuntime(cfg, w);

    Simulator sim;
    Sm sm(sim, cfg, 0);
    std::vector<double> done(n, -1.0);
    for (int i = 0; i < n; ++i)
        sm.beginWork(w, 0, [&, i] { done[i] = sim.now(); });
    sim.run();
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(done[i], solo * n, 1e-6) << "exec " << i;
}

INSTANTIATE_TEST_SUITE_P(Degrees, SharingSweep,
                         ::testing::Values(2, 3, 5, 8));

// Occupancy x block footprint never exceeds the register file.
class OccupancyBudget
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(OccupancyBudget, RegisterBudgetRespected)
{
    auto [regs, threads] = GetParam();
    for (auto name : {"k20c", "gtx1080"}) {
        DeviceConfig cfg = DeviceConfig::byName(name);
        ResourceUsage res;
        res.regsPerThread = regs;
        auto r = maxBlocksPerSm(cfg, res, threads);
        EXPECT_LE(r.blocksPerSm * regs * threads, cfg.regsPerSm)
            << name;
        EXPECT_LE(r.blocksPerSm * threads, cfg.maxThreadsPerSm)
            << name;
        EXPECT_LE(r.blocksPerSm, cfg.maxBlocksPerSm) << name;
        // And maximality: one more block would break some budget.
        if (r.blocksPerSm > 0 && r.blocksPerSm < cfg.maxBlocksPerSm) {
            int more = r.blocksPerSm + 1;
            bool breaks = more * regs * threads > cfg.regsPerSm
                || more * threads > cfg.maxThreadsPerSm;
            EXPECT_TRUE(breaks) << name << ": occupancy not maximal";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OccupancyBudget,
    ::testing::Combine(::testing::Values(16, 32, 64, 111, 128, 255),
                       ::testing::Values(64, 128, 256, 512)));

// Batch WorkSpec construction conserves total instructions.
class BatchSweep : public ::testing::TestWithParam<int>
{};

TEST_P(BatchSweep, WarpInstsScaleWithBatch)
{
    auto cfg = DeviceConfig::k20c();
    int batch = GetParam();
    TaskCost per;
    per.computeInsts = 90;
    per.memInsts = 10;
    TaskCost sum;
    for (int i = 0; i < batch; ++i)
        sum += per;
    auto w = makeWorkSpec(cfg, sum, 32, batch, 100.0);
    // batch tasks x 32 threads = batch warps; 100 insts per thread.
    EXPECT_DOUBLE_EQ(w.warps, double(batch));
    EXPECT_DOUBLE_EQ(w.warpInsts, 100.0 * batch);
}

INSTANTIATE_TEST_SUITE_P(Batches, BatchSweep,
                         ::testing::Values(1, 2, 4, 8, 16));

/**
 * @file
 * Unit tests for PipelineConfig validation and the canonical
 * configuration builders.
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

struct Fixture
{
    LinearApp linear;
    RecursiveApp recursive;
    DeviceConfig dev = DeviceConfig::k20c();
};

} // namespace

TEST(ModelConfig, RtcConfigValidForLinear)
{
    Fixture f;
    auto cfg = makeRtcConfig(f.linear.pipeline());
    EXPECT_NO_THROW(cfg.validate(f.linear.pipeline(), f.dev));
    ASSERT_EQ(cfg.groups.size(), 1u);
    EXPECT_EQ(cfg.groups[0].model, ExecModel::RTC);
}

TEST(ModelConfig, RtcConfigRejectedForRecursion)
{
    Fixture f;
    auto cfg = makeRtcConfig(f.recursive.pipeline());
    EXPECT_THROW(cfg.validate(f.recursive.pipeline(), f.dev),
                 FatalError);
}

TEST(ModelConfig, MegakernelConfigValidForRecursion)
{
    Fixture f;
    auto cfg = makeMegakernelConfig(f.recursive.pipeline());
    EXPECT_NO_THROW(cfg.validate(f.recursive.pipeline(), f.dev));
}

TEST(ModelConfig, CoarseAssignsDisjointSms)
{
    Fixture f;
    auto cfg = makeCoarseConfig(f.linear.pipeline(), f.dev);
    EXPECT_NO_THROW(cfg.validate(f.linear.pipeline(), f.dev));
    ASSERT_EQ(cfg.groups.size(), 3u);
    int total = 0;
    for (const auto& g : cfg.groups) {
        EXPECT_GE(g.sms.size(), 1u);
        total += static_cast<int>(g.sms.size());
    }
    EXPECT_LE(total, f.dev.numSms);
}

TEST(ModelConfig, CoarseHonorsShares)
{
    Fixture f;
    auto cfg = makeCoarseConfig(f.linear.pipeline(), f.dev,
                                {1.0, 10.0, 1.0});
    // The heavily weighted middle stage gets the most SMs.
    EXPECT_GT(cfg.groups[1].sms.size(), cfg.groups[0].sms.size());
    EXPECT_GT(cfg.groups[1].sms.size(), cfg.groups[2].sms.size());
}

TEST(ModelConfig, FineConfigFitsOnOneSm)
{
    Fixture f;
    auto cfg = makeFineConfig(f.linear.pipeline(), f.dev);
    EXPECT_NO_THROW(cfg.validate(f.linear.pipeline(), f.dev));
    const auto& g = cfg.groups[0];
    EXPECT_EQ(g.model, ExecModel::FinePipeline);
    long regs = 0;
    for (const auto& [s, b] : g.blocksPerSm) {
        EXPECT_GE(b, 1);
        regs += long(b) * 256
            * f.linear.pipeline().stage(s).resources.regsPerThread;
    }
    EXPECT_LE(regs, f.dev.regsPerSm);
}

TEST(ModelConfig, ValidateRejectsPartialCoverage)
{
    Fixture f;
    PipelineConfig cfg;
    StageGroup g;
    g.stages = {0, 1}; // stage 2 missing
    g.model = ExecModel::Megakernel;
    cfg.groups.push_back(g);
    EXPECT_THROW(cfg.validate(f.linear.pipeline(), f.dev), FatalError);
}

TEST(ModelConfig, ValidateRejectsOverlappingGroups)
{
    Fixture f;
    PipelineConfig cfg;
    StageGroup a, b;
    a.stages = {0, 1};
    b.stages = {1, 2};
    a.model = b.model = ExecModel::Megakernel;
    cfg.groups = {a, b};
    EXPECT_THROW(cfg.validate(f.linear.pipeline(), f.dev), FatalError);
}

TEST(ModelConfig, ValidateRejectsSharedSms)
{
    Fixture f;
    PipelineConfig cfg;
    StageGroup a, b;
    a.stages = {0};
    a.sms = {0, 1};
    b.stages = {1, 2};
    b.sms = {1, 2};
    a.model = b.model = ExecModel::Megakernel;
    cfg.groups = {a, b};
    EXPECT_THROW(cfg.validate(f.linear.pipeline(), f.dev), FatalError);
}

TEST(ModelConfig, ValidateRejectsInfeasibleFineMapping)
{
    Fixture f;
    PipelineConfig cfg;
    StageGroup g;
    g.stages = {0, 1, 2};
    g.model = ExecModel::FinePipeline;
    g.blocksPerSm = {{0, 16}, {1, 16}, {2, 16}}; // 48 blocks > 16 cap
    cfg.groups = {g};
    EXPECT_THROW(cfg.validate(f.linear.pipeline(), f.dev), FatalError);
}

TEST(ModelConfig, ValidateRejectsBadThreadsPerBlock)
{
    Fixture f;
    auto cfg = makeMegakernelConfig(f.linear.pipeline());
    cfg.threadsPerBlock = 100; // not a warp multiple
    EXPECT_THROW(cfg.validate(f.linear.pipeline(), f.dev), FatalError);
}

TEST(ModelConfig, MergedResourcesMaxRegsSumCode)
{
    Fixture f;
    auto merged = mergedResources(f.linear.pipeline(), {0, 1, 2});
    EXPECT_EQ(merged.regsPerThread, 48);
    EXPECT_EQ(merged.codeBytes, 4000 + 6000 + 3000);
}

TEST(ModelConfig, DescribeNamesModelsAndStages)
{
    Fixture f;
    auto cfg = makeMegakernelConfig(f.linear.pipeline());
    std::string d = cfg.describe(f.linear.pipeline());
    EXPECT_NE(d.find("Megakernel"), std::string::npos);
    EXPECT_NE(d.find("gen"), std::string::npos);
    EXPECT_EQ(makeKbkConfig().describe(f.linear.pipeline()), "KBK");
}

TEST(ExecModelMeta, NamesAndCharacteristics)
{
    EXPECT_STREQ(execModelName(ExecModel::Megakernel), "Megakernel");
    // Figure 6 spot checks from the paper's analysis.
    EXPECT_EQ(modelCharacteristic(ExecModel::RTC,
                                  ModelMetric::DataLocality),
              MetricLevel::Good);
    EXPECT_EQ(modelCharacteristic(ExecModel::RTC,
                                  ModelMetric::Applicability),
              MetricLevel::Poor);
    EXPECT_EQ(modelCharacteristic(ExecModel::Megakernel,
                                  ModelMetric::HardwareUsage),
              MetricLevel::Poor);
    EXPECT_EQ(modelCharacteristic(ExecModel::FinePipeline,
                                  ModelMetric::SimplicityControl),
              MetricLevel::Poor);
    EXPECT_EQ(modelCharacteristic(ExecModel::KBK,
                                  ModelMetric::TaskParallelism),
              MetricLevel::Poor);
    // KbkStream has no Figure 6 column.
    EXPECT_THROW(modelCharacteristic(ExecModel::KbkStream,
                                     ModelMetric::DataLocality),
                 FatalError);
}

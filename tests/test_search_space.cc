/**
 * @file
 * Unit tests for the offline tuner's search-space enumeration.
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"
#include "tuner/search_space.hh"

using namespace vp;
using namespace vp::test;

TEST(SearchSpace, ContiguousPartitionsCount)
{
    // 2^(n-1) partitions of a chain of n.
    EXPECT_EQ(contiguousPartitions(1).size(), 1u);
    EXPECT_EQ(contiguousPartitions(3).size(), 4u);
    EXPECT_EQ(contiguousPartitions(5).size(), 16u);
}

TEST(SearchSpace, PartitionsAreContiguousAndComplete)
{
    for (const auto& part : contiguousPartitions(4)) {
        int expect = 0;
        for (const auto& grp : part)
            for (int s : grp)
                EXPECT_EQ(s, expect++);
        EXPECT_EQ(expect, 4);
    }
}

TEST(SearchSpace, SmAllocationsSumAndFloor)
{
    auto allocs = smAllocations(13, {1.0, 3.0}, 8);
    EXPECT_FALSE(allocs.empty());
    for (const auto& a : allocs) {
        EXPECT_EQ(a.size(), 2u);
        EXPECT_EQ(a[0] + a[1], 13);
        EXPECT_GE(a[0], 1);
        EXPECT_GE(a[1], 1);
    }
    // Work-proportional candidate favors the heavy group.
    EXPECT_GT(allocs[0][1], allocs[0][0]);
}

TEST(SearchSpace, SingleGroupGetsAllSms)
{
    auto allocs = smAllocations(13, {1.0}, 8);
    ASSERT_EQ(allocs.size(), 1u);
    EXPECT_EQ(allocs[0][0], 13);
}

TEST(SearchSpace, RtcInlinableRules)
{
    LinearApp lin;
    EXPECT_TRUE(rtcInlinable(lin.pipeline(), {0, 1, 2}));
    EXPECT_TRUE(rtcInlinable(lin.pipeline(), {0, 1}));
    EXPECT_TRUE(rtcInlinable(lin.pipeline(), {1, 2}));
    // Single-stage groups gain nothing from inlining.
    EXPECT_FALSE(rtcInlinable(lin.pipeline(), {0}));

    RecursiveApp rec;
    // Stage 0 self-loops: no RTC group containing it.
    EXPECT_FALSE(rtcInlinable(rec.pipeline(), {0, 1}));
    EXPECT_TRUE(rtcInlinable(rec.pipeline(), {1, 2}));
}

TEST(SearchSpace, EnumerateProducesValidConfigs)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto profile = profileApp(engine, app);
    auto configs = enumerateConfigs(app.pipeline(),
                                    DeviceConfig::k20c(), profile);
    EXPECT_GT(configs.size(), 10u);
    for (const auto& cfg : configs) {
        EXPECT_NO_THROW(cfg.validate(app.pipeline(),
                                     DeviceConfig::k20c()));
    }
}

TEST(SearchSpace, EnumerateCoversAllPrimaryModels)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto profile = profileApp(engine, app);
    auto configs = enumerateConfigs(app.pipeline(),
                                    DeviceConfig::k20c(), profile);
    bool has_rtc = false, has_mk = false, has_fine = false,
         has_multi_group = false;
    for (const auto& cfg : configs) {
        if (cfg.groups.size() == 1) {
            if (cfg.groups[0].model == ExecModel::RTC)
                has_rtc = true;
            if (cfg.groups[0].model == ExecModel::Megakernel)
                has_mk = true;
            if (cfg.groups[0].model == ExecModel::FinePipeline)
                has_fine = true;
        } else {
            has_multi_group = true;
        }
    }
    EXPECT_TRUE(has_rtc);
    EXPECT_TRUE(has_mk);
    EXPECT_TRUE(has_fine);
    EXPECT_TRUE(has_multi_group);
}

TEST(SearchSpace, RecursivePipelineExcludesRtcOverCycle)
{
    RecursiveApp app;
    Engine engine(DeviceConfig::k20c());
    auto profile = profileApp(engine, app);
    auto configs = enumerateConfigs(app.pipeline(),
                                    DeviceConfig::k20c(), profile);
    for (const auto& cfg : configs) {
        for (const auto& g : cfg.groups) {
            if (g.model == ExecModel::RTC) {
                for (int s : g.stages)
                    EXPECT_NE(s, 0); // stage 0 self-loops
            }
        }
    }
}

TEST(SearchSpace, MaxConfigsCapRespected)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto profile = profileApp(engine, app);
    SearchOptions opts;
    opts.maxConfigs = 5;
    auto configs = enumerateConfigs(app.pipeline(),
                                    DeviceConfig::k20c(), profile,
                                    opts);
    EXPECT_LE(configs.size(), 5u);
}

TEST(SearchSpace, BlockMappingsHonorOccupancyBound)
{
    LinearApp app;
    Engine engine(DeviceConfig::k20c());
    auto profile = profileApp(engine, app);
    auto configs = enumerateConfigs(app.pipeline(),
                                    DeviceConfig::k20c(), profile);
    const DeviceConfig dev = DeviceConfig::k20c();
    for (const auto& cfg : configs) {
        for (const auto& g : cfg.groups) {
            if (g.model != ExecModel::FinePipeline)
                continue;
            for (const auto& [s, b] : g.blocksPerSm) {
                EXPECT_LE(b, profile.stages[s].maxBlocksPerSm)
                    << "stage " << s;
            }
        }
    }
}

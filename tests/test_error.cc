/**
 * @file
 * Unit tests for the error-reporting macros.
 */

#include <gtest/gtest.h>

#include "common/error.hh"

using namespace vp;

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(VP_FATAL("bad config " << 3), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(VP_PANIC("bug " << 7), PanicError);
}

TEST(Error, MessagesCarryPayload)
{
    try {
        VP_FATAL("value was " << 42);
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

TEST(Error, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(VP_ASSERT(1 + 1 == 2, "math"));
}

TEST(Error, AssertThrowsOnFalse)
{
    EXPECT_THROW(VP_ASSERT(false, "nope"), PanicError);
}

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(VP_REQUIRE(true, "fine"));
}

TEST(Error, RequireThrowsFatalOnFalse)
{
    EXPECT_THROW(VP_REQUIRE(false, "user error"), FatalError);
}

TEST(Error, CheckPassesOnTrue)
{
    EXPECT_NO_THROW(VP_CHECK(true, ErrorCode::Deadlock, "fine"));
}

TEST(Error, CheckCarriesTypedCode)
{
    try {
        VP_CHECK(false, ErrorCode::QueueOverflow,
                 "queue `q" << 3 << "` over capacity");
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::QueueOverflow);
        std::string what = e.what();
        EXPECT_NE(what.find("queue-overflow"), std::string::npos);
        EXPECT_NE(what.find("queue `q3` over capacity"),
                  std::string::npos);
    }
}

TEST(Error, DefaultCodeIsGeneric)
{
    try {
        VP_FATAL("plain failure");
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Generic);
        // Generic errors don't advertise a code in the message.
        EXPECT_EQ(std::string(e.what()).find("[generic]"),
                  std::string::npos);
    }
}

TEST(Error, CodeNamesAreDistinct)
{
    const ErrorCode codes[] = {
        ErrorCode::Generic,    ErrorCode::Config,
        ErrorCode::Input,      ErrorCode::Stall,
        ErrorCode::Deadlock,   ErrorCode::Livelock,
        ErrorCode::SmFailure,  ErrorCode::QueueOverflow,
        ErrorCode::Timeout,
    };
    for (std::size_t i = 0; i < std::size(codes); ++i) {
        for (std::size_t j = i + 1; j < std::size(codes); ++j) {
            EXPECT_STRNE(errorCodeName(codes[i]),
                         errorCodeName(codes[j]));
        }
    }
}

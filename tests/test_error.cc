/**
 * @file
 * Unit tests for the error-reporting macros.
 */

#include <gtest/gtest.h>

#include "common/error.hh"

using namespace vp;

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(VP_FATAL("bad config " << 3), FatalError);
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(VP_PANIC("bug " << 7), PanicError);
}

TEST(Error, MessagesCarryPayload)
{
    try {
        VP_FATAL("value was " << 42);
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("value was 42"),
                  std::string::npos);
    }
}

TEST(Error, AssertPassesOnTrue)
{
    EXPECT_NO_THROW(VP_ASSERT(1 + 1 == 2, "math"));
}

TEST(Error, AssertThrowsOnFalse)
{
    EXPECT_THROW(VP_ASSERT(false, "nope"), PanicError);
}

TEST(Error, RequirePassesOnTrue)
{
    EXPECT_NO_THROW(VP_REQUIRE(true, "fine"));
}

TEST(Error, RequireThrowsFatalOnFalse)
{
    EXPECT_THROW(VP_REQUIRE(false, "user error"), FatalError);
}

/**
 * @file
 * Tests of the multi-threaded candidate sweep: the parallel tuner
 * must pick a configuration bit-identical to the serial sweep's, for
 * any thread count, because per-candidate runs are deterministic and
 * the arg-min reduction is serialized in candidate order.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

namespace {

TunerResult
runSerial(const TunerOptions& opts = {})
{
    Engine engine(DeviceConfig::k20c());
    auto driver = makeApp("pyramid", AppScale::Small);
    return autotune(engine, *driver, opts);
}

TunerResult
runParallel(int threads)
{
    TunerOptions opts;
    opts.threads = threads;
    return autotuneParallel(
        DeviceConfig::k20c(),
        [] { return makeApp("pyramid", AppScale::Small); }, opts);
}

} // namespace

TEST(ParallelTuner, SingleThreadMatchesSerialExactly)
{
    TunerResult serial = runSerial();
    TunerResult par = runParallel(1);
    EXPECT_EQ(par.bestRun.cycles, serial.bestRun.cycles);
    EXPECT_EQ(par.bestRun.configName, serial.bestRun.configName);
    EXPECT_EQ(par.evaluated, serial.evaluated);
    // With one worker, the cutoff sequence is the serial one, so
    // even the pruning bookkeeping coincides.
    EXPECT_EQ(par.timedOut, serial.timedOut);
    ASSERT_EQ(par.finished.size(), serial.finished.size());
    for (std::size_t i = 0; i < par.finished.size(); ++i) {
        EXPECT_EQ(par.finished[i].first, serial.finished[i].first);
        EXPECT_EQ(par.finished[i].second, serial.finished[i].second);
    }
}

TEST(ParallelTuner, FourThreadsPickSerialBest)
{
    TunerResult serial = runSerial();
    TunerResult par = runParallel(4);
    // Bit-identical winner: same cycles, same configuration, same
    // device-time conversion.
    EXPECT_EQ(par.bestRun.cycles, serial.bestRun.cycles);
    EXPECT_EQ(par.bestRun.ms, serial.bestRun.ms);
    EXPECT_EQ(par.bestRun.configName, serial.bestRun.configName);
    EXPECT_EQ(par.evaluated, serial.evaluated);
    // Interleaving can only let MORE candidates finish (cutoffs
    // tighten later than in the serial sweep), never fewer.
    EXPECT_LE(par.timedOut, serial.timedOut);
}

TEST(ParallelTuner, ParallelSweepIsInternallyDeterministic)
{
    TunerResult a = runParallel(3);
    TunerResult b = runParallel(3);
    EXPECT_EQ(a.bestRun.cycles, b.bestRun.cycles);
    EXPECT_EQ(a.bestRun.configName, b.bestRun.configName);
}

TEST(ParallelTuner, BestRunVerifies)
{
    TunerResult par = runParallel(2);
    EXPECT_TRUE(par.bestRun.completed);
    EXPECT_GT(par.bestRun.cycles, 0.0);
    EXPECT_GT(par.bestRun.simEvents, 0u);
}

TEST(ParallelTuner, RejectsBadArguments)
{
    EXPECT_THROW(autotuneParallel(DeviceConfig::k20c(), nullptr),
                 FatalError);
    TunerOptions opts;
    opts.timeoutFactor = 0.5;
    EXPECT_THROW(
        autotuneParallel(
            DeviceConfig::k20c(),
            [] { return makeApp("pyramid", AppScale::Small); }, opts),
        FatalError);
}

/**
 * @file
 * Seeding semantics (multi-stage and mid-pipeline insertIntoQueue)
 * and failure-injection tests (unlaunchable kernels, drained-but-
 * pending detection).
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

/** Seeds items into BOTH the entry and the middle stage. */
class MidSeedApp : public LinearApp
{
  public:
    MidSeedApp() : LinearApp(1, 20) {}

    void
    seedFlow(Seeder& seeder, int flow) override
    {
        LinearApp::seedFlow(seeder, flow);
        // Mid-pipeline insertion (the paper's insertIntoQueue works
        // for any stage): these skip the gen stage entirely.
        std::vector<ToyItem> mids;
        for (int i = 0; i < 10; ++i)
            mids.push_back(ToyItem{5000 + i, 0});
        seeder.insert<LinearWork>(std::move(mids));
        // Single-item overload.
        seeder.insert<LinearWork>(ToyItem{9999, 0});
    }

    bool
    verify() override
    {
        auto& sink = pipeline().stageAs<LinearSink>();
        // 20 through the full chain + 11 mid-seeded.
        return sink.results.size() == 31u;
    }
};

} // namespace

TEST(Seeding, MidPipelineInsertionWorks)
{
    MidSeedApp app;
    Engine engine(DeviceConfig::k20c());
    for (const PipelineConfig& cfg :
         {makeKbkConfig(), makeMegakernelConfig(app.pipeline()),
          makeCoarseConfig(app.pipeline(), DeviceConfig::k20c())}) {
        auto r = engine.run(app, cfg);
        EXPECT_TRUE(r.completed) << r.configName;
        EXPECT_EQ(r.stages[1].items, 31u) << r.configName;
        EXPECT_EQ(r.stages[0].items, 20u) << r.configName;
    }
}

TEST(Seeding, MidSeededItemsBypassUpstreamStages)
{
    MidSeedApp app;
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    // gen's queue only ever saw the 20 entry seeds.
    EXPECT_EQ(r.stages[0].queue.pops, 20u);
    EXPECT_EQ(r.stages[1].queue.pops, 31u);
}

TEST(Failures, UnlaunchableGroupKernelIsRejected)
{
    // Merged megakernel so fat it cannot fit a single block.
    LinearApp app;
    app.pipeline().stage(1).resources.regsPerThread = 255;
    auto cfg = makeMegakernelConfig(app.pipeline());
    cfg.threadsPerBlock = 1024; // 255 x 1024 regs >> register file
    Engine engine(DeviceConfig::k20c());
    EXPECT_THROW(engine.run(app, cfg), FatalError);
}

TEST(Failures, FineMappingBeyondOccupancyRejected)
{
    LinearApp app;
    PipelineConfig cfg;
    StageGroup g;
    g.stages = {0, 1, 2};
    g.model = ExecModel::FinePipeline;
    // work at 48 regs x 256 threads allows 5 blocks; demand 12.
    g.blocksPerSm = {{0, 2}, {1, 12}, {2, 2}};
    cfg.groups = {g};
    Engine engine(DeviceConfig::k20c());
    EXPECT_THROW(engine.run(app, cfg), FatalError);
}

TEST(Failures, VerifyFailureIsReportedNotThrown)
{
    // An app whose verify() is simply wrong must surface
    // completed=false rather than crash.
    class LyingApp : public LinearApp
    {
      public:
        bool verify() override { return false; }
    };
    LyingApp app;
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_FALSE(r.completed);
}

TEST(Failures, EmptySeedDrainsImmediately)
{
    class EmptyApp : public LinearApp
    {
      public:
        void seedFlow(Seeder&, int) override {}

        bool
        verify() override
        {
            return pipeline().stageAs<LinearSink>().results.empty();
        }
    };
    EmptyApp app;
    Engine engine(DeviceConfig::k20c());
    // No work ever arrives: the pending counter never starts, so
    // persistent kernels would wait forever. KBK handles it: no
    // launches happen and the host simply finishes.
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.device.kernelLaunches, 0u);
}

TEST(Failures, ZeroOccupancyFineStageRejected)
{
    LinearApp app;
    app.pipeline().stage(0).resources.regsPerThread = 300;
    Engine engine(DeviceConfig::k20c());
    EXPECT_THROW(
        {
            auto cfg = makeFineConfig(app.pipeline(),
                                      DeviceConfig::k20c());
            engine.run(app, cfg);
        },
        FatalError);
}

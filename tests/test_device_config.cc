/**
 * @file
 * Unit tests for device presets and unit conversions.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "gpu/device_config.hh"

using namespace vp;

TEST(DeviceConfig, K20cMirrorsPublishedSpecs)
{
    auto c = DeviceConfig::k20c();
    EXPECT_EQ(c.numSms, 13);
    EXPECT_DOUBLE_EQ(c.clockGhz, 0.706);
    EXPECT_EQ(c.regsPerSm, 65536);
    EXPECT_EQ(c.smemPerSm, 49152);
}

TEST(DeviceConfig, Gtx1080MirrorsPublishedSpecs)
{
    auto c = DeviceConfig::gtx1080();
    EXPECT_EQ(c.numSms, 20);
    EXPECT_DOUBLE_EQ(c.clockGhz, 1.607);
    EXPECT_EQ(c.maxBlocksPerSm, 32);
}

TEST(DeviceConfig, ByNameResolvesPresets)
{
    EXPECT_EQ(DeviceConfig::byName("k20c").name, "k20c");
    EXPECT_EQ(DeviceConfig::byName("gtx1080").name, "gtx1080");
    EXPECT_THROW(DeviceConfig::byName("tpu"), FatalError);
}

TEST(DeviceConfig, UsToCyclesRoundTrip)
{
    auto c = DeviceConfig::k20c();
    // 1 us at 0.706 GHz = 706 cycles.
    EXPECT_NEAR(c.usToCycles(1.0), 706.0, 1e-9);
    EXPECT_NEAR(c.cyclesToMs(c.usToCycles(1000.0)), 1.0, 1e-9);
}

TEST(DeviceConfig, MemcpyCostGrowsWithBytes)
{
    auto c = DeviceConfig::k20c();
    EXPECT_GT(c.memcpyCycles(1 << 20), c.memcpyCycles(1 << 10));
    // Even a zero-byte copy pays the call latency.
    EXPECT_GT(c.memcpyCycles(0.0), 0.0);
}

TEST(DeviceConfig, Gtx1080IsFasterPerLaunchInWallTime)
{
    auto a = DeviceConfig::k20c();
    auto b = DeviceConfig::gtx1080();
    // Same wall-clock launch overhead translates to more cycles on the
    // faster-clocked part.
    EXPECT_GT(b.usToCycles(b.kernelLaunchUs),
              a.usToCycles(a.kernelLaunchUs));
    EXPECT_NEAR(b.cyclesToMs(b.usToCycles(6.0)),
                a.cyclesToMs(a.usToCycles(6.0)), 1e-12);
}

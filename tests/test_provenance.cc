/**
 * @file
 * Item-provenance tests: passivity (an armed run is bit-identical to
 * a plain one), lineage conservation (every tracked item resolves to
 * exactly one terminal fate) across clean runs, retries, retry
 * exhaustion, SM kills and whole-device failover, the exact
 * wait+service+transfer == end-to-end decomposition invariant, the
 * critical path naming interconnect links on multi-device plans, and
 * the seed-sampling knob.
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/engine.hh"
#include "core/recovery.hh"
#include "core/shard.hh"
#include "obs/obs.hh"
#include "sim/fault.hh"
#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

/** Provenance armed, tracer off: the leanest armed configuration. */
ObsConfig
provConfig(std::uint64_t sampleEvery = 1)
{
    ObsConfig oc;
    oc.trace = false;
    oc.sampleIntervalCycles = 0.0;
    oc.provenance = true;
    oc.provenanceSampleEvery = sampleEvery;
    return oc;
}

/** Per-stage processed-item counts (the conservation fingerprint). */
std::vector<std::uint64_t>
stageItems(const RunResult& r)
{
    std::vector<std::uint64_t> v;
    for (const StageRunStats& s : r.stages)
        v.push_back(s.items + s.deadLettered);
    return v;
}

/**
 * The conservation + invariant core: every tracked record reached a
 * terminal fate exactly once (fates partition the record set, nothing
 * is Open) and the latency decomposition is exact.
 */
void
expectProvenanceConserved(const RunResult& r)
{
    ASSERT_TRUE(r.obs && r.obs->provenance);
    const ProvenanceTracker& pv = *r.obs->provenance;
    EXPECT_EQ(pv.countByFate(ItemFate::Open), 0u);
    EXPECT_EQ(pv.countByFate(ItemFate::Completed)
                  + pv.countByFate(ItemFate::DeadLettered)
                  + pv.countByFate(ItemFate::Dropped),
              pv.records().size());
    for (std::size_t i = 0; i < pv.records().size(); ++i)
        EXPECT_NE(pv.records()[i].fate, ItemFate::Open)
            << "item " << (i + 1) << " never resolved";
    EXPECT_DOUBLE_EQ(pv.maxInvariantError(), 0.0);
}

DeviceGroupConfig
groupOf(int n)
{
    return DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), n);
}

FaultPlan
killDeviceAt(int device, Tick time)
{
    FaultPlan fp;
    DeviceFaultEvent e;
    e.time = time;
    e.device = device;
    fp.deviceEvents.push_back(e);
    return fp;
}

} // namespace

// ------------------------- passivity ---------------------------- //

TEST(Provenance, ArmedRunIsBitIdentical)
{
    // The acceptance scenario: a provenance-enabled raster run must
    // be bit-identical to a disabled one — same event sequence, same
    // virtual clock, same per-stage fingerprint.
    auto app = makeApp("raster", AppScale::Small);
    PipelineConfig cfg = makeCoarseConfig(
        app->pipeline(), DeviceConfig::byName("gtx1080"));

    Engine plain(DeviceConfig::byName("gtx1080"));
    RunResult base = plain.run(*app, cfg);
    ASSERT_TRUE(base.completed) << base.failureReason;

    Engine armed(DeviceConfig::byName("gtx1080"));
    armed.setObservability(provConfig());
    RunResult traced = armed.run(*app, cfg);
    ASSERT_TRUE(traced.completed) << traced.failureReason;

    EXPECT_EQ(base.simEvents, traced.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, traced.cycles);
    EXPECT_EQ(stageItems(base), stageItems(traced));
    EXPECT_GT(traced.obs->provenance->records().size(), 0u);
}

TEST(Provenance, ArmedRunIsBitIdenticalUnderFaults)
{
    // Passivity must survive the fault/retry machinery too: the
    // tracker observes redeliveries and dead-letters without
    // disturbing the fault RNG or the retry timers.
    FaultPlan plan;
    plan.seed = 5;
    plan.taskFailProb = 0.05;
    RecoveryConfig rc;
    rc.maxRetries = 8;

    LinearApp app1(2, 64);
    Engine plain(DeviceConfig::k20c());
    plain.setFaultPlan(plan);
    plain.setRecovery(rc);
    RunResult base =
        plain.run(app1, makeMegakernelConfig(app1.pipeline()));

    LinearApp app2(2, 64);
    Engine armed(DeviceConfig::k20c());
    armed.setFaultPlan(plan);
    armed.setRecovery(rc);
    armed.setObservability(provConfig());
    RunResult traced =
        armed.run(app2, makeMegakernelConfig(app2.pipeline()));

    EXPECT_EQ(base.simEvents, traced.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, traced.cycles);
    EXPECT_EQ(stageItems(base), stageItems(traced));
    EXPECT_GT(base.faults.tasksRetried, 0u);
}

// ------------------------- conservation ------------------------- //

TEST(Provenance, CleanRunsConserveAcrossAllModels)
{
    Engine engine(DeviceConfig::k20c());
    engine.setObservability(provConfig());

    std::vector<PipelineConfig> configs;
    {
        LinearApp probe;
        configs.push_back(makeMegakernelConfig(probe.pipeline()));
        configs.push_back(makeKbkConfig());
        configs.push_back(makeFineConfig(probe.pipeline(),
                                         engine.deviceConfig()));
        configs.push_back(makeDynamicParallelismConfig());
    }
    for (const PipelineConfig& cfg : configs) {
        LinearApp app(2, 64);
        RunResult r = engine.run(app, cfg);
        ASSERT_TRUE(r.completed)
            << r.configName << ": " << r.failureReason;
        const ProvenanceTracker& pv = *r.obs->provenance;
        EXPECT_EQ(pv.seedsSeen(),
                  static_cast<std::uint64_t>(app.totalItems()))
            << r.configName;
        EXPECT_EQ(pv.seedsTracked(), pv.seedsSeen()) << r.configName;
        // A clean run completes everything it tracks.
        EXPECT_EQ(pv.countByFate(ItemFate::Completed),
                  pv.records().size())
            << r.configName;
        expectProvenanceConserved(r);
        // Each non-seed stage's item was minted from a tracked
        // parent, so lineage chains reach all the way back.
        std::uint64_t withParent = 0;
        for (const ItemRecord& rec : pv.records())
            if (rec.parent != 0)
                ++withParent;
        EXPECT_GT(withParent, 0u) << r.configName;
    }
}

TEST(Provenance, RetriedItemsResolveOnce)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.taskFailProb = 0.05;
    RecoveryConfig rc;
    rc.maxRetries = 8; // ample: nothing should dead-letter

    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setRecovery(rc);
    engine.setObservability(provConfig());

    LinearApp app(2, 64);
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;
    EXPECT_GT(r.faults.tasksRetried, 0u);
    const ProvenanceTracker& pv = *r.obs->provenance;
    // Retried items re-queue and complete exactly once; redelivery
    // must not mint duplicate records or leave Open ghosts.
    EXPECT_EQ(pv.countByFate(ItemFate::Completed), pv.records().size());
    expectProvenanceConserved(r);
}

TEST(Provenance, RetryExhaustionDeadLettersEverySeed)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.taskFailProb = 1.0; // every fetch faults: nothing survives
    RecoveryConfig rc;
    rc.maxRetries = 2;
    rc.backoffBaseCycles = 100.0;

    LinearApp app(1, 16);
    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setRecovery(rc);
    engine.setObservability(provConfig());
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));

    EXPECT_EQ(r.outcome, RunOutcome::Degraded);
    const ProvenanceTracker& pv = *r.obs->provenance;
    // Exactly the 16 seeds were tracked (no batch ever committed a
    // child) and every one of them burned its budget into the
    // dead-letter fate.
    EXPECT_EQ(pv.records().size(), 16u);
    EXPECT_EQ(pv.countByFate(ItemFate::DeadLettered), 16u);
    expectProvenanceConserved(r);
}

TEST(Provenance, DroppedPushesResolveAsDropped)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.pushDropProb = 0.1;
    plan.pushCorruptProb = 0.1;

    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setObservability(provConfig());
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));

    EXPECT_EQ(r.outcome, RunOutcome::Degraded);
    const ProvenanceTracker& pv = *r.obs->provenance;
    EXPECT_EQ(pv.countByFate(ItemFate::Dropped),
              r.faults.droppedPushes);
    EXPECT_EQ(pv.countByFate(ItemFate::DeadLettered),
              r.faults.corruptedPushes);
    expectProvenanceConserved(r);
}

TEST(Provenance, SmKillConserves)
{
    FaultPlan plan;
    plan.seed = 11;
    SmFaultEvent kill;
    kill.time = 5000.0;
    kill.sm = 3;
    kill.kind = SmFaultEvent::Kind::Kill;
    plan.smEvents.push_back(kill);
    RecoveryConfig rc;
    rc.maxRetries = 6;

    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setRecovery(rc);
    engine.setObservability(provConfig());
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed) << r.failureReason;
    // Items captured on the killed SM are redelivered elsewhere and
    // must still resolve exactly once.
    expectProvenanceConserved(r);
}

TEST(Provenance, DeviceFailoverConserves)
{
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);
    ASSERT_TRUE(plan.anyPinned());

    // 24000 lands mid-flight with items resident on device 1 (same
    // probe as the failover suite's acceptance scenario).
    Engine group(groupOf(2));
    group.setFaultPlan(killDeviceAt(1, 24000.0));
    group.setRecovery(RecoveryConfig{});
    group.setObservability(provConfig());
    RunResult r = group.runSharded(*app, cfg, plan);

    EXPECT_EQ(r.outcome, RunOutcome::Degraded)
        << runOutcomeName(r.outcome) << "\n" << r.failureReason;
    EXPECT_GT(r.faults.itemsEvacuated, 0u);
    // Evacuation, re-homing and transfer redelivery shuffle items
    // between devices, but no lineage may be lost or double-counted.
    expectProvenanceConserved(r);
}

// ------------------------- decomposition ------------------------ //

TEST(Provenance, DecompositionTilesEndToEnd)
{
    auto app = makeApp("raster", AppScale::Small);
    Engine engine(DeviceConfig::byName("gtx1080"));
    engine.setObservability(provConfig());
    RunResult r = engine.run(
        *app, makeCoarseConfig(app->pipeline(),
                               DeviceConfig::byName("gtx1080")));
    ASSERT_TRUE(r.completed) << r.failureReason;

    const ProvenanceTracker& pv = *r.obs->provenance;
    EXPECT_DOUBLE_EQ(pv.maxInvariantError(), 0.0);
    for (const ItemRecord& rec : pv.records()) {
        ASSERT_EQ(rec.fate, ItemFate::Completed);
        // The invariant, spelled out: buckets partition the
        // end-to-end interval exactly, with no negative residue.
        EXPECT_DOUBLE_EQ(rec.waitCycles + rec.serviceCycles
                             + rec.transferCycles,
                         rec.e2e());
        EXPECT_GE(rec.waitCycles, 0.0);
        EXPECT_GE(rec.serviceCycles, 0.0);
        EXPECT_GE(rec.transferCycles, 0.0);
        EXPECT_FALSE(rec.hops.empty());
    }
    // The per-stage rollup covers every wait and service hop.
    std::uint64_t hops = 0;
    for (const ItemRecord& rec : pv.records())
        hops += rec.hops.size();
    std::uint64_t rolled = 0;
    for (const StageDecomposition& d : pv.stageDecomposition())
        rolled += d.waits + d.services;
    EXPECT_LE(rolled, hops);
    EXPECT_GT(rolled, 0u);

    // finalize() folded per-item latencies into the metrics registry.
    const auto& hist = r.obs->metrics.histograms();
    auto it = hist.find("prov/e2e_cycles");
    ASSERT_NE(it, hist.end());
    EXPECT_EQ(it->second.count(),
              pv.countByFate(ItemFate::Completed));
}

// ------------------------- critical path ------------------------ //

TEST(Provenance, CriticalPathNamesInterconnectOnPinnedPlan)
{
    // Acceptance: on a 2-device pinned plan the critical path must
    // attribute at least one segment to an interconnect link.
    auto app = makeApp("raster", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig cfg =
        makeCoarseConfig(pipe, DeviceConfig::byName("gtx1080"));
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);

    Engine group(groupOf(2));
    group.setObservability(provConfig());
    RunResult r = group.runSharded(*app, cfg, plan);
    ASSERT_TRUE(r.completed) << r.failureReason;

    const ProvenanceTracker& pv = *r.obs->provenance;
    expectProvenanceConserved(r);
    std::vector<PathSegment> path = pv.criticalPath();
    ASSERT_FALSE(path.empty());

    bool sawTransfer = false;
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (path[i].label.rfind("transfer:", 0) == 0)
            sawTransfer = true;
        EXPECT_DOUBLE_EQ(path[i].cycles, path[i].t1 - path[i].t0);
        if (i > 0) { // the chain's hops abut: no gaps, no overlap
            EXPECT_DOUBLE_EQ(path[i].t0, path[i - 1].t1);
        }
    }
    EXPECT_TRUE(sawTransfer)
        << "no interconnect segment on a pinned 2-device path";

    // The ranked rollup aggregates the same time the path covers.
    double pathCycles = 0.0;
    for (const PathSegment& s : path)
        pathCycles += s.cycles;
    double rankedCycles = 0.0;
    for (const auto& [label, cycles] : pv.rankedCriticalSegments())
        rankedCycles += cycles;
    EXPECT_DOUBLE_EQ(rankedCycles, pathCycles);
    // topN truncates but never reorders: the head entry dominates.
    auto top1 = pv.rankedCriticalSegments(1);
    ASSERT_EQ(top1.size(), 1u);
    EXPECT_EQ(top1[0].first, pv.rankedCriticalSegments()[0].first);
}

TEST(Provenance, CriticalPathEndsAtLastCompletion)
{
    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setObservability(provConfig());
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed);

    const ProvenanceTracker& pv = *r.obs->provenance;
    std::vector<PathSegment> path = pv.criticalPath();
    ASSERT_FALSE(path.empty());
    Tick lastDone = 0.0;
    for (const ItemRecord& rec : pv.records())
        if (rec.fate == ItemFate::Completed)
            lastDone = std::max(lastDone, rec.done);
    EXPECT_DOUBLE_EQ(path.back().t1, lastDone);
    // The path starts at (or after) some seed's birth, within the run.
    EXPECT_GE(path.front().t0, 0.0);
    EXPECT_LE(path.back().t1, r.cycles);
}

// ------------------------- sampling ----------------------------- //

TEST(Provenance, SamplingTracksEveryKthSeedLineage)
{
    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setObservability(provConfig(/*sampleEvery=*/4));
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    ASSERT_TRUE(r.completed);

    const ProvenanceTracker& pv = *r.obs->provenance;
    std::uint64_t seeds =
        static_cast<std::uint64_t>(app.totalItems());
    EXPECT_EQ(pv.seedsSeen(), seeds);
    EXPECT_EQ(pv.seedsTracked(), (seeds + 3) / 4); // every 4th
    // Children inherit tracking, so sampled lineages stay complete:
    // every record still resolves, and untracked seeds contribute
    // nothing at all.
    EXPECT_GT(pv.records().size(), pv.seedsTracked());
    expectProvenanceConserved(r);

    // Sampling must not perturb the run either.
    LinearApp plain(2, 64);
    Engine bare(DeviceConfig::k20c());
    RunResult base =
        bare.run(plain, makeMegakernelConfig(plain.pipeline()));
    EXPECT_EQ(base.simEvents, r.simEvents);
    EXPECT_DOUBLE_EQ(base.cycles, r.cycles);
}

TEST(Provenance, SamplingPhaseResetsBetweenRuns)
{
    // Run-reset-run equality: the tracker (and its seedsSeen_
    // counter, which drives the sampling phase) lives in the per-run
    // ObsData, so run 2 on a reused engine must sample exactly the
    // seeds run 1 did — no stride-phase leakage across runs — and
    // both must equal a fresh engine's first run.
    LinearApp app(2, 64);
    Engine reused(DeviceConfig::k20c());
    reused.setObservability(provConfig(/*sampleEvery=*/3));
    PipelineConfig cfg = makeMegakernelConfig(app.pipeline());
    RunResult r1 = reused.run(app, cfg);
    RunResult r2 = reused.run(app, cfg);
    ASSERT_TRUE(r1.completed);
    ASSERT_TRUE(r2.completed);

    LinearApp freshApp(2, 64);
    Engine fresh(DeviceConfig::k20c());
    fresh.setObservability(provConfig(/*sampleEvery=*/3));
    RunResult rf =
        fresh.run(freshApp, makeMegakernelConfig(freshApp.pipeline()));
    ASSERT_TRUE(rf.completed);

    const ProvenanceTracker& a = *r1.obs->provenance;
    const ProvenanceTracker& b = *r2.obs->provenance;
    const ProvenanceTracker& c = *rf.obs->provenance;
    EXPECT_EQ(b.seedsSeen(), a.seedsSeen());
    EXPECT_EQ(b.seedsTracked(), a.seedsTracked());
    EXPECT_EQ(b.records().size(), a.records().size());
    EXPECT_EQ(c.seedsSeen(), b.seedsSeen());
    EXPECT_EQ(c.seedsTracked(), b.seedsTracked());
    EXPECT_EQ(c.records().size(), b.records().size());
    // The phase restarts at seed 1 each run: every run sees the
    // app's full seed count and samples every 3rd from the start.
    EXPECT_EQ(b.seedsSeen(),
              static_cast<std::uint64_t>(app.totalItems()));
    EXPECT_EQ(b.seedsTracked(), (b.seedsSeen() + 2) / 3);
    expectProvenanceConserved(r2);
}

/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hh"

using namespace vp;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.at(30.0, [&] { order.push_back(3); });
    sim.at(10.0, [&] { order.push_back(1); });
    sim.at(20.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.at(5.0, [&] { order.push_back(1); });
    sim.at(5.0, [&] { order.push_back(2); });
    sim.at(5.0, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, AfterSchedulesRelativeToNow)
{
    Simulator sim;
    double seen = -1.0;
    sim.at(100.0, [&] {
        sim.after(50.0, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 150.0);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    EventHandle h = sim.at(10.0, [&] { ran = true; });
    sim.cancel(h);
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.eventsRun(), 0u);
}

TEST(Simulator, CancelAfterRunIsNoop)
{
    Simulator sim;
    bool ran = false;
    EventHandle h = sim.at(10.0, [&] { ran = true; });
    sim.run();
    EXPECT_TRUE(ran);
    sim.cancel(h); // must not crash or corrupt
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            sim.after(1.0, chain);
    };
    sim.after(1.0, chain);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, SchedulingInPastThrows)
{
    Simulator sim;
    sim.at(100.0, [&] {
        EXPECT_THROW(sim.at(50.0, [] {}), PanicError);
    });
    sim.run();
}

TEST(Simulator, NegativeDelayThrows)
{
    Simulator sim;
    EXPECT_THROW(sim.after(-1.0, [] {}), PanicError);
}

TEST(Simulator, RunBoundedDetectsRunaway)
{
    Simulator sim;
    std::function<void()> forever = [&] { sim.after(1.0, forever); };
    sim.after(1.0, forever);
    EXPECT_FALSE(sim.runBounded(1000));
    EXPECT_GE(sim.eventsRun(), 1000u);
}

TEST(Simulator, RunBoundedReturnsTrueOnDrain)
{
    Simulator sim;
    sim.after(1.0, [] {});
    sim.after(2.0, [] {});
    EXPECT_TRUE(sim.runBounded(1000));
}

TEST(Simulator, PendingEventsTracksCancellations)
{
    Simulator sim;
    EventHandle a = sim.at(1.0, [] {});
    sim.at(2.0, [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.cancel(a);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.cancel(a); // double-cancel is a no-op
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto trace = [] {
        Simulator sim;
        std::vector<double> times;
        for (int i = 0; i < 50; ++i) {
            sim.at(static_cast<double>((i * 37) % 17),
                   [&, i] { times.push_back(sim.now() + i); });
        }
        sim.run();
        return times;
    };
    EXPECT_EQ(trace(), trace());
}

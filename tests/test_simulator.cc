/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <limits>
#include <vector>

#include "sim/simulator.hh"

using namespace vp;

TEST(Simulator, StartsAtTimeZero)
{
    Simulator sim;
    EXPECT_DOUBLE_EQ(sim.now(), 0.0);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, RunsEventsInTimeOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.at(30.0, [&] { order.push_back(3); });
    sim.at(10.0, [&] { order.push_back(1); });
    sim.at(20.0, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(sim.now(), 30.0);
}

TEST(Simulator, SameTimeEventsRunInScheduleOrder)
{
    Simulator sim;
    std::vector<int> order;
    sim.at(5.0, [&] { order.push_back(1); });
    sim.at(5.0, [&] { order.push_back(2); });
    sim.at(5.0, [&] { order.push_back(3); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, AfterSchedulesRelativeToNow)
{
    Simulator sim;
    double seen = -1.0;
    sim.at(100.0, [&] {
        sim.after(50.0, [&] { seen = sim.now(); });
    });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 150.0);
}

TEST(Simulator, CancelPreventsExecution)
{
    Simulator sim;
    bool ran = false;
    EventHandle h = sim.at(10.0, [&] { ran = true; });
    sim.cancel(h);
    sim.run();
    EXPECT_FALSE(ran);
    EXPECT_EQ(sim.eventsRun(), 0u);
}

TEST(Simulator, CancelAfterRunIsNoop)
{
    Simulator sim;
    bool ran = false;
    EventHandle h = sim.at(10.0, [&] { ran = true; });
    sim.run();
    EXPECT_TRUE(ran);
    sim.cancel(h); // must not crash or corrupt
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, EventsCanScheduleMoreEvents)
{
    Simulator sim;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 100)
            sim.after(1.0, chain);
    };
    sim.after(1.0, chain);
    sim.run();
    EXPECT_EQ(depth, 100);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, SchedulingInPastThrows)
{
    Simulator sim;
    sim.at(100.0, [&] {
        EXPECT_THROW(sim.at(50.0, [] {}), PanicError);
    });
    sim.run();
}

TEST(Simulator, NegativeDelayThrows)
{
    Simulator sim;
    EXPECT_THROW(sim.after(-1.0, [] {}), PanicError);
}

TEST(Simulator, RunBoundedDetectsRunaway)
{
    Simulator sim;
    std::function<void()> forever = [&] { sim.after(1.0, forever); };
    sim.after(1.0, forever);
    EXPECT_FALSE(sim.runBounded(1000));
    EXPECT_GE(sim.eventsRun(), 1000u);
}

TEST(Simulator, RunBoundedReturnsTrueOnDrain)
{
    Simulator sim;
    sim.after(1.0, [] {});
    sim.after(2.0, [] {});
    EXPECT_TRUE(sim.runBounded(1000));
}

TEST(Simulator, PendingEventsTracksCancellations)
{
    Simulator sim;
    EventHandle a = sim.at(1.0, [] {});
    sim.at(2.0, [] {});
    EXPECT_EQ(sim.pendingEvents(), 2u);
    sim.cancel(a);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.cancel(a); // double-cancel is a no-op
    EXPECT_EQ(sim.pendingEvents(), 1u);
}

TEST(Simulator, StaleHandleAfterSlotRecycleIsNoop)
{
    Simulator sim;
    // A fires, freeing its slab slot; B then reuses it. Cancelling
    // through the stale handle to A must not kill B (generation
    // counters make the old handle mismatch).
    bool ranB = false;
    EventHandle a = sim.at(1.0, [] {});
    sim.run();
    sim.at(2.0, [&] { ranB = true; });
    sim.cancel(a);
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_TRUE(ranB);
}

TEST(Simulator, StaleHandleAfterCancelAndReuseIsNoop)
{
    Simulator sim;
    // Same as above but the slot is recycled through cancellation
    // rather than dispatch.
    bool ranB = false;
    EventHandle a = sim.at(1.0, [] {});
    sim.cancel(a);
    EventHandle b = sim.at(2.0, [&] { ranB = true; });
    sim.cancel(a); // stale: must not touch b's slot
    EXPECT_EQ(sim.pendingEvents(), 1u);
    sim.run();
    EXPECT_TRUE(ranB);
    sim.cancel(b); // post-run: no-op
}

TEST(Simulator, SlotsAreRecycledNotLeaked)
{
    Simulator sim;
    // Schedule/fire far more events than are ever pending at once;
    // the slab must stay at the high-water mark of pending events,
    // which PendingEventsTracksCancellations pins elsewhere. Here we
    // just confirm a long run with a small pending set works and
    // stays deterministic.
    int fired = 0;
    std::function<void()> tick = [&] {
        if (++fired < 10000)
            sim.after(1.0, tick);
    };
    sim.after(1.0, tick);
    sim.run();
    EXPECT_EQ(fired, 10000);
    EXPECT_EQ(sim.pendingEvents(), 0u);
}

TEST(Simulator, LargeCaptureFallsBackToHeap)
{
    Simulator sim;
    // A capture bigger than EventFn's inline buffer must still work
    // (heap fallback path).
    std::array<double, 32> payload{};
    payload[31] = 42.0;
    double seen = 0.0;
    sim.at(1.0, [payload, &seen] { seen = payload[31]; });
    sim.run();
    EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Simulator, NanDelayThrows)
{
    Simulator sim;
    EXPECT_THROW(
        sim.after(std::numeric_limits<double>::quiet_NaN(), [] {}),
        PanicError);
    EXPECT_THROW(
        sim.at(std::numeric_limits<double>::infinity(), [] {}),
        PanicError);
}

TEST(Simulator, SchedulingAtCurrentTimeRuns)
{
    Simulator sim;
    bool ran = false;
    sim.at(100.0, [&] { sim.at(sim.now(), [&] { ran = true; }); });
    sim.run();
    EXPECT_TRUE(ran);
    EXPECT_DOUBLE_EQ(sim.now(), 100.0);
}

TEST(Simulator, CancelHeavyWorkloadStaysConsistent)
{
    // Interleaved schedule/cancel with slot reuse: pendingEvents and
    // the dispatch order must stay exact throughout.
    Simulator sim;
    std::vector<int> fired;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 100; ++i)
        handles.push_back(
            sim.at(10.0 + i, [&fired, i] { fired.push_back(i); }));
    for (int i = 0; i < 100; i += 2)
        sim.cancel(handles[i]);
    EXPECT_EQ(sim.pendingEvents(), 50u);
    // Recycled slots host new events; old handles must stay stale.
    for (int i = 100; i < 150; ++i)
        handles.push_back(
            sim.at(5.0 + (i % 7), [&fired, i] { fired.push_back(i); }));
    for (int i = 0; i < 100; i += 2)
        sim.cancel(handles[i]); // all stale, all no-ops
    EXPECT_EQ(sim.pendingEvents(), 100u);
    sim.run();
    EXPECT_EQ(fired.size(), 100u);
    for (int i = 1; i < 100; i += 2)
        EXPECT_NE(std::find(fired.begin(), fired.end(), i),
                  fired.end());
}

TEST(EventFn, MoveTransfersCallable)
{
    int calls = 0;
    EventFn a = [&calls] { ++calls; };
    EventFn b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);
    a = std::move(b);
    a();
    EXPECT_EQ(calls, 2);
}

TEST(EventFn, WrapsStdFunction)
{
    // std::function is not trivially copyable: exercises the
    // non-trivial inline relocation path.
    int calls = 0;
    std::function<void()> f = [&calls] { ++calls; };
    EventFn e = f;
    EventFn moved = std::move(e);
    moved();
    EXPECT_EQ(calls, 1);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto trace = [] {
        Simulator sim;
        std::vector<double> times;
        for (int i = 0; i < 50; ++i) {
            sim.at(static_cast<double>((i * 37) % 17),
                   [&, i] { times.push_back(sim.now() + i); });
        }
        sim.run();
        return times;
    };
    EXPECT_EQ(trace(), trace());
}

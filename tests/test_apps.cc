/**
 * @file
 * Application tests: item-size invariants from Table 2, per-app
 * structural properties, and correctness of each application under
 * the baseline and VersaPipe execution models (small scale).
 */

#include <gtest/gtest.h>

#include "apps/cfd/cfd_app.hh"
#include "apps/facedetect/facedetect_app.hh"
#include "apps/ldpc/ldpc_app.hh"
#include "apps/pyramid/pyramid_app.hh"
#include "apps/raster/raster_app.hh"
#include "apps/registry.hh"
#include "apps/reyes/reyes_app.hh"

using namespace vp;

TEST(Apps, Table2ItemSizes)
{
    // Table 2 itemSz column: 12, 16, 272, 12, 4, 12 bytes.
    EXPECT_EQ(sizeof(pyramid::PyrItem), 12u);
    EXPECT_EQ(sizeof(facedetect::FdItem), 16u);
    EXPECT_EQ(sizeof(reyes::PatchItem), 272u);
    EXPECT_EQ(sizeof(cfd::CfdItem), 12u);
    EXPECT_EQ(sizeof(raster::RasterItem), 4u);
    EXPECT_EQ(sizeof(ldpc::LdpcItem), 12u);
}

TEST(Apps, Table1StageCountsAndStructures)
{
    // Table 1: stage counts 3/5/3/3/3/4 and structures.
    struct Want { const char* name; int stages;
                  PipelineStructure structure; };
    Want wants[] = {
        {"pyramid", 3, PipelineStructure::Recursion},
        {"facedetect", 5, PipelineStructure::Recursion},
        {"reyes", 3, PipelineStructure::Recursion},
        {"cfd", 3, PipelineStructure::Loop},
        {"raster", 3, PipelineStructure::Linear},
        {"ldpc", 4, PipelineStructure::Loop},
    };
    for (const Want& w : wants) {
        auto app = makeApp(w.name, AppScale::Small);
        EXPECT_EQ(app->pipeline().stageCount(), w.stages) << w.name;
        EXPECT_EQ(app->pipeline().structure(), w.structure)
            << w.name;
    }
}

TEST(Apps, RegistryRejectsUnknownName)
{
    EXPECT_THROW(makeApp("doom"), FatalError);
}

TEST(Apps, PyramidProducesVerifiedLevels)
{
    pyramid::PyramidApp app(pyramid::PyrParams::small());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_TRUE(r.completed);
    // 640x360 with minDim 24: levels 640,320,160,80,40 wide.
    EXPECT_EQ(app.levelCount(), 4);
    EXPECT_EQ(app.levelDims(1).first, 320);
}

TEST(Apps, PyramidWorkloadShrinksPerLevel)
{
    pyramid::PyramidApp app(pyramid::PyrParams::small());
    // Paper: resize workload varies by large factors across levels.
    EXPECT_GT(app.bandsInLevel(0), app.bandsInLevel(3));
}

TEST(Apps, FaceDetectFindsFacesAndVerifies)
{
    facedetect::FaceDetectApp app(facedetect::FdParams::small());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_TRUE(r.completed);
    // The synthetic cascade detects the planted markers.
    EXPECT_GT(app.detections().size(), 0u);
    // Scanning dominates item counts (one item per window).
    EXPECT_GT(r.stages[4].items, 1000u);
}

TEST(Apps, ReyesSplitsRecursivelyAndVerifies)
{
    reyes::ReyesApp app(reyes::ReyesParams::small());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeMegakernelConfig(app.pipeline()));
    EXPECT_TRUE(r.completed);
    // Recursion: more split tasks than seed patches, and every
    // diced patch is shaded.
    EXPECT_GT(r.stages[0].items,
              static_cast<std::uint64_t>(app.params().patches));
    EXPECT_EQ(r.stages[1].items, r.stages[2].items);
    EXPECT_GT(app.dicedPatches(), app.params().patches);
}

TEST(Apps, ReyesFramebufferNonEmpty)
{
    reyes::ReyesApp app(reyes::ReyesParams::small());
    Engine engine(DeviceConfig::k20c());
    engine.run(app, makeMegakernelConfig(app.pipeline()));
    int lit = 0;
    for (std::uint32_t v : app.framebuffer())
        lit += v != 0;
    EXPECT_GT(lit, 100);
}

TEST(Apps, CfdConvergesIdenticallyToReference)
{
    cfd::CfdApp app(cfd::CfdParams::small());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_TRUE(r.completed); // bitwise-equal density field
    // Wave structure: every stage ran blocks x expected-wave counts.
    auto blocks = static_cast<std::uint64_t>(app.blocks());
    auto outer = static_cast<std::uint64_t>(app.params().outerIters);
    auto inner = static_cast<std::uint64_t>(app.params().innerIters);
    EXPECT_EQ(r.stages[0].items, blocks * outer);
    EXPECT_EQ(r.stages[1].items, blocks * outer * inner);
    EXPECT_EQ(r.stages[2].items, blocks * outer * inner);
}

TEST(Apps, CfdKbkLaunchesSevenKernelsPerOuterIteration)
{
    // Paper sec 8.3: 14000 kernel calls for 2000 outer iterations.
    cfd::CfdParams p = cfd::CfdParams::small();
    p.outerIters = 5;
    cfd::CfdApp app(p);
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_EQ(r.device.kernelLaunches,
              static_cast<std::uint64_t>(7 * p.outerIters));
}

TEST(Apps, RasterDrawsAndVerifies)
{
    raster::RasterApp app(raster::RasterParams::small());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_TRUE(r.completed);
    // Back-face culling drops roughly half the triangles.
    EXPECT_GT(app.trianglesDrawn(), 0);
    EXPECT_LT(app.trianglesDrawn(), app.triangles());
}

TEST(Apps, RasterKbkRtcMixValidates)
{
    // The paper's Rasterization baseline fuses Clip+Interpolate into
    // one RTC kernel under KBK sequencing.
    raster::RasterApp app(raster::RasterParams::small());
    PipelineConfig cfg = makeKbkConfig();
    StageGroup fused, shade;
    fused.stages = {0, 1};
    fused.model = ExecModel::RTC;
    shade.stages = {2};
    shade.model = ExecModel::Megakernel;
    cfg.groups = {fused, shade};
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed);
    // Fused: interpolate's queue sees no traffic.
    EXPECT_EQ(r.stages[1].queue.pushes, 0u);
}

TEST(Apps, LdpcDecodesAndVerifies)
{
    ldpc::LdpcApp app(ldpc::LdpcParams::small());
    Engine engine(DeviceConfig::k20c());
    auto r = engine.run(app, makeKbkConfig());
    EXPECT_TRUE(r.completed);
    // Min-sum corrects most frames at 3% crossover.
    EXPECT_GT(app.correctedFrames(), app.params().frames / 2);
    // Iteration structure: C2V ran frames x iterations times.
    EXPECT_EQ(r.stages[1].items,
              static_cast<std::uint64_t>(app.params().frames
                                         * app.params().iterations));
}

TEST(Apps, ReyesDiceRegisterPressureMatchesPaper)
{
    // Paper sec 8.3: Megakernel Reyes consumes 255 regs -> 1
    // block/SM; per-stage kernels allow 2/1/4 blocks.
    reyes::ReyesApp app(reyes::ReyesParams::small());
    auto merged = mergedResources(app.pipeline(), {0, 1, 2});
    EXPECT_EQ(merged.regsPerThread, 255);
    EXPECT_EQ(app.pipeline().stage(0).resources.regsPerThread, 111);
    EXPECT_EQ(app.pipeline().stage(2).resources.regsPerThread, 61);
}

// Every app completes and verifies under every applicable model.
class AllAppsAllModels
    : public ::testing::TestWithParam<std::tuple<std::string, int>>
{};

TEST_P(AllAppsAllModels, CompletesAndVerifies)
{
    auto [name, model] = GetParam();
    auto app = makeApp(name, AppScale::Small);
    Pipeline& pipe = app->pipeline();
    DeviceConfig dev = DeviceConfig::k20c();
    PipelineConfig cfg;
    try {
        switch (model) {
          case 0:
            if (pipe.hasCycle()) {
                GTEST_SKIP()
                    << "RTC infeasible for recursive pipelines";
            }
            cfg = makeRtcConfig(pipe);
            break;
          case 1: cfg = makeKbkConfig(); break;
          case 2: cfg = makeMegakernelConfig(pipe); break;
          case 3: cfg = makeCoarseConfig(pipe, dev); break;
          case 4: cfg = makeFineConfig(pipe, dev); break;
        }
    } catch (const FatalError& e) {
        // Pure fine pipelines whose stages cannot co-reside on one
        // SM are legitimately infeasible (paper: fine groups are
        // chosen by the tuner, not forced over whole pipelines).
        GTEST_SKIP() << e.what();
    }
    Engine engine(dev);
    auto r = engine.run(*app, cfg);
    EXPECT_TRUE(r.completed) << name << " under " << r.configName;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllAppsAllModels,
    ::testing::Combine(
        ::testing::Values("pyramid", "facedetect", "reyes", "cfd",
                          "raster", "ldpc"),
        ::testing::Range(0, 5)));

/**
 * @file
 * Multi-device sharding tests: plan construction/validation, group
 * determinism, exact work conservation against single-device runs,
 * cross-device transfer accounting, multi-device speedup, and fault
 * recovery (an SM kill on one device must not wedge the group).
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/engine.hh"
#include "core/shard.hh"

using namespace vp;

namespace {

DeviceGroupConfig
twoGtx1080()
{
    return DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), 2);
}

/** Per-stage processed-item counts (the conservation fingerprint). */
std::vector<std::uint64_t>
stageItems(const RunResult& r)
{
    std::vector<std::uint64_t> v;
    for (const StageRunStats& s : r.stages)
        v.push_back(s.items + s.deadLettered);
    return v;
}

} // namespace

TEST(ShardPlan, FactoriesAndParse)
{
    auto app = makeApp("pyramid", AppScale::Small);
    Pipeline& pipe = app->pipeline();

    ShardPlan rep = ShardPlan::replicateAll(pipe);
    EXPECT_FALSE(rep.anyPinned());
    EXPECT_EQ(rep.describe(), "replicate");
    EXPECT_EQ(rep.homeDevice(0), -1);

    ShardPlan parsed = ShardPlan::parse("pin:0,1,1", pipe, 2);
    EXPECT_TRUE(parsed.anyPinned());
    EXPECT_EQ(parsed.homeDevice(0), 0);
    EXPECT_EQ(parsed.homeDevice(1), 1);
    EXPECT_TRUE(parsed.pinnedElsewhere(1, 0));
    EXPECT_FALSE(parsed.pinnedElsewhere(1, 1));
    EXPECT_EQ(parsed.describe(), "pin[0,1,1]");

    EXPECT_THROW(ShardPlan::parse("pin:0,7,0", pipe, 2), FatalError);
    EXPECT_THROW(ShardPlan::parse("pin:0,x,0", pipe, 2), FatalError);
    EXPECT_THROW(ShardPlan::parse("pin:0", pipe, 2), FatalError);
    EXPECT_THROW(ShardPlan::parse("bogus", pipe, 2), FatalError);
}

TEST(ShardPlan, ParseRejectsBadSpecsAsConfigErrors)
{
    // Regression: parse() used to accept out-of-range device
    // indices and empty pin lists, deferring the blow-up to deep
    // inside the sharded run. Every malformed spec must fail fast
    // with ErrorCode::Config.
    auto app = makeApp("pyramid", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    auto expectConfigError = [&pipe](const std::string& spec,
                                     int nDevices) {
        try {
            ShardPlan::parse(spec, pipe, nDevices);
            FAIL() << "`" << spec << "` parsed without error";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Config)
                << "`" << spec << "`";
        }
    };
    expectConfigError("pin:", 2);         // empty device list
    expectConfigError("pin:0,-1,0", 2);   // negative device
    expectConfigError("pin:0,2,0", 2);    // index >= device count
    expectConfigError("pin:0,1,", 2);     // trailing empty token
    expectConfigError("pin:0,1 ,0", 2);   // embedded whitespace
    expectConfigError("pin:0,1", 2);      // stage-count mismatch
    expectConfigError("pinned:0,1,0", 2); // unknown scheme
}

TEST(ShardPlan, ValidateRejectsSplitGroupsAndNonGroupTops)
{
    auto app = makeApp("pyramid", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    PipelineConfig mega = makeMegakernelConfig(pipe);

    // Splitting the single megakernel group across devices is
    // rejected: its kernel launches per device as a unit.
    ShardPlan split = ShardPlan::parse("pin:0,1,0", pipe, 2);
    EXPECT_THROW(split.validate(pipe, mega, 2), FatalError);

    ShardPlan rep = ShardPlan::replicateAll(pipe);
    EXPECT_NO_THROW(rep.validate(pipe, mega, 2));
    EXPECT_THROW(rep.validate(pipe, makeKbkConfig(), 2), FatalError);
}

TEST(ShardPlan, SeedHashIsDeterministicAndInRange)
{
    for (int stage = 0; stage < 4; ++stage) {
        for (int ord = 0; ord < 256; ++ord) {
            int d = shardSeedDevice(stage, ord, 3);
            EXPECT_GE(d, 0);
            EXPECT_LT(d, 3);
            EXPECT_EQ(d, shardSeedDevice(stage, ord, 3));
        }
    }
    // The hash actually spreads items (not all on one device).
    int seen[2] = {0, 0};
    for (int ord = 0; ord < 64; ++ord)
        ++seen[shardSeedDevice(0, ord, 2)];
    EXPECT_GT(seen[0], 0);
    EXPECT_GT(seen[1], 0);
}

TEST(Shard, TwoDeviceReplicateRunsAndConservesWork)
{
    auto app = makeApp("pyramid", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(app->pipeline());

    Engine single(DeviceConfig::byName("gtx1080"));
    RunResult r1 = single.run(*app, cfg);
    ASSERT_TRUE(r1.completed);

    Engine group(twoGtx1080());
    EXPECT_EQ(group.deviceCount(), 2);
    RunResult r2 = group.runSharded(*app, cfg, plan);
    ASSERT_TRUE(r2.completed) << r2.failureReason;

    // Exact work conservation: every stage processes the same items
    // regardless of how the group splits them.
    EXPECT_EQ(stageItems(r1), stageItems(r2));
    EXPECT_EQ(r2.shardDevices.size(), 2u);
    // Replicate plans never cross the interconnect.
    EXPECT_EQ(r2.interconnect.transfers, 0u);
}

TEST(Shard, RerunsAreBitIdentical)
{
    auto app = makeApp("raster", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(app->pipeline());

    Engine group(twoGtx1080());
    RunResult a = group.runSharded(*app, cfg, plan);
    RunResult b = group.runSharded(*app, cfg, plan);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_EQ(stageItems(a), stageItems(b));
    EXPECT_EQ(a.polls, b.polls);
}

TEST(Shard, SingleDeviceGroupIsDegenerate)
{
    auto app = makeApp("pyramid", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());

    Engine single(DeviceConfig::byName("gtx1080"));
    RunResult r1 = single.run(*app, cfg);

    Engine group(DeviceGroupConfig::homogeneous(
        DeviceConfig::byName("gtx1080"), 1));
    RunResult r2 = group.runSharded(
        *app, cfg, ShardPlan::replicateAll(app->pipeline()));

    ASSERT_TRUE(r1.completed);
    ASSERT_TRUE(r2.completed);
    // One device + replicate routes every seed to device 0 in seed
    // order: the same simulation as a plain run, event for event.
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.simEvents, r2.simEvents);
    EXPECT_EQ(stageItems(r1), stageItems(r2));
}

TEST(Shard, PinnedPlanPaysTransfersAndConserves)
{
    auto app = makeApp("ldpc", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    // Coarse pipeline: one group per stage, so round-robin pinning
    // puts alternate stages on alternate devices.
    PipelineConfig cfg = makeCoarseConfig(pipe, dev);
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);
    ASSERT_TRUE(plan.anyPinned());

    Engine single(dev);
    RunResult r1 = single.run(*app, cfg);
    ASSERT_TRUE(r1.completed);

    Engine group(twoGtx1080());
    RunResult r2 = group.runSharded(*app, cfg, plan);
    ASSERT_TRUE(r2.completed) << r2.failureReason;

    EXPECT_EQ(stageItems(r1), stageItems(r2));
    // Cross-device queue hops pay real transfers.
    EXPECT_GT(r2.interconnect.transfers, 0u);
    EXPECT_GT(r2.interconnect.bytes, 0.0);
    EXPECT_EQ(r2.interconnect.delivered, r2.interconnect.transfers);
    EXPECT_GT(r2.interconnect.serializeCycles, 0.0);
}

TEST(Shard, HostStagedCostsMoreThanPeer)
{
    auto app = makeApp("ldpc", AppScale::Small);
    Pipeline& pipe = app->pipeline();
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    PipelineConfig cfg = makeCoarseConfig(pipe, dev);
    ShardPlan plan = ShardPlan::pinnedRoundRobin(cfg, pipe, 2);

    DeviceGroupConfig peer = twoGtx1080();
    peer.interconnect.kind = InterconnectConfig::Kind::Peer;
    DeviceGroupConfig staged = twoGtx1080();
    staged.interconnect.kind = InterconnectConfig::Kind::HostStaged;

    RunResult rp = Engine(peer).runSharded(*app, cfg, plan);
    RunResult rs = Engine(staged).runSharded(*app, cfg, plan);
    ASSERT_TRUE(rp.completed);
    ASSERT_TRUE(rs.completed);
    EXPECT_EQ(stageItems(rp), stageItems(rs));
    // Same transfers, slower links: host staging can only hurt.
    EXPECT_GE(rs.cycles, rp.cycles);
    EXPECT_GT(rs.interconnect.serializeCycles,
              rp.interconnect.serializeCycles);
}

TEST(Shard, TwoDevicesSpeedUpAParallelWorkload)
{
    auto app = makeApp("raster", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(app->pipeline());

    Engine single(DeviceConfig::byName("gtx1080"));
    RunResult r1 = single.run(*app, cfg);
    Engine group(twoGtx1080());
    RunResult r2 = group.runSharded(*app, cfg, plan);
    ASSERT_TRUE(r1.completed);
    ASSERT_TRUE(r2.completed);
    EXPECT_LT(r2.cycles, r1.cycles)
        << "2 devices should beat 1 on a throughput workload";
}

TEST(Shard, SmKillOnOneDeviceDoesNotWedgeTheGroup)
{
    auto app = makeApp("raster", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    ShardPlan plan = ShardPlan::replicateAll(app->pipeline());

    FaultPlan fp;
    SmFaultEvent kill;
    kill.time = 2000.0;
    kill.sm = 0;
    kill.kind = SmFaultEvent::Kind::Kill;
    kill.device = 1;
    fp.smEvents.push_back(kill);

    Engine group(twoGtx1080());
    group.setFaultPlan(fp);
    group.setRecovery(RecoveryConfig{});
    RunResult r = group.runSharded(*app, cfg, plan);
    // The group must finish (possibly degraded), never stall.
    EXPECT_TRUE(r.outcome == RunOutcome::Completed
                || r.outcome == RunOutcome::Degraded)
        << runOutcomeName(r.outcome) << "\n" << r.failureReason;
    ASSERT_EQ(r.shardDevices.size(), 2u);
    EXPECT_EQ(r.shardDevices[0].device.smsFailed, 0u);
    EXPECT_EQ(r.shardDevices[1].device.smsFailed, 1u);
}

TEST(Shard, FaultPlanTargetingDeviceOneIsRejectedSingleDevice)
{
    auto app = makeApp("pyramid", AppScale::Small);
    PipelineConfig cfg = makeMegakernelConfig(app->pipeline());
    FaultPlan fp;
    SmFaultEvent kill;
    kill.device = 1;
    fp.smEvents.push_back(kill);
    Engine single(DeviceConfig::byName("gtx1080"));
    single.setFaultPlan(fp);
    EXPECT_THROW(single.run(*app, cfg), FatalError);
}

/**
 * @file
 * Tests of the fault-injection subsystem and runtime recovery:
 * decision-oracle determinism, retry/backoff/dead-letter accounting,
 * watchdog stall detection on a wedged cyclic pipeline, the global
 * drain timeout, graceful SM degradation, and the zero-overhead
 * guarantee when injection is compiled in but disabled.
 */

#include <gtest/gtest.h>

#include "apps/raster/raster_app.hh"
#include "sim/fault.hh"
#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

/** Fingerprint of everything a deterministic run must reproduce. */
struct RunFingerprint
{
    double cycles;
    std::uint64_t simEvents;
    RunOutcome outcome;
    std::uint64_t taskFaults;
    std::uint64_t tasksRetried;
    std::uint64_t deadLettered;
    std::uint64_t droppedPushes;
    std::uint64_t corruptedPushes;
    std::uint64_t slowdowns;
    int blocksEvicted;
    std::vector<std::uint64_t> stageItems;

    bool
    operator==(const RunFingerprint& o) const
    {
        return cycles == o.cycles && simEvents == o.simEvents
            && outcome == o.outcome && taskFaults == o.taskFaults
            && tasksRetried == o.tasksRetried
            && deadLettered == o.deadLettered
            && droppedPushes == o.droppedPushes
            && corruptedPushes == o.corruptedPushes
            && slowdowns == o.slowdowns
            && blocksEvicted == o.blocksEvicted
            && stageItems == o.stageItems;
    }
};

RunFingerprint
fingerprint(const RunResult& r)
{
    RunFingerprint f;
    f.cycles = r.cycles;
    f.simEvents = r.simEvents;
    f.outcome = r.outcome;
    f.taskFaults = r.faults.taskFaults;
    f.tasksRetried = r.faults.tasksRetried;
    f.deadLettered = r.faults.deadLettered;
    f.droppedPushes = r.faults.droppedPushes;
    f.corruptedPushes = r.faults.corruptedPushes;
    f.slowdowns = r.faults.slowdowns;
    f.blocksEvicted = r.faults.blocksEvicted;
    for (const StageRunStats& s : r.stages)
        f.stageItems.push_back(s.items);
    return f;
}

/**
 * Per-stage item conservation after a drained run with no push
 * faults and no block aborts: everything pushed into a stage's queue
 * was either processed, redelivered for retry, or dead-lettered.
 */
void
expectStageConservation(const RunResult& r)
{
    for (const StageRunStats& s : r.stages) {
        EXPECT_EQ(s.queue.pushes, s.queue.pops)
            << "queue `" << s.name << "` not drained";
        EXPECT_EQ(s.queue.pushes, s.items + s.retried + s.deadLettered)
            << "items unaccounted for in stage `" << s.name << "`";
    }
}

// ---------------------------------------------------------------- //
// Wedgeable cyclic pipeline: Spawn -> Bounce -> Spawn with a        //
// bounded bounce queue. Under EarlierStageFirst every persistent    //
// block prefers the (amply seeded) spawn queue, amplifies x2 into   //
// the tiny bounce queue, and parks in commit-wait — a guaranteed    //
// queue-full deadlock that only the watchdog can report.            //
// ---------------------------------------------------------------- //

struct CycleItem
{
    int value = 0;
    int hops = 0;
};

struct BounceStage;

struct SpawnStage : Stage<CycleItem>
{
    SpawnStage()
    {
        name = "spawn";
        threadNum = 256; // one item per block-batch
        retryable = true;
        resources.regsPerThread = 32;
        resources.codeBytes = 4000;
    }

    TaskCost
    cost(const CycleItem&) const override
    {
        TaskCost c;
        c.computeInsts = 200;
        c.memInsts = 20;
        return c;
    }

    void execute(ExecContext& ctx, CycleItem& item) override;
};

struct BounceStage : Stage<CycleItem>
{
    BounceStage()
    {
        name = "bounce";
        threadNum = 256;
        retryable = true;
        queueCapacity = 2; // x2 amplification wedges this queue
        resources.regsPerThread = 32;
        resources.codeBytes = 4000;
    }

    TaskCost
    cost(const CycleItem&) const override
    {
        TaskCost c;
        c.computeInsts = 200;
        c.memInsts = 20;
        return c;
    }

    void execute(ExecContext& ctx, CycleItem& item) override;
};

inline void
SpawnStage::execute(ExecContext& ctx, CycleItem& item)
{
    ctx.enqueue<BounceStage>(item);
    ctx.enqueue<BounceStage>(item);
}

inline void
BounceStage::execute(ExecContext& ctx, CycleItem& item)
{
    if (++item.hops < 3)
        ctx.enqueue<SpawnStage>(item);
}

class CyclicApp : public AppDriver
{
  public:
    explicit CyclicApp(int seeds = 512)
        : seeds_(seeds)
    {
        pipe_.addStage<SpawnStage>();
        pipe_.addStage<BounceStage>();
        pipe_.link<SpawnStage, BounceStage>();
        pipe_.link<BounceStage, SpawnStage>();
    }

    std::string name() const override { return "cyclic-toy"; }

    Pipeline& pipeline() override { return pipe_; }

    void reset() override {}

    void
    seedFlow(Seeder& seeder, int) override
    {
        std::vector<CycleItem> items;
        for (int i = 0; i < seeds_; ++i)
            items.push_back(CycleItem{i, 0});
        seeder.insert<SpawnStage>(std::move(items));
    }

    bool verify() override { return false; } // never drains cleanly

  private:
    Pipeline pipe_;
    int seeds_;
};

} // namespace

// ------------------------- decision oracle ---------------------- //

TEST(FaultInjector, SameSeedSameDecisions)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.taskFailProb = 0.1;
    plan.pushDropProb = 0.05;
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.fetchFaults(0, 0, 8, 100.0 * i),
                  b.fetchFaults(0, 0, 8, 100.0 * i));
        EXPECT_EQ(static_cast<int>(a.pushFault()),
                  static_cast<int>(b.pushFault()));
    }
}

TEST(FaultInjector, CorruptionDoesNotShiftDropDecisions)
{
    // The push-fault decision is a single partitioned draw: adding a
    // corruption band must not change which pushes are dropped.
    FaultPlan dropOnly;
    dropOnly.seed = 7;
    dropOnly.pushDropProb = 0.2;
    FaultPlan both = dropOnly;
    both.pushCorruptProb = 0.2;
    FaultInjector a(dropOnly);
    FaultInjector b(both);
    for (int i = 0; i < 2000; ++i) {
        PushFault fa = a.pushFault();
        PushFault fb = b.pushFault();
        EXPECT_EQ(fa == PushFault::Drop, fb == PushFault::Drop)
            << "drop decision " << i << " shifted";
    }
}

TEST(FaultInjector, ScriptedTriggersMatchAndExhaust)
{
    FaultPlan plan;
    ScriptedTaskFault t;
    t.atOrAfter = 1000.0;
    t.sm = 2;
    t.stage = 1;
    t.count = 3;
    plan.scripted.push_back(t);
    FaultInjector inj(plan);
    EXPECT_EQ(inj.fetchFaults(1, 2, 8, 500.0), 0);  // too early
    EXPECT_EQ(inj.fetchFaults(0, 2, 8, 2000.0), 0); // wrong stage
    EXPECT_EQ(inj.fetchFaults(1, 3, 8, 2000.0), 0); // wrong SM
    EXPECT_EQ(inj.fetchFaults(1, 2, 8, 2000.0), 3); // fires
    EXPECT_EQ(inj.fetchFaults(1, 2, 8, 3000.0), 0); // exhausted
}

TEST(FaultPlan, ValidateRejectsBadProbabilities)
{
    FaultPlan plan;
    plan.taskFailProb = -0.1;
    try {
        plan.validate();
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST(RecoveryConfig, ValidateRejectsBadBackoff)
{
    RecoveryConfig rc;
    rc.backoffFactor = 0.5;
    try {
        rc.validate();
        FAIL() << "should have thrown";
    } catch (const FatalError& e) {
        EXPECT_EQ(e.code(), ErrorCode::Config);
    }
}

TEST(RecoveryConfig, BackoffGrowsAndCaps)
{
    RecoveryConfig rc;
    rc.backoffBaseCycles = 500.0;
    rc.backoffFactor = 2.0;
    rc.backoffCapCycles = 1600.0;
    EXPECT_DOUBLE_EQ(rc.backoffFor(1), 500.0);
    EXPECT_DOUBLE_EQ(rc.backoffFor(2), 1000.0);
    EXPECT_DOUBLE_EQ(rc.backoffFor(3), 1600.0); // capped
    EXPECT_DOUBLE_EQ(rc.backoffFor(9), 1600.0);
}

// ------------------------- determinism -------------------------- //

TEST(FaultRuns, SameSeedSamePlanBitIdentical)
{
    FaultPlan plan;
    plan.seed = 11;
    plan.taskFailProb = 0.02;
    plan.taskSlowProb = 0.05;
    plan.pushDropProb = 0.01;
    plan.launchDelayProb = 0.2;

    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setRecovery(RecoveryConfig{});

    std::vector<PipelineConfig> configs;
    {
        LinearApp probe;
        configs.push_back(makeMegakernelConfig(probe.pipeline()));
        configs.push_back(makeKbkConfig());
        configs.push_back(makeFineConfig(probe.pipeline(),
                                         engine.deviceConfig()));
        configs.push_back(makeDynamicParallelismConfig());
    }
    for (const PipelineConfig& cfg : configs) {
        LinearApp app1(2, 64);
        LinearApp app2(2, 64);
        RunResult a = engine.run(app1, cfg);
        RunResult b = engine.run(app2, cfg);
        EXPECT_TRUE(fingerprint(a) == fingerprint(b))
            << "fault run not reproducible under " << a.configName;
        EXPECT_GT(a.faults.taskFaults, 0u) << a.configName;
    }
}

// ------------------------- retry/recovery ----------------------- //

TEST(FaultRuns, TransientFaultsRetryToCompletion)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.taskFailProb = 0.05;

    RecoveryConfig rc;
    rc.maxRetries = 8; // ample budget: nothing should dead-letter

    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setRecovery(rc);

    for (int variant = 0; variant < 3; ++variant) {
        LinearApp app(2, 64);
        PipelineConfig cfg = variant == 0
            ? makeMegakernelConfig(app.pipeline())
            : variant == 1 ? makeKbkConfig()
                           : makeDynamicParallelismConfig();
        RunResult r = engine.run(app, cfg);
        EXPECT_TRUE(r.completed) << r.configName;
        EXPECT_EQ(r.outcome, RunOutcome::Completed) << r.configName;
        EXPECT_GT(r.faults.tasksRetried, 0u) << r.configName;
        EXPECT_EQ(r.faults.deadLettered, 0u) << r.configName;
        expectStageConservation(r);
    }
}

TEST(FaultRuns, RetryExhaustionDeadLetters)
{
    FaultPlan plan;
    plan.seed = 3;
    plan.taskFailProb = 1.0; // every fetch faults: nothing survives

    RecoveryConfig rc;
    rc.maxRetries = 2;
    rc.backoffBaseCycles = 100.0;

    LinearApp app(1, 16);
    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    engine.setRecovery(rc);
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::Degraded);
    // Every seeded item burns its full retry budget, then drops into
    // the dead-letter count — still 100% accounted for.
    EXPECT_EQ(r.faults.deadLettered, 16u);
    EXPECT_EQ(r.faults.tasksRetried, 32u); // 16 items x 2 retries
    EXPECT_EQ(r.stages[0].deadLettered, 16u);
    EXPECT_EQ(r.stages[2].items, 0u); // nothing reached the sink
    expectStageConservation(r);
}

TEST(FaultRuns, DroppedAndCorruptedPushesDegrade)
{
    FaultPlan plan;
    plan.seed = 9;
    plan.pushDropProb = 0.1;
    plan.pushCorruptProb = 0.1;

    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    RunResult r = engine.run(app, makeMegakernelConfig(app.pipeline()));

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::Degraded);
    EXPECT_GT(r.faults.droppedPushes, 0u);
    EXPECT_GT(r.faults.corruptedPushes, 0u);
    EXPECT_EQ(r.faults.deadLettered, r.faults.corruptedPushes);
    // Sink results + destroyed items cover every seeded item: the
    // linear pipeline is 1:1, so each lost push is one lost result.
    auto& sink = app.pipeline().stageAs<LinearSink>();
    EXPECT_EQ(sink.results.size() + r.faults.droppedPushes
                  + r.faults.corruptedPushes,
              static_cast<std::size_t>(app.totalItems()));
}

TEST(FaultRuns, SlowdownsCountedAndCostTime)
{
    FaultPlan plan;
    plan.seed = 21;
    plan.taskSlowProb = 0.5;
    plan.taskSlowFactor = 8.0;

    LinearApp clean(2, 64), slowed(2, 64);
    Engine engine(DeviceConfig::k20c());
    RunResult base =
        engine.run(clean, makeMegakernelConfig(clean.pipeline()));
    engine.setFaultPlan(plan);
    RunResult r =
        engine.run(slowed, makeMegakernelConfig(slowed.pipeline()));

    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.faults.slowdowns, 0u);
    EXPECT_GT(r.cycles, base.cycles);
}

// ------------------------- watchdog / timeout ------------------- //

TEST(Watchdog, QueueFullDeadlockBecomesDiagnostic)
{
    CyclicApp app;
    PipelineConfig cfg = makeMegakernelConfig(app.pipeline());
    cfg.schedule = SchedulePolicy::EarlierStageFirst;

    RecoveryConfig rc;
    rc.watchdogIntervalCycles = 100000.0;
    rc.watchdogStallChecks = 3;

    Engine engine(DeviceConfig::k20c());
    engine.setRecovery(rc);
    RunResult r = engine.run(app, cfg);

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::Stalled);
    EXPECT_TRUE(r.faults.watchdogFired);
    EXPECT_GT(r.faults.backpressureWaits, 0u);
    // The diagnostic names the wedged queue and its depth.
    EXPECT_NE(r.failureReason.find("watchdog"), std::string::npos);
    EXPECT_NE(r.failureReason.find("bounce"), std::string::npos);
}

TEST(Watchdog, DrainTimeoutReportsStructuredFailure)
{
    CyclicApp app;
    PipelineConfig cfg = makeMegakernelConfig(app.pipeline());
    cfg.schedule = SchedulePolicy::EarlierStageFirst;

    RecoveryConfig rc;
    rc.watchdogIntervalCycles = 0.0; // watchdog off: timeout only
    rc.drainTimeoutCycles = 200000.0;

    Engine engine(DeviceConfig::k20c());
    engine.setRecovery(rc);
    RunResult r = engine.run(app, cfg);

    EXPECT_FALSE(r.completed);
    EXPECT_EQ(r.outcome, RunOutcome::DrainTimeout);
    EXPECT_FALSE(r.faults.watchdogFired);
    EXPECT_NE(r.failureReason.find("drain timeout"),
              std::string::npos);
}

TEST(Watchdog, HealthyRunUnperturbed)
{
    // The watchdog samples the runner between event slices; a healthy
    // run's event trace and cycle count must be identical with it on.
    LinearApp plain(2, 64), watched(2, 64);
    Engine engine(DeviceConfig::k20c());
    RunResult a =
        engine.run(plain, makeMegakernelConfig(plain.pipeline()));

    RecoveryConfig rc;
    rc.watchdogIntervalCycles = 5000.0; // many checkpoints
    engine.setRecovery(rc);
    RunResult b =
        engine.run(watched, makeMegakernelConfig(watched.pipeline()));

    EXPECT_TRUE(b.completed);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
}

TEST(Watchdog, DisabledPlanIsZeroCost)
{
    // A compiled-in but empty plan must not change the simulation:
    // same events, same cycles (the bench overhead guarantee).
    LinearApp plain(2, 64), armed(2, 64);
    Engine engine(DeviceConfig::k20c());
    RunResult a =
        engine.run(plain, makeMegakernelConfig(plain.pipeline()));

    engine.setFaultPlan(FaultPlan{}); // nothing enabled
    RunResult b =
        engine.run(armed, makeMegakernelConfig(armed.pipeline()));

    EXPECT_TRUE(b.completed);
    EXPECT_EQ(b.outcome, RunOutcome::Completed);
    EXPECT_EQ(a.simEvents, b.simEvents);
    EXPECT_DOUBLE_EQ(a.cycles, b.cycles);
}

// ------------------------- SM degradation ----------------------- //

TEST(SmFaults, PlanRejectsOutOfRangeSm)
{
    FaultPlan plan;
    SmFaultEvent e;
    e.time = 1000.0;
    e.sm = 999;
    plan.smEvents.push_back(e);

    LinearApp app(2, 64);
    Engine engine(DeviceConfig::k20c());
    engine.setFaultPlan(plan);
    try {
        engine.run(app, makeMegakernelConfig(app.pipeline()));
        FAIL() << "should have thrown";
    } catch (const FatalError& err) {
        EXPECT_EQ(err.code(), ErrorCode::Config);
    }
}

TEST(SmFaults, DegradeSlowsTheRun)
{
    LinearApp clean(4, 64), degraded(4, 64);
    Engine engine(DeviceConfig::k20c());
    PipelineConfig cfg = makeMegakernelConfig(clean.pipeline());
    RunResult base = engine.run(clean, cfg);

    FaultPlan plan;
    for (int sm = 0; sm < 13; ++sm) {
        SmFaultEvent e;
        e.time = base.cycles * 0.1;
        e.sm = sm;
        e.kind = SmFaultEvent::Kind::Degrade;
        e.factor = 0.25;
        plan.smEvents.push_back(e);
    }
    engine.setFaultPlan(plan);
    RunResult r = engine.run(degraded, cfg);

    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.faults.smsDegraded, 13);
    EXPECT_GT(r.cycles, base.cycles);
}

/**
 * The headline demo of the fault subsystem: a real app (the raster
 * pipeline) with one SM killed mid-run plus 1% transient task faults
 * completes with every task accounted for (completed or
 * dead-lettered), produces nonzero retry and degradation counters,
 * and replays bit-identically.
 */
TEST(SmFaults, RasterSurvivesSmKillMidRun)
{
    Engine engine(DeviceConfig::k20c());
    raster::RasterApp probe(raster::RasterParams::small());
    PipelineConfig cfg = makeMegakernelConfig(probe.pipeline());
    RunResult base = engine.run(probe, cfg);
    ASSERT_TRUE(base.completed);

    FaultPlan plan;
    plan.seed = 17;
    plan.taskFailProb = 0.01;
    SmFaultEvent kill;
    kill.time = base.cycles * 0.5;
    kill.sm = 0;
    kill.kind = SmFaultEvent::Kind::Kill;
    plan.smEvents.push_back(kill);

    RecoveryConfig rc;
    rc.maxRetries = 6;
    engine.setFaultPlan(plan);
    engine.setRecovery(rc);

    auto faultedRun = [&] {
        raster::RasterApp app(raster::RasterParams::small());
        return engine.run(app, cfg);
    };
    RunResult r = faultedRun();

    // Drained with 100% accounting: completed, or degraded with the
    // losses counted in the dead-letter ledger.
    ASSERT_TRUE(r.outcome == RunOutcome::Completed
                || r.outcome == RunOutcome::Degraded)
        << runOutcomeName(r.outcome) << ": " << r.failureReason;
    for (const StageRunStats& s : r.stages) {
        EXPECT_EQ(s.queue.pushes, s.queue.pops)
            << "queue `" << s.name << "` not drained";
    }
    if (r.outcome == RunOutcome::Degraded) {
        EXPECT_GT(r.faults.deadLettered + r.faults.droppedPushes, 0u);
    }

    // Nonzero fault, retry and degradation counters.
    EXPECT_EQ(r.faults.smsFailed, 1);
    EXPECT_GT(r.faults.blocksEvicted, 0);
    EXPECT_GT(r.faults.degradeRelaunches, 0u);
    EXPECT_GT(r.faults.tasksRetried, 0u);
    EXPECT_GT(r.cycles, base.cycles); // losing an SM costs time

    // Deterministic across repeated seeded runs.
    RunResult again = faultedRun();
    EXPECT_TRUE(fingerprint(r) == fingerprint(again))
        << "SM-kill run not reproducible";
}

/**
 * @file
 * Unit tests for ExecContext: output buffering, inline chaining, and
 * the cross-threadNum cost scaling of RTC groups (regression for the
 * undercounting found during calibration: a 1-thread entry task
 * absorbing a 256-thread stage's work must be charged 256x its
 * per-thread cost).
 */

#include <gtest/gtest.h>

#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

struct WideSink;

/** Narrow entry stage (1 thread per task). */
struct NarrowGen : Stage<ToyItem>
{
    NarrowGen()
    {
        name = "narrow";
        threadNum = 1;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 10;
        return c;
    }

    void execute(ExecContext& ctx, ToyItem& item) override;
};

/** Wide downstream stage (256 threads per task). */
struct WideSink : Stage<ToyItem>
{
    WideSink()
    {
        name = "wide";
        threadNum = 256;
    }

    TaskCost
    cost(const ToyItem&) const override
    {
        TaskCost c;
        c.computeInsts = 100; // per thread of 256
        c.memInsts = 20;
        c.serialInsts = 8;
        return c;
    }

    void
    execute(ExecContext&, ToyItem& item) override
    {
        total += item.value;
    }

    void reset() override { total = 0; }

    long total = 0;
};

void
NarrowGen::execute(ExecContext& ctx, ToyItem& item)
{
    ctx.enqueue<WideSink>(item);
}

struct ChainFixture
{
    Pipeline pipe;
    NarrowGen* gen;
    WideSink* sink;

    ChainFixture()
    {
        gen = &pipe.addStage<NarrowGen>();
        sink = &pipe.addStage<WideSink>();
        pipe.link<NarrowGen, WideSink>();
    }
};

} // namespace

TEST(ExecContext, BuffersOutputsWhenNotInlined)
{
    ChainFixture f;
    ExecContext ctx(f.pipe, 0, -1, 1);
    ctx.beginTask(f.gen->cost(ToyItem{}));
    ToyItem item{7, 0};
    f.gen->execute(ctx, item);
    ASSERT_EQ(ctx.outputs().size(), 1u);
    EXPECT_EQ(ctx.outputs()[0].stage, 1);
    // Cost unchanged: the wide stage was not executed.
    EXPECT_DOUBLE_EQ(ctx.endTask().computeInsts, 10.0);
    EXPECT_EQ(f.sink->total, 0);
}

TEST(ExecContext, InlineExecutesDownstreamImmediately)
{
    ChainFixture f;
    StageMask inline_wide = StageMask(1) << 1;
    ExecContext ctx(f.pipe, inline_wide, -1, 1);
    ctx.beginTask(f.gen->cost(ToyItem{}));
    ToyItem item{7, 0};
    f.gen->execute(ctx, item);
    EXPECT_TRUE(ctx.outputs().empty());
    EXPECT_EQ(f.sink->total, 7);
    ASSERT_EQ(ctx.inlineRuns().size(), 1u);
    EXPECT_EQ(ctx.inlineRuns()[0].first, 1);
    EXPECT_EQ(ctx.inlineRuns()[0].second, 1);
}

TEST(ExecContext, InlineCostScalesByThreadRatio)
{
    ChainFixture f;
    StageMask inline_wide = StageMask(1) << 1;
    ExecContext ctx(f.pipe, inline_wide, -1, 1); // 1 entry thread
    ctx.beginTask(f.gen->cost(ToyItem{}));
    ToyItem item{1, 0};
    f.gen->execute(ctx, item);
    TaskCost c = ctx.endTask();
    // Wide stage: 100 insts/thread x 256 threads on 1 entry thread.
    EXPECT_DOUBLE_EQ(c.computeInsts, 10.0 + 100.0 * 256);
    EXPECT_DOUBLE_EQ(c.memInsts, 20.0 * 256);
    EXPECT_DOUBLE_EQ(c.serialInsts, 8.0 * 256);
}

TEST(ExecContext, NoScalingForEqualOrNarrowerStages)
{
    ChainFixture f;
    StageMask inline_wide = StageMask(1) << 1;
    // Entry already runs 256 threads per task: ratio 1, no scaling.
    ExecContext ctx(f.pipe, inline_wide, -1, 256);
    ctx.beginTask(TaskCost{});
    ToyItem item{1, 0};
    f.gen->execute(ctx, item);
    EXPECT_DOUBLE_EQ(ctx.endTask().computeInsts, 100.0);
    // Wider entry than inlined stage: costs are never scaled DOWN.
    ExecContext ctx2(f.pipe, inline_wide, -1, 512);
    ctx2.beginTask(TaskCost{});
    ToyItem item2{1, 0};
    f.gen->execute(ctx2, item2);
    EXPECT_DOUBLE_EQ(ctx2.endTask().computeInsts, 100.0);
}

TEST(ExecContext, InlineRunsAggregatePerStage)
{
    ChainFixture f;
    StageMask inline_wide = StageMask(1) << 1;
    ExecContext ctx(f.pipe, inline_wide, -1, 1);
    for (int i = 0; i < 5; ++i) {
        ctx.beginTask(f.gen->cost(ToyItem{}));
        ToyItem item{i, 0};
        f.gen->execute(ctx, item);
    }
    ASSERT_EQ(ctx.inlineRuns().size(), 1u);
    EXPECT_EQ(ctx.inlineRuns()[0].second, 5);
}

TEST(ExecContext, EntryThreadsDefaultsClampToOne)
{
    ChainFixture f;
    ExecContext ctx(f.pipe, 0, -1, 0); // clamped to 1
    EXPECT_EQ(ctx.entryThreads(), 1);
}

/**
 * @file
 * Online adaptive load-balance controller: configuration validation,
 * applicability, the controller law itself, and the end-to-end
 * determinism guarantees (adaptive reruns are bit-identical; a
 * disabled controller leaves the engine event-for-event identical to
 * an unadapted run).
 */

#include <gtest/gtest.h>

#include "apps/registry.hh"
#include "core/shard.hh"
#include "toy_apps.hh"

using namespace vp;
using test::LinearApp;

namespace {

AdaptiveConfig
on()
{
    AdaptiveConfig ac;
    ac.enabled = true;
    ac.minDwellEpochs = 1;
    ac.hysteresis = 0.25;
    return ac;
}

AdaptiveLoad
load(double depth, int blocks, double idleFrac = 0.0,
     bool drained = false, int group = 0)
{
    AdaptiveLoad l;
    l.depth = depth;
    l.blocks = blocks;
    l.idleFrac = idleFrac;
    l.drained = drained;
    l.group = group;
    return l;
}

} // namespace

TEST(AdaptiveConfig, ValidateRejectsBadParameters)
{
    auto expectConfigError = [](AdaptiveConfig ac) {
        ac.enabled = true;
        try {
            ac.validate();
            FAIL() << ac.describe() << " validated";
        } catch (const FatalError& e) {
            EXPECT_EQ(e.code(), ErrorCode::Config);
        }
    };
    AdaptiveConfig ac;
    ac.epochCycles = 0.0;
    expectConfigError(ac);
    ac = {};
    ac.hysteresis = -0.1;
    expectConfigError(ac);
    ac = {};
    ac.minDwellEpochs = 0;
    expectConfigError(ac);
    ac = {};
    ac.ewmaAlpha = 0.0;
    expectConfigError(ac);
    ac = {};
    ac.ewmaAlpha = 1.5;
    expectConfigError(ac);
    ac = {};
    ac.donorIdleFraction = -0.5;
    expectConfigError(ac);

    // Disabled configs never validate their parameters: the default
    // AdaptiveConfig{} must stay a safe no-op.
    AdaptiveConfig off;
    off.epochCycles = 0.0;
    EXPECT_NO_THROW(off.validate());
}

TEST(AdaptiveConfig, ApplicableOnlyToMultiStageFineGroups)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    LinearApp app;
    Pipeline& pipe = app.pipeline();
    EXPECT_TRUE(adaptiveApplicable(makeFineConfig(pipe, dev)));
    EXPECT_FALSE(adaptiveApplicable(makeMegakernelConfig(pipe)));
    EXPECT_FALSE(adaptiveApplicable(makeCoarseConfig(pipe, dev)));
    EXPECT_FALSE(adaptiveApplicable(makeKbkConfig()));
}

TEST(AdaptiveController, MovesFromIdleDonorToBacklog)
{
    AdaptiveController ctl(on(), {8, 8});
    auto move = ctl.step({load(100.0, 2), load(0.0, 2, 0.5)});
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->from, 1);
    EXPECT_EQ(move->to, 0);
    EXPECT_EQ(move->count, 1);
    EXPECT_EQ(ctl.moves(), 1);
}

TEST(AdaptiveController, BusyDonorNeverRaided)
{
    // Both stages fully busy: depth imbalance alone (an upstream
    // stage holding the whole remaining input) must not trigger a
    // move.
    AdaptiveController ctl(on(), {8, 8});
    EXPECT_FALSE(ctl.step({load(1000.0, 2), load(1.0, 2, 0.0)}));
}

TEST(AdaptiveController, DwellDelaysTheFirstAndSubsequentMoves)
{
    AdaptiveConfig ac = on();
    ac.minDwellEpochs = 3;
    AdaptiveController ctl(ac, {8, 8});
    std::vector<AdaptiveLoad> loads{load(100.0, 2),
                                    load(0.0, 2, 0.5)};
    EXPECT_FALSE(ctl.step(loads)); // epoch 1
    EXPECT_FALSE(ctl.step(loads)); // epoch 2
    EXPECT_TRUE(ctl.step(loads));  // epoch 3: dwell elapsed
    EXPECT_FALSE(ctl.step(loads)); // epoch 4: dwelling again
}

TEST(AdaptiveController, HysteresisHoldsNearBalance)
{
    AdaptiveConfig ac = on();
    ac.hysteresis = 0.5;
    AdaptiveController ctl(ac, {8, 8});
    // Receiver per-block backlog only 40% above the donor's: inside
    // the 50% hysteresis band.
    EXPECT_FALSE(ctl.step({load(14.0, 2), load(10.0, 2, 0.5)}));
    EXPECT_TRUE(ctl.step({load(16.0, 2), load(10.0, 2, 0.5)}));
}

TEST(AdaptiveController, DrainedDonorSurrendersAllSurplus)
{
    AdaptiveController ctl(on(), {8, 8});
    auto move =
        ctl.step({load(50.0, 1), load(0.0, 5, 0.0, true)});
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->from, 1);
    EXPECT_EQ(move->to, 0);
    EXPECT_EQ(move->count, 4);
}

TEST(AdaptiveController, ReceiverCapLimitsBulkMoves)
{
    AdaptiveController ctl(on(), {3, 8});
    auto move =
        ctl.step({load(50.0, 1), load(0.0, 5, 0.0, true)});
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->count, 2); // cap 3, receiver already holds 1
}

TEST(AdaptiveController, ReceiverAtCapRefuses)
{
    AdaptiveController ctl(on(), {2, 8});
    EXPECT_FALSE(ctl.step({load(100.0, 2), load(0.0, 4, 0.5)}));
}

TEST(AdaptiveController, MovesStayInsideStageGroups)
{
    AdaptiveController ctl(on(), {8, 8});
    EXPECT_FALSE(ctl.step(
        {load(100.0, 2, 0.0, false, 0), load(0.0, 2, 0.5, false, 1)}));
}

TEST(AdaptiveController, LowestIndexReceiverWinsTies)
{
    AdaptiveController ctl(on(), {8, 8, 8});
    auto move = ctl.step(
        {load(100.0, 2), load(100.0, 2), load(0.0, 2, 0.5)});
    ASSERT_TRUE(move.has_value());
    EXPECT_EQ(move->to, 0);
}

TEST(AdaptiveEngine, AdaptiveRerunsAreBitIdentical)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    LinearApp app(4, 80);
    PipelineConfig cfg = makeFineConfig(app.pipeline(), dev);
    AdaptiveConfig ac = on();
    ac.epochCycles = 5000.0;
    Engine engine(dev);
    engine.setAdaptive(ac);
    RunResult r1 = engine.run(app, cfg);
    RunResult r2 = engine.run(app, cfg);
    ASSERT_TRUE(r1.completed) << r1.failureReason;
    ASSERT_TRUE(r2.completed) << r2.failureReason;
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.simEvents, r2.simEvents);
    EXPECT_EQ(r1.polls, r2.polls);
    EXPECT_EQ(r1.retreats, r2.retreats);
    EXPECT_GT(r1.extra.get("adaptiveEpochs"), 0.0);
    EXPECT_EQ(r1.extra.get("adaptiveEpochs"),
              r2.extra.get("adaptiveEpochs"));
    EXPECT_EQ(r1.extra.get("adaptiveMoves"),
              r2.extra.get("adaptiveMoves"));
}

TEST(AdaptiveEngine, VidstreamDriftingFanOutRerunsAreBitIdentical)
{
    // vidstream's face-count random walk makes the per-stage load
    // genuinely non-stationary — exactly what the controller chases.
    // Adaptation must engage and still rerun bit-identically.
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    auto app = makeApp("vidstream", AppScale::Small);
    PipelineConfig cfg = makeFineConfig(app->pipeline(), dev);
    AdaptiveConfig ac = on();
    ac.epochCycles = 5000.0;
    Engine engine(dev);
    engine.setAdaptive(ac);
    RunResult r1 = engine.run(*app, cfg);
    RunResult r2 = engine.run(*app, cfg);
    ASSERT_TRUE(r1.completed) << r1.failureReason;
    ASSERT_TRUE(r2.completed) << r2.failureReason;
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.simEvents, r2.simEvents);
    EXPECT_EQ(r1.polls, r2.polls);
    EXPECT_GT(r1.extra.get("adaptiveEpochs"), 0.0);
    EXPECT_EQ(r1.extra.get("adaptiveEpochs"),
              r2.extra.get("adaptiveEpochs"));
    EXPECT_EQ(r1.extra.get("adaptiveMoves"),
              r2.extra.get("adaptiveMoves"));
}

TEST(AdaptiveEngine, DisabledControllerIsEventForEventIdentical)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    LinearApp app(4, 80);
    PipelineConfig cfg = makeFineConfig(app.pipeline(), dev);

    Engine plain(dev);
    RunResult seed = plain.run(app, cfg);
    ASSERT_TRUE(seed.completed);

    // A default (disabled) AdaptiveConfig must not perturb the run:
    // same virtual time AND the same number of simulation events.
    Engine armed(dev);
    armed.setAdaptive(AdaptiveConfig{});
    RunResult off = armed.run(app, cfg);
    ASSERT_TRUE(off.completed);
    EXPECT_EQ(off.cycles, seed.cycles);
    EXPECT_EQ(off.simEvents, seed.simEvents);
    EXPECT_EQ(off.polls, seed.polls);
    EXPECT_EQ(off.retreats, seed.retreats);
    EXPECT_EQ(off.extra.get("adaptiveEpochs"), 0.0);

    // clearAdaptive() restores the seed behavior after an enabled
    // controller was set.
    armed.setAdaptive(on());
    armed.clearAdaptive();
    RunResult cleared = armed.run(app, cfg);
    ASSERT_TRUE(cleared.completed);
    EXPECT_EQ(cleared.cycles, seed.cycles);
    EXPECT_EQ(cleared.simEvents, seed.simEvents);
}

TEST(AdaptiveEngine, ShardedAdaptiveRerunsAreBitIdentical)
{
    DeviceConfig dev = DeviceConfig::byName("gtx1080");
    LinearApp app(4, 80);
    PipelineConfig cfg = makeFineConfig(app.pipeline(), dev);
    AdaptiveConfig ac = on();
    ac.epochCycles = 5000.0;
    Engine group(DeviceGroupConfig::homogeneous(dev, 2));
    group.setAdaptive(ac);
    ShardPlan plan = ShardPlan::replicateAll(app.pipeline());
    RunResult r1 = group.runSharded(app, cfg, plan);
    RunResult r2 = group.runSharded(app, cfg, plan);
    ASSERT_TRUE(r1.completed) << r1.failureReason;
    ASSERT_TRUE(r2.completed) << r2.failureReason;
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.simEvents, r2.simEvents);
    EXPECT_EQ(r1.extra.get("adaptiveEpochs"),
              r2.extra.get("adaptiveEpochs"));
    EXPECT_EQ(r1.extra.get("adaptiveMoves"),
              r2.extra.get("adaptiveMoves"));
}

TEST(AdaptiveEngine, SetAdaptiveValidatesEagerly)
{
    Engine engine(DeviceConfig::byName("gtx1080"));
    AdaptiveConfig bad = on();
    bad.epochCycles = -1.0;
    EXPECT_THROW(engine.setAdaptive(bad), FatalError);
}

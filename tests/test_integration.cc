/**
 * @file
 * Cross-module integration and property tests: output invariance
 * across execution models, conservation laws, determinism, and
 * engine failure handling, over the real applications at small
 * scale.
 */

#include <gtest/gtest.h>

#include "apps/ldpc/ldpc_app.hh"
#include "apps/pyramid/pyramid_app.hh"
#include "apps/registry.hh"
#include "apps/reyes/reyes_app.hh"
#include "tuner/offline_tuner.hh"

using namespace vp;

namespace {

std::vector<PipelineConfig>
applicableConfigs(Pipeline& pipe, const DeviceConfig& dev)
{
    std::vector<PipelineConfig> out;
    out.push_back(makeKbkConfig());
    out.push_back(makeKbkStreamConfig(3));
    out.push_back(makeMegakernelConfig(pipe));
    if (dev.numSms >= pipe.stageCount())
        out.push_back(makeCoarseConfig(pipe, dev));
    try {
        out.push_back(makeFineConfig(pipe, dev));
    } catch (const FatalError&) {
    }
    if (!pipe.hasCycle())
        out.push_back(makeRtcConfig(pipe));
    auto dist = makeMegakernelConfig(pipe);
    dist.distributedQueues = true;
    out.push_back(std::move(dist));
    return out;
}

} // namespace

// Every model produces bit-identical application results (the apps'
// verify() compares against a schedule-independent reference).
TEST(Integration, PyramidChecksumsInvariantAcrossModels)
{
    DeviceConfig dev = DeviceConfig::k20c();
    pyramid::PyramidApp app(pyramid::PyrParams::small());
    Engine engine(dev);
    std::uint64_t want = 0;
    bool first = true;
    for (const auto& cfg : applicableConfigs(app.pipeline(), dev)) {
        RunResult r = engine.run(app, cfg);
        ASSERT_TRUE(r.completed) << r.configName;
        std::uint64_t sum = 0;
        for (const auto& levels : app.result())
            for (const auto& level : levels)
                sum ^= level.checksum();
        if (first) {
            want = sum;
            first = false;
        } else {
            EXPECT_EQ(sum, want) << r.configName;
        }
    }
}

TEST(Integration, LdpcDecodesInvariantAcrossModels)
{
    DeviceConfig dev = DeviceConfig::k20c();
    ldpc::LdpcApp app(ldpc::LdpcParams::small());
    Engine engine(dev);
    int want = -1;
    for (const auto& cfg : applicableConfigs(app.pipeline(), dev)) {
        RunResult r = engine.run(app, cfg);
        ASSERT_TRUE(r.completed) << r.configName;
        if (want < 0)
            want = app.correctedFrames();
        else
            EXPECT_EQ(app.correctedFrames(), want) << r.configName;
    }
}

TEST(Integration, ReyesGridCountInvariantAcrossModels)
{
    DeviceConfig dev = DeviceConfig::k20c();
    reyes::ReyesApp app(reyes::ReyesParams::small());
    Engine engine(dev);
    int want = -1;
    for (const auto& cfg : applicableConfigs(app.pipeline(), dev)) {
        RunResult r = engine.run(app, cfg);
        ASSERT_TRUE(r.completed) << r.configName;
        if (want < 0)
            want = app.dicedPatches();
        else
            EXPECT_EQ(app.dicedPatches(), want) << r.configName;
    }
}

// Conservation: across every app and model, queue pushes equal pops
// and the device ends idle.
class ConservationMatrix
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(ConservationMatrix, PushesEqualPopsEverywhere)
{
    DeviceConfig dev = DeviceConfig::k20c();
    auto app = makeApp(GetParam(), AppScale::Small);
    Engine engine(dev);
    for (const auto& cfg :
         applicableConfigs(app->pipeline(), dev)) {
        RunResult r = engine.run(*app, cfg);
        ASSERT_TRUE(r.completed) << r.configName;
        for (const auto& s : r.stages) {
            EXPECT_EQ(s.queue.pushes, s.queue.pops)
                << GetParam() << "/" << r.configName << "/"
                << s.name;
        }
        EXPECT_GE(r.smUtilization, 0.0);
        EXPECT_LE(r.smUtilization, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, ConservationMatrix,
                         ::testing::Values("pyramid", "facedetect",
                                           "reyes", "cfd", "raster",
                                           "ldpc"));

// Determinism: identical runs give identical cycles on both devices.
class DeterminismMatrix
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(DeterminismMatrix, RepeatRunsIdentical)
{
    for (auto dev_name : {"k20c", "gtx1080"}) {
        DeviceConfig dev = DeviceConfig::byName(dev_name);
        auto app = makeApp(GetParam(), AppScale::Small);
        Engine engine(dev);
        auto cfg = makeMegakernelConfig(app->pipeline());
        auto a = engine.run(*app, cfg);
        auto b = engine.run(*app, cfg);
        EXPECT_DOUBLE_EQ(a.cycles, b.cycles)
            << GetParam() << "@" << dev_name;
        EXPECT_EQ(a.polls, b.polls);
        EXPECT_EQ(a.device.blocksDispatched,
                  b.device.blocksDispatched);
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, DeterminismMatrix,
                         ::testing::Values("pyramid", "reyes", "cfd",
                                           "ldpc"));

// The tuner never returns a configuration slower than the canonical
// megakernel it also evaluates.
class TunerBeatsMegakernel
    : public ::testing::TestWithParam<std::string>
{};

TEST_P(TunerBeatsMegakernel, OnSmallWorkloads)
{
    DeviceConfig dev = DeviceConfig::k20c();
    auto app = makeApp(GetParam(), AppScale::Small);
    Engine engine(dev);
    TunerOptions opts;
    opts.search.smCandidates = 3;
    opts.search.blockCandidates = 4;
    opts.search.maxConfigs = 80;
    auto tuned = autotune(engine, *app, opts);
    auto mk = engine.run(*app,
                         makeMegakernelConfig(app->pipeline()));
    EXPECT_LE(tuned.bestRun.cycles, mk.cycles * 1.0001)
        << tuned.best.describe(app->pipeline());
}

INSTANTIATE_TEST_SUITE_P(Apps, TunerBeatsMegakernel,
                         ::testing::Values("pyramid", "reyes",
                                           "raster", "ldpc"));

// ------------------------ engine guards ------------------------- //

TEST(EngineGuards, RejectsInvalidConfig)
{
    auto app = makeApp("raster", AppScale::Small);
    PipelineConfig bad;
    StageGroup g;
    g.stages = {0}; // does not cover the pipeline
    g.model = ExecModel::Megakernel;
    bad.groups = {g};
    Engine engine(DeviceConfig::k20c());
    EXPECT_THROW(engine.run(*app, bad), FatalError);
}

TEST(EngineGuards, EventLimitCatchesRunaway)
{
    auto app = makeApp("reyes", AppScale::Small);
    Engine engine(DeviceConfig::k20c());
    engine.setEventLimit(100); // absurdly small
    EXPECT_THROW(engine.run(*app,
                            makeMegakernelConfig(app->pipeline())),
                 FatalError);
}

TEST(EngineGuards, RunTimedZeroBudgetTimesOut)
{
    auto app = makeApp("reyes", AppScale::Small);
    Engine engine(DeviceConfig::k20c());
    auto r = engine.runTimed(*app,
                             makeMegakernelConfig(app->pipeline()),
                             1.0);
    EXPECT_FALSE(r.has_value());
}

/**
 * @file
 * Unit tests for the image utilities.
 */

#include <gtest/gtest.h>

#include "apps/common/image.hh"

using namespace vp;

TEST(Image, TestImageIsDeterministic)
{
    RgbImage a = makeTestImage(64, 48, 7);
    RgbImage b = makeTestImage(64, 48, 7);
    EXPECT_EQ(referenceGrayscale(a).checksum(),
              referenceGrayscale(b).checksum());
}

TEST(Image, DifferentSeedsDiffer)
{
    RgbImage a = makeTestImage(64, 48, 7);
    RgbImage b = makeTestImage(64, 48, 8);
    EXPECT_NE(referenceGrayscale(a).checksum(),
              referenceGrayscale(b).checksum());
}

TEST(Image, FaceMarkersChangePixels)
{
    RgbImage plain = makeTestImage(64, 64, 3);
    RgbImage marked = makeTestImage(64, 64, 3, {{32, 32}});
    EXPECT_NE(referenceGrayscale(plain).checksum(),
              referenceGrayscale(marked).checksum());
    // Frame pixels of the marker are bright.
    EXPECT_EQ(marked.at(32 - 11, 32, 0), 240);
    // Interior is dark.
    EXPECT_EQ(marked.at(32, 32, 0), 60);
}

TEST(Image, GrayscaleUsesLumaWeights)
{
    RgbImage img(2, 1);
    img.at(0, 0, 0) = 255; // pure red
    img.at(1, 0, 1) = 255; // pure green
    GrayImage g = referenceGrayscale(img);
    EXPECT_EQ(g.at(0, 0), 255 * 299 / 1000);
    EXPECT_EQ(g.at(1, 0), 255 * 587 / 1000);
}

TEST(Image, HistEqSpreadsDynamicRange)
{
    GrayImage img(16, 16);
    // Narrow band of values 100..107.
    for (int y = 0; y < 16; ++y)
        for (int x = 0; x < 16; ++x)
            img.at(x, y) = static_cast<std::uint8_t>(100 + (x % 8));
    GrayImage eq = referenceHistEq(img);
    int lo = 255, hi = 0;
    for (std::uint8_t p : eq.pixels()) {
        lo = std::min<int>(lo, p);
        hi = std::max<int>(hi, p);
    }
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 255);
}

TEST(Image, HistEqOfConstantImageIsStable)
{
    GrayImage img(8, 8);
    for (auto& p : img.pixels())
        p = 77;
    GrayImage eq = referenceHistEq(img);
    // All mass in one bin: the degenerate transform keeps the value.
    for (std::uint8_t p : eq.pixels())
        EXPECT_EQ(p, 77);
}

TEST(Image, DownsampleHalvesAndAverages)
{
    GrayImage img(4, 2);
    int vals[2][4] = {{10, 20, 30, 40}, {50, 60, 70, 80}};
    for (int y = 0; y < 2; ++y)
        for (int x = 0; x < 4; ++x)
            img.at(x, y) = static_cast<std::uint8_t>(vals[y][x]);
    GrayImage half = referenceDownsample(img);
    EXPECT_EQ(half.width(), 2);
    EXPECT_EQ(half.height(), 1);
    EXPECT_EQ(half.at(0, 0), (10 + 20 + 50 + 60) / 4);
    EXPECT_EQ(half.at(1, 0), (30 + 40 + 70 + 80) / 4);
}

TEST(Image, ChecksumDependsOnDims)
{
    GrayImage a(4, 2), b(2, 4);
    EXPECT_NE(a.checksum(), b.checksum());
}

/**
 * @file
 * Unit tests for the statistics containers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace vp;

TEST(Accumulator, EmptyDefaults)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator a;
    a.add(3.0);
    a.add(-1.0);
    a.add(4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Accumulator, MergeCombines)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.sum(), 13.0);
}

TEST(Accumulator, ClearResets)
{
    Accumulator a;
    a.add(5.0);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(StatGroup, IncrementAndGet)
{
    StatGroup g;
    g.inc("launches");
    g.inc("launches", 2.0);
    EXPECT_DOUBLE_EQ(g.get("launches"), 3.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
}

TEST(StatGroup, SetOverwrites)
{
    StatGroup g;
    g.inc("x", 5.0);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
}

TEST(StatGroup, MergeAdds)
{
    StatGroup a, b;
    a.inc("x", 1.0);
    b.inc("x", 2.0);
    b.inc("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

/**
 * @file
 * Unit tests for the statistics containers.
 */

#include <gtest/gtest.h>

#include "common/stats.hh"

using namespace vp;

TEST(Accumulator, EmptyDefaults)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(Accumulator, TracksMinMaxMean)
{
    Accumulator a;
    a.add(3.0);
    a.add(-1.0);
    a.add(4.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.min(), -1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Accumulator, MergeCombines)
{
    Accumulator a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(10.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.max(), 10.0);
    EXPECT_DOUBLE_EQ(a.sum(), 13.0);
}

TEST(Accumulator, EmptyIsDistinguishableFromZeroMean)
{
    Accumulator a;
    EXPECT_TRUE(a.empty());
    a.add(-2.0);
    a.add(2.0);
    EXPECT_FALSE(a.empty());
    // mean() == 0.0 no longer implies "no samples".
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 2u);
}

TEST(Accumulator, WelfordVariance)
{
    // Population variance of {2, 4, 4, 4, 5, 5, 7, 9} is exactly 4.
    Accumulator a;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(v);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 4.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 2.0);

    Accumulator single;
    single.add(3.0);
    EXPECT_DOUBLE_EQ(single.variance(), 0.0);
    EXPECT_DOUBLE_EQ(Accumulator{}.stddev(), 0.0);
}

TEST(Accumulator, MergePreservesMoments)
{
    // Chan's pairwise merge must agree with a single-pass fill.
    Accumulator whole, left, right;
    for (int i = 0; i < 50; ++i) {
        double v = 0.37 * i * i - 11.0 * i + 3.0;
        whole.add(v);
        (i < 17 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
    EXPECT_NEAR(left.variance(), whole.variance(),
                1e-9 * whole.variance());

    Accumulator empty;
    left.merge(empty); // merging an empty set is a no-op
    EXPECT_DOUBLE_EQ(left.mean(), whole.mean());
    empty.merge(left); // merging INTO an empty set copies
    EXPECT_DOUBLE_EQ(empty.mean(), whole.mean());
    EXPECT_NEAR(empty.variance(), whole.variance(),
                1e-9 * whole.variance());
}

TEST(Accumulator, ClearResets)
{
    Accumulator a;
    a.add(5.0);
    a.clear();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(StatGroup, IncrementAndGet)
{
    StatGroup g;
    g.inc("launches");
    g.inc("launches", 2.0);
    EXPECT_DOUBLE_EQ(g.get("launches"), 3.0);
    EXPECT_DOUBLE_EQ(g.get("missing"), 0.0);
}

TEST(StatGroup, SetOverwrites)
{
    StatGroup g;
    g.inc("x", 5.0);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
}

TEST(StatGroup, MergeAdds)
{
    StatGroup a, b;
    a.inc("x", 1.0);
    b.inc("x", 2.0);
    b.inc("y", 3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("x"), 3.0);
    EXPECT_DOUBLE_EQ(a.get("y"), 3.0);
}

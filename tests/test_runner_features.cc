/**
 * @file
 * Feature tests of runtime mechanisms beyond the basic models:
 * distributed queues, KBK stage fusion, per-stage block sizes,
 * locality bonus, scheduling policies, and stats invariants.
 */

#include <gtest/gtest.h>

#include "gpu/occupancy.hh"
#include "toy_apps.hh"

using namespace vp;
using namespace vp::test;

namespace {

RunResult
run(AppDriver& app, const PipelineConfig& cfg,
    DeviceConfig dev = DeviceConfig::k20c())
{
    Engine engine(dev);
    RunResult r = engine.run(app, cfg);
    EXPECT_TRUE(r.completed) << r.configName;
    return r;
}

} // namespace

// ---------------------- distributed queues ---------------------- //

TEST(DistributedQueues, LinearAppCompletes)
{
    LinearApp app(4, 200);
    auto cfg = makeMegakernelConfig(app.pipeline());
    cfg.distributedQueues = true;
    auto r = run(app, cfg);
    EXPECT_EQ(r.stages[2].items, 800u);
}

TEST(DistributedQueues, RecursiveAppCompletes)
{
    RecursiveApp app(60);
    auto cfg = makeMegakernelConfig(app.pipeline());
    cfg.distributedQueues = true;
    run(app, cfg);
}

TEST(DistributedQueues, StealsHappenWithSingleFlowSeeds)
{
    // One flow seeds everything into shard 0; other SMs must steal.
    RecursiveApp app(120);
    auto cfg = makeMegakernelConfig(app.pipeline());
    cfg.distributedQueues = true;
    auto r = run(app, cfg);
    EXPECT_GT(r.extra.get("steals"), 0.0);
}

TEST(DistributedQueues, ReducesContention)
{
    LinearApp app(8, 400);
    auto central = makeMegakernelConfig(app.pipeline());
    auto dist = central;
    dist.distributedQueues = true;
    auto c = run(app, central);
    auto d = run(app, dist);
    auto contention = [](const RunResult& r) {
        double total = 0.0;
        for (const auto& s : r.stages)
            total += s.queue.contentionCycles;
        return total;
    };
    EXPECT_LT(contention(d), contention(c));
}

TEST(DistributedQueues, ConservationAcrossShards)
{
    LinearApp app(4, 150);
    auto cfg = makeMegakernelConfig(app.pipeline());
    cfg.distributedQueues = true;
    auto r = run(app, cfg);
    // Merged queue stats still balance pushes and pops.
    for (const auto& s : r.stages)
        EXPECT_EQ(s.queue.pushes, s.queue.pops) << s.name;
}

TEST(DistributedQueues, DescribeMentionsFlag)
{
    LinearApp app;
    auto cfg = makeMegakernelConfig(app.pipeline());
    cfg.distributedQueues = true;
    EXPECT_NE(cfg.describe(app.pipeline()).find("+distq"),
              std::string::npos);
}

// ------------------------- KBK fusion --------------------------- //

TEST(KbkFusion, FusedChainSkipsIntermediateQueues)
{
    LinearApp app(1, 60);
    PipelineConfig cfg = makeKbkConfig();
    StageGroup fused, sink;
    fused.stages = {0, 1};
    fused.model = ExecModel::RTC;
    sink.stages = {2};
    sink.model = ExecModel::Megakernel;
    cfg.groups = {fused, sink};
    auto r = run(app, cfg);
    EXPECT_EQ(r.stages[1].queue.pushes, 0u);
    EXPECT_EQ(r.stages[2].items, 60u);
    // 2 launch units -> 2 kernels for a linear single-flow run.
    EXPECT_EQ(r.device.kernelLaunches, 2u);
}

TEST(KbkFusion, FusionReducesLaunches)
{
    LinearApp app(1, 60);
    auto plain = run(app, makeKbkConfig());
    PipelineConfig cfg = makeKbkConfig();
    StageGroup fused, sink;
    fused.stages = {0, 1};
    fused.model = ExecModel::RTC;
    sink.stages = {2};
    sink.model = ExecModel::Megakernel;
    cfg.groups = {fused, sink};
    auto mixed = run(app, cfg);
    EXPECT_LT(mixed.device.kernelLaunches,
              plain.device.kernelLaunches);
}

// -------------------- per-stage block sizes --------------------- //

TEST(BlockThreads, NarrowBlocksRaiseOccupancy)
{
    // A 128-thread stage at 200 regs fits 2 blocks/SM; at 256
    // threads only 1.
    DeviceConfig dev = DeviceConfig::k20c();
    ResourceUsage res;
    res.regsPerThread = 200;
    EXPECT_EQ(maxBlocksPerSm(dev, res, 256).blocksPerSm, 1);
    EXPECT_EQ(maxBlocksPerSm(dev, res, 128).blocksPerSm, 2);
}

TEST(BlockThreads, StageOverrideAffectsFineConfig)
{
    LinearApp app;
    app.pipeline().stage(1).resources.regsPerThread = 200;
    app.pipeline().stage(1).blockThreads = 128;
    app.pipeline().stage(1).threadNum = 1;
    auto cfg = makeFineConfig(app.pipeline(), DeviceConfig::k20c());
    auto r = run(app, cfg);
    EXPECT_TRUE(r.completed);
}

// ----------------------- locality bonus ------------------------- //

TEST(Locality, RtcChainingBeatsSeparationOnMemoryBoundWork)
{
    // Memory-heavy middle stage: inline chaining gets the L1 bonus.
    auto make_app = [] {
        auto app = std::make_unique<LinearApp>(2, 200);
        return app;
    };
    auto chained_app = make_app();
    auto chained = run(*chained_app,
                       makeRtcConfig(chained_app->pipeline()));
    auto coarse_app = make_app();
    auto coarse = run(*coarse_app,
                      makeCoarseConfig(coarse_app->pipeline(),
                                       DeviceConfig::k20c()));
    // Coarse spreads stages over disjoint SMs: no locality, queue
    // traffic at every hop.
    EXPECT_LT(chained.cycles, coarse.cycles);
}

// ----------------------- scheduling policy ---------------------- //

TEST(Scheduling, AllPoliciesComplete)
{
    for (SchedulePolicy p : {SchedulePolicy::LaterStageFirst,
                             SchedulePolicy::EarlierStageFirst,
                             SchedulePolicy::LongestQueueFirst}) {
        RecursiveApp app(50);
        auto cfg = makeMegakernelConfig(app.pipeline());
        cfg.schedule = p;
        auto r = run(app, cfg);
        EXPECT_TRUE(r.completed) << schedulePolicyName(p);
    }
}

TEST(Scheduling, LaterStageFirstBoundsQueueGrowth)
{
    RecursiveApp later_app(200);
    auto cfg = makeMegakernelConfig(later_app.pipeline());
    cfg.schedule = SchedulePolicy::LaterStageFirst;
    auto later = run(later_app, cfg);

    RecursiveApp earlier_app(200);
    auto cfg2 = makeMegakernelConfig(earlier_app.pipeline());
    cfg2.schedule = SchedulePolicy::EarlierStageFirst;
    auto earlier = run(earlier_app, cfg2);

    // Draining deep stages first keeps the deepest queue shorter
    // (or at worst equal) than feeding from the front.
    std::size_t later_peak = 0, earlier_peak = 0;
    for (const auto& s : later.stages)
        later_peak = std::max(later_peak, s.queue.maxDepth);
    for (const auto& s : earlier.stages)
        earlier_peak = std::max(earlier_peak, s.queue.maxDepth);
    EXPECT_LE(later_peak, earlier_peak);
}

// -------------------------- stats ------------------------------- //

TEST(Stats, ExecCyclesRecordedPerStage)
{
    LinearApp app(2, 100);
    auto r = run(app, makeMegakernelConfig(app.pipeline()));
    for (const auto& s : r.stages)
        EXPECT_GT(s.execCycles, 0.0) << s.name;
}

TEST(Stats, HostBusyTracksKbkActivity)
{
    LinearApp app(3, 50);
    auto kbk = run(app, makeKbkConfig());
    auto mk = run(app, makeMegakernelConfig(app.pipeline()));
    EXPECT_GT(kbk.host.busyCycles, mk.host.busyCycles);
    EXPECT_GT(kbk.host.launches, mk.host.launches);
}

TEST(Stats, RetreatsCountedWhenOverProvisioned)
{
    // Launch a coarse config, then run again with online adaptation
    // to force refill kernels whose blocks may exceed budgets.
    LinearApp app(2, 3000);
    auto cfg = makeCoarseConfig(app.pipeline(), DeviceConfig::k20c());
    cfg.onlineAdaptation = true;
    auto r = run(app, cfg);
    // Refill blocks beyond per-SM budgets retreat; with adaptation
    // the counter may be nonzero — either way the run verified and
    // the counter is well-defined.
    EXPECT_GE(r.retreats + 1, 1u);
}

// --------------------- device differences ----------------------- //

TEST(Devices, MoreSmsFinishFaster)
{
    LinearApp a(8, 500), b(8, 500);
    auto cfg_a = makeMegakernelConfig(a.pipeline());
    auto cfg_b = makeMegakernelConfig(b.pipeline());
    auto k20 = run(a, cfg_a, DeviceConfig::k20c());
    auto gtx = run(b, cfg_b, DeviceConfig::gtx1080());
    EXPECT_LT(gtx.ms, k20.ms);
    EXPECT_EQ(gtx.deviceName, "gtx1080");
}

TEST(Devices, CoarseUsesAllSmsOfEachDevice)
{
    for (auto name : {"k20c", "gtx1080"}) {
        LinearApp app;
        DeviceConfig dev = DeviceConfig::byName(name);
        auto cfg = makeCoarseConfig(app.pipeline(), dev);
        int total = 0;
        for (const auto& g : cfg.groups)
            total += static_cast<int>(g.sms.size());
        EXPECT_EQ(total, dev.numSms) << name;
    }
}
